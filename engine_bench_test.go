// Engine micro-benchmarks tracking the simulator's own performance (as
// opposed to the simulated machine's, which bench_test.go measures). Each
// BenchmarkEngine* times complete simulated runs of the sort benchmark on
// one machine configuration and reports, besides the usual ns/op and
// allocs/op, the simulated cycle count and the host-side allocations per
// simulated cycle — the steady-state GC-pressure figure the allocation
// regression test bounds. Run with:
//
//	go test -bench=Engine -benchtime=1x
//
// Setting FGPSIM_BENCH_JSON=path additionally runs the suite through
// testing.Benchmark and writes the measurements as JSON (the file
// results/BENCH_engine.json is produced this way), so the performance
// trajectory is tracked across PRs.
package fgpsim

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"fgpsim/internal/exp"
)

// engineConfigs are the configurations the engine benchmarks exercise: the
// dynamic engine at both window extremes, single and enlarged blocks, and
// the static engine for comparison.
var engineConfigs = []struct {
	Name string
	Cfg  func() Config
}{
	{"Dyn4Single", func() Config { return exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: SingleBB}, 8, 'A') }},
	{"Dyn4Enlarged", func() Config { return exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: EnlargedBB}, 8, 'A') }},
	{"Dyn256Single", func() Config { return exp.MustConfigFor(exp.Curve{Disc: Dyn256, Branch: SingleBB}, 8, 'A') }},
	{"Dyn256Enlarged", func() Config { return exp.MustConfigFor(exp.Curve{Disc: Dyn256, Branch: EnlargedBB}, 8, 'A') }},
	{"Dyn256Cached", func() Config { return exp.MustConfigFor(exp.Curve{Disc: Dyn256, Branch: EnlargedBB}, 8, 'G') }},
	{"Static", func() Config { return exp.MustConfigFor(exp.Curve{Disc: Static, Branch: SingleBB}, 8, 'A') }},
}

// benchEngineRun times complete simulated runs of one configuration.
func benchEngineRun(b *testing.B, cfg Config) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		s, err := w.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = s.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkEngineDyn4Single(b *testing.B)     { benchEngineRun(b, engineConfigs[0].Cfg()) }
func BenchmarkEngineDyn4Enlarged(b *testing.B)   { benchEngineRun(b, engineConfigs[1].Cfg()) }
func BenchmarkEngineDyn256Single(b *testing.B)   { benchEngineRun(b, engineConfigs[2].Cfg()) }
func BenchmarkEngineDyn256Enlarged(b *testing.B) { benchEngineRun(b, engineConfigs[3].Cfg()) }
func BenchmarkEngineDyn256Cached(b *testing.B)   { benchEngineRun(b, engineConfigs[4].Cfg()) }
func BenchmarkEngineStatic(b *testing.B)         { benchEngineRun(b, engineConfigs[5].Cfg()) }

// engineBenchRecord is one measured configuration in BENCH_engine.json.
type engineBenchRecord struct {
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	SimCycles      int64   `json:"sim_cycles"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	MCyclesPerSec  float64 `json:"sim_mcycles_per_sec"`
	SpeedupVsSeed  float64 `json:"speedup_vs_seed,omitempty"`
	AllocDropX     float64 `json:"alloc_drop_vs_seed,omitempty"`
}

// batchBenchRecord is one measured K-lane batched sweep in
// BENCH_engine.json. SpeedupVsSeq compares the batch against K sequential
// scalar runs of the *current* engine on the same host; SpeedupVsSeed
// against the pre-SoA pointer-linked engine's sequential wall clock
// (batchSeqScalarSeedNs) — the acceptance figure "batched K-lane sweep
// versus K sequential scalar runs".
type batchBenchRecord struct {
	Lanes          int     `json:"lanes"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	SimCycles      int64   `json:"sim_cycles"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	MCyclesPerSec  float64 `json:"sim_mcycles_per_sec"`
	SeqNsPerOp     int64   `json:"sequential_ns_per_op"`
	SeedSeqNsOp    int64   `json:"seed_sequential_ns_per_op"`
	SpeedupVsSeq   float64 `json:"speedup_vs_sequential"`
	SpeedupVsSeed  float64 `json:"speedup_vs_seed_sequential"`
}

// seedBaseline is one pre-pooling measurement (commit 479350e, same
// benchmarks, same host class) that the emitted report computes its
// speedup and allocation-drop ratios against.
type seedBaseline struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	SimCycles   int64 `json:"sim_cycles"`
}

// seedFigure3NsPerOp is the seed's BenchmarkFigure3 wall clock
// (go test -bench=Figure3 -benchtime=1x at commit 479350e, same host).
const seedFigure3NsPerOp int64 = 17_660_151_705

// engineSeedBaselines are the seed engine's measurements, taken before the
// pooling/event-structure rewrite landed.
var engineSeedBaselines = map[string]seedBaseline{
	"Dyn4Single":     {645_680_944, 974_800, 94_674},
	"Dyn4Enlarged":   {437_512_406, 1_040_775, 84_071},
	"Dyn256Single":   {2_222_397_872, 2_587_780, 85_136},
	"Dyn256Enlarged": {1_957_875_433, 2_503_409, 84_022},
	"Dyn256Cached":   {2_245_781_930, 2_944_517, 95_197},
	"Static":         {12_056_864, 2_125, 223_863},
}

// TestEmitEngineBenchJSON writes the engine benchmark measurements as JSON
// when FGPSIM_BENCH_JSON names an output path; it is skipped otherwise, so
// the ordinary test run stays fast and side-effect free.
func TestEmitEngineBenchJSON(t *testing.T) {
	path := os.Getenv("FGPSIM_BENCH_JSON")
	if path == "" {
		t.Skip("set FGPSIM_BENCH_JSON=path to emit engine benchmark JSON")
	}
	out := struct {
		GoVersion string                       `json:"go_version"`
		GOARCH    string                       `json:"goarch"`
		Benchmark string                       `json:"benchmark"`
		Engines   map[string]engineBenchRecord `json:"engines"`
		Batched   map[string]batchBenchRecord  `json:"batched"`
		Seed      map[string]seedBaseline      `json:"seed_baseline"`
		Figure3   struct {
			NsPerOp     int64   `json:"ns_per_op"`
			SeedNsPerOp int64   `json:"seed_ns_per_op"`
			Speedup     float64 `json:"speedup_vs_seed"`
		} `json:"figure3_sweep"`
	}{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Benchmark: "sort",
		Engines:   make(map[string]engineBenchRecord),
		Batched:   make(map[string]batchBenchRecord),
		Seed:      engineSeedBaselines,
	}
	for _, ec := range engineConfigs {
		cfg := ec.Cfg()
		var cycles int64
		r := testing.Benchmark(func(b *testing.B) {
			w, err := PrepareBenchmark(BenchmarkByName("sort"), DefaultEnlargeOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := w.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = s.Cycles
			}
		})
		rec := engineBenchRecord{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			SimCycles:   cycles,
		}
		if cycles > 0 {
			rec.AllocsPerCycle = float64(r.AllocsPerOp()) / float64(cycles)
		}
		if r.NsPerOp() > 0 {
			rec.MCyclesPerSec = float64(cycles) * 1e3 / float64(r.NsPerOp())
		}
		if sb, ok := engineSeedBaselines[ec.Name]; ok && r.NsPerOp() > 0 && r.AllocsPerOp() > 0 {
			rec.SpeedupVsSeed = float64(sb.NsPerOp) / float64(r.NsPerOp())
			rec.AllocDropX = float64(sb.AllocsPerOp) / float64(r.AllocsPerOp())
		}
		out.Engines[ec.Name] = rec
		fmt.Printf("%-16s %12d ns/op %10d allocs/op  %.4f allocs/cycle\n",
			ec.Name, r.NsPerOp(), r.AllocsPerOp(), rec.AllocsPerCycle)
	}
	// The batched sweeps: each K-lane batch compared against the SoA
	// engine's K sequential scalar runs (measured here) and against the
	// pre-SoA pointer-linked engine's sequential wall clock (the checked-in
	// batchSeqScalarSeedNs constants).
	for _, k := range batchKs {
		k := k
		seq := testing.Benchmark(func(b *testing.B) { benchEngineSequential(b, k) })
		bat := testing.Benchmark(func(b *testing.B) { benchEngineBatched(b, k) })
		cycles := int64(bat.Extra["sim-cycles"])
		rec := batchBenchRecord{
			Lanes:        k,
			NsPerOp:      bat.NsPerOp(),
			AllocsPerOp:  bat.AllocsPerOp(),
			BytesPerOp:   bat.AllocedBytesPerOp(),
			SimCycles:    cycles,
			SeqNsPerOp:   seq.NsPerOp(),
			SeedSeqNsOp:  batchSeqScalarSeedNs[k],
			SpeedupVsSeq: float64(seq.NsPerOp()) / float64(bat.NsPerOp()),
		}
		if cycles > 0 {
			rec.AllocsPerCycle = float64(bat.AllocsPerOp()) / float64(cycles)
		}
		if bat.NsPerOp() > 0 {
			rec.MCyclesPerSec = float64(cycles) * 1e3 / float64(bat.NsPerOp())
		}
		if sb := batchSeqScalarSeedNs[k]; sb > 0 {
			rec.SpeedupVsSeed = float64(sb) / float64(bat.NsPerOp())
		}
		out.Batched[fmt.Sprintf("Batched%d", k)] = rec
		fmt.Printf("Batched%-2d        %12d ns/op %10d allocs/op  %.4f allocs/cycle  %6.1f Mcyc/s  %.2fx vs seq, %.2fx vs seed\n",
			k, bat.NsPerOp(), bat.AllocsPerOp(), rec.AllocsPerCycle, rec.MCyclesPerSec, rec.SpeedupVsSeq, rec.SpeedupVsSeed)
	}
	// The acceptance criterion's wall-clock figure: the Figure 3 sweep.
	f3 := testing.Benchmark(BenchmarkFigure3)
	out.Figure3.NsPerOp = f3.NsPerOp()
	out.Figure3.SeedNsPerOp = seedFigure3NsPerOp
	out.Figure3.Speedup = float64(seedFigure3NsPerOp) / float64(f3.NsPerOp())
	fmt.Printf("Figure3 sweep    %12d ns/op (seed %d, %.1fx)\n",
		f3.NsPerOp(), seedFigure3NsPerOp, out.Figure3.Speedup)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
