// Pipeline: watch the dynamic engine work, cycle by cycle. A small node
// program is written directly in the assembly format (no MiniC), simulated
// with a pipeline log attached, and the per-cycle issue/execute/complete/
// retire stream is printed — including a misprediction squash.
//
//	go run ./examples/pipeline
package main

import (
	_ "embed"
	"fmt"
	"log"

	fgpsim "fgpsim"
)

// A loop that sums 1..5, with a data-dependent exit branch the 2-bit
// predictor necessarily misses on the final iteration. The assembly lives
// next to this file so tests (and readers) can get at it without running
// the example; internal/difftest oracle-checks it.
//
//go:embed sum.asm
var asm string

func main() {
	prog, err := fgpsim.Assemble(asm)
	if err != nil {
		log.Fatal(err)
	}
	im, _ := fgpsim.IssueModelByID(5) // 2 memory + 4 ALU slots
	memA, _ := fgpsim.MemConfigByID('A')
	cfg := fgpsim.Config{Disc: fgpsim.Dyn4, Issue: im, Mem: memA, Branch: fgpsim.SingleBB}
	img, err := fgpsim.Load(prog, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	pipe := &fgpsim.PipeLog{MaxCycles: 64}
	res, err := fgpsim.Simulate(img, nil, nil, fgpsim.SimOptions{Pipe: pipe})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %q  (sum 1..5 = 15 -> '0'+15 = '?')\n", res.Output)
	fmt.Printf("%d cycles, %d retired nodes, %d mispredicts, %.3f redundancy\n\n",
		res.Stats.Cycles, res.Stats.RetiredNodes, res.Stats.Mispredicts, res.Stats.Redundancy())
	fmt.Println("pipeline events:")
	fmt.Print(pipe.String())
	fmt.Println("\nNote the loop iterations overlapping in the window, the wrong-path")
	fmt.Println("issue after the final iteration, and the squash when the exit branch")
	fmt.Println("resolves against its prediction.")
}
