// Pipeline: watch the dynamic engine work, cycle by cycle. A small node
// program is written directly in the assembly format (no MiniC), simulated
// with a pipeline log attached, and the per-cycle issue/execute/complete/
// retire stream is printed — including a misprediction squash.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	fgpsim "fgpsim"
)

// A loop that sums 1..5, with a data-dependent exit branch the 2-bit
// predictor necessarily misses on the final iteration.
const asm = `
program memsize=65536 entry=f0 database=4096
func main (f0) args=0 frame=0 entry=b0
b0:
	r5 = const 5
	r6 = const 0
	jmp b1
b1:
	r6 = add r6, r5
	r7 = const -1
	r5 = add r5, r7
	r8 = const 0
	r9 = gt r5, r8
	br r9 -> b1 | fall b2
b2:
	r10 = const 48
	r11 = add r6, r10
	r12 = sys 2(r11, r-1)
	halt
`

func main() {
	prog, err := fgpsim.Assemble(asm)
	if err != nil {
		log.Fatal(err)
	}
	im, _ := fgpsim.IssueModelByID(5) // 2 memory + 4 ALU slots
	memA, _ := fgpsim.MemConfigByID('A')
	cfg := fgpsim.Config{Disc: fgpsim.Dyn4, Issue: im, Mem: memA, Branch: fgpsim.SingleBB}
	img, err := fgpsim.Load(prog, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	pipe := &fgpsim.PipeLog{MaxCycles: 64}
	res, err := fgpsim.Simulate(img, nil, nil, fgpsim.SimOptions{Pipe: pipe})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %q  (sum 1..5 = 15 -> '0'+15 = '?')\n", res.Output)
	fmt.Printf("%d cycles, %d retired nodes, %d mispredicts, %.3f redundancy\n\n",
		res.Stats.Cycles, res.Stats.RetiredNodes, res.Stats.Mispredicts, res.Stats.Redundancy())
	fmt.Println("pipeline events:")
	fmt.Print(pipe.String())
	fmt.Println("\nNote the loop iterations overlapping in the window, the wrong-path")
	fmt.Println("issue after the final iteration, and the squash when the exit branch")
	fmt.Println("resolves against its prediction.")
}
