program memsize=65536 entry=f0 database=4096
func main (f0) args=0 frame=0 entry=b0
b0:
	r5 = const 5
	r6 = const 0
	jmp b1
b1:
	r6 = add r6, r5
	r7 = const -1
	r5 = add r5, r7
	r8 = const 0
	r9 = gt r5, r8
	br r9 -> b1 | fall b2
b2:
	r10 = const 48
	r11 = add r6, r10
	r12 = sys 2(r11, r-1)
	halt
