// Enlargement: run the paper's software side end to end — profile a
// benchmark on input set 1, build the basic block enlargement file, and
// show what it does to dynamic block sizes and performance on input set 2
// (a miniature of Figure 2).
//
//	go run ./examples/enlargement [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	fgpsim "fgpsim"
)

func main() {
	name := "grep"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b := fgpsim.BenchmarkByName(name)
	if b == nil {
		log.Fatalf("unknown benchmark %q (sort, grep, diff, cpp, compress)", name)
	}

	// Profile on input set 1 (PrepareBenchmark wraps the methodology, but
	// here each step is spelled out).
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}
	in0, in1 := b.Inputs(1)
	prof, err := fgpsim.Profile(prog, in0, in1)
	if err != nil {
		log.Fatal(err)
	}
	ef := fgpsim.BuildEnlargement(prog, prof, fgpsim.DefaultEnlargeOptions())
	fmt.Printf("%s: enlargement planned %d chains from the profile\n\n", name, len(ef.Chains))

	// Measure on input set 2.
	m0, m1 := b.Inputs(2)
	hints := fgpsim.HintsFromProfile(prof)
	im8, _ := fgpsim.IssueModelByID(8)
	memA, _ := fgpsim.MemConfigByID('A')

	type row struct {
		label string
		mode  fgpsim.BranchMode
	}
	var runs []*fgpsim.Stats
	for _, r := range []row{{"single basic blocks", fgpsim.SingleBB}, {"enlarged basic blocks", fgpsim.EnlargedBB}} {
		cfg := fgpsim.Config{Disc: fgpsim.Dyn4, Issue: im8, Mem: memA, Branch: r.mode}
		img, err := fgpsim.Load(prog, cfg, ef)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fgpsim.Simulate(img, m0, m1, fgpsim.SimOptions{Hints: hints})
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, res.Stats)
		fmt.Printf("%-22s %8d cycles, mean block %5.2f nodes, %d assert faults\n",
			r.label+":", res.Stats.Cycles, res.Stats.MeanBlockSize(), res.Stats.Faults)
	}

	fmt.Printf("\nspeedup from enlargement: %.2fx\n",
		float64(runs[0].Cycles)/float64(runs[1].Cycles))

	fmt.Println("\nblock size histogram (fraction of retired blocks):")
	fmt.Println("  size      single  enlarged")
	hs := runs[0].Histogram(5, 60)
	he := runs[1].Histogram(5, 60)
	for i := range hs {
		if hs[i] < 0.005 && he[i] < 0.005 {
			continue
		}
		fmt.Printf("  %2d-%-2d    %6.3f  %8.3f\n", i*5, i*5+4, hs[i], he[i])
	}
}
