// Designspace: sweep the issue models and scheduling disciplines on one of
// the paper's benchmarks and print a miniature of Figure 3 — how the value
// of dynamic scheduling grows with instruction word width.
//
//	go run ./examples/designspace [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	fgpsim "fgpsim"
)

func main() {
	name := "compress"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b := fgpsim.BenchmarkByName(name)
	if b == nil {
		log.Fatalf("unknown benchmark %q (sort, grep, diff, cpp, compress)", name)
	}
	w, err := fgpsim.PrepareBenchmark(b, fgpsim.DefaultEnlargeOptions())
	if err != nil {
		log.Fatal(err)
	}

	discs := []fgpsim.Discipline{fgpsim.Static, fgpsim.Dyn1, fgpsim.Dyn4, fgpsim.Dyn256}
	fmt.Printf("nodes/cycle on %s (memory config A, single basic blocks)\n\n", name)
	fmt.Printf("%-8s", "issue")
	for _, d := range discs {
		fmt.Printf(" %9s", d)
	}
	fmt.Println()
	memA, _ := fgpsim.MemConfigByID('A')
	for _, im := range fgpsim.IssueModels {
		fmt.Printf("%-8s", im)
		for _, d := range discs {
			cfg := fgpsim.Config{Disc: d, Issue: im, Mem: memA, Branch: fgpsim.SingleBB}
			s, err := w.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.2f", s.Speed())
		}
		fmt.Println()
	}
	fmt.Println("\nNote how the disciplines separate as the word widens: with one")
	fmt.Println("memory port and one ALU there is little to gain, but at 4M12A the")
	fmt.Println("wide window exploits several times more parallelism (the paper's")
	fmt.Println("central observation).")
}
