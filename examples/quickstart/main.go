// Quickstart: compile a MiniC program, load it for two machine
// configurations, simulate both, and compare cycle counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fgpsim "fgpsim"
)

const src = `
// Count word and line frequencies in the input and print a summary.
int counts[128];

int main() {
	int c;
	int words = 0;
	int lines = 0;
	int inword = 0;
	c = getc(0);
	while (c >= 0) {
		counts[c & 127]++;
		if (c == '\n') lines++;
		if (c == ' ' || c == '\n' || c == '\t') {
			inword = 0;
		} else if (!inword) {
			inword = 1;
			words++;
		}
		c = getc(0);
	}
	// Print "<lines> <words>".
	int v = lines;
	int digits[10];
	int n = 0;
	if (v == 0) { putc('0'); }
	while (v > 0) { digits[n] = v % 10; v = v / 10; n++; }
	while (n > 0) { n--; putc('0' + digits[n]); }
	putc(' ');
	v = words;
	n = 0;
	if (v == 0) { putc('0'); }
	while (v > 0) { digits[n] = v % 10; v = v / 10; n++; }
	while (n > 0) { n--; putc('0' + digits[n]); }
	putc('\n');
	return 0;
}
`

func main() {
	prog, err := fgpsim.Compile("wc.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	input := []byte("the quick brown fox\njumps over the lazy dog\npack my box with five dozen liquor jugs\n")

	// A narrow in-order machine vs a wide dynamically scheduled one.
	im2, _ := fgpsim.IssueModelByID(2)
	im8, _ := fgpsim.IssueModelByID(8)
	memA, _ := fgpsim.MemConfigByID('A')
	narrow := fgpsim.Config{Disc: fgpsim.Static, Issue: im2, Mem: memA, Branch: fgpsim.SingleBB}
	wide := fgpsim.Config{Disc: fgpsim.Dyn4, Issue: im8, Mem: memA, Branch: fgpsim.SingleBB}

	for _, cfg := range []fgpsim.Config{narrow, wide} {
		img, err := fgpsim.Load(prog, cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fgpsim.Simulate(img, input, nil, fgpsim.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", cfg)
		fmt.Printf("program output: %s", res.Output)
		fmt.Printf("cycles: %d, nodes/cycle: %.2f\n\n", res.Stats.Cycles, res.Stats.NPC())
	}
}
