// Quickstart: compile a MiniC program, load it for two machine
// configurations, simulate both, and compare cycle counts.
//
//	go run ./examples/quickstart
package main

import (
	_ "embed"
	"fmt"
	"log"

	fgpsim "fgpsim"
)

// The program lives next to this file so tests (and readers) can get at it
// without running the example; internal/difftest oracle-checks it.
//
//go:embed wc.mc
var src string

func main() {
	prog, err := fgpsim.Compile("wc.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	input := []byte("the quick brown fox\njumps over the lazy dog\npack my box with five dozen liquor jugs\n")

	// A narrow in-order machine vs a wide dynamically scheduled one.
	im2, _ := fgpsim.IssueModelByID(2)
	im8, _ := fgpsim.IssueModelByID(8)
	memA, _ := fgpsim.MemConfigByID('A')
	narrow := fgpsim.Config{Disc: fgpsim.Static, Issue: im2, Mem: memA, Branch: fgpsim.SingleBB}
	wide := fgpsim.Config{Disc: fgpsim.Dyn4, Issue: im8, Mem: memA, Branch: fgpsim.SingleBB}

	for _, cfg := range []fgpsim.Config{narrow, wide} {
		img, err := fgpsim.Load(prog, cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fgpsim.Simulate(img, input, nil, fgpsim.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", cfg)
		fmt.Printf("program output: %s", res.Output)
		fmt.Printf("cycles: %d, nodes/cycle: %.2f\n\n", res.Stats.Cycles, res.Stats.NPC())
	}
}
