// Fillunit: hardware vs software basic block enlargement. The compiler
// path needs a profiling run and an enlargement file; the fill unit (the
// hardware mechanism the paper cites as [MeSP88]) learns the hot paths
// while the program runs and enlarges blocks on the fly, tearing down
// entries whose enlarged blocks fault too often.
//
//	go run ./examples/fillunit [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	fgpsim "fgpsim"
)

func main() {
	name := "grep"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b := fgpsim.BenchmarkByName(name)
	if b == nil {
		log.Fatalf("unknown benchmark %q (sort, grep, diff, cpp, compress)", name)
	}
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}
	in0, in1 := b.Inputs(2)

	im8, _ := fgpsim.IssueModelByID(8)
	memA, _ := fgpsim.MemConfigByID('A')

	type variant struct {
		label string
		mode  fgpsim.BranchMode
		ef    *fgpsim.EnlargementFile
	}
	variants := []variant{
		{"single blocks (baseline)   ", fgpsim.SingleBB, nil},
		{"fill unit (hardware, no profile)", fgpsim.FillUnit, nil},
	}

	// The software path: profile on input set 1, then enlarge.
	p0, p1 := b.Inputs(1)
	prof, err := fgpsim.Profile(prog, p0, p1)
	if err != nil {
		log.Fatal(err)
	}
	ef := fgpsim.BuildEnlargement(prog, prof, fgpsim.DefaultEnlargeOptions())
	variants = append(variants, variant{"compiler enlargement (profiled)", fgpsim.EnlargedBB, ef})

	fmt.Printf("%s on dyn-w4 / 4M12A / 1-cycle memory:\n\n", name)
	var baseline int64
	for _, v := range variants {
		cfg := fgpsim.Config{Disc: fgpsim.Dyn4, Issue: im8, Mem: memA, Branch: v.mode}
		img, err := fgpsim.Load(prog, cfg, v.ef)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fgpsim.Simulate(img, in0, in1, fgpsim.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.Stats.Cycles
		}
		fmt.Printf("  %-34s %8d cycles  (%.2fx)  mean block %5.2f  faults %d\n",
			v.label, res.Stats.Cycles,
			float64(baseline)/float64(res.Stats.Cycles),
			res.Stats.MeanBlockSize(), res.Stats.Faults)
	}
	fmt.Println("\nThe fill unit recovers most of the compiler's speedup without any")
	fmt.Println("profiling run: it counts branch arcs at retirement, forms chains with")
	fmt.Println("the same thresholds, and de-enlarges entries that keep faulting.")
}
