// Customlang: bring your own workload. Write a program in MiniC (here: a
// toy spell-checker-style lookup of input words against a dictionary),
// compile it, profile it, enlarge it, and measure it across branch modes —
// the full toolchain on non-benchmark code, including perfect prediction.
//
//	go run ./examples/customlang
package main

import (
	_ "embed"
	"fmt"
	"log"

	fgpsim "fgpsim"
)

// The workload lives next to this file so tests (and readers) can get at it
// without running the example; internal/difftest oracle-checks it.
//
//go:embed spell.mc
var src string

func main() {
	prog, err := fgpsim.Compile("spell.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	dict := []byte("the\nquick\nbrown\nfox\njumps\nover\nlazy\ndog\n\n")
	text1 := []byte("the quick red fox leaps over the lazy dog\nthe dog naps\n")
	text2 := []byte("a quick brown cat jumps over the sleepy dog\nfoxes jump\n")

	// Profile with text1, measure with text2 (the paper's methodology).
	prof, err := fgpsim.Profile(prog, text1, dict)
	if err != nil {
		log.Fatal(err)
	}
	ef := fgpsim.BuildEnlargement(prog, prof, fgpsim.DefaultEnlargeOptions())
	hints := fgpsim.HintsFromProfile(prof)
	trace, err := fgpsim.Trace(prog, text2, dict)
	if err != nil {
		log.Fatal(err)
	}

	im8, _ := fgpsim.IssueModelByID(8)
	memE, _ := fgpsim.MemConfigByID('E')
	fmt.Println("unknown-word filter on a 4M12A machine, 16K cache (config E):")
	for _, mode := range []fgpsim.BranchMode{fgpsim.SingleBB, fgpsim.EnlargedBB, fgpsim.Perfect} {
		cfg := fgpsim.Config{Disc: fgpsim.Dyn4, Issue: im8, Mem: memE, Branch: mode}
		img, err := fgpsim.Load(prog, cfg, ef)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fgpsim.Simulate(img, text2, dict, fgpsim.SimOptions{Hints: hints, Trace: trace})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %6d cycles  %5.2f nodes/cycle  redundancy %.3f\n",
			mode, res.Stats.Cycles, res.Stats.Speed(), res.Stats.Redundancy())
		if mode == fgpsim.SingleBB {
			fmt.Printf("  program output:\n")
			fmt.Printf("    %q\n", res.Output)
		}
	}
}
