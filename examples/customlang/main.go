// Customlang: bring your own workload. Write a program in MiniC (here: a
// toy spell-checker-style lookup of input words against a dictionary),
// compile it, profile it, enlarge it, and measure it across branch modes —
// the full toolchain on non-benchmark code, including perfect prediction.
//
//	go run ./examples/customlang
package main

import (
	"fmt"
	"log"

	fgpsim "fgpsim"
)

const src = `
// A chained-hash word-membership filter.
char dictbuf[4096];
int dictoff[256];
int dictlen[256];
int heads[64];
int links[256];
int ndict = 0;
char word[64];

int hash(char *s, int n) {
	int h = 5381;
	int i;
	for (i = 0; i < n; i++) h = h * 33 + s[i];
	return (h ^ (h >> 8)) & 63;
}

void adddict(char *s, int n) {
	int i;
	int off = 0;
	if (ndict > 0) off = dictoff[ndict - 1] + dictlen[ndict - 1];
	for (i = 0; i < n; i++) dictbuf[off + i] = s[i];
	dictoff[ndict] = off;
	dictlen[ndict] = n;
	int h = hash(s, n);
	links[ndict] = heads[h];
	heads[h] = ndict + 1;
	ndict++;
}

int indict(char *s, int n) {
	int e = heads[hash(s, n)];
	while (e > 0) {
		int d = e - 1;
		if (dictlen[d] == n) {
			int i = 0;
			while (i < n && dictbuf[dictoff[d] + i] == s[i]) i++;
			if (i == n) return 1;
		}
		e = links[d];
	}
	return 0;
}

int main() {
	int i;
	int c;
	int n;
	int misses = 0;
	for (i = 0; i < 64; i++) heads[i] = 0;
	// Stream 1 is the dictionary: one word per line, ending with a blank
	// line. Stream 0 is the text to check.
	n = 0;
	c = getc(1);
	while (c >= 0) {
		if (c == '\n') {
			if (n == 0) break;
			adddict(word, n);
			n = 0;
		} else if (n < 63) {
			word[n] = c;
			n++;
		}
		c = getc(1);
	}
	// Check the text; echo unknown words.
	n = 0;
	c = getc(0);
	while (c >= 0) {
		if (c == ' ' || c == '\n') {
			if (n > 0 && !indict(word, n)) {
				for (i = 0; i < n; i++) putc(word[i]);
				putc('\n');
				misses++;
			}
			n = 0;
		} else if (n < 63) {
			word[n] = c;
			n++;
		}
		c = getc(0);
	}
	return misses;
}
`

func main() {
	prog, err := fgpsim.Compile("spell.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	dict := []byte("the\nquick\nbrown\nfox\njumps\nover\nlazy\ndog\n\n")
	text1 := []byte("the quick red fox leaps over the lazy dog\nthe dog naps\n")
	text2 := []byte("a quick brown cat jumps over the sleepy dog\nfoxes jump\n")

	// Profile with text1, measure with text2 (the paper's methodology).
	prof, err := fgpsim.Profile(prog, text1, dict)
	if err != nil {
		log.Fatal(err)
	}
	ef := fgpsim.BuildEnlargement(prog, prof, fgpsim.DefaultEnlargeOptions())
	hints := fgpsim.HintsFromProfile(prof)
	trace, err := fgpsim.Trace(prog, text2, dict)
	if err != nil {
		log.Fatal(err)
	}

	im8, _ := fgpsim.IssueModelByID(8)
	memE, _ := fgpsim.MemConfigByID('E')
	fmt.Println("unknown-word filter on a 4M12A machine, 16K cache (config E):")
	for _, mode := range []fgpsim.BranchMode{fgpsim.SingleBB, fgpsim.EnlargedBB, fgpsim.Perfect} {
		cfg := fgpsim.Config{Disc: fgpsim.Dyn4, Issue: im8, Mem: memE, Branch: mode}
		img, err := fgpsim.Load(prog, cfg, ef)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fgpsim.Simulate(img, text2, dict, fgpsim.SimOptions{Hints: hints, Trace: trace})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %6d cycles  %5.2f nodes/cycle  redundancy %.3f\n",
			mode, res.Stats.Cycles, res.Stats.Speed(), res.Stats.Redundancy())
		if mode == fgpsim.SingleBB {
			fmt.Printf("  program output:\n")
			fmt.Printf("    %q\n", res.Output)
		}
	}
}
