package fgpsim

import (
	"bytes"
	"strings"
	"testing"
)

const apiSrc = `
int main() {
	int c = getc(0);
	int n = 0;
	while (c >= 0) {
		if (c == 'x') n++;
		c = getc(0);
	}
	putc('0' + n);
	putc('\n');
	return 0;
}
`

func TestCompileAndInterpret(t *testing.T) {
	p, err := Compile("count.mc", apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Interpret(p, []byte("axbxcx"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "3\n" {
		t.Fatalf("output = %q, want 3", out)
	}
}

func TestCompileError(t *testing.T) {
	_, err := Compile("bad.mc", "int main() { return x; }")
	if err == nil {
		t.Fatal("expected a compile error")
	}
	if !strings.Contains(err.Error(), "undefined") {
		t.Errorf("error = %v", err)
	}
}

func TestUnoptimizedBigger(t *testing.T) {
	p1, err := Compile("c.mc", apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := CompileUnoptimized("c.mc", apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p0.NumNodes() <= p1.NumNodes() {
		t.Errorf("unoptimized (%d nodes) should exceed optimized (%d)", p0.NumNodes(), p1.NumNodes())
	}
}

func TestFullPipeline(t *testing.T) {
	p, err := Compile("count.mc", apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	in1 := []byte("xxaxbx")
	in2 := []byte("yyxyyxyyy")

	prof, err := Profile(p, in1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ef := BuildEnlargement(p, prof, DefaultEnlargeOptions())
	hints := HintsFromProfile(prof)
	trace, err := Trace(p, in2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Interpret(p, in2, nil)
	if err != nil {
		t.Fatal(err)
	}

	im8, _ := IssueModelByID(8)
	memA, _ := MemConfigByID('A')
	for _, mode := range []BranchMode{SingleBB, EnlargedBB, Perfect} {
		cfg := Config{Disc: Dyn4, Issue: im8, Mem: memA, Branch: mode}
		img, err := Load(p, cfg, ef)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(img, in2, nil, SimOptions{Hints: hints, Trace: trace})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, want) {
			t.Errorf("%v: output %q, want %q", mode, res.Output, want)
		}
		if res.Stats.Cycles <= 0 {
			t.Errorf("%v: no cycles", mode)
		}
	}
}

func TestBenchmarksExposed(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 5 {
		t.Fatalf("got %d benchmarks, want 5", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name] = true
	}
	for _, want := range []string{"sort", "grep", "diff", "cpp", "compress"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
	if BenchmarkByName("sort") == nil {
		t.Error("BenchmarkByName failed")
	}
	if BenchmarkByName("nope") != nil {
		t.Error("BenchmarkByName accepted junk")
	}
}

func TestGridsExposed(t *testing.T) {
	if n := len(FullGrid()); n != 560 {
		t.Errorf("FullGrid has %d points, want 560", n)
	}
	if n := len(FigureConfigs()); n == 0 || n >= 560 {
		t.Errorf("FigureConfigs has %d points, want a proper subset", n)
	}
}

func TestSimulateCycleLimit(t *testing.T) {
	p, err := Compile("loop.mc", "int main() { while (1) {} return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	im2, _ := IssueModelByID(2)
	memA, _ := MemConfigByID('A')
	img, err := Load(p, Config{Disc: Dyn4, Issue: im2, Mem: memA, Branch: SingleBB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(img, nil, nil, SimOptions{MaxCycles: 5000}); err == nil {
		t.Fatal("runaway loop should hit the cycle limit")
	}
}
