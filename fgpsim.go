// Package fgpsim is a reproduction of Melvin & Patt, "Exploiting
// Fine-Grained Parallelism Through a Combination of Hardware and Software
// Techniques" (ISCA 1991): a complete toolchain for studying dynamic
// scheduling, speculative execution, and basic block enlargement on
// general-purpose code.
//
// The pipeline mirrors the paper's:
//
//	source (MiniC) ──Compile──▶ node program
//	node program + input set 1 ──Profile──▶ branch-arc profile
//	profile ──BuildEnlargement──▶ enlargement file
//	program + config (+ enlargement) ──(translating loader)──▶ image
//	image + input set 2 ──Simulate──▶ cycles, nodes/cycle, redundancy, ...
//
// The five benchmarks of the paper's evaluation (sort, grep, diff, cpp,
// compress) ship with the package; see Benchmarks and PrepareBenchmark.
// The exported names are aliases of the internal packages' types, so the
// full machinery (engines, loader, scheduler, optimizer) stays in
// internal/ while this package provides the supported surface.
package fgpsim

import (
	"fgpsim/internal/bench"
	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/exp"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
	"fgpsim/internal/stats"
)

// Core model types.
type (
	// Program is a compiled node-IR program.
	Program = ir.Program
	// BlockID names a basic block.
	BlockID = ir.BlockID

	// Config is one machine configuration: scheduling discipline, issue
	// model, memory configuration, and branch handling mode.
	Config = machine.Config
	// Discipline is the scheduling discipline (static or dynamic with a
	// window of 1, 4, or 256 basic blocks).
	Discipline = machine.Discipline
	// IssueModel is the multinodeword format (memory and ALU slots).
	IssueModel = machine.IssueModel
	// MemConfig is the memory system configuration.
	MemConfig = machine.MemConfig
	// BranchMode selects single blocks, enlarged blocks, or perfect
	// prediction.
	BranchMode = machine.BranchMode

	// ProfileData holds branch-arc statistics from a profiling run.
	ProfileData = interp.Profile
	// EnlargementFile is a planned set of basic block enlargement chains.
	EnlargementFile = enlarge.File
	// EnlargeOptions are the enlargement thresholds.
	EnlargeOptions = enlarge.Options
	// Image is a loaded executable for one machine configuration.
	Image = loader.Image
	// Stats holds the measurements of one run.
	Stats = stats.Run
	// Benchmark is one of the paper's five workloads.
	Benchmark = bench.Benchmark
	// Workload is a benchmark prepared for measurement (profiled, with an
	// enlargement file, static hints, and a recorded trace).
	Workload = exp.Prepared
	// Results holds a measured configuration grid.
	Results = exp.Results
	// PipeLog records dynamic-engine pipeline events (issue, execute,
	// complete, retire, squash) for the first cycles of a run.
	PipeLog = core.PipeLog
)

// Scheduling disciplines.
const (
	Static = machine.Static
	Dyn1   = machine.Dyn1
	Dyn4   = machine.Dyn4
	Dyn256 = machine.Dyn256
)

// Branch handling modes. SingleBB, EnlargedBB, and Perfect are the paper's
// three; FillUnit is the hardware run-time enlargement the paper references
// ([MeSP88]) — it needs no enlargement file or profiling run.
const (
	SingleBB   = machine.SingleBB
	EnlargedBB = machine.EnlargedBB
	Perfect    = machine.Perfect
	FillUnit   = machine.FillUnit
)

// Branch direction predictors. TwoBit is the paper's scheme; GShare is the
// future-work extension its conclusions suggest.
const (
	TwoBit = machine.TwoBit
	GShare = machine.GSharePredictor
)

// IssueModels lists the paper's eight issue models;
// MemConfigs the seven memory configurations.
var (
	IssueModels = machine.IssueModels
	MemConfigs  = machine.MemConfigs
)

// IssueModelByID returns the issue model numbered 1..8.
func IssueModelByID(id int) (IssueModel, bool) { return machine.IssueModelByID(id) }

// MemConfigByID returns the memory configuration lettered 'A'..'G'.
func MemConfigByID(id byte) (MemConfig, bool) { return machine.MemConfigByID(id) }

// Compile compiles MiniC source (the toolchain's input language) into a
// node program, with the block-local optimizer enabled.
func Compile(filename, source string) (*Program, error) {
	return minic.Compile(filename, source, minic.Options{Optimize: true})
}

// CompileUnoptimized compiles without the block-local optimizer, for
// studying what the optimizer contributes.
func CompileUnoptimized(filename, source string) (*Program, error) {
	return minic.Compile(filename, source, minic.Options{})
}

// Assemble parses a node program written in the textual assembly format
// (the format Disassemble emits), for hand-written or generated node code
// that bypasses MiniC.
func Assemble(src string) (*Program, error) { return ir.Assemble(src) }

// Disassemble renders a program as assembly text; Assemble parses it back.
func Disassemble(p *Program) string { return ir.Disassemble(p) }

// Interpret runs a program functionally (no timing) and returns its output.
func Interpret(p *Program, in0, in1 []byte) ([]byte, error) {
	res, err := interp.Run(p, in0, in1, interp.Options{})
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}

// Profile runs a program functionally while collecting the branch-arc
// statistics that drive basic block enlargement.
func Profile(p *Program, in0, in1 []byte) (*ProfileData, error) {
	prof := interp.NewProfile()
	if _, err := interp.Run(p, in0, in1, interp.Options{Profile: prof}); err != nil {
		return nil, err
	}
	return prof, nil
}

// DefaultEnlargeOptions returns the enlargement thresholds used throughout
// the reproduction.
func DefaultEnlargeOptions() EnlargeOptions { return enlarge.DefaultOptions() }

// BuildEnlargement plans basic block enlargement chains from a profile.
func BuildEnlargement(p *Program, prof *ProfileData, o EnlargeOptions) *EnlargementFile {
	return enlarge.Build(p, prof, o)
}

// Load runs the translating loader: program + configuration (+ optional
// enlargement file) to executable image.
func Load(p *Program, cfg Config, ef *EnlargementFile) (*Image, error) {
	return loader.Load(p, cfg, ef)
}

// SimOptions carry the optional inputs of a simulation run.
type SimOptions struct {
	// Trace is the dynamic block trace required by Perfect branch mode
	// (record one with Trace).
	Trace []BlockID
	// Hints are static branch prediction hints that seed the 2-bit
	// predictor (derive them with HintsFromProfile).
	Hints map[BlockID]bool
	// MaxCycles aborts a runaway simulation (0 = a very large default).
	MaxCycles int64
	// Pipe, when non-nil, records pipeline events of the run's first
	// cycles (dynamic engines only).
	Pipe *PipeLog
}

// SimResult is a simulation's outcome.
type SimResult struct {
	Output []byte
	Stats  *Stats
}

// Simulate runs a loaded image cycle by cycle.
func Simulate(img *Image, in0, in1 []byte, o SimOptions) (*SimResult, error) {
	res, err := core.Run(img, in0, in1, o.Trace, o.Hints, core.Limits{MaxCycles: o.MaxCycles, Pipe: o.Pipe})
	if err != nil {
		return nil, err
	}
	return &SimResult{Output: res.Output, Stats: res.Stats}, nil
}

// Trace records the dynamic basic-block trace of a functional run, for
// perfect-prediction simulations with the same input.
func Trace(p *Program, in0, in1 []byte) ([]BlockID, error) {
	res, err := interp.Run(p, in0, in1, interp.Options{RecordTrace: true})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// HintsFromProfile derives static branch prediction hints (majority
// direction per branch) from a profile.
func HintsFromProfile(prof *ProfileData) map[BlockID]bool {
	return branch.HintsFromProfile(prof.Taken, prof.NotTaken)
}

// Benchmarks returns the paper's five workloads: sort, grep, diff, cpp,
// compress.
func Benchmarks() []*Benchmark { return bench.All() }

// BenchmarkByName returns one of the five workloads, or nil.
func BenchmarkByName(name string) *Benchmark { return bench.ByName(name) }

// PrepareBenchmark applies the paper's methodology to one benchmark:
// profile on input set 1, build the enlargement file and static hints,
// record the reference output and trace on input set 2.
func PrepareBenchmark(b *Benchmark, o EnlargeOptions) (*Workload, error) {
	return exp.Prepare(b, o)
}

// RunGrid measures every configuration for every prepared workload in
// parallel and verifies each run against the functional interpreter.
func RunGrid(ws []*Workload, cfgs []Config, workers int, progress func(done, total int)) (*Results, error) {
	return exp.Grid(ws, cfgs, workers, progress)
}

// FullGrid returns the paper's 560-point configuration grid.
func FullGrid() []Config { return machine.Grid() }

// FigureConfigs returns the subset of the grid needed to regenerate all
// five figures.
func FigureConfigs() []Config { return exp.FigureConfigs() }
