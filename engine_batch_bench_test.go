// Benchmarks for the K-lane batched execution mode: sweeping K engine-level
// variants (window depth, predictor, memory system) of one translated image,
// either sequentially through the scalar engine or through core.RunBatch.
// The lane pool mirrors the shape of the difftest variant matrix: every lane
// shares the Dyn256/EnlargedBB imgcache key, so a batch run amortizes one
// fetch/decode/translate pass across all K configurations.
//
// batchSeqScalarSeedNs records the *pre-SoA* pointer-linked engine's
// sequential wall clock over the same lane prefixes, measured at the commit
// before the structure-of-arrays rewrite landed (same host class). The
// emitted BENCH_engine.json reports Batched* speedups against these numbers:
// "batched K-lane sweep versus K sequential scalar runs".
package fgpsim

import (
	"testing"

	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
)

// batchLanePool returns the 18 lane configurations the batched benchmarks
// sweep. All are Dyn256/EnlargedBB/issue-8 variants differing only in
// engine-level knobs (window override, predictor, memory system), so they
// share one cached image. The first 8 are the acceptance criterion's
// "8-lane sweep".
func batchLanePool() []machine.Config {
	base := exp.MustConfigFor(exp.Curve{Disc: machine.Dyn256, Branch: machine.EnlargedBB}, 8, 'G')
	memA := exp.MustConfigFor(exp.Curve{Disc: machine.Dyn256, Branch: machine.EnlargedBB}, 8, 'A')
	memC := exp.MustConfigFor(exp.Curve{Disc: machine.Dyn256, Branch: machine.EnlargedBB}, 8, 'C')
	with := func(f func(*machine.Config)) machine.Config {
		c := base
		f(&c)
		return c
	}
	return []machine.Config{
		base,
		with(func(c *machine.Config) { c.WindowOverride = 64 }),
		with(func(c *machine.Config) { c.WindowOverride = 16 }),
		with(func(c *machine.Config) { c.WindowOverride = 4 }),
		with(func(c *machine.Config) { c.Predictor = machine.GSharePredictor }),
		with(func(c *machine.Config) { c.Predictor = machine.GSharePredictor; c.WindowOverride = 64 }),
		memA,
		memC,
		with(func(c *machine.Config) { c.WindowOverride = 128 }),
		with(func(c *machine.Config) { c.WindowOverride = 32 }),
		with(func(c *machine.Config) { c.WindowOverride = 8 }),
		with(func(c *machine.Config) { c.WindowOverride = 2 }),
		with(func(c *machine.Config) { c.Predictor = machine.GSharePredictor; c.GShareBits = 8 }),
		with(func(c *machine.Config) { c.Predictor = machine.GSharePredictor; c.GShareBits = 10 }),
		with(func(c *machine.Config) { c.BTBEntries = 64 }),
		with(func(c *machine.Config) { c.BTBEntries = 16 }),
		with(func(c *machine.Config) { c.ConservativeMem = true }),
		with(func(c *machine.Config) { c.ConservativeMem = true; c.WindowOverride = 32 }),
	}
}

// batchKs are the lane counts the benchmarks and BENCH_engine.json cover.
var batchKs = []int{1, 4, 8, 18}

// batchSeqScalarSeedNs is the pointer-linked (pre-SoA) engine's sequential
// wall clock for the first K lanes of batchLanePool, in nanoseconds
// (go test -bench=EngineSequential -benchtime=1x at the commit preceding
// the SoA rewrite, same host). Keys are K.
var batchSeqScalarSeedNs = map[int]int64{
	1:  241_654_517,
	4:  456_484_361,
	8:  1_350_278_715,
	18: 3_134_987_031,
}

// benchEngineSequential times K sequential scalar runs of the lane prefix.
func benchEngineSequential(b *testing.B, k int) {
	w := workload(b)
	lanes := batchLanePool()[:k]
	// Warm the image cache so the measurement isolates engine time, exactly
	// as a grid sweep's steady state does.
	if _, err := w.Run(lanes[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		cycles = 0
		for _, cfg := range lanes {
			s, err := w.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cycles += s.Cycles
		}
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkEngineSequential1(b *testing.B)  { benchEngineSequential(b, 1) }
func BenchmarkEngineSequential4(b *testing.B)  { benchEngineSequential(b, 4) }
func BenchmarkEngineSequential8(b *testing.B)  { benchEngineSequential(b, 8) }
func BenchmarkEngineSequential18(b *testing.B) { benchEngineSequential(b, 18) }

// benchEngineBatched times the same K-lane sweep through core.RunBatch (via
// the harness): one shared fetch/decode pass, K private schedulers.
func benchEngineBatched(b *testing.B, k int) {
	w := workload(b)
	lanes := batchLanePool()[:k]
	if _, err := w.Run(lanes[0]); err != nil { // warm the shared image
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		cycles = 0
		stats, errs, err := w.RunBatch(lanes)
		if err != nil {
			b.Fatal(err)
		}
		for j, s := range stats {
			if errs[j] != nil {
				b.Fatal(errs[j])
			}
			cycles += s.Cycles
		}
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkEngineBatched1(b *testing.B)  { benchEngineBatched(b, 1) }
func BenchmarkEngineBatched4(b *testing.B)  { benchEngineBatched(b, 4) }
func BenchmarkEngineBatched8(b *testing.B)  { benchEngineBatched(b, 8) }
func BenchmarkEngineBatched18(b *testing.B) { benchEngineBatched(b, 18) }
