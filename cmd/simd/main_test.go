package main

import (
	"errors"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as the subprocess helper: when SIMD_MAIN_HELPER is set
// the test binary behaves exactly like the simd binary (realMain over the
// remaining arguments), so exit-code tests need no separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("SIMD_MAIN_HELPER") == "1" {
		os.Exit(realMain(os.Args[1:]))
	}
	os.Exit(m.Run())
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; "" = valid
	}{
		{"defaults", nil, ""},
		{"full checkpoint config", []string{"-journal", "/tmp/j", "-checkpoint-every", "100000", "-preempt-after", "30s"}, ""},
		{"checkpoints without preemption", []string{"-journal", "/tmp/j", "-checkpoint-every", "100000"}, ""},
		{"empty addr", []string{"-addr", ""}, "-addr"},
		{"checkpoint without journal", []string{"-checkpoint-every", "100000"}, "-checkpoint-every requires -journal"},
		{"preempt without checkpoint", []string{"-journal", "/tmp/j", "-preempt-after", "30s"}, "-preempt-after requires -checkpoint-every"},
		{"negative checkpoint", []string{"-journal", "/tmp/j", "-checkpoint-every", "-5"}, "-checkpoint-every must be >= 0"},
		{"negative preempt", []string{"-journal", "/tmp/j", "-checkpoint-every", "1000", "-preempt-after", "-1s"}, "-preempt-after must be >= 0"},
		{"negative stall", []string{"-watchdog-stall", "-1s"}, "-watchdog-stall must be >= 0"},
		{"negative drain", []string{"-drain-timeout", "-1s"}, "-drain-timeout must be >= 0"},
		{"coordinator role", []string{"-coordinator", "-journal", "/tmp/j", "-checkpoint-every", "100000"}, ""},
		{"worker role", []string{"-worker", "http://coord:8080", "-worker-id", "w1", "-heartbeat", "500ms"}, ""},
		{"both roles", []string{"-coordinator", "-worker", "http://coord:8080"}, "exclusive"},
		{"worker-id without worker", []string{"-worker-id", "w1"}, "-worker-id requires -worker"},
		{"zero heartbeat", []string{"-worker", "http://coord:8080", "-heartbeat", "0s"}, "-heartbeat must be > 0"},
		{"zero dead-after", []string{"-coordinator", "-worker-dead-after", "0s"}, "must be > 0"},
		{"worker with checkpoint flag", []string{"-worker", "http://coord:8080", "-journal", "/tmp/j", "-checkpoint-every", "1000"}, "cadence from the coordinator"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("simd", flag.ContinueOnError)
			o := registerFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse: %v", err)
			}
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestServerConfigMapping(t *testing.T) {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	o := registerFlags(fs)
	args := []string{
		"-journal", "/tmp/j", "-queue", "7", "-concurrency", "3",
		"-checkpoint-every", "250000", "-preempt-after", "90s",
		"-watchdog-stall", "45s",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	cfg := o.serverConfig()
	if cfg.JournalDir != "/tmp/j" || cfg.QueueDepth != 7 || cfg.Concurrency != 3 {
		t.Errorf("admission config not mapped: %+v", cfg)
	}
	if cfg.CheckpointEvery != 250000 || cfg.PreemptAfter != 90*time.Second {
		t.Errorf("checkpoint config not mapped: every=%d preempt=%s", cfg.CheckpointEvery, cfg.PreemptAfter)
	}
	if cfg.WatchdogStall != 45*time.Second {
		t.Errorf("WatchdogStall = %s, want 45s", cfg.WatchdogStall)
	}
}

func TestServerConfigFabricMapping(t *testing.T) {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	o := registerFlags(fs)
	if err := fs.Parse([]string{"-coordinator", "-worker-dead-after", "4s", "-steal-after", "2s"}); err != nil {
		t.Fatal(err)
	}
	cfg := o.serverConfig()
	if !cfg.Coordinator || cfg.WorkerDeadAfter != 4*time.Second || cfg.StealAfter != 2*time.Second {
		t.Errorf("fabric config not mapped: %+v", cfg)
	}
}

// helperExit re-executes the test binary as simd and returns its exit code.
func helperExit(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SIMD_MAIN_HELPER=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running helper: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

func TestExitCodes(t *testing.T) {
	// A journal path that is a regular file passes flag validation but
	// fails server startup: runtime failure, exit 1.
	badJournal := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(badJournal, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"bad flag combo", []string{"-checkpoint-every", "1000"}, 2},
		{"bad duration syntax", []string{"-preempt-after", "soonish"}, 2},
		{"journal is a file", []string{"-addr", "127.0.0.1:0", "-journal", badJournal}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := helperExit(t, tc.args...)
			if code != tc.want {
				t.Fatalf("exit = %d, want %d; output:\n%s", code, tc.want, out)
			}
			if tc.want == 1 && !strings.Contains(out, "simd:") {
				t.Errorf("runtime failure did not report an error: %q", out)
			}
		})
	}
}
