// Command simd is the simulation daemon: a long-lived HTTP service in
// front of the experiment harness, for driving large parameter-sweep
// studies without babysitting one-shot CLI runs. It accepts single
// simulations (POST /run) and asynchronous sweeps (POST /sweep, polled via
// GET /sweep/{id}), sheds load with 429 + Retry-After once its admission
// queue fills, kills wedged runs via a cycle-progress watchdog, journals
// accepted sweeps to an fsync'd JSON-lines file so a crash or deploy loses
// nothing settled, and drains gracefully on SIGTERM/SIGINT: stop
// admitting, finish or journal in-flight work, exit 0. With checkpoints
// armed (-checkpoint-every) sweep cells additionally park mid-run engine
// snapshots, so even a kill -9 resumes mid-cell rather than from cycle 0,
// and -preempt-after upgrades the watchdog to preempt-and-requeue long
// sweeps that are starving queued work.
//
// The daemon also has two fabric roles (DESIGN.md §15). `-coordinator`
// makes it the sweep coordinator: it accepts sweeps as usual but shards
// their cells across registered workers instead of simulating locally.
// `-worker URL` makes it a worker: no listen address, no sweeps of its
// own — just a pull client that registers with the coordinator at URL,
// polls for cells, runs them, and posts results until drained.
//
// Usage:
//
//	simd [-addr :8080] [-journal /var/lib/simd]
//	     [-queue 64] [-concurrency 0]
//	     [-default-timeout 2m] [-max-timeout 10m]
//	     [-watchdog-interval 1s] [-watchdog-stall 30s]
//	     [-drain-timeout 30s]
//	     [-checkpoint-every 0] [-preempt-after 0]
//	     [-coordinator] [-worker-dead-after 10s] [-steal-after 5s]
//	     [-audit-rate 0] [-quarantine-strikes 3] [-scrub-interval 0]
//	simd -worker http://coordinator:8080 [-worker-id NAME] [-heartbeat 1s]
//	     [-concurrency 0] [-drain-timeout 30s]
//
// Endpoints: /healthz, /readyz (503 while draining), /metrics (queue
// depth, shed count, in-flight, watchdog kills, retries, preempts,
// fabric counters, p50/p99 run latency), /run, /sweep, /sweep/{id}, and —
// in coordinator mode — the /fabric/* worker protocol. See README.md for
// curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/server"
)

// options is the daemon's parsed command line, separated from flag
// registration so validation is testable without a process.
type options struct {
	addr            string
	journalDir      string
	queue           int
	concurrency     int
	defTimeout      time.Duration
	maxTimeout      time.Duration
	wdInterval      time.Duration
	wdStall         time.Duration
	drainTimeout    time.Duration
	checkpointEvery int64
	preemptAfter    time.Duration

	coordinator       bool
	workerDeadAfter   time.Duration
	stealAfter        time.Duration
	auditRate         float64
	quarantineStrikes int
	scrubInterval     time.Duration
	workerURL         string
	workerID          string
	heartbeat         time.Duration

	chaosDisk string
	// disk is the failpoint filesystem -chaos-disk resolved to (nil when
	// the flag is unset), built once during validate. Declared as the
	// interface so an unset flag passes a true nil to Config/WorkerOptions.
	disk chaos.Disk
}

func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.journalDir, "journal", "", "journal directory; accepted sweeps persist and resume across restarts (empty = no persistence)")
	fs.IntVar(&o.queue, "queue", 64, "admission queue depth before shedding with 429")
	fs.IntVar(&o.concurrency, "concurrency", 0, "weighted limiter capacity in worker units (0 = GOMAXPROCS)")
	fs.DurationVar(&o.defTimeout, "default-timeout", 2*time.Minute, "per-run deadline when the request names none")
	fs.DurationVar(&o.maxTimeout, "max-timeout", 10*time.Minute, "hard cap on requested run deadlines")
	fs.DurationVar(&o.wdInterval, "watchdog-interval", time.Second, "heartbeat sampling period")
	fs.DurationVar(&o.wdStall, "watchdog-stall", 30*time.Second, "kill a run after this long without engine progress")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "grace period for in-flight work on SIGTERM before force-cancel")
	fs.Int64Var(&o.checkpointEvery, "checkpoint-every", 0, "simulated cycles between durable sweep-cell snapshots (0 = off; requires -journal)")
	fs.DurationVar(&o.preemptAfter, "preempt-after", 0, "preempt-and-requeue a sweep holding workers this long while work queues (0 = off; requires -checkpoint-every)")
	fs.BoolVar(&o.coordinator, "coordinator", false, "coordinator role: shard sweeps across registered fabric workers instead of simulating locally")
	fs.DurationVar(&o.workerDeadAfter, "worker-dead-after", 10*time.Second, "coordinator declares a silent worker dead and requeues its cells after this long")
	fs.DurationVar(&o.stealAfter, "steal-after", 5*time.Second, "idle workers may duplicate an in-flight cell older than this (straggler mitigation)")
	fs.Float64Var(&o.auditRate, "audit-rate", 0, "fraction of completed cells re-executed on a different worker and byte-compared (0 = off; requires -coordinator)")
	fs.IntVar(&o.quarantineStrikes, "quarantine-strikes", 3, "integrity strikes before a worker's lease is quarantined (requires -coordinator)")
	fs.DurationVar(&o.scrubInterval, "scrub-interval", 0, "background scrub pass period over on-disk journals and snapshots (0 = off; requires -journal)")
	fs.StringVar(&o.workerURL, "worker", "", "worker role: pull cells from the coordinator at this base URL (exclusive with -coordinator)")
	fs.StringVar(&o.workerID, "worker-id", "", "stable worker identity for re-registration after a crash (default hostname-pid; requires -worker)")
	fs.DurationVar(&o.heartbeat, "heartbeat", time.Second, "worker liveness beacon period; keep well inside -worker-dead-after (requires -worker)")
	fs.StringVar(&o.chaosDisk, "chaos-disk", "", `mount seeded disk failpoints under the journal/snapshot layer; takes a chaos repro token ("seed=N" or "seed=N keep=i,j"). Soak testing only — never in production`)
	return o
}

// validate enforces the cross-flag contracts that the server would
// otherwise only disarm silently.
func (o *options) validate() error {
	if o.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if o.checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0, got %d", o.checkpointEvery)
	}
	if o.preemptAfter < 0 {
		return fmt.Errorf("-preempt-after must be >= 0, got %s", o.preemptAfter)
	}
	if o.checkpointEvery > 0 && o.journalDir == "" {
		return fmt.Errorf("-checkpoint-every requires -journal (snapshots live in the journal directory)")
	}
	if o.preemptAfter > 0 && o.checkpointEvery == 0 {
		return fmt.Errorf("-preempt-after requires -checkpoint-every (preemption parks a checkpoint)")
	}
	if o.coordinator && o.workerURL != "" {
		return fmt.Errorf("-coordinator and -worker are exclusive: one process plays one fabric role")
	}
	if o.auditRate < 0 || o.auditRate > 1 {
		return fmt.Errorf("-audit-rate must be in [0, 1], got %g", o.auditRate)
	}
	if o.auditRate > 0 && !o.coordinator {
		return fmt.Errorf("-audit-rate requires -coordinator (audits re-assign cells across fabric workers)")
	}
	if o.quarantineStrikes <= 0 {
		return fmt.Errorf("-quarantine-strikes must be > 0, got %d", o.quarantineStrikes)
	}
	if o.scrubInterval < 0 {
		return fmt.Errorf("-scrub-interval must be >= 0, got %s", o.scrubInterval)
	}
	if o.scrubInterval > 0 && o.journalDir == "" {
		return fmt.Errorf("-scrub-interval requires -journal (the scrubber walks the journal directory)")
	}
	if o.workerURL == "" {
		if o.workerID != "" {
			return fmt.Errorf("-worker-id requires -worker")
		}
	}
	if o.heartbeat <= 0 {
		return fmt.Errorf("-heartbeat must be > 0, got %s", o.heartbeat)
	}
	if o.workerDeadAfter <= 0 || o.stealAfter <= 0 {
		return fmt.Errorf("-worker-dead-after and -steal-after must be > 0")
	}
	if o.workerURL != "" && o.checkpointEvery > 0 {
		return fmt.Errorf("-checkpoint-every is a coordinator/standalone flag; workers take their cadence from the coordinator")
	}
	for _, d := range []struct {
		name string
		val  time.Duration
	}{
		{"-default-timeout", o.defTimeout},
		{"-max-timeout", o.maxTimeout},
		{"-watchdog-interval", o.wdInterval},
		{"-watchdog-stall", o.wdStall},
		{"-drain-timeout", o.drainTimeout},
	} {
		if d.val < 0 {
			return fmt.Errorf("%s must be >= 0, got %s", d.name, d.val)
		}
	}
	if o.chaosDisk != "" {
		seed, keep, err := chaos.ParseRepro(o.chaosDisk)
		if err != nil {
			return fmt.Errorf("-chaos-disk: %w", err)
		}
		sched := chaos.Plan(seed, []chaos.Component{{Name: "daemon/disk", Kinds: chaos.DiskKinds()}}, chaos.Profile{})
		sched.Keep = keep
		o.disk = chaos.NewFS(chaos.OS{}, sched, "daemon/disk")
	}
	return nil
}

func (o *options) serverConfig() server.Config {
	cfg := server.Config{
		QueueDepth:        o.queue,
		Concurrency:       o.concurrency,
		DefaultTimeout:    o.defTimeout,
		MaxTimeout:        o.maxTimeout,
		WatchdogInterval:  o.wdInterval,
		WatchdogStall:     o.wdStall,
		JournalDir:        o.journalDir,
		CheckpointEvery:   o.checkpointEvery,
		PreemptAfter:      o.preemptAfter,
		Coordinator:       o.coordinator,
		WorkerDeadAfter:   o.workerDeadAfter,
		StealAfter:        o.stealAfter,
		AuditRate:         o.auditRate,
		QuarantineStrikes: o.quarantineStrikes,
		ScrubInterval:     o.scrubInterval,
	}
	if o.disk != nil {
		cfg.Disk = o.disk
		fmt.Fprintf(os.Stderr, "simd: CHAOS: disk failpoints armed (%s) — journal and snapshot writes will fail on schedule\n", o.chaosDisk)
	}
	return cfg
}

func main() { os.Exit(realMain(os.Args[1:])) }

// realMain is main with injectable arguments and an exit code instead of
// os.Exit, so the exit-code contract is testable: 2 for a bad command line
// (unknown flag or failed validation), 1 for a runtime failure, 0 for a
// clean drain.
func realMain(args []string) int {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	o := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		return 2
	}
	runFn := run
	if o.workerURL != "" {
		runFn = runWorker
	}
	if err := runFn(o); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		return 1
	}
	return 0
}

// runWorker is the worker role's main loop: pull cells until SIGTERM, then
// drain (park in-flight cells at a checkpoint boundary, ship the parked
// snapshots, deregister) and exit 0.
func runWorker(o *options) error {
	if o.disk != nil {
		fmt.Fprintf(os.Stderr, "simd: CHAOS: disk failpoints armed (%s) — snapshot writes will fail on schedule\n", o.chaosDisk)
	}
	w, err := server.NewWorker(server.WorkerOptions{
		Coordinator: o.workerURL,
		ID:          o.workerID,
		Heartbeat:   o.heartbeat,
		Concurrency: o.concurrency,
		DrainGrace:  o.drainTimeout,
		Disk:        o.disk,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	fmt.Fprintf(os.Stderr, "simd: worker %s pulling from %s\n", w.ID(), o.workerURL)
	return w.Run(sigCtx)
}

func run(o *options) error {
	srv, err := server.New(o.serverConfig())
	if err != nil {
		return err
	}
	srv.Start()

	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}

	// Graceful drain: flip unready and reject new work, give in-flight
	// work the grace period, then force-cancel what remains — every
	// completed sweep cell is already fsync'd in the journal, so the
	// interrupted sweeps resume on the next boot. Exit 0 either way.
	fmt.Fprintln(os.Stderr, "simd: signal received, draining")
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Connections outliving the grace period are closed forcibly; the
		// drain below still journals their work.
		httpSrv.Close()
	}
	if err := <-drained; err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "simd: drained cleanly")
	return nil
}
