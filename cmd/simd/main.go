// Command simd is the simulation daemon: a long-lived HTTP service in
// front of the experiment harness, for driving large parameter-sweep
// studies without babysitting one-shot CLI runs. It accepts single
// simulations (POST /run) and asynchronous sweeps (POST /sweep, polled via
// GET /sweep/{id}), sheds load with 429 + Retry-After once its admission
// queue fills, kills wedged runs via a cycle-progress watchdog, journals
// accepted sweeps to an fsync'd JSON-lines file so a crash or deploy loses
// nothing settled, and drains gracefully on SIGTERM/SIGINT: stop
// admitting, finish or journal in-flight work, exit 0.
//
// Usage:
//
//	simd [-addr :8080] [-journal /var/lib/simd]
//	     [-queue 64] [-concurrency 0]
//	     [-default-timeout 2m] [-max-timeout 10m]
//	     [-watchdog-interval 1s] [-watchdog-stall 30s]
//	     [-drain-timeout 30s]
//
// Endpoints: /healthz, /readyz (503 while draining), /metrics (queue
// depth, shed count, in-flight, watchdog kills, retries, p50/p99 run
// latency), /run, /sweep, /sweep/{id}. See README.md for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fgpsim/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		journalDir   = flag.String("journal", "", "journal directory; accepted sweeps persist and resume across restarts (empty = no persistence)")
		queue        = flag.Int("queue", 64, "admission queue depth before shedding with 429")
		concurrency  = flag.Int("concurrency", 0, "weighted limiter capacity in worker units (0 = GOMAXPROCS)")
		defTimeout   = flag.Duration("default-timeout", 2*time.Minute, "per-run deadline when the request names none")
		maxTimeout   = flag.Duration("max-timeout", 10*time.Minute, "hard cap on requested run deadlines")
		wdInterval   = flag.Duration("watchdog-interval", time.Second, "heartbeat sampling period")
		wdStall      = flag.Duration("watchdog-stall", 30*time.Second, "kill a run after this long without engine progress")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on SIGTERM before force-cancel")
	)
	flag.Parse()
	if err := run(*addr, *journalDir, *queue, *concurrency, *defTimeout, *maxTimeout, *wdInterval, *wdStall, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run(addr, journalDir string, queue, concurrency int, defTimeout, maxTimeout, wdInterval, wdStall, drainTimeout time.Duration) error {
	srv, err := server.New(server.Config{
		QueueDepth:       queue,
		Concurrency:      concurrency,
		DefaultTimeout:   defTimeout,
		MaxTimeout:       maxTimeout,
		WatchdogInterval: wdInterval,
		WatchdogStall:    wdStall,
		JournalDir:       journalDir,
	})
	if err != nil {
		return err
	}
	srv.Start()

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}

	// Graceful drain: flip unready and reject new work, give in-flight
	// work the grace period, then force-cancel what remains — every
	// completed sweep cell is already fsync'd in the journal, so the
	// interrupted sweeps resume on the next boot. Exit 0 either way.
	fmt.Fprintln(os.Stderr, "simd: signal received, draining")
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Connections outliving the grace period are closed forcibly; the
		// drain below still journals their work.
		httpSrv.Close()
	}
	if err := <-drained; err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "simd: drained cleanly")
	return nil
}
