// Command chaos is the deterministic chaos orchestrator (DESIGN.md §16).
// It runs full coordinator/worker sweeps in-process with every disk and
// network surface wrapped in seeded failpoints (internal/chaos), checks
// the fabric's invariants after each run — byte-identity against a
// fault-free control, no acknowledged result lost, journals consistent
// with served results, recovery terminates, no spurious quarantines — and
// shrinks any failing schedule to a minimal repro token.
//
// Modes (exactly one):
//
//	chaos -seeds N [-seed-base B]   explore N planned schedules (seeds B..B+N-1)
//	chaos -seed S                   run the single planned schedule for seed S
//	chaos -replay "seed=S keep=..." replay a repro token printed by a failure
//	chaos -self-test                prove the detector: a deliberately seeded
//	                                violation must be caught, replayed
//	                                bit-identically, and shrunk to its
//	                                minimal schedule
//	chaos -integrity-smoke          prove the ARMED integrity layer: a lying
//	                                worker and a corrupting transport must
//	                                both be quarantined with results served
//	                                byte-identical to the fault-free control
//
// Every schedule is a pure function of its seed, so any failure this tool
// ever prints is reproducible with -replay and the token alone. On a
// violation the process exits 1 after shrinking; -out DIR additionally
// saves the run's journals, snapshots, and report for artifact upload.
// Infrastructure errors (the harness itself failing) exit 2.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/chaos/harness"
)

type options struct {
	seeds          int
	seedBase       uint64
	seed           uint64
	seedSet        bool
	replay         string
	selfTest       bool
	integritySmoke bool

	workers     int
	concurrency int
	maxFaults   int
	noShrink    bool
	out         string
	verbose     bool
}

func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.IntVar(&o.seeds, "seeds", 0, "explore N planned fault schedules")
	fs.Uint64Var(&o.seedBase, "seed-base", 1, "first seed of a -seeds sweep")
	fs.Func("seed", "run the single planned schedule for this seed", func(v string) error {
		if _, err := fmt.Sscanf(v, "%d", &o.seed); err != nil {
			return err
		}
		o.seedSet = true
		return nil
	})
	fs.StringVar(&o.replay, "replay", "", `replay a repro token ("seed=N" or "seed=N keep=i,j")`)
	fs.BoolVar(&o.selfTest, "self-test", false, "run the seeded-violation detector check")
	fs.BoolVar(&o.integritySmoke, "integrity-smoke", false, "run the armed-integrity-layer check (audits, quarantine, digest gate)")
	fs.IntVar(&o.workers, "workers", 2, "fabric workers per run")
	fs.IntVar(&o.concurrency, "concurrency", 2, "cell concurrency per worker")
	fs.IntVar(&o.maxFaults, "max-faults", 0, "faults per planned schedule (0 = profile default)")
	fs.BoolVar(&o.noShrink, "no-shrink", false, "report violations without shrinking them first")
	fs.StringVar(&o.out, "out", "", "directory for failing runs' journals and reports (CI artifacts)")
	fs.BoolVar(&o.verbose, "v", false, "log harness progress to stderr")
	return o
}

func (o *options) modes() int {
	n := 0
	for _, set := range []bool{o.seeds > 0, o.seedSet, o.replay != "", o.selfTest, o.integritySmoke} {
		if set {
			n++
		}
	}
	return n
}

func (o *options) harnessOptions() harness.Options {
	h := harness.Options{
		Workers:     o.workers,
		Concurrency: o.concurrency,
		Profile:     chaos.Profile{MaxFaults: o.maxFaults},
		ArtifactDir: o.out,
	}
	if o.verbose {
		h.Logf = log.Printf
	}
	return h
}

// errViolation distinguishes "an invariant broke" (exit 1, the interesting
// outcome) from the harness itself failing (exit 2).
type errViolation struct{ msg string }

func (e *errViolation) Error() string { return e.msg }

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos: ")
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	if err := run(o); err != nil {
		log.Print(err)
		if _, ok := err.(*errViolation); ok {
			os.Exit(1)
		}
		os.Exit(2)
	}
}

func run(o *options) error {
	if n := o.modes(); n != 1 {
		return fmt.Errorf("need exactly one of -seeds, -seed, -replay, -self-test, -integrity-smoke (got %d); see -h", n)
	}
	switch {
	case o.selfTest:
		start := time.Now()
		logf := func(string, ...any) {}
		if o.verbose {
			logf = log.Printf
		}
		if err := harness.SelfTest(logf); err != nil {
			return &errViolation{fmt.Sprintf("%v", err)}
		}
		fmt.Printf("self-test: seeded violation caught, replayed bit-identically, shrunk to minimal schedule (%.1fs)\n",
			time.Since(start).Seconds())
		return nil
	case o.integritySmoke:
		start := time.Now()
		logf := func(string, ...any) {}
		if o.verbose {
			logf = log.Printf
		}
		if err := harness.IntegritySmoke(logf); err != nil {
			return &errViolation{fmt.Sprintf("%v", err)}
		}
		fmt.Printf("integrity-smoke: lying worker and corrupting transport both quarantined, results byte-identical to control (%.1fs)\n",
			time.Since(start).Seconds())
		return nil
	case o.replay != "":
		seed, keep, err := chaos.ParseRepro(o.replay)
		if err != nil {
			return err
		}
		sched := harness.PlanFor(o.harnessOptions(), seed)
		sched.Keep = keep
		return o.runOne(sched)
	case o.seedSet:
		return o.runOne(harness.PlanFor(o.harnessOptions(), o.seed))
	default:
		return o.explore()
	}
}

// runOne runs a single schedule and reports it in full.
func (o *options) runOne(sched *chaos.Schedule) error {
	hopts := o.harnessOptions()
	rep, err := harness.Run(hopts, sched)
	if err != nil {
		return err
	}
	fmt.Printf("schedule %s: %d fault(s) fired, %d coordinator restart(s)\n", rep.Repro, len(rep.Fired), rep.Restarts)
	for _, f := range rep.Fired {
		fmt.Printf("  fired %s\n", f)
	}
	if rep.Violation == "" {
		fmt.Println("all invariants held")
		return nil
	}
	return o.reportViolation(hopts, sched, rep)
}

// explore runs o.seeds planned schedules and stops at the first violation.
func (o *options) explore() error {
	hopts := o.harnessOptions()
	start := time.Now()
	fired := 0
	for i := 0; i < o.seeds; i++ {
		seed := o.seedBase + uint64(i)
		sched := harness.PlanFor(hopts, seed)
		rep, err := harness.Run(hopts, sched)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		fired += len(rep.Fired)
		if rep.Violation != "" {
			return o.reportViolation(hopts, sched, rep)
		}
		if o.verbose || (i+1)%25 == 0 || i+1 == o.seeds {
			log.Printf("%d/%d schedules ok (%d faults fired, %.0fs)", i+1, o.seeds, fired, time.Since(start).Seconds())
		}
	}
	fmt.Printf("%d schedules, %d faults fired, 0 invariant violations (%.0fs)\n", o.seeds, fired, time.Since(start).Seconds())
	return nil
}

// reportViolation prints everything a human needs to chase the failure —
// the invariant, the detail, the fired faults, the repro token — then
// shrinks the schedule to its minimal form (unless -no-shrink) and returns
// the exit-1 error carrying the shortest token that still fails.
func (o *options) reportViolation(hopts harness.Options, sched *chaos.Schedule, rep *harness.Report) error {
	fmt.Printf("INVARIANT VIOLATION: %s\n%s\n", rep.Violation, rep.Detail)
	for _, f := range rep.Fired {
		fmt.Printf("  fired %s\n", f)
	}
	fmt.Printf("reproduce with: go run ./cmd/chaos -replay %q -workers %d -concurrency %d\n",
		rep.Repro, o.workers, o.concurrency)
	token := rep.Repro
	if !o.noShrink {
		log.Printf("shrinking %s ...", rep.Repro)
		shrunk, best, err := harness.Shrink(hopts, sched)
		if err != nil {
			log.Printf("shrink failed (reporting unshrunk schedule): %v", err)
		} else {
			token = shrunk.Repro()
			fmt.Printf("shrunk to %d fault(s): %s (%s)\n", len(shrunk.Active()), token, best.Violation)
		}
	}
	if o.out != "" {
		fmt.Printf("artifacts saved under %s\n", o.out)
	}
	return &errViolation{fmt.Sprintf("invariant %s violated; minimal repro %q", rep.Violation, token)}
}
