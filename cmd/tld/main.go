// Command tld is the translating loader: it compiles MiniC source, applies
// an optional basic block enlargement file, performs per-configuration code
// generation (multinodeword scheduling for static machines), and writes the
// executable image that cmd/sim runs — the first half of the paper's
// two-part simulator.
//
// Usage:
//
//	tld -src prog.mc -out prog.img [-enlarge prog.bbe]
//	    [-disc dyn4] [-issue 8] [-mem A] [-branch single] [-sched list] [-dump]
//
// Sources ending in .ir or .asm are parsed as node-program assembly (the
// format internal/ir's Disassemble emits) instead of MiniC.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

func main() {
	var (
		src    = flag.String("src", "", "MiniC source file (required)")
		out    = flag.String("out", "", "output image file (required unless -dump)")
		ef     = flag.String("enlarge", "", "basic block enlargement file from cmd/bbe")
		disc   = flag.String("disc", "dyn4", "scheduling discipline: static, dyn1, dyn4, dyn256")
		issue  = flag.Int("issue", 8, "issue model number, 1..8")
		memID  = flag.String("mem", "A", "memory configuration letter, A..G")
		brMode = flag.String("branch", "single", "branch handling: single, enlarged, perfect")
		schedK = flag.String("sched", "list", "static scheduler: list (greedy), exact (branch-and-bound optimum for small blocks)")
		noOpt  = flag.Bool("O0", false, "disable the block-local optimizer")
		dump   = flag.Bool("dump", false, "print the loaded program as text")
	)
	flag.Parse()
	if err := run(*src, *out, *ef, *disc, *issue, *memID, *brMode, *schedK, *noOpt, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "tld:", err)
		os.Exit(1)
	}
}

func run(src, out, efPath, disc string, issue int, memID, brMode, schedK string, noOpt, dump bool) error {
	if src == "" {
		return fmt.Errorf("-src is required")
	}
	cfg, err := machine.ParseConfig(disc, issue, memID, brMode)
	if err != nil {
		return err
	}
	if cfg.Sched, err = machine.ParseSchedKind(schedK); err != nil {
		return err
	}
	source, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	var prog *ir.Program
	if strings.HasSuffix(src, ".ir") || strings.HasSuffix(src, ".asm") {
		// Node-program assembly (see internal/ir's Disassemble format).
		prog, err = ir.Assemble(string(source))
	} else {
		prog, err = minic.Compile(src, string(source), minic.Options{Optimize: !noOpt})
	}
	if err != nil {
		return err
	}
	var ef *enlarge.File
	if efPath != "" {
		data, err := os.ReadFile(efPath)
		if err != nil {
			return err
		}
		ef, err = enlarge.Unmarshal(data)
		if err != nil {
			return err
		}
	}
	// A corrupt enlargement file degrades to the single-basic-block
	// equivalent instead of failing the build: the program output is
	// unaffected, only the timing loses the enlargement, and cmd/sim
	// reports the degradation in its statistics (EFDegradations).
	img, err := loader.LoadDegrading(prog, cfg, ef)
	if err != nil {
		return err
	}
	if img.Degraded {
		fmt.Fprintf(os.Stderr, "tld: warning: enlargement file %s is corrupt; degraded %s to its single-basic-block equivalent (%s)\n",
			efPath, cfg, img.Cfg)
	}
	if dump {
		fmt.Print(img.Prog.Dump())
	}
	if out == "" {
		if dump {
			return nil
		}
		return fmt.Errorf("-out is required")
	}
	if err := img.WriteFile(out); err != nil {
		return err
	}
	mem, alu := img.Prog.StaticMix()
	fmt.Printf("tld: %s -> %s (%s): %d blocks, %d nodes (%d ALU, %d MEM)\n",
		src, out, cfg, len(img.Prog.Blocks), img.Prog.NumNodes(), alu, mem)
	return nil
}
