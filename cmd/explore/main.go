// Command explore searches the extended design space the paper's
// conclusions point toward: window depths beyond 1/4/256, the gshare
// predictor, and enlargement, reporting the efficient frontier between
// performance (work-normalized nodes/cycle) and wasted work (operation
// redundancy — the price Figure 6 measures).
//
// Usage:
//
//	explore [-bench compress] [-issue 8] [-mem A]
//	        [-workers 0] [-timeout 0] [-resume sweep.journal]
//
// With -resume, completed points are journaled to the named file and a
// killed or interrupted sweep picks up where it left off. Ctrl-C stops the
// sweep cleanly; rerunning with the same -resume file finishes it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"fgpsim/internal/bench"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
)

type point struct {
	label      string
	cfg        machine.Config
	speed      float64
	redundancy float64
	accuracy   float64
	window     float64
}

func main() {
	var (
		benchName = flag.String("bench", "compress", "benchmark to explore")
		issueID   = flag.Int("issue", 8, "issue model 1..8")
		memID     = flag.String("mem", "A", "memory configuration A..G")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "per-point simulation timeout (0 = none)")
		resume    = flag.String("resume", "", "journal file: completed points persist and resume across runs")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *benchName, *issueID, *memID, *workers, *timeout, *resume); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, benchName string, issueID int, memID string, workers int, timeout time.Duration, resume string) error {
	b := bench.ByName(benchName)
	if b == nil {
		return fmt.Errorf("unknown benchmark %q", benchName)
	}
	base, err := machine.ParseConfig("dyn256", issueID, memID, "single")
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "preparing %s...\n", benchName)
	w, err := exp.Prepare(b, enlarge.DefaultOptions())
	if err != nil {
		return err
	}

	var cfgs []machine.Config
	windows := []int{1, 2, 4, 8, 16, 32, 64, 256}
	for _, win := range windows {
		for _, pk := range []machine.PredictorKind{machine.TwoBit, machine.GSharePredictor} {
			for _, bm := range []machine.BranchMode{machine.SingleBB, machine.EnlargedBB} {
				cfg := base
				cfg.WindowOverride = win
				cfg.Predictor = pk
				cfg.Branch = bm
				cfgs = append(cfgs, cfg)
			}
		}
	}
	res, err := exp.GridContext(ctx, []*exp.Prepared{w}, cfgs, exp.GridOptions{
		Workers:    workers,
		Retries:    2,
		RunTimeout: timeout,
		Journal:    resume,
	})
	if err != nil {
		return err
	}
	var pts []point
	for _, cfg := range cfgs {
		s := res.Get(exp.KeyOf(benchName, cfg))
		if s == nil {
			continue
		}
		pts = append(pts, point{
			label:      fmt.Sprintf("w%-3d %-6s %s", cfg.WindowOverride, predName(cfg.Predictor), cfg.Branch),
			cfg:        cfg,
			speed:      s.Speed(),
			redundancy: s.Redundancy(),
			accuracy:   s.PredictionAccuracy(),
			window:     s.MeanWindowBlocks(),
		})
	}

	sort.Slice(pts, func(i, j int) bool { return pts[i].speed > pts[j].speed })
	fmt.Printf("design space of %s at issue %d, memory %s (%d points)\n\n",
		benchName, issueID, memID, len(pts))
	fmt.Printf("%-28s %8s %11s %9s %8s  %s\n",
		"configuration", "npc", "redundancy", "accuracy", "window", "frontier")
	bestRed := 2.0
	for _, p := range pts {
		frontier := ""
		if p.redundancy < bestRed {
			bestRed = p.redundancy
			frontier = "*"
		}
		fmt.Printf("%-28s %8.2f %11.3f %9.3f %8.2f  %s\n",
			p.label, p.speed, p.redundancy, p.accuracy, p.window, frontier)
	}
	fmt.Println("\n'*' marks the efficient frontier: no faster configuration wastes")
	fmt.Println("less work. The paper's 'optimal point between the enlargement of")
	fmt.Println("basic blocks and the use of dynamic scheduling' is where the")
	fmt.Println("frontier flattens.")
	return nil
}

func predName(pk machine.PredictorKind) string {
	if pk == machine.GSharePredictor {
		return "gshare"
	}
	return "2bit"
}
