// Command bbe builds a basic block enlargement file from a branch profile,
// mirroring the paper's separate enlargement-file creation program: it
// sorts branch arc densities by use and enlarges blocks starting from the
// most heavily used arcs until the weight or ratio thresholds fail.
//
// Usage:
//
//	bbe -src prog.mc -profile prof.json -out prog.bbe
//	    [-minweight 16] [-minratio 0.66] [-maxlen 8] [-maxinst 16]
package main

import (
	"flag"
	"fmt"
	"os"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/minic"
)

func main() {
	var (
		src       = flag.String("src", "", "MiniC source file (required)")
		profPath  = flag.String("profile", "", "profile file from sim -functional -profile (required)")
		out       = flag.String("out", "", "output enlargement file (required)")
		minWeight = flag.Int64("minweight", 0, "minimum dynamic arc count to follow")
		minRatio  = flag.Float64("minratio", 0, "minimum share of the followed arc")
		maxLen    = flag.Int("maxlen", 0, "maximum blocks per chain")
		maxInst   = flag.Int("maxinst", 0, "maximum materialized copies of one block")
	)
	flag.Parse()
	if err := run(*src, *profPath, *out, *minWeight, *minRatio, *maxLen, *maxInst); err != nil {
		fmt.Fprintln(os.Stderr, "bbe:", err)
		os.Exit(1)
	}
}

func run(src, profPath, out string, minWeight int64, minRatio float64, maxLen, maxInst int) error {
	if src == "" || profPath == "" || out == "" {
		return fmt.Errorf("-src, -profile, and -out are required")
	}
	source, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	prog, err := minic.Compile(src, string(source), minic.Options{Optimize: true})
	if err != nil {
		return err
	}
	profData, err := os.ReadFile(profPath)
	if err != nil {
		return err
	}
	prof, err := interp.UnmarshalProfile(profData)
	if err != nil {
		return err
	}
	o := enlarge.DefaultOptions()
	if minWeight > 0 {
		o.MinArcWeight = minWeight
	}
	if minRatio > 0 {
		o.MinRatio = minRatio
	}
	if maxLen > 0 {
		o.MaxChainLen = maxLen
	}
	if maxInst > 0 {
		o.MaxInstances = maxInst
	}
	ef := enlarge.Build(prog, prof, o)
	data, err := ef.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	total := 0
	for _, c := range ef.Chains {
		total += len(c.Steps)
	}
	fmt.Printf("bbe: %d chains covering %d block instances -> %s\n", len(ef.Chains), total, out)
	return nil
}
