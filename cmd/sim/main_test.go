package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
	"fgpsim/internal/snapshot"
	"fgpsim/internal/stats"
)

// A small branchy program so the enlargement builder produces chains worth
// corrupting.
const degradeSrc = `
int counts[128];

int main() {
	int c;
	int words = 0;
	int lines = 0;
	int inword = 0;
	c = getc(0);
	while (c >= 0) {
		counts[c & 127]++;
		if (c == '\n') lines++;
		if (c == ' ' || c == '\n' || c == '\t') {
			inword = 0;
		} else if (!inword) {
			inword = 1;
			words++;
		}
		c = getc(0);
	}
	putc('0' + (lines % 10));
	putc('0' + (words % 10));
	putc('\n');
	return 0;
}
`

// TestCorruptEnlargementDegradesEndToEnd drives the corrupt-enlargement
// degrade path through the real binaries' pipeline: build an enlargement
// file, corrupt it with faultinject.CorruptEnlargement, load the image the
// way cmd/tld now does (LoadDegrading), and run it through cmd/sim's run().
// The run must exit cleanly (nil error), produce byte-identical program
// output, and report EFDegradations > 0 in its statistics.
func TestCorruptEnlargementDegradesEndToEnd(t *testing.T) {
	prog, err := minic.Compile("degrade.mc", degradeSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("the quick brown fox\njumps over the lazy dog\npack my box\n")

	prof := interp.NewProfile()
	ref, err := interp.Run(prog, input, nil, interp.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	ef := enlarge.Build(prog, prof, enlarge.DefaultOptions())
	if len(ef.Chains) == 0 {
		t.Fatal("enlargement produced no chains; nothing to corrupt")
	}

	cfg, err := machine.ParseConfig("dyn4", 8, "A", "enlarged")
	if err != nil {
		t.Fatal(err)
	}

	// Find a seed whose corruption the loader actually rejects (some
	// perturbations can coincide with a still-valid chain).
	var corrupt *enlarge.File
	for seed := uint64(1); seed <= 32; seed++ {
		c := faultinject.CorruptEnlargement(ef, seed)
		_, err := loader.Load(prog, cfg, c)
		var be *loader.BadEnlargementError
		if errors.As(err, &be) {
			corrupt = c
			break
		}
	}
	if corrupt == nil {
		t.Fatal("no corruption seed produced a loader-rejected enlargement file")
	}

	img, err := loader.LoadDegrading(prog, cfg, corrupt)
	if err != nil {
		t.Fatalf("LoadDegrading failed instead of degrading: %v", err)
	}
	if !img.Degraded {
		t.Fatal("image not marked Degraded")
	}

	dir := t.TempDir()
	imgPath := filepath.Join(dir, "degrade.img")
	if err := img.WriteFile(imgPath); err != nil {
		t.Fatal(err)
	}
	in0Path := filepath.Join(dir, "in0.txt")
	if err := os.WriteFile(in0Path, input, 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.bin")

	// Capture the stats report cmd/sim prints to stderr.
	oldStderr := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	stderrCh := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, pr)
		stderrCh <- buf.String()
	}()

	runErr := run(imgPath, in0Path, "", outPath, "", "", "", "", false, true, 0, 0, 0, 0, false, ckptOpts{}, "")

	pw.Close()
	os.Stderr = oldStderr
	stderr := <-stderrCh
	pr.Close()

	if runErr != nil {
		t.Fatalf("sim run on degraded image failed (non-zero exit): %v", runErr)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.Output) {
		t.Errorf("degraded run output %q differs from reference %q", got, ref.Output)
	}
	if !strings.Contains(stderr, "ef degradations") {
		t.Errorf("stats report does not mention EF degradations:\n%s", stderr)
	}
}

// TestCheckpointRestoreCLI drives -checkpoint/-restore through run(): an
// interrupted armed run leaves a snapshot behind, a -restore run picks it
// up and produces the reference output, and a completed run cleans up. The
// bit-identical resume guarantee itself is enforced by
// difftest.SnapshotOracle; this covers the CLI wiring around it.
func TestCheckpointRestoreCLI(t *testing.T) {
	prog, err := minic.Compile("ckpt.mc", degradeSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("checkpoint restore round trip\nacross two lives\n"), 100)
	ref, err := interp.Run(prog, input, nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := machine.ParseConfig("dyn4", 4, "A", "single")
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(prog, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	imgPath := filepath.Join(dir, "ckpt.img")
	if err := img.WriteFile(imgPath); err != nil {
		t.Fatal(err)
	}
	in0Path := filepath.Join(dir, "in0.txt")
	if err := os.WriteFile(in0Path, input, 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "run.snap")
	outPath := filepath.Join(dir, "out.bin")

	runSim := func(ck ckptOpts) error {
		return run(imgPath, in0Path, "", outPath, "", "", "", "", false, false, 0, 0, 0, 0, false, ckptOpts{
			path: ck.path, every: ck.every, restore: ck.restore,
		}, "")
	}

	// Life 1: interrupt an armed run mid-flight by capping its cycles below
	// the full runtime, leaving a parked snapshot behind.
	fp := snapshot.RunFingerprint(img, input, nil, nil)
	lim := core.Limits{CheckpointEvery: 500, MaxCycles: 2000, Checkpoint: snapshot.Saver(snapPath, fp, nil)}
	if _, err := core.RunContext(context.Background(), img, input, nil, nil, nil, lim); err == nil {
		t.Fatal("capped run finished; raise the program size or lower MaxCycles")
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("interrupted run parked no snapshot: %v", err)
	}

	// Life 2: -restore resumes from the snapshot, completes, produces the
	// reference output, and removes the snapshot.
	if err := runSim(ckptOpts{path: snapPath, every: 500, restore: true}); err != nil {
		t.Fatalf("restore run: %v", err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.Output) {
		t.Errorf("restored run output %q differs from reference %q", got, ref.Output)
	}
	if _, err := os.Stat(snapPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("completed run left its snapshot behind: %v", err)
	}

	// -restore with nothing to restore starts fresh and still succeeds.
	if err := runSim(ckptOpts{path: snapPath, every: 500, restore: true}); err != nil {
		t.Fatalf("fresh -restore run: %v", err)
	}

	// A snapshot from a different run (wrong fingerprint) is refused.
	wrong := &snapshot.Snapshot{Fingerprint: fp ^ 0xdead, Engine: &core.EngineState{Stats: &stats.Run{}}}
	if err := snapshot.WriteFile(snapPath, wrong); err != nil {
		t.Fatal(err)
	}
	err = runSim(ckptOpts{path: snapPath, every: 500, restore: true})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("mismatched fingerprint: err = %v, want fingerprint refusal", err)
	}

	// Flag contract checks.
	if err := run(imgPath, in0Path, "", outPath, "", "", "", "", false, false, 0, 0, 0, 0, false,
		ckptOpts{restore: true}, ""); err == nil || !strings.Contains(err.Error(), "-restore requires -checkpoint") {
		t.Errorf("-restore without -checkpoint: err = %v", err)
	}
	if err := run(imgPath, in0Path, "", outPath, "", "", "", "", false, false, 0, 0, 0, 0, false,
		ckptOpts{path: snapPath, every: -1}, ""); err == nil || !strings.Contains(err.Error(), "-checkpoint-every") {
		t.Errorf("negative cadence: err = %v", err)
	}
}
