package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// A small branchy program so the enlargement builder produces chains worth
// corrupting.
const degradeSrc = `
int counts[128];

int main() {
	int c;
	int words = 0;
	int lines = 0;
	int inword = 0;
	c = getc(0);
	while (c >= 0) {
		counts[c & 127]++;
		if (c == '\n') lines++;
		if (c == ' ' || c == '\n' || c == '\t') {
			inword = 0;
		} else if (!inword) {
			inword = 1;
			words++;
		}
		c = getc(0);
	}
	putc('0' + (lines % 10));
	putc('0' + (words % 10));
	putc('\n');
	return 0;
}
`

// TestCorruptEnlargementDegradesEndToEnd drives the corrupt-enlargement
// degrade path through the real binaries' pipeline: build an enlargement
// file, corrupt it with faultinject.CorruptEnlargement, load the image the
// way cmd/tld now does (LoadDegrading), and run it through cmd/sim's run().
// The run must exit cleanly (nil error), produce byte-identical program
// output, and report EFDegradations > 0 in its statistics.
func TestCorruptEnlargementDegradesEndToEnd(t *testing.T) {
	prog, err := minic.Compile("degrade.mc", degradeSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("the quick brown fox\njumps over the lazy dog\npack my box\n")

	prof := interp.NewProfile()
	ref, err := interp.Run(prog, input, nil, interp.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	ef := enlarge.Build(prog, prof, enlarge.DefaultOptions())
	if len(ef.Chains) == 0 {
		t.Fatal("enlargement produced no chains; nothing to corrupt")
	}

	cfg, err := machine.ParseConfig("dyn4", 8, "A", "enlarged")
	if err != nil {
		t.Fatal(err)
	}

	// Find a seed whose corruption the loader actually rejects (some
	// perturbations can coincide with a still-valid chain).
	var corrupt *enlarge.File
	for seed := uint64(1); seed <= 32; seed++ {
		c := faultinject.CorruptEnlargement(ef, seed)
		_, err := loader.Load(prog, cfg, c)
		var be *loader.BadEnlargementError
		if errors.As(err, &be) {
			corrupt = c
			break
		}
	}
	if corrupt == nil {
		t.Fatal("no corruption seed produced a loader-rejected enlargement file")
	}

	img, err := loader.LoadDegrading(prog, cfg, corrupt)
	if err != nil {
		t.Fatalf("LoadDegrading failed instead of degrading: %v", err)
	}
	if !img.Degraded {
		t.Fatal("image not marked Degraded")
	}

	dir := t.TempDir()
	imgPath := filepath.Join(dir, "degrade.img")
	if err := img.WriteFile(imgPath); err != nil {
		t.Fatal(err)
	}
	in0Path := filepath.Join(dir, "in0.txt")
	if err := os.WriteFile(in0Path, input, 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.bin")

	// Capture the stats report cmd/sim prints to stderr.
	oldStderr := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	stderrCh := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, pr)
		stderrCh <- buf.String()
	}()

	runErr := run(imgPath, in0Path, "", outPath, "", "", "", "", false, true, 0, 0, 0, 0, false)

	pw.Close()
	os.Stderr = oldStderr
	stderr := <-stderrCh
	pr.Close()

	if runErr != nil {
		t.Fatalf("sim run on degraded image failed (non-zero exit): %v", runErr)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.Output) {
		t.Errorf("degraded run output %q differs from reference %q", got, ref.Output)
	}
	if !strings.Contains(stderr, "ef degradations") {
		t.Errorf("stats report does not mention EF degradations:\n%s", stderr)
	}
}
