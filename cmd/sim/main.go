// Command sim is the run-time simulator: it executes an image produced by
// cmd/tld cycle by cycle and reports the paper's statistics. With
// -functional it runs the untimed interpreter instead, which is how
// profiles (for cmd/bbe) and traces (for perfect-prediction simulations)
// are collected — the second half of the paper's two-part simulator.
//
// Usage:
//
//	sim -img prog.img -in0 input.txt [-in1 other.txt]
//	    [-hintsfrom prof.json] [-usetrace prog.trc]
//	    [-out output.bin] [-stats] [-timeout 30s]
//	    [-checkpoint run.snap] [-checkpoint-every 1000000] [-restore]
//	    [-fault-seed 1 -fault-rate 0.001] [-fault-arch]
//	    [-batch 'base,w4,w64+gshare,consmem']
//	    [-cpuprofile cpu.out] [-memprofile mem.out]
//	sim -img prog.img -in0 input.txt -functional
//	    [-profile prof.json] [-trace prog.trc]
//
// With -checkpoint the timed engine parks a durable snapshot of its
// complete state every -checkpoint-every simulated cycles; -restore picks
// the run back up from the newest decodable snapshot (fingerprint-checked
// against the image, inputs, and hints), continuing bit-identically with
// the run that was interrupted — including the fault-injection stream. A
// run that finishes removes its snapshot.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/snapshot"
)

// ckptOpts bundles the checkpoint/restore command line.
type ckptOpts struct {
	path    string // snapshot file ("" = checkpoints off)
	every   int64  // cadence in simulated cycles
	restore bool   // resume from the newest decodable snapshot at path
}

func main() {
	var (
		imgPath    = flag.String("img", "", "image file from cmd/tld (required)")
		in0Path    = flag.String("in0", "", "input stream 0 file")
		in1Path    = flag.String("in1", "", "input stream 1 file")
		outPath    = flag.String("out", "", "write program output to this file (default stdout)")
		showStats  = flag.Bool("stats", true, "print run statistics to stderr")
		functional = flag.Bool("functional", false, "run the untimed interpreter instead of the timed engine")
		profPath   = flag.String("profile", "", "functional mode: write the branch profile here")
		tracePath  = flag.String("trace", "", "functional mode: write the dynamic block trace here")
		useTrace   = flag.String("usetrace", "", "timed mode: trace file for perfect prediction")
		hintsFrom  = flag.String("hintsfrom", "", "timed mode: profile file supplying static prediction hints")
		pipeCycles = flag.Int64("pipe", 0, "timed dynamic mode: print pipeline events for the first N cycles")
		timeout    = flag.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = none)")
		faultSeed  = flag.Uint64("fault-seed", 0, "timed dynamic mode: fault-injection stream seed")
		faultRate  = flag.Float64("fault-rate", 0, "timed dynamic mode: per-cycle fault probability (0 disables)")
		faultArch  = flag.Bool("fault-arch", false, "include unrecoverable architectural-state faults in the injected set")
		batchSpec  = flag.String("batch", "", "timed dynamic mode: run K engine-variant lanes in one batched pass; comma-separated lane specs of +-joined knobs (w<N>, gshare[<bits>], btb<N>, consmem, base), e.g. 'base,w4,w64+gshare,consmem'")
		ckptPath   = flag.String("checkpoint", "", "timed mode: park durable engine snapshots at this path")
		ckptEvery  = flag.Int64("checkpoint-every", 1_000_000, "simulated cycles between checkpoints (with -checkpoint)")
		restore    = flag.Bool("restore", false, "timed mode: resume from the newest snapshot at -checkpoint before running")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim:", err)
		os.Exit(1)
	}
	err = run(*imgPath, *in0Path, *in1Path, *outPath, *profPath, *tracePath,
		*useTrace, *hintsFrom, *functional, *showStats, *pipeCycles,
		*timeout, *faultSeed, *faultRate, *faultArch,
		ckptOpts{path: *ckptPath, every: *ckptEvery, restore: *restore}, *batchSpec)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim:", err)
		os.Exit(1)
	}
}

// startProfiles starts CPU profiling and/or arms a heap snapshot, returning
// a function that finishes both. Empty paths disable each profile.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func readOptional(path string) ([]byte, error) {
	if path == "" {
		return nil, nil
	}
	return os.ReadFile(path)
}

func run(imgPath, in0Path, in1Path, outPath, profPath, tracePath, useTrace, hintsFrom string, functional, showStats bool, pipeCycles int64,
	timeout time.Duration, faultSeed uint64, faultRate float64, faultArch bool, ckpt ckptOpts, batchSpec string) error {
	if imgPath == "" {
		return fmt.Errorf("-img is required")
	}
	if batchSpec != "" {
		switch {
		case functional:
			return fmt.Errorf("-batch applies to timed runs, not -functional")
		case ckpt.path != "":
			return fmt.Errorf("-batch and -checkpoint are mutually exclusive")
		case faultRate > 0:
			return fmt.Errorf("-batch and fault injection are mutually exclusive")
		case pipeCycles > 0:
			return fmt.Errorf("-batch and -pipe are mutually exclusive")
		}
	}
	if ckpt.path == "" && ckpt.restore {
		return fmt.Errorf("-restore requires -checkpoint")
	}
	if ckpt.path != "" && ckpt.every <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %d", ckpt.every)
	}
	if ckpt.path != "" && functional {
		return fmt.Errorf("-checkpoint applies to timed runs, not -functional")
	}
	img, err := loader.ReadFile(imgPath)
	if err != nil {
		return err
	}
	in0, err := readOptional(in0Path)
	if err != nil {
		return err
	}
	in1, err := readOptional(in1Path)
	if err != nil {
		return err
	}

	var output []byte
	if batchSpec != "" {
		out, err := batchRun(img, in0, in1, useTrace, hintsFrom, batchSpec, timeout, showStats)
		if err != nil {
			return err
		}
		output = out
	} else if functional {
		opts := interp.Options{RecordTrace: tracePath != ""}
		if profPath != "" {
			opts.Profile = interp.NewProfile()
		}
		res, err := interp.Run(img.Prog, in0, in1, opts)
		if err != nil {
			return err
		}
		output = res.Output
		if profPath != "" {
			data, err := opts.Profile.Marshal()
			if err != nil {
				return err
			}
			if err := os.WriteFile(profPath, data, 0o644); err != nil {
				return err
			}
		}
		if tracePath != "" {
			if err := os.WriteFile(tracePath, interp.MarshalTrace(res.Trace), 0o644); err != nil {
				return err
			}
		}
		if showStats {
			fmt.Fprintf(os.Stderr, "functional: %d nodes, %d blocks retired\n",
				res.RetiredNodes, res.RetiredBlocks)
		}
	} else {
		var pipe *core.PipeLog
		if pipeCycles > 0 {
			pipe = &core.PipeLog{MaxCycles: pipeCycles}
		}
		var faultOpts *faultinject.Options
		if faultRate > 0 {
			faultOpts = &faultinject.Options{Seed: faultSeed, Rate: faultRate}
			if faultArch {
				faultOpts.Kinds = append(faultinject.DefaultKinds(), faultinject.ArchBit)
			}
		}
		res, inj, err := timedRun(img, in0, in1, useTrace, hintsFrom, pipe, timeout, faultOpts, ckpt)
		if inj != nil {
			for _, ev := range inj.Events() {
				fmt.Fprintf(os.Stderr, "fault: %s\n", ev)
			}
		}
		if err != nil {
			return err
		}
		output = res.Output
		if img.Degraded {
			// The translating loader fell back to single basic blocks
			// because its enlargement file was corrupt; surface that in the
			// run's statistics (exp sweeps count the same way).
			res.Stats.EFDegradations++
		}
		if pipe != nil {
			fmt.Fprint(os.Stderr, pipe.String())
		}
		if showStats {
			fmt.Fprintf(os.Stderr, "configuration: %s\n%s", img.Cfg, res.Stats)
		}
	}

	if outPath != "" {
		return os.WriteFile(outPath, output, 0o644)
	}
	_, err = os.Stdout.Write(output)
	return err
}

func timedRun(img *loader.Image, in0, in1 []byte, useTrace, hintsFrom string, pipe *core.PipeLog,
	timeout time.Duration, faultOpts *faultinject.Options, ckpt ckptOpts) (*core.RunResult, *faultinject.Injector, error) {
	var trace []ir.BlockID
	if useTrace != "" {
		data, err := os.ReadFile(useTrace)
		if err != nil {
			return nil, nil, err
		}
		trace, err = interp.UnmarshalTrace(data)
		if err != nil {
			return nil, nil, err
		}
	}
	hints, err := decodeHints(hintsFrom)
	if err != nil {
		return nil, nil, err
	}

	// Checkpoint arming. Fill-unit images mutate their program at run time
	// and cannot be pinned to a stable fingerprint, so they run unarmed.
	armed := ckpt.path != ""
	if armed && img.Cfg.Branch == machine.FillUnit {
		fmt.Fprintln(os.Stderr, "sim: fill-unit images cannot be snapshotted; running without checkpoints")
		armed = false
	}
	var (
		fp     uint64
		resume *core.EngineState
		inj    *faultinject.Injector
	)
	if armed {
		fp = snapshot.RunFingerprint(img, in0, in1, hints)
		if ckpt.restore {
			switch snap, err := snapshot.ReadLatest(ckpt.path); {
			case err == nil:
				if snap.Fingerprint != fp {
					return nil, nil, fmt.Errorf("snapshot %s is from a different run (image, inputs, or hints changed)", ckpt.path)
				}
				resume = snap.Engine
				if snap.Injector != nil {
					if faultOpts == nil {
						return nil, nil, fmt.Errorf("snapshot %s carries fault-injection state; rerun with the original -fault-rate/-fault-seed", ckpt.path)
					}
					inj = faultinject.Resume(*faultOpts, snap.Injector)
				}
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintln(os.Stderr, "sim: no snapshot to restore; starting fresh")
			default:
				// Both the snapshot and its .prev rotation are torn or
				// corrupt: the durable ladder is exhausted, start over.
				fmt.Fprintf(os.Stderr, "sim: %v; starting fresh\n", err)
			}
		}
	}
	if inj == nil && faultOpts != nil {
		inj = faultinject.New(*faultOpts)
	}

	lim := core.Limits{Pipe: pipe, Resume: resume}
	if inj != nil {
		lim.Fault = inj.Hook()
	}
	if armed {
		lim.CheckpointEvery = ckpt.every
		lim.Checkpoint = snapshot.Saver(ckpt.path, fp, inj)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := core.RunContext(ctx, img, in0, in1, trace, hints, lim)
	if err != nil {
		return nil, inj, err
	}
	if armed {
		// A finished run's snapshot must not seed a later -restore.
		snapshot.Remove(ckpt.path)
	}
	return res, inj, nil
}

// batchRun executes the -batch path: it derives one engine-level variant of
// the loaded image per lane spec and runs all lanes through core.RunBatch,
// one shared fetch/decode pass feeding K private schedulers. Every lane
// must compute the same program output (the knobs are timing-only), so the
// lanes cross-check each other before the output is written.
func batchRun(img *loader.Image, in0, in1 []byte, useTrace, hintsFrom, spec string,
	timeout time.Duration, showStats bool) ([]byte, error) {
	if !img.Cfg.Disc.Dynamic() {
		return nil, fmt.Errorf("-batch needs a dynamically scheduled image, got %s", img.Cfg.Disc)
	}
	if img.Cfg.Branch == machine.FillUnit {
		return nil, fmt.Errorf("-batch cannot run fill-unit images (their program mutates at run time)")
	}
	var trace []ir.BlockID
	if useTrace != "" {
		data, err := os.ReadFile(useTrace)
		if err != nil {
			return nil, err
		}
		if trace, err = interp.UnmarshalTrace(data); err != nil {
			return nil, err
		}
	}
	if img.Cfg.Branch == machine.Perfect && trace == nil {
		return nil, fmt.Errorf("-batch with a perfect-prediction image needs -usetrace")
	}
	hints, err := decodeHints(hintsFrom)
	if err != nil {
		return nil, err
	}

	specs := strings.Split(spec, ",")
	lanes := make([]core.BatchLane, len(specs))
	for i, s := range specs {
		cfg, err := applyLaneSpec(img.Cfg, strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("-batch lane %d %q: %w", i, s, err)
		}
		// The knobs are engine-level: the translated image is config-
		// independent for dynamic disciplines, so the lanes share its
		// program and differ only in the Cfg the engine reads.
		im := *img
		im.Cfg = cfg
		lanes[i] = core.BatchLane{Img: &im}
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	results, errs, err := core.RunBatchContext(ctx, lanes, in0, in1, trace, hints)
	if err != nil {
		return nil, err
	}
	var output []byte
	failed := 0
	for i, res := range results {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "lane %d [%s]: %v\n", i, specs[i], errs[i])
			failed++
			continue
		}
		if output == nil {
			output = res.Output
		} else if !bytes.Equal(output, res.Output) {
			return nil, fmt.Errorf("lane %d [%s] computed a different program output", i, specs[i])
		}
		if showStats {
			fmt.Fprintf(os.Stderr, "lane %d [%s] configuration: %s\n%s",
				i, specs[i], lanes[i].Img.Cfg, res.Stats)
		}
	}
	if failed == len(results) {
		return nil, fmt.Errorf("all %d batch lanes failed", failed)
	}
	if failed > 0 {
		return nil, fmt.Errorf("%d of %d batch lanes failed", failed, len(results))
	}
	return output, nil
}

// applyLaneSpec derives one lane's configuration from the image's by
// applying a +-joined list of engine-level knobs: w<N> (window override),
// gshare[<bits>] / 2bit (direction predictor), btb<N> (BTB entries),
// consmem (conservative memory), mem<A-G> (memory configuration),
// issue<1-8> (issue model), and base (the image's configuration verbatim).
func applyLaneSpec(base machine.Config, spec string) (machine.Config, error) {
	cfg := base
	if spec == "" {
		return cfg, fmt.Errorf("empty lane spec")
	}
	for _, knob := range strings.Split(spec, "+") {
		switch {
		case knob == "base":
			// The image's configuration, unchanged.
		case knob == "consmem":
			cfg.ConservativeMem = true
		case knob == "2bit":
			cfg.Predictor = machine.TwoBit
		case knob == "gshare":
			cfg.Predictor = machine.GSharePredictor
		case strings.HasPrefix(knob, "gshare"):
			bits, err := strconv.Atoi(knob[len("gshare"):])
			if err != nil || bits < 1 || bits > 24 {
				return cfg, fmt.Errorf("bad gshare table bits in %q", knob)
			}
			cfg.Predictor = machine.GSharePredictor
			cfg.GShareBits = bits
		case strings.HasPrefix(knob, "btb"):
			n, err := strconv.Atoi(knob[len("btb"):])
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("bad BTB size in %q", knob)
			}
			cfg.BTBEntries = n
		case strings.HasPrefix(knob, "mem"):
			if len(knob) != len("mem")+1 {
				return cfg, fmt.Errorf("bad memory configuration in %q", knob)
			}
			mc, ok := machine.MemConfigByID(knob[len("mem")])
			if !ok {
				return cfg, fmt.Errorf("unknown memory configuration %q", knob)
			}
			cfg.Mem = mc
		case strings.HasPrefix(knob, "issue"):
			id, err := strconv.Atoi(knob[len("issue"):])
			if err != nil {
				return cfg, fmt.Errorf("bad issue model in %q", knob)
			}
			im, ok := machine.IssueModelByID(id)
			if !ok {
				return cfg, fmt.Errorf("unknown issue model %q", knob)
			}
			cfg.Issue = im
		case strings.HasPrefix(knob, "w"):
			n, err := strconv.Atoi(knob[1:])
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("bad window override in %q", knob)
			}
			cfg.WindowOverride = n
		default:
			return cfg, fmt.Errorf("unknown knob %q", knob)
		}
	}
	return cfg, nil
}

func decodeHints(path string) (map[ir.BlockID]bool, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prof, err := interp.UnmarshalProfile(data)
	if err != nil {
		return nil, err
	}
	return branch.HintsFromProfile(prof.Taken, prof.NotTaken), nil
}
