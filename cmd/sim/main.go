// Command sim is the run-time simulator: it executes an image produced by
// cmd/tld cycle by cycle and reports the paper's statistics. With
// -functional it runs the untimed interpreter instead, which is how
// profiles (for cmd/bbe) and traces (for perfect-prediction simulations)
// are collected — the second half of the paper's two-part simulator.
//
// Usage:
//
//	sim -img prog.img -in0 input.txt [-in1 other.txt]
//	    [-hintsfrom prof.json] [-usetrace prog.trc]
//	    [-out output.bin] [-stats] [-timeout 30s]
//	    [-checkpoint run.snap] [-checkpoint-every 1000000] [-restore]
//	    [-fault-seed 1 -fault-rate 0.001] [-fault-arch]
//	    [-cpuprofile cpu.out] [-memprofile mem.out]
//	sim -img prog.img -in0 input.txt -functional
//	    [-profile prof.json] [-trace prog.trc]
//
// With -checkpoint the timed engine parks a durable snapshot of its
// complete state every -checkpoint-every simulated cycles; -restore picks
// the run back up from the newest decodable snapshot (fingerprint-checked
// against the image, inputs, and hints), continuing bit-identically with
// the run that was interrupted — including the fault-injection stream. A
// run that finishes removes its snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/snapshot"
)

// ckptOpts bundles the checkpoint/restore command line.
type ckptOpts struct {
	path    string // snapshot file ("" = checkpoints off)
	every   int64  // cadence in simulated cycles
	restore bool   // resume from the newest decodable snapshot at path
}

func main() {
	var (
		imgPath    = flag.String("img", "", "image file from cmd/tld (required)")
		in0Path    = flag.String("in0", "", "input stream 0 file")
		in1Path    = flag.String("in1", "", "input stream 1 file")
		outPath    = flag.String("out", "", "write program output to this file (default stdout)")
		showStats  = flag.Bool("stats", true, "print run statistics to stderr")
		functional = flag.Bool("functional", false, "run the untimed interpreter instead of the timed engine")
		profPath   = flag.String("profile", "", "functional mode: write the branch profile here")
		tracePath  = flag.String("trace", "", "functional mode: write the dynamic block trace here")
		useTrace   = flag.String("usetrace", "", "timed mode: trace file for perfect prediction")
		hintsFrom  = flag.String("hintsfrom", "", "timed mode: profile file supplying static prediction hints")
		pipeCycles = flag.Int64("pipe", 0, "timed dynamic mode: print pipeline events for the first N cycles")
		timeout    = flag.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = none)")
		faultSeed  = flag.Uint64("fault-seed", 0, "timed dynamic mode: fault-injection stream seed")
		faultRate  = flag.Float64("fault-rate", 0, "timed dynamic mode: per-cycle fault probability (0 disables)")
		faultArch  = flag.Bool("fault-arch", false, "include unrecoverable architectural-state faults in the injected set")
		ckptPath   = flag.String("checkpoint", "", "timed mode: park durable engine snapshots at this path")
		ckptEvery  = flag.Int64("checkpoint-every", 1_000_000, "simulated cycles between checkpoints (with -checkpoint)")
		restore    = flag.Bool("restore", false, "timed mode: resume from the newest snapshot at -checkpoint before running")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim:", err)
		os.Exit(1)
	}
	err = run(*imgPath, *in0Path, *in1Path, *outPath, *profPath, *tracePath,
		*useTrace, *hintsFrom, *functional, *showStats, *pipeCycles,
		*timeout, *faultSeed, *faultRate, *faultArch,
		ckptOpts{path: *ckptPath, every: *ckptEvery, restore: *restore})
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim:", err)
		os.Exit(1)
	}
}

// startProfiles starts CPU profiling and/or arms a heap snapshot, returning
// a function that finishes both. Empty paths disable each profile.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func readOptional(path string) ([]byte, error) {
	if path == "" {
		return nil, nil
	}
	return os.ReadFile(path)
}

func run(imgPath, in0Path, in1Path, outPath, profPath, tracePath, useTrace, hintsFrom string, functional, showStats bool, pipeCycles int64,
	timeout time.Duration, faultSeed uint64, faultRate float64, faultArch bool, ckpt ckptOpts) error {
	if imgPath == "" {
		return fmt.Errorf("-img is required")
	}
	if ckpt.path == "" && ckpt.restore {
		return fmt.Errorf("-restore requires -checkpoint")
	}
	if ckpt.path != "" && ckpt.every <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %d", ckpt.every)
	}
	if ckpt.path != "" && functional {
		return fmt.Errorf("-checkpoint applies to timed runs, not -functional")
	}
	img, err := loader.ReadFile(imgPath)
	if err != nil {
		return err
	}
	in0, err := readOptional(in0Path)
	if err != nil {
		return err
	}
	in1, err := readOptional(in1Path)
	if err != nil {
		return err
	}

	var output []byte
	if functional {
		opts := interp.Options{RecordTrace: tracePath != ""}
		if profPath != "" {
			opts.Profile = interp.NewProfile()
		}
		res, err := interp.Run(img.Prog, in0, in1, opts)
		if err != nil {
			return err
		}
		output = res.Output
		if profPath != "" {
			data, err := opts.Profile.Marshal()
			if err != nil {
				return err
			}
			if err := os.WriteFile(profPath, data, 0o644); err != nil {
				return err
			}
		}
		if tracePath != "" {
			if err := os.WriteFile(tracePath, interp.MarshalTrace(res.Trace), 0o644); err != nil {
				return err
			}
		}
		if showStats {
			fmt.Fprintf(os.Stderr, "functional: %d nodes, %d blocks retired\n",
				res.RetiredNodes, res.RetiredBlocks)
		}
	} else {
		var pipe *core.PipeLog
		if pipeCycles > 0 {
			pipe = &core.PipeLog{MaxCycles: pipeCycles}
		}
		var faultOpts *faultinject.Options
		if faultRate > 0 {
			faultOpts = &faultinject.Options{Seed: faultSeed, Rate: faultRate}
			if faultArch {
				faultOpts.Kinds = append(faultinject.DefaultKinds(), faultinject.ArchBit)
			}
		}
		res, inj, err := timedRun(img, in0, in1, useTrace, hintsFrom, pipe, timeout, faultOpts, ckpt)
		if inj != nil {
			for _, ev := range inj.Events() {
				fmt.Fprintf(os.Stderr, "fault: %s\n", ev)
			}
		}
		if err != nil {
			return err
		}
		output = res.Output
		if img.Degraded {
			// The translating loader fell back to single basic blocks
			// because its enlargement file was corrupt; surface that in the
			// run's statistics (exp sweeps count the same way).
			res.Stats.EFDegradations++
		}
		if pipe != nil {
			fmt.Fprint(os.Stderr, pipe.String())
		}
		if showStats {
			fmt.Fprintf(os.Stderr, "configuration: %s\n%s", img.Cfg, res.Stats)
		}
	}

	if outPath != "" {
		return os.WriteFile(outPath, output, 0o644)
	}
	_, err = os.Stdout.Write(output)
	return err
}

func timedRun(img *loader.Image, in0, in1 []byte, useTrace, hintsFrom string, pipe *core.PipeLog,
	timeout time.Duration, faultOpts *faultinject.Options, ckpt ckptOpts) (*core.RunResult, *faultinject.Injector, error) {
	var trace []ir.BlockID
	if useTrace != "" {
		data, err := os.ReadFile(useTrace)
		if err != nil {
			return nil, nil, err
		}
		trace, err = interp.UnmarshalTrace(data)
		if err != nil {
			return nil, nil, err
		}
	}
	hints, err := decodeHints(hintsFrom)
	if err != nil {
		return nil, nil, err
	}

	// Checkpoint arming. Fill-unit images mutate their program at run time
	// and cannot be pinned to a stable fingerprint, so they run unarmed.
	armed := ckpt.path != ""
	if armed && img.Cfg.Branch == machine.FillUnit {
		fmt.Fprintln(os.Stderr, "sim: fill-unit images cannot be snapshotted; running without checkpoints")
		armed = false
	}
	var (
		fp     uint64
		resume *core.EngineState
		inj    *faultinject.Injector
	)
	if armed {
		fp = snapshot.RunFingerprint(img, in0, in1, hints)
		if ckpt.restore {
			switch snap, err := snapshot.ReadLatest(ckpt.path); {
			case err == nil:
				if snap.Fingerprint != fp {
					return nil, nil, fmt.Errorf("snapshot %s is from a different run (image, inputs, or hints changed)", ckpt.path)
				}
				resume = snap.Engine
				if snap.Injector != nil {
					if faultOpts == nil {
						return nil, nil, fmt.Errorf("snapshot %s carries fault-injection state; rerun with the original -fault-rate/-fault-seed", ckpt.path)
					}
					inj = faultinject.Resume(*faultOpts, snap.Injector)
				}
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintln(os.Stderr, "sim: no snapshot to restore; starting fresh")
			default:
				// Both the snapshot and its .prev rotation are torn or
				// corrupt: the durable ladder is exhausted, start over.
				fmt.Fprintf(os.Stderr, "sim: %v; starting fresh\n", err)
			}
		}
	}
	if inj == nil && faultOpts != nil {
		inj = faultinject.New(*faultOpts)
	}

	lim := core.Limits{Pipe: pipe, Resume: resume}
	if inj != nil {
		lim.Fault = inj.Hook()
	}
	if armed {
		lim.CheckpointEvery = ckpt.every
		lim.Checkpoint = snapshot.Saver(ckpt.path, fp, inj)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := core.RunContext(ctx, img, in0, in1, trace, hints, lim)
	if err != nil {
		return nil, inj, err
	}
	if armed {
		// A finished run's snapshot must not seed a later -restore.
		snapshot.Remove(ckpt.path)
	}
	return res, inj, nil
}

func decodeHints(path string) (map[ir.BlockID]bool, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prof, err := interp.UnmarshalProfile(data)
	if err != nil {
		return nil, err
	}
	return branch.HintsFromProfile(prof.Taken, prof.NotTaken), nil
}
