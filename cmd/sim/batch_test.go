package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// TestBatchCLI drives the -batch path end to end: one image, four
// engine-variant lanes through run(), program output identical to the
// functional reference.
func TestBatchCLI(t *testing.T) {
	prog, err := minic.Compile("batch.mc", degradeSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("a few words to count\nhere are some more\n")

	prof := interp.NewProfile()
	ref, err := interp.Run(prog, input, nil, interp.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	ef := enlarge.Build(prog, prof, enlarge.DefaultOptions())
	cfg, err := machine.ParseConfig("dyn4", 8, "A", "enlarged")
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(prog, cfg, ef)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	imgPath := filepath.Join(dir, "batch.img")
	if err := img.WriteFile(imgPath); err != nil {
		t.Fatal(err)
	}
	in0Path := filepath.Join(dir, "in0.txt")
	if err := os.WriteFile(in0Path, input, 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.bin")

	err = run(imgPath, in0Path, "", outPath, "", "", "", "", false, false, 0, 0, 0, 0, false,
		ckptOpts{}, "base,w1,w64+gshare,consmem+memC")
	if err != nil {
		t.Fatalf("batched run: %v", err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.Output) {
		t.Errorf("batched output %q differs from reference %q", got, ref.Output)
	}

	// Flag contract: -batch refuses the modes it cannot compose with.
	for _, tc := range []struct {
		name string
		err  string
		call func() error
	}{
		{"functional", "-functional", func() error {
			return run(imgPath, in0Path, "", outPath, "", "", "", "", true, false, 0, 0, 0, 0, false, ckptOpts{}, "base")
		}},
		{"checkpoint", "-checkpoint", func() error {
			return run(imgPath, in0Path, "", outPath, "", "", "", "", false, false, 0, 0, 0, 0, false,
				ckptOpts{path: filepath.Join(dir, "s.snap"), every: 100}, "base")
		}},
		{"fault", "fault injection", func() error {
			return run(imgPath, in0Path, "", outPath, "", "", "", "", false, false, 0, 0, 1, 0.5, false, ckptOpts{}, "base")
		}},
		{"badspec", "unknown knob", func() error {
			return run(imgPath, in0Path, "", outPath, "", "", "", "", false, false, 0, 0, 0, 0, false, ckptOpts{}, "bogus")
		}},
	} {
		if err := tc.call(); err == nil || !strings.Contains(err.Error(), tc.err) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.err)
		}
	}
}

// TestApplyLaneSpec pins the knob grammar.
func TestApplyLaneSpec(t *testing.T) {
	base, err := machine.ParseConfig("dyn4", 8, "A", "enlarged")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := applyLaneSpec(base, "w64+gshare10+btb256+consmem+memG+issue5")
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case cfg.WindowOverride != 64:
		t.Errorf("WindowOverride = %d", cfg.WindowOverride)
	case cfg.Predictor != machine.GSharePredictor || cfg.GShareBits != 10:
		t.Errorf("predictor = %v bits %d", cfg.Predictor, cfg.GShareBits)
	case cfg.BTBEntries != 256:
		t.Errorf("BTBEntries = %d", cfg.BTBEntries)
	case !cfg.ConservativeMem:
		t.Error("ConservativeMem not set")
	case cfg.Mem.ID != 'G':
		t.Errorf("Mem.ID = %c", cfg.Mem.ID)
	case cfg.Issue.ID != 5:
		t.Errorf("Issue.ID = %d", cfg.Issue.ID)
	}
	if got, err := applyLaneSpec(base, "base"); err != nil || got != base {
		t.Errorf("base spec changed the config: %v, err %v", got, err)
	}
	for _, bad := range []string{"", "w0", "gsharex", "btbx", "memZ", "mem", "issue99", "zap"} {
		if _, err := applyLaneSpec(base, bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}
