// Command benchguard compares two engine benchmark JSON files (the format
// results/BENCH_engine.json is written in by TestEmitEngineBenchJSON) and
// fails when the current file's simulation throughput has regressed beyond
// a threshold relative to the baseline.
//
// Usage:
//
//	benchguard -baseline results/BENCH_engine.json -current /tmp/bench.json [-max-regress 0.25]
//
// For every engine and batched entry present in both files, the current
// sim_mcycles_per_sec must be at least (1 - max-regress) times the
// baseline's. Entries present on only one side are reported but do not
// fail the run (new configurations should not need a baseline edit to
// land, and retired ones should not block CI). Exit status 1 on any
// regression beyond the threshold, 2 on usage or decode errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type record struct {
	MCyclesPerSec float64 `json:"sim_mcycles_per_sec"`
}

type benchFile struct {
	GoVersion string            `json:"go_version"`
	Engines   map[string]record `json:"engines"`
	Batched   map[string]record `json:"batched"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// flatten merges the engines and batched maps into one namespace; batched
// keys are already distinct (BatchedK) from engine config names.
func flatten(f *benchFile) map[string]float64 {
	out := make(map[string]float64, len(f.Engines)+len(f.Batched))
	for k, r := range f.Engines {
		out[k] = r.MCyclesPerSec
	}
	for k, r := range f.Batched {
		out[k] = r.MCyclesPerSec
	}
	return out
}

func main() {
	basePath := flag.String("baseline", "results/BENCH_engine.json", "baseline benchmark JSON")
	curPath := flag.String("current", "", "current benchmark JSON to check (required)")
	maxRegress := flag.Float64("max-regress", 0.25, "max allowed fractional throughput drop vs baseline")
	flag.Parse()
	if *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	cur, err := load(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	bm, cm := flatten(base), flatten(cur)
	names := make([]string, 0, len(bm))
	for k := range bm {
		names = append(names, k)
	}
	sort.Strings(names)

	floor := 1 - *maxRegress
	failed := false
	for _, name := range names {
		b := bm[name]
		c, ok := cm[name]
		if !ok {
			fmt.Printf("%-18s baseline %8.3f Mcyc/s, missing from current (skipped)\n", name, b)
			continue
		}
		if b <= 0 {
			fmt.Printf("%-18s baseline throughput unset (skipped)\n", name)
			continue
		}
		ratio := c / b
		status := "ok"
		if ratio < floor {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-18s baseline %8.3f -> current %8.3f Mcyc/s  (%.2fx)  %s\n", name, b, c, ratio, status)
	}
	for k, c := range cm {
		if _, ok := bm[k]; !ok {
			fmt.Printf("%-18s current %8.3f Mcyc/s, no baseline (skipped)\n", k, c)
		}
	}
	if failed {
		fmt.Printf("FAIL: throughput regressed more than %.0f%% vs %s\n", *maxRegress*100, *basePath)
		os.Exit(1)
	}
	fmt.Printf("PASS: all entries within %.0f%% of %s\n", *maxRegress*100, *basePath)
}
