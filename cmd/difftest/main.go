// difftest drives the differential-verification harness from the command
// line: sweep generated programs through the cross-engine oracle, check a
// single program or a corpus directory, or shrink a failing program to a
// minimal repro.
//
//	difftest -gen 200 -seed 1000          # oracle-sweep 200 generated programs
//	difftest -check prog.mc [-in file]    # one program through the full matrix
//	difftest -corpus dir                  # every *.mc in dir through the matrix
//	difftest -reduce crash.mc [-in file]  # shrink an oracle-failing program
//	difftest -fault 20 -seed 3000         # fault-injection sweep: seeded faults
//	                                      # must repair invisibly or machine-check
//	difftest -snapshot 20 -seed 1000      # checkpoint/restore sweep: interrupted
//	                                      # and resumed runs must be bit-identical
//	difftest -schedgap                    # scheduler optimality-gap gate: re-runs
//	                                      # the exact-schedule sweep and compares
//	                                      # against results/SCHEDGAP.json
//
// A sweep that finds a divergence reduces the failing program automatically
// and prints the minimal repro, so a CI failure lands as a few statements
// instead of a few hundred.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fgpsim/internal/difftest"
	"fgpsim/internal/schedgap"
)

func main() {
	var (
		gen      = flag.Int("gen", 0, "oracle-sweep this many generated programs")
		seed     = flag.Int64("seed", 1000, "first generator seed for -gen")
		check    = flag.String("check", "", "run one MiniC file through the oracle matrix")
		corpus   = flag.String("corpus", "", "run every *.mc file in a directory through the matrix")
		reduce   = flag.String("reduce", "", "shrink a failing MiniC file to a minimal repro")
		inFile   = flag.String("in", "", "program input file (default: deterministic generated input)")
		quick    = flag.Bool("quick", false, "use the reduced fuzzing matrix instead of the full one")
		noshrink = flag.Bool("noshrink", false, "with -gen: report divergences without auto-reducing")
		fault    = flag.Int("fault", 0, "fault-injection-sweep this many generated programs")
		snap     = flag.Int("snapshot", 0, "checkpoint/restore-sweep this many generated programs")
		schedGap = flag.Bool("schedgap", false, "re-measure the scheduler optimality gap and gate it against the checked-in baseline")
		gapBase  = flag.String("schedgap-baseline", "results/SCHEDGAP.json", "with -schedgap: baseline report to gate against")
		gapTol   = flag.Float64("schedgap-tol", 5, "with -schedgap: allowed optimal-fraction regression, percentage points")
	)
	flag.Parse()

	matrix := difftest.Matrix()
	if *quick {
		matrix = difftest.QuickMatrix()
	}
	input := func(defaultSeed int64, n int) []byte {
		if *inFile == "" {
			return difftest.GenInput(defaultSeed, n)
		}
		data, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		return data
	}

	switch {
	case *schedGap:
		schedGapGate(*gapBase, *gapTol)
	case *snap > 0:
		snapshotSweep(*snap, *seed)
	case *fault > 0:
		faultSweep(*fault, *seed)
	case *gen > 0:
		sweep(*gen, *seed, matrix, *noshrink)
	case *check != "":
		src := readSrc(*check)
		rep := oracle(*check, src, input(101, 300), input(102, 300), matrix)
		report(*check, rep)
		if rep.Failed() {
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%d configurations)\n", *check, len(rep.Runs))
	case *corpus != "":
		checkCorpus(*corpus, matrix)
	case *reduce != "":
		reduceFile(*reduce, input(101, 300), input(102, 300), matrix)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "difftest:", err)
	os.Exit(1)
}

// schedGapGate re-runs the deterministic optimality-gap sweep and fails
// on any schedule-legality violation, a list schedule beating the exact
// optimum, or an optimal-fraction regression beyond tolPts percentage
// points against the checked-in baseline (the CI schedgap-smoke job).
func schedGapGate(baselinePath string, tolPts float64) {
	baseData, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(fmt.Errorf("baseline %s: %w (generate with: go run ./cmd/figures -schedgap)", baselinePath, err))
	}
	base, err := schedgap.Unmarshal(baseData)
	if err != nil {
		fatal(err)
	}
	rep, violations, err := schedgap.Run(base.Config)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Table())
	failed := false
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "schedule violation: %s\n", v)
		failed = true
	}
	for _, msg := range schedgap.CompareBaseline(rep, base, tolPts) {
		fmt.Fprintf(os.Stderr, "baseline gate: %s\n", msg)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("schedgap: ok (%d corpora, tolerance %.1f points, baseline %s)\n",
		len(rep.Corpora), tolPts, baselinePath)
}

func readSrc(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	return string(data)
}

func oracle(name, src string, profileIn, in []byte, matrix []difftest.Variant) *difftest.Report {
	c, err := difftest.CompileCase(name, src, profileIn, in)
	if err != nil {
		fatal(err)
	}
	rep, err := c.Oracle(matrix)
	if err != nil {
		fatal(err)
	}
	return rep
}

func report(name string, rep *difftest.Report) {
	for _, d := range rep.Divergences {
		fmt.Printf("%s: DIVERGENCE %s\n", name, d)
	}
}

// sweep generates programs and oracle-checks each one, auto-reducing the
// first divergence to a minimal repro.
func sweep(n int, seed0 int64, matrix []difftest.Variant, noshrink bool) {
	opts := difftest.DefaultGenOptions()
	for i := 0; i < n; i++ {
		seed := seed0 + int64(i)
		src := difftest.Generate(seed, opts)
		profileIn, in := difftest.GenInput(seed*2, 300), difftest.GenInput(seed*2+1, 300)
		rep := oracle(fmt.Sprintf("seed %d", seed), src, profileIn, in, matrix)
		if !rep.Failed() {
			if (i+1)%20 == 0 || i == n-1 {
				fmt.Printf("%d/%d ok\n", i+1, n)
			}
			continue
		}
		report(fmt.Sprintf("seed %d", seed), rep)
		if noshrink {
			os.Exit(1)
		}
		fmt.Printf("\nreducing seed %d (%d statements)...\n", seed, difftest.CountStatements(src))
		reduced, err := difftest.Reduce(src, func(cand string) bool {
			c, err := difftest.CompileCase("cand.mc", cand, profileIn, in)
			if err != nil {
				return false
			}
			rep, err := c.Oracle(matrix)
			return err == nil && rep.Failed()
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimal repro (%d statements):\n%s\n", difftest.CountStatements(reduced), reduced)
		os.Exit(1)
	}
}

// faultSweep generates programs and runs each through the fault-injection
// oracle: seeded faults must either repair invisibly (output and retired
// work identical to an uninjected run) or surface as a typed machine check.
func faultSweep(n int, seed0 int64) {
	matrix := difftest.FaultMatrix()
	for i := 0; i < n; i++ {
		seed := seed0 + int64(i)
		src := difftest.Generate(seed, difftest.DefaultGenOptions())
		name := fmt.Sprintf("seed %d", seed)
		c, err := difftest.CompileCase(name, src, difftest.GenInput(seed*2, 300), difftest.GenInput(seed*2+1, 300))
		if err != nil {
			fatal(err)
		}
		rep, err := c.FaultOracle(matrix, []uint64{uint64(seed), uint64(seed) * 0x9e3779b9, 0xdeadbeef})
		if err != nil {
			fatal(err)
		}
		if rep.Failed() {
			report(name, rep)
			fmt.Printf("program:\n%s\n", src)
			os.Exit(1)
		}
		if (i+1)%10 == 0 || i == n-1 {
			fmt.Printf("%d/%d ok\n", i+1, n)
		}
	}
}

// snapshotSweep generates programs and runs each through the snapshot
// oracle: a run checkpointed, serialized, and resumed at seed-randomized
// points must be bit-identical to the run that was never interrupted. The
// case construction (profile rotation, input lengths, oracle seed) matches
// TestSnapshotOracleGeneratedPrograms exactly, so a test failure replays
// here with the same -seed.
func snapshotSweep(n int, seed0 int64) {
	matrix := difftest.SnapshotMatrix()
	profiles := difftest.SweepProfiles()
	for i := 0; i < n; i++ {
		seed := seed0 + int64(i)
		src := difftest.Generate(seed, profiles[int(seed)%len(profiles)])
		name := fmt.Sprintf("seed %d", seed)
		c, err := difftest.CompileCase(name, src,
			difftest.GenInput(seed*2, 180+int(seed%120)),
			difftest.GenInput(seed*2+1, 180+int((seed+7)%120)))
		if err != nil {
			fatal(err)
		}
		rep, err := c.SnapshotOracle(matrix, uint64(seed)*0x9e3779b9)
		if err != nil {
			fatal(err)
		}
		if rep.Failed() {
			report(name, rep)
			fmt.Printf("program:\n%s\n", src)
			os.Exit(1)
		}
		if (i+1)%10 == 0 || i == n-1 {
			fmt.Printf("%d/%d ok\n", i+1, n)
		}
	}
}

func checkCorpus(dir string, matrix []difftest.Variant) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	bad := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mc") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		rep := oracle(e.Name(), readSrc(path), difftest.GenInput(101, 300), difftest.GenInput(102, 300), matrix)
		if rep.Failed() {
			report(e.Name(), rep)
			bad++
		} else {
			fmt.Printf("%s: ok\n", e.Name())
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// reduceFile shrinks a program whose failure is "the oracle reports a
// divergence (or the toolchain errors) on this input".
func reduceFile(path string, profileIn, in []byte, matrix []difftest.Variant) {
	src := readSrc(path)
	fails := func(cand string) bool {
		c, err := difftest.CompileCase("cand.mc", cand, profileIn, in)
		if err != nil {
			return false
		}
		rep, err := c.Oracle(matrix)
		if err != nil {
			// An engine error (panic recovered into an error, cycle-limit
			// blowup) on a compiling program is itself the failure.
			return true
		}
		return rep.Failed()
	}
	reduced, err := difftest.Reduce(src, fails)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("// reduced from %s: %d -> %d statements\n%s",
		filepath.Base(path), difftest.CountStatements(src), difftest.CountStatements(reduced), reduced)
}
