// Command figures regenerates the paper's evaluation: it prepares the five
// benchmarks (profiling run on input set 1, enlargement file, trace on
// input set 2), sweeps the machine configurations in parallel, and prints
// the data behind Figures 2 through 6. With -grid it runs the full
// 560-point configuration grid instead of the figure subset.
//
// Usage:
//
//	figures [-fig 0] [-bench all] [-grid] [-workers 0] [-quiet]
//	        [-timeout 0] [-resume sweep.journal]
//
// With -resume, completed grid cells are journaled to the named file and a
// killed or interrupted sweep resumes where it left off. Cells that keep
// failing are quarantined and reported, and their figure entries render as
// "-" instead of aborting the whole sweep.
//
// With -schedgap it instead measures the list scheduler's optimality gap
// against the exact branch-and-bound scheduler over the MiniC and generated
// corpora, prints the distribution table, and refreshes the checked-in
// results/SCHEDGAP.json baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"fgpsim/internal/bench"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
	"fgpsim/internal/schedgap"
)

func main() {
	var (
		fig         = flag.Int("fig", 0, "figure to print: 2..6, or 0 for all")
		benchArg    = flag.String("bench", "all", "benchmark name or 'all'")
		full        = flag.Bool("grid", false, "run the full 560-point grid and print a summary")
		workers     = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
		csvPath     = flag.String("csv", "", "also dump every measured point as CSV to this file")
		report      = flag.String("report", "", "write a markdown report (figures + claim checks) to this file")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
		timeout     = flag.Duration("timeout", 0, "per-cell simulation timeout (0 = none)")
		resume      = flag.String("resume", "", "journal file: completed cells persist and resume across runs")
		batch       = flag.Bool("batch", false, "run dynamic cells sharing a translated image as batched lanes (one fetch/decode pass per group)")
		schedgapF   = flag.Bool("schedgap", false, "print the static scheduler optimality-gap table and refresh results/SCHEDGAP.json instead of the figures")
		schedgapOut = flag.String("schedgap-out", "results/SCHEDGAP.json", "with -schedgap: write the JSON report here ('' = print only)")
	)
	flag.Parse()
	if *schedgapF {
		if err := runSchedgap(*schedgapOut); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	err = run(ctx, *fig, *benchArg, *full, *workers, *quiet, *csvPath, *report, *timeout, *resume, *batch)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// runSchedgap measures the list scheduler's optimality gap over the MiniC
// and generated corpora (internal/schedgap), prints the distribution
// table, and refreshes the checked-in JSON baseline. Any correctness
// violation (an illegal schedule, or a list schedule beating the exact
// optimum) is a hard failure.
func runSchedgap(outPath string) error {
	rep, violations, err := schedgap.Run(schedgap.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "schedule violation: %s\n", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d schedule violations", len(violations))
	}
	if outPath == "" {
		return nil
	}
	data, err := rep.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

// startProfiles starts CPU profiling and/or arms a heap snapshot, returning
// a function that finishes both. Empty paths disable each profile.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func run(ctx context.Context, fig int, benchArg string, full bool, workers int, quiet bool, csvPath, reportPath string,
	timeout time.Duration, resume string, batch bool) error {
	var benchmarks []*bench.Benchmark
	if benchArg == "all" {
		benchmarks = bench.All()
	} else {
		for _, name := range strings.Split(benchArg, ",") {
			b := bench.ByName(strings.TrimSpace(name))
			if b == nil {
				return fmt.Errorf("unknown benchmark %q", name)
			}
			benchmarks = append(benchmarks, b)
		}
	}

	start := time.Now()
	var prepared []*exp.Prepared
	for _, b := range benchmarks {
		if !quiet {
			fmt.Fprintf(os.Stderr, "preparing %s (profile, enlargement file, trace)...\n", b.Name)
		}
		p, err := exp.Prepare(b, enlarge.DefaultOptions())
		if err != nil {
			return err
		}
		prepared = append(prepared, p)
	}

	cfgs := exp.FigureConfigs()
	if full {
		cfgs = machine.Grid()
	}
	if fig == 7 {
		// The extension figure (window-depth sweep) has its own configs.
		cfgs = exp.WindowConfigs()
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "running %d configurations x %d benchmarks...\n", len(cfgs), len(prepared))
	}
	progress := func(done, total int) {
		if !quiet && done%100 == 0 {
			fmt.Fprintf(os.Stderr, "  %d/%d\n", done, total)
		}
	}
	res, err := exp.GridContext(ctx, prepared, cfgs, exp.GridOptions{
		Workers:    workers,
		Progress:   progress,
		Retries:    2,
		RunTimeout: timeout,
		Journal:    resume,
		Batch:      batch,
	})
	if res != nil {
		for _, ce := range res.Failed {
			fmt.Fprintf(os.Stderr, "quarantined: %v\n", ce)
		}
	}
	if err != nil {
		if len(res.Failed) > 0 && ctx.Err() == nil {
			// Quarantined cells are reported above and render as "-" in the
			// figures; keep going with what completed.
			fmt.Fprintf(os.Stderr, "%d cell(s) failed; rendering partial figures\n", len(res.Failed))
		} else {
			return err
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "sweep finished in %s\n", time.Since(start).Round(time.Second))
	}

	names := make([]string, len(prepared))
	for i, p := range prepared {
		names[i] = p.Bench.Name
	}
	sort.Strings(names)

	printed := false
	show := func(n int, render func(*exp.Results, []string) string) {
		if fig == 0 || fig == n {
			fmt.Println(render(res, names))
			printed = true
		}
	}
	if fig == 7 {
		fmt.Println(exp.FigureWindow(res, names))
		printed = true
	} else {
		show(2, exp.Figure2)
		show(3, exp.Figure3)
		show(4, exp.Figure4)
		show(5, exp.Figure5)
		show(6, exp.Figure6)
	}
	if !printed {
		return fmt.Errorf("no such figure %d (choose 2..7 or 0)", fig)
	}
	if full {
		printGridSummary(res, names, cfgs)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", csvPath)
		}
	}
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteReport(f, names); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", reportPath)
		}
	}
	return nil
}

// printGridSummary reports grid-level aggregates: the best configuration
// per discipline and the headline speedups.
func printGridSummary(res *exp.Results, names []string, cfgs []machine.Config) {
	fmt.Println("Grid summary (560 configurations x benchmarks)")
	type best struct {
		cfg machine.Config
		v   float64
	}
	bests := map[machine.Discipline]best{}
	for _, cfg := range cfgs {
		v := res.GeoMeanNPC(names, cfg)
		if v != v { // NaN
			continue
		}
		if b, ok := bests[cfg.Disc]; !ok || v > b.v {
			bests[cfg.Disc] = best{cfg, v}
		}
	}
	for _, d := range machine.Disciplines {
		if b, ok := bests[d]; ok {
			fmt.Printf("  best %-8s %6.2f nodes/cycle at %s\n", d.String()+":", b.v, b.cfg)
		}
	}
	seqCfg, err := exp.ConfigFor(exp.Curve{Disc: machine.Static, Branch: machine.SingleBB}, 1, 'A')
	if err != nil {
		return
	}
	if base := res.GeoMeanNPC(names, seqCfg); base == base && base > 0 {
		if b, ok := bests[machine.Dyn256]; ok {
			fmt.Printf("  speedup over sequential static: %.1fx\n", b.v/base)
		}
	}
}
