// Benchmark harness regenerating the paper's evaluation figures. Each
// BenchmarkFigureN runs the sweep behind one figure on a representative
// benchmark (sort — the full five-benchmark sweep lives in cmd/figures) and
// prints the table once. Run with:
//
//	go test -bench=Figure -benchtime=1x
//
// BenchmarkAblation* measure the design choices DESIGN.md calls out:
// run-time memory disambiguation, static hints, BTB capacity, window depth,
// and enlargement thresholds.
package fgpsim

import (
	"fmt"
	"sync"
	"testing"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
)

var (
	prepOnce sync.Once
	prepWL   *Workload
	prepErr  error
)

// workload prepares the sort benchmark once per process.
func workload(b testing.TB) *Workload {
	prepOnce.Do(func() {
		prepWL, prepErr = PrepareBenchmark(BenchmarkByName("sort"), DefaultEnlargeOptions())
	})
	if prepErr != nil {
		b.Fatal(prepErr)
	}
	return prepWL
}

func runConfigs(b *testing.B, w *Workload, cfgs []Config) *Results {
	b.Helper()
	res, err := exp.Grid([]*exp.Prepared{w}, cfgs, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func names(w *Workload) []string { return []string{w.Bench.Name} }

// BenchmarkFigure2 regenerates the block-size histograms (single vs
// enlarged basic blocks).
func BenchmarkFigure2(b *testing.B) {
	w := workload(b)
	cfgs := []Config{
		exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: SingleBB}, 8, 'A'),
		exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: EnlargedBB}, 8, 'A'),
	}
	for i := 0; i < b.N; i++ {
		res := runConfigs(b, w, cfgs)
		if i == 0 {
			fmt.Println(exp.Figure2(res, names(w)))
		}
		single := res.Get(exp.KeyOf(w.Bench.Name, cfgs[0]))
		enlarged := res.Get(exp.KeyOf(w.Bench.Name, cfgs[1]))
		b.ReportMetric(single.MeanBlockSize(), "single-mean-nodes")
		b.ReportMetric(enlarged.MeanBlockSize(), "enlarged-mean-nodes")
	}
}

// figureSweep runs the ten curves across one axis and reports the headline
// numbers.
func figureSweep(b *testing.B, cfgs []Config, render func(*Results, []string) string, metric func(*Results) (string, float64)) {
	w := workload(b)
	for i := 0; i < b.N; i++ {
		res := runConfigs(b, w, cfgs)
		if i == 0 {
			fmt.Println(render(res, names(w)))
		}
		name, v := metric(res)
		b.ReportMetric(v, name)
	}
}

// BenchmarkFigure3 regenerates nodes/cycle vs issue model (memory A).
func BenchmarkFigure3(b *testing.B) {
	var cfgs []Config
	for _, c := range exp.Curves() {
		for _, im := range IssueModels {
			cfgs = append(cfgs, exp.MustConfigFor(c, im.ID, 'A'))
		}
	}
	w := workload(b)
	figureSweep(b, cfgs, exp.Figure3, func(res *Results) (string, float64) {
		top := res.GeoMeanNPC(names(w), exp.MustConfigFor(exp.Curve{Disc: Dyn256, Branch: EnlargedBB}, 8, 'A'))
		base := res.GeoMeanNPC(names(w), exp.MustConfigFor(exp.Curve{Disc: Static, Branch: SingleBB}, 8, 'A'))
		return "speedup-at-8", top / base
	})
}

// BenchmarkFigure4 regenerates nodes/cycle vs memory configuration (issue
// model 8).
func BenchmarkFigure4(b *testing.B) {
	var cfgs []Config
	for _, c := range exp.Curves() {
		for _, mc := range MemConfigs {
			cfgs = append(cfgs, exp.MustConfigFor(c, 8, mc.ID))
		}
	}
	w := workload(b)
	figureSweep(b, cfgs, exp.Figure4, func(res *Results) (string, float64) {
		fast := res.GeoMeanNPC(names(w), exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: EnlargedBB}, 8, 'A'))
		slow := res.GeoMeanNPC(names(w), exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: EnlargedBB}, 8, 'C'))
		return "latency-tolerance", fast / slow
	})
}

// BenchmarkFigure5 regenerates the per-benchmark composite-configuration
// series (dyn-w4, enlarged blocks).
func BenchmarkFigure5(b *testing.B) {
	var cfgs []Config
	for _, fc := range machine.Figure5Configs {
		cfgs = append(cfgs, exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: EnlargedBB}, fc.Issue, fc.Mem))
	}
	w := workload(b)
	figureSweep(b, cfgs, exp.Figure5, func(res *Results) (string, float64) {
		last := machine.Figure5Configs[len(machine.Figure5Configs)-1]
		s := res.Get(exp.KeyOf(w.Bench.Name, exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: EnlargedBB}, last.Issue, last.Mem)))
		return "npc-at-8G", s.Speed()
	})
}

// BenchmarkFigure6 regenerates operation redundancy vs issue model.
func BenchmarkFigure6(b *testing.B) {
	var cfgs []Config
	for _, c := range exp.Curves() {
		for _, im := range IssueModels {
			cfgs = append(cfgs, exp.MustConfigFor(c, im.ID, 'A'))
		}
	}
	w := workload(b)
	figureSweep(b, cfgs, exp.Figure6, func(res *Results) (string, float64) {
		return "redundancy-w256-enl", res.MeanRedundancy(names(w),
			exp.MustConfigFor(exp.Curve{Disc: Dyn256, Branch: EnlargedBB}, 8, 'A'))
	})
}

// BenchmarkAblationDisambiguation measures the value of run-time memory
// disambiguation: conservative loads (wait for all older stores) vs
// run-time address checking.
func BenchmarkAblationDisambiguation(b *testing.B) {
	w := workload(b)
	base := exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: SingleBB}, 8, 'A')
	conservative := base
	conservative.ConservativeMem = true
	for i := 0; i < b.N; i++ {
		sFast, err := w.Run(base)
		if err != nil {
			b.Fatal(err)
		}
		sSlow, err := w.Run(conservative)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sFast.Speed(), "npc-runtime-disambig")
		b.ReportMetric(sSlow.Speed(), "npc-conservative")
		b.ReportMetric(sFast.Speed()/sSlow.Speed(), "disambiguation-gain")
	}
}

// BenchmarkAblationWindow sweeps the window size at fixed width.
func BenchmarkAblationWindow(b *testing.B) {
	w := workload(b)
	for i := 0; i < b.N; i++ {
		for _, d := range []Discipline{Dyn1, Dyn4, Dyn256} {
			s, err := w.Run(exp.MustConfigFor(exp.Curve{Disc: d, Branch: EnlargedBB}, 8, 'A'))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.Speed(), fmt.Sprintf("npc-%s", d))
		}
	}
}

// BenchmarkAblationFillUnit compares run-time (hardware) enlargement
// against compiler enlargement and plain single blocks: software needs a
// profiling run, hardware learns on the fly.
func BenchmarkAblationFillUnit(b *testing.B) {
	w := workload(b)
	for i := 0; i < b.N; i++ {
		for _, bm := range []BranchMode{SingleBB, FillUnit, EnlargedBB} {
			cfg := exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: bm}, 8, 'A')
			s, err := w.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.Speed(), "npc-"+bm.String())
		}
	}
}

// BenchmarkAblationPredictor compares the paper's 2-bit counter against the
// gshare extension (the "better branch prediction" the conclusions call an
// unexplored avenue).
func BenchmarkAblationPredictor(b *testing.B) {
	w := workload(b)
	for i := 0; i < b.N; i++ {
		for _, kind := range []machine.PredictorKind{TwoBit, GShare} {
			cfg := exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: SingleBB}, 8, 'A')
			cfg.Predictor = kind
			s, err := w.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			label := "2bit"
			if kind == GShare {
				label = "gshare"
			}
			b.ReportMetric(s.Speed(), "npc-"+label)
			b.ReportMetric(s.PredictionAccuracy(), "accuracy-"+label)
		}
	}
}

// BenchmarkAblationWindowDepth sweeps intermediate window sizes beyond the
// paper's 1/4/256 points.
func BenchmarkAblationWindowDepth(b *testing.B) {
	w := workload(b)
	for i := 0; i < b.N; i++ {
		for _, win := range []int{2, 8, 16, 64} {
			cfg := exp.MustConfigFor(exp.Curve{Disc: Dyn256, Branch: SingleBB}, 8, 'A')
			cfg.WindowOverride = win
			s, err := w.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.Speed(), fmt.Sprintf("npc-w%d", win))
		}
	}
}

// BenchmarkAblationBTB sweeps the branch target buffer size.
func BenchmarkAblationBTB(b *testing.B) {
	w := workload(b)
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{16, 64, 512} {
			cfg := exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: SingleBB}, 8, 'A')
			cfg.BTBEntries = entries
			s, err := w.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.PredictionAccuracy(), fmt.Sprintf("accuracy-btb%d", entries))
		}
	}
}

// BenchmarkAblationEnlargement sweeps chain-length limits to locate the
// paper's "optimal point between the enlargement of basic blocks and the
// use of dynamic scheduling".
func BenchmarkAblationEnlargement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, maxLen := range []int{2, 4, 8} {
			o := enlarge.DefaultOptions()
			o.MaxChainLen = maxLen
			w, err := PrepareBenchmark(BenchmarkByName("sort"), o)
			if err != nil {
				b.Fatal(err)
			}
			s, err := w.Run(exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: EnlargedBB}, 8, 'A'))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.Speed(), fmt.Sprintf("npc-chainlen%d", maxLen))
		}
	}
}
