#!/usr/bin/env bash
# simd_smoke.sh — end-to-end smoke test for the simulation daemon.
#
# Boots simd, waits for /readyz, submits a small sweep, SIGTERMs the daemon
# mid-run, asserts a graceful drain (exit 0), then restarts it and asserts
# the journal-recovered sweep runs to completion. This is the CI-level
# counterpart of internal/server's unit tests: it exercises the real binary,
# real signals, and a real restart.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18097"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
JOURNAL="$WORK/journal"
SIMD_PID=""

cleanup() {
	if [[ -n "$SIMD_PID" ]] && kill -0 "$SIMD_PID" 2>/dev/null; then
		kill -9 "$SIMD_PID" 2>/dev/null || true
	fi
	rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
	echo "simd-smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$WORK/simd.log" >&2 || true
	exit 1
}

wait_ready() {
	for _ in $(seq 1 100); do
		if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.1
	done
	fail "daemon never became ready"
}

echo "simd-smoke: building"
go build -o "$WORK/simd" ./cmd/simd

# A sweep slow enough to be caught mid-run by the SIGTERM below: one source
# program across several configs, each cell a few hundred ms of simulation.
SWEEP_JSON="$WORK/sweep.json"
cat >"$SWEEP_JSON" <<'EOF'
{
  "source": "int main() { int i = 0; int acc = 0; while (i < 2000000) { acc = acc + i; i = i + 1; } putc('0' + (acc % 10)); return 0; }",
  "configs": [
    {"disc": "dyn4",   "issue": 4, "mem": "A", "branch": "single"},
    {"disc": "dyn4",   "issue": 2, "mem": "A", "branch": "single"},
    {"disc": "static", "issue": 1, "mem": "A", "branch": "single"},
    {"disc": "dyn256", "issue": 4, "mem": "A", "branch": "single"}
  ]
}
EOF

echo "simd-smoke: boot 1 (will be SIGTERMed mid-sweep)"
"$WORK/simd" -addr "$ADDR" -journal "$JOURNAL" -concurrency 1 -drain-timeout 1s \
	>"$WORK/simd.log" 2>&1 &
SIMD_PID=$!
wait_ready

ID=$(curl -fsS -X POST -d @"$SWEEP_JSON" "$BASE/sweep" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[[ -n "$ID" ]] || fail "sweep not accepted"
echo "simd-smoke: sweep $ID accepted"

# Let the sweep actually start (prepare + first cells), then interrupt it.
for _ in $(seq 1 200); do
	STATE=$(curl -fsS "$BASE/sweep/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
	[[ "$STATE" == "running" || "$STATE" == "done" ]] && break
	sleep 0.1
done
[[ "$STATE" == "running" || "$STATE" == "done" ]] || fail "sweep never started (state=$STATE)"

echo "simd-smoke: SIGTERM mid-run (state=$STATE)"
kill -TERM "$SIMD_PID"
EXIT=0
wait "$SIMD_PID" || EXIT=$?
SIMD_PID=""
[[ "$EXIT" -eq 0 ]] || fail "daemon exited $EXIT on SIGTERM, want graceful exit 0"
grep -q "drained cleanly" "$WORK/simd.log" || fail "daemon log missing drain message"
[[ -f "$JOURNAL/requests.journal" ]] || fail "request journal missing"
echo "simd-smoke: graceful drain confirmed (exit 0)"

echo "simd-smoke: boot 2 (journal recovery)"
"$WORK/simd" -addr "$ADDR" -journal "$JOURNAL" \
	>>"$WORK/simd.log" 2>&1 &
SIMD_PID=$!
wait_ready

# Whether boot 1 finished the sweep before draining or left it interrupted,
# boot 2 must converge on a settled journal: either nothing was pending, or
# the recovered sweep (same ID) runs to done.
DONE=""
for _ in $(seq 1 600); do
	STATUS=$(curl -fsS "$BASE/sweep/$ID" 2>/dev/null || true)
	STATE=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' <<<"$STATUS")
	if [[ "$STATE" == "done" ]]; then
		DONE=1
		break
	fi
	# 404 means boot 1 settled the sweep before the drain; resumed metric
	# must then be zero and there is nothing to wait for.
	if [[ -z "$STATE" ]]; then
		RESUMED=$(curl -fsS "$BASE/metrics" | sed -n 's/.*"jobs_resumed": \([0-9]*\).*/\1/p')
		[[ "$RESUMED" == "0" ]] && DONE=1 && break
	fi
	[[ "$STATE" == "failed" || "$STATE" == "stuck" ]] && fail "recovered sweep ended $STATE"
	sleep 0.1
done
[[ -n "$DONE" ]] || fail "recovered sweep never completed (state=$STATE)"
echo "simd-smoke: journal recovery confirmed"

curl -fsS "$BASE/metrics" | sed -n '1,30p'

echo "simd-smoke: shutdown"
kill -TERM "$SIMD_PID"
EXIT=0
wait "$SIMD_PID" || EXIT=$?
SIMD_PID=""
[[ "$EXIT" -eq 0 ]] || fail "daemon exited $EXIT on final SIGTERM"

echo "simd-smoke: PASS"
