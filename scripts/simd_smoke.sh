#!/usr/bin/env bash
# simd_smoke.sh — end-to-end smoke test for the simulation daemon.
#
#   simd_smoke.sh [graceful|chaos|fabric-chaos]
#
# graceful (default): boots simd, waits for /readyz, submits a small sweep,
# SIGTERMs the daemon mid-run, asserts a graceful drain (exit 0), then
# restarts it and asserts the journal-recovered sweep runs to completion.
#
# chaos: the crash-recovery acceptance test for durable checkpoints. First
# runs the sweep uninterrupted on a control daemon (checkpoints armed, so
# both runs live in the same cadence timing universe) and records its
# results; then boots a second daemon, kill -9s it mid-sweep, restarts it
# over the same journal, and asserts the recovered sweep's results are
# byte-identical to the control's — cells finished before the kill come
# from the cell journal, the cell in flight resumes from its snapshot.
#
# fabric-chaos: the distributed acceptance test (DESIGN.md §15). Runs a
# generated many-cell sweep on a single-node control daemon, then re-runs
# it on a coordinator with three pull workers while the test kill -9s one
# worker mid-cell, SIGTERMs a second, and restarts the coordinator over its
# journal — and asserts the merged fabric results are byte-identical to the
# single-node control. FABRIC_CELLS (default 112) scales the generated
# grid; the paper-scale run uses FABRIC_CELLS=10000.
#
# This is the CI-level counterpart of internal/server's unit tests: it
# exercises the real binary, real signals, and a real restart.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-graceful}"
ADDR="127.0.0.1:18097"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
JOURNAL="$WORK/journal"
SIMD_PID=""
WORKER_PIDS=()

cleanup() {
	if [[ -n "$SIMD_PID" ]] && kill -0 "$SIMD_PID" 2>/dev/null; then
		kill -9 "$SIMD_PID" 2>/dev/null || true
	fi
	for pid in "${WORKER_PIDS[@]}"; do
		kill -9 "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
	echo "simd-smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$WORK/simd.log" >&2 || true
	exit 1
}

wait_ready() {
	for _ in $(seq 1 100); do
		if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.1
	done
	fail "daemon never became ready"
}

# wait_done ID BUDGET_TICKS: poll GET /sweep/ID until done; fail on
# failed/stuck. Prints the final status JSON.
wait_done() {
	local id="$1" ticks="$2" status state
	for _ in $(seq 1 "$ticks"); do
		status=$(curl -fsS "$BASE/sweep/$id" 2>/dev/null || true)
		state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' <<<"$status")
		if [[ "$state" == "done" ]]; then
			printf '%s' "$status"
			return 0
		fi
		[[ "$state" == "failed" || "$state" == "stuck" ]] && fail "sweep $id ended $state"
		sleep 0.1
	done
	fail "sweep $id never completed (state=${state:-unknown})"
}

echo "simd-smoke: building"
go build -o "$WORK/simd" ./cmd/simd

# A sweep slow enough to be caught mid-run by the interruption below: one
# source program across several configs, each cell a few hundred ms of
# simulation.
SWEEP_JSON="$WORK/sweep.json"
cat >"$SWEEP_JSON" <<'EOF'
{
  "source": "int main() { int i = 0; int acc = 0; while (i < 2000000) { acc = acc + i; i = i + 1; } putc('0' + (acc % 10)); return 0; }",
  "configs": [
    {"disc": "dyn4",   "issue": 4, "mem": "A", "branch": "single"},
    {"disc": "dyn4",   "issue": 2, "mem": "A", "branch": "single"},
    {"disc": "static", "issue": 1, "mem": "A", "branch": "single"},
    {"disc": "dyn256", "issue": 4, "mem": "A", "branch": "single"}
  ]
}
EOF

submit_sweep() {
	local id
	id=$(curl -fsS -X POST -d @"$SWEEP_JSON" "$BASE/sweep" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
	[[ -n "$id" ]] || fail "sweep not accepted"
	printf '%s' "$id"
}

wait_started() {
	local id="$1" state=""
	for _ in $(seq 1 200); do
		state=$(curl -fsS "$BASE/sweep/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
		[[ "$state" == "running" || "$state" == "done" ]] && break
		sleep 0.1
	done
	[[ "$state" == "running" || "$state" == "done" ]] || fail "sweep never started (state=$state)"
	printf '%s' "$state"
}

graceful_smoke() {
	echo "simd-smoke: boot 1 (will be SIGTERMed mid-sweep)"
	"$WORK/simd" -addr "$ADDR" -journal "$JOURNAL" -concurrency 1 -drain-timeout 1s \
		>"$WORK/simd.log" 2>&1 &
	SIMD_PID=$!
	wait_ready

	local ID STATE
	ID=$(submit_sweep)
	echo "simd-smoke: sweep $ID accepted"

	# Let the sweep actually start (prepare + first cells), then interrupt.
	STATE=$(wait_started "$ID")

	echo "simd-smoke: SIGTERM mid-run (state=$STATE)"
	kill -TERM "$SIMD_PID"
	EXIT=0
	wait "$SIMD_PID" || EXIT=$?
	SIMD_PID=""
	[[ "$EXIT" -eq 0 ]] || fail "daemon exited $EXIT on SIGTERM, want graceful exit 0"
	grep -q "drained cleanly" "$WORK/simd.log" || fail "daemon log missing drain message"
	[[ -f "$JOURNAL/requests.journal" ]] || fail "request journal missing"
	echo "simd-smoke: graceful drain confirmed (exit 0)"

	echo "simd-smoke: boot 2 (journal recovery)"
	"$WORK/simd" -addr "$ADDR" -journal "$JOURNAL" \
		>>"$WORK/simd.log" 2>&1 &
	SIMD_PID=$!
	wait_ready

	# Whether boot 1 finished the sweep before draining or left it
	# interrupted, boot 2 must converge on a settled journal: either nothing
	# was pending, or the recovered sweep (same ID) runs to done.
	DONE=""
	for _ in $(seq 1 600); do
		STATUS=$(curl -fsS "$BASE/sweep/$ID" 2>/dev/null || true)
		STATE=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' <<<"$STATUS")
		if [[ "$STATE" == "done" ]]; then
			DONE=1
			break
		fi
		# 404 means boot 1 settled the sweep before the drain; resumed metric
		# must then be zero and there is nothing to wait for.
		if [[ -z "$STATE" ]]; then
			RESUMED=$(curl -fsS "$BASE/metrics" | sed -n 's/.*"jobs_resumed": \([0-9]*\).*/\1/p')
			[[ "$RESUMED" == "0" ]] && DONE=1 && break
		fi
		[[ "$STATE" == "failed" || "$STATE" == "stuck" ]] && fail "recovered sweep ended $STATE"
		sleep 0.1
	done
	[[ -n "$DONE" ]] || fail "recovered sweep never completed (state=$STATE)"
	echo "simd-smoke: journal recovery confirmed"

	curl -fsS "$BASE/metrics" | sed -n '1,30p'

	echo "simd-smoke: shutdown"
	kill -TERM "$SIMD_PID"
	EXIT=0
	wait "$SIMD_PID" || EXIT=$?
	SIMD_PID=""
	[[ "$EXIT" -eq 0 ]] || fail "daemon exited $EXIT on final SIGTERM"
}

# results_of STATUS: the byte-comparable tail of a sweep status — Results
# renders last in the status JSON, so everything from `"results"` on is the
# per-cell statistics, key-sorted by encoding/json.
results_of() {
	sed -n '/"results":/,$p' <<<"$1"
}

CKPT_FLAGS=(-checkpoint-every 50000)

chaos_smoke() {
	# Control: the same sweep, checkpoints armed, never interrupted. The
	# cadence perturbs engine timing, so only another armed run is
	# comparable — that is the point: interrupted-and-resumed must be
	# bit-identical to straight-through at the same cadence.
	echo "simd-smoke(chaos): control run"
	"$WORK/simd" -addr "$ADDR" -journal "$WORK/journal-control" -concurrency 1 \
		"${CKPT_FLAGS[@]}" >"$WORK/simd.log" 2>&1 &
	SIMD_PID=$!
	wait_ready
	local CONTROL_ID CONTROL_STATUS CONTROL_RESULTS
	CONTROL_ID=$(submit_sweep)
	CONTROL_STATUS=$(wait_done "$CONTROL_ID" 1200)
	CONTROL_RESULTS=$(results_of "$CONTROL_STATUS")
	[[ -n "$CONTROL_RESULTS" ]] || fail "control sweep has no results"
	kill -TERM "$SIMD_PID"
	wait "$SIMD_PID" || true
	SIMD_PID=""

	echo "simd-smoke(chaos): boot 1 (will be kill -9ed mid-sweep)"
	"$WORK/simd" -addr "$ADDR" -journal "$JOURNAL" -concurrency 1 \
		"${CKPT_FLAGS[@]}" >>"$WORK/simd.log" 2>&1 &
	SIMD_PID=$!
	wait_ready
	local ID STATE
	ID=$(submit_sweep)
	echo "simd-smoke(chaos): sweep $ID accepted"
	STATE=$(wait_started "$ID")
	# Give the first cells time to finish and the in-flight one time to park
	# checkpoints, then pull the plug with no warning whatsoever.
	sleep 1
	STATE=$(curl -fsS "$BASE/sweep/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
	if [[ "$STATE" == "done" ]]; then
		# The machine outran the chaos window; the run is still a valid
		# (uninterrupted) comparison against the control.
		echo "simd-smoke(chaos): sweep finished before the kill; comparing directly"
		local FAST_STATUS
		FAST_STATUS=$(curl -fsS "$BASE/sweep/$ID")
		[[ "$(results_of "$FAST_STATUS")" == "$CONTROL_RESULTS" ]] || fail "uninterrupted results differ from control"
		kill -TERM "$SIMD_PID"
		wait "$SIMD_PID" || true
		SIMD_PID=""
		return 0
	fi
	echo "simd-smoke(chaos): kill -9 mid-run (state=$STATE)"
	kill -9 "$SIMD_PID"
	wait "$SIMD_PID" 2>/dev/null || true
	SIMD_PID=""
	[[ -f "$JOURNAL/requests.journal" ]] || fail "request journal missing after kill -9"
	if ls "$JOURNAL"/snapshots/*.snap >/dev/null 2>&1; then
		echo "simd-smoke(chaos): mid-cell snapshot(s) parked at kill time"
	else
		# Tiny window: the kill landed between cells. Recovery then comes
		# from the cell journal alone, which is still a valid run.
		echo "simd-smoke(chaos): no snapshot at kill time (between cells)"
	fi

	echo "simd-smoke(chaos): boot 2 (crash recovery)"
	"$WORK/simd" -addr "$ADDR" -journal "$JOURNAL" -concurrency 1 \
		"${CKPT_FLAGS[@]}" >>"$WORK/simd.log" 2>&1 &
	SIMD_PID=$!
	wait_ready
	local STATUS RESULTS
	STATUS=$(wait_done "$ID" 1200)
	RESULTS=$(results_of "$STATUS")
	echo "simd-smoke(chaos): recovered sweep completed"

	if [[ "$RESULTS" != "$CONTROL_RESULTS" ]]; then
		echo "--- control results ---" >&2
		printf '%s\n' "$CONTROL_RESULTS" >&2
		echo "--- recovered results ---" >&2
		printf '%s\n' "$RESULTS" >&2
		fail "recovered sweep results differ from uninterrupted control"
	fi
	echo "simd-smoke(chaos): results byte-identical to control"

	# Completed cells clean up after themselves: no snapshots may linger.
	if ls "$JOURNAL"/snapshots/*.snap* >/dev/null 2>&1; then
		fail "snapshots left behind after the sweep completed"
	fi

	curl -fsS "$BASE/metrics" | sed -n '1,30p'

	echo "simd-smoke(chaos): shutdown"
	kill -TERM "$SIMD_PID"
	EXIT=0
	wait "$SIMD_PID" || EXIT=$?
	SIMD_PID=""
	[[ "$EXIT" -eq 0 ]] || fail "daemon exited $EXIT on final SIGTERM"
}

# metric_val NAME: one integer counter from /metrics.
metric_val() {
	curl -fsS "$BASE/metrics" | sed -n "s/.*\"$1\": \([0-9]*\).*/\1/p"
}

# gen_fabric_sweep N PATH: a generated N-cell grid — one medium-length
# source program crossed with mem/predictor/issue/window variants, the
# multi-axis shape the fabric shards by image-cache key.
gen_fabric_sweep() {
	local n="$1" path="$2"
	local mems=(A B C D E F G) preds='"", "gshare"' i mem pred issue window sep=""
	{
		printf '{\n  "source": "int main() { int i = 0; int acc = 0; while (i < 300000) { acc = acc + i; i = i + 1; } putc(%s + (acc %% 10)); return 0; }",\n  "configs": [\n' "'0'"
		for ((i = 0; i < n; i++)); do
			mem=${mems[$((i % 7))]}
			pred=$(( (i / 7) % 2 ))
			issue=$((1 << ((i / 14) % 4)))
			window=$(( (i / 56) * 16 ))
			printf '%s    {"disc": "dyn4", "issue": %d, "mem": "%s", "branch": "single"' "$sep" "$issue" "$mem"
			[[ "$pred" == 1 ]] && printf ', "predictor": "gshare"'
			[[ "$window" -gt 0 ]] && printf ', "window": %d' "$window"
			printf '}'
			sep=$',\n'
		done
		printf '\n  ]\n}\n'
	} >"$path"
}

# start_worker NAME: one pull worker against $BASE; PID appended to
# WORKER_PIDS and echoed. Concurrency 1 keeps the sweep slow enough that
# the chaos (kills, restart) reliably lands while cells are in flight.
start_worker() {
	local name="$1"
	"$WORK/simd" -worker "$BASE" -worker-id "$name" -heartbeat 250ms -concurrency 1 \
		>"$WORK/worker-$name.log" 2>&1 &
	WORKER_PIDS+=($!)
	echo "${WORKER_PIDS[-1]}"
}

FABRIC_FLAGS=(-coordinator -worker-dead-after 2s -steal-after 1s "${CKPT_FLAGS[@]}")

fabric_chaos_smoke() {
	local CELLS="${FABRIC_CELLS:-112}"
	local TICKS=$((CELLS * 40 + 1200))
	echo "simd-smoke(fabric): generating $CELLS-cell sweep"
	gen_fabric_sweep "$CELLS" "$WORK/fabric-sweep.json"
	SWEEP_JSON="$WORK/fabric-sweep.json"

	# Single-node control at the same checkpoint cadence: the fabric merge
	# must be byte-identical to this.
	echo "simd-smoke(fabric): single-node control run"
	"$WORK/simd" -addr "$ADDR" -journal "$WORK/journal-control" \
		"${CKPT_FLAGS[@]}" >"$WORK/simd.log" 2>&1 &
	SIMD_PID=$!
	wait_ready
	local CONTROL_ID CONTROL_RESULTS
	CONTROL_ID=$(submit_sweep)
	CONTROL_RESULTS=$(results_of "$(wait_done "$CONTROL_ID" "$TICKS")")
	[[ -n "$CONTROL_RESULTS" ]] || fail "control sweep has no results"
	kill -TERM "$SIMD_PID"
	wait "$SIMD_PID" || true
	SIMD_PID=""

	echo "simd-smoke(fabric): boot coordinator + 3 workers"
	"$WORK/simd" -addr "$ADDR" -journal "$JOURNAL" "${FABRIC_FLAGS[@]}" \
		>>"$WORK/simd.log" 2>&1 &
	SIMD_PID=$!
	wait_ready
	local W1 W2 W3
	W1=$(start_worker w1)
	W2=$(start_worker w2)
	W3=$(start_worker w3)

	local ID
	ID=$(submit_sweep)
	echo "simd-smoke(fabric): sweep $ID accepted"

	# Chaos window: wait for real progress so the kills land mid-sweep.
	local done_cells=0
	for _ in $(seq 1 600); do
		done_cells=$(curl -fsS "$BASE/sweep/$ID" | sed -n 's/.*"done": \([0-9]*\).*/\1/p')
		[[ "${done_cells:-0}" -ge 1 ]] && break
		sleep 0.1
	done
	[[ "${done_cells:-0}" -ge 1 ]] || fail "fabric sweep made no progress"

	echo "simd-smoke(fabric): kill -9 worker w1 mid-cell"
	kill -9 "$W1"
	wait "$W1" 2>/dev/null || true

	# The liveness watchdog must declare w1 dead and requeue its cells.
	local dead=0
	for _ in $(seq 1 150); do
		dead=$(metric_val workers_dead)
		[[ "${dead:-0}" -ge 1 ]] && break
		sleep 0.1
	done
	[[ "${dead:-0}" -ge 1 ]] || fail "dead worker never declared (workers_dead=$dead)"
	echo "simd-smoke(fabric): w1 declared dead, cells_requeued=$(metric_val cells_requeued)"

	echo "simd-smoke(fabric): SIGTERM worker w2 (graceful drain)"
	kill -TERM "$W2"
	local EXIT=0
	wait "$W2" || EXIT=$?
	[[ "$EXIT" -eq 0 ]] || fail "worker w2 exited $EXIT on SIGTERM, want 0"
	grep -q "drained" "$WORK/worker-w2.log" || fail "worker w2 log missing drain message"

	# A fast machine may have finished the sweep already; the run is then
	# still a valid (no-restart) comparison against the control.
	local STATE
	STATE=$(curl -fsS "$BASE/sweep/$ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
	if [[ "$STATE" == "done" ]]; then
		echo "simd-smoke(fabric): sweep finished before the restart; comparing directly"
		RESULTS=$(results_of "$(curl -fsS "$BASE/sweep/$ID")")
		[[ "$RESULTS" == "$CONTROL_RESULTS" ]] || fail "fabric results differ from single-node control"
		echo "simd-smoke(fabric): results byte-identical to single-node control"
		return 0
	fi

	echo "simd-smoke(fabric): restart coordinator over its journal"
	kill -TERM "$SIMD_PID"
	EXIT=0
	wait "$SIMD_PID" || EXIT=$?
	SIMD_PID=""
	[[ "$EXIT" -eq 0 ]] || fail "coordinator exited $EXIT on SIGTERM, want 0"
	"$WORK/simd" -addr "$ADDR" -journal "$JOURNAL" "${FABRIC_FLAGS[@]}" \
		>>"$WORK/simd.log" 2>&1 &
	SIMD_PID=$!
	wait_ready
	[[ "$(metric_val jobs_resumed)" == "1" ]] || fail "coordinator did not resume the sweep from its journal"
	echo "simd-smoke(fabric): resumed with cells_restored=$(metric_val cells_restored)"

	# w3 survived the restart (its stale lease gets 410, it re-registers);
	# a replacement worker joins for the lost capacity.
	start_worker w4 >/dev/null

	local RESULTS
	RESULTS=$(results_of "$(wait_done "$ID" "$TICKS")")
	echo "simd-smoke(fabric): fabric sweep completed"

	if [[ "$RESULTS" != "$CONTROL_RESULTS" ]]; then
		echo "--- control results (first 40 lines) ---" >&2
		head -40 <<<"$CONTROL_RESULTS" >&2
		echo "--- fabric results (first 40 lines) ---" >&2
		head -40 <<<"$RESULTS" >&2
		fail "fabric results differ from single-node control"
	fi
	echo "simd-smoke(fabric): results byte-identical to single-node control"

	curl -fsS "$BASE/metrics" | sed -n '1,40p'

	echo "simd-smoke(fabric): shutdown"
	for pid in "$W3" "${WORKER_PIDS[-1]}"; do
		kill -TERM "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	done
	kill -TERM "$SIMD_PID"
	EXIT=0
	wait "$SIMD_PID" || EXIT=$?
	SIMD_PID=""
	[[ "$EXIT" -eq 0 ]] || fail "coordinator exited $EXIT on final SIGTERM"
}

case "$MODE" in
graceful) graceful_smoke ;;
chaos) chaos_smoke ;;
fabric-chaos) fabric_chaos_smoke ;;
*)
	echo "usage: $0 [graceful|chaos|fabric-chaos]" >&2
	exit 2
	;;
esac

echo "simd-smoke: PASS ($MODE)"
