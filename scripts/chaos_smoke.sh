#!/usr/bin/env bash
# chaos_smoke.sh — CI entry point for the deterministic chaos orchestrator
# (cmd/chaos, DESIGN.md §16).
#
#   scripts/chaos_smoke.sh [SEEDS] [ARTIFACT_DIR]
#
# Two phases:
#   1. Self-test: a deliberately seeded invariant violation must be caught,
#      replayed bit-identically from its seed, and shrunk to its minimal
#      schedule. If the detector cannot find a planted bug, a green sweep
#      proves nothing, so this gates phase 2.
#   2. Sweep: SEEDS (default 200) planned disk+network fault schedules,
#      each a pure function of its seed. Any violation prints a repro
#      token ("seed=N keep=i,j"), shrinks it, saves the run's journals
#      under ARTIFACT_DIR (default /tmp/chaos-artifacts) for upload, and
#      fails the job.
#
# Reproduce any failure locally with the printed token:
#   go run ./cmd/chaos -replay "seed=N keep=i,j"
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-200}"
OUT="${2:-/tmp/chaos-artifacts}"
BASE="${CHAOS_SEED_BASE:-1}"

echo "== chaos self-test (seeded violation must be caught, replayed, shrunk) =="
go run ./cmd/chaos -self-test

echo "== chaos sweep: ${SEEDS} seeded schedules from seed ${BASE} =="
go run ./cmd/chaos -seeds "${SEEDS}" -seed-base "${BASE}" -out "${OUT}"
