#!/usr/bin/env bash
# benchcmp.sh — compare two `go test -bench` output files.
#
# Usage:
#   scripts/benchcmp.sh old.txt new.txt
#
# Produce the inputs with something like:
#   go test -bench 'Engine' -benchtime=3x -count=5 -run '^$' . > old.txt
#   ... apply the change ...
#   go test -bench 'Engine' -benchtime=3x -count=5 -run '^$' . > new.txt
#
# When benchstat (golang.org/x/perf/cmd/benchstat) is on PATH it is used
# for a proper statistical comparison across the -count repetitions. It is
# deliberately NOT installed here — offline/CI environments must not pull
# modules — so without it the script falls back to an awk comparison of
# per-benchmark mean ns/op, which is good enough for eyeballing but says
# nothing about significance: prefer -count>=5 and benchstat for real
# conclusions.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 old.txt new.txt" >&2
    exit 2
fi
old=$1
new=$2
for f in "$old" "$new"; do
    if [ ! -r "$f" ]; then
        echo "benchcmp: cannot read $f" >&2
        exit 2
    fi
done

if command -v benchstat >/dev/null 2>&1; then
    exec benchstat "$old" "$new"
fi

echo "benchcmp: benchstat not found on PATH; falling back to mean ns/op comparison"
echo "benchcmp: (go install golang.org/x/perf/cmd/benchstat@latest — needs network)"
echo

awk '
    # Benchmark lines look like: BenchmarkName-8  <iters>  <ns> ns/op  [extras]
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op") {
                sum[FILENAME, name] += $i
                cnt[FILENAME, name]++
                if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
            }
        }
    }
    END {
        printf "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
        for (i = 1; i <= n; i++) {
            name = order[i]
            o = (cnt[ARGV[1], name] ? sum[ARGV[1], name] / cnt[ARGV[1], name] : 0)
            v = (cnt[ARGV[2], name] ? sum[ARGV[2], name] / cnt[ARGV[2], name] : 0)
            if (o > 0 && v > 0)
                printf "%-40s %14.0f %14.0f %+8.1f%%\n", name, o, v, (v - o) * 100 / o
            else if (o > 0)
                printf "%-40s %14.0f %14s %9s\n", name, o, "-", "gone"
            else
                printf "%-40s %14s %14.0f %9s\n", name, "-", v, "new"
        }
    }
' "$old" "$new"
