// Package enlarge builds basic block enlargement files from branch-arc
// profiles, implementing the paper's procedure (section 3.1): the branch
// arc densities from a profiling run are sorted by use; starting from the
// most heavily used, basic blocks are enlarged until either the weight on
// the most common arc out of a block falls below a threshold or the ratio
// between the two arcs out of a block falls below a threshold. Only two-way
// conditional branches to explicit destinations are optimized, loops are
// unrolled by letting chains revisit their entry, and at most MaxInstances
// copies of any original block are materialized.
//
// The file produced here is consumed by the translating loader, which
// materializes each chain as an enlarged block (internal branches become
// assert/fault nodes) and re-optimizes it as a unit.
package enlarge

import (
	"encoding/json"
	"sort"

	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
)

// Step is one block of a chain. TakenToNext records which arm of the
// block's conditional terminator the chain follows (meaningless for the
// final step and for unconditional terminators).
type Step struct {
	Block       ir.BlockID
	TakenToNext bool
}

// Chain is a planned enlarged block: the entry block followed along its hot
// arcs. A chain of length 1 performs no enlargement and is not emitted.
type Chain struct {
	Entry ir.BlockID
	Steps []Step
}

// Options are the enlargement thresholds.
type Options struct {
	// MinArcWeight is the minimum dynamic count of the followed arc.
	MinArcWeight int64
	// MinRatio is the minimum share the followed arc must have of both
	// arcs out of a conditional branch.
	MinRatio float64
	// MaxChainLen caps the number of original blocks per chain.
	MaxChainLen int
	// MaxInstances caps how many materialized copies of one original block
	// may exist across all chains (the paper's limit of 16 per original PC).
	MaxInstances int
}

// DefaultOptions returns the thresholds used throughout the reproduction.
func DefaultOptions() Options {
	return Options{MinArcWeight: 16, MinRatio: 0.66, MaxChainLen: 8, MaxInstances: 16}
}

// File is a basic block enlargement file.
type File struct {
	Chains  []Chain
	Options Options
}

// Marshal serializes the file (the cmd/bbe <-> cmd/tld interchange format).
func (f *File) Marshal() ([]byte, error) { return json.MarshalIndent(f, "", "  ") }

// Unmarshal parses a serialized enlargement file.
func Unmarshal(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// blockHasSys reports whether the block performs a system call. System
// calls cannot be re-executed after an assert fault, so a Sys-containing
// block may only ever be the final element of a chain.
func blockHasSys(b *ir.Block) bool {
	for i := range b.Body {
		if b.Body[i].Op == ir.Sys {
			return true
		}
	}
	return false
}

// Build plans enlargement chains for a profiled program.
func Build(p *ir.Program, prof *interp.Profile, o Options) *File {
	if o.MaxChainLen == 0 {
		o = DefaultOptions()
	}
	f := &File{Options: o}

	// Hot blocks first: they get the instance budget.
	var entries []ir.BlockID
	for id, n := range prof.Blocks {
		if n > 0 {
			entries = append(entries, id)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if prof.Blocks[entries[i]] != prof.Blocks[entries[j]] {
			return prof.Blocks[entries[i]] > prof.Blocks[entries[j]]
		}
		return entries[i] < entries[j]
	})

	instances := make(map[ir.BlockID]int)
	for _, entry := range entries {
		chain := buildChain(p, prof, o, entry)
		chain = trimToBudget(p, chain, instances, o.MaxInstances)
		if len(chain.Steps) < 2 {
			continue
		}
		addInstances(p, chain, instances)
		f.Chains = append(f.Chains, chain)
	}
	return f
}

// buildChain follows hot arcs from entry until a threshold fails.
func buildChain(p *ir.Program, prof *interp.Profile, o Options, entry ir.BlockID) Chain {
	c := Chain{Entry: entry, Steps: []Step{{Block: entry}}}
	cur := entry
	for len(c.Steps) < o.MaxChainLen {
		b := p.Block(cur)
		if blockHasSys(b) {
			break // a Sys block must be the final element
		}
		var next ir.BlockID
		var takenToNext bool
		switch b.Term.Op {
		case ir.Jmp:
			next = b.Term.Target
			if prof.Blocks[cur] < o.MinArcWeight {
				return c
			}
		case ir.Br:
			if b.Term.Target == b.Fall {
				// Degenerate two-way branch (both arms identical): an
				// assert for it could fault spuriously, so stop here.
				return c
			}
			wt := prof.Arcs[interp.Arc{From: cur, To: b.Term.Target}]
			wf := prof.Arcs[interp.Arc{From: cur, To: b.Fall}]
			total := wt + wf
			if total == 0 {
				return c
			}
			max, to, taken := wf, b.Fall, false
			if wt >= wf {
				max, to, taken = wt, b.Term.Target, true
			}
			if max < o.MinArcWeight || float64(max)/float64(total) < o.MinRatio {
				return c
			}
			next, takenToNext = to, taken
		default:
			return c // calls, returns, and halts end chains
		}
		c.Steps[len(c.Steps)-1].TakenToNext = takenToNext
		c.Steps = append(c.Steps, Step{Block: next})
		cur = next
	}
	return c
}

// instancesOf computes how many materialized copies of each original block
// one chain creates: every step appears in the primary enlarged block, and
// step i additionally appears in the fault-recovery prefix block of every
// conditional step j >= i (the prefix re-executes steps 0..j).
func instancesOf(p *ir.Program, c Chain) map[ir.BlockID]int {
	m := len(c.Steps)
	counts := make(map[ir.BlockID]int, m)
	// assertAfter[i] = number of conditional (assert-generating) steps at
	// positions >= i among the non-final steps.
	assertAfter := make([]int, m+1)
	for i := m - 2; i >= 0; i-- {
		assertAfter[i] = assertAfter[i+1]
		if p.Block(c.Steps[i].Block).Term.Op == ir.Br {
			assertAfter[i]++
		}
	}
	for i, s := range c.Steps {
		counts[s.Block] += 1 + assertAfter[i]
	}
	return counts
}

// trimToBudget shortens a chain until no member exceeds its instance
// budget.
func trimToBudget(p *ir.Program, c Chain, instances map[ir.BlockID]int, maxInst int) Chain {
	for len(c.Steps) >= 2 {
		over := false
		for id, n := range instancesOf(p, c) {
			if instances[id]+n > maxInst {
				over = true
				break
			}
		}
		if !over {
			return c
		}
		c.Steps = c.Steps[:len(c.Steps)-1]
	}
	return c
}

func addInstances(p *ir.Program, c Chain, instances map[ir.BlockID]int) {
	for id, n := range instancesOf(p, c) {
		instances[id] += n
	}
}
