package enlarge

import (
	"testing"

	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
)

// loopProgram builds: b0 (entry) -> b1 (loop body) -br-> b1 ... -> b2 halt,
// with b1's terminator mostly taken (looping).
func loopProgram() *ir.Program {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	b0 := &ir.Block{
		Body: []ir.Node{{Op: ir.Const, Dst: 5, Imm: 10}},
		Term: ir.Node{Op: ir.Jmp, Target: 1},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b0)
	b1 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.AddI, Dst: 5, A: 5, Imm: -1},
			{Op: ir.Gt, Dst: 6, A: 5, B: 7}, // r7 == 0
		},
		Term: ir.Node{Op: ir.Br, A: 6, Target: 1},
		Fall: 2,
	}
	p.AddBlock(0, b1)
	b2 := &ir.Block{Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b2)
	f.Entry = 0
	return p
}

func profileOf(t *testing.T, p *ir.Program) *interp.Profile {
	t.Helper()
	prof := interp.NewProfile()
	if _, err := interp.Run(p, nil, nil, interp.Options{Profile: prof, MaxNodes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestBuildUnrollsHotLoop(t *testing.T) {
	p := loopProgram()
	prof := profileOf(t, p)
	f := Build(p, prof, Options{MinArcWeight: 2, MinRatio: 0.5, MaxChainLen: 4, MaxInstances: 16})
	var loopChain *Chain
	for i := range f.Chains {
		if f.Chains[i].Entry == 1 {
			loopChain = &f.Chains[i]
		}
	}
	if loopChain == nil {
		t.Fatal("hot loop head not enlarged")
	}
	if len(loopChain.Steps) < 2 {
		t.Fatalf("loop chain too short: %d", len(loopChain.Steps))
	}
	for _, s := range loopChain.Steps {
		if s.Block != 1 {
			t.Errorf("loop chain should revisit block 1, found %d", s.Block)
		}
	}
	if !loopChain.Steps[0].TakenToNext {
		t.Error("the loop back-arc is the taken arm")
	}
}

func TestThresholdsStopChains(t *testing.T) {
	p := loopProgram()
	prof := profileOf(t, p)
	// An absurd weight threshold suppresses all enlargement.
	f := Build(p, prof, Options{MinArcWeight: 1 << 40, MinRatio: 0.5, MaxChainLen: 8, MaxInstances: 16})
	if len(f.Chains) != 0 {
		t.Errorf("no chain should pass a weight threshold of 2^40, got %d", len(f.Chains))
	}
	// A ratio threshold above 1 likewise stops conditional extension.
	f = Build(p, prof, Options{MinArcWeight: 1, MinRatio: 1.1, MaxChainLen: 8, MaxInstances: 16})
	for _, c := range f.Chains {
		for i, s := range c.Steps[:len(c.Steps)-1] {
			if p.Block(s.Block).Term.Op == ir.Br {
				t.Errorf("chain %d extends through a conditional at step %d despite ratio > 1", c.Entry, i)
			}
		}
	}
}

func TestInstanceBudget(t *testing.T) {
	p := loopProgram()
	prof := profileOf(t, p)
	f := Build(p, prof, Options{MinArcWeight: 1, MinRatio: 0.5, MaxChainLen: 8, MaxInstances: 16})
	counts := make(map[ir.BlockID]int)
	for _, c := range f.Chains {
		for id, n := range instancesOf(p, c) {
			counts[id] += n
		}
	}
	for id, n := range counts {
		if n > 16 {
			t.Errorf("block %d materialized %d times, budget 16", id, n)
		}
	}
}

func TestInstancesOfAccounting(t *testing.T) {
	p := loopProgram()
	// Chain [1, 1, 1]: two conditional steps (both ending in Br).
	c := Chain{Entry: 1, Steps: []Step{
		{Block: 1, TakenToNext: true},
		{Block: 1, TakenToNext: true},
		{Block: 1},
	}}
	counts := instancesOf(p, c)
	// Primary holds 3 copies; prefix blocks for step 0 (1 copy) and step 1
	// (2 copies): total 6.
	if counts[1] != 6 {
		t.Errorf("instancesOf = %d, want 6", counts[1])
	}
}

func TestSysBlocksEndChains(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	// b0: sys, then unconditional jump to b1; b1 jumps back to b0 — a hot
	// jump-loop where b0 contains a Sys.
	b0 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Sys, Dst: 5, A: 6, B: ir.NoReg, Imm: ir.SysGetc},
			{Op: ir.Ge, Dst: 7, A: 5, B: 8},
		},
		Term: ir.Node{Op: ir.Br, A: 7, Target: 1},
		Fall: 2,
	}
	p.AddBlock(0, b0)
	b1 := &ir.Block{Term: ir.Node{Op: ir.Jmp, Target: 0}, Fall: ir.NoBlock}
	p.AddBlock(0, b1)
	b2 := &ir.Block{Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b2)
	f.Entry = 0
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	prof := interp.NewProfile()
	if _, err := interp.Run(p, []byte("abcdefgh"), nil, interp.Options{Profile: prof, MaxNodes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	ef := Build(p, prof, Options{MinArcWeight: 1, MinRatio: 0.5, MaxChainLen: 8, MaxInstances: 16})
	for _, c := range ef.Chains {
		for i, s := range c.Steps {
			if s.Block == 0 && i != len(c.Steps)-1 {
				t.Errorf("Sys-containing block 0 appears mid-chain (entry %d step %d)", c.Entry, i)
			}
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := loopProgram()
	prof := profileOf(t, p)
	f := Build(p, prof, DefaultOptions())
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Chains) != len(f.Chains) {
		t.Fatalf("round trip lost chains: %d -> %d", len(f.Chains), len(g.Chains))
	}
	for i := range f.Chains {
		if f.Chains[i].Entry != g.Chains[i].Entry || len(f.Chains[i].Steps) != len(g.Chains[i].Steps) {
			t.Errorf("chain %d differs after round trip", i)
		}
	}
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("Unmarshal should reject garbage")
	}
}

func TestZeroOptionsUseDefaults(t *testing.T) {
	p := loopProgram()
	prof := profileOf(t, p)
	f := Build(p, prof, Options{})
	if f.Options.MaxChainLen == 0 {
		t.Error("zero options should be replaced by defaults")
	}
}
