package chaos

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Observer sees every request a Transport lets through to the real
// round-tripper, after faults, together with the response status (0 when
// the request itself failed). The harness uses it to tap acknowledged
// result posts for the acked-never-lost invariant.
type Observer func(req *http.Request, body []byte, status int)

// Transport is an http.RoundTripper that injects a schedule's net faults
// for one component. Faults arm on the N-th request of their class, where
// the class is derived from the URL path ("result", "poll", "snapshot",
// "register", "heartbeat" — anything else counts as "other" and is never
// faulted). Classed counters, not a global ordinal, keep replay exact:
// heartbeats race polls in wall-clock order, but the N-th result post is
// the N-th result post on any run.
type Transport struct {
	Under    http.RoundTripper
	Observe  Observer
	MaxDelay time.Duration // cap for NetDelay sleeps (default 50ms)

	mu        sync.Mutex
	counts    map[string]int
	armed     []plannedDisk
	fired     []Fired
	partition int // requests remaining in an open partition window
}

// NewTransport wraps under with the net faults sched plans for component.
// Disk faults addressed to the component are ignored (they belong to its
// FS).
func NewTransport(under http.RoundTripper, sched *Schedule, component string) *Transport {
	if under == nil {
		under = http.DefaultTransport
	}
	t := &Transport{Under: under, counts: map[string]int{}}
	if sched != nil {
		for _, f := range sched.For(component) {
			if !f.Kind.DiskKind() {
				t.armed = append(t.armed, plannedDisk{f: f})
			}
		}
	}
	return t
}

// Fired returns the faults this Transport has injected so far.
func (t *Transport) Fired() []Fired {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Fired(nil), t.fired...)
}

// Pending reports how many planned faults have not fired yet.
func (t *Transport) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, p := range t.armed {
		if !p.done {
			n++
		}
	}
	return n
}

// ClassOf maps a request path to its fault class.
func ClassOf(path string) string {
	switch {
	case strings.HasPrefix(path, "/fabric/result"):
		return "result"
	case strings.HasPrefix(path, "/fabric/poll"):
		return "poll"
	case strings.HasPrefix(path, "/fabric/snapshot"):
		return "snapshot"
	case strings.HasPrefix(path, "/fabric/register"):
		return "register"
	case strings.HasPrefix(path, "/fabric/heartbeat"):
		return "heartbeat"
	}
	return "other"
}

// take counts one request of class and returns the armed fault, if any.
// An open partition window claims the request regardless of class.
func (t *Transport) take(class, path string) (Fault, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.partition > 0 {
		t.partition--
		injected.Add(1)
		f := Fault{Kind: NetPartition, Class: class}
		t.fired = append(t.fired, Fired{Fault: f, Op: "RoundTrip", Path: path})
		return f, true
	}
	if class == "other" {
		return Fault{}, false
	}
	t.counts[class]++
	n := t.counts[class]
	for i := range t.armed {
		p := &t.armed[i]
		if !p.done && p.f.Class == class && p.f.N == n {
			p.done = true
			t.fired = append(t.fired, Fired{Fault: p.f, Op: "RoundTrip", Path: path})
			injected.Add(1)
			if p.f.Kind == NetPartition {
				// The window swallows this request plus the next 1..4.
				t.partition = 1 + int(p.f.Arg%4)
			}
			return p.f, true
		}
	}
	return Fault{}, false
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body: every fault kind needs to inspect, cut, or resend it,
	// and fabric payloads are small JSON (snapshots are capped server-side).
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	path := req.URL.Path
	f, ok := t.take(ClassOf(path), path)
	if ok {
		switch f.Kind {
		case NetDrop, NetPartition:
			return nil, &InjectedError{Kind: f.Kind, Op: "RoundTrip", Path: path}
		case NetDelay:
			max := t.MaxDelay
			if max <= 0 {
				max = 50 * time.Millisecond
			}
			time.Sleep(time.Duration(f.Arg % uint64(max)))
		case NetTruncate:
			if len(body) > 0 {
				cut := int(f.Arg % uint64(len(body)))
				// Send a torn body under the original Content-Length so the
				// server sees an unexpected EOF, like a connection cut
				// mid-POST — then report the send failed to the caller.
				resp, _ := t.send(req, body[:cut], int64(len(body)))
				if resp != nil {
					resp.Body.Close()
				}
			}
			return nil, &InjectedError{Kind: f.Kind, Op: "RoundTrip", Path: path}
		case NetDup:
			if resp, err := t.send(req, body, int64(len(body))); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			// fall through to the real send below
		case NetCorrupt:
			body = corruptDigit(body, f.Arg)
		}
	}
	resp, err := t.send(req, body, int64(len(body)))
	if t.Observe != nil {
		status := 0
		if resp != nil {
			status = resp.StatusCode
		}
		t.Observe(req, body, status)
	}
	return resp, err
}

// send issues one copy of the request with the given body bytes.
func (t *Transport) send(req *http.Request, body []byte, contentLength int64) (*http.Response, error) {
	r2 := req.Clone(req.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = contentLength
	r2.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(body)), nil
	}
	return t.Under.RoundTrip(r2)
}

// corruptDigit flips one decimal digit of the body after its `"stats"`
// key (falling back to the first digit anywhere) to a different digit —
// a silent payload mutation that changes a reported result without
// breaking JSON framing.
func corruptDigit(body []byte, arg uint64) []byte {
	start := bytes.Index(body, []byte(`"stats"`))
	if start < 0 {
		start = 0
	}
	for i := start; i < len(body); i++ {
		if body[i] >= '0' && body[i] <= '9' {
			out := append([]byte(nil), body...)
			d := out[i] - '0'
			out[i] = '0' + (d+1+byte(arg%9))%10 // offset 1..9 mod 10: never the same digit
			return out
		}
	}
	return body
}

var _ http.RoundTripper = (*Transport)(nil)
