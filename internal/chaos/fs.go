package chaos

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// Disk is the filesystem surface the durability layers (exp.Journal,
// internal/snapshot) go through. OS is the production implementation; FS
// wraps any Disk with a seeded fault schedule. The method set is exactly
// what the journal and snapshot code need — not a general VFS.
type Disk interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	CreateTemp(dir, pattern string) (File, error)
	Open(name string) (File, error)
	SyncDir(dir string) error
}

// File is the open-file surface Disk hands out. Reads through an open File
// stream are not faulted (BitrotRead targets whole-file ReadFile, where the
// caller's CRC framing is the defense); the Reader half exists so journal
// replays can stream through the same seam they write through.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
}

// OS is the passthrough Disk over the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) ReadFile(name string) ([]byte, error)                 { return os.ReadFile(name) }
func (OS) WriteFile(name string, d []byte, p os.FileMode) error { return os.WriteFile(name, d, p) }
func (OS) Rename(oldpath, newpath string) error                 { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                             { return os.Remove(name) }
func (OS) Stat(name string) (fs.FileInfo, error)                { return os.Stat(name) }
func (OS) CreateTemp(dir, pattern string) (File, error)         { return os.CreateTemp(dir, pattern) }
func (OS) Open(name string) (File, error)                       { return os.Open(name) }
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FS is a Disk that injects the disk faults of a schedule's plan for one
// component. Faults arm on the N-th operation of their class ("write",
// "sync", "rename", "read"); each planned fault fires at most once, so the
// adversary drains and recovery can be asserted to terminate.
type FS struct {
	under Disk

	mu     sync.Mutex
	counts map[string]int // ops seen per class
	armed  []plannedDisk
	fired  []Fired
}

type plannedDisk struct {
	f    Fault
	done bool
}

// NewFS wraps under with the disk faults sched plans for component.
// Non-disk faults addressed to the component are ignored (they belong to
// its Transport).
func NewFS(under Disk, sched *Schedule, component string) *FS {
	fsys := &FS{under: under, counts: map[string]int{}}
	if sched != nil {
		for _, f := range sched.For(component) {
			if f.Kind.DiskKind() {
				fsys.armed = append(fsys.armed, plannedDisk{f: f})
			}
		}
	}
	return fsys
}

// Fired returns the faults this FS has injected so far.
func (c *FS) Fired() []Fired {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Fired(nil), c.fired...)
}

// Pending reports how many planned faults have not fired yet. A drained
// adversary (Pending()==0 or pinned beyond the ops that ran) is the
// precondition for the recovery-terminates invariant.
func (c *FS) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.armed {
		if !p.done {
			n++
		}
	}
	return n
}

// take counts one operation of class and returns the fault armed for this
// ordinal, if any.
func (c *FS) take(class, op, path string) (Fault, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[class]++
	n := c.counts[class]
	for i := range c.armed {
		p := &c.armed[i]
		if !p.done && p.f.Class == class && p.f.N == n {
			p.done = true
			c.fired = append(c.fired, Fired{Fault: p.f, Op: op, Path: path})
			injected.Add(1)
			return p.f, true
		}
	}
	return Fault{}, false
}

func (c *FS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := c.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, fs: c}, nil
}

func (c *FS) CreateTemp(dir, pattern string) (File, error) {
	f, err := c.under.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, fs: c}, nil
}

func (c *FS) Open(name string) (File, error) { return c.under.Open(name) }

func (c *FS) ReadFile(name string) ([]byte, error) {
	data, err := c.under.ReadFile(name)
	if err != nil {
		return data, err
	}
	if f, ok := c.take("read", "ReadFile", name); ok && f.Kind == BitrotRead && len(data) > 0 {
		// Flip one seeded bit in place on a copy: silent corruption the
		// caller's CRC frames must catch.
		rot := append([]byte(nil), data...)
		bit := f.Arg % uint64(len(rot)*8)
		rot[bit/8] ^= 1 << (bit % 8)
		return rot, nil
	}
	return data, err
}

func (c *FS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if f, ok := c.take("write", "WriteFile", name); ok {
		switch f.Kind {
		case WriteNoSpace:
			return &InjectedError{Kind: f.Kind, Op: "WriteFile", Path: name}
		case TornWrite:
			n := 0
			if len(data) > 0 {
				n = int(f.Arg % uint64(len(data)))
			}
			_ = c.under.WriteFile(name, data[:n], perm)
			return &InjectedError{Kind: f.Kind, Op: "WriteFile", Path: name}
		}
	}
	return c.under.WriteFile(name, data, perm)
}

func (c *FS) Rename(oldpath, newpath string) error {
	if f, ok := c.take("rename", "Rename", oldpath); ok && f.Kind == RenameCut {
		return &InjectedError{Kind: f.Kind, Op: "Rename", Path: oldpath}
	}
	return c.under.Rename(oldpath, newpath)
}

func (c *FS) Remove(name string) error              { return c.under.Remove(name) }
func (c *FS) Stat(name string) (fs.FileInfo, error) { return c.under.Stat(name) }

func (c *FS) SyncDir(dir string) error {
	if f, ok := c.take("sync", "SyncDir", dir); ok && f.Kind == SyncFail {
		return &InjectedError{Kind: f.Kind, Op: "SyncDir", Path: dir}
	}
	return c.under.SyncDir(dir)
}

// faultFile applies write/sync faults to one open file.
type faultFile struct {
	f  File
	fs *FS
}

func (w *faultFile) Name() string               { return w.f.Name() }
func (w *faultFile) Close() error               { return w.f.Close() }
func (w *faultFile) Read(p []byte) (int, error) { return w.f.Read(p) }

func (w *faultFile) Write(p []byte) (int, error) {
	if f, ok := w.fs.take("write", "Write", w.f.Name()); ok {
		switch f.Kind {
		case WriteNoSpace:
			return 0, &InjectedError{Kind: f.Kind, Op: "Write", Path: w.f.Name()}
		case TornWrite:
			n := 0
			if len(p) > 0 {
				n = int(f.Arg % uint64(len(p)))
			}
			if n > 0 {
				if wn, err := w.f.Write(p[:n]); err != nil {
					return wn, err
				}
			}
			return n, &InjectedError{Kind: f.Kind, Op: "Write", Path: w.f.Name()}
		}
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	if f, ok := w.fs.take("sync", "Sync", w.f.Name()); ok && f.Kind == SyncFail {
		return &InjectedError{Kind: f.Kind, Op: "Sync", Path: w.f.Name()}
	}
	return w.f.Sync()
}

var _ Disk = OS{}
var _ Disk = (*FS)(nil)

// String summarizes the FS state for harness reports.
func (c *FS) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("chaos.FS{planned=%d fired=%d}", len(c.armed), len(c.fired))
}
