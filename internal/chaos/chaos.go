// Package chaos is a deterministic, seeded failpoint engine for the
// service layer: the same determinism contract internal/faultinject gives
// the simulation engine (every decision derives from a splitmix64 stream
// over a seed, so a failing schedule replays exactly), lifted to the two
// surfaces the fabric's durability story depends on — the filesystem under
// the journals and snapshots, and the HTTP transport between coordinator
// and workers.
//
// The package is a leaf: it depends on nothing but the standard library,
// so internal/exp, internal/snapshot, and internal/server can all accept a
// chaos.Disk without import cycles. The orchestrator that runs whole
// coordinator/worker sweeps under fault schedules and checks end-to-end
// invariants lives in internal/chaos/harness.
//
// A Schedule is the unit of exploration, replay, and shrinking: a seed
// expands deterministically into a finite plan of faults, each pinned to a
// named component (a worker's disk, the coordinator's disk, a worker's
// network path), an operation class within it, and the N-th operation of
// that class. Because the plan is finite, the injected adversary always
// drains — "recovery terminates" is a checkable invariant, not a hope.
// Shrinking keeps the seed and disables plan entries (Keep) until the
// failure is 1-minimal, the same reducer idiom difftest.Reduce uses on
// MiniC programs.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Kind is one class of injectable fault. Disk kinds are consumed by FS,
// net kinds by Transport.
type Kind uint8

const (
	// TornWrite lands only a prefix of the buffer and fails the write —
	// what a crash mid-write(2) leaves behind.
	TornWrite Kind = iota
	// WriteNoSpace fails the write with nothing landed (ENOSPC).
	WriteNoSpace
	// SyncFail fails fsync: the data's durability is unknown, and the
	// writer must not report anything accepted since the last good sync as
	// durable (exp.Journal poisons itself on this).
	SyncFail
	// RenameCut fails a rename with the target untouched — the visible
	// half of a power cut between prepare and publish.
	RenameCut
	// BitrotRead silently flips one bit of a ReadFile result; the caller's
	// CRCs and fallback ladders must catch it.
	BitrotRead

	// NetDrop fails the request without sending it.
	NetDrop
	// NetDelay sleeps before sending (a slow link, not a lost one).
	NetDelay
	// NetDup sends the request twice; both deliveries reach the server.
	NetDup
	// NetTruncate cuts the request body mid-stream (a torn POST).
	NetTruncate
	// NetPartition opens a partition window: every request on the
	// transport fails until the window closes.
	NetPartition

	// NetCorrupt silently alters a digit of the request body in transit.
	// Since the end-to-end integrity layer landed (content digests on every
	// result, verified at ingest and at merge — DESIGN.md §17) this is part
	// of the tolerated fault model: a corrupted payload must be rejected,
	// the sender struck, and the cell re-served byte-identical from an
	// honest execution. The orchestrator's self-test still uses it with
	// digests disarmed to seed a deliberate violation and prove the
	// catch/replay/shrink loop works.
	NetCorrupt

	numKinds
)

var kindNames = [numKinds]string{
	TornWrite:    "torn-write",
	WriteNoSpace: "enospc",
	SyncFail:     "sync-fail",
	RenameCut:    "rename-cut",
	BitrotRead:   "bitrot-read",
	NetDrop:      "net-drop",
	NetDelay:     "net-delay",
	NetDup:       "net-dup",
	NetTruncate:  "net-truncate",
	NetPartition: "net-partition",
	NetCorrupt:   "net-corrupt",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// DiskKind reports whether k is consumed by FS (false: by Transport).
func (k Kind) DiskKind() bool { return k <= BitrotRead }

// DiskKinds is the tolerated disk fault set: everything FS can inject.
func DiskKinds() []Kind {
	return []Kind{TornWrite, WriteNoSpace, SyncFail, RenameCut, BitrotRead}
}

// NetKinds is the tolerated network fault set: everything Transport can
// inject, NetCorrupt included — payload corruption moved inside the trust
// model when result digests landed (DESIGN.md §17).
func NetKinds() []Kind {
	return []Kind{NetDrop, NetDelay, NetDup, NetTruncate, NetPartition, NetCorrupt}
}

// diskClass maps a disk fault kind to the operation class whose counter
// arms it.
func diskClass(k Kind) string {
	switch k {
	case TornWrite, WriteNoSpace:
		return "write"
	case SyncFail:
		return "sync"
	case RenameCut:
		return "rename"
	case BitrotRead:
		return "read"
	}
	return ""
}

// netClasses are the request classes a net fault may target. Keying faults
// to the N-th request OF A CLASS (rather than the N-th request overall)
// keeps the interesting schedules replayable: the order of a worker's
// result posts is deterministic under sequential execution, while
// time-driven heartbeats interleave arbitrarily and would otherwise shift
// every subsequent fault site.
var netClasses = []string{"result", "poll", "snapshot", "register", "heartbeat"}

// Fault is one planned injection: the N-th operation (1-based) of Class on
// Component fails with Kind. Arg parameterizes the kind (prefix length,
// bit index, delay, window width).
type Fault struct {
	Component string `json:"component"`
	Kind      Kind   `json:"kind"`
	Class     string `json:"class"`
	N         int    `json:"n"`
	Arg       uint64 `json:"arg"`
}

func (f Fault) String() string {
	return fmt.Sprintf("%s/%s@%s#%d", f.Component, f.Kind, f.Class, f.N)
}

// Component declares one injectable surface of the system under test and
// the fault kinds that may be drawn against it.
type Component struct {
	Name  string
	Kinds []Kind
}

// Profile sizes a schedule's adversary.
type Profile struct {
	// MaxFaults bounds the plan (1..MaxFaults faults are drawn; default 5).
	// Finite plans are what makes "recovery terminates" checkable.
	MaxFaults int
	// Horizon is the largest operation ordinal a fault may be pinned to
	// (default 40). Operations beyond every component's horizon run clean.
	Horizon int
}

func (p Profile) withDefaults() Profile {
	if p.MaxFaults <= 0 {
		p.MaxFaults = 5
	}
	if p.Horizon <= 0 {
		p.Horizon = 40
	}
	return p
}

// Schedule is a seed's deterministic fault plan plus an optional Keep mask
// (the shrinker's handle): when Keep is non-nil, only the plan entries at
// those indices are active.
type Schedule struct {
	Seed   uint64
	Faults []Fault // the full plan, in draw order
	Keep   []int   // nil = all active; otherwise active plan indices
}

// Plan expands a seed into a schedule over the given components. The
// expansion is pure: equal (seed, components, profile) always yield the
// identical plan, which is the replay contract.
func Plan(seed uint64, comps []Component, prof Profile) *Schedule {
	prof = prof.withDefaults()
	rng := rng(seed)
	n := 1 + int(rng.next()%uint64(prof.MaxFaults))
	s := &Schedule{Seed: seed}
	if len(comps) == 0 {
		return s
	}
	for i := 0; i < n; i++ {
		comp := comps[rng.next()%uint64(len(comps))]
		if len(comp.Kinds) == 0 {
			continue
		}
		kind := comp.Kinds[rng.next()%uint64(len(comp.Kinds))]
		class := diskClass(kind)
		if class == "" {
			class = netClasses[rng.next()%uint64(len(netClasses))]
		}
		s.Faults = append(s.Faults, Fault{
			Component: comp.Name,
			Kind:      kind,
			Class:     class,
			N:         1 + int(rng.next()%uint64(prof.Horizon)),
			Arg:       rng.next(),
		})
	}
	return s
}

// Active returns the plan entries the Keep mask leaves enabled, in plan
// order.
func (s *Schedule) Active() []Fault {
	if s.Keep == nil {
		return s.Faults
	}
	keep := make(map[int]bool, len(s.Keep))
	for _, i := range s.Keep {
		keep[i] = true
	}
	var out []Fault
	for i, f := range s.Faults {
		if keep[i] {
			out = append(out, f)
		}
	}
	return out
}

// For returns the active faults pinned to one component.
func (s *Schedule) For(component string) []Fault {
	var out []Fault
	for _, f := range s.Active() {
		if f.Component == component {
			out = append(out, f)
		}
	}
	return out
}

// Repro renders the schedule as a replayable token: "seed=N" for a full
// plan, "seed=N keep=i,j" for a shrunk one. ParseRepro inverts it.
func (s *Schedule) Repro() string {
	if s.Keep == nil {
		return fmt.Sprintf("seed=%d", s.Seed)
	}
	keep := append([]int(nil), s.Keep...)
	sort.Ints(keep)
	parts := make([]string, len(keep))
	for i, k := range keep {
		parts[i] = strconv.Itoa(k)
	}
	return fmt.Sprintf("seed=%d keep=%s", s.Seed, strings.Join(parts, ","))
}

// ParseRepro parses a Repro token back into (seed, keep). keep is nil for
// a full-plan token.
func ParseRepro(tok string) (seed uint64, keep []int, err error) {
	keep = nil
	seen := false
	for _, field := range strings.Fields(tok) {
		switch {
		case strings.HasPrefix(field, "seed="):
			seed, err = strconv.ParseUint(field[len("seed="):], 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("chaos: bad repro %q: %w", tok, err)
			}
			seen = true
		case strings.HasPrefix(field, "keep="):
			raw := field[len("keep="):]
			keep = []int{}
			if raw == "" {
				continue
			}
			for _, part := range strings.Split(raw, ",") {
				v, perr := strconv.Atoi(part)
				if perr != nil {
					return 0, nil, fmt.Errorf("chaos: bad repro %q: %w", tok, perr)
				}
				keep = append(keep, v)
			}
		default:
			return 0, nil, fmt.Errorf("chaos: bad repro field %q", field)
		}
	}
	if !seen {
		return 0, nil, fmt.Errorf("chaos: repro %q names no seed", tok)
	}
	return seed, keep, nil
}

// Fired records one injected fault, for reports and replay comparison.
type Fired struct {
	Fault Fault  `json:"fault"`
	Op    string `json:"op"`   // the concrete operation it hit
	Path  string `json:"path"` // file path or URL path
}

func (f Fired) String() string { return fmt.Sprintf("%s on %s %s", f.Fault, f.Op, f.Path) }

// InjectedError is the typed error every injected disk or network fault
// surfaces as (silent kinds — BitrotRead, NetCorrupt — corrupt data
// instead of erroring; that is their point).
type InjectedError struct {
	Kind Kind
	Op   string
	Path string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected %s during %s %s", e.Kind, e.Op, e.Path)
}

// injected counts every fault applied process-wide; /metrics exports it as
// chaos_faults_injected, which must read zero in production.
var injected atomic.Int64

// Injected returns the process-wide count of applied faults.
func Injected() int64 { return injected.Load() }

// splitmix64, the same mix faultinject uses for the engine layer.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix derives a sub-seed from a seed and a label, for callers that need
// several independent deterministic streams out of one schedule seed.
func Mix(seed uint64, label string) uint64 {
	r := rng(seed)
	for _, b := range []byte(label) {
		r = rng(r.next() ^ uint64(b))
	}
	return r.next()
}
