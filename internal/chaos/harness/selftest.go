package harness

import (
	"bytes"
	"fmt"

	"fgpsim/internal/chaos"
)

// SeededViolation is a hand-pinned schedule whose middle fault corrupts a
// result payload in transit — outside the fabric's trust model, so it MUST
// trip the byte-identity invariant. The two flanking faults (a duplicated
// register, a delayed poll) are tolerated noise the shrinker has to strip
// away. It is the deliberate bug the orchestrator proves itself against.
func SeededViolation() *chaos.Schedule {
	return &chaos.Schedule{Seed: 7, Faults: []chaos.Fault{
		{Component: "w0/net", Kind: chaos.NetDup, Class: "register", N: 1},
		{Component: "w0/net", Kind: chaos.NetCorrupt, Class: "result", N: 1, Arg: 5},
		{Component: "w0/net", Kind: chaos.NetDelay, Class: "poll", N: 1, Arg: 7},
	}}
}

func firedFingerprint(rep *Report) string {
	var b bytes.Buffer
	for _, f := range rep.Fired {
		fmt.Fprintf(&b, "%s\n", f)
	}
	return b.String()
}

// SelfTest is the orchestrator's trust check, run ahead of every CI chaos
// sweep: a deliberately seeded invariant violation (SeededViolation) must
// be (a) caught, (b) replayed bit-identically from its seed — same
// violation, same fired faults, same corrupted results bytes — and
// (c) shrunk to the minimal schedule holding only the corrupting fault.
// If any leg fails the detector cannot be trusted, and a green chaos sweep
// means nothing.
func SelfTest(logf func(format string, args ...any)) error {
	// One worker, one slot: every fault-class counter sees the same
	// operation sequence on every run, which is what makes (b) exact.
	opts := Options{Workers: 1, Concurrency: 1, Logf: logf}

	rep1, err := Run(opts, SeededViolation())
	if err != nil {
		return fmt.Errorf("self-test: seeded run: %w", err)
	}
	if rep1.Violation != "results-differ" {
		return fmt.Errorf("self-test: seeded corruption was not caught: violation %q, want results-differ (%s)", rep1.Violation, rep1.Detail)
	}
	if len(rep1.Results) == 0 {
		return fmt.Errorf("self-test: violating run reported no results bytes")
	}

	rep2, err := Run(opts, SeededViolation())
	if err != nil {
		return fmt.Errorf("self-test: replay run: %w", err)
	}
	if rep2.Violation != rep1.Violation {
		return fmt.Errorf("self-test: replay violation %q != original %q", rep2.Violation, rep1.Violation)
	}
	if !bytes.Equal(rep1.Results, rep2.Results) {
		return fmt.Errorf("self-test: replay results not bit-identical\nfirst:  %s\nreplay: %s", rep1.Results, rep2.Results)
	}
	if f1, f2 := firedFingerprint(rep1), firedFingerprint(rep2); f1 != f2 {
		return fmt.Errorf("self-test: replay fired different faults\nfirst:\n%sreplay:\n%s", f1, f2)
	}

	shrunk, best, err := Shrink(opts, SeededViolation())
	if err != nil {
		return fmt.Errorf("self-test: shrink: %w", err)
	}
	if got, want := shrunk.Repro(), "seed=7 keep=1"; got != want {
		return fmt.Errorf("self-test: shrunk repro %q, want %q (only the NetCorrupt fault)", got, want)
	}
	if best.Violation != "results-differ" {
		return fmt.Errorf("self-test: shrunk schedule violation %q, want results-differ", best.Violation)
	}
	if !bytes.Equal(best.Results, rep1.Results) {
		return fmt.Errorf("self-test: shrunk run's corrupted results differ from the full schedule's")
	}
	return nil
}
