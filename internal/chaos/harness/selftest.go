package harness

import (
	"bytes"
	"fmt"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/server"
	"fgpsim/internal/stats"
)

// SeededViolation is a hand-pinned schedule whose middle fault corrupts a
// result payload in transit. With the integrity layer disarmed (the
// self-test runs workers with OmitDigests and audits off) the corruption
// sails through ingest and MUST trip the byte-identity invariant. The two
// flanking faults (a duplicated register, a delayed poll) are tolerated
// noise the shrinker has to strip away. It is the deliberate bug the
// orchestrator proves itself against.
func SeededViolation() *chaos.Schedule {
	return &chaos.Schedule{Seed: 7, Faults: []chaos.Fault{
		{Component: "w0/net", Kind: chaos.NetDup, Class: "register", N: 1},
		{Component: "w0/net", Kind: chaos.NetCorrupt, Class: "result", N: 1, Arg: 5},
		{Component: "w0/net", Kind: chaos.NetDelay, Class: "poll", N: 1, Arg: 7},
	}}
}

func firedFingerprint(rep *Report) string {
	var b bytes.Buffer
	for _, f := range rep.Fired {
		fmt.Fprintf(&b, "%s\n", f)
	}
	return b.String()
}

// SelfTest is the orchestrator's trust check, run ahead of every CI chaos
// sweep: a deliberately seeded invariant violation (SeededViolation) must
// be (a) caught, (b) replayed bit-identically from its seed — same
// violation, same fired faults, same corrupted results bytes — and
// (c) shrunk to the minimal schedule holding only the corrupting fault.
// If any leg fails the detector cannot be trusted, and a green chaos sweep
// means nothing.
func SelfTest(logf func(format string, args ...any)) error {
	// One worker, one slot: every fault-class counter sees the same
	// operation sequence on every run, which is what makes (b) exact.
	// Digests and audits are disarmed — the production integrity layer
	// would catch the planted corruption at ingest and there would be no
	// violation left to prove the detector against (IntegritySmoke is where
	// the armed layer is exercised).
	opts := Options{Workers: 1, Concurrency: 1, Logf: logf, OmitDigests: true, AuditRate: -1}

	rep1, err := Run(opts, SeededViolation())
	if err != nil {
		return fmt.Errorf("self-test: seeded run: %w", err)
	}
	if rep1.Violation != "results-differ" {
		return fmt.Errorf("self-test: seeded corruption was not caught: violation %q, want results-differ (%s)", rep1.Violation, rep1.Detail)
	}
	if len(rep1.Results) == 0 {
		return fmt.Errorf("self-test: violating run reported no results bytes")
	}

	rep2, err := Run(opts, SeededViolation())
	if err != nil {
		return fmt.Errorf("self-test: replay run: %w", err)
	}
	if rep2.Violation != rep1.Violation {
		return fmt.Errorf("self-test: replay violation %q != original %q", rep2.Violation, rep1.Violation)
	}
	if !bytes.Equal(rep1.Results, rep2.Results) {
		return fmt.Errorf("self-test: replay results not bit-identical\nfirst:  %s\nreplay: %s", rep1.Results, rep2.Results)
	}
	if f1, f2 := firedFingerprint(rep1), firedFingerprint(rep2); f1 != f2 {
		return fmt.Errorf("self-test: replay fired different faults\nfirst:\n%sreplay:\n%s", f1, f2)
	}

	shrunk, best, err := Shrink(opts, SeededViolation())
	if err != nil {
		return fmt.Errorf("self-test: shrink: %w", err)
	}
	if got, want := shrunk.Repro(), "seed=7 keep=1"; got != want {
		return fmt.Errorf("self-test: shrunk repro %q, want %q (only the NetCorrupt fault)", got, want)
	}
	if best.Violation != "results-differ" {
		return fmt.Errorf("self-test: shrunk schedule violation %q, want results-differ", best.Violation)
	}
	if !bytes.Equal(best.Results, rep1.Results) {
		return fmt.Errorf("self-test: shrunk run's corrupted results differ from the full schedule's")
	}
	return nil
}

// IntegritySmoke proves the ARMED integrity layer (DESIGN.md §17) end to
// end, the inverse of SelfTest's disarmed run:
//
// Phase 1 — a lying worker. Worker w0 mangles every result it produces
// (self-consistent digest, so only re-execution audits can catch it) while
// every completed cell is audited. The sweep must settle byte-identical to
// the fault-free control, every audit disagreement must be resolved by a
// tie-break, and w0 must be quarantined.
//
// Phase 2 — a corrupting transport plus disk bitrot. Three NetCorrupt
// faults on w0's result posts (each a digest-gate rejection and a strike:
// three strikes is the default quarantine threshold) and a BitrotRead on
// the coordinator's disk, with the background scrubber armed. The sweep
// must settle clean — no violation, w0 quarantined, results byte-identical
// to control (the byte-identity invariant inside Run).
func IntegritySmoke(logf func(format string, args ...any)) error {
	// Phase 1: audits catch a worker whose corruption is self-consistent.
	mangle := func(workerID, cellID string, s *stats.Run) *stats.Run {
		if workerID != "w0" {
			return s
		}
		m := *s
		m.Cycles++
		return &m
	}
	// QuarantineStrikes 1: the first lost audit or tie-break quarantines,
	// so the assertion does not hinge on how many of the sweep's executions
	// the racing scheduler happens to hand w0.
	opts := Options{Workers: 3, Concurrency: 1, AuditRate: 1.0,
		QuarantineStrikes: 1, MangleWorker: mangle, Logf: logf}
	rep, err := Run(opts, &chaos.Schedule{Seed: 11})
	if err != nil {
		return fmt.Errorf("integrity-smoke: lying-worker run: %w", err)
	}
	if rep.Violation != "" {
		return fmt.Errorf("integrity-smoke: lying worker broke invariant %q: %s", rep.Violation, rep.Detail)
	}
	if rep.AuditsDisagreed == 0 {
		return fmt.Errorf("integrity-smoke: lying worker produced no audit disagreements (audits_run %d)", rep.AuditsRun)
	}
	if rep.AuditsDisagreed != rep.AuditsResolved {
		return fmt.Errorf("integrity-smoke: %d disagreements but %d resolved", rep.AuditsDisagreed, rep.AuditsResolved)
	}
	if rep.WorkersQuarantined == 0 {
		return fmt.Errorf("integrity-smoke: lying worker was never quarantined (integrity_failures %d)", rep.IntegrityFailures)
	}
	logf("integrity-smoke: lying worker: %d audits, %d disagreed, all resolved, %d quarantine(s)",
		rep.AuditsRun, rep.AuditsDisagreed, rep.WorkersQuarantined)

	// Phase 2: transit corruption and at-rest bitrot, both in-model. The
	// three result corruptions are three digest-gate strikes — the default
	// quarantine threshold — and the armed scrubber walks the journal under
	// the seeded bitrot read.
	sched := &chaos.Schedule{Seed: 13, Faults: []chaos.Fault{
		{Component: "w0/net", Kind: chaos.NetCorrupt, Class: "result", N: 1, Arg: 3},
		{Component: "w0/net", Kind: chaos.NetCorrupt, Class: "result", N: 2, Arg: 5},
		{Component: "w0/net", Kind: chaos.NetCorrupt, Class: "result", N: 3, Arg: 7},
		{Component: "coord/disk", Kind: chaos.BitrotRead, Class: "read", N: 2, Arg: 17},
	}}
	// An 8-cell sweep guarantees w0 posts at least three results (the three
	// strikes) before the work runs out: each rejection requeues its cell,
	// and an idle w0 always finds pending work in a sweep this wide.
	spec := DefaultSpec()
	var cfgs []server.ConfigSpec
	for _, issue := range []int{2, 4} {
		for _, c := range spec.Configs {
			c.Issue = issue
			cfgs = append(cfgs, c)
		}
	}
	spec.Configs = cfgs
	opts = Options{Spec: spec, Workers: 2, Concurrency: 1, AuditRate: 0.25,
		ScrubInterval: 200 * time.Millisecond, Logf: logf}
	rep, err = Run(opts, sched)
	if err != nil {
		return fmt.Errorf("integrity-smoke: corrupt-transit run: %w", err)
	}
	if rep.Violation != "" {
		return fmt.Errorf("integrity-smoke: transit corruption broke invariant %q: %s", rep.Violation, rep.Detail)
	}
	if rep.IntegrityFailures == 0 {
		return fmt.Errorf("integrity-smoke: no digest-gate rejections recorded for 3 corrupted result posts")
	}
	if rep.WorkersQuarantined == 0 {
		return fmt.Errorf("integrity-smoke: corrupting worker was never quarantined (integrity_failures %d)", rep.IntegrityFailures)
	}
	logf("integrity-smoke: transit corruption: %d rejection(s), %d quarantine(s), results byte-identical to control",
		rep.IntegrityFailures, rep.WorkersQuarantined)
	return nil
}
