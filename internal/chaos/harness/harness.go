// Package harness is the chaos orchestrator: it runs full
// coordinator/worker sweeps in-process under seeded chaos fault schedules
// (package chaos) and checks the fabric's end-to-end invariants against a
// fault-free control of the same sweep. A failing schedule is replayable
// from its repro token ("seed=N", chaos.Schedule.Repro) and shrinkable to
// a 1-minimal fault subset ("seed=N keep=i,j"), the same reducer idiom
// difftest.Reduce applies to MiniC programs.
//
// The invariants, in the order they are checked:
//
//  1. recovery terminates — the sweep settles before the deadline, with at
//     most MaxRestarts coordinator crash-restarts to clear a stall (fault
//     plans are finite, so the adversary always drains);
//  2. no quarantined cells — the simulator is deterministic, so pure
//     durability and delivery faults must never turn into cell failures;
//  3. no corrupted result served — every result post the coordinator
//     acknowledged with 200 (tapped via chaos.Transport.Observe, AFTER
//     transit faults mutate the body) carries a content digest that
//     verifies over its stats: an in-transit corruption (chaos.NetCorrupt,
//     in-model since DESIGN.md §17) must be rejected at ingest, never
//     accepted;
//  4. byte identity — the merged results render byte-identically to the
//     fault-free control (this also subsumes split-brain: two lease
//     incarnations disagreeing about a winner cannot both match one
//     control);
//  5. acked never lost — every result post a worker saw acknowledged with
//     200 is present in the final results with the same stats fingerprint
//     (skipped under MangleWorker: a lying worker's acked results are
//     SUPPOSED to be overturned by audits);
//  6. journal-replay equivalence — re-merging the coordinator's cell
//     journal from disk reproduces exactly the results the live run served;
//  7. audited disagreement converges — at settle every audit whose bytes
//     disagreed with the recorded winner has been resolved by a tie-break
//     (audits_disagreed == audits_resolved), so together with invariant 3
//     the served bytes are always the control bytes.
package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/exp"
	"fgpsim/internal/server"
	"fgpsim/internal/stats"
)

// Options fixes the system-under-test topology. The schedule varies per
// run; the topology must not, or seeds stop being comparable.
type Options struct {
	// Spec is the sweep to run (default: DefaultSpec).
	Spec server.SweepSpec
	// Workers is the fabric size (default 2). Use 1 for bit-exact replay:
	// with a single sequential worker the N-th operation of every fault
	// class is the same operation on every run.
	Workers int
	// Concurrency is each worker's cell parallelism (default 2; use 1 with
	// Workers=1 for bit-exact replay).
	Concurrency int
	// CheckpointEvery is the durable-checkpoint cadence in simulated cycles
	// (default 50_000), which also decides whether snapshot-class net
	// faults have anything to hit.
	CheckpointEvery int64
	// Deadline bounds one whole run (default 120s).
	Deadline time.Duration
	// StallAfter is how long the sweep may sit with no progress before the
	// harness crash-restarts the coordinator (default 5s).
	StallAfter time.Duration
	// MaxRestarts bounds coordinator crash-restarts per run (default 2).
	MaxRestarts int
	// CrashAfterCells, when positive, crash-restarts the coordinator once
	// as soon as that many cells have settled — a process-level fault the
	// Fault vocabulary cannot express, for exercising journal recovery on
	// demand. The restart counts in Report.Restarts but not against
	// MaxRestarts.
	CrashAfterCells int
	// Profile sizes planned schedules (Plan callers only).
	Profile chaos.Profile
	// AuditRate is the coordinator's sampled re-execution audit rate
	// (default 0.25; negative disables — the self-test needs the integrity
	// layer disarmed to seed its deliberate violation).
	AuditRate float64
	// QuarantineStrikes overrides the coordinator's quarantine threshold
	// (0 = server default).
	QuarantineStrikes int
	// ScrubInterval arms the coordinator's background scrubber (0 = off,
	// the default: scrub reads consume disk read-class fault ordinals on a
	// wall-clock timer, which would blur bit-exact replay of read faults).
	ScrubInterval time.Duration
	// OmitDigests makes every worker ship results without content digests,
	// disarming the coordinator's ingest gate. Self-test only.
	OmitDigests bool
	// MangleWorker, when set, is applied to each worker's results before
	// digesting — a simulated lying worker (self-consistent digest, catchable
	// only by re-execution audits). Return the input unchanged for honest
	// workers.
	MangleWorker func(workerID, cellID string, s *stats.Run) *stats.Run
	// ArtifactDir, when set, receives a per-violation directory (named
	// after the repro token) holding the run's journals, snapshots, and a
	// report.json — the bundle CI uploads for offline replay.
	ArtifactDir string
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Spec.Source == "" && len(o.Spec.Benches) == 0 {
		o.Spec = DefaultSpec()
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 50_000
	}
	if o.Deadline <= 0 {
		o.Deadline = 120 * time.Second
	}
	if o.StallAfter <= 0 {
		o.StallAfter = 5 * time.Second
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 2
	}
	if o.AuditRate == 0 {
		o.AuditRate = 0.25
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// DefaultSpec is a small multi-cell sweep: long enough to cross checkpoint
// boundaries, short enough that a several-hundred-schedule CI smoke stays
// in minutes.
func DefaultSpec() server.SweepSpec {
	src := `
int main() {
	int i = 0;
	int acc = 0;
	while (i < 120000) {
		acc = acc + i;
		i = i + 1;
	}
	putc('0' + (acc % 10));
	return 0;
}
`
	var cfgs []server.ConfigSpec
	for _, mem := range []string{"A", "B"} {
		for _, win := range []int{8, 16} {
			cfgs = append(cfgs, server.ConfigSpec{Disc: "dyn4", Issue: 4, Mem: mem, Branch: "single", Window: win})
		}
	}
	// One retry absorbs transient environmental failures (the simulator is
	// deterministic, so a retry can only turn an environmental failure into
	// the same success every other attempt produces).
	return server.SweepSpec{Source: src, In0: "chaos input\n", Configs: cfgs, Retries: 1}
}

// Components enumerates the injectable surfaces of an opts-shaped fabric:
// the coordinator's disk, each worker's disk, and each worker's network
// path. The full chaos.NetKinds set is in play, NetCorrupt included: since
// result digests landed (DESIGN.md §17) payload corruption is inside the
// trust model — the fabric must detect it, strike the sender, and re-serve
// the cell byte-identically.
func Components(workers int) []chaos.Component {
	comps := []chaos.Component{{Name: "coord/disk", Kinds: chaos.DiskKinds()}}
	for i := 0; i < workers; i++ {
		comps = append(comps,
			chaos.Component{Name: fmt.Sprintf("w%d/disk", i), Kinds: chaos.DiskKinds()},
			chaos.Component{Name: fmt.Sprintf("w%d/net", i), Kinds: chaos.NetKinds()},
		)
	}
	return comps
}

// PlanFor expands one seed into a schedule over opts's components.
func PlanFor(opts Options, seed uint64) *chaos.Schedule {
	opts = opts.withDefaults()
	return chaos.Plan(seed, Components(opts.Workers), opts.Profile)
}

// Report is the outcome of one schedule run.
type Report struct {
	Repro    string        `json:"repro"`
	Fired    []chaos.Fired `json:"fired,omitempty"`
	Restarts int           `json:"restarts"`
	// Violation names the first invariant that failed ("" = all held):
	// "recovery-stalled", "cells-quarantined", "corrupt-result-served",
	// "results-differ", "acked-result-lost", "journal-mismatch",
	// "audit-diverged".
	Violation string `json:"violation,omitempty"`
	Detail    string `json:"detail,omitempty"`
	// Results is the canonical results JSON the run settled on (nil when it
	// never settled), the unit replay compares bit-for-bit.
	Results []byte `json:"results,omitempty"`
	// Integrity observability (DESIGN.md §17), sampled at settle. The
	// quarantine count comes from the final coordinator's /metrics, so a
	// crash-restart resets it.
	AuditsRun          int   `json:"audits_run,omitempty"`
	AuditsDisagreed    int   `json:"audits_disagreed,omitempty"`
	AuditsResolved     int   `json:"audits_resolved,omitempty"`
	IntegrityFailures  int   `json:"integrity_failures,omitempty"`
	WorkersQuarantined int64 `json:"workers_quarantined,omitempty"`
}

// control is a cached fault-free reference for one spec: the canonical
// results bytes a single-node server produces.
type control struct {
	once    sync.Once
	results []byte
	err     error
}

var controls sync.Map // canonical spec JSON -> *control

func controlFor(opts Options) ([]byte, error) {
	specJSON, err := json.Marshal(opts.Spec)
	if err != nil {
		return nil, err
	}
	v, _ := controls.LoadOrStore(string(specJSON), &control{})
	c := v.(*control)
	c.once.Do(func() { c.results, c.err = runControl(opts) })
	return c.results, c.err
}

// runControl runs the spec on a plain single-node server — no coordinator,
// no faults — and returns the canonical results bytes.
func runControl(opts Options) ([]byte, error) {
	dir, err := os.MkdirTemp("", "fgpsim-chaos-control-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	s, err := server.New(server.Config{JournalDir: dir, CheckpointEvery: opts.CheckpointEvery})
	if err != nil {
		return nil, err
	}
	s.Start()
	hs, baseURL, ln, err := serveOn(s, "")
	if err != nil {
		return nil, err
	}
	defer func() {
		hs.Close()
		ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	id, err := submitSweep(baseURL, opts.Spec)
	if err != nil {
		return nil, err
	}
	st, err := waitSettled(baseURL, id, opts.Deadline, nil)
	if err != nil {
		return nil, err
	}
	if st.State != "done" || len(st.Failed) > 0 {
		return nil, fmt.Errorf("harness: control sweep state %q (failed %v, err %q)", st.State, st.Failed, st.Error)
	}
	return canonicalResults(st.Results)
}

// serveOn starts an http.Server for s on addr ("" = a fresh loopback
// port). The concrete address comes back so a coordinator restart can
// reclaim it — workers hold the URL across the crash.
func serveOn(s *server.Server, addr string) (*http.Server, string, net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	// Reclaiming the exact port right after a close can transiently race
	// the kernel; retry briefly.
	for try := 0; try < 50; try++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return hs, "http://" + ln.Addr().String(), ln, nil
}

type sweepStatus struct {
	State   string                `json:"state"`
	Done    int                   `json:"done"`
	Total   int                   `json:"total"`
	Failed  []string              `json:"failed"`
	Error   string                `json:"error"`
	Results map[string]*stats.Run `json:"results"`

	AuditsRun         int `json:"audits_run"`
	AuditsDisagreed   int `json:"audits_disagreed"`
	AuditsResolved    int `json:"audits_resolved"`
	IntegrityFailures int `json:"integrity_failures"`
}

// submitSweep POSTs the spec, retrying briefly: an injected coordinator
// disk fault can 500 the accept, and the accept is the harness's control
// plane, not the system under test.
func submitSweep(baseURL string, spec server.SweepSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	var lastErr error
	for try := 0; try < 20; try++ {
		if try > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := http.Post(baseURL+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		var m struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted && derr == nil && m.ID != "" {
			return m.ID, nil
		}
		lastErr = fmt.Errorf("harness: sweep accept = %d %s", resp.StatusCode, m.Error)
	}
	return "", fmt.Errorf("harness: sweep never accepted: %w", lastErr)
}

func getStatus(baseURL, id string) (*sweepStatus, error) {
	resp, err := http.Get(baseURL + "/sweep/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("harness: status = %d", resp.StatusCode)
	}
	var st sweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// waitSettled polls the sweep until a terminal state or the deadline. If
// onStall is non-nil it is invoked (with the current base URL, returning
// the possibly-new one) whenever no progress lands for the stall window —
// the coordinator-restart hook.
func waitSettled(baseURL, id string, deadline time.Duration, onStall func() (string, bool)) (*sweepStatus, error) {
	end := time.Now().Add(deadline)
	var last *sweepStatus
	for time.Now().Before(end) {
		st, err := getStatus(baseURL, id)
		if err == nil {
			last = st
			switch st.State {
			case "done", "failed", "stuck":
				return st, nil
			}
		}
		if onStall != nil {
			if url, restarted := onStall(); restarted {
				baseURL = url
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if last == nil {
		return nil, fmt.Errorf("harness: sweep %s unreachable for the whole deadline", id)
	}
	return last, fmt.Errorf("harness: sweep %s not settled in %s (state %s, %d/%d done)",
		id, deadline, last.State, last.Done, last.Total)
}

// canonicalResults renders a results map to canonical bytes
// (encoding/json sorts map keys) — the byte-identity unit.
func canonicalResults(m map[string]*stats.Run) ([]byte, error) {
	if m == nil {
		m = map[string]*stats.Run{}
	}
	return json.Marshal(m)
}

// cellKeys maps every cell id the spec generates to its result key — the
// bridge between wire-level cell identities (tapped result posts) and the
// results map.
func cellKeys(spec server.SweepSpec) (map[string]string, map[string]exp.Key, error) {
	benches := spec.Benches
	if len(benches) == 0 {
		benches = []string{""}
	}
	ids := make(map[string]string)
	keys := make(map[string]exp.Key)
	for _, b := range benches {
		name := b
		if name == "" {
			name = server.SourceName(spec.Source, spec.In0, spec.In1)
		}
		for _, cs := range spec.Configs {
			cfg, err := cs.Config()
			if err != nil {
				return nil, nil, err
			}
			key := exp.KeyOf(name, cfg)
			id := exp.CellID(key)
			ids[id] = server.KeyString(key)
			keys[id] = key
		}
	}
	return ids, keys, nil
}

// Run executes one schedule against a fresh fabric and checks every
// invariant. The error return is for harness-level breakage (listen
// failures, control failures); invariant violations come back in the
// Report.
func Run(opts Options, sched *chaos.Schedule) (*Report, error) {
	opts = opts.withDefaults()
	controlBytes, err := controlFor(opts)
	if err != nil {
		return nil, fmt.Errorf("harness: control: %w", err)
	}
	idToKey, _, err := cellKeys(opts.Spec)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "fgpsim-chaos-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rep := &Report{Repro: sched.Repro()}
	// Registered after RemoveAll so it runs first: when the run ends in a
	// violation and an artifact dir is armed, the journals are copied out
	// before the scratch tree is torn down. The later-registered worker and
	// coordinator shutdown defers run before this one, so journals are
	// closed by the time they are copied.
	defer func() {
		if opts.ArtifactDir == "" || rep.Violation == "" {
			return
		}
		if aerr := saveArtifacts(opts.ArtifactDir, rep, dir); aerr != nil {
			opts.Logf("harness: saving artifacts: %v", aerr)
		}
	}()

	// One chaos surface per component, shared across coordinator restarts:
	// a fault plan is per-RUN, and a restart must not re-arm spent faults.
	coordDisk := chaos.NewFS(chaos.OS{}, sched, "coord/disk")
	auditRate := opts.AuditRate
	if auditRate < 0 {
		auditRate = 0
	}
	coordCfg := server.Config{
		Coordinator:       true,
		JournalDir:        filepath.Join(dir, "journal"),
		CheckpointEvery:   opts.CheckpointEvery,
		WorkerDeadAfter:   2 * time.Second,
		StealAfter:        time.Second,
		AuditRate:         auditRate,
		QuarantineStrikes: opts.QuarantineStrikes,
		ScrubInterval:     opts.ScrubInterval,
		Disk:              coordDisk,
	}
	coord, err := server.New(coordCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: coordinator: %w", err)
	}
	coord.Start()
	hs, baseURL, ln, err := serveOn(coord, "")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	stopCoord := func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		coord.Drain(ctx)
		cancel()
	}
	defer func() { stopCoord() }()

	// Workers, each with its own chaos disk and chaos transport. The
	// Observe tap records every acknowledged successful result post for the
	// acked-never-lost invariant, and — because it sees the body AFTER
	// transit faults mutate it — checks the corrupt-result-served invariant:
	// a 200 on a result whose digest does not verify over its stats means
	// the ingest gate let corruption through.
	var ackedMu sync.Mutex
	acked := make(map[string]uint64) // cell id -> stats fingerprint
	corruptServed := ""              // first offending detail, "" = none
	var workerFS []*chaos.FS
	var workerTR []*chaos.Transport
	wctx, cancelWorkers := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancelWorkers()
		wg.Wait()
	}()
	for i := 0; i < opts.Workers; i++ {
		wdisk := chaos.NewFS(chaos.OS{}, sched, fmt.Sprintf("w%d/disk", i))
		tr := chaos.NewTransport(nil, sched, fmt.Sprintf("w%d/net", i))
		tr.Observe = func(req *http.Request, body []byte, status int) {
			if status != http.StatusOK || chaos.ClassOf(req.URL.Path) != "result" {
				return
			}
			var res struct {
				Cell   string     `json:"cell"`
				Stats  *stats.Run `json:"stats"`
				Digest string     `json:"digest"`
			}
			if json.Unmarshal(body, &res) != nil || res.Stats == nil {
				return
			}
			ackedMu.Lock()
			acked[res.Cell] = exp.StatsFingerprint(res.Stats)
			if res.Digest != "" && exp.DigestStats(res.Stats) != res.Digest && corruptServed == "" {
				corruptServed = fmt.Sprintf("cell %s: 200 ack on digest %s over stats digesting to %s",
					res.Cell, res.Digest, exp.DigestStats(res.Stats))
			}
			ackedMu.Unlock()
		}
		workerFS = append(workerFS, wdisk)
		workerTR = append(workerTR, tr)
		wopts := server.WorkerOptions{
			Coordinator: baseURL,
			ID:          fmt.Sprintf("w%d", i),
			Heartbeat:   100 * time.Millisecond,
			Concurrency: opts.Concurrency,
			SnapshotDir: filepath.Join(dir, fmt.Sprintf("w%d-snap", i)),
			DrainGrace:  5 * time.Second,
			Client:      &http.Client{Transport: tr, Timeout: 10 * time.Second},
			Disk:        wdisk,
			OmitDigests: opts.OmitDigests,
		}
		if opts.MangleWorker != nil {
			mw, wid := opts.MangleWorker, wopts.ID
			wopts.Mangle = func(cell string, s *stats.Run) *stats.Run { return mw(wid, cell, s) }
		}
		w, werr := server.NewWorker(wopts)
		if werr != nil {
			return nil, fmt.Errorf("harness: worker %d: %w", i, werr)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(wctx)
		}()
	}

	id, err := submitSweep(baseURL, opts.Spec)
	if err != nil {
		return nil, err
	}
	opts.Logf("chaos %s: sweep %s on %s, %d fault(s) planned", rep.Repro, id, addr, len(sched.Active()))

	// Settle watch with crash-restart on stall: if no progress lands for
	// StallAfter, kill the coordinator mid-flight (no drain completes — the
	// journals' fsync-per-append is what recovery leans on) and boot a
	// fresh one on the same address from the journals.
	lastProgress := time.Now()
	lastDone, lastState := -1, ""
	stallRestarts := 0
	crashed := false
	restart := func(why string) bool {
		rep.Restarts++
		opts.Logf("chaos %s: %s at %d done; coordinator restart %d", rep.Repro, why, lastDone, rep.Restarts)
		stopCoord()
		next, nerr := server.New(coordCfg)
		if nerr != nil {
			return false
		}
		next.Start()
		nhs, nurl, _, serr := serveOn(next, addr)
		if serr != nil {
			return false
		}
		coord, hs, baseURL = next, nhs, nurl
		lastProgress = time.Now()
		return true
	}
	onStall := func() (string, bool) {
		if st, err := getStatus(baseURL, id); err == nil {
			if st.Done != lastDone || st.State != lastState {
				lastDone, lastState = st.Done, st.State
				lastProgress = time.Now()
			}
		}
		if opts.CrashAfterCells > 0 && !crashed && lastDone >= opts.CrashAfterCells {
			crashed = true
			return baseURL, restart("crash point reached")
		}
		if time.Since(lastProgress) < opts.StallAfter || stallRestarts >= opts.MaxRestarts {
			return baseURL, false
		}
		stallRestarts++
		return baseURL, restart(fmt.Sprintf("stalled %s", opts.StallAfter))
	}
	st, werr := waitSettled(baseURL, id, opts.Deadline, onStall)

	// Collect fired faults regardless of outcome.
	rep.Fired = append(rep.Fired, coordDisk.Fired()...)
	for i := range workerFS {
		rep.Fired = append(rep.Fired, workerFS[i].Fired()...)
		rep.Fired = append(rep.Fired, workerTR[i].Fired()...)
	}

	// Invariant 1: recovery terminates.
	if werr != nil || st == nil {
		rep.Violation = "recovery-stalled"
		if werr != nil {
			rep.Detail = werr.Error()
		}
		return rep, nil
	}
	// Invariant 2: no quarantined cells.
	if st.State != "done" || len(st.Failed) > 0 {
		rep.Violation = "cells-quarantined"
		rep.Detail = fmt.Sprintf("state %s, failed %v, err %q", st.State, st.Failed, st.Error)
		return rep, nil
	}
	rep.AuditsRun, rep.AuditsDisagreed = st.AuditsRun, st.AuditsDisagreed
	rep.AuditsResolved, rep.IntegrityFailures = st.AuditsResolved, st.IntegrityFailures
	rep.WorkersQuarantined = getMetricInt(baseURL, "workers_quarantined")
	// Invariant 3 (new with DESIGN.md §17): no corrupted result was ever
	// served — every 200-acked result post's digest verified over its stats.
	ackedMu.Lock()
	corrupt := corruptServed
	ackedMu.Unlock()
	if corrupt != "" {
		rep.Violation = "corrupt-result-served"
		rep.Detail = corrupt
		return rep, nil
	}
	rep.Results, err = canonicalResults(st.Results)
	if err != nil {
		return nil, err
	}
	// Invariant 4: byte identity with the fault-free control.
	if string(rep.Results) != string(controlBytes) {
		rep.Violation = "results-differ"
		rep.Detail = fmt.Sprintf("fabric:  %s\ncontrol: %s", rep.Results, controlBytes)
		return rep, nil
	}
	// Invariant 5: every acknowledged result survived the merge. Skipped
	// under MangleWorker: a lying worker's acked results are SUPPOSED to be
	// overturned (their loss from the final results is the audit working).
	if opts.MangleWorker == nil {
		ackedMu.Lock()
		ackedCopy := make(map[string]uint64, len(acked))
		for k, v := range acked {
			ackedCopy[k] = v
		}
		ackedMu.Unlock()
		for cell, fp := range ackedCopy {
			keyStr, ok := idToKey[cell]
			if !ok {
				rep.Violation = "acked-result-lost"
				rep.Detail = fmt.Sprintf("acked cell %s is not a cell of this sweep", cell)
				return rep, nil
			}
			got, ok := st.Results[keyStr]
			if !ok || exp.StatsFingerprint(got) != fp {
				rep.Violation = "acked-result-lost"
				rep.Detail = fmt.Sprintf("cell %s (%s): acked fingerprint %016x missing from final results", cell, keyStr, fp)
				return rep, nil
			}
		}
	}
	// Invariant 6: the on-disk journal re-merges to the served results.
	jpath := filepath.Join(coordCfg.JournalDir, "sweep-"+id+".cells")
	merged, jerr := exp.ReadJournal(jpath)
	if jerr != nil {
		rep.Violation = "journal-mismatch"
		rep.Detail = fmt.Sprintf("cell journal unreadable: %v", jerr)
		return rep, nil
	}
	if len(merged) != len(st.Results) {
		rep.Violation = "journal-mismatch"
		rep.Detail = fmt.Sprintf("journal has %d cells, served results %d", len(merged), len(st.Results))
		return rep, nil
	}
	for k, run := range merged {
		got, ok := st.Results[server.KeyString(k)]
		if !ok || exp.StatsFingerprint(got) != exp.StatsFingerprint(run) {
			rep.Violation = "journal-mismatch"
			rep.Detail = fmt.Sprintf("key %s: journal fingerprint %016x, served %016x",
				server.KeyString(k), exp.StatsFingerprint(run), statsFpOrZero(got))
			return rep, nil
		}
	}
	// Invariant 7 (new with DESIGN.md §17): audited disagreement converges —
	// the sweep cannot settle with a digest dispute still dangling.
	if st.AuditsDisagreed != st.AuditsResolved {
		rep.Violation = "audit-diverged"
		rep.Detail = fmt.Sprintf("audits_disagreed %d != audits_resolved %d at settle",
			st.AuditsDisagreed, st.AuditsResolved)
		return rep, nil
	}
	return rep, nil
}

// getMetricInt samples one integer counter from /metrics, 0 on any error
// (observability, not an invariant).
func getMetricInt(baseURL, name string) int64 {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var m map[string]any
	if json.NewDecoder(resp.Body).Decode(&m) != nil {
		return 0
	}
	v, _ := m[name].(float64)
	return int64(v)
}

func statsFpOrZero(s *stats.Run) uint64 {
	if s == nil {
		return 0
	}
	return exp.StatsFingerprint(s)
}

// Explore plans and runs one schedule per seed, returning every report in
// seed order. It stops early only on harness-level errors, never on
// violations — the caller decides what a violation means.
func Explore(opts Options, seeds []uint64) ([]*Report, error) {
	opts = opts.withDefaults()
	var reps []*Report
	for _, seed := range seeds {
		rep, err := Run(opts, PlanFor(opts, seed))
		if err != nil {
			return reps, err
		}
		reps = append(reps, rep)
		if rep.Violation != "" {
			opts.Logf("chaos seed %d: VIOLATION %s", seed, rep.Violation)
		}
	}
	return reps, nil
}

// Shrink reduces a violating schedule to a 1-minimal active-fault subset:
// dropping any single remaining fault makes the violation vanish. The
// returned report is the shrunk schedule's run (its repro token carries
// the keep mask).
func Shrink(opts Options, sched *chaos.Schedule) (*chaos.Schedule, *Report, error) {
	opts = opts.withDefaults()
	rep, err := Run(opts, sched)
	if err != nil {
		return nil, nil, err
	}
	if rep.Violation == "" {
		return sched, rep, fmt.Errorf("harness: schedule %s does not violate; nothing to shrink", sched.Repro())
	}
	cur := sched.Keep
	if cur == nil {
		cur = make([]int, len(sched.Faults))
		for i := range cur {
			cur[i] = i
		}
	}
	best := rep
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			trial := make([]int, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			s2 := &chaos.Schedule{Seed: sched.Seed, Faults: sched.Faults, Keep: trial}
			rep2, rerr := Run(opts, s2)
			if rerr != nil {
				return nil, nil, rerr
			}
			if rep2.Violation != "" {
				cur, best = trial, rep2
				changed = true
				i--
			}
		}
	}
	shrunk := &chaos.Schedule{Seed: sched.Seed, Faults: sched.Faults, Keep: cur}
	opts.Logf("chaos: shrunk %s -> %s (%s)", sched.Repro(), shrunk.Repro(), best.Violation)
	return shrunk, best, nil
}
