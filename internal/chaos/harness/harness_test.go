package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fgpsim/internal/chaos"
)

// TestInvariantsHoldOverSeeds is the orchestrator's main sweep: planned
// schedules over the tolerated fault model (disk torn writes, ENOSPC,
// failed fsync, rename cuts, bitrot; net drops, delays, dups, truncations,
// partitions) must leave every invariant intact. CI's chaos-smoke job runs
// hundreds of seeds through cmd/chaos; this is the in-tree slice.
func TestInvariantsHoldOverSeeds(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	opts := Options{Workers: 2, Concurrency: 2, StallAfter: 0, Logf: t.Logf}
	reps, err := Explore(opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep.Violation != "" {
			t.Errorf("seed %d (%s): %s\n%s\nfired: %v", seeds[i], rep.Repro, rep.Violation, rep.Detail, rep.Fired)
			continue
		}
		t.Logf("seed %d: ok, %d fault(s) fired, %d restart(s)", seeds[i], len(rep.Fired), rep.Restarts)
	}
}

// TestCoordinatorCrashRecovers drives the process-level fault the Fault
// vocabulary cannot express: the coordinator is killed (no drain) after the
// first cell settles and rebuilt from its journals on the same address.
// Recovery must terminate with full byte identity — the crash is invisible
// in the results.
func TestCoordinatorCrashRecovers(t *testing.T) {
	opts := Options{Workers: 2, Concurrency: 2, CrashAfterCells: 1, Logf: t.Logf}
	rep, err := Run(opts, &chaos.Schedule{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != "" {
		t.Fatalf("crash-restart run: %s\n%s", rep.Violation, rep.Detail)
	}
	if rep.Restarts < 1 {
		t.Fatalf("coordinator never restarted (restarts=%d); the crash hook did not fire", rep.Restarts)
	}
}

// seededViolation is SeededViolation (selftest.go): a hand-pinned schedule
// whose middle fault corrupts a result payload in transit, flanked by
// tolerated noise the shrinker has to strip away.
func seededViolation() *chaos.Schedule { return SeededViolation() }

func firedString(rep *Report) string { return firedFingerprint(rep) }

// TestSeededViolationCaughtReplayedShrunk is the acceptance gate for the
// whole orchestrator: a deliberately seeded invariant violation must be
// (a) caught, (b) replayed bit-identically from its seed — same violation,
// same fired faults, same corrupted results bytes — and (c) shrunk to the
// minimal schedule containing only the corrupting fault.
func TestSeededViolationCaughtReplayedShrunk(t *testing.T) {
	// One worker, one slot: every fault-class counter sees the same
	// operation sequence on every run, which is what makes (b) exact.
	// The integrity layer (DESIGN.md §17) is disarmed — digests omitted,
	// audits off — because an armed fabric rejects the planted NetCorrupt
	// at the digest gate and requeues the cell, leaving nothing for the
	// byte-identity invariant to catch. This check is about the DETECTOR
	// seeing corruption the fabric cannot repair; cmd/chaos
	// -integrity-smoke proves the armed layer separately.
	opts := Options{Workers: 1, Concurrency: 1, Logf: t.Logf, OmitDigests: true, AuditRate: -1}

	// The first run also exercises the CI artifact path: a violating run
	// with ArtifactDir set must leave a report plus the run's journals.
	artDir := t.TempDir()
	optsArt := opts
	optsArt.ArtifactDir = artDir
	rep1, err := Run(optsArt, seededViolation())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Violation != "results-differ" {
		t.Fatalf("seeded corruption: violation %q, want results-differ\n%s", rep1.Violation, rep1.Detail)
	}
	if len(rep1.Results) == 0 {
		t.Fatal("violating run reported no results bytes")
	}
	bundle := filepath.Join(artDir, artifactName(rep1.Repro))
	if _, err := os.Stat(filepath.Join(bundle, "report.json")); err != nil {
		t.Fatalf("violating run left no artifact report: %v", err)
	}
	if _, err := os.Stat(filepath.Join(bundle, "run", "journal")); err != nil {
		t.Fatalf("violating run's journals were not bundled: %v", err)
	}

	rep2, err := Run(opts, seededViolation())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Violation != rep1.Violation {
		t.Fatalf("replay violation %q != original %q", rep2.Violation, rep1.Violation)
	}
	if !bytes.Equal(rep1.Results, rep2.Results) {
		t.Fatalf("replay results not bit-identical\nfirst:  %s\nreplay: %s", rep1.Results, rep2.Results)
	}
	if f1, f2 := firedString(rep1), firedString(rep2); f1 != f2 {
		t.Fatalf("replay fired different faults\nfirst:\n%sreplay:\n%s", f1, f2)
	}

	shrunk, best, err := Shrink(opts, seededViolation())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := shrunk.Repro(), "seed=7 keep=1"; got != want {
		t.Fatalf("shrunk repro %q, want %q (only the NetCorrupt fault)", got, want)
	}
	if best.Violation != "results-differ" {
		t.Fatalf("shrunk schedule violation %q, want results-differ", best.Violation)
	}
	if !bytes.Equal(best.Results, rep1.Results) {
		t.Fatalf("shrunk run's corrupted results differ from the full schedule's:\nfull:   %s\nshrunk: %s", rep1.Results, best.Results)
	}

	// The repro token round-trips: parse it, rebuild the schedule, and the
	// violation reproduces from nothing but the token.
	seed, keep, err := chaos.ParseRepro(shrunk.Repro())
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := &chaos.Schedule{Seed: seed, Faults: seededViolation().Faults, Keep: keep}
	rep3, err := Run(opts, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Violation != "results-differ" || !bytes.Equal(rep3.Results, rep1.Results) {
		t.Fatalf("repro token did not reproduce: violation %q", rep3.Violation)
	}
}
