package harness

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// artifactName maps a repro token to a filesystem-safe directory name:
// "seed=7 keep=1,2" -> "seed-7_keep-1.2".
func artifactName(repro string) string {
	return strings.NewReplacer(" ", "_", "=", "-", ",", ".").Replace(repro)
}

// saveArtifacts copies a violating run's scratch tree (coordinator
// journals, worker snapshot dirs) plus a report.json into
// artifactDir/<repro>/, the bundle CI uploads so a failure seen once in a
// smoke run can be replayed and dissected offline.
func saveArtifacts(artifactDir string, rep *Report, runDir string) error {
	dst := filepath.Join(artifactDir, artifactName(rep.Repro))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dst, "report.json"), append(data, '\n'), 0o644); err != nil {
		return err
	}
	return copyTree(runDir, filepath.Join(dst, "run"))
}

// copyTree recursively copies src into dst (regular files only — the
// scratch tree holds nothing else).
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		if !d.Type().IsRegular() {
			return fmt.Errorf("copyTree: %s: not a regular file", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}
