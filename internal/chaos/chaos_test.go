package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func testComponents() []Component {
	return []Component{
		{Name: "coord-disk", Kinds: DiskKinds()},
		{Name: "w1-disk", Kinds: DiskKinds()},
		{Name: "w1-net", Kinds: NetKinds()},
	}
}

func TestPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		a := Plan(seed, testComponents(), Profile{})
		b := Plan(seed, testComponents(), Profile{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ:\n%v\n%v", seed, a.Faults, b.Faults)
		}
		if len(a.Faults) == 0 || len(a.Faults) > 5 {
			t.Fatalf("seed %d: plan size %d outside 1..5", seed, len(a.Faults))
		}
		for _, f := range a.Faults {
			if f.Class == "" || f.N < 1 {
				t.Fatalf("seed %d: malformed fault %+v", seed, f)
			}
			if f.Kind.DiskKind() != strings.HasSuffix(f.Component, "-disk") {
				t.Fatalf("seed %d: kind %v drawn for component %s", seed, f.Kind, f.Component)
			}
		}
	}
}

func TestPlanCoversAllKinds(t *testing.T) {
	seen := map[Kind]bool{}
	for seed := uint64(0); seed < 500; seed++ {
		for _, f := range Plan(seed, testComponents(), Profile{}).Faults {
			seen[f.Kind] = true
		}
	}
	for _, k := range append(DiskKinds(), NetKinds()...) {
		if !seen[k] {
			t.Errorf("kind %v never drawn in 500 seeds", k)
		}
	}
}

func TestScheduleKeepAndRepro(t *testing.T) {
	s := Plan(42, testComponents(), Profile{MaxFaults: 5})
	if got := s.Repro(); got != "seed=42" {
		t.Fatalf("full-plan repro = %q", got)
	}
	s.Keep = []int{0}
	if len(s.Active()) != 1 || !reflect.DeepEqual(s.Active()[0], s.Faults[0]) {
		t.Fatalf("Keep=[0] active = %v", s.Active())
	}
	tok := s.Repro()
	seed, keep, err := ParseRepro(tok)
	if err != nil || seed != 42 || !reflect.DeepEqual(keep, []int{0}) {
		t.Fatalf("ParseRepro(%q) = %d %v %v", tok, seed, keep, err)
	}
	if _, _, err := ParseRepro("keep=1"); err == nil {
		t.Fatal("ParseRepro without seed should fail")
	}
	if _, _, err := ParseRepro("seed=zzz"); err == nil {
		t.Fatal("ParseRepro with bad seed should fail")
	}
	if seed, keep, err := ParseRepro("seed=7"); err != nil || seed != 7 || keep != nil {
		t.Fatalf("ParseRepro(seed=7) = %d %v %v", seed, keep, err)
	}
}

// manual builds a schedule by hand so FS/Transport tests can pin exact
// fault sites.
func manual(faults ...Fault) *Schedule { return &Schedule{Seed: 1, Faults: faults} }

func TestFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	sched := manual(Fault{Component: "d", Kind: TornWrite, Class: "write", N: 2, Arg: 3})
	fsys := NewFS(OS{}, sched, "d")
	f, err := fsys.OpenFile(filepath.Join(dir, "j"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first\n")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.Write([]byte("second\n"))
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Kind != TornWrite {
		t.Fatalf("write 2 = %d, %v; want injected torn-write", n, err)
	}
	if n != 3 {
		t.Fatalf("torn prefix = %d bytes, want Arg%%len = 3", n)
	}
	f.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "j"))
	if string(data) != "first\nsec" {
		t.Fatalf("on disk: %q", data)
	}
	if fsys.Pending() != 0 {
		t.Fatalf("pending = %d after fire", fsys.Pending())
	}
	if len(fsys.Fired()) != 1 {
		t.Fatalf("fired = %v", fsys.Fired())
	}
}

func TestFSSyncFailAndNoSpace(t *testing.T) {
	dir := t.TempDir()
	sched := manual(
		Fault{Component: "d", Kind: SyncFail, Class: "sync", N: 1},
		Fault{Component: "d", Kind: WriteNoSpace, Class: "write", N: 2},
	)
	fsys := NewFS(OS{}, sched, "d")
	f, _ := fsys.OpenFile(filepath.Join(dir, "j"), os.O_CREATE|os.O_WRONLY, 0o644)
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	var inj *InjectedError
	if err := f.Sync(); !errors.As(err, &inj) || inj.Kind != SyncFail {
		t.Fatalf("sync 1 = %v; want injected sync-fail", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2 (fault drained): %v", err)
	}
	if n, err := f.Write([]byte("b")); n != 0 || !errors.As(err, &inj) || inj.Kind != WriteNoSpace {
		t.Fatalf("write 2 = %d, %v; want injected enospc", n, err)
	}
	f.Close()
}

func TestFSRenameCutAndBitrot(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	sched := manual(
		Fault{Component: "d", Kind: RenameCut, Class: "rename", N: 1},
		Fault{Component: "d", Kind: BitrotRead, Class: "read", N: 2, Arg: 13},
	)
	fsys := NewFS(OS{}, sched, "d")
	if err := fsys.WriteFile(a, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	var inj *InjectedError
	if err := fsys.Rename(a, b); !errors.As(err, &inj) || inj.Kind != RenameCut {
		t.Fatalf("rename = %v; want injected rename-cut", err)
	}
	if _, err := os.Stat(b); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rename-cut must leave target untouched")
	}
	if err := fsys.Rename(a, b); err != nil {
		t.Fatalf("rename 2 (drained): %v", err)
	}
	clean, err := fsys.ReadFile(b)
	if err != nil || string(clean) != "payload" {
		t.Fatalf("read 1 = %q, %v", clean, err)
	}
	rotted, err := fsys.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(rotted) == "payload" {
		t.Fatal("bitrot read returned clean data")
	}
	// Exactly one bit differs, at Arg % (len*8).
	diff := 0
	for i := range rotted {
		for bit := 0; bit < 8; bit++ {
			if (rotted[i]^clean[i])&(1<<bit) != 0 {
				diff++
				if wantBit := int(13 % uint64(len(clean)*8)); i*8+bit != wantBit {
					t.Fatalf("flipped bit %d, want %d", i*8+bit, wantBit)
				}
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want 1", diff)
	}
	// On-disk file is untouched: bitrot is a read-path fault.
	onDisk, _ := os.ReadFile(b)
	if string(onDisk) != "payload" {
		t.Fatal("bitrot must not modify the file")
	}
}

func TestFSWriteFileFaults(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	sched := manual(
		Fault{Component: "d", Kind: TornWrite, Class: "write", N: 1, Arg: 2},
		Fault{Component: "d", Kind: WriteNoSpace, Class: "write", N: 2},
	)
	fsys := NewFS(OS{}, sched, "d")
	var inj *InjectedError
	if err := fsys.WriteFile(p, []byte("hello"), 0o644); !errors.As(err, &inj) || inj.Kind != TornWrite {
		t.Fatalf("WriteFile 1 = %v", err)
	}
	if data, _ := os.ReadFile(p); string(data) != "he" {
		t.Fatalf("torn WriteFile left %q", data)
	}
	if err := fsys.WriteFile(p, []byte("hello"), 0o644); !errors.As(err, &inj) || inj.Kind != WriteNoSpace {
		t.Fatalf("WriteFile 2 = %v", err)
	}
	if err := fsys.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatalf("WriteFile 3 (drained): %v", err)
	}
}

func TestOSSyncDir(t *testing.T) {
	if err := (OS{}).SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func newEchoServer(t *testing.T) (*httptest.Server, *atomic.Int64, *[]string) {
	t.Helper()
	var hits atomic.Int64
	bodies := &[]string{}
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		hits.Add(1)
		mu.Lock()
		*bodies = append(*bodies, string(body))
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits, bodies
}

func post(t *testing.T, c *http.Client, url, body string) (*http.Response, error) {
	t.Helper()
	return c.Post(url, "application/json", strings.NewReader(body))
}

func TestTransportDropAndClassCounting(t *testing.T) {
	ts, hits, _ := newEchoServer(t)
	sched := manual(Fault{Component: "n", Kind: NetDrop, Class: "result", N: 2})
	tr := NewTransport(nil, sched, "n")
	c := &http.Client{Transport: tr}

	// Polls don't advance the result counter.
	if _, err := post(t, c, ts.URL+"/fabric/poll", "{}"); err != nil {
		t.Fatal(err)
	}
	if _, err := post(t, c, ts.URL+"/fabric/result", "{}"); err != nil {
		t.Fatal(err)
	}
	_, err := post(t, c, ts.URL+"/fabric/result", "{}")
	if err == nil || !strings.Contains(err.Error(), "net-drop") {
		t.Fatalf("result 2 = %v; want injected net-drop", err)
	}
	if _, err := post(t, c, ts.URL+"/fabric/result", "{}"); err != nil {
		t.Fatalf("result 3 (drained): %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server hits = %d, want 3 (drop never sent)", hits.Load())
	}
}

func TestTransportDupAndTruncate(t *testing.T) {
	ts, hits, bodies := newEchoServer(t)
	sched := manual(
		Fault{Component: "n", Kind: NetDup, Class: "result", N: 1},
		Fault{Component: "n", Kind: NetTruncate, Class: "result", N: 2, Arg: 2},
	)
	tr := NewTransport(nil, sched, "n")
	c := &http.Client{Transport: tr}

	if _, err := post(t, c, ts.URL+"/fabric/result", `{"a":1}`); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("dup delivered %d times, want 2", hits.Load())
	}
	for _, b := range *bodies {
		if b != `{"a":1}` {
			t.Fatalf("dup body = %q", b)
		}
	}
	_, err := post(t, c, ts.URL+"/fabric/result", `{"a":2}`)
	if err == nil || !strings.Contains(err.Error(), "net-truncate") {
		t.Fatalf("truncate = %v", err)
	}
	// The torn request must not have been recorded as a full valid body.
	for _, b := range *bodies {
		if b == `{"a":2}` {
			t.Fatal("truncated request arrived intact")
		}
	}
}

func TestTransportPartitionWindow(t *testing.T) {
	ts, hits, _ := newEchoServer(t)
	sched := manual(Fault{Component: "n", Kind: NetPartition, Class: "poll", N: 1, Arg: 1})
	tr := NewTransport(nil, sched, "n")
	c := &http.Client{Transport: tr}

	// Arg=1 → window swallows the trigger plus 1+1%4... Arg%4=1 → 2 more.
	want := 1 + 1 + int(uint64(1)%4)
	fails := 0
	for i := 0; i < want+3; i++ {
		if _, err := post(t, c, ts.URL+"/fabric/poll", "{}"); err != nil {
			fails++
		}
	}
	if fails != want {
		t.Fatalf("partition swallowed %d requests, want %d", fails, want)
	}
	if hits.Load() != int64(3) {
		t.Fatalf("server hits = %d, want 3", hits.Load())
	}
}

func TestTransportCorruptAndObserver(t *testing.T) {
	ts, _, bodies := newEchoServer(t)
	sched := manual(Fault{Component: "n", Kind: NetCorrupt, Class: "result", N: 1, Arg: 5})
	tr := NewTransport(nil, sched, "n")
	var observed []string
	var statuses []int
	tr.Observe = func(req *http.Request, body []byte, status int) {
		observed = append(observed, string(body))
		statuses = append(statuses, status)
	}
	c := &http.Client{Transport: tr}

	orig := `{"cell":"x","stats":{"cycles":1234}}`
	if _, err := post(t, c, ts.URL+"/fabric/result", orig); err != nil {
		t.Fatal(err)
	}
	if len(*bodies) != 1 || (*bodies)[0] == orig {
		t.Fatalf("corrupt body not mutated: %v", *bodies)
	}
	// The mutation is a single digit after "stats", still valid JSON shape.
	got := (*bodies)[0]
	if len(got) != len(orig) {
		t.Fatalf("corrupt changed length: %q", got)
	}
	diffs := 0
	for i := range got {
		if got[i] != orig[i] {
			diffs++
			if got[i] < '0' || got[i] > '9' || orig[i] < '0' || orig[i] > '9' {
				t.Fatalf("corrupt flipped non-digit at %d: %q -> %q", i, orig[i], got[i])
			}
			if i <= strings.Index(orig, `"stats"`) {
				t.Fatalf("corrupt hit byte %d before the stats key", i)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("corrupt changed %d bytes, want 1", diffs)
	}
	// Observer saw the delivered (corrupted) body and the 200 ack.
	if len(observed) != 1 || observed[0] != got || statuses[0] != http.StatusOK {
		t.Fatalf("observer = %v %v", observed, statuses)
	}
}

func TestTransportDelay(t *testing.T) {
	ts, hits, _ := newEchoServer(t)
	sched := manual(Fault{Component: "n", Kind: NetDelay, Class: "heartbeat", N: 1, Arg: 1})
	tr := NewTransport(nil, sched, "n")
	c := &http.Client{Transport: tr}
	if _, err := post(t, c, ts.URL+"/fabric/heartbeat", "{}"); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 {
		t.Fatal("delayed request must still arrive")
	}
}

func TestInjectedCounterAdvances(t *testing.T) {
	before := Injected()
	dir := t.TempDir()
	fsys := NewFS(OS{}, manual(Fault{Component: "d", Kind: WriteNoSpace, Class: "write", N: 1}), "d")
	_ = fsys.WriteFile(filepath.Join(dir, "x"), []byte("x"), 0o644)
	if Injected() != before+1 {
		t.Fatalf("Injected() = %d, want %d", Injected(), before+1)
	}
}

func TestMixDistinctLabels(t *testing.T) {
	if Mix(1, "a") == Mix(1, "b") {
		t.Fatal("Mix collision across labels")
	}
	if Mix(1, "a") != Mix(1, "a") {
		t.Fatal("Mix not deterministic")
	}
}
