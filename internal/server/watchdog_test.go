package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestWatchdogKillsStalledRun(t *testing.T) {
	wd := newWatchdog(5*time.Millisecond, 20*time.Millisecond)
	wd.start()
	defer wd.shutdown()

	ctx, cancel := context.WithCancelCause(context.Background())
	var beat atomic.Int64 // never advances
	unwatch := wd.watch("stuck-run", &beat, cancel)
	defer unwatch()

	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never killed a silent run")
	}
	var stuck *StuckRunError
	if cause := context.Cause(ctx); !errors.As(cause, &stuck) {
		t.Fatalf("cause = %v, want *StuckRunError", cause)
	} else if stuck.ID != "stuck-run" {
		t.Errorf("StuckRunError.ID = %q", stuck.ID)
	}
	if wd.kills.Load() != 1 {
		t.Errorf("kills = %d, want 1", wd.kills.Load())
	}
}

func TestWatchdogSparesBeatingRun(t *testing.T) {
	wd := newWatchdog(5*time.Millisecond, 25*time.Millisecond)
	wd.start()
	defer wd.shutdown()

	ctx, cancel := context.WithCancelCause(context.Background())
	var beat atomic.Int64
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				beat.Add(1)
			}
		}
	}()
	unwatch := wd.watch("live-run", &beat, cancel)

	time.Sleep(150 * time.Millisecond)
	if ctx.Err() != nil {
		t.Fatalf("watchdog killed a run that was making progress: %v", context.Cause(ctx))
	}
	close(stop)
	unwatch()
	cancel(nil)
}

func TestWatchdogUnwatchStopsTracking(t *testing.T) {
	wd := newWatchdog(5*time.Millisecond, 15*time.Millisecond)
	wd.start()
	defer wd.shutdown()

	ctx, cancel := context.WithCancelCause(context.Background())
	var beat atomic.Int64
	unwatch := wd.watch("finished-run", &beat, cancel)
	unwatch() // run completed before any stall verdict

	time.Sleep(100 * time.Millisecond)
	if ctx.Err() != nil {
		t.Fatalf("watchdog killed a deregistered run: %v", context.Cause(ctx))
	}
	cancel(nil)
}
