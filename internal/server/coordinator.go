package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/exp"
	"fgpsim/internal/snapshot"
	"fgpsim/internal/stats"
)

// coordinator is the fabric's scheduling brain, attached to a Server
// started with Config.Coordinator. It owns the authoritative cell state of
// every accepted sweep: which cells are pending (and which worker's shard
// they belong to, via the consistent-hash ring over image-cache keys),
// which are in flight under which lease, and which are settled with what
// winning record. One mutex guards all of it; the fsync'd journals (cell
// results, assignments) are appended outside the lock, in whatever order
// the handlers race — the deterministic (attempt, fingerprint) merge makes
// file order immaterial.
type coordinator struct {
	s       *Server
	wd      *watchdog // worker-liveness watchdog (beats = authenticated requests)
	snapDir string    // shipped-snapshot store, keyed by cell id

	mu       sync.Mutex
	workers  map[string]*workerEnt
	leaseSeq uint64
	ring     *exp.Ring
	jobs     map[string]*fabricJob
	jobOrder []string
}

type cellState int

const (
	cellPending cellState = iota
	cellInflight
	cellDone
	cellFailed
)

// auditState tracks a done cell's re-execution audit (DESIGN.md §17).
// The values are ordered so that decrementing an inflight state reverts it
// to its pending form — the requeue path when an auditor dies, is
// quarantined, or delivers a transit-corrupted result.
type auditState int

const (
	auditNone     auditState = iota
	auditPending             // sampled; waiting for an eligible worker to poll
	auditInflight            // assigned to auditWorker
	tiebreakPending
	tiebreakInflight
	auditDone
)

// fabricCell is one grid cell's authoritative state.
type fabricCell struct {
	id    string // exp.CellID — the wire identity
	bench string // "" = the sweep's Source program
	spec  ConfigSpec
	key   exp.Key
	shard uint64 // exp.ShardKey — image-cache affinity on the ring

	state     cellState
	attempt   int // assignment high-water mark
	assignees []cellAssignee

	// Winning record, mirrored from the journal's dedup order so live
	// arrivals and post-restart replays settle identically. winWorker and
	// winDigest feed the audit comparison; both are empty for cells
	// restored from a journal replay (those are never audited).
	winAttempt int
	winFp      uint64
	winWorker  string
	winDigest  string
	errText    string

	// Re-execution audit state. auditExcl lists workers that may not run
	// the (next) audit: the winner and any auditor whose bytes already
	// disagreed — anti-affinity is the whole point of re-execution.
	audit        auditState
	auditWorker  string
	auditLease   uint64
	auditAttempt int
	auditExcl    []string

	// Candidate record from a disagreeing audit, held until a tie-break
	// picks between it and the current winner.
	candWorker string
	candFp     uint64
	candDigest string
	candStats  *stats.Run
}

type cellAssignee struct {
	worker  string
	lease   uint64
	attempt int
	at      time.Time
}

// fabricJob is one sweep being executed by the fabric. It wraps the
// Server's ordinary job (which renders /sweep/{id} exactly as a
// single-node run would — part of the byte-identity story).
type fabricJob struct {
	j    *job
	spec SweepSpec

	// jmu guards the journal pointers (not the appends themselves — those
	// serialize on each Journal's own mutex). It exists for the poison
	// repair path: a failed fsync permanently poisons a journal, and the
	// handler that hits it swaps a freshly opened journal in under jmu.
	jmu           sync.Mutex
	jclosed       bool         // set by closeJournals; stops post-finish repairs
	cellJournal   *exp.Journal // results, exp.AppendCell records
	assignJournal *exp.Journal // assignRecord lines

	cells map[string]*fabricCell
	order []string // cell ids in grid order (prepared outer, configs inner)

	pendingN int
	doneN    int
	failedN  int
	finished bool

	// Audit accounting. auditsPending holds the sweep open (settledLocked)
	// until every sampled audit reaches a verdict; the others mirror into
	// the job's status under j.mu (syncIntegrityLocked).
	auditsPending      int
	auditsRun          int
	auditsDisagreed    int
	auditsResolved     int
	integrityFailuresN int
}

func newCoordinator(s *Server) (*coordinator, error) {
	dir := ""
	if s.cfg.JournalDir != "" {
		dir = filepath.Join(s.cfg.JournalDir, "fabric-snapshots")
	} else {
		var err error
		dir, err = os.MkdirTemp("", "fgpsim-fabric-")
		if err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	interval := s.cfg.WorkerDeadAfter / 4
	return &coordinator{
		s:       s,
		wd:      newWatchdog(interval, s.cfg.WorkerDeadAfter),
		snapDir: dir,
		workers: make(map[string]*workerEnt),
		ring:    exp.NewRing(),
		jobs:    make(map[string]*fabricJob),
	}, nil
}

func (c *coordinator) routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /fabric/register", c.handleRegister)
	mux.HandleFunc("POST /fabric/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fabric/poll", c.handlePoll)
	mux.HandleFunc("POST /fabric/result", c.handleResult)
	mux.HandleFunc("POST /fabric/deregister", c.handleDeregister)
	mux.HandleFunc("PUT /fabric/snapshot/{cell}", c.handleSnapshotPut)
}

func (c *coordinator) assignJournalPath(id string) string {
	if c.s.cfg.JournalDir == "" {
		return ""
	}
	return filepath.Join(c.s.cfg.JournalDir, "sweep-"+id+".assign")
}

// start takes ownership of an accepted sweep: enumerate its cells in grid
// order, replay any prior cell/assignment journals (the recovered case —
// a coordinator crash or drain with the sweep unfinished), and queue the
// rest for the workers. recovered distinguishes a restart replay from a
// fresh accept only for metrics; the machinery is identical because an
// empty journal replays to nothing.
func (c *coordinator) start(j *job, recovered bool) error {
	fj := &fabricJob{
		j:     j,
		spec:  j.Spec,
		cells: make(map[string]*fabricCell),
	}
	benches := j.Spec.Benches
	if len(benches) == 0 {
		benches = []string{""}
	}
	for _, b := range benches {
		name := b
		if name == "" {
			name = sourceName(j.Spec.Source, j.Spec.In0, j.Spec.In1)
		}
		for _, cs := range j.Spec.Configs {
			cfg, err := cs.Config()
			if err != nil {
				return err // unreachable: validated at accept
			}
			key := exp.KeyOf(name, cfg)
			cell := &fabricCell{
				id:    exp.CellID(key),
				bench: b,
				spec:  cs,
				key:   key,
				shard: exp.ShardKey(name, cfg),
			}
			fj.cells[cell.id] = cell
			fj.order = append(fj.order, cell.id)
		}
	}

	disk := c.s.cfg.disk()
	cellPath := c.s.cellJournalPath(j.ID)
	if cellPath != "" {
		// Strict digest verification on replay: a bitrotted or torn record
		// is rejected (counted, logged) and its cell simply requeues —
		// corruption on disk never becomes a served result.
		prior, err := exp.MergeJournalRecordsVerifiedOn(disk, func(ie *exp.IntegrityError) {
			c.s.met.integrityFailures.Add(1)
			fmt.Fprintf(os.Stderr, "server: fabric journal: %v\n", ie)
		}, cellPath)
		if err != nil {
			return fmt.Errorf("server: fabric journal %s: %w", cellPath, err)
		}
		for _, cid := range fj.order {
			cell := fj.cells[cid]
			if rec, ok := prior[cell.key]; ok {
				cell.state = cellDone
				cell.winAttempt, cell.winFp = rec.Attempt, rec.Fp
				fj.doneN++
				j.mu.Lock()
				j.results[keyString(cell.key)] = rec.Stats
				j.digests[keyString(cell.key)] = exp.DigestStats(rec.Stats)
				j.mu.Unlock()
				c.s.met.cellsRestored.Add(1)
			}
		}
		fj.cellJournal, err = exp.OpenJournalOn(disk, cellPath)
		if err != nil {
			return fmt.Errorf("server: fabric journal %s: %w", cellPath, err)
		}
	}
	if ap := c.assignJournalPath(j.ID); ap != "" {
		// Restore each cell's attempt high-water mark so post-restart
		// assignments supersede pre-restart ones in the merge order.
		exp.ReplayJournalOn(disk, ap, func(line []byte) error {
			var rec assignRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return err
			}
			for _, a := range rec.Cells {
				if cell := fj.cells[a.ID]; cell != nil && a.Attempt > cell.attempt {
					cell.attempt = a.Attempt
				}
			}
			return nil
		})
		var err error
		fj.assignJournal, err = exp.OpenJournalOn(disk, ap)
		if err != nil {
			return fmt.Errorf("server: assignment journal %s: %w", ap, err)
		}
	}

	for _, cid := range fj.order {
		if fj.cells[cid].state == cellPending {
			fj.pendingN++
		}
	}
	j.setState(jobRunning)
	j.setProgress(fj.doneN, len(fj.order))

	c.mu.Lock()
	c.jobs[j.ID] = fj
	c.jobOrder = append(c.jobOrder, j.ID)
	finished := fj.settledLocked()
	c.mu.Unlock()
	if finished {
		// Every cell was already journaled (crash after the last result,
		// before the done record).
		c.finishJob(fj)
	}
	return nil
}

// settledLocked reports the sweep ready to finish: every cell settled and
// every sampled audit resolved. Pending audits are in-memory only — a
// coordinator crash forgets them and the restarted sweep finishes on its
// journaled results, which is safe because audits never gate correctness,
// only detection.
func (fj *fabricJob) settledLocked() bool {
	return !fj.finished && fj.doneN+fj.failedN == len(fj.order) && fj.auditsPending == 0
}

// handlePoll hands a worker up to Max cells: its own shard first, then
// anything pending (counted as stolen), then — when nothing is pending —
// a duplicate assignment of the oldest straggler (stealing.go).
func (c *coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req pollRequest
	if err := c.s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}
	now := time.Now()
	c.mu.Lock()
	ent := c.workers[req.Worker]
	if ent == nil || ent.lease != req.Lease {
		c.mu.Unlock()
		writeJSON(w, http.StatusGone, map[string]any{"error": "stale lease; re-register"})
		return
	}
	ent.beat.Add(1)
	var fj *fabricJob
	var picked []pickedCell
	for _, id := range c.jobOrder {
		job := c.jobs[id]
		if job.finished {
			continue
		}
		if picked = c.pickLocked(job, req.Worker, req.Lease, max, now); len(picked) > 0 {
			fj = job
			break
		}
	}
	resp := pollResponse{WaitMS: 200}
	rec := assignRecord{Op: "assign", Worker: req.Worker}
	if fj != nil {
		resp = pollResponse{
			SweepID:         fj.j.ID,
			Source:          fj.spec.Source,
			In0:             fj.spec.In0,
			In1:             fj.spec.In1,
			Retries:         fj.spec.Retries,
			Timeout:         fj.spec.Timeout,
			CheckpointEvery: c.s.cfg.CheckpointEvery,
		}
		for _, p := range picked {
			resp.Cells = append(resp.Cells, cellAssignment{
				Cell:    p.cell.id,
				Bench:   p.cell.bench,
				Config:  p.cell.spec,
				Attempt: p.cell.attempt,
				Audit:   p.audit,
			})
			rec.Cells = append(rec.Cells, assignCell{ID: p.cell.id, Attempt: p.cell.attempt})
		}
	}
	c.mu.Unlock()
	if fj == nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Durable before visible: the assignment journal line lands (fsync'd)
	// before the worker can possibly produce a result under it.
	disk := c.s.cfg.disk()
	fj.appendRepairing(disk, &fj.assignJournal, func(j *exp.Journal) error {
		return j.Append(rec)
	})
	// Attach shipped snapshots so a requeued cell resumes mid-run. Disk IO
	// deliberately happens outside the coordinator lock. Audits never get a
	// snapshot: re-execution must be independent of the bytes it audits.
	for i := range resp.Cells {
		if resp.Cells[i].Audit {
			continue
		}
		path := filepath.Join(c.snapDir, resp.Cells[i].Cell+".snap")
		if snapshot.ExistsOn(disk, path) {
			if data, _, err := snapshot.LoadShippableOn(disk, path); err == nil {
				resp.Cells[i].Snapshot = data
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResult settles one cell. The journal append happens BEFORE the
// in-memory settle and before the 200: a result the worker saw
// acknowledged is durable, and a coordinator crash between the two
// replays the journal to the same winner the live path would have picked.
// Torn bodies (a connection cut mid-POST) fail JSON decoding and change
// nothing; the worker retries the POST whole.
func (c *coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if err := c.s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if (req.Stats == nil) == (req.Err == "") {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "exactly one of stats or err required"})
		return
	}
	// Digest gate: recompute the content digest over the stats as decoded
	// and compare against the one the worker computed at run time. A
	// mismatch means the payload changed between the worker's engine and
	// this handler — corruption in flight or at source — so the record is
	// rejected before it can touch the journal, the producing assignment is
	// dropped (requeueing the cell), and the sender takes a strike. An
	// empty digest is a legacy/disarmed worker: trusted as before.
	if req.Stats != nil && req.Digest != "" && exp.DigestStats(req.Stats) != req.Digest {
		c.rejectCorrupt(&req)
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "integrity: result digest mismatch"})
		return
	}
	c.mu.Lock()
	// Results are accepted from any lease — even a superseded or
	// presumed-dead worker computed the right answer — but only a live
	// lease's beat counter advances.
	if ent := c.workers[req.Worker]; ent != nil && ent.lease == req.Lease {
		ent.beat.Add(1)
	}
	fj := c.jobs[req.SweepID]
	var cell *fabricCell
	finished := false
	if fj != nil {
		cell = fj.cells[req.Cell]
		finished = fj.finished
	}
	c.mu.Unlock()
	if cell == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown sweep or cell"})
		return
	}
	if finished {
		// The sweep settled while this delivery limped in — a straggler
		// duplicate of work that already completed elsewhere. Determinism
		// makes it byte-identical to the recorded winner; acknowledge it so
		// the worker stops retrying, and drop it.
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "late": true})
		return
	}
	if req.Audit {
		// An audit re-execution is a verdict, not a settlement: it is never
		// journaled (unless it wins a tie-break) and never changes doneN.
		c.handleAuditResult(w, fj, cell, &req)
		return
	}
	if req.Stats != nil {
		if err := fj.appendRepairing(c.s.cfg.disk(), &fj.cellJournal, func(j *exp.Journal) error {
			return j.AppendCell(cell.key, req.Stats, req.Attempt)
		}); err != nil {
			// An append can race the job finishing (the journal closes with
			// it); that is the same late-straggler case, not a server error.
			c.mu.Lock()
			finished = fj.finished
			c.mu.Unlock()
			if finished {
				writeJSON(w, http.StatusOK, map[string]any{"ok": true, "late": true})
				return
			}
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": fmt.Sprintf("journal: %v", err)})
			return
		}
	}
	c.mu.Lock()
	c.settleLocked(fj, cell, &req)
	finished = fj.settledLocked()
	if finished {
		fj.finished = true
	}
	c.mu.Unlock()
	if finished {
		c.finishJob(fj)
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// settleLocked folds one delivered result into the cell under the same
// deterministic order the journal merge uses (exp.Supersedes), so
// duplicate deliveries, late deliveries after a requeue settled the cell
// elsewhere, and replayed journals all converge on the same winner.
// Requires c.mu.
func (c *coordinator) settleLocked(fj *fabricJob, cell *fabricCell, req *resultRequest) {
	// Drop the assignment that produced this result (best effort: it may
	// already be gone if the worker was declared dead first).
	n := cell.assignees[:0]
	for _, a := range cell.assignees {
		if !(a.worker == req.Worker && a.attempt == req.Attempt) {
			n = append(n, a)
		}
	}
	cell.assignees = n

	if req.Stats != nil {
		fp := exp.StatsFingerprint(req.Stats)
		wasFailed := false
		switch cell.state {
		case cellDone:
			if !exp.Supersedes(cell.winAttempt, cell.winFp, req.Attempt, fp) {
				return
			}
		case cellFailed:
			// A success beats a quarantined failure regardless of stamps —
			// the failure was environmental (the deterministic simulator
			// cannot both fail and succeed on the same cell).
			fj.failedN--
			cell.errText = ""
			wasFailed = true
		case cellPending:
			fj.pendingN--
		}
		if cell.state != cellDone {
			fj.doneN++
			c.s.met.cellsDone.Add(1)
		}
		cell.state = cellDone
		cell.winAttempt, cell.winFp = req.Attempt, fp
		cell.winWorker = req.Worker
		cell.winDigest = exp.DigestStats(req.Stats)
		if wasFailed {
			fj.syncFailedLocked()
		}
		fj.j.mu.Lock()
		fj.j.results[keyString(cell.key)] = req.Stats
		fj.j.digests[keyString(cell.key)] = cell.winDigest
		fj.j.done = fj.doneN
		fj.j.mu.Unlock()
		c.maybeAuditLocked(fj, cell)
		return
	}
	// Failure: settles the cell only if nothing better has. First failure
	// wins among failures; a duplicate assignment may still land a success
	// later and flip it above.
	if cell.state == cellDone || cell.state == cellFailed {
		return
	}
	if cell.state == cellPending {
		fj.pendingN--
	}
	cell.state = cellFailed
	cell.errText = req.Err
	fj.failedN++
	c.s.met.cellsFailed.Add(1)
	fj.syncFailedLocked()
}

// syncFailedLocked rebuilds the job's failed-cell list in grid order (the
// deterministic order a status reader should see, independent of delivery
// interleaving). Requires c.mu; takes j.mu.
func (fj *fabricJob) syncFailedLocked() {
	var failed []string
	for _, cid := range fj.order {
		if cell := fj.cells[cid]; cell.state == cellFailed {
			failed = append(failed, cell.errText)
		}
	}
	fj.j.mu.Lock()
	fj.j.failed = failed
	fj.j.mu.Unlock()
}

// syncIntegrityLocked mirrors the audit counters into the job so
// /sweep/{id} renders them. Requires c.mu; takes j.mu.
func (fj *fabricJob) syncIntegrityLocked() {
	fj.j.mu.Lock()
	fj.j.auditsRun = fj.auditsRun
	fj.j.auditsDisagreed = fj.auditsDisagreed
	fj.j.auditsResolved = fj.auditsResolved
	fj.j.integrityFailures = fj.integrityFailuresN
	fj.j.mu.Unlock()
}

// maybeAuditLocked samples a freshly settled cell for a re-execution audit
// (DESIGN.md §17). The sample is a deterministic hash of (sweep, cell)
// against the configured rate, so a replayed chaos schedule audits the
// same cells every run. Only live settlements come through here — cells
// restored from a journal replay were (by induction) already audited or
// sampled out in their first life. Requires c.mu.
func (c *coordinator) maybeAuditLocked(fj *fabricJob, cell *fabricCell) {
	rate := c.s.cfg.AuditRate
	if rate <= 0 || cell.audit != auditNone || !auditSampled(fj.j.ID, cell.id, rate) {
		return
	}
	cell.audit = auditPending
	cell.auditExcl = []string{cell.winWorker}
	fj.auditsPending++
}

// auditSampled deterministically maps (sweep, cell) to [0,1) and compares
// against rate. FNV-1a, not math/rand: the decision must be a pure function
// of its inputs so chaos replays are bit-identical.
func auditSampled(sweepID, cellID string, rate float64) bool {
	h := uint64(0xcbf29ce484222325)
	for _, b := range []byte(sweepID + "/" + cellID) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return float64(h>>11)/float64(uint64(1)<<53) < rate
}

// handleAuditResult folds one audit re-execution into the cell's audit
// state machine. First audit: digests agree → done; disagree → hold the
// candidate and queue a tie-break on a third worker. Tie-break: whichever
// of winner/candidate the third execution's bytes match loses its producer
// a strike; matching the candidate additionally adopts the candidate bytes
// as the cell's winner (journaled under the higher attempt, so a replay
// supersedes the corrupt record deterministically).
func (c *coordinator) handleAuditResult(w http.ResponseWriter, fj *fabricJob, cell *fabricCell, req *resultRequest) {
	c.mu.Lock()
	if (cell.audit != auditInflight && cell.audit != tiebreakInflight) ||
		cell.auditAttempt != req.Attempt || cell.auditWorker != req.Worker {
		// The audit moved on without this delivery — requeued after the
		// auditor was presumed dead, or already resolved. Ack and drop.
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "late": true})
		return
	}
	if req.Err != "" {
		// Environmental failure (timeout, bad image cache, ...), not an
		// integrity verdict: revert to pending for another worker.
		cell.audit--
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		return
	}
	dg := exp.DigestStats(req.Stats)
	if cell.audit == auditInflight {
		fj.auditsRun++
		c.s.met.auditsRun.Add(1)
		if dg == cell.winDigest {
			// Independent re-execution reproduced the winner byte for byte.
			cell.audit = auditDone
			fj.auditsPending--
			fj.syncIntegrityLocked()
			c.finishIfSettledLocked(w, fj)
			return
		}
		// Disagreement: neither side is trustworthy yet. Hold the
		// candidate and have a third worker — anti-affine to both — break
		// the tie.
		fj.auditsDisagreed++
		fj.integrityFailuresN++
		c.s.met.auditsDisagreed.Add(1)
		c.s.met.integrityFailures.Add(1)
		cell.candWorker, cell.candFp, cell.candDigest, cell.candStats = req.Worker, exp.StatsFingerprint(req.Stats), dg, req.Stats
		cell.audit = tiebreakPending
		cell.auditExcl = []string{cell.winWorker, req.Worker}
		fj.syncIntegrityLocked()
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		return
	}
	// Tie-break verdict.
	switch dg {
	case cell.winDigest:
		// The winner stands; the disagreeing auditor produced the bad bytes.
		loser := cell.candWorker
		cell.candWorker, cell.candFp, cell.candDigest, cell.candStats = "", 0, "", nil
		cell.audit = auditDone
		fj.auditsPending--
		fj.auditsResolved++
		c.strikeLocked(loser)
		fj.syncIntegrityLocked()
		c.finishIfSettledLocked(w, fj)
		return
	case cell.candDigest:
		// Two independent executions agree against the recorded winner: the
		// original result was corrupt. Adopt the candidate bytes — journal
		// first (outside c.mu), under the tie-break's attempt ordinal so the
		// replay merge supersedes the corrupt record.
		adopt := *req
		c.mu.Unlock()
		if err := fj.appendRepairing(c.s.cfg.disk(), &fj.cellJournal, func(j *exp.Journal) error {
			return j.AppendCell(cell.key, adopt.Stats, adopt.Attempt)
		}); err != nil {
			// The journal refused the adopted record; leave the audit
			// in flight and make the worker redeliver. auditsPending > 0
			// keeps the sweep (and its journal) open meanwhile.
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": fmt.Sprintf("journal: %v", err)})
			return
		}
		c.mu.Lock()
		if cell.audit != tiebreakInflight || cell.auditAttempt != adopt.Attempt || cell.auditWorker != adopt.Worker {
			// The audit moved on while we journaled. The appended record is
			// digest-verified candidate bytes, so at worst the re-run
			// tie-break adopts them again; nothing to undo.
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, map[string]any{"ok": true, "late": true})
			return
		}
		loser := cell.winWorker
		cell.winAttempt, cell.winFp = adopt.Attempt, exp.StatsFingerprint(adopt.Stats)
		cell.winWorker, cell.winDigest = adopt.Worker, dg
		cell.candWorker, cell.candFp, cell.candDigest, cell.candStats = "", 0, "", nil
		cell.audit = auditDone
		fj.auditsPending--
		fj.auditsResolved++
		fj.j.mu.Lock()
		fj.j.results[keyString(cell.key)] = adopt.Stats
		fj.j.digests[keyString(cell.key)] = dg
		fj.j.mu.Unlock()
		c.strikeLocked(loser)
		fj.syncIntegrityLocked()
		c.finishIfSettledLocked(w, fj)
		return
	default:
		// Matches neither: two independent corruptions in play. Exclude
		// this worker too and re-run the tie-break; no strike, because the
		// evidence does not say who is lying yet.
		cell.auditExcl = append(cell.auditExcl, req.Worker)
		cell.audit = tiebreakPending
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		return
	}
}

// finishIfSettledLocked is the audit paths' common epilogue: check the
// finish condition, release c.mu, finish the job if this verdict was the
// last thing holding it open, and ack the delivery. Takes ownership of
// c.mu (locked on entry, released on return).
func (c *coordinator) finishIfSettledLocked(w http.ResponseWriter, fj *fabricJob) {
	finished := fj.settledLocked()
	if finished {
		fj.finished = true
	}
	c.mu.Unlock()
	if finished {
		c.finishJob(fj)
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// rejectCorrupt handles a delivery whose body failed the digest gate: the
// bytes changed between the worker's engine and this coordinator. The
// record never touches a journal; the producing assignment is dropped
// (requeueing the cell when that leaves it unclaimed, or reverting the
// audit to pending), and the sender takes an integrity strike.
func (c *coordinator) rejectCorrupt(req *resultRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.met.integrityFailures.Add(1)
	if fj := c.jobs[req.SweepID]; fj != nil && !fj.finished {
		fj.integrityFailuresN++
		if cell := fj.cells[req.Cell]; cell != nil {
			if req.Audit {
				if (cell.audit == auditInflight || cell.audit == tiebreakInflight) &&
					cell.auditAttempt == req.Attempt && cell.auditWorker == req.Worker {
					cell.audit--
				}
			} else {
				c.dropProducerLocked(fj, cell, req.Worker, req.Attempt)
			}
		}
		fj.syncIntegrityLocked()
	}
	c.strikeLocked(req.Worker)
}

// dropProducerLocked removes the assignment that produced a rejected
// delivery, requeueing the cell if no other assignee is racing it.
// Requires c.mu.
func (c *coordinator) dropProducerLocked(fj *fabricJob, cell *fabricCell, worker string, attempt int) {
	n := cell.assignees[:0]
	for _, a := range cell.assignees {
		if !(a.worker == worker && a.attempt == attempt) {
			n = append(n, a)
		}
	}
	cell.assignees = n
	if cell.state == cellInflight && len(cell.assignees) == 0 {
		cell.state = cellPending
		fj.pendingN++
		c.s.met.cellsRequeued.Add(1)
	}
}

// finishJob records the terminal state exactly like a single-node
// finishSweep: done (quarantined failures included), journaled as settled
// in the request journal, journals closed.
func (c *coordinator) finishJob(fj *fabricJob) {
	fj.j.mu.Lock()
	fj.j.state = jobDone
	fj.j.done = fj.doneN
	failedCount := len(fj.j.failed)
	fj.j.mu.Unlock()
	c.s.met.jobsDone.Add(1)
	c.s.appendRequest(journalRecord{Op: "done", ID: fj.j.ID, OK: failedCount == 0})
	fj.closeJournals()
}

// closeJournals closes both journals under jmu and marks them closed, so a
// poison repair racing the finish cannot resurrect a journal for a settled
// sweep.
func (fj *fabricJob) closeJournals() {
	fj.jmu.Lock()
	defer fj.jmu.Unlock()
	fj.jclosed = true
	if fj.cellJournal != nil {
		fj.cellJournal.Close()
	}
	if fj.assignJournal != nil {
		fj.assignJournal.Close()
	}
}

// appendRepairing runs do against the journal at *jp, repairing it once if
// the append reports a poisoned fsync gate: the poisoned journal is closed,
// a fresh one opened at the same path, and the append retried through it.
// The retry is durability-sound because every append fsyncs individually —
// the only entry of unknown durability is the one the failed fsync covered,
// and the retry re-appends exactly that entry through a fresh descriptor
// (fresh dirty pages); if both copies land, the (attempt, fingerprint)
// merge dedups them. Returns nil when no journal is configured.
func (fj *fabricJob) appendRepairing(disk chaos.Disk, jp **exp.Journal, do func(*exp.Journal) error) error {
	fj.jmu.Lock()
	j := *jp
	fj.jmu.Unlock()
	if j == nil {
		return nil
	}
	err := do(j)
	var pe *exp.PoisonedJournalError
	if !errors.As(err, &pe) {
		return err
	}
	fresh, oerr := exp.OpenJournalOn(disk, pe.Path)
	if oerr != nil {
		return err
	}
	fj.jmu.Lock()
	if fj.jclosed {
		fj.jmu.Unlock()
		fresh.Close()
		return err
	}
	if *jp == j {
		*jp = fresh
		j.Close() // returns the poison error; the state is already on disk
	} else {
		fresh.Close() // a racing handler repaired first; use its journal
	}
	j = *jp
	fj.jmu.Unlock()
	return do(j)
}

// cellIDPattern guards the snapshot PUT path segment: exp.CellID is 16 hex
// digits, and nothing else may name a file in the snapshot store.
var cellIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// maxSnapshotBody bounds a shipped snapshot (engine memory image plus
// tables): large enough for any simulated machine this repo builds, small
// enough to stop a runaway request.
const maxSnapshotBody int64 = 256 << 20

// handleSnapshotPut receives one shipped cell snapshot as raw encoded
// bytes. The blob is validated (magic, version, CRCs) before it touches
// the store — snapshot.Store — so a blob torn in transit is rejected with
// 400 and the previously shipped good snapshot, if any, survives.
func (c *coordinator) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	cellID := r.PathValue("cell")
	if !cellIDPattern.MatchString(cellID) {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad cell id"})
		return
	}
	// Snapshots carry the engine's full memory image, so the JSON body cap
	// is far too small for them; they get their own ceiling.
	limit := c.s.cfg.MaxBody
	if limit < maxSnapshotBody {
		limit = maxSnapshotBody
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if _, err := snapshot.StoreOn(c.s.cfg.disk(), filepath.Join(c.snapDir, cellID+".snap"), data); err != nil {
		// Corrupt ship bodies (CRC tear, bitrot at source) strike the
		// shipping worker. A transit tear can strike an innocent sender,
		// which is acceptable: quarantine only revokes the lease, and an
		// honest worker re-registers and continues.
		if shipper := r.Header.Get("X-Fgpsim-Worker"); shipper != "" {
			c.s.met.integrityFailures.Add(1)
			c.mu.Lock()
			c.strikeLocked(shipper)
			c.mu.Unlock()
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	c.s.met.snapshotsShipped.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// shutdown stops the liveness watchdog and closes the journals of
// unfinished jobs, marking them interrupted; their accept records stand,
// so the next boot rebuilds them from the journals and the still-running
// workers' late results settle in.
func (c *coordinator) shutdown() {
	c.wd.shutdown()
	c.mu.Lock()
	var open []*fabricJob
	for _, id := range c.jobOrder {
		if fj := c.jobs[id]; !fj.finished {
			open = append(open, fj)
		}
	}
	c.mu.Unlock()
	for _, fj := range open {
		fj.j.mu.Lock()
		fj.j.state = jobInterrupted
		fj.j.errText = "interrupted by drain; resumes on restart"
		fj.j.mu.Unlock()
		fj.closeJournals()
	}
}
