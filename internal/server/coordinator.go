package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/exp"
	"fgpsim/internal/snapshot"
)

// coordinator is the fabric's scheduling brain, attached to a Server
// started with Config.Coordinator. It owns the authoritative cell state of
// every accepted sweep: which cells are pending (and which worker's shard
// they belong to, via the consistent-hash ring over image-cache keys),
// which are in flight under which lease, and which are settled with what
// winning record. One mutex guards all of it; the fsync'd journals (cell
// results, assignments) are appended outside the lock, in whatever order
// the handlers race — the deterministic (attempt, fingerprint) merge makes
// file order immaterial.
type coordinator struct {
	s       *Server
	wd      *watchdog // worker-liveness watchdog (beats = authenticated requests)
	snapDir string    // shipped-snapshot store, keyed by cell id

	mu       sync.Mutex
	workers  map[string]*workerEnt
	leaseSeq uint64
	ring     *exp.Ring
	jobs     map[string]*fabricJob
	jobOrder []string
}

type cellState int

const (
	cellPending cellState = iota
	cellInflight
	cellDone
	cellFailed
)

// fabricCell is one grid cell's authoritative state.
type fabricCell struct {
	id    string // exp.CellID — the wire identity
	bench string // "" = the sweep's Source program
	spec  ConfigSpec
	key   exp.Key
	shard uint64 // exp.ShardKey — image-cache affinity on the ring

	state     cellState
	attempt   int // assignment high-water mark
	assignees []cellAssignee

	// Winning record, mirrored from the journal's dedup order so live
	// arrivals and post-restart replays settle identically.
	winAttempt int
	winFp      uint64
	errText    string
}

type cellAssignee struct {
	worker  string
	lease   uint64
	attempt int
	at      time.Time
}

// fabricJob is one sweep being executed by the fabric. It wraps the
// Server's ordinary job (which renders /sweep/{id} exactly as a
// single-node run would — part of the byte-identity story).
type fabricJob struct {
	j    *job
	spec SweepSpec

	// jmu guards the journal pointers (not the appends themselves — those
	// serialize on each Journal's own mutex). It exists for the poison
	// repair path: a failed fsync permanently poisons a journal, and the
	// handler that hits it swaps a freshly opened journal in under jmu.
	jmu           sync.Mutex
	jclosed       bool         // set by closeJournals; stops post-finish repairs
	cellJournal   *exp.Journal // results, exp.AppendCell records
	assignJournal *exp.Journal // assignRecord lines

	cells map[string]*fabricCell
	order []string // cell ids in grid order (prepared outer, configs inner)

	pendingN int
	doneN    int
	failedN  int
	finished bool
}

func newCoordinator(s *Server) (*coordinator, error) {
	dir := ""
	if s.cfg.JournalDir != "" {
		dir = filepath.Join(s.cfg.JournalDir, "fabric-snapshots")
	} else {
		var err error
		dir, err = os.MkdirTemp("", "fgpsim-fabric-")
		if err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	interval := s.cfg.WorkerDeadAfter / 4
	return &coordinator{
		s:       s,
		wd:      newWatchdog(interval, s.cfg.WorkerDeadAfter),
		snapDir: dir,
		workers: make(map[string]*workerEnt),
		ring:    exp.NewRing(),
		jobs:    make(map[string]*fabricJob),
	}, nil
}

func (c *coordinator) routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /fabric/register", c.handleRegister)
	mux.HandleFunc("POST /fabric/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fabric/poll", c.handlePoll)
	mux.HandleFunc("POST /fabric/result", c.handleResult)
	mux.HandleFunc("POST /fabric/deregister", c.handleDeregister)
	mux.HandleFunc("PUT /fabric/snapshot/{cell}", c.handleSnapshotPut)
}

func (c *coordinator) assignJournalPath(id string) string {
	if c.s.cfg.JournalDir == "" {
		return ""
	}
	return filepath.Join(c.s.cfg.JournalDir, "sweep-"+id+".assign")
}

// start takes ownership of an accepted sweep: enumerate its cells in grid
// order, replay any prior cell/assignment journals (the recovered case —
// a coordinator crash or drain with the sweep unfinished), and queue the
// rest for the workers. recovered distinguishes a restart replay from a
// fresh accept only for metrics; the machinery is identical because an
// empty journal replays to nothing.
func (c *coordinator) start(j *job, recovered bool) error {
	fj := &fabricJob{
		j:     j,
		spec:  j.Spec,
		cells: make(map[string]*fabricCell),
	}
	benches := j.Spec.Benches
	if len(benches) == 0 {
		benches = []string{""}
	}
	for _, b := range benches {
		name := b
		if name == "" {
			name = sourceName(j.Spec.Source, j.Spec.In0, j.Spec.In1)
		}
		for _, cs := range j.Spec.Configs {
			cfg, err := cs.Config()
			if err != nil {
				return err // unreachable: validated at accept
			}
			key := exp.KeyOf(name, cfg)
			cell := &fabricCell{
				id:    exp.CellID(key),
				bench: b,
				spec:  cs,
				key:   key,
				shard: exp.ShardKey(name, cfg),
			}
			fj.cells[cell.id] = cell
			fj.order = append(fj.order, cell.id)
		}
	}

	disk := c.s.cfg.disk()
	cellPath := c.s.cellJournalPath(j.ID)
	if cellPath != "" {
		prior, err := exp.MergeJournalRecordsOn(disk, cellPath)
		if err != nil {
			return fmt.Errorf("server: fabric journal %s: %w", cellPath, err)
		}
		for _, cid := range fj.order {
			cell := fj.cells[cid]
			if rec, ok := prior[cell.key]; ok {
				cell.state = cellDone
				cell.winAttempt, cell.winFp = rec.Attempt, rec.Fp
				fj.doneN++
				j.mu.Lock()
				j.results[keyString(cell.key)] = rec.Stats
				j.mu.Unlock()
				c.s.met.cellsRestored.Add(1)
			}
		}
		fj.cellJournal, err = exp.OpenJournalOn(disk, cellPath)
		if err != nil {
			return fmt.Errorf("server: fabric journal %s: %w", cellPath, err)
		}
	}
	if ap := c.assignJournalPath(j.ID); ap != "" {
		// Restore each cell's attempt high-water mark so post-restart
		// assignments supersede pre-restart ones in the merge order.
		exp.ReplayJournalOn(disk, ap, func(line []byte) error {
			var rec assignRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return err
			}
			for _, a := range rec.Cells {
				if cell := fj.cells[a.ID]; cell != nil && a.Attempt > cell.attempt {
					cell.attempt = a.Attempt
				}
			}
			return nil
		})
		var err error
		fj.assignJournal, err = exp.OpenJournalOn(disk, ap)
		if err != nil {
			return fmt.Errorf("server: assignment journal %s: %w", ap, err)
		}
	}

	for _, cid := range fj.order {
		if fj.cells[cid].state == cellPending {
			fj.pendingN++
		}
	}
	j.setState(jobRunning)
	j.setProgress(fj.doneN, len(fj.order))

	c.mu.Lock()
	c.jobs[j.ID] = fj
	c.jobOrder = append(c.jobOrder, j.ID)
	finished := fj.settledLocked()
	c.mu.Unlock()
	if finished {
		// Every cell was already journaled (crash after the last result,
		// before the done record).
		c.finishJob(fj)
	}
	return nil
}

func (fj *fabricJob) settledLocked() bool {
	return !fj.finished && fj.doneN+fj.failedN == len(fj.order)
}

// handlePoll hands a worker up to Max cells: its own shard first, then
// anything pending (counted as stolen), then — when nothing is pending —
// a duplicate assignment of the oldest straggler (stealing.go).
func (c *coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req pollRequest
	if err := c.s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}
	now := time.Now()
	c.mu.Lock()
	ent := c.workers[req.Worker]
	if ent == nil || ent.lease != req.Lease {
		c.mu.Unlock()
		writeJSON(w, http.StatusGone, map[string]any{"error": "stale lease; re-register"})
		return
	}
	ent.beat.Add(1)
	var fj *fabricJob
	var picked []*fabricCell
	for _, id := range c.jobOrder {
		job := c.jobs[id]
		if job.finished {
			continue
		}
		if picked = c.pickLocked(job, req.Worker, req.Lease, max, now); len(picked) > 0 {
			fj = job
			break
		}
	}
	resp := pollResponse{WaitMS: 200}
	rec := assignRecord{Op: "assign", Worker: req.Worker}
	if fj != nil {
		resp = pollResponse{
			SweepID:         fj.j.ID,
			Source:          fj.spec.Source,
			In0:             fj.spec.In0,
			In1:             fj.spec.In1,
			Retries:         fj.spec.Retries,
			Timeout:         fj.spec.Timeout,
			CheckpointEvery: c.s.cfg.CheckpointEvery,
		}
		for _, cell := range picked {
			resp.Cells = append(resp.Cells, cellAssignment{
				Cell:    cell.id,
				Bench:   cell.bench,
				Config:  cell.spec,
				Attempt: cell.attempt,
			})
			rec.Cells = append(rec.Cells, assignCell{ID: cell.id, Attempt: cell.attempt})
		}
	}
	c.mu.Unlock()
	if fj == nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Durable before visible: the assignment journal line lands (fsync'd)
	// before the worker can possibly produce a result under it.
	disk := c.s.cfg.disk()
	fj.appendRepairing(disk, &fj.assignJournal, func(j *exp.Journal) error {
		return j.Append(rec)
	})
	// Attach shipped snapshots so a requeued cell resumes mid-run. Disk IO
	// deliberately happens outside the coordinator lock.
	for i := range resp.Cells {
		path := filepath.Join(c.snapDir, resp.Cells[i].Cell+".snap")
		if snapshot.ExistsOn(disk, path) {
			if data, _, err := snapshot.LoadShippableOn(disk, path); err == nil {
				resp.Cells[i].Snapshot = data
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResult settles one cell. The journal append happens BEFORE the
// in-memory settle and before the 200: a result the worker saw
// acknowledged is durable, and a coordinator crash between the two
// replays the journal to the same winner the live path would have picked.
// Torn bodies (a connection cut mid-POST) fail JSON decoding and change
// nothing; the worker retries the POST whole.
func (c *coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if err := c.s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if (req.Stats == nil) == (req.Err == "") {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "exactly one of stats or err required"})
		return
	}
	c.mu.Lock()
	// Results are accepted from any lease — even a superseded or
	// presumed-dead worker computed the right answer — but only a live
	// lease's beat counter advances.
	if ent := c.workers[req.Worker]; ent != nil && ent.lease == req.Lease {
		ent.beat.Add(1)
	}
	fj := c.jobs[req.SweepID]
	var cell *fabricCell
	finished := false
	if fj != nil {
		cell = fj.cells[req.Cell]
		finished = fj.finished
	}
	c.mu.Unlock()
	if cell == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown sweep or cell"})
		return
	}
	if finished {
		// The sweep settled while this delivery limped in — a straggler
		// duplicate of work that already completed elsewhere. Determinism
		// makes it byte-identical to the recorded winner; acknowledge it so
		// the worker stops retrying, and drop it.
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "late": true})
		return
	}
	if req.Stats != nil {
		if err := fj.appendRepairing(c.s.cfg.disk(), &fj.cellJournal, func(j *exp.Journal) error {
			return j.AppendCell(cell.key, req.Stats, req.Attempt)
		}); err != nil {
			// An append can race the job finishing (the journal closes with
			// it); that is the same late-straggler case, not a server error.
			c.mu.Lock()
			finished = fj.finished
			c.mu.Unlock()
			if finished {
				writeJSON(w, http.StatusOK, map[string]any{"ok": true, "late": true})
				return
			}
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": fmt.Sprintf("journal: %v", err)})
			return
		}
	}
	c.mu.Lock()
	c.settleLocked(fj, cell, &req)
	finished = fj.settledLocked()
	if finished {
		fj.finished = true
	}
	c.mu.Unlock()
	if finished {
		c.finishJob(fj)
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// settleLocked folds one delivered result into the cell under the same
// deterministic order the journal merge uses (exp.Supersedes), so
// duplicate deliveries, late deliveries after a requeue settled the cell
// elsewhere, and replayed journals all converge on the same winner.
// Requires c.mu.
func (c *coordinator) settleLocked(fj *fabricJob, cell *fabricCell, req *resultRequest) {
	// Drop the assignment that produced this result (best effort: it may
	// already be gone if the worker was declared dead first).
	n := cell.assignees[:0]
	for _, a := range cell.assignees {
		if !(a.worker == req.Worker && a.attempt == req.Attempt) {
			n = append(n, a)
		}
	}
	cell.assignees = n

	if req.Stats != nil {
		fp := exp.StatsFingerprint(req.Stats)
		wasFailed := false
		switch cell.state {
		case cellDone:
			if !exp.Supersedes(cell.winAttempt, cell.winFp, req.Attempt, fp) {
				return
			}
		case cellFailed:
			// A success beats a quarantined failure regardless of stamps —
			// the failure was environmental (the deterministic simulator
			// cannot both fail and succeed on the same cell).
			fj.failedN--
			cell.errText = ""
			wasFailed = true
		case cellPending:
			fj.pendingN--
		}
		if cell.state != cellDone {
			fj.doneN++
			c.s.met.cellsDone.Add(1)
		}
		cell.state = cellDone
		cell.winAttempt, cell.winFp = req.Attempt, fp
		if wasFailed {
			fj.syncFailedLocked()
		}
		fj.j.mu.Lock()
		fj.j.results[keyString(cell.key)] = req.Stats
		fj.j.done = fj.doneN
		fj.j.mu.Unlock()
		return
	}
	// Failure: settles the cell only if nothing better has. First failure
	// wins among failures; a duplicate assignment may still land a success
	// later and flip it above.
	if cell.state == cellDone || cell.state == cellFailed {
		return
	}
	if cell.state == cellPending {
		fj.pendingN--
	}
	cell.state = cellFailed
	cell.errText = req.Err
	fj.failedN++
	c.s.met.cellsFailed.Add(1)
	fj.syncFailedLocked()
}

// syncFailedLocked rebuilds the job's failed-cell list in grid order (the
// deterministic order a status reader should see, independent of delivery
// interleaving). Requires c.mu; takes j.mu.
func (fj *fabricJob) syncFailedLocked() {
	var failed []string
	for _, cid := range fj.order {
		if cell := fj.cells[cid]; cell.state == cellFailed {
			failed = append(failed, cell.errText)
		}
	}
	fj.j.mu.Lock()
	fj.j.failed = failed
	fj.j.mu.Unlock()
}

// finishJob records the terminal state exactly like a single-node
// finishSweep: done (quarantined failures included), journaled as settled
// in the request journal, journals closed.
func (c *coordinator) finishJob(fj *fabricJob) {
	fj.j.mu.Lock()
	fj.j.state = jobDone
	fj.j.done = fj.doneN
	failedCount := len(fj.j.failed)
	fj.j.mu.Unlock()
	c.s.met.jobsDone.Add(1)
	c.s.appendRequest(journalRecord{Op: "done", ID: fj.j.ID, OK: failedCount == 0})
	fj.closeJournals()
}

// closeJournals closes both journals under jmu and marks them closed, so a
// poison repair racing the finish cannot resurrect a journal for a settled
// sweep.
func (fj *fabricJob) closeJournals() {
	fj.jmu.Lock()
	defer fj.jmu.Unlock()
	fj.jclosed = true
	if fj.cellJournal != nil {
		fj.cellJournal.Close()
	}
	if fj.assignJournal != nil {
		fj.assignJournal.Close()
	}
}

// appendRepairing runs do against the journal at *jp, repairing it once if
// the append reports a poisoned fsync gate: the poisoned journal is closed,
// a fresh one opened at the same path, and the append retried through it.
// The retry is durability-sound because every append fsyncs individually —
// the only entry of unknown durability is the one the failed fsync covered,
// and the retry re-appends exactly that entry through a fresh descriptor
// (fresh dirty pages); if both copies land, the (attempt, fingerprint)
// merge dedups them. Returns nil when no journal is configured.
func (fj *fabricJob) appendRepairing(disk chaos.Disk, jp **exp.Journal, do func(*exp.Journal) error) error {
	fj.jmu.Lock()
	j := *jp
	fj.jmu.Unlock()
	if j == nil {
		return nil
	}
	err := do(j)
	var pe *exp.PoisonedJournalError
	if !errors.As(err, &pe) {
		return err
	}
	fresh, oerr := exp.OpenJournalOn(disk, pe.Path)
	if oerr != nil {
		return err
	}
	fj.jmu.Lock()
	if fj.jclosed {
		fj.jmu.Unlock()
		fresh.Close()
		return err
	}
	if *jp == j {
		*jp = fresh
		j.Close() // returns the poison error; the state is already on disk
	} else {
		fresh.Close() // a racing handler repaired first; use its journal
	}
	j = *jp
	fj.jmu.Unlock()
	return do(j)
}

// cellIDPattern guards the snapshot PUT path segment: exp.CellID is 16 hex
// digits, and nothing else may name a file in the snapshot store.
var cellIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// maxSnapshotBody bounds a shipped snapshot (engine memory image plus
// tables): large enough for any simulated machine this repo builds, small
// enough to stop a runaway request.
const maxSnapshotBody int64 = 256 << 20

// handleSnapshotPut receives one shipped cell snapshot as raw encoded
// bytes. The blob is validated (magic, version, CRCs) before it touches
// the store — snapshot.Store — so a blob torn in transit is rejected with
// 400 and the previously shipped good snapshot, if any, survives.
func (c *coordinator) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	cellID := r.PathValue("cell")
	if !cellIDPattern.MatchString(cellID) {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad cell id"})
		return
	}
	// Snapshots carry the engine's full memory image, so the JSON body cap
	// is far too small for them; they get their own ceiling.
	limit := c.s.cfg.MaxBody
	if limit < maxSnapshotBody {
		limit = maxSnapshotBody
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if _, err := snapshot.StoreOn(c.s.cfg.disk(), filepath.Join(c.snapDir, cellID+".snap"), data); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	c.s.met.snapshotsShipped.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// shutdown stops the liveness watchdog and closes the journals of
// unfinished jobs, marking them interrupted; their accept records stand,
// so the next boot rebuilds them from the journals and the still-running
// workers' late results settle in.
func (c *coordinator) shutdown() {
	c.wd.shutdown()
	c.mu.Lock()
	var open []*fabricJob
	for _, id := range c.jobOrder {
		if fj := c.jobs[id]; !fj.finished {
			open = append(open, fj)
		}
	}
	c.mu.Unlock()
	for _, fj := range open {
		fj.j.mu.Lock()
		fj.j.state = jobInterrupted
		fj.j.errText = "interrupted by drain; resumes on restart"
		fj.j.mu.Unlock()
		fj.closeJournals()
	}
}
