package server

import (
	"fmt"
	"sync"

	"fgpsim/internal/bench"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/exp"
)

// prepCache memoizes exp.Prepare results. Preparation is the expensive,
// run-independent part of a request (compile, profiling run, enlargement
// build, reference run), so a long-lived daemon does it once per program
// and amortizes it across every request and sweep cell that follows —
// the service-shaped analogue of exp's per-sweep image cache.
type prepCache struct {
	mu sync.Mutex
	m  map[string]*prepEntry
}

type prepEntry struct {
	once sync.Once
	p    *exp.Prepared
	err  error
}

func newPrepCache() *prepCache {
	return &prepCache{m: make(map[string]*prepEntry)}
}

// get prepares (once) the named unit. The builder runs outside the cache
// lock, so two different programs prepare concurrently while a second
// request for the same program blocks on the first's once.
func (c *prepCache) get(name string, build func() (*exp.Prepared, error)) (*exp.Prepared, error) {
	c.mu.Lock()
	e := c.m[name]
	if e == nil {
		e = &prepEntry{}
		c.m[name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.p, e.err = build() })
	return e.p, e.err
}

// prepareBench returns the prepared form of one of the paper's benchmarks.
func (c *prepCache) prepareBench(name string) (*exp.Prepared, error) {
	b := bench.ByName(name)
	if b == nil {
		return nil, fmt.Errorf("server: unknown benchmark %q", name)
	}
	return c.get(name, func() (*exp.Prepared, error) {
		return exp.Prepare(b, enlarge.DefaultOptions())
	})
}

// prepareSource returns the prepared form of an ad-hoc MiniC program. The
// supplied inputs serve as both the profiling and the measurement set
// (callers who care about the paper's two-set methodology submit a
// benchmark instead).
func (c *prepCache) prepareSource(src, in0, in1 string) (*exp.Prepared, error) {
	name := sourceName(src, in0, in1)
	return c.get(name, func() (*exp.Prepared, error) {
		b := &bench.Benchmark{
			Name:   name,
			Source: src,
			Inputs: func(int) ([]byte, []byte) { return []byte(in0), []byte(in1) },
		}
		return exp.Prepare(b, enlarge.DefaultOptions())
	})
}
