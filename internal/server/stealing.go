package server

import (
	"time"
)

// Work stealing keeps the fabric's tail short. Shard affinity (the
// consistent-hash ring over image-cache keys) is a throughput
// optimization, not a correctness constraint, so the picking policy treats
// it as a preference with two escape hatches:
//
//  1. an idle worker whose own shard is drained takes any pending cell —
//     a cell queued for a busy (or not-yet-registered) peer is better run
//     cold on the wrong worker than not at all;
//  2. when nothing is pending, an idle worker duplicates the oldest
//     in-flight assignment that has been out longer than StealAfter — the
//     straggler may be on a slow, wedged, or silently dying worker, and a
//     duplicate costs one redundant simulation while an undetected
//     straggler costs the whole sweep's tail. Duplicate results merge
//     deterministically, so racing the original is always safe.

// maxDuplicates bounds how many workers may race one straggling cell
// (the original assignee plus duplicates). Beyond this the cell is far
// more likely deterministic-slow than victim-of-a-slow-worker, and more
// copies only burn cycles.
const maxDuplicates = 3

// pickLocked selects up to max cells from fj for worker. Requires c.mu.
func (c *coordinator) pickLocked(fj *fabricJob, worker string, lease uint64, max int, now time.Time) []*fabricCell {
	var picked []*fabricCell
	if fj.pendingN > 0 {
		// Pass 1: the worker's own shard, in grid order.
		for _, cid := range fj.order {
			if len(picked) >= max || fj.pendingN == 0 {
				break
			}
			cell := fj.cells[cid]
			if cell.state == cellPending && c.ring.Owner(cell.shard) == worker {
				c.assignLocked(fj, cell, worker, lease, now)
				picked = append(picked, cell)
			}
		}
		// Pass 2: anything pending. Cells whose ring owner is another live
		// worker are counted as stolen; orphaned cells (owner dead, ring
		// empty at enqueue time, or owner not yet registered) are just
		// picked up.
		for _, cid := range fj.order {
			if len(picked) >= max || fj.pendingN == 0 {
				break
			}
			cell := fj.cells[cid]
			if cell.state != cellPending {
				continue
			}
			if owner := c.ring.Owner(cell.shard); owner != "" && owner != worker {
				c.s.met.cellsStolen.Add(1)
			}
			c.assignLocked(fj, cell, worker, lease, now)
			picked = append(picked, cell)
		}
	}
	if len(picked) > 0 {
		return picked
	}
	// Pass 3: straggler duplication — one per poll, oldest first.
	if cell := c.oldestStragglerLocked(fj, worker, now); cell != nil {
		c.s.met.cellsStolen.Add(1)
		c.assignLocked(fj, cell, worker, lease, now)
		picked = append(picked, cell)
	}
	return picked
}

// assignLocked hands cell to worker under a fresh attempt ordinal.
// Requires c.mu.
func (c *coordinator) assignLocked(fj *fabricJob, cell *fabricCell, worker string, lease uint64, now time.Time) {
	if cell.state == cellPending {
		fj.pendingN--
	}
	cell.state = cellInflight
	cell.attempt++
	cell.assignees = append(cell.assignees, cellAssignee{worker: worker, lease: lease, attempt: cell.attempt, at: now})
}

// oldestStragglerLocked finds the in-flight cell whose most recent
// assignment is the stalest beyond StealAfter, excluding cells the asking
// worker already holds and cells already raced by maxDuplicates workers.
// Requires c.mu.
func (c *coordinator) oldestStragglerLocked(fj *fabricJob, worker string, now time.Time) *fabricCell {
	var best *fabricCell
	var bestAge time.Duration
	for _, cid := range fj.order {
		cell := fj.cells[cid]
		if cell.state != cellInflight || len(cell.assignees) == 0 || len(cell.assignees) >= maxDuplicates {
			continue
		}
		newest := cell.assignees[0].at
		mine := false
		for _, a := range cell.assignees {
			if a.at.After(newest) {
				newest = a.at
			}
			if a.worker == worker {
				mine = true
			}
		}
		if mine {
			continue
		}
		if age := now.Sub(newest); age >= c.s.cfg.StealAfter && age > bestAge {
			best, bestAge = cell, age
		}
	}
	return best
}
