package server

import (
	"time"
)

// Work stealing keeps the fabric's tail short. Shard affinity (the
// consistent-hash ring over image-cache keys) is a throughput
// optimization, not a correctness constraint, so the picking policy treats
// it as a preference with two escape hatches:
//
//  1. an idle worker whose own shard is drained takes any pending cell —
//     a cell queued for a busy (or not-yet-registered) peer is better run
//     cold on the wrong worker than not at all;
//  2. when nothing is pending, an idle worker duplicates the oldest
//     in-flight assignment that has been out longer than StealAfter — the
//     straggler may be on a slow, wedged, or silently dying worker, and a
//     duplicate costs one redundant simulation while an undetected
//     straggler costs the whole sweep's tail. Duplicate results merge
//     deterministically, so racing the original is always safe.

// maxDuplicates bounds how many workers may race one straggling cell
// (the original assignee plus duplicates). Beyond this the cell is far
// more likely deterministic-slow than victim-of-a-slow-worker, and more
// copies only burn cycles.
const maxDuplicates = 3

// pickedCell is one assignment pickLocked chose: a cell, and whether it is
// a re-execution audit of an already-settled cell rather than real work.
type pickedCell struct {
	cell  *fabricCell
	audit bool
}

// pickLocked selects up to max cells from fj for worker. Requires c.mu.
func (c *coordinator) pickLocked(fj *fabricJob, worker string, lease uint64, max int, now time.Time) []pickedCell {
	var picked []pickedCell
	if fj.pendingN > 0 {
		// Pass 1: the worker's own shard, in grid order.
		for _, cid := range fj.order {
			if len(picked) >= max || fj.pendingN == 0 {
				break
			}
			cell := fj.cells[cid]
			if cell.state == cellPending && c.ring.Owner(cell.shard) == worker {
				c.assignLocked(fj, cell, worker, lease, now)
				picked = append(picked, pickedCell{cell: cell})
			}
		}
		// Pass 2: anything pending. Cells whose ring owner is another live
		// worker are counted as stolen; orphaned cells (owner dead, ring
		// empty at enqueue time, or owner not yet registered) are just
		// picked up.
		for _, cid := range fj.order {
			if len(picked) >= max || fj.pendingN == 0 {
				break
			}
			cell := fj.cells[cid]
			if cell.state != cellPending {
				continue
			}
			if owner := c.ring.Owner(cell.shard); owner != "" && owner != worker {
				c.s.met.cellsStolen.Add(1)
			}
			c.assignLocked(fj, cell, worker, lease, now)
			picked = append(picked, pickedCell{cell: cell})
		}
	}
	// Pass 4 (rides along with any pass): fill remaining slots with audit
	// re-executions this worker is eligible for. Audited cells are already
	// cellDone, so passes 1-3 never touch them.
	if fj.auditsPending > 0 {
		for _, cid := range fj.order {
			if len(picked) >= max {
				break
			}
			cell := fj.cells[cid]
			if cell.audit != auditPending && cell.audit != tiebreakPending {
				continue
			}
			if !c.auditEligibleLocked(cell, worker) {
				continue
			}
			c.assignAuditLocked(fj, cell, worker, lease, now)
			picked = append(picked, pickedCell{cell: cell, audit: true})
		}
	}
	if len(picked) > 0 {
		return picked
	}
	// Pass 3: straggler duplication — one per poll, oldest first.
	if cell := c.oldestStragglerLocked(fj, worker, now); cell != nil {
		c.s.met.cellsStolen.Add(1)
		c.assignLocked(fj, cell, worker, lease, now)
		picked = append(picked, pickedCell{cell: cell})
	}
	return picked
}

// auditEligibleLocked applies audit anti-affinity: the worker that produced
// the current winner (and any auditor that already disagreed) may not run
// the audit. When every registered worker is excluded — a one-worker fabric
// — the rule relaxes rather than deadlocking the sweep: a self-audit still
// catches nondeterministic corruption (bad RAM, transit flips), just not a
// consistently lying worker. Requires c.mu.
func (c *coordinator) auditEligibleLocked(cell *fabricCell, worker string) bool {
	excluded := func(id string) bool {
		for _, e := range cell.auditExcl {
			if e == id {
				return true
			}
		}
		return false
	}
	if !excluded(worker) {
		return true
	}
	for id := range c.workers {
		if !excluded(id) {
			return false // an eligible worker exists; wait for it
		}
	}
	return true
}

// assignAuditLocked hands cell's audit to worker under a fresh attempt
// ordinal (journaled like any assignment, so the attempt high-water mark
// survives a restart). Requires c.mu.
func (c *coordinator) assignAuditLocked(fj *fabricJob, cell *fabricCell, worker string, lease uint64, now time.Time) {
	cell.attempt++
	cell.auditWorker, cell.auditLease, cell.auditAttempt = worker, lease, cell.attempt
	cell.audit++ // auditPending -> auditInflight, tiebreakPending -> tiebreakInflight
}

// assignLocked hands cell to worker under a fresh attempt ordinal.
// Requires c.mu.
func (c *coordinator) assignLocked(fj *fabricJob, cell *fabricCell, worker string, lease uint64, now time.Time) {
	if cell.state == cellPending {
		fj.pendingN--
	}
	cell.state = cellInflight
	cell.attempt++
	cell.assignees = append(cell.assignees, cellAssignee{worker: worker, lease: lease, attempt: cell.attempt, at: now})
}

// oldestStragglerLocked finds the in-flight cell whose most recent
// assignment is the stalest beyond StealAfter, excluding cells the asking
// worker already holds and cells already raced by maxDuplicates workers.
// Requires c.mu.
func (c *coordinator) oldestStragglerLocked(fj *fabricJob, worker string, now time.Time) *fabricCell {
	var best *fabricCell
	var bestAge time.Duration
	for _, cid := range fj.order {
		cell := fj.cells[cid]
		if cell.state != cellInflight || len(cell.assignees) == 0 || len(cell.assignees) >= maxDuplicates {
			continue
		}
		newest := cell.assignees[0].at
		mine := false
		for _, a := range cell.assignees {
			if a.at.After(newest) {
				newest = a.at
			}
			if a.worker == worker {
				mine = true
			}
		}
		if mine {
			continue
		}
		if age := now.Sub(newest); age >= c.s.cfg.StealAfter && age > bestAge {
			best, bestAge = cell, age
		}
	}
	return best
}
