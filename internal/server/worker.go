package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
	"fgpsim/internal/snapshot"
	"fgpsim/internal/stats"
)

// Worker is the fabric's execution half: a pull client that registers with
// a coordinator, polls for cell assignments, runs each through the same
// exp.GridContext machinery a single-node sweep uses (same retries, same
// quarantine, same checkpoint cadence — which is why the merged results
// are byte-identical to a single-node run), ships its mid-run checkpoints
// back so a peer can resume its cells if this process dies, and posts
// results until they are acknowledged. It serves no HTTP itself; a worker
// behind a NAT or a partition needs nothing but an outbound connection.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID is the worker's stable identity. Re-registering the same ID after
	// a crash supersedes the dead incarnation immediately instead of
	// waiting out the liveness timeout. Default: hostname-pid.
	ID string
	// Heartbeat is the liveness beacon period (default 1s). It must be
	// comfortably inside the coordinator's WorkerDeadAfter.
	Heartbeat time.Duration
	// Concurrency is how many cells run in parallel (default GOMAXPROCS);
	// it is also the poll batch size.
	Concurrency int
	// SnapshotDir holds local cell checkpoints (default: a temp dir).
	SnapshotDir string
	// DrainGrace bounds how long a graceful stop waits for in-flight cells
	// to park at a checkpoint boundary before abandoning them (default 30s).
	DrainGrace time.Duration
	// Abandon, when set, makes Run exit immediately on context
	// cancellation: no preempt, no final result posts, no deregister — the
	// coordinator sees exactly what a kill -9 looks like. Test hook.
	Abandon bool
	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
	// Disk overrides the filesystem the worker's journals and snapshots go
	// through (nil = the real one; the chaos harness substitutes a
	// fault-injecting chaos.FS).
	Disk chaos.Disk
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
	// OmitDigests suppresses the result content digest, making this worker
	// look like a pre-digest legacy build. Chaos self-test hook: it disarms
	// the fabric's integrity layer so the orchestrator can prove it still
	// catches a planted corruption without it.
	OmitDigests bool
	// Mangle, when set, replaces each successful cell result before the
	// digest is computed — a simulated buggy/lying worker whose corruption
	// is self-consistent (digest matches the corrupt bytes) and therefore
	// detectable only by re-execution audits. Chaos harness hook.
	Mangle func(cell string, s *stats.Run) *stats.Run
}

type Worker struct {
	opts     WorkerOptions
	client   *http.Client
	prep     *prepCache
	logf     func(string, ...any)
	snapDir  string
	auditDir string
	disk     chaos.Disk

	lease   atomic.Uint64
	preempt atomic.Bool
	busy    atomic.Int64

	// parked holds encoded snapshots whose ship exhausted its retry budget,
	// keyed by cell id, awaiting a re-ship from the poll loop or the drain.
	parkedMu       sync.Mutex
	parked         map[string][]byte
	reshipInFlight atomic.Bool

	// CellsRun counts settled cells, for tests and logs.
	CellsRun atomic.Int64
}

// NewWorker validates options and builds a worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" {
		return nil, fmt.Errorf("server: worker needs a coordinator URL")
	}
	if opts.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = time.Second
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	if opts.DrainGrace <= 0 {
		opts.DrainGrace = 30 * time.Second
	}
	w := &Worker{
		opts:   opts,
		client: opts.Client,
		prep:   newPrepCache(),
		logf:   opts.Logf,
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 10 * time.Second}
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	w.disk = opts.Disk
	if w.disk == nil {
		w.disk = chaos.OS{}
	}
	w.snapDir = opts.SnapshotDir
	if w.snapDir == "" {
		dir, err := os.MkdirTemp("", "fgpsim-worker-")
		if err != nil {
			return nil, err
		}
		w.snapDir = dir
	} else if err := os.MkdirAll(w.snapDir, 0o755); err != nil {
		return nil, err
	}
	// Audit re-executions checkpoint in their own directory so they can
	// never resume from a previous run's snapshot of the same cell — an
	// audit that resumed from the bytes it is auditing would prove nothing.
	w.auditDir = filepath.Join(w.snapDir, "audit")
	if err := os.MkdirAll(w.auditDir, 0o755); err != nil {
		return nil, err
	}
	return w, nil
}

// ID returns the worker's identity.
func (w *Worker) ID() string { return w.opts.ID }

// Run is the worker's main loop; it returns nil after a graceful drain
// (ctx canceled: stop polling, ask in-flight cells to park and ship their
// snapshots, post what settled, deregister) and only returns an error when
// it could never join the fabric at all.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.logf("worker %s: registered (lease %d)", w.opts.ID, w.lease.Load())

	hbCtx, hbStop := context.WithCancel(context.Background())
	defer hbStop()
	go w.heartbeatLoop(hbCtx)

	// Cells run under their own context so a drain can ask them to park
	// (cooperative preempt) instead of tearing them down mid-simulation.
	cellCtx, cancelCells := context.WithCancel(context.Background())
	defer cancelCells()
	var cellWG sync.WaitGroup

poll:
	for ctx.Err() == nil {
		w.reshipParkedAsync()
		free := w.opts.Concurrency - int(w.busy.Load())
		if free <= 0 {
			if !sleepCtx(ctx, 20*time.Millisecond) {
				break poll
			}
			continue
		}
		var resp pollResponse
		err := w.doJSON(ctx, "POST", "/fabric/poll",
			pollRequest{Worker: w.opts.ID, Lease: w.lease.Load(), Max: free}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				break poll
			}
			w.logf("worker %s: poll: %v", w.opts.ID, err)
			if !sleepCtx(ctx, 500*time.Millisecond) {
				break poll
			}
			continue
		}
		if len(resp.Cells) == 0 {
			wait := time.Duration(resp.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = 200 * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				break poll
			}
			continue
		}
		for _, cell := range resp.Cells {
			w.busy.Add(1)
			cellWG.Add(1)
			go func(pr pollResponse, a cellAssignment) {
				defer cellWG.Done()
				defer w.busy.Add(-1)
				w.runCell(cellCtx, pr, a)
			}(resp, cell)
		}
	}

	if w.opts.Abandon {
		cancelCells()
		return nil
	}
	// Graceful drain: ask armed cells to park at their next checkpoint
	// boundary (shipping the parked snapshot), bound the wait, then go.
	w.preempt.Store(true)
	done := make(chan struct{})
	go func() { cellWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(w.opts.DrainGrace):
		w.logf("worker %s: drain grace expired; abandoning in-flight cells", w.opts.ID)
		cancelCells()
		<-done
	}
	// Last chance for parked snapshots: after this the coordinator requeues
	// our cells, and a successfully re-shipped checkpoint is the difference
	// between the next assignee resuming mid-run and starting over.
	w.reshipParked()
	w.deregister()
	w.logf("worker %s: drained", w.opts.ID)
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

func (w *Worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			err := w.doJSON(ctx, "POST", "/fabric/heartbeat",
				heartbeatRequest{Worker: w.opts.ID, Lease: w.lease.Load()}, nil)
			if err != nil && ctx.Err() == nil {
				w.logf("worker %s: heartbeat: %v", w.opts.ID, err)
			}
		}
	}
}

// runCell executes one assignment through the sweep machinery: a 1x1 grid
// with the coordinator's retry, timeout, and checkpoint parameters, the
// worker's shared snapshot dir and preempt flag, and a snapshot sink that
// ships every durable checkpoint to the coordinator.
func (w *Worker) runCell(ctx context.Context, pr pollResponse, a cellAssignment) {
	fail := func(err error) {
		w.postResult(resultRequest{Worker: w.opts.ID, Lease: w.lease.Load(),
			SweepID: pr.SweepID, Cell: a.Cell, Attempt: a.Attempt, Err: err.Error(), Audit: a.Audit})
	}
	var p *exp.Prepared
	var name string
	var err error
	if a.Bench != "" {
		name = a.Bench
		p, err = w.prep.prepareBench(a.Bench)
	} else {
		name = sourceName(pr.Source, pr.In0, pr.In1)
		p, err = w.prep.prepareSource(pr.Source, pr.In0, pr.In1)
	}
	if err != nil {
		fail(err)
		return
	}
	cfg, err := a.Config.Config()
	if err != nil {
		fail(err)
		return
	}
	key := exp.KeyOf(name, cfg)
	if len(a.Snapshot) > 0 && !a.Audit {
		// A previous assignee's shipped progress: store it (re-validated)
		// where the grid's resume path will find it. Audits never resume
		// from someone else's progress — they exist to reproduce it.
		if _, serr := snapshot.StoreOn(w.disk, exp.CellSnapshotPath(w.snapDir, key), a.Snapshot); serr != nil {
			w.logf("worker %s: cell %s: shipped snapshot rejected: %v", w.opts.ID, a.Cell, serr)
		}
	}
	var timeout time.Duration
	if pr.Timeout != "" {
		timeout, _ = time.ParseDuration(pr.Timeout)
	}
	var out exp.CellOutcome
	opts := exp.GridOptions{
		Workers:    1,
		Retries:    pr.Retries,
		RunTimeout: timeout,
		Disk:       w.opts.Disk,
		Observer:   func(o exp.CellOutcome) { out = o },
	}
	if pr.CheckpointEvery > 0 {
		// Audits keep the coordinator's checkpoint cadence — boundary drains
		// alter the engine trajectory, so byte-comparability requires it —
		// but checkpoint into the isolated audit dir and never ship: an
		// audit's progress is nobody's resume hint.
		opts.CheckpointEvery = pr.CheckpointEvery
		opts.SnapshotDir = w.snapDir
		opts.Preempt = &w.preempt
		if a.Audit {
			opts.SnapshotDir = w.auditDir
		} else {
			opts.SnapshotSink = func(_ exp.Key, encoded []byte) { w.ship(a.Cell, encoded) }
		}
	}
	_, err = exp.GridContext(ctx, []*exp.Prepared{p}, []machine.Config{cfg}, opts)
	switch {
	case out.Preempted:
		// Parked and shipped; the coordinator requeues it when we
		// deregister (or are declared dead).
	case out.Stats != nil:
		w.CellsRun.Add(1)
		st := out.Stats
		if w.opts.Mangle != nil {
			st = w.opts.Mangle(a.Cell, st)
		}
		res := resultRequest{Worker: w.opts.ID, Lease: w.lease.Load(),
			SweepID: pr.SweepID, Cell: a.Cell, Attempt: a.Attempt, Stats: st, Audit: a.Audit}
		if !w.opts.OmitDigests {
			res.Digest = exp.DigestStats(st)
		}
		w.postResult(res)
	case out.Err != nil:
		w.CellsRun.Add(1)
		fail(out.Err)
	default:
		if err != nil && ctx.Err() == nil {
			w.logf("worker %s: cell %s: %v", w.opts.ID, a.Cell, err)
		}
	}
}

// ShipError is the typed terminal failure of a snapshot ship: the bounded
// retry budget ran out (or the coordinator rejected the blob outright) and
// the snapshot was parked for a later re-ship. Status is the last HTTP
// status seen, 0 when every attempt failed at the transport.
type ShipError struct {
	Cell   string
	Tries  int
	Status int
	Err    error
}

func (e *ShipError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("server: ship %s: gave up after %d tries (last status %d)", e.Cell, e.Tries, e.Status)
	}
	return fmt.Sprintf("server: ship %s: gave up after %d tries: %v", e.Cell, e.Tries, e.Err)
}

func (e *ShipError) Unwrap() error { return e.Err }

// shipMaxTries bounds one ship's delivery attempts; the backoff between
// them doubles from 50ms and caps at 1s, so a full budget costs under two
// seconds of waiting — short enough to run inline from the snapshot sink.
const shipMaxTries = 5

// ship PUTs one encoded snapshot to the coordinator, retrying transient
// failures with capped exponential backoff. A terminal failure returns a
// *ShipError and parks the snapshot so the poll loop (and the drain) can
// re-ship it: a lost checkpoint only costs resume progress, but there is no
// reason to lose one to a coordinator restart that a later retry outlives.
func (w *Worker) ship(cellID string, encoded []byte) error {
	backoff := 50 * time.Millisecond
	var lastErr error
	var lastStatus int
	tries := 0
	for try := 1; try <= shipMaxTries; try++ {
		if try > 1 {
			shipRetries.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		tries = try
		status, err := w.shipOnce(cellID, encoded)
		if err == nil && status == http.StatusOK {
			return nil
		}
		lastErr, lastStatus = err, status
		if status == http.StatusBadRequest {
			// The coordinator rejected the bytes themselves (bad cell id, CRC
			// mismatch from a transit tear): resending the same blob cannot
			// succeed, but the NEXT checkpoint of this cell might, so park.
			break
		}
	}
	serr := &ShipError{Cell: cellID, Tries: tries, Status: lastStatus, Err: lastErr}
	w.park(cellID, encoded)
	w.logf("worker %s: %v (snapshot parked for re-ship)", w.opts.ID, serr)
	return serr
}

func (w *Worker) shipOnce(cellID string, encoded []byte) (int, error) {
	req, err := http.NewRequest("PUT", w.opts.Coordinator+"/fabric/snapshot/"+cellID, bytes.NewReader(encoded))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	// Identify the shipper: a snapshot that fails coordinator-side
	// validation (CRC tear, bitrot) earns this worker an integrity strike.
	req.Header.Set("X-Fgpsim-Worker", w.opts.ID)
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("server: ship %s: coordinator said %d", cellID, resp.StatusCode)
	}
	return resp.StatusCode, nil
}

// park stows a terminally unshipped snapshot, newest bytes per cell.
func (w *Worker) park(cellID string, encoded []byte) {
	w.parkedMu.Lock()
	if w.parked == nil {
		w.parked = make(map[string][]byte)
	}
	w.parked[cellID] = encoded
	w.parkedMu.Unlock()
}

// reshipParked drains the parked set and runs each snapshot through a full
// ship budget again; ship re-parks whatever still fails. A newer checkpoint
// of the same cell shipped in the meantime overwrites the coordinator's
// copy regardless of order — snapshots are resume hints, and the attempt
// stamps on results keep a stale hint from ever corrupting a winner.
func (w *Worker) reshipParked() {
	w.parkedMu.Lock()
	batch := w.parked
	w.parked = nil
	w.parkedMu.Unlock()
	for cell, encoded := range batch {
		w.ship(cell, encoded)
	}
}

// reshipParkedAsync is the poll loop's entry: one re-ship pass at a time,
// off the loop's goroutine so a slow coordinator cannot stall polling.
func (w *Worker) reshipParkedAsync() {
	w.parkedMu.Lock()
	empty := len(w.parked) == 0
	w.parkedMu.Unlock()
	if empty || !w.reshipInFlight.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer w.reshipInFlight.Store(false)
		w.reshipParked()
	}()
}

// postResult delivers one settled cell, retrying with backoff until the
// coordinator acknowledges it (200), rejects it (404 — the sweep finished
// or the coordinator restarted past it; 400 — the digest gate refused it),
// or a bounded retry budget runs out. Delivery runs on the background
// context: results must still flow during a graceful drain.
//
// The request is marshaled exactly once and the same bytes are resent on
// every retry: the embedded digest stays valid across attempts, and a
// duplicate delivery is a true byte-for-byte duplicate. (Results are
// accepted regardless of lease, so there is no per-attempt lease restamp
// to force a re-marshal either.)
func (w *Worker) postResult(res resultRequest) {
	res.Lease = w.lease.Load()
	body, err := json.Marshal(res)
	if err != nil {
		w.logf("worker %s: result %s unmarshalable: %v", w.opts.ID, res.Cell, err)
		return
	}
	backoff := 100 * time.Millisecond
	for tries := 0; tries < 30; tries++ {
		status, err := w.postRaw(context.Background(), "/fabric/result", body)
		if err == nil && status == http.StatusOK {
			return
		}
		if status == http.StatusNotFound || status == http.StatusBadRequest {
			w.logf("worker %s: result %s dropped: %v", w.opts.ID, res.Cell, err)
			return
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	w.logf("worker %s: result %s undeliverable; giving up", w.opts.ID, res.Cell)
}

// postRaw POSTs pre-marshaled JSON. The caller's bytes are never touched,
// so every retry through it is byte-identical to the first attempt.
func (w *Worker) postRaw(ctx context.Context, path string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, fmt.Errorf("server: POST %s: %d %s", path, resp.StatusCode, e.Error)
	}
	return resp.StatusCode, nil
}

func (w *Worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		var resp registerResponse
		err := w.rawJSON(ctx, "POST", "/fabric/register", registerRequest{Worker: w.opts.ID}, &resp, nil)
		if err == nil {
			w.lease.Store(resp.Lease)
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("server: worker %s never registered: %w", w.opts.ID, err)
		}
		if !sleepCtx(ctx, backoff) {
			return fmt.Errorf("server: worker %s never registered: %w", w.opts.ID, err)
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (w *Worker) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	w.rawJSON(ctx, "POST", "/fabric/deregister",
		heartbeatRequest{Worker: w.opts.ID, Lease: w.lease.Load()}, nil, nil)
}

// doJSON is rawJSON plus the lease-renewal convention: 410 Gone means the
// coordinator (possibly a restarted one) no longer honors our lease, so
// re-register and retry once with the fresh lease.
func (w *Worker) doJSON(ctx context.Context, method, path string, body, out any) error {
	var status int
	err := w.doJSONStatus(ctx, method, path, body, out, &status)
	return err
}

func (w *Worker) doJSONStatus(ctx context.Context, method, path string, body, out any, status *int) error {
	err := w.rawJSON(ctx, method, path, body, out, status)
	if err != nil && *status == http.StatusGone {
		if rerr := w.register(ctx); rerr != nil {
			return rerr
		}
		body = w.restamp(body)
		return w.rawJSON(ctx, method, path, body, out, status)
	}
	return err
}

// restamp rewrites a request's lease after a re-registration.
func (w *Worker) restamp(body any) any {
	lease := w.lease.Load()
	switch b := body.(type) {
	case pollRequest:
		b.Lease = lease
		return b
	case heartbeatRequest:
		b.Lease = lease
		return b
	}
	return body
}

func (w *Worker) rawJSON(ctx context.Context, method, path string, body, out any, status *int) error {
	if status == nil {
		status = new(int)
	}
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, method, w.opts.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	*status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("server: %s %s: %d %s", method, path, resp.StatusCode, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
