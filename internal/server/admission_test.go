package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLimiterWeightedFIFO(t *testing.T) {
	l := newLimiter(4)
	ctx := context.Background()
	if err := l.acquire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	// A wide waiter at the head must not be starved by narrow latecomers.
	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.acquire(ctx, 4) // needs everything; queues first
		order <- 4
		l.release(4)
	}()
	// Give the wide waiter time to enqueue.
	waitFor(t, func() bool { l.mu.Lock(); defer l.mu.Unlock(); return l.waiters.Len() == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.acquire(ctx, 1)
		order <- 1
		l.release(1)
	}()
	waitFor(t, func() bool { l.mu.Lock(); defer l.mu.Unlock(); return l.waiters.Len() == 2 })
	l.release(3)
	wg.Wait()
	if first := <-order; first != 4 {
		t.Fatalf("narrow waiter overtook the wide head of the queue (got %d first)", first)
	}
	if l.inUse() != 0 {
		t.Fatalf("leaked weight: %d", l.inUse())
	}
}

func TestLimiterAcquireCanceled(t *testing.T) {
	l := newLimiter(1)
	if err := l.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- l.acquire(ctx, 1) }()
	waitFor(t, func() bool { l.mu.Lock(); defer l.mu.Unlock(); return l.waiters.Len() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire returned %v, want context.Canceled", err)
	}
	l.release(1)
	// The canceled waiter must have left the queue; capacity is free again.
	if err := l.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	l.release(1)
}

func TestAdmissionSheds(t *testing.T) {
	a := newAdmission(2, 1)
	// Fill the limiter so reserved tickets stay queued.
	if err := a.lim.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	t1, err := a.reserve()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.reserve()
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.reserve()
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("third reserve: got %v, want *OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("OverloadError without a Retry-After hint: %+v", oe)
	}
	t1.abandon()
	t2.abandon()
	if a.queued() != 0 {
		t.Fatalf("backlog leaked: %d", a.queued())
	}
	// With slots free again, reserve succeeds.
	t3, err := a.reserve()
	if err != nil {
		t.Fatal(err)
	}
	t3.abandon()
	a.lim.release(1)
}

func TestTicketAcquireClampsWeight(t *testing.T) {
	a := newAdmission(4, 2)
	tk, err := a.reserve()
	if err != nil {
		t.Fatal(err)
	}
	release, err := tk.acquire(context.Background(), 1000) // clamped to capacity 2
	if err != nil {
		t.Fatal(err)
	}
	if got := a.lim.inUse(); got != 2 {
		t.Fatalf("inUse = %d, want clamp to capacity 2", got)
	}
	release()
	if got := a.lim.inUse(); got != 0 {
		t.Fatalf("release leaked weight: %d", got)
	}
}

// waitFor polls a condition for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
