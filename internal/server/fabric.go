package server

import (
	"fgpsim/internal/stats"
)

// The fabric is the distributed form of the sweep harness: one coordinator
// (a Server started with Config.Coordinator) owning the grid, and N workers
// (Worker, worker.go) pulling cells from it over HTTP. The protocol is
// deliberately pull-shaped — workers register, heartbeat, poll for batches
// of cells, and post results — so the coordinator never needs to reach
// into a worker's network, and a worker behind the worst kind of partition
// simply looks dead and has its cells requeued. Every message that matters
// is idempotent or deduplicated: registration supersedes atomically
// (registry.go), results merge under the journal's deterministic
// (attempt, fingerprint) order (exp/journal.go), and shipped snapshots are
// validated before they touch disk (snapshot/ship.go). See DESIGN.md §15.
//
// This file is the wire vocabulary; the coordinator half lives in
// coordinator.go/registry.go/stealing.go and the worker half in worker.go.

// registerRequest is POST /fabric/register: a worker announcing itself
// under a stable identity. Re-registering the same identity supersedes the
// previous registration (its lease dies, its in-flight cells requeue).
type registerRequest struct {
	Worker string `json:"worker"`
}

// registerResponse carries the lease epoch the worker must present on
// every subsequent request. A stale lease gets 410 Gone, telling the
// worker to re-register.
type registerResponse struct {
	Lease uint64 `json:"lease"`
}

// heartbeatRequest is POST /fabric/heartbeat, the worker's liveness beacon
// between polls. Polls and result posts count as beats too; the explicit
// heartbeat only matters while every slot is busy simulating.
type heartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
}

// pollRequest is POST /fabric/poll: give me up to Max cells.
type pollRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
	Max    int    `json:"max"`
}

// pollResponse is one batch of assignments, all from one sweep. Source and
// the input streams ride along so a worker can prepare an ad-hoc program
// without any side channel; benchmark cells name their bench per cell.
type pollResponse struct {
	SweepID string `json:"sweep_id,omitempty"`
	Source  string `json:"source,omitempty"`
	In0     string `json:"in0,omitempty"`
	In1     string `json:"in1,omitempty"`
	Retries int    `json:"retries,omitempty"`
	Timeout string `json:"timeout,omitempty"`
	// CheckpointEvery is the coordinator's durable-checkpoint cadence.
	// Workers must run cells at exactly this cadence: checkpoint boundaries
	// drain the engine identically everywhere, which is part of why a
	// fabric merge is byte-identical to a single-node run of the same
	// configuration.
	CheckpointEvery int64            `json:"checkpoint_every,omitempty"`
	Cells           []cellAssignment `json:"cells,omitempty"`
	// WaitMS is the coordinator's backoff hint when Cells is empty.
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// cellAssignment is one grid cell handed to a worker.
type cellAssignment struct {
	// Cell is the canonical cell identity (exp.CellID) the worker echoes
	// back with its result.
	Cell   string     `json:"cell"`
	Bench  string     `json:"bench,omitempty"` // empty = the sweep's Source program
	Config ConfigSpec `json:"config"`
	// Attempt is the coordinator's assignment ordinal for this cell; it
	// stamps the result's journal record so duplicate deliveries from raced
	// assignments merge deterministically.
	Attempt int `json:"attempt"`
	// Snapshot, when present, is an encoded mid-run snapshot shipped by a
	// previous assignee (possibly one that is now dead); the worker stores
	// it locally before running so the cell resumes instead of restarting.
	Snapshot []byte `json:"snapshot,omitempty"`
	// Audit marks a re-execution audit of an already-settled cell
	// (DESIGN.md §17): the worker must run it from scratch — same
	// checkpoint cadence, but no resume from snapshots — and echo the flag
	// back so the coordinator compares digests instead of settling the
	// cell again.
	Audit bool `json:"audit,omitempty"`
}

// resultRequest is POST /fabric/result: one settled cell. Exactly one of
// Stats (success) or Err (quarantined failure after the worker's retries)
// is set. Results are accepted regardless of lease: a result computed by a
// superseded or presumed-dead worker is still a correct result, and the
// deterministic merge absorbs the duplicate.
type resultRequest struct {
	Worker  string     `json:"worker"`
	Lease   uint64     `json:"lease"`
	SweepID string     `json:"sweep_id"`
	Cell    string     `json:"cell"`
	Attempt int        `json:"attempt"`
	Stats   *stats.Run `json:"stats,omitempty"`
	Err     string     `json:"err,omitempty"`
	// Digest is exp.DigestStats over Stats, computed by the worker at run
	// time. The coordinator recomputes it on arrival: a mismatch means the
	// result was corrupted in flight (or the worker lied about its own
	// bytes) and is rejected with a strike instead of journaled.
	Digest string `json:"digest,omitempty"`
	// Audit echoes cellAssignment.Audit: this result is an audit
	// re-execution to compare against the settled winner, not a settlement.
	Audit bool `json:"audit,omitempty"`
}

// assignRecord is one line of the coordinator's fsync'd assignment
// journal: the batch of cells handed out in one poll response, with their
// attempt ordinals. On a coordinator crash-and-restart the replay restores
// each cell's attempt high-water mark, so post-restart assignments keep
// superseding pre-restart ones and late results from workers that never
// noticed the crash still merge in the right order.
type assignRecord struct {
	Op     string       `json:"op"` // "assign"
	Worker string       `json:"worker"`
	Cells  []assignCell `json:"cells"`
}

type assignCell struct {
	ID      string `json:"id"`
	Attempt int    `json:"attempt"`
}
