package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The watchdog turns "this run stopped making progress" into a typed,
// attributable kill. Every in-flight simulation registers a heartbeat
// counter that the engines bump every few thousand simulated cycles
// (core.Limits.Heartbeat); the watchdog samples the counters on a fixed
// interval and cancels — with a *StuckRunError as the context cause — any
// run whose counter sits still for the stall window. This is deliberately
// progress-based rather than deadline-based: a big sweep may legitimately
// run for hours, but a live engine always keeps beating, so a silent
// counter is the one reliable signature of a wedged run.

// StuckRunError reports a run killed by the watchdog.
type StuckRunError struct {
	ID    string        // request or job id
	Beats int64         // heartbeat count at which progress stopped
	Stall time.Duration // how long the counter sat still before the kill
}

func (e *StuckRunError) Error() string {
	return fmt.Sprintf("server: run %s stuck: no engine progress for %s (heartbeat %d)", e.ID, e.Stall, e.Beats)
}

type watchdog struct {
	interval time.Duration
	stall    time.Duration
	kills    atomic.Int64

	mu    sync.Mutex
	items map[int64]*watchItem
	keyed map[string]int64 // identity -> items key, for watchKeyed re-arm
	next  int64

	stop chan struct{}
	done chan struct{}
}

type watchItem struct {
	id     string
	beat   *atomic.Int64
	cancel context.CancelCauseFunc
	last   int64
	since  time.Time

	// Preemption fields (nil preempt = kill-only item). A preemptable run
	// that is still beating but has held its slot past preemptAfter while
	// other work is queued is asked — once — to stop at its next checkpoint
	// boundary. Preemption is cooperative and distinct from the stall kill:
	// a stalled run cannot reach a checkpoint, so it is still killed.
	preempt      *atomic.Bool
	preemptAfter time.Duration
	queued       func() int64
	started      time.Time
	preempted    bool

	// revoked is set when the registration is withdrawn — unwatch, or a
	// watchKeyed re-arm superseding it. A stall verdict already collected
	// for a revoked item must not fire: the identity it would kill now
	// belongs to a newer registration (a worker that re-registered after a
	// restart), and cancelling it would kill the successor by mistake.
	revoked atomic.Bool
}

func newWatchdog(interval, stall time.Duration) *watchdog {
	if interval <= 0 {
		interval = time.Second
	}
	if stall <= 0 {
		stall = 30 * time.Second
	}
	return &watchdog{
		interval: interval,
		stall:    stall,
		items:    make(map[int64]*watchItem),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (w *watchdog) start() { go w.loop() }

// shutdown stops the sampling loop; registered runs are left alone.
func (w *watchdog) shutdown() {
	close(w.stop)
	<-w.done
}

// watch registers a run. beat must be the counter handed to the engines;
// cancel is invoked with a *StuckRunError cause on a stall verdict. The
// returned func deregisters (idempotent, safe after a kill).
func (w *watchdog) watch(id string, beat *atomic.Int64, cancel context.CancelCauseFunc) (unwatch func()) {
	return w.register(&watchItem{id: id, beat: beat, cancel: cancel})
}

// watchPreemptable registers a run that, beyond the stall kill, may be
// asked to surrender its slot: once it has run for preemptAfter and
// queued() reports waiting work, preempt is set (exactly once) so the
// engines park a snapshot and return at their next quiescent boundary.
func (w *watchdog) watchPreemptable(id string, beat *atomic.Int64, cancel context.CancelCauseFunc,
	preempt *atomic.Bool, preemptAfter time.Duration, queued func() int64) (unwatch func()) {
	return w.register(&watchItem{
		id: id, beat: beat, cancel: cancel,
		preempt: preempt, preemptAfter: preemptAfter, queued: queued,
	})
}

// watchKeyed registers a run under a stable identity, atomically
// superseding any live registration with the same key. This is the fabric
// registry's liveness primitive: a worker that crashes and re-registers
// under the same identity must re-arm its staleness clock in one step —
// the old registration's pending verdicts are revoked before the new one
// becomes visible, so there is no window in which the predecessor's stall
// timer can kill (and requeue the cells of) its own successor. Plain
// watch() assumed each registration was a distinct single-process run and
// had no such identity; watchKeyed is what makes restart races safe.
func (w *watchdog) watchKeyed(key string, beat *atomic.Int64, cancel context.CancelCauseFunc) (unwatch func()) {
	it := &watchItem{id: key, beat: beat, cancel: cancel}
	now := time.Now()
	it.last = it.beat.Load()
	it.since = now
	it.started = now
	w.mu.Lock()
	if w.keyed == nil {
		w.keyed = make(map[string]int64)
	}
	if prevNum, ok := w.keyed[key]; ok {
		if prev := w.items[prevNum]; prev != nil {
			prev.revoked.Store(true)
			delete(w.items, prevNum)
		}
	}
	w.next++
	num := w.next
	w.items[num] = it
	w.keyed[key] = num
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		it.revoked.Store(true)
		delete(w.items, num)
		if w.keyed[key] == num {
			delete(w.keyed, key)
		}
		w.mu.Unlock()
	}
}

func (w *watchdog) register(it *watchItem) (unwatch func()) {
	now := time.Now()
	it.last = it.beat.Load()
	it.since = now
	it.started = now
	w.mu.Lock()
	w.next++
	key := w.next
	w.items[key] = it
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		it.revoked.Store(true)
		delete(w.items, key)
		w.mu.Unlock()
	}
}

func (w *watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			w.sweep(now)
		}
	}
}

// sweep samples every watched counter once.
func (w *watchdog) sweep(now time.Time) {
	w.mu.Lock()
	var killed []*watchItem
	for key, it := range w.items {
		cur := it.beat.Load()
		if cur != it.last {
			it.last, it.since = cur, now
		} else if now.Sub(it.since) >= w.stall {
			killed = append(killed, it)
			delete(w.items, key)
			if w.keyed[it.id] == key {
				delete(w.keyed, it.id)
			}
			continue
		}
		if it.preempt != nil && !it.preempted &&
			now.Sub(it.started) >= it.preemptAfter && it.queued() > 0 {
			it.preempted = true // one-shot: never re-preempt the same registration
			it.preempt.Store(true)
		}
	}
	w.mu.Unlock()
	// Cancel outside the lock: cancellation can trigger arbitrary callbacks.
	// Re-check revocation right before firing — a keyed re-arm racing this
	// sweep may have superseded the item after it was collected.
	for _, it := range killed {
		if it.revoked.Load() {
			continue
		}
		w.kills.Add(1)
		it.cancel(&StuckRunError{ID: it.id, Beats: it.last, Stall: now.Sub(it.since)})
	}
}
