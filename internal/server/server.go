// Package server turns the one-shot simulation harness into a long-lived
// service: an HTTP daemon (cmd/simd) that accepts simulation and sweep
// requests, runs them through the existing exp.Prepared/exp.GridContext
// pipeline, and is built to stay up under the failure modes a
// production-scale deployment actually meets — overload (bounded admission
// queue with explicit 429 shedding), runaway requests (per-request
// deadlines propagated into core.RunContext), wedged engines (a
// cycle-progress watchdog that kills runs whose heartbeat counter stops,
// with a typed *StuckRunError), corrupt cells (the sweep harness's panic
// quarantine and retries), process death (an fsync'd JSON-lines request
// journal from which unfinished sweeps resume on restart), and deploys
// (graceful drain on SIGTERM: stop admitting, finish or journal in-flight
// work, exit 0). See DESIGN.md §11.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/core"
	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

// errDraining is the cancellation cause used when a drain deadline forces
// in-flight work to stop.
var errDraining = errors.New("server: draining")

// statusClientClosedRequest is nginx's convention for "the client went
// away before we could answer"; there is no standard code for it.
const statusClientClosedRequest = 499

// Config sizes the daemon's robustness machinery. Zero values select the
// documented defaults.
type Config struct {
	// QueueDepth bounds requests admitted but not yet executing; beyond it
	// the server sheds with 429 (default 64).
	QueueDepth int
	// Concurrency is the weighted limiter's capacity in worker units
	// (default GOMAXPROCS). A /run costs 1; a sweep costs its cell count,
	// clamped to the capacity — its cells run on that many workers.
	Concurrency int
	// DefaultTimeout applies to /run requests that name no timeout;
	// MaxTimeout caps what they may ask for (defaults 2m / 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// WatchdogInterval is the heartbeat sampling period (default 1s);
	// WatchdogStall is how long a counter may sit still before the run is
	// killed as stuck (default 30s).
	WatchdogInterval time.Duration
	WatchdogStall    time.Duration
	// JournalDir, when non-empty, holds the fsync'd request journal, the
	// per-sweep cell journals, and the cell snapshot directory; unfinished
	// sweeps found there are resumed on Start. Empty disables persistence
	// (drains then lose interrupted sweeps).
	JournalDir string
	// MaxBody caps request bodies (default 8 MiB).
	MaxBody int64
	// CheckpointEvery, when positive and JournalDir is set, arms durable
	// mid-run checkpoints for sweep cells: every N simulated cycles each
	// cell parks a snapshot under JournalDir/snapshots, so an interrupted
	// sweep (drain, crash, preemption) resumes mid-cell instead of
	// re-simulating from cycle 0.
	CheckpointEvery int64
	// PreemptAfter, when positive and checkpoints are armed, upgrades the
	// watchdog from kill-only to preempt-and-requeue: a sweep that is still
	// making progress but has held the limiter longer than this while other
	// work is queued is asked to stop at its next checkpoint boundary, its
	// cells snapshot themselves, and the job is requeued behind the waiting
	// work. Stalled (non-beating) runs are still killed, never requeued.
	PreemptAfter time.Duration
	// Coordinator switches the server into fabric-coordinator mode: sweeps
	// are sharded across registered workers (POST /fabric/*) instead of
	// simulated in-process. /run still simulates locally. See DESIGN.md §15.
	Coordinator bool
	// WorkerDeadAfter is how long a registered worker's request counter may
	// sit still before the liveness watchdog declares it dead and requeues
	// its cells (default 10s, coordinator only).
	WorkerDeadAfter time.Duration
	// StealAfter is how stale an in-flight assignment must be before an
	// idle worker may duplicate it (default 5s, coordinator only).
	StealAfter time.Duration
	// AuditRate is the fraction of completed fabric cells re-executed on a
	// different worker and byte-compared against the recorded winner
	// (DESIGN.md §17). 0 disables audits (the production default until
	// opted in); the sample is a deterministic hash of (sweep, cell).
	AuditRate float64
	// QuarantineStrikes is how many integrity strikes (digest mismatches,
	// lost audits, corrupt snapshot ships) quarantine a worker's lease
	// (default 3, coordinator only).
	QuarantineStrikes int
	// ScrubInterval, when positive and JournalDir is set, arms the
	// background scrubber: a low-priority loop re-verifying on-disk cell
	// journals and snapshots, repairing snapshots from their .prev copies
	// and quarantining what cannot be repaired. 0 disables.
	ScrubInterval time.Duration
	// Disk, when non-nil, is the filesystem every journal and snapshot
	// operation goes through (nil = the real one). The chaos harness
	// substitutes a fault-injecting chaos.FS here; production never sets it.
	Disk chaos.Disk
}

// disk resolves Config.Disk to the real filesystem when unset.
func (c Config) disk() chaos.Disk {
	if c.Disk != nil {
		return c.Disk
	}
	return chaos.OS{}
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = time.Second
	}
	if c.WatchdogStall <= 0 {
		c.WatchdogStall = 30 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
	if c.WorkerDeadAfter <= 0 {
		c.WorkerDeadAfter = 10 * time.Second
	}
	if c.StealAfter <= 0 {
		c.StealAfter = 5 * time.Second
	}
	if c.QuarantineStrikes <= 0 {
		c.QuarantineStrikes = 3
	}
	return c
}

// Server is the simulation service.
type Server struct {
	cfg   Config
	admit *admission
	wd    *watchdog
	met   *metrics
	prep  *prepCache
	coord *coordinator // non-nil in coordinator mode

	// reqJournal is nil when persistence is off. reqJMu guards the pointer
	// for the poison repair path (appendRequest), exactly like
	// fabricJob.jmu guards the sweep journals.
	reqJMu     sync.Mutex
	reqJClosed bool
	reqJournal *exp.Journal

	// baseCtx parents every sweep (and force-cancels /run work on drain
	// timeout); baseStop cancels it with errDraining.
	baseCtx  context.Context
	baseStop context.CancelCauseFunc

	draining  atomic.Bool
	drainOnce sync.Once
	inflight  atomic.Int64
	wg        sync.WaitGroup

	// scrubStop ends the background scrubber (scrub.go); nil when the
	// scrubber is disarmed.
	scrubStop chan struct{}

	mu        sync.Mutex
	jobs      map[string]*job
	seq       int64
	recovered []journalRecord
}

// New builds a server and, when persistence is configured, replays the
// request journal to find sweeps a previous process accepted but never
// settled. Call Start to begin background work (watchdog, resumed sweeps).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		admit: newAdmission(cfg.QueueDepth, cfg.Concurrency),
		wd:    newWatchdog(cfg.WatchdogInterval, cfg.WatchdogStall),
		met:   &metrics{},
		prep:  newPrepCache(),
		jobs:  make(map[string]*job),
	}
	s.baseCtx, s.baseStop = context.WithCancelCause(context.Background())
	if cfg.Coordinator {
		coord, err := newCoordinator(s)
		if err != nil {
			return nil, fmt.Errorf("server: coordinator: %w", err)
		}
		s.coord = coord
	}
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return nil, err
		}
		if cfg.CheckpointEvery > 0 {
			if err := os.MkdirAll(s.snapshotDir(), 0o755); err != nil {
				return nil, err
			}
		}
		path := s.requestJournalPath()
		recs, err := pendingJobs(cfg.disk(), path)
		if err != nil {
			return nil, fmt.Errorf("server: request journal: %w", err)
		}
		s.recovered = recs
		s.reqJournal, err = exp.OpenJournalOn(cfg.disk(), path)
		if err != nil {
			return nil, fmt.Errorf("server: request journal: %w", err)
		}
	}
	return s, nil
}

func (s *Server) requestJournalPath() string {
	return filepath.Join(s.cfg.JournalDir, "requests.journal")
}

func (s *Server) cellJournalPath(id string) string {
	if s.cfg.JournalDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.JournalDir, "sweep-"+id+".cells")
}

// snapshotDir is where sweep cells park mid-run snapshots. It is shared
// across jobs: cell snapshot files are named by a hash of the full cell
// key and guarded by a run fingerprint, so an unrelated job can never
// resume from them, while a re-submitted identical sweep can.
func (s *Server) snapshotDir() string {
	return filepath.Join(s.cfg.JournalDir, "snapshots")
}

// checkpointsArmed reports whether sweep cells run with durable
// checkpoints.
func (s *Server) checkpointsArmed() bool {
	return s.cfg.CheckpointEvery > 0 && s.cfg.JournalDir != ""
}

// Start launches the watchdog and re-enqueues journal-recovered sweeps.
// Recovered sweeps bypass the shed bound — they were admitted by a
// previous process and the journal's whole point is not to drop them —
// but they share the limiter with new work, so a restart under load
// degrades gracefully instead of stampeding.
func (s *Server) Start() {
	s.wd.start()
	if s.coord != nil {
		s.coord.wd.start()
	}
	if s.cfg.ScrubInterval > 0 && s.cfg.JournalDir != "" {
		s.scrubStop = make(chan struct{})
		s.wg.Add(1)
		go s.scrubLoop()
	}
	for _, rec := range s.recovered {
		j := newJob(rec.ID, *rec.Spec)
		s.addJob(j)
		s.met.jobsResumed.Add(1)
		if s.coord != nil {
			// Rebuild the fabric job from its cell and assignment journals:
			// completed cells are restored, unfinished ones requeue, and the
			// attempt high-water mark keeps merging deterministic against
			// late results from workers that never noticed the crash.
			if err := s.coord.start(j, true); err != nil {
				j.mu.Lock()
				j.state = jobFailed
				j.errText = err.Error()
				j.mu.Unlock()
			}
			continue
		}
		t := s.admit.reserveForced()
		s.wg.Add(1)
		go s.runSweep(j, t)
	}
	s.recovered = nil
}

// Drain gracefully shuts the server down: stop admitting (readyz flips to
// 503, new work is rejected), let in-flight work finish, and if ctx
// expires first force-cancel what remains — sweeps have journaled every
// completed cell, so nothing settled is lost and the interrupted sweeps
// resume on the next boot. Always returns nil after the journal is closed,
// so a drain-triggered exit is exit 0 by construction. Idempotent: extra
// calls (a second SIGTERM) wait for the first drain and return nil.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() {
		if s.scrubStop != nil {
			close(s.scrubStop)
		}
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.baseStop(errDraining)
			<-done
		}
		s.wd.shutdown()
		if s.coord != nil {
			s.coord.shutdown()
		}
		s.reqJMu.Lock()
		s.reqJClosed = true
		if s.reqJournal != nil {
			s.reqJournal.Close()
		}
		s.reqJMu.Unlock()
	})
	return nil
}

// appendRequest appends one record to the request journal, repairing a
// poisoned journal once: close it, reopen the same path, retry the append.
// Sound for the same reason fabricJob.appendRepairing is — per-append
// fsync means only the failing append's durability is unknown, and the
// retry re-lands exactly that record through a fresh descriptor. Returns
// nil when persistence is off.
func (s *Server) appendRequest(rec journalRecord) error {
	s.reqJMu.Lock()
	j := s.reqJournal
	s.reqJMu.Unlock()
	if j == nil {
		return nil
	}
	err := j.Append(rec)
	var pe *exp.PoisonedJournalError
	if !errors.As(err, &pe) {
		return err
	}
	fresh, oerr := exp.OpenJournalOn(s.cfg.disk(), pe.Path)
	if oerr != nil {
		return err
	}
	s.reqJMu.Lock()
	if s.reqJClosed {
		s.reqJMu.Unlock()
		fresh.Close()
		return err
	}
	if s.reqJournal == j {
		s.reqJournal = fresh
		j.Close() // returns the poison error; the state is already on disk
	} else {
		fresh.Close() // a racing append repaired first; use its journal
	}
	j = s.reqJournal
	s.reqJMu.Unlock()
	return j.Append(rec)
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /sweep/{id}", s.handleSweepStatus)
	if s.coord != nil {
		s.coord.routes(mux)
	}
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	live := 0
	if s.coord != nil {
		live = s.coord.workersLive()
	}
	writeJSON(w, http.StatusOK, s.met.snapshot(s.admit.queued(), int(s.inflight.Load()), live))
}

// decodeBody decodes a JSON request body under the size cap.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) shed(w http.ResponseWriter, oe *OverloadError) {
	s.met.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int(oe.RetryAfter.Seconds())))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":       "overloaded",
		"detail":      oe.Error(),
		"retry_after": oe.RetryAfter.Seconds(),
	})
}

// ---------- POST /run ----------

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "draining"})
		return
	}
	var req RunRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	cfg, err := req.Config.Config()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	timeout, err := s.runTimeout(req.Timeout)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if (req.Bench == "") == (req.Source == "") {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "exactly one of bench or source is required"})
		return
	}

	t, rerr := s.admit.reserve()
	if rerr != nil {
		var oe *OverloadError
		if errors.As(rerr, &oe) {
			s.shed(w, oe)
			return
		}
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": rerr.Error()})
		return
	}
	release, err := t.acquire(r.Context(), 1)
	if err != nil {
		// The client gave up while queued.
		writeJSON(w, statusClientClosedRequest, map[string]any{"error": "client closed request while queued"})
		return
	}
	defer release()
	s.wg.Add(1)
	defer s.wg.Done()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	p, err := s.prepareRun(&req)
	if err != nil {
		s.met.runsFailed.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("run-%d", s.seq)
	s.mu.Unlock()

	start := time.Now()
	st, ctx, err := s.execute(r.Context(), id, p, cfg, timeout)
	elapsed := time.Since(start)
	s.met.latency.Observe(elapsed)
	if err != nil {
		s.met.runsFailed.Add(1)
		status, kind := s.classifyRunError(ctx, err)
		writeJSON(w, status, map[string]any{"error": kind, "detail": err.Error()})
		return
	}
	s.met.runsOK.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"key":        keyString(exp.KeyOf(p.Bench.Name, cfg)),
		"elapsed_us": elapsed.Microseconds(),
		"stats":      st,
	})
}

func (s *Server) runTimeout(raw string) (time.Duration, error) {
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout: %w", err)
	}
	if d <= 0 || d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout, nil
	}
	return d, nil
}

func (s *Server) prepareRun(req *RunRequest) (*exp.Prepared, error) {
	if req.Bench != "" {
		return s.prep.prepareBench(req.Bench)
	}
	return s.prep.prepareSource(req.Source, req.In0, req.In1)
}

// execute runs one simulation under the full robustness surface: request
// deadline, drain force-cancel, and the stuck-run watchdog. It returns the
// context it ran under so callers can classify a cancellation by cause.
func (s *Server) execute(parent context.Context, id string, p *exp.Prepared, cfg machine.Config, timeout time.Duration) (*stats.Run, context.Context, error) {
	ctx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)
	// Propagate a drain force-cancel into this (client-derived) context.
	stopAfter := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	defer stopAfter()
	runCtx := ctx
	if timeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}
	var beat atomic.Int64
	unwatch := s.wd.watch(id, &beat, cancel)
	defer unwatch()
	st, err := p.RunContext(runCtx, cfg, core.Limits{Heartbeat: &beat})
	return st, runCtx, err
}

// classifyRunError maps a failed run to an HTTP status: the typed timeout,
// cancel, and stuck outcomes each get a distinct code.
func (s *Server) classifyRunError(ctx context.Context, err error) (int, string) {
	var canceled *core.CanceledError
	if !errors.As(err, &canceled) {
		return http.StatusInternalServerError, "simulation failed"
	}
	cause := context.Cause(ctx)
	var stuck *StuckRunError
	switch {
	case errors.As(cause, &stuck):
		s.met.watchdogKills.Add(1)
		return http.StatusInternalServerError, "stuck run killed by watchdog"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline exceeded"
	case errors.Is(cause, errDraining):
		return http.StatusServiceUnavailable, "draining"
	default:
		return statusClientClosedRequest, "canceled"
	}
}

// ---------- POST /sweep, GET /sweep/{id} ----------

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "draining"})
		return
	}
	var spec SweepSpec
	if err := s.decodeBody(w, r, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if err := spec.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	// A coordinator does not simulate in-process, so fabric sweeps skip the
	// compute limiter: admission pressure lives on the workers.
	var t *ticket
	if s.coord == nil {
		var rerr error
		t, rerr = s.admit.reserve()
		if rerr != nil {
			var oe *OverloadError
			if errors.As(rerr, &oe) {
				s.shed(w, oe)
				return
			}
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": rerr.Error()})
			return
		}
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j%x-%d", time.Now().UnixNano(), s.seq)
	s.mu.Unlock()
	// Journal the acceptance before acknowledging it: once the client has
	// a 202 the sweep must survive a crash.
	if err := s.appendRequest(journalRecord{Op: "accept", ID: id, Spec: &spec, SpecHash: specHash(&spec)}); err != nil {
		if t != nil {
			t.abandon()
		}
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": fmt.Sprintf("journal: %v", err)})
		return
	}
	j := newJob(id, spec)
	s.addJob(j)
	s.met.jobsAccepted.Add(1)
	if s.coord != nil {
		if err := s.coord.start(j, false); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
			return
		}
	} else {
		s.wg.Add(1)
		go s.runSweep(j, t)
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "cells": spec.cells()})
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown sweep id"})
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) addJob(j *job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
}

func (s *Server) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runSweep executes one accepted sweep in the background: wait for limiter
// weight, resolve the spec, and drive exp.GridContext with journaling,
// retries, quarantine, and the shared heartbeat. Terminal states are
// journaled as done; a drain interruption is deliberately NOT, so the next
// boot resumes the sweep from its cell journal.
func (s *Server) runSweep(j *job, t *ticket) {
	defer s.wg.Done()
	weight := j.Spec.cells()
	release, err := t.acquire(s.baseCtx, weight)
	if err != nil {
		j.setState(jobInterrupted)
		return
	}
	defer release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	j.setState(jobRunning)

	ctx, cancel := context.WithCancelCause(s.baseCtx)
	defer cancel(nil)
	var unwatch func()
	if s.checkpointsArmed() && s.cfg.PreemptAfter > 0 {
		unwatch = s.wd.watchPreemptable(j.ID, &j.beat, cancel, &j.preempt, s.cfg.PreemptAfter, s.admit.queued)
	} else {
		unwatch = s.wd.watch(j.ID, &j.beat, cancel)
	}
	defer unwatch()

	prepared, cfgs, err := s.resolveSweep(j.Spec)
	if err != nil {
		s.finishSweep(j, jobFailed, err)
		return
	}

	var cellTimeout time.Duration
	if j.Spec.Timeout != "" {
		cellTimeout, _ = time.ParseDuration(j.Spec.Timeout) // validated at accept
	}
	opts := exp.GridOptions{
		Workers:    s.admit.lim.clamp(weight),
		Retries:    j.Spec.Retries,
		RunTimeout: cellTimeout,
		Disk:       s.cfg.Disk,
		Journal:    s.cellJournalPath(j.ID),
		Limits:     core.Limits{Heartbeat: &j.beat},
		Progress:   j.setProgress,
		Observer: func(o exp.CellOutcome) {
			if o.Preempted {
				s.met.preempts.Add(1)
				return
			}
			s.met.observeCell(o.Attempts, o.Err == nil, o.Restored)
			if !o.Restored && o.Err == nil {
				s.met.latency.Observe(o.Duration)
			}
			if o.Err != nil {
				j.recordFailure(o.Err)
			}
		},
	}
	if s.checkpointsArmed() {
		opts.CheckpointEvery = s.cfg.CheckpointEvery
		opts.SnapshotDir = s.snapshotDir()
		opts.Preempt = &j.preempt
	}
	res, err := exp.GridContext(ctx, prepared, cfgs, opts)
	j.mu.Lock()
	for k, st := range res.Runs {
		j.results[keyString(k)] = st
	}
	j.mu.Unlock()

	switch {
	case err == nil:
		s.finishSweep(j, jobDone, nil)
	case isCellError(err):
		// Quarantined cell failures: the sweep itself is settled.
		s.finishSweep(j, jobDone, nil)
	case isPreempted(err):
		if s.draining.Load() {
			// Preempted into a drain: leave the accept record standing so the
			// next boot resumes the sweep from its snapshots and cell journal.
			j.mu.Lock()
			j.state = jobInterrupted
			j.errText = "interrupted by drain; resumes on restart"
			j.mu.Unlock()
			return
		}
		// Requeue behind the work that triggered the preemption. The flag is
		// cleared first — the rerun starts a fresh watchdog registration with
		// its own PreemptAfter grace, so a just-resumed job is not instantly
		// re-preempted by the still-set flag.
		j.preempt.Store(false)
		j.mu.Lock()
		j.state = jobQueued
		j.requeues++
		j.mu.Unlock()
		s.met.jobsRequeued.Add(1)
		s.wg.Add(1)
		go s.runSweep(j, s.admit.reserveForced())
	default:
		cause := context.Cause(ctx)
		var stuck *StuckRunError
		if errors.As(cause, &stuck) {
			s.met.watchdogKills.Add(1)
			// A stuck sweep is settled (journaled done), not resumed: a
			// deterministic wedge would otherwise kill-loop every boot.
			s.finishSweep(j, jobStuck, stuck)
			return
		}
		// Drain or base shutdown: leave the journal's accept record
		// standing so the sweep resumes on the next boot.
		j.mu.Lock()
		j.state = jobInterrupted
		j.errText = "interrupted by drain; resumes on restart"
		j.mu.Unlock()
	}
}

func isCellError(err error) bool {
	var ce *exp.CellError
	return errors.As(err, &ce)
}

func isPreempted(err error) bool {
	var pe *exp.SweepPreemptedError
	return errors.As(err, &pe)
}

// finishSweep records a terminal state in the job and the request journal.
func (s *Server) finishSweep(j *job, state string, err error) {
	j.mu.Lock()
	j.state = state
	if err != nil {
		j.errText = err.Error()
	}
	failedCount := len(j.failed)
	j.mu.Unlock()
	s.met.jobsDone.Add(1)
	rec := journalRecord{Op: "done", ID: j.ID, OK: state == jobDone && failedCount == 0}
	if err != nil {
		rec.Err = err.Error()
	}
	s.appendRequest(rec)
}

// resolveSweep prepares the spec's programs and materializes its configs.
func (s *Server) resolveSweep(spec SweepSpec) ([]*exp.Prepared, []machine.Config, error) {
	var prepared []*exp.Prepared
	if spec.Source != "" {
		p, err := s.prep.prepareSource(spec.Source, spec.In0, spec.In1)
		if err != nil {
			return nil, nil, err
		}
		prepared = append(prepared, p)
	}
	for _, name := range spec.Benches {
		p, err := s.prep.prepareBench(name)
		if err != nil {
			return nil, nil, err
		}
		prepared = append(prepared, p)
	}
	cfgs := make([]machine.Config, len(spec.Configs))
	for i, cs := range spec.Configs {
		cfg, err := cs.Config()
		if err != nil {
			return nil, nil, err
		}
		cfgs[i] = cfg
	}
	return prepared, cfgs, nil
}
