package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fgpsim/internal/core"
	"fgpsim/internal/exp"
)

// mediumSrc runs long enough (~2M cycles) to cross many 100k-cycle
// checkpoint boundaries but finishes in about a second, so chaos tests can
// kill a worker mid-cell without inheriting slowSrc's full runtime.
const mediumSrc = `
int main() {
	int i = 0;
	int acc = 0;
	while (i < 600000) {
		acc = acc + i;
		i = i + 1;
	}
	putc('0' + (acc % 10));
	return 0;
}
`

// fabricSpec is a small multi-image sweep: one source program crossed with
// window/predictor/memory variants, the shape the fabric shards by
// image-cache key.
func fabricSpec(src string, nWindows int) SweepSpec {
	var cfgs []ConfigSpec
	for _, mem := range []string{"A", "B"} {
		for _, win := range []int{0, 8, 16}[:nWindows] {
			cfgs = append(cfgs, ConfigSpec{Disc: "dyn4", Issue: 4, Mem: mem, Branch: "single", Window: win})
		}
	}
	return SweepSpec{Source: src, In0: "fabric input\n", Configs: cfgs}
}

// resultsOf renders a finished job status's results subtree to canonical
// bytes (encoding/json sorts map keys), the unit the byte-identity
// assertions compare.
func resultsOf(t *testing.T, m map[string]any) []byte {
	t.Helper()
	res, ok := m["results"]
	if !ok {
		t.Fatalf("status has no results: %v", m)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		_, m := getJSON(t, ts.URL+"/sweep/"+id)
		switch m["state"] {
		case "done", "failed", "stuck":
			return m
		}
		time.Sleep(25 * time.Millisecond)
	}
	_, m := getJSON(t, ts.URL+"/sweep/"+id)
	t.Fatalf("sweep %s not settled in %s (state %v, done %v/%v)", id, timeout, m["state"], m["done"], m["total"])
	return nil
}

// singleNodeResults runs spec on a plain (non-fabric) server and returns
// the control results bytes.
func singleNodeResults(t *testing.T, spec SweepSpec, cfg Config) []byte {
	t.Helper()
	_, ts := newTestServer(t, cfg)
	resp, m := postJSON(t, ts.URL+"/sweep", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("control sweep = %d: %v", resp.StatusCode, m)
	}
	st := waitDone(t, ts, m["id"].(string), 90*time.Second)
	if st["state"] != "done" {
		t.Fatalf("control sweep state %v: %v", st["state"], st["error"])
	}
	return resultsOf(t, st)
}

// startTestWorker runs a Worker against ts until the returned stop func is
// called (graceful drain) or the test ends.
func startTestWorker(t *testing.T, ts *httptest.Server, id string, opts WorkerOptions) (w *Worker, stop func()) {
	t.Helper()
	opts.Coordinator = ts.URL
	opts.ID = id
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 50 * time.Millisecond
	}
	if opts.Concurrency == 0 {
		opts.Concurrency = 2
	}
	if opts.DrainGrace == 0 {
		opts.DrainGrace = 20 * time.Second
	}
	w, err := NewWorker(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker %s: %v", id, err)
		}
	}()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("worker %s did not stop", id)
		}
	}
	t.Cleanup(stop)
	return w, stop
}

// TestFabricByteIdenticalToSingleNode is the tentpole's happy path: a
// sweep sharded across three workers merges to byte-identical results
// versus a single-node run of the same spec.
func TestFabricByteIdenticalToSingleNode(t *testing.T) {
	spec := fabricSpec(tinySrc, 3)
	control := singleNodeResults(t, spec, Config{JournalDir: t.TempDir(), CheckpointEvery: 100_000})

	s, ts := newTestServer(t, Config{
		Coordinator:     true,
		JournalDir:      t.TempDir(),
		CheckpointEvery: 100_000,
		WorkerDeadAfter: 2 * time.Second,
		StealAfter:      time.Second,
	})
	for i := 0; i < 3; i++ {
		startTestWorker(t, ts, fmt.Sprintf("w%d", i), WorkerOptions{SnapshotDir: t.TempDir()})
	}
	resp, m := postJSON(t, ts.URL+"/sweep", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep = %d: %v", resp.StatusCode, m)
	}
	st := waitDone(t, ts, m["id"].(string), 90*time.Second)
	if st["state"] != "done" {
		t.Fatalf("fabric sweep state %v: %v (failed %v)", st["state"], st["error"], st["failed"])
	}
	if got := resultsOf(t, st); !bytes.Equal(got, control) {
		t.Errorf("fabric results differ from single-node control\nfabric:  %s\ncontrol: %s", got, control)
	}
	if s.met.jobsDone.Value() != 1 {
		t.Errorf("jobs_done = %d, want 1", s.met.jobsDone.Value())
	}
}

// protocolFixture accepts a sweep on a worker-less coordinator, registers
// a synthetic worker, and computes the real (deterministic) stats for each
// cell so protocol-level tests can deliver byte-exact results by hand.
type protocolFixture struct {
	s     *Server
	ts    *httptest.Server
	id    string // sweep id
	lease uint64
	cells []cellAssignment
	stats map[string]json.RawMessage // cell id -> marshaled *stats.Run
}

func newProtocolFixture(t *testing.T, worker string) *protocolFixture {
	t.Helper()
	spec := fabricSpec(tinySrc, 1) // 2 cells: mem A, mem B
	s, ts := newTestServer(t, Config{
		Coordinator:     true,
		JournalDir:      t.TempDir(),
		WorkerDeadAfter: time.Hour, // liveness plays no part here
		StealAfter:      time.Hour,
	})
	resp, m := postJSON(t, ts.URL+"/sweep", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep = %d: %v", resp.StatusCode, m)
	}
	f := &protocolFixture{s: s, ts: ts, id: m["id"].(string), stats: make(map[string]json.RawMessage)}
	f.register(t, worker)
	f.cells = f.poll(t, worker, 16)
	if len(f.cells) != len(spec.Configs) {
		t.Fatalf("polled %d cells, want %d", len(f.cells), len(spec.Configs))
	}
	// Compute each cell's true result exactly as any worker would.
	pc := newPrepCache()
	p, err := pc.prepareSource(spec.Source, spec.In0, spec.In1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range f.cells {
		cfg, err := c.Config.Config()
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.RunContext(context.Background(), cfg, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		f.stats[c.Cell] = raw
	}
	return f
}

func (f *protocolFixture) register(t *testing.T, worker string) {
	t.Helper()
	resp, m := postJSON(t, f.ts.URL+"/fabric/register", registerRequest{Worker: worker})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d: %v", resp.StatusCode, m)
	}
	f.lease = uint64(m["lease"].(float64))
}

func (f *protocolFixture) poll(t *testing.T, worker string, max int) []cellAssignment {
	t.Helper()
	b, _ := json.Marshal(pollRequest{Worker: worker, Lease: f.lease, Max: max})
	resp, err := http.Post(f.ts.URL+"/fabric/poll", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll = %d", resp.StatusCode)
	}
	var pr pollResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr.Cells
}

// resultBody builds the JSON for one real result delivery.
func (f *protocolFixture) resultBody(t *testing.T, worker string, cell cellAssignment, attempt int) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"worker": worker, "lease": f.lease, "sweep_id": f.id,
		"cell": cell.Cell, "attempt": attempt, "stats": f.stats[cell.Cell],
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func (f *protocolFixture) post(t *testing.T, body []byte) int {
	t.Helper()
	resp, err := http.Post(f.ts.URL+"/fabric/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func (f *protocolFixture) doneCount(t *testing.T) float64 {
	t.Helper()
	_, m := getJSON(t, f.ts.URL+"/sweep/"+f.id)
	return m["done"].(float64)
}

// TestFabricTornResultPost: a result POST whose body is cut mid-stream is
// rejected with 400 and changes nothing; the retried intact delivery then
// merges byte-identically to the single-node control.
func TestFabricTornResultPost(t *testing.T) {
	control := singleNodeResults(t, fabricSpec(tinySrc, 1), Config{})
	f := newProtocolFixture(t, "torn-worker")

	whole := f.resultBody(t, "torn-worker", f.cells[0], f.cells[0].Attempt)
	if code := f.post(t, whole[:len(whole)/2]); code != http.StatusBadRequest {
		t.Fatalf("torn POST = %d, want 400", code)
	}
	if got := f.doneCount(t); got != 0 {
		t.Fatalf("torn POST settled a cell: done = %v", got)
	}
	// The worker's retry delivers the whole body.
	for _, c := range f.cells {
		if code := f.post(t, f.resultBody(t, "torn-worker", c, c.Attempt)); code != http.StatusOK {
			t.Fatalf("result = %d, want 200", code)
		}
	}
	st := waitDone(t, f.ts, f.id, 10*time.Second)
	if got := resultsOf(t, st); !bytes.Equal(got, control) {
		t.Errorf("results after torn delivery differ from control\ngot:     %s\ncontrol: %s", got, control)
	}
}

// TestFabricDuplicateDelivery: the same result delivered twice (a retry
// racing a slow ack) is absorbed — one settle, byte-identical merge.
func TestFabricDuplicateDelivery(t *testing.T) {
	control := singleNodeResults(t, fabricSpec(tinySrc, 1), Config{})
	f := newProtocolFixture(t, "dup-worker")

	first := f.resultBody(t, "dup-worker", f.cells[0], f.cells[0].Attempt)
	for i := 0; i < 2; i++ {
		if code := f.post(t, first); code != http.StatusOK {
			t.Fatalf("delivery %d = %d, want 200", i, code)
		}
	}
	if got := f.doneCount(t); got != 1 {
		t.Fatalf("after duplicate delivery done = %v, want 1", got)
	}
	if code := f.post(t, f.resultBody(t, "dup-worker", f.cells[1], f.cells[1].Attempt)); code != http.StatusOK {
		t.Fatalf("second cell = %d", code)
	}
	st := waitDone(t, f.ts, f.id, 10*time.Second)
	if got := resultsOf(t, st); !bytes.Equal(got, control) {
		t.Errorf("results after duplicate delivery differ from control\ngot:     %s\ncontrol: %s", got, control)
	}
	if n := f.s.met.jobsDone.Value(); n != 1 {
		t.Errorf("jobs_done = %d, want 1", n)
	}
}

// TestFabricLateDeliveryAfterRequeue: a worker is superseded, its cells
// requeue and complete under a second worker, and THEN the first worker's
// results limp in — including a corrupted one. The (attempt, fingerprint)
// merge keeps the later assignment's records and the final results stay
// byte-identical to the control.
func TestFabricLateDeliveryAfterRequeue(t *testing.T) {
	control := singleNodeResults(t, fabricSpec(tinySrc, 1), Config{})
	f := newProtocolFixture(t, "flaky")
	oldLease := f.lease
	oldCells := f.cells

	// Supersede: flaky re-registers (as after a crash); its in-flight
	// assignments requeue.
	f.register(t, "flaky")
	if f.lease == oldLease {
		t.Fatal("re-register did not advance the lease")
	}
	if n := f.s.met.cellsRequeued.Value(); n != int64(len(oldCells)) {
		t.Fatalf("cells_requeued = %d, want %d", n, len(oldCells))
	}
	// A second worker takes the requeued cells (attempt 2) and finishes.
	f.register(t, "steady")
	newCells := f.poll(t, "steady", 16)
	if len(newCells) != len(oldCells) {
		t.Fatalf("requeued poll returned %d cells, want %d", len(newCells), len(oldCells))
	}
	for _, c := range newCells {
		if c.Attempt <= oldCells[0].Attempt {
			t.Fatalf("requeued attempt %d does not supersede %d", c.Attempt, oldCells[0].Attempt)
		}
		if code := f.post(t, f.resultBody(t, "steady", c, c.Attempt)); code != http.StatusOK {
			t.Fatalf("steady result = %d", code)
		}
	}
	st := waitDone(t, f.ts, f.id, 10*time.Second)

	// Late deliveries from the superseded incarnation: one honest
	// duplicate, one with corrupted stats. Both are accepted (200) and
	// neither changes the settled winners — the corrupted record's attempt
	// ordinal is older.
	f.lease = oldLease
	honest := f.resultBody(t, "flaky", oldCells[0], oldCells[0].Attempt)
	if code := f.post(t, honest); code != http.StatusOK {
		t.Fatalf("late honest result = %d, want 200", code)
	}
	corrupt := bytes.Replace(f.resultBody(t, "flaky", oldCells[1], oldCells[1].Attempt),
		[]byte(`"Cycles":`), []byte(`"Cycles":9`), 1)
	if code := f.post(t, corrupt); code != http.StatusOK {
		t.Fatalf("late corrupt result = %d, want 200", code)
	}
	_, st = getJSON(t, f.ts.URL+"/sweep/"+f.id)
	if got := resultsOf(t, st); !bytes.Equal(got, control) {
		t.Errorf("results after late deliveries differ from control\ngot:     %s\ncontrol: %s", got, control)
	}
	// And the journal replays to the same verdict a restart would need.
	merged, err := exp.MergeJournals(f.s.cellJournalPath(f.id))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range newCells {
		cfg, _ := c.Config.Config()
		key := exp.KeyOf(sourceName(tinySrc, "fabric input\n", ""), cfg)
		want := f.stats[c.Cell]
		got, err := json.Marshal(merged[key])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("journal merge winner for %s differs from the true result", c.Cell)
		}
	}
}

// TestFabricWorkerDeathRequeues: kill -9 one of two workers mid-sweep. The
// liveness watchdog declares it dead, its cells requeue (with shipped
// snapshots where checkpoints landed), the survivor finishes, and the
// merge is still byte-identical to the control.
func TestFabricWorkerDeathRequeues(t *testing.T) {
	if testing.Short() {
		t.Skip("mediumSrc simulation is expensive under -short/-race")
	}
	spec := fabricSpec(mediumSrc, 2) // slow cells: the kill lands mid-flight
	spec.In0 = ""
	control := singleNodeResults(t, spec, Config{JournalDir: t.TempDir(), CheckpointEvery: 100_000})

	s, ts := newTestServer(t, Config{
		Coordinator:     true,
		JournalDir:      t.TempDir(),
		CheckpointEvery: 100_000,
		WorkerDeadAfter: 600 * time.Millisecond,
		StealAfter:      400 * time.Millisecond,
	})
	_, stopVictim := startTestWorker(t, ts, "victim", WorkerOptions{
		SnapshotDir: t.TempDir(), Abandon: true, Concurrency: 2,
	})
	resp, m := postJSON(t, ts.URL+"/sweep", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep = %d: %v", resp.StatusCode, m)
	}
	id := m["id"].(string)
	// Let the victim take cells and ship at least one checkpoint, then
	// kill it without ceremony (Abandon: no park, no deregister).
	deadline := time.Now().Add(30 * time.Second)
	for s.met.snapshotsShipped.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if s.met.snapshotsShipped.Value() == 0 {
		t.Fatal("victim never shipped a checkpoint")
	}
	stopVictim()
	startTestWorker(t, ts, "survivor", WorkerOptions{SnapshotDir: t.TempDir(), Concurrency: 2})

	st := waitDone(t, ts, id, 120*time.Second)
	if st["state"] != "done" {
		t.Fatalf("fabric sweep state %v: %v (failed %v)", st["state"], st["error"], st["failed"])
	}
	if got := resultsOf(t, st); !bytes.Equal(got, control) {
		t.Errorf("post-death results differ from control\ngot:     %s\ncontrol: %s", got, control)
	}
	if n := s.met.workersDead.Value(); n != 1 {
		t.Errorf("workers_dead = %d, want 1", n)
	}
	if n := s.met.cellsRequeued.Value(); n == 0 {
		t.Error("cells_requeued = 0, want > 0")
	}
}

// TestFabricCoordinatorRestart: drain the coordinator mid-sweep, boot a
// fresh one over the same journal dir, and finish. Completed cells are
// restored from the cell journal (not re-run), attempts keep ascending
// thanks to the assignment journal, and the merge matches the control.
func TestFabricCoordinatorRestart(t *testing.T) {
	spec := fabricSpec(tinySrc, 3)
	control := singleNodeResults(t, spec, Config{})
	dir := t.TempDir()
	cfg := Config{
		Coordinator:     true,
		JournalDir:      dir,
		WorkerDeadAfter: 2 * time.Second,
		StealAfter:      time.Second,
	}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	_, stopW1 := startTestWorker(t, ts1, "w1", WorkerOptions{SnapshotDir: t.TempDir(), Concurrency: 1})
	resp, m := postJSON(t, ts1.URL+"/sweep", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep = %d: %v", resp.StatusCode, m)
	}
	id := m["id"].(string)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		_, st := getJSON(t, ts1.URL+"/sweep/"+id)
		if st["done"].(float64) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	stopW1() // graceful: parks, posts, deregisters
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	s1.Drain(drainCtx)
	cancel()
	ts1.Close()

	s2, ts2 := newTestServer(t, cfg)
	if s2.met.jobsResumed.Value() != 1 {
		t.Fatalf("jobs_resumed = %d, want 1", s2.met.jobsResumed.Value())
	}
	if s2.met.cellsRestored.Value() < 2 {
		t.Errorf("cells_restored = %d, want >= 2 (completed cells must not re-run)", s2.met.cellsRestored.Value())
	}
	startTestWorker(t, ts2, "w2", WorkerOptions{SnapshotDir: t.TempDir()})
	st := waitDone(t, ts2, id, 90*time.Second)
	if st["state"] != "done" {
		t.Fatalf("resumed sweep state %v: %v", st["state"], st["error"])
	}
	if got := resultsOf(t, st); !bytes.Equal(got, control) {
		t.Errorf("post-restart results differ from control\ngot:     %s\ncontrol: %s", got, control)
	}
}
