package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

// ConfigSpec is the JSON form of one machine configuration, using the same
// vocabulary as the CLI flags (cmd/tld, cmd/sim).
type ConfigSpec struct {
	Disc      string `json:"disc"`                // static, dyn1, dyn4, dyn256
	Issue     int    `json:"issue"`               // issue model 1..8
	Mem       string `json:"mem"`                 // memory configuration A..G
	Branch    string `json:"branch"`              // single, enlarged, perfect
	Window    int    `json:"window,omitempty"`    // window override (0 = discipline default)
	Predictor string `json:"predictor,omitempty"` // "", "2bit", "gshare"
}

// Config resolves the spec against the machine package's parsers.
func (c ConfigSpec) Config() (machine.Config, error) {
	cfg, err := machine.ParseConfig(c.Disc, c.Issue, c.Mem, c.Branch)
	if err != nil {
		return cfg, err
	}
	cfg.WindowOverride = c.Window
	switch c.Predictor {
	case "", "2bit":
	case "gshare":
		cfg.Predictor = machine.GSharePredictor
	default:
		return cfg, fmt.Errorf("server: unknown predictor %q (2bit, gshare)", c.Predictor)
	}
	return cfg, nil
}

// RunRequest is the body of POST /run: one program, one configuration,
// simulated synchronously within the request deadline.
type RunRequest struct {
	// Bench names one of the paper's benchmarks; alternatively Source is a
	// MiniC program with optional input streams (used for both the
	// profiling and the measurement run).
	Bench   string     `json:"bench,omitempty"`
	Source  string     `json:"source,omitempty"`
	In0     string     `json:"in0,omitempty"`
	In1     string     `json:"in1,omitempty"`
	Config  ConfigSpec `json:"config"`
	Timeout string     `json:"timeout,omitempty"` // Go duration; capped by the server
}

// SweepSpec is the body of POST /sweep: a program set crossed with a
// configuration grid, executed asynchronously under the sweep harness's
// retry/quarantine/journal semantics. It is also the record persisted in
// the request journal, so it must stay self-contained: everything needed
// to re-run the sweep after a crash is in here.
type SweepSpec struct {
	Benches []string     `json:"benches,omitempty"`
	Source  string       `json:"source,omitempty"`
	In0     string       `json:"in0,omitempty"`
	In1     string       `json:"in1,omitempty"`
	Configs []ConfigSpec `json:"configs"`
	Retries int          `json:"retries,omitempty"`
	Timeout string       `json:"timeout,omitempty"` // per-cell run timeout
}

func (s *SweepSpec) validate() error {
	if len(s.Benches) == 0 && s.Source == "" {
		return fmt.Errorf("server: sweep needs benches or source")
	}
	if len(s.Benches) > 0 && s.Source != "" {
		return fmt.Errorf("server: benches and source are mutually exclusive")
	}
	if len(s.Configs) == 0 {
		return fmt.Errorf("server: sweep needs at least one config")
	}
	for i, c := range s.Configs {
		if _, err := c.Config(); err != nil {
			return fmt.Errorf("config %d: %w", i, err)
		}
	}
	if s.Timeout != "" {
		if _, err := time.ParseDuration(s.Timeout); err != nil {
			return fmt.Errorf("server: bad timeout: %w", err)
		}
	}
	return nil
}

// cells is the sweep's grid size (its admission weight driver).
func (s *SweepSpec) cells() int {
	progs := len(s.Benches)
	if progs == 0 {
		progs = 1
	}
	return progs * len(s.Configs)
}

// Job states. A job is terminal in done/failed/stuck; "interrupted" means a
// drain stopped it mid-flight and the journal will resume it next boot.
const (
	jobQueued      = "queued"
	jobRunning     = "running"
	jobDone        = "done"
	jobFailed      = "failed"
	jobStuck       = "stuck"
	jobInterrupted = "interrupted"
)

// job is one accepted sweep.
type job struct {
	ID   string
	Spec SweepSpec

	beat    atomic.Int64 // heartbeat shared with every cell's engine
	preempt atomic.Bool  // set by the watchdog to request a cooperative stop

	mu       sync.Mutex
	state    string
	done     int
	total    int
	requeues int
	failed   []string
	errText  string
	results  map[string]*stats.Run
	// digests maps the same keys as results to each winner's content digest
	// (exp.DigestStats), so a status reader can verify the served bytes
	// end-to-end. Fabric sweeps only; single-node sweeps leave it empty.
	digests map[string]string
	// Integrity observability (fabric sweeps): audit verdicts and rejected
	// corrupt deliveries, mirrored from the coordinator's fabricJob.
	auditsRun         int
	auditsDisagreed   int
	auditsResolved    int
	integrityFailures int
}

func newJob(id string, spec SweepSpec) *job {
	return &job{ID: id, Spec: spec, state: jobQueued, total: spec.cells(),
		results: make(map[string]*stats.Run), digests: make(map[string]string)}
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *job) setProgress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

func (j *job) recordFailure(ce *exp.CellError) {
	j.mu.Lock()
	j.failed = append(j.failed, ce.Error())
	j.mu.Unlock()
}

// jobStatus is the JSON shape of GET /sweep/{id}.
type jobStatus struct {
	ID       string                `json:"id"`
	State    string                `json:"state"`
	Done     int                   `json:"done"`
	Total    int                   `json:"total"`
	Requeues int                   `json:"requeues,omitempty"`
	Failed   []string              `json:"failed,omitempty"`
	Error    string                `json:"error,omitempty"`
	Results  map[string]*stats.Run `json:"results,omitempty"`
	// Digests carries each result's content digest alongside Results, so a
	// client can verify the bytes it received against what the coordinator
	// journaled and audited.
	Digests map[string]string `json:"digests,omitempty"`
	// Integrity counters (fabric sweeps, DESIGN.md §17).
	AuditsRun         int `json:"audits_run,omitempty"`
	AuditsDisagreed   int `json:"audits_disagreed,omitempty"`
	AuditsResolved    int `json:"audits_resolved,omitempty"`
	IntegrityFailures int `json:"integrity_failures,omitempty"`
}

func (j *job) status(withResults bool) jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{ID: j.ID, State: j.state, Done: j.done, Total: j.total, Requeues: j.requeues,
		Failed: append([]string(nil), j.failed...), Error: j.errText,
		AuditsRun: j.auditsRun, AuditsDisagreed: j.auditsDisagreed,
		AuditsResolved: j.auditsResolved, IntegrityFailures: j.integrityFailures}
	if withResults && (j.state == jobDone || j.state == jobFailed) {
		st.Results = j.results
		if len(j.digests) > 0 {
			st.Digests = j.digests
		}
	}
	return st
}

// KeyString is keyString for external harnesses: the chaos orchestrator
// renders the same result keys to line journal contents up against a
// sweep's /sweep/{id} results map.
func KeyString(k exp.Key) string { return keyString(k) }

// keyString renders an exp.Key as a stable, human-greppable result key.
func keyString(k exp.Key) string {
	s := fmt.Sprintf("%s/%s/i%d/%c/%s", k.Bench, k.Disc, k.Issue, k.Mem, k.Branch)
	if k.Window != 0 {
		s += fmt.Sprintf("/w%d", k.Window)
	}
	if k.Pred != 0 {
		s += fmt.Sprintf("/p%d", k.Pred)
	}
	return s
}

// ---------- request journal ----------

// journalRecord is one line of the request journal. "accept" carries the
// full spec (the journal is the source of truth for crash recovery) plus a
// self-hash of the spec's canonical JSON, so a resume can tell an intact
// record from one whose spec bytes were mangled in place (a torn line is
// caught by JSON decoding; this catches corruption that still parses);
// "done" marks the job settled so a restart does not re-run it.
type journalRecord struct {
	Op       string     `json:"op"` // "accept" | "done"
	ID       string     `json:"id"`
	Spec     *SweepSpec `json:"spec,omitempty"`
	SpecHash string     `json:"spec_hash,omitempty"`
	OK       bool       `json:"ok,omitempty"`
	Err      string     `json:"err,omitempty"`
}

// specHash is the self-hash guarding an accept record: sha256 over the
// spec's canonical (encoding/json) serialization, truncated for brevity.
func specHash(spec *SweepSpec) string {
	data, err := json.Marshal(spec)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// pendingJobs replays a request journal and returns the accepted-but-not-
// settled specs in acceptance order — the sweeps a crash or drain left
// unfinished. Torn or malformed lines are skipped (exp.ReplayJournal).
func pendingJobs(disk chaos.Disk, path string) ([]journalRecord, error) {
	var order []string
	specs := make(map[string]*SweepSpec)
	err := exp.ReplayJournalOn(disk, path, func(line []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		switch rec.Op {
		case "accept":
			if rec.Spec == nil {
				return fmt.Errorf("accept without spec")
			}
			if rec.SpecHash != "" && rec.SpecHash != specHash(rec.Spec) {
				// The record parses but its spec does not match the hash it
				// was accepted with: resuming it would run the wrong sweep
				// under the accepted ID. Skip it loudly.
				fmt.Fprintf(os.Stderr, "server: request journal: skipping job %s: spec hash mismatch (corrupt record)\n", rec.ID)
				return nil
			}
			if _, seen := specs[rec.ID]; !seen {
				order = append(order, rec.ID)
			}
			specs[rec.ID] = rec.Spec
		case "done":
			delete(specs, rec.ID)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []journalRecord
	for _, id := range order {
		if spec, ok := specs[id]; ok {
			out = append(out, journalRecord{Op: "accept", ID: id, Spec: spec})
		}
	}
	return out, nil
}

// sourceName derives a stable benchmark name for an ad-hoc MiniC program,
// so its prepared form (and journal keys) are content-addressed.
func sourceName(src, in0, in1 string) string {
	h := sha256.Sum256([]byte(src + "\x00" + in0 + "\x00" + in1))
	return "src-" + hex.EncodeToString(h[:6])
}

// SourceName is sourceName for external harnesses (the chaos orchestrator
// derives the same content-addressed benchmark name to compare a fabric
// sweep's results against a fault-free control of the same spec).
func SourceName(src, in0, in1 string) string { return sourceName(src, in0, in1) }
