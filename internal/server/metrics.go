package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync/atomic"

	"fgpsim/internal/chaos"
	"fgpsim/internal/exp"
	"fgpsim/internal/stats"
)

// shipRetries counts snapshot-ship delivery attempts beyond the first,
// process-wide: workers are not Servers, so the counter cannot live on a
// per-server metrics struct, and a coordinator's /metrics reporting every
// co-resident worker's retries is exactly what an operator wants to see.
var shipRetries atomic.Int64

// metrics is the daemon's observability surface, served as expvar-style
// JSON on /metrics. Counters are expvar vars held on the struct (not
// published to the process-global expvar map, so tests can build as many
// servers as they like); gauges are sampled at render time; run latency is
// a stats.Hist reporting p50/p99 the way the paper's harness reports
// block-size percentiles.
type metrics struct {
	shed          expvar.Int // requests rejected 429 by admission control
	watchdogKills expvar.Int // runs killed for lack of engine progress
	retries       expvar.Int // extra simulation attempts across sweep cells
	runsOK        expvar.Int // successful /run simulations
	runsFailed    expvar.Int // failed /run simulations (any non-200)
	jobsAccepted  expvar.Int // sweeps admitted (202)
	jobsResumed   expvar.Int // sweeps re-enqueued from the request journal
	jobsDone      expvar.Int // sweeps that reached a terminal state
	cellsDone     expvar.Int // sweep cells completed by simulation
	cellsRestored expvar.Int // sweep cells restored from a cell journal
	cellsFailed   expvar.Int // sweep cells quarantined after retries
	preempts      expvar.Int // sweep cells preempted to a snapshot mid-run
	jobsRequeued  expvar.Int // sweeps requeued after a cooperative preemption

	// Fabric counters (coordinator role only).
	cellsStolen      expvar.Int // cells run by a worker other than their shard owner
	cellsRequeued    expvar.Int // cell assignments returned to pending (death, supersede, drain)
	workersDead      expvar.Int // workers declared dead by the liveness watchdog
	snapshotsShipped expvar.Int // mid-run snapshots received from workers

	// Integrity counters (DESIGN.md §17).
	auditsRun          expvar.Int // re-execution audits that reached a first verdict
	auditsDisagreed    expvar.Int // audits whose digest differed from the winner's
	integrityFailures  expvar.Int // rejected records: digest gate, journal verify, audit disagreement
	workersQuarantined expvar.Int // workers quarantined past the strike threshold

	// Scrubber counters (scrub.go).
	scrubPasses         expvar.Int // completed background scrub passes
	scrubRepaired       expvar.Int // snapshot files repaired from their .prev
	scrubQuarantined    expvar.Int // files quarantined (renamed *.quarantined)
	scrubCorruptRecords expvar.Int // journal records failing digest verification

	latency stats.Hist // per-simulation wall clock (/run and sweep cells)
}

// observeCell folds one settled sweep cell into the counters (the
// exp.GridOptions.Observer hook); the caller observes latency separately.
func (m *metrics) observeCell(attempts int, ok, restored bool) {
	switch {
	case restored:
		m.cellsRestored.Add(1)
	case ok:
		m.cellsDone.Add(1)
	default:
		m.cellsFailed.Add(1)
	}
	if attempts > 1 {
		m.retries.Add(int64(attempts - 1))
	}
}

// snapshot renders every metric; queueDepth, inflight, and workersLive are
// sampled gauges supplied by the server.
func (m *metrics) snapshot(queueDepth int64, inflight, workersLive int) map[string]any {
	return map[string]any{
		"queue_depth":       queueDepth,
		"inflight":          inflight,
		"workers_live":      workersLive,
		"shed_total":        m.shed.Value(),
		"watchdog_kills":    m.watchdogKills.Value(),
		"retries":           m.retries.Value(),
		"runs_ok":           m.runsOK.Value(),
		"runs_failed":       m.runsFailed.Value(),
		"jobs_accepted":     m.jobsAccepted.Value(),
		"jobs_resumed":      m.jobsResumed.Value(),
		"jobs_done":         m.jobsDone.Value(),
		"cells_done":        m.cellsDone.Value(),
		"cells_restored":    m.cellsRestored.Value(),
		"cells_failed":      m.cellsFailed.Value(),
		"preempts":          m.preempts.Value(),
		"jobs_requeued":     m.jobsRequeued.Value(),
		"cells_stolen":      m.cellsStolen.Value(),
		"cells_requeued":    m.cellsRequeued.Value(),
		"workers_dead":      m.workersDead.Value(),
		"snapshots_shipped": m.snapshotsShipped.Value(),

		// Integrity counters (DESIGN.md §17).
		"audits_run":            m.auditsRun.Value(),
		"audits_disagreed":      m.auditsDisagreed.Value(),
		"integrity_failures":    m.integrityFailures.Value(),
		"workers_quarantined":   m.workersQuarantined.Value(),
		"scrub_passes":          m.scrubPasses.Value(),
		"scrub_repaired":        m.scrubRepaired.Value(),
		"scrub_quarantined":     m.scrubQuarantined.Value(),
		"scrub_corrupt_records": m.scrubCorruptRecords.Value(),

		// Failure-model counters (DESIGN.md §16). The first two stay useful
		// in production — a nonzero journal_fsync_failures is an operator
		// page. chaos_faults_injected is zero outside chaos runs by
		// construction: only a chaos.FS / chaos.Transport increments it, and
		// production servers never mount one.
		"journal_fsync_failures": exp.JournalFsyncFailures(),
		"ship_retries":           shipRetries.Load(),
		"chaos_faults_injected":  chaos.Injected(),
		"run_latency_us": map[string]any{
			"count": m.latency.Count(),
			"mean":  m.latency.Mean().Microseconds(),
			"p50":   m.latency.Quantile(0.50).Microseconds(),
			"p99":   m.latency.Quantile(0.99).Microseconds(),
		},
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
