package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/exp"
)

// tinySrc is a fast-simulating but non-trivial MiniC program used for
// end-to-end request tests.
const tinySrc = `
int main() {
	int c;
	int sum = 0;
	c = getc(0);
	while (c >= 0) {
		sum = sum + c;
		c = getc(0);
	}
	putc('0' + (sum % 10));
	putc('\n');
	return 0;
}
`

// slowSrc burns enough cycles that a millisecond-scale deadline reliably
// expires mid-simulation, while staying under the profiler's node budget.
const slowSrc = `
int main() {
	int i = 0;
	int acc = 0;
	while (i < 2000000) {
		acc = acc + i;
		i = i + 1;
	}
	putc('0' + (acc % 10));
	return 0;
}
`

var testConfig = ConfigSpec{Disc: "dyn4", Issue: 4, Mem: "A", Branch: "single"}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("non-JSON body (%d): %s", resp.StatusCode, raw)
		}
	}
	return resp, m
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var m map[string]any
	json.Unmarshal(raw, &m)
	return resp, m
}

func TestHealthReadyMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}
	resp, m := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, key := range []string{"queue_depth", "inflight", "shed_total", "watchdog_kills", "run_latency_us"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, m := postJSON(t, ts.URL+"/run", RunRequest{
		Source: tinySrc, In0: "hello simd\n", Config: testConfig,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run = %d: %v", resp.StatusCode, m)
	}
	st, ok := m["stats"].(map[string]any)
	if !ok {
		t.Fatalf("no stats in response: %v", m)
	}
	if cycles, _ := st["Cycles"].(float64); cycles <= 0 {
		t.Errorf("stats.Cycles = %v, want > 0", st["Cycles"])
	}
	resp, m = getJSON(t, ts.URL+"/metrics")
	resp.Body.Close()
	if got, _ := m["runs_ok"].(float64); got != 1 {
		t.Errorf("runs_ok = %v, want 1", m["runs_ok"])
	}
	if lat, _ := m["run_latency_us"].(map[string]any); lat == nil || lat["count"].(float64) < 1 {
		t.Errorf("run latency histogram not populated: %v", m["run_latency_us"])
	}
}

func TestRunBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
	}{
		{"bad config", RunRequest{Source: tinySrc, Config: ConfigSpec{Disc: "warp", Issue: 4, Mem: "A", Branch: "single"}}},
		{"bench and source", RunRequest{Bench: "wc", Source: tinySrc, Config: testConfig}},
		{"neither bench nor source", RunRequest{Config: testConfig}},
		{"bad timeout", RunRequest{Source: tinySrc, Config: testConfig, Timeout: "soon"}},
		{"unknown field", map[string]any{"sauce": tinySrc, "config": testConfig}},
		{"unknown bench", RunRequest{Bench: "no-such-bench", Config: testConfig}},
	}
	for _, tc := range cases {
		resp, m := postJSON(t, ts.URL+"/run", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%v)", tc.name, resp.StatusCode, m)
		}
	}
}

// TestRunOverloadSheds is the synthetic overload test from the acceptance
// criteria: with the queue full, further requests get 429 + Retry-After
// instead of queueing unboundedly.
func TestRunOverloadSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1, Concurrency: 1})
	// Occupy all limiter capacity so admitted requests stay queued.
	if err := s.admit.lim.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	first := make(chan *http.Response, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/run", RunRequest{Source: tinySrc, In0: "x", Config: testConfig})
		first <- resp
	}()
	waitFor(t, func() bool { return s.admit.queued() == 1 })

	resp, m := postJSON(t, ts.URL+"/run", RunRequest{Source: tinySrc, In0: "x", Config: testConfig})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded /run = %d, want 429 (%v)", resp.StatusCode, m)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive hint", ra)
	}
	if m["error"] != "overloaded" {
		t.Errorf("error = %v, want overloaded", m["error"])
	}

	s.admit.lim.release(1)
	if resp := <-first; resp.StatusCode != http.StatusOK {
		t.Fatalf("queued request finished with %d, want 200", resp.StatusCode)
	}
	_, m = getJSON(t, ts.URL+"/metrics")
	if got, _ := m["shed_total"].(float64); got != 1 {
		t.Errorf("shed_total = %v, want 1", m["shed_total"])
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("slowSrc profiling is expensive under -short/-race")
	}
	_, ts := newTestServer(t, Config{})
	resp, m := postJSON(t, ts.URL+"/run", RunRequest{
		Source: slowSrc, Config: testConfig, Timeout: "1ms",
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("/run with 1ms deadline = %d, want 504 (%v)", resp.StatusCode, m)
	}
	if m["error"] != "deadline exceeded" {
		t.Errorf("error = %v, want deadline exceeded", m["error"])
	}
}

func TestSweepLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := SweepSpec{
		Source: tinySrc, In0: "sweep input\n",
		Configs: []ConfigSpec{
			{Disc: "dyn4", Issue: 4, Mem: "A", Branch: "single"},
			{Disc: "static", Issue: 1, Mem: "A", Branch: "single"},
		},
	}
	resp, m := postJSON(t, ts.URL+"/sweep", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/sweep = %d: %v", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("no sweep id in %v", m)
	}
	if cells, _ := m["cells"].(float64); cells != 2 {
		t.Errorf("cells = %v, want 2", m["cells"])
	}

	var status map[string]any
	waitFor2(t, 60*time.Second, func() bool {
		_, status = getJSON(t, ts.URL+"/sweep/"+id)
		return status["state"] == jobDone || status["state"] == jobFailed || status["state"] == jobStuck
	})
	if status["state"] != jobDone {
		t.Fatalf("sweep state = %v: %v", status["state"], status)
	}
	results, _ := status["results"].(map[string]any)
	if len(results) != 2 {
		t.Fatalf("results = %d entries, want 2: %v", len(results), status)
	}

	resp, _ = getJSON(t, ts.URL+"/sweep/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep id = %d, want 404", resp.StatusCode)
	}
	_, mm := getJSON(t, ts.URL+"/metrics")
	if got, _ := mm["cells_done"].(float64); got != 2 {
		t.Errorf("cells_done = %v, want 2", mm["cells_done"])
	}
	if got, _ := mm["jobs_done"].(float64); got != 1 {
		t.Errorf("jobs_done = %v, want 1", mm["jobs_done"])
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		spec SweepSpec
	}{
		{"no configs", SweepSpec{Source: tinySrc}},
		{"no program", SweepSpec{Configs: []ConfigSpec{testConfig}}},
		{"benches and source", SweepSpec{Benches: []string{"wc"}, Source: tinySrc, Configs: []ConfigSpec{testConfig}}},
		{"bad config", SweepSpec{Source: tinySrc, Configs: []ConfigSpec{{Disc: "dyn4", Issue: 99, Mem: "A", Branch: "single"}}}},
		{"bad timeout", SweepSpec{Source: tinySrc, Configs: []ConfigSpec{testConfig}, Timeout: "whenever"}},
	}
	for _, tc := range cases {
		resp, m := postJSON(t, ts.URL+"/sweep", tc.spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%v)", tc.name, resp.StatusCode, m)
		}
	}
}

func TestDrainFlipsReadyAndRejectsWork(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, _ := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/run", RunRequest{Source: tinySrc, Config: testConfig})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/run while draining = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/sweep", SweepSpec{Source: tinySrc, Configs: []ConfigSpec{testConfig}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/sweep while draining = %d, want 503", resp.StatusCode)
	}
	// /healthz stays up: the process is alive, just not admitting.
	resp, _ = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200", resp.StatusCode)
	}
}

// TestSweepJournalResume is the crash-recovery acceptance test: an accepted
// sweep whose "done" record never made it to the request journal is resumed
// on the next boot, and cells fsync'd to its cell journal before the crash
// are restored instead of re-simulated.
func TestSweepJournalResume(t *testing.T) {
	dir := t.TempDir()
	spec := SweepSpec{
		Source: tinySrc, In0: "resume input\n",
		Configs: []ConfigSpec{
			{Disc: "dyn4", Issue: 4, Mem: "A", Branch: "single"},
			{Disc: "static", Issue: 1, Mem: "A", Branch: "single"},
		},
	}

	// Life 1: run the sweep to completion so its cell journal holds every
	// cell, then simulate a crash that lost the "done" record by appending a
	// fresh accept for the same spec (pointing at a copy of the cell
	// journal) with no matching done.
	var firstID string
	{
		s, ts := newTestServer(t, Config{JournalDir: dir})
		resp, m := postJSON(t, ts.URL+"/sweep", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("/sweep = %d: %v", resp.StatusCode, m)
		}
		firstID = m["id"].(string)
		waitFor2(t, 60*time.Second, func() bool {
			_, st := getJSON(t, ts.URL+"/sweep/"+firstID)
			return st["state"] == jobDone
		})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		s.Drain(ctx)
		cancel()
	}

	if pend, err := pendingJobs(chaos.OS{}, filepath.Join(dir, "requests.journal")); err != nil || len(pend) != 0 {
		t.Fatalf("settled sweep still pending: %v, %v", pend, err)
	}
	copyFile(t, filepath.Join(dir, "sweep-"+firstID+".cells"), filepath.Join(dir, "sweep-crashed.cells"))
	appendAccept(t, filepath.Join(dir, "requests.journal"), "crashed", &spec)

	// Life 2: New must find the unsettled sweep, Start must run it, and
	// every cell must come back from the journal rather than re-simulation.
	s2, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Drain(ctx)
	}()

	var status map[string]any
	waitFor2(t, 60*time.Second, func() bool {
		resp, st := getJSON(t, ts2.URL+"/sweep/crashed")
		if resp.StatusCode != http.StatusOK {
			return false
		}
		status = st
		return st["state"] == jobDone || st["state"] == jobFailed
	})
	if status["state"] != jobDone {
		t.Fatalf("resumed sweep state = %v: %v", status["state"], status)
	}
	if results, _ := status["results"].(map[string]any); len(results) != 2 {
		t.Fatalf("resumed sweep results = %d entries, want 2", len(results))
	}
	_, m := getJSON(t, ts2.URL+"/metrics")
	if got, _ := m["jobs_resumed"].(float64); got != 1 {
		t.Errorf("jobs_resumed = %v, want 1", m["jobs_resumed"])
	}
	if got, _ := m["cells_restored"].(float64); got != 2 {
		t.Errorf("cells_restored = %v, want 2 (cells must come from the journal)", m["cells_restored"])
	}
	if got, _ := m["cells_done"].(float64); got != 0 {
		t.Errorf("cells_done = %v, want 0 (nothing should re-simulate)", m["cells_done"])
	}

	// The resumed sweep settles the journal: a third boot recovers nothing.
	if pend, err := pendingJobs(chaos.OS{}, filepath.Join(dir, "requests.journal")); err != nil || len(pend) != 0 {
		t.Fatalf("resumed sweep left journal unsettled: %v, %v", pend, err)
	}
}

// TestDrainInterruptsSweep drives a live drain with work in flight: the
// interrupted sweep must stay unsettled in the journal (so a restart resumes
// it) and Drain must still return nil — the exit-0 guarantee.
func TestDrainInterruptsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("slowSrc profiling is expensive under -short/-race")
	}
	dir := t.TempDir()
	s, err := New(Config{JournalDir: dir, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := SweepSpec{
		Source: slowSrc,
		Configs: []ConfigSpec{
			{Disc: "dyn4", Issue: 4, Mem: "A", Branch: "single"},
			{Disc: "dyn4", Issue: 2, Mem: "A", Branch: "single"},
			{Disc: "static", Issue: 1, Mem: "A", Branch: "single"},
			{Disc: "dyn256", Issue: 4, Mem: "A", Branch: "single"},
		},
	}
	resp, m := postJSON(t, ts.URL+"/sweep", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/sweep = %d: %v", resp.StatusCode, m)
	}
	id := m["id"].(string)
	// Wait until the sweep is actually running, then force-drain with an
	// already-expired context so in-flight work is cancelled immediately.
	waitFor2(t, 60*time.Second, func() bool {
		_, st := getJSON(t, ts.URL+"/sweep/"+id)
		return st["state"] != jobQueued
	})
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(expired); err != nil {
		t.Fatalf("Drain must return nil for exit 0, got %v", err)
	}

	_, st := getJSON(t, ts.URL+"/sweep/"+id)
	switch st["state"] {
	case jobInterrupted:
		// The common case: the drain caught the sweep mid-flight. It must
		// still be pending in the journal.
		pend, err := pendingJobs(chaos.OS{}, filepath.Join(dir, "requests.journal"))
		if err != nil {
			t.Fatal(err)
		}
		if len(pend) != 1 || pend[0].ID != id {
			t.Fatalf("interrupted sweep not pending in journal: %+v", pend)
		}
		// Restart: the sweep resumes and completes, restoring any cells the
		// first life journaled before the cancel.
		s2, err := New(Config{JournalDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		s2.Start()
		ts2 := httptest.NewServer(s2.Handler())
		defer ts2.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s2.Drain(ctx)
		}()
		waitFor2(t, 120*time.Second, func() bool {
			resp, st := getJSON(t, ts2.URL+"/sweep/"+id)
			return resp.StatusCode == http.StatusOK && st["state"] == jobDone
		})
		if pend, err := pendingJobs(chaos.OS{}, filepath.Join(dir, "requests.journal")); err != nil || len(pend) != 0 {
			t.Fatalf("resumed sweep left journal unsettled: %v, %v", pend, err)
		}
	case jobDone:
		// The sweep won the race and finished before the cancel landed;
		// nothing to resume, the journal must be settled.
		if pend, _ := pendingJobs(chaos.OS{}, filepath.Join(dir, "requests.journal")); len(pend) != 0 {
			t.Fatalf("done sweep left journal unsettled: %+v", pend)
		}
	default:
		t.Fatalf("sweep state after drain = %v: %v", st["state"], st)
	}
}

// TestSweepPreemptRequeue exercises the preempt-and-requeue upgrade: a
// long sweep holding the only worker slot while other work queues must be
// asked to stop at a checkpoint boundary, park snapshots, requeue, and
// still complete with full results once resumed.
func TestSweepPreemptRequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("slowSrc profiling is expensive under -short/-race")
	}
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{
		JournalDir:       dir,
		Concurrency:      1,
		CheckpointEvery:  25_000,
		PreemptAfter:     50 * time.Millisecond,
		WatchdogInterval: 10 * time.Millisecond,
	})

	// Sweep A: slow enough that the preempt window reliably opens. Two
	// cells on one worker doubles the runway.
	resp, m := postJSON(t, ts.URL+"/sweep", SweepSpec{
		Source: slowSrc,
		Configs: []ConfigSpec{
			{Disc: "dyn4", Issue: 4, Mem: "A", Branch: "single"},
			{Disc: "dyn4", Issue: 2, Mem: "A", Branch: "single"},
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/sweep A = %d: %v", resp.StatusCode, m)
	}
	idA := m["id"].(string)
	waitFor2(t, 60*time.Second, func() bool {
		_, st := getJSON(t, ts.URL+"/sweep/"+idA)
		return st["state"] == jobRunning
	})

	// Sweep B queues behind A (Concurrency 1), which is what arms the
	// watchdog's preempt verdict: queued() > 0 while A holds the slot.
	resp, m = postJSON(t, ts.URL+"/sweep", SweepSpec{
		Source: tinySrc, In0: "queued work\n",
		Configs: []ConfigSpec{{Disc: "static", Issue: 1, Mem: "A", Branch: "single"}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/sweep B = %d: %v", resp.StatusCode, m)
	}
	idB := m["id"].(string)

	var stA map[string]any
	waitFor2(t, 180*time.Second, func() bool {
		_, stA = getJSON(t, ts.URL+"/sweep/"+idA)
		_, stB := getJSON(t, ts.URL+"/sweep/"+idB)
		return terminal(stA["state"]) && terminal(stB["state"])
	})
	if stA["state"] != jobDone {
		t.Fatalf("sweep A state = %v: %v", stA["state"], stA)
	}
	if req, _ := stA["requeues"].(float64); req < 1 {
		t.Errorf("sweep A requeues = %v, want >= 1 (never preempted?)", stA["requeues"])
	}
	if results, _ := stA["results"].(map[string]any); len(results) != 2 {
		t.Fatalf("sweep A results = %d entries, want 2: %v", len(results), stA)
	}

	_, mm := getJSON(t, ts.URL+"/metrics")
	if got, _ := mm["preempts"].(float64); got < 1 {
		t.Errorf("preempts = %v, want >= 1", mm["preempts"])
	}
	if got, _ := mm["jobs_requeued"].(float64); got < 1 {
		t.Errorf("jobs_requeued = %v, want >= 1", mm["jobs_requeued"])
	}

	// Completed cells clean their snapshots: nothing may linger.
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshots", "*.snap*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Errorf("snapshots left after completion: %v", snaps)
	}
}

func terminal(state any) bool {
	return state == jobDone || state == jobFailed || state == jobStuck
}

// TestPendingJobsSpecHashGuard covers both paths of the request-journal
// self-hash: intact records (hashed or legacy unhashed) are recovered,
// while a record whose spec no longer matches its accepted hash — in-place
// corruption that still parses as JSON — is skipped.
func TestPendingJobsSpecHashGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "requests.journal")
	good := SweepSpec{Source: tinySrc, Configs: []ConfigSpec{testConfig}}
	legacy := SweepSpec{Benches: []string{"wc"}, Configs: []ConfigSpec{testConfig}}
	tampered := SweepSpec{Source: slowSrc, Configs: []ConfigSpec{testConfig}}

	jw, err := exp.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	records := []journalRecord{
		{Op: "accept", ID: "good", Spec: &good, SpecHash: specHash(&good)},
		{Op: "accept", ID: "legacy", Spec: &legacy}, // pre-hash record: trusted
		{Op: "accept", ID: "bad", Spec: &tampered, SpecHash: specHash(&good)},
	}
	for _, rec := range records {
		if err := jw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	pend, err := pendingJobs(chaos.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(pend))
	for i, rec := range pend {
		ids[i] = rec.ID
	}
	if len(pend) != 2 || ids[0] != "good" || ids[1] != "legacy" {
		t.Fatalf("pendingJobs = %v, want [good legacy]", ids)
	}
	if pend[0].Spec.Source != good.Source {
		t.Errorf("recovered spec lost its source")
	}
}

// waitFor2 polls a condition with an explicit budget (simulation-scale
// waits, unlike waitFor's scheduling-scale 2s).
func waitFor2(t *testing.T, budget time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %s", budget)
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func appendAccept(t *testing.T, journalPath, id string, spec *SweepSpec) {
	t.Helper()
	jw, err := exp.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	if err := jw.Append(journalRecord{Op: "accept", ID: id, Spec: spec}); err != nil {
		t.Fatal(err)
	}
}
