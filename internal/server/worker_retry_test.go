package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"fgpsim/internal/exp"
	"fgpsim/internal/stats"
)

// TestPostResultRetriesByteIdentical pins the marshal-once contract of the
// result ship path: postResult serializes the resultRequest exactly once and
// every retry re-sends those same bytes, so the digest computed at run time
// stays valid across arbitrarily many transport failures. A re-marshal per
// attempt would silently break that guarantee the day encoding becomes
// non-deterministic (map ordering, float formatting), so this test fails the
// coordinator twice and asserts all three received bodies are bit-identical
// and self-consistent with their embedded digest.
func TestPostResultRetriesByteIdentical(t *testing.T) {
	var mu sync.Mutex
	var bodies [][]byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/fabric/result" {
			w.WriteHeader(http.StatusOK)
			return
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("read body: %v", err)
		}
		mu.Lock()
		bodies = append(bodies, b)
		n := len(bodies)
		mu.Unlock()
		if n < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	w, err := NewWorker(WorkerOptions{
		Coordinator: ts.URL,
		ID:          "retry-w",
		SnapshotDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}

	run := &stats.Run{Cycles: 4242, RetiredNodes: 17}
	w.postResult(resultRequest{
		Worker:  "retry-w",
		SweepID: "s1",
		Cell:    "c1",
		Attempt: 1,
		Stats:   run,
		Digest:  exp.DigestStats(run),
	})

	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 3 {
		t.Fatalf("coordinator saw %d result posts, want 3 (2 failures + 1 success)", len(bodies))
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("retry %d re-sent different bytes:\n first: %s\n retry: %s", i, bodies[0], bodies[i])
		}
	}
	var got resultRequest
	if err := json.Unmarshal(bodies[0], &got); err != nil {
		t.Fatal(err)
	}
	if got.Digest == "" || got.Digest != exp.DigestStats(got.Stats) {
		t.Fatalf("shipped digest %q does not match shipped stats (want %q)", got.Digest, exp.DigestStats(got.Stats))
	}
	if got.Cell != "c1" || got.Stats.Cycles != 4242 {
		t.Fatalf("shipped payload mangled: %+v", got)
	}
}
