package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegistrySupersede: re-registering an identity atomically retires the
// old lease — its in-flight cells requeue, its credentials get 410 — and
// the successor polls the same cells back under higher attempt ordinals.
func TestRegistrySupersede(t *testing.T) {
	f := newProtocolFixture(t, "reborn")
	oldLease := f.lease
	oldAttempt := f.cells[0].Attempt

	// The old lease is still honoured before the supersede...
	resp, _ := postJSON(t, f.ts.URL+"/fabric/heartbeat", heartbeatRequest{Worker: "reborn", Lease: oldLease})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat on live lease = %d", resp.StatusCode)
	}

	f.register(t, "reborn")
	if f.lease <= oldLease {
		t.Fatalf("new lease %d does not supersede %d", f.lease, oldLease)
	}
	if n := f.s.met.cellsRequeued.Value(); n != int64(len(f.cells)) {
		t.Errorf("cells_requeued = %d, want %d", n, len(f.cells))
	}

	// ...and rejected after it, telling the stale incarnation to re-register.
	resp, _ = postJSON(t, f.ts.URL+"/fabric/heartbeat", heartbeatRequest{Worker: "reborn", Lease: oldLease})
	if resp.StatusCode != http.StatusGone {
		t.Errorf("heartbeat on stale lease = %d, want 410", resp.StatusCode)
	}

	cells := f.poll(t, "reborn", 16)
	if len(cells) != len(f.cells) {
		t.Fatalf("successor polled %d cells, want %d", len(cells), len(f.cells))
	}
	for _, c := range cells {
		if c.Attempt <= oldAttempt {
			t.Errorf("cell %s attempt %d does not supersede %d", c.Cell, c.Attempt, oldAttempt)
		}
	}
	// The supersede must not have counted the worker dead or fired the
	// revoked registration's watchdog verdict.
	if n := f.s.met.workersDead.Value(); n != 0 {
		t.Errorf("workers_dead = %d after supersede, want 0", n)
	}
	if n := f.s.coord.workersLive(); n != 1 {
		t.Errorf("workers_live = %d, want 1", n)
	}
}

// TestRegistrySupersedeConcurrent hammers re-register against poll and
// heartbeat for the same identity and then checks the invariant the single
// critical section buys: every surviving assignment belongs to the one
// final lease — no cell is ever left assigned to a lease the registry no
// longer believes in.
func TestRegistrySupersedeConcurrent(t *testing.T) {
	f := newProtocolFixture(t, "seed") // occupies the grid with a sweep
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, m := postJSON(t, f.ts.URL+"/fabric/register", registerRequest{Worker: "churner"})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("register = %d", resp.StatusCode)
					return
				}
				lease := uint64(m["lease"].(float64))
				b := pollRequest{Worker: "churner", Lease: lease, Max: 4}
				if resp, _ := postJSON(t, f.ts.URL+"/fabric/poll", b); resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGone {
					t.Errorf("poll = %d, want 200 or 410", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()

	c := f.s.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	ent := c.workers["churner"]
	if ent == nil {
		t.Fatal("churner fell out of the registry")
	}
	for _, id := range c.jobOrder {
		fj := c.jobs[id]
		for _, cid := range fj.order {
			for _, a := range fj.cells[cid].assignees {
				if a.worker == "churner" && a.lease != ent.lease {
					t.Errorf("cell %s still assigned to superseded lease %d (current %d)", cid, a.lease, ent.lease)
				}
			}
		}
	}
}

// TestWatchKeyedReArm: re-arming an identity revokes the predecessor's
// pending stall verdict — only the newest registration can ever be killed,
// so a worker that re-registers is never condemned by its old self's
// silence.
func TestWatchKeyedReArm(t *testing.T) {
	w := newWatchdog(time.Hour, 50*time.Millisecond) // never started; swept by hand
	var beat1, beat2 atomic.Int64
	var killed1, killed2 atomic.Bool
	w.watchKeyed("ident", &beat1, func(error) { killed1.Store(true) })
	w.watchKeyed("ident", &beat2, func(error) { killed2.Store(true) }) // re-arm

	w.sweep(time.Now().Add(time.Minute)) // both counters silent far past the stall
	if killed1.Load() {
		t.Error("superseded registration's verdict fired")
	}
	if !killed2.Load() {
		t.Error("live registration was not killed")
	}
	if got := w.kills.Load(); got != 1 {
		t.Errorf("kills = %d, want 1", got)
	}
	// The verdict cleared the keyed slot: a fresh re-arm starts a fresh clock.
	var beat3 atomic.Int64
	var killed3 atomic.Bool
	unwatch := w.watchKeyed("ident", &beat3, func(error) { killed3.Store(true) })
	beat3.Add(1)
	w.sweep(time.Now().Add(2 * time.Minute)) // first sample sees progress
	if killed3.Load() {
		t.Error("beating registration was killed")
	}
	unwatch()
	w.sweep(time.Now().Add(time.Hour))
	if killed3.Load() {
		t.Error("unwatched registration was killed")
	}
}

// TestWatchKeyedVerdictCarriesCause: the keyed kill is an ordinary stall
// verdict — a *StuckRunError cause naming the identity.
func TestWatchKeyedVerdictCarriesCause(t *testing.T) {
	w := newWatchdog(time.Hour, 50*time.Millisecond)
	var beat atomic.Int64
	ctx, cancel := context.WithCancelCause(context.Background())
	w.watchKeyed("w-7", &beat, cancel)
	w.sweep(time.Now().Add(time.Minute))
	select {
	case <-ctx.Done():
	default:
		t.Fatal("stalled keyed registration was not cancelled")
	}
	var stuck *StuckRunError
	if !errors.As(context.Cause(ctx), &stuck) || stuck.ID != "w-7" {
		t.Fatalf("cause = %v, want StuckRunError for w-7", context.Cause(ctx))
	}
	// The slot is gone; a second sweep must not double-kill.
	w.sweep(time.Now().Add(2 * time.Minute))
	if got := w.kills.Load(); got != 1 {
		t.Errorf("kills = %d, want 1", got)
	}
}

// TestWatchKeyedChurnRace races re-arms against stall sweeps under -race.
// (A verdict collected just before a re-arm may still fire for the old
// incarnation — that is why markDead carries a lease guard, covered by
// TestRegistrySupersedeConcurrent; here the claim is narrower: the
// bookkeeping itself stays consistent under churn.)
func TestWatchKeyedChurnRace(t *testing.T) {
	w := newWatchdog(time.Hour, time.Nanosecond) // every sample is a stall verdict
	const idents = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < idents; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("w-%d", i)
			var beat atomic.Int64
			for !stop.Load() {
				w.watchKeyed(key, &beat, func(error) {})
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 200; j++ {
			w.sweep(time.Now())
		}
	}()
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Settled end state: one live registration per identity, each killable
	// exactly once, after which the maps are empty.
	w.mu.Lock()
	if len(w.items) != len(w.keyed) {
		t.Errorf("items (%d) and keyed (%d) diverged", len(w.items), len(w.keyed))
	}
	if len(w.keyed) > idents {
		t.Errorf("%d keyed slots survive for %d identities", len(w.keyed), idents)
	}
	w.mu.Unlock()
	before := w.kills.Load()
	live := len(w.keyed)
	w.sweep(time.Now().Add(time.Hour))
	if got := w.kills.Load() - before; got != int64(live) {
		t.Errorf("final sweep killed %d, want %d", got, live)
	}
	w.mu.Lock()
	if len(w.items) != 0 || len(w.keyed) != 0 {
		t.Errorf("maps not empty after final sweep: items=%d keyed=%d", len(w.items), len(w.keyed))
	}
	w.mu.Unlock()
}
