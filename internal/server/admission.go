package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the daemon's load-shedding front door: a bounded admission
// queue (requests beyond it are rejected immediately with an
// *OverloadError, which handlers turn into HTTP 429 + Retry-After) feeding
// a weighted FIFO concurrency limiter sized from GOMAXPROCS. The queue
// bounds *waiting* work so memory and latency stay bounded under overload;
// the limiter bounds *running* work so simulations never oversubscribe the
// machine. Explicit shedding is the design point — a daemon that queues
// unboundedly converts overload into OOM and unbounded tail latency.
//
// Admission is two-phase: reserve() claims a queue slot synchronously (the
// shed decision, made while the HTTP handler can still answer 429), then
// ticket.acquire() blocks until the limiter grants execution weight. The
// split lets sweeps be accepted-then-queued asynchronously while /run
// requests wait inline.

// OverloadError is returned when the admission queue is full. RetryAfter is
// the backoff hint handlers forward as the Retry-After header.
type OverloadError struct {
	Backlog    int
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: admission queue full (%d waiting); retry after %s", e.Backlog, e.RetryAfter)
}

// admission is the bounded queue in front of the limiter.
type admission struct {
	depth   int
	lim     *limiter
	backlog atomic.Int64
}

func newAdmission(queueDepth, concurrency int) *admission {
	if queueDepth < 1 {
		queueDepth = 1
	}
	return &admission{depth: queueDepth, lim: newLimiter(concurrency)}
}

// queued returns the number of admitted requests still waiting for limiter
// capacity (the /metrics queue-depth gauge).
func (a *admission) queued() int64 { return a.backlog.Load() }

// ticket is one reserved queue slot. Exactly one of acquire or abandon
// must be called on it.
type ticket struct{ a *admission }

// reserve claims a queue slot, shedding with *OverloadError when the queue
// is full.
func (a *admission) reserve() (*ticket, error) {
	n := a.backlog.Add(1)
	if int(n) > a.depth {
		a.backlog.Add(-1)
		// Scale the hint with how oversubscribed the limiter is: each
		// queued unit is roughly one limiter turn away.
		retry := time.Second * time.Duration(1+int(n)/a.lim.capacity())
		if retry > 30*time.Second {
			retry = 30 * time.Second
		}
		return nil, &OverloadError{Backlog: int(n) - 1, RetryAfter: retry}
	}
	return &ticket{a: a}, nil
}

// reserveForced claims a slot even past the bound. It is for work that was
// already admitted in a previous life of the process (journal recovery):
// shedding it would drop accepted requests, the one thing the journal
// exists to prevent.
func (a *admission) reserveForced() *ticket {
	a.backlog.Add(1)
	return &ticket{a: a}
}

// acquire blocks until the limiter grants weight units (clamped to the
// limiter's capacity), leaving the queue either way. On success the
// returned release frees the weight.
func (t *ticket) acquire(ctx context.Context, weight int) (release func(), err error) {
	weight = t.a.lim.clamp(weight)
	err = t.a.lim.acquire(ctx, weight)
	t.a.backlog.Add(-1)
	if err != nil {
		return nil, err
	}
	return func() { t.a.lim.release(weight) }, nil
}

// abandon gives the queue slot back without acquiring.
func (t *ticket) abandon() { t.a.backlog.Add(-1) }

// limiter is a FIFO weighted counting semaphore (the shape of
// golang.org/x/sync/semaphore, re-implemented to keep the module
// dependency-free). FIFO matters: without it a steady stream of weight-1
// runs could starve a wide sweep forever.
type limiter struct {
	mu      sync.Mutex
	cap     int
	used    int
	waiters list.List // of *limWaiter, front = oldest
}

type limWaiter struct {
	n     int
	ready chan struct{}
}

func newLimiter(capacity int) *limiter {
	if capacity < 1 {
		capacity = 1
	}
	return &limiter{cap: capacity}
}

func (l *limiter) capacity() int { return l.cap }

// clamp bounds a requested weight to what the limiter can ever grant.
func (l *limiter) clamp(n int) int {
	if n < 1 {
		return 1
	}
	if n > l.cap {
		return l.cap
	}
	return n
}

// inUse returns the currently held weight.
func (l *limiter) inUse() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

func (l *limiter) acquire(ctx context.Context, n int) error {
	l.mu.Lock()
	if l.waiters.Len() == 0 && l.used+n <= l.cap {
		l.used += n
		l.mu.Unlock()
		return nil
	}
	w := &limWaiter{n: n, ready: make(chan struct{})}
	elem := l.waiters.PushBack(w)
	l.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and taking the lock: keep the
			// books consistent by releasing the grant.
			l.mu.Unlock()
			l.release(n)
		default:
			l.waiters.Remove(elem)
			l.mu.Unlock()
		}
		return ctx.Err()
	}
}

func (l *limiter) release(n int) {
	l.mu.Lock()
	l.used -= n
	if l.used < 0 {
		panic("server: limiter released more than acquired")
	}
	// Grant from the front while the head fits (strict FIFO: a large
	// waiter at the head blocks smaller ones behind it, which is what
	// prevents starvation of wide sweeps).
	for e := l.waiters.Front(); e != nil; e = l.waiters.Front() {
		w := e.Value.(*limWaiter)
		if l.used+w.n > l.cap {
			break
		}
		l.used += w.n
		l.waiters.Remove(e)
		close(w.ready)
	}
	l.mu.Unlock()
}
