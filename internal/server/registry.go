package server

import (
	"net/http"
	"sync/atomic"
)

// The worker registry: who is alive, under which lease epoch, and what
// happens when that stops being true. One mutex (coordinator.mu) guards
// the registry AND the cell state it feeds — registration, supersession,
// death, and requeue are each a single critical section, so there is no
// window in which a cell is assigned to a lease the registry has already
// declared dead, and no window in which a re-registered worker coexists
// with its own stale registration.

// workerEnt is one registered worker.
type workerEnt struct {
	id    string
	lease uint64
	// beat counts authenticated requests (heartbeat, poll, result); the
	// liveness watchdog declares the worker dead when it sits still for
	// Config.WorkerDeadAfter.
	beat    atomic.Int64
	unwatch func()
	// strikes is the integrity ledger for this lease incarnation: digest
	// mismatches, lost audits, corrupt snapshot ships. Reaching the
	// quarantine threshold revokes the lease (strikeLocked).
	strikes int
}

// handleRegister is POST /fabric/register. Re-registering an existing
// identity — a worker that crashed and restarted, or one whose heartbeats
// were partitioned long enough that it wants a fresh lease — atomically
// supersedes the old registration: under one lock acquisition the old
// lease's in-flight cells are requeued, the liveness watch is re-armed
// (watchdog.watchKeyed revokes any pending stall verdict against the old
// incarnation), and the new lease becomes the only one the coordinator
// will assign to. There is no instant at which both incarnations can hold
// assignments, so a restart race cannot double-run a cell against two
// lease epochs the coordinator still believes in.
func (c *coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := c.s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "worker identity required"})
		return
	}
	c.mu.Lock()
	c.leaseSeq++
	lease := c.leaseSeq
	if old := c.workers[req.Worker]; old != nil {
		old.unwatch()
		c.dropAssignmentsLocked(req.Worker, old.lease)
	} else {
		c.ring.Add(req.Worker)
	}
	ent := &workerEnt{id: req.Worker, lease: lease}
	ent.unwatch = c.wd.watchKeyed(req.Worker, &ent.beat, func(error) {
		c.markDead(req.Worker, lease)
	})
	c.workers[req.Worker] = ent
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, registerResponse{Lease: lease})
}

// handleHeartbeat is POST /fabric/heartbeat.
func (c *coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := c.s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	c.mu.Lock()
	ent := c.workers[req.Worker]
	ok := ent != nil && ent.lease == req.Lease
	if ok {
		ent.beat.Add(1)
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, map[string]any{"error": "stale lease; re-register"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleDeregister is POST /fabric/deregister: a worker draining
// gracefully. Its unfinished cells requeue immediately (their latest
// snapshots were shipped during the drain, so a peer resumes mid-cell
// rather than from cycle 0).
func (c *coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := c.s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	c.mu.Lock()
	if ent := c.workers[req.Worker]; ent != nil && ent.lease == req.Lease {
		ent.unwatch()
		delete(c.workers, req.Worker)
		c.ring.Remove(req.Worker)
		c.dropAssignmentsLocked(req.Worker, req.Lease)
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// markDead is the liveness watchdog's verdict: the worker's beat counter
// sat still for WorkerDeadAfter. The lease guard makes stale verdicts
// harmless — if the worker re-registered while the verdict was in flight,
// the registry entry carries a newer lease and the kill is ignored (the
// watchdog's own revocation already makes this unlikely; the guard makes
// it impossible).
func (c *coordinator) markDead(id string, lease uint64) {
	c.mu.Lock()
	ent := c.workers[id]
	if ent == nil || ent.lease != lease {
		c.mu.Unlock()
		return
	}
	delete(c.workers, id)
	c.ring.Remove(id)
	c.s.met.workersDead.Add(1)
	c.dropAssignmentsLocked(id, lease)
	c.mu.Unlock()
}

// dropAssignmentsLocked removes every assignment held by (worker, lease)
// across all jobs; cells left with no live assignee go back to pending,
// to be re-assigned — snapshot attached, if one was shipped — by the next
// poll. An audit in flight on the departing worker reverts to its pending
// state so another worker re-runs it (a forgotten audit would hold the
// sweep's finish condition open forever). Requires c.mu.
func (c *coordinator) dropAssignmentsLocked(worker string, lease uint64) {
	requeued := 0
	for _, id := range c.jobOrder {
		fj := c.jobs[id]
		for _, cid := range fj.order {
			cell := fj.cells[cid]
			n := cell.assignees[:0]
			for _, a := range cell.assignees {
				if !(a.worker == worker && a.lease == lease) {
					n = append(n, a)
				}
			}
			cell.assignees = n
			if cell.state == cellInflight && len(cell.assignees) == 0 {
				cell.state = cellPending
				fj.pendingN++
				requeued++
			}
			if (cell.audit == auditInflight || cell.audit == tiebreakInflight) &&
				cell.auditWorker == worker && cell.auditLease == lease {
				cell.audit--
			}
		}
	}
	if requeued > 0 {
		c.s.met.cellsRequeued.Add(int64(requeued))
	}
}

// strikeLocked charges one integrity strike against a worker's current
// registration. At Config.QuarantineStrikes the worker is quarantined:
// lease revoked, liveness watch stopped, in-flight cells requeued — the
// same teardown as a death verdict, plus the workers_quarantined metric.
// Strikes are per lease incarnation, so re-admission is exactly one
// explicit re-register away (a fresh epoch starts clean); a persistently
// corrupting worker just re-earns its quarantine, incrementing the metric
// each time, while its cells keep re-serving from honest peers.
// Requires c.mu.
func (c *coordinator) strikeLocked(id string) {
	ent := c.workers[id]
	if ent == nil {
		return // already gone (dead, deregistered, or quarantined)
	}
	ent.strikes++
	if ent.strikes < c.s.cfg.QuarantineStrikes {
		return
	}
	ent.unwatch()
	delete(c.workers, id)
	c.ring.Remove(id)
	c.s.met.workersQuarantined.Add(1)
	c.dropAssignmentsLocked(id, ent.lease)
}

// workersLive returns the registered worker count (the /metrics gauge).
func (c *coordinator) workersLive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}
