package server

import (
	"sync"
	"testing"
	"time"
)

// TestMetricsConcurrentRecording hammers every counter-mutating path while
// snapshot renders, so `go test -race` certifies the /metrics surface: the
// expvar counters, the latency histogram, and the render itself may all run
// concurrently in the live server (per-cell observers vs. HTTP handlers).
func TestMetricsConcurrentRecording(t *testing.T) {
	var m metrics
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.observeCell(1+i%3, i%2 == 0, i%5 == 0)
				m.latency.Observe(time.Duration(w+1) * time.Millisecond)
				m.preempts.Add(1)
				m.jobsRequeued.Add(1)
				m.shed.Add(1)
				m.cellsStolen.Add(1)
				m.cellsRequeued.Add(1)
				m.workersDead.Add(1)
				m.snapshotsShipped.Add(1)
				m.auditsRun.Add(1)
				m.auditsDisagreed.Add(1)
				m.integrityFailures.Add(1)
				m.workersQuarantined.Add(1)
				m.scrubPasses.Add(1)
				m.scrubRepaired.Add(1)
				m.scrubQuarantined.Add(1)
				m.scrubCorruptRecords.Add(1)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := m.snapshot(3, 2, 1)
				cells := snap["cells_done"].(int64) + snap["cells_restored"].(int64) + snap["cells_failed"].(int64)
				if cells < 0 || cells > 2000 {
					t.Errorf("cell counters out of range: %d", cells)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	snap := m.snapshot(0, 0, 0)
	cells := snap["cells_done"].(int64) + snap["cells_restored"].(int64) + snap["cells_failed"].(int64)
	if cells != 2000 {
		t.Errorf("settled cells = %d, want 2000", cells)
	}
	if got := snap["preempts"].(int64); got != 2000 {
		t.Errorf("preempts = %d, want 2000", got)
	}
	for _, k := range []string{"cells_stolen", "cells_requeued", "workers_dead", "snapshots_shipped",
		"audits_run", "audits_disagreed", "integrity_failures", "workers_quarantined",
		"scrub_passes", "scrub_repaired", "scrub_quarantined", "scrub_corrupt_records"} {
		if got := snap[k].(int64); got != 2000 {
			t.Errorf("%s = %d, want 2000", k, got)
		}
	}
	if lat := snap["run_latency_us"].(map[string]any); lat["count"].(int64) != 2000 {
		t.Errorf("latency count = %v, want 2000", lat["count"])
	}
}
