package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestAuditSampledDeterministic: the audit sampler is a pure function of
// (sweep, cell, rate) — the same cell gets the same verdict on every call
// and across coordinator restarts — with the edge rates exact and the
// mid-range rate roughly proportional.
func TestAuditSampledDeterministic(t *testing.T) {
	const sweep = "sweep-7f3a"
	hits := 0
	for i := 0; i < 2000; i++ {
		cell := fmt.Sprintf("cell-%d", i)
		if auditSampled(sweep, cell, 0) {
			t.Fatalf("rate 0 sampled %s", cell)
		}
		if !auditSampled(sweep, cell, 1) {
			t.Fatalf("rate 1 skipped %s", cell)
		}
		picked := auditSampled(sweep, cell, 0.25)
		if picked != auditSampled(sweep, cell, 0.25) {
			t.Fatalf("verdict for %s changed between calls", cell)
		}
		if picked {
			hits++
		}
	}
	// Deterministic, so these bounds either always hold or never do;
	// they pin the hash's uniformity, not luck.
	if hits < 350 || hits > 650 {
		t.Errorf("rate 0.25 sampled %d/2000 cells, want ~500", hits)
	}
}

// TestDigestGateStrikesAndQuarantines drives the full quarantine arc at the
// protocol level: a result whose digest disagrees with its stats is
// rejected with 400 before touching any journal, the cell requeues, and —
// with the strike threshold at 1 — the sender's lease is revoked on the
// spot. Re-registration is the re-admission path: a fresh epoch, a clean
// strike ledger, and the requeued cell offered back at a higher attempt.
func TestDigestGateStrikesAndQuarantines(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Coordinator:       true,
		JournalDir:        t.TempDir(),
		WorkerDeadAfter:   time.Hour,
		StealAfter:        time.Hour,
		QuarantineStrikes: 1,
	})
	resp, m := postJSON(t, ts.URL+"/sweep", fabricSpec(tinySrc, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep = %d: %v", resp.StatusCode, m)
	}
	sweepID := m["id"].(string)

	resp, m = postJSON(t, ts.URL+"/fabric/register", registerRequest{Worker: "liar"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d: %v", resp.StatusCode, m)
	}
	lease := uint64(m["lease"].(float64))
	poll := func(lease uint64) []cellAssignment {
		t.Helper()
		b, _ := json.Marshal(pollRequest{Worker: "liar", Lease: lease, Max: 16})
		resp, err := http.Post(ts.URL+"/fabric/poll", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll = %d", resp.StatusCode)
		}
		var pr pollResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr.Cells
	}
	cells := poll(lease)
	if len(cells) == 0 {
		t.Fatal("no cells assigned")
	}

	// Ship stats that do not match their own digest: the gate must reject
	// the delivery itself (400), not just ignore it.
	body, _ := json.Marshal(map[string]any{
		"worker": "liar", "lease": lease, "sweep_id": sweepID,
		"cell": cells[0].Cell, "attempt": cells[0].Attempt,
		"stats": map[string]any{"Cycles": 5}, "digest": "00000000:1",
	})
	resp, err := http.Post(ts.URL+"/fabric/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt result = %d, want 400", resp.StatusCode)
	}
	if n := s.met.integrityFailures.Value(); n != 1 {
		t.Errorf("integrity_failures = %d, want 1", n)
	}
	if n := s.met.workersQuarantined.Value(); n != 1 {
		t.Errorf("workers_quarantined = %d, want 1", n)
	}

	// The quarantine revoked the lease: heartbeats on it get 410.
	resp, _ = postJSON(t, ts.URL+"/fabric/heartbeat", heartbeatRequest{Worker: "liar", Lease: lease})
	if resp.StatusCode != http.StatusGone {
		t.Errorf("heartbeat on quarantined lease = %d, want 410", resp.StatusCode)
	}

	// Re-admission: register again, get a fresh epoch, and find the
	// rejected cell requeued at a strictly higher attempt ordinal.
	resp, m = postJSON(t, ts.URL+"/fabric/register", registerRequest{Worker: "liar"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register = %d: %v", resp.StatusCode, m)
	}
	lease2 := uint64(m["lease"].(float64))
	if lease2 <= lease {
		t.Fatalf("re-admission lease %d does not supersede %d", lease2, lease)
	}
	requeued := poll(lease2)
	found := false
	for _, c := range requeued {
		if c.Cell == cells[0].Cell {
			found = true
			if c.Attempt <= cells[0].Attempt {
				t.Errorf("requeued attempt %d does not supersede %d", c.Attempt, cells[0].Attempt)
			}
		}
	}
	if !found {
		t.Errorf("rejected cell %s was not requeued", cells[0].Cell)
	}
}
