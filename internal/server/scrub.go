package server

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fgpsim/internal/exp"
	"fgpsim/internal/snapshot"
)

// The background scrubber (DESIGN.md §17): a low-priority loop that
// re-walks everything the server has parked on disk — cell journals and
// mid-run snapshots — verifying CRC frames and record digests at rest,
// long before a crash-recovery or a resume would trip over them.
//
// The two artifact classes get different treatment because they carry
// different stakes:
//
//   - Snapshots are resume hints. A corrupt primary is repaired from its
//     .prev rotation (snapshot.ScrubFileOn); when neither copy decodes,
//     both are renamed *.quarantined so the read ladder falls through to
//     an older shipped copy or a cycle-0 restart. Losing one costs
//     checkpoint progress, never correctness.
//   - Cell journals are the record of truth. The scrubber only DETECTS
//     here (exp.ScrubJournalOn): a journal is append-only and live —
//     rewriting it under a concurrent appender would risk the very
//     corruption the scrubber exists to catch. A bad record is counted
//     (scrub_corrupt_records, an operator page) and logged; the merge
//     path's own digest verification skips it at read time, and the
//     cell re-serves from a peer on the next recovery.

// scrubLoop runs until scrubStop closes, scrubbing every ScrubInterval.
// Caller has done s.wg.Add(1).
func (s *Server) scrubLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.scrubStop:
			return
		case <-t.C:
			s.scrubPass()
		}
	}
}

// scrubPass walks the journal directory and every snapshot directory once.
func (s *Server) scrubPass() {
	disk := s.cfg.disk()

	// Cell journals: detection only.
	journals, _ := filepath.Glob(filepath.Join(s.cfg.JournalDir, "sweep-*.cells"))
	for _, p := range journals {
		_, bad, err := exp.ScrubJournalOn(disk, p)
		if err != nil {
			continue // unreadable this pass; the next one retries
		}
		for _, ie := range bad {
			fmt.Fprintf(os.Stderr, "server: scrub: %v\n", ie)
		}
		s.met.scrubCorruptRecords.Add(int64(len(bad)))
	}

	// Snapshots: repair from .prev, quarantine what cannot be repaired.
	// Both the /run-path snapshot dir and the coordinator's shipped-copy
	// dir are covered; globbing *.snap leaves .prev rotations and already-
	// quarantined files alone (ScrubFileOn handles each primary's .prev).
	dirs := []string{s.snapshotDir(), filepath.Join(s.cfg.JournalDir, "fabric-snapshots")}
	for _, dir := range dirs {
		snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
		for _, p := range snaps {
			outcome, err := snapshot.ScrubFileOn(disk, p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "server: scrub: %v\n", err)
			}
			switch outcome {
			case snapshot.ScrubRepaired:
				s.met.scrubRepaired.Add(1)
			case snapshot.ScrubQuarantined:
				s.met.scrubQuarantined.Add(1)
			}
		}
	}
	s.met.scrubPasses.Add(1)
}
