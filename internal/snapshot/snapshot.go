// Package snapshot serializes engine checkpoints into durable, versioned,
// corruption-detecting files so an interrupted simulation can resume
// bit-identically after a crash. The format is a deliberately boring custom
// binary encoding rather than gob: little-endian fixed-width fields written
// in a fixed order (maps by sorted key), so the same state always encodes
// to the same bytes — snapshots can be compared, hashed, and golden-tested.
//
// A snapshot file is:
//
//	magic "FGPSNAP\x01"
//	frame 0: meta    — format version, run fingerprint
//	frame 1: engine  — core.EngineState
//	frame 2: injector (optional) — faultinject.State
//
// where each frame is [u32 length][u32 CRC32-C of payload][payload]. A torn
// write (crash mid-write) or bit rot fails the length or CRC check and
// surfaces as a *CorruptError; callers fall back to the previous good
// snapshot (WriteFile rotates path -> path.prev before replacing) and from
// there to the cell journal or a fresh run — the fallback ladder in
// DESIGN.md §12.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/ir"
	"fgpsim/internal/mem"
	"fgpsim/internal/stats"
)

// FormatVersion is bumped whenever the frame payloads change shape; a
// mismatch is a *CorruptError (old snapshots are not migrated — a stale
// snapshot just means a fresh run).
const FormatVersion = 1

var magic = [8]byte{'F', 'G', 'P', 'S', 'N', 'A', 'P', 1}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is one durable checkpoint: the engine state, the identity of the
// run it belongs to, and (when fault injection is active) the injector's
// stream position.
type Snapshot struct {
	// Fingerprint pins the snapshot to a (image, inputs, hints) triple; see
	// RunFingerprint. Restoring under a different fingerprint is refused.
	Fingerprint uint64

	Engine *core.EngineState

	// Injector is nil when the run has no fault injection.
	Injector *faultinject.State
}

// CorruptError reports a snapshot that failed structural validation: torn
// frame, CRC mismatch, version skew, or inconsistent payload.
type CorruptError struct{ Reason string }

func (e *CorruptError) Error() string { return "snapshot: corrupt: " + e.Reason }

func corrupt(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// ---------- encoding ----------

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
}

func encodeStats(e *enc, r *stats.Run) {
	e.i64(r.Cycles)
	e.i64(r.RetiredNodes)
	e.i64(r.ExecutedNodes)
	e.i64(r.DiscardedNodes)
	e.i64(r.RetiredBlocks)
	e.i64(r.Mispredicts)
	e.i64(r.Faults)
	e.i64(r.Branches)
	e.i64(r.BranchesCorrect)
	e.i64(r.CacheHits)
	e.i64(r.CacheMisses)
	e.i64(r.WindowBlockSum)
	e.i64(r.WindowNodeSum)
	e.i64(r.InjectedFaults)
	e.i64(r.RepairedFaults)
	e.i64(r.EFDegradations)
	e.i64(r.Work)
	sizes := r.SortedSizes()
	e.u32(uint32(len(sizes)))
	for _, s := range sizes {
		e.i64(int64(s))
		e.i64(r.BlockSizes[s])
	}
}

func encodeEngine(st *core.EngineState) []byte {
	e := &enc{}
	e.bool(st.Static)
	e.i64(st.Cycle)
	e.bytes(st.Mem)
	e.i64(st.InPos[0])
	e.i64(st.InPos[1])
	e.bytes(st.Out)
	for _, v := range st.Regs {
		e.i32(v)
	}
	for _, v := range st.RegReady {
		e.i64(v)
	}
	e.u32(uint32(len(st.RetStack)))
	for _, b := range st.RetStack {
		e.i32(int32(b))
	}
	e.i32(int32(st.NextBlock))
	e.i64(st.Cursor)
	e.i64(st.MemEpoch)
	e.i64(st.LastLoadRetry)
	e.i64(st.BlockedLoadGhosts)
	encodeStats(e, st.Stats)
	if st.Cache == nil {
		e.bool(false)
	} else {
		e.bool(true)
		c := st.Cache
		e.i32(c.Sets)
		e.u32(uint32(len(c.Tags)))
		for _, t := range c.Tags {
			e.u32(t)
		}
		e.bytes(c.LRU)
		e.i64(c.Hits)
		e.i64(c.Misses)
	}
	if st.Pred == nil {
		e.bool(false)
	} else {
		e.bool(true)
		p := st.Pred
		e.u8(p.Kind)
		e.u32(uint32(len(p.Tags)))
		for _, t := range p.Tags {
			e.i32(t)
		}
		e.bytes(p.Ctr)
		e.i64(p.Hits)
		e.u32(p.History)
		e.u32(uint32(len(p.Seen)))
		for _, b := range p.Seen {
			e.i32(int32(b))
		}
		e.i64(p.Lookups)
	}
	return e.b
}

func appendFrame(out, payload []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// Encode serializes a snapshot. The output is deterministic: equal
// snapshots encode to equal bytes.
func Encode(s *Snapshot) []byte {
	meta := &enc{}
	meta.u32(FormatVersion)
	meta.u64(s.Fingerprint)
	// The meta frame records whether an injector frame follows, so a file
	// torn exactly at the frame boundary cannot pass for a complete
	// injector-less snapshot.
	meta.bool(s.Injector != nil)

	out := append([]byte(nil), magic[:]...)
	out = appendFrame(out, meta.b)
	out = appendFrame(out, encodeEngine(s.Engine))
	if s.Injector != nil {
		inj := &enc{}
		inj.u64(s.Injector.RNG)
		inj.i64(s.Injector.Tried)
		inj.i64(s.Injector.Events)
		out = appendFrame(out, inj.b)
	}
	return out
}

// ---------- decoding ----------

// dec is a bounds-checked cursor over untrusted bytes: every read verifies
// the remaining length first and every slice allocation is capped by the
// bytes actually present, so a hostile input (FuzzDecode) can neither panic
// nor force an oversized allocation.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corrupt(format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.fail("truncated: need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i32() int32 { return int32(d.u32()) }
func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad boolean byte")
		return false
	}
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// count reads a u32 element count for elements of elemSize bytes, bounded
// by the bytes remaining.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && n*elemSize > len(d.b) {
		d.fail("element count %d exceeds remaining %d bytes", n, len(d.b))
		return 0
	}
	return n
}

func decodeStats(d *dec) *stats.Run {
	r := stats.New()
	r.Cycles = d.i64()
	r.RetiredNodes = d.i64()
	r.ExecutedNodes = d.i64()
	r.DiscardedNodes = d.i64()
	r.RetiredBlocks = d.i64()
	r.Mispredicts = d.i64()
	r.Faults = d.i64()
	r.Branches = d.i64()
	r.BranchesCorrect = d.i64()
	r.CacheHits = d.i64()
	r.CacheMisses = d.i64()
	r.WindowBlockSum = d.i64()
	r.WindowNodeSum = d.i64()
	r.InjectedFaults = d.i64()
	r.RepairedFaults = d.i64()
	r.EFDegradations = d.i64()
	r.Work = d.i64()
	n := d.count(16)
	for i := 0; i < n && d.err == nil; i++ {
		size := d.i64()
		cnt := d.i64()
		r.BlockSizes[int(size)] = cnt
	}
	return r
}

func decodeEngine(payload []byte) (*core.EngineState, error) {
	d := &dec{b: payload}
	st := &core.EngineState{}
	st.Static = d.bool()
	st.Cycle = d.i64()
	st.Mem = d.bytes()
	st.InPos[0] = d.i64()
	st.InPos[1] = d.i64()
	st.Out = d.bytes()
	for i := range st.Regs {
		st.Regs[i] = d.i32()
	}
	for i := range st.RegReady {
		st.RegReady[i] = d.i64()
	}
	n := d.count(4)
	if n > 0 && d.err == nil {
		st.RetStack = make([]ir.BlockID, n)
		for i := range st.RetStack {
			st.RetStack[i] = ir.BlockID(d.i32())
		}
	}
	st.NextBlock = ir.BlockID(d.i32())
	st.Cursor = d.i64()
	st.MemEpoch = d.i64()
	st.LastLoadRetry = d.i64()
	st.BlockedLoadGhosts = d.i64()
	st.Stats = decodeStats(d)
	if d.bool() {
		c := &mem.CacheState{}
		c.Sets = d.i32()
		tn := d.count(4)
		if tn > 0 && d.err == nil {
			c.Tags = make([]uint32, tn)
			for i := range c.Tags {
				c.Tags[i] = d.u32()
			}
		}
		c.LRU = d.bytes()
		c.Hits = d.i64()
		c.Misses = d.i64()
		st.Cache = c
	}
	if d.bool() {
		p := &branch.State{}
		p.Kind = d.u8()
		tn := d.count(4)
		if tn > 0 && d.err == nil {
			p.Tags = make([]int32, tn)
			for i := range p.Tags {
				p.Tags[i] = d.i32()
			}
		}
		p.Ctr = d.bytes()
		p.Hits = d.i64()
		p.History = d.u32()
		sn := d.count(4)
		if sn > 0 && d.err == nil {
			p.Seen = make([]ir.BlockID, sn)
			for i := range p.Seen {
				p.Seen[i] = ir.BlockID(d.i32())
			}
		}
		p.Lookups = d.i64()
		st.Pred = p
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, corrupt("%d trailing bytes in engine frame", len(d.b))
	}
	return st, nil
}

// readFrame splits one [len][crc][payload] frame off data.
func readFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < 8 {
		return nil, nil, corrupt("truncated frame header")
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if int(n) > len(data)-8 {
		return nil, nil, corrupt("frame length %d exceeds remaining %d bytes", n, len(data)-8)
	}
	payload = data[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, nil, corrupt("frame CRC mismatch")
	}
	return payload, data[8+n:], nil
}

// Decode parses a snapshot, verifying magic, version, and every frame CRC.
// Any structural problem returns a *CorruptError; Decode never panics on
// hostile input (see FuzzDecode).
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic) {
		return nil, corrupt("shorter than magic")
	}
	for i := range magic {
		if data[i] != magic[i] {
			return nil, corrupt("bad magic")
		}
	}
	data = data[len(magic):]

	metaRaw, data, err := readFrame(data)
	if err != nil {
		return nil, err
	}
	md := &dec{b: metaRaw}
	version := md.u32()
	fingerprint := md.u64()
	hasInjector := md.bool()
	if md.err != nil {
		return nil, md.err
	}
	if version != FormatVersion {
		return nil, corrupt("format version %d, want %d", version, FormatVersion)
	}

	engRaw, data, err := readFrame(data)
	if err != nil {
		return nil, err
	}
	eng, err := decodeEngine(engRaw)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Fingerprint: fingerprint, Engine: eng}

	if hasInjector && len(data) == 0 {
		return nil, corrupt("injector frame promised but missing")
	}
	if !hasInjector && len(data) != 0 {
		return nil, corrupt("unexpected frame after engine state")
	}
	if len(data) > 0 {
		injRaw, rest, err := readFrame(data)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, corrupt("%d trailing bytes after injector frame", len(rest))
		}
		id := &dec{b: injRaw}
		st := &faultinject.State{}
		st.RNG = id.u64()
		st.Tried = id.i64()
		st.Events = id.i64()
		if id.err != nil {
			return nil, id.err
		}
		if len(id.b) != 0 {
			return nil, corrupt("%d trailing bytes in injector frame", len(id.b))
		}
		s.Injector = st
	}
	return s, nil
}
