package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"fgpsim/internal/chaos"
)

// This file is the scrubber's snapshot half (DESIGN.md §17): verify a
// snapshot file's CRC frames at rest, repair a corrupt primary from its
// rotated .prev where possible, and quarantine (rename, typed error) where
// not. Snapshots are resume hints — losing one costs checkpoint progress,
// never correctness — so the scrubber is free to be aggressive about
// getting corrupt bytes out of the fallback ladder's way.

// quarantineSuffix marks a file the scrubber took out of service: neither
// it nor its .prev decoded, so it must never again satisfy a read ladder.
const quarantineSuffix = ".quarantined"

// ScrubOutcome is one snapshot path's scrub verdict.
type ScrubOutcome int

const (
	// ScrubOK: the primary decodes (any corrupt .prev was removed).
	ScrubOK ScrubOutcome = iota
	// ScrubMissing: no primary file; nothing to verify.
	ScrubMissing
	// ScrubRepaired: the primary was corrupt and was atomically replaced
	// with its decodable .prev.
	ScrubRepaired
	// ScrubQuarantined: neither primary nor .prev decodes; both were
	// renamed *.quarantined and a *QuarantinedFileError returned.
	ScrubQuarantined
)

// QuarantinedFileError reports a snapshot whose every on-disk copy failed
// verification: the scrubber renamed the file(s) out of the read ladder
// and the next assignee of the cell starts from cycle 0 (or an older
// shipped copy) instead of resuming corrupt state.
type QuarantinedFileError struct {
	Path string
	Err  error // the primary's decode failure
}

func (e *QuarantinedFileError) Error() string {
	return fmt.Sprintf("snapshot: %s quarantined: no decodable copy: %v", e.Path, e.Err)
}

func (e *QuarantinedFileError) Unwrap() error { return e.Err }

// ScrubFileOn verifies one snapshot path at rest and repairs or
// quarantines it. Reads go through disk.ReadFile so seeded bitrot faults
// (chaos.BitrotRead) reach them; a fault on a scrub read can therefore
// cause a false repair — the .prev promoted over a healthy primary — which
// costs one checkpoint of resume progress and nothing else.
//
// Concurrent writers are tolerated by construction: WriteFileOn replaces
// the primary with a rename, and every scrub mutation is itself a rename,
// so the loser of a race leaves either the writer's fresh snapshot or the
// scrubber's repair — both decodable — never a torn file.
func ScrubFileOn(disk chaos.Disk, path string) (ScrubOutcome, error) {
	prev := path + prevSuffix
	_, errMain := readOne(disk, path)
	if errMain == nil {
		// Healthy primary. A corrupt .prev is dead weight that the read
		// ladder could still fall back to if the primary vanishes; clear it.
		if _, errPrev := readOne(disk, prev); errPrev != nil && !errors.Is(errPrev, os.ErrNotExist) {
			disk.Remove(prev)
		}
		return ScrubOK, nil
	}
	if errors.Is(errMain, os.ErrNotExist) {
		return ScrubMissing, nil
	}
	// Corrupt primary: promote the .prev if it decodes.
	if data, errPrev := disk.ReadFile(prev); errPrev == nil {
		if _, derr := Decode(data); derr == nil {
			if err := replaceFile(disk, path, data); err != nil {
				return ScrubOK, fmt.Errorf("snapshot: scrub repair %s: %w", path, err)
			}
			return ScrubRepaired, nil
		}
	}
	// No decodable copy anywhere: take both out of the read ladder.
	disk.Rename(path, path+quarantineSuffix)
	if _, err := disk.Stat(prev); err == nil {
		disk.Rename(prev, prev+quarantineSuffix)
	}
	return ScrubQuarantined, &QuarantinedFileError{Path: path, Err: errMain}
}

// replaceFile atomically writes data at path WITHOUT the WriteFileOn
// rotation: rotating here would shuffle the corrupt primary over the good
// .prev the repair just came from, destroying the only healthy copy.
func replaceFile(disk chaos.Disk, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := disk.CreateTemp(dir, ".snap-scrub-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		disk.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		disk.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		disk.Remove(tmpName)
		return err
	}
	if err := disk.Rename(tmpName, path); err != nil {
		disk.Remove(tmpName)
		return err
	}
	disk.SyncDir(dir)
	return nil
}
