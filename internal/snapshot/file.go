package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fgpsim/internal/chaos"
	"fgpsim/internal/core"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
)

// This file is the durability layer: snapshots reach disk atomically (temp
// file + fsync + rename) and are read back through a two-deep fallback
// ladder (path, then path.prev), so a crash at any instant leaves at least
// one decodable snapshot behind.

// prevSuffix names the previous good snapshot kept alongside the current
// one; WriteFile rotates into it before replacing.
const prevSuffix = ".prev"

// WriteFile atomically persists a snapshot at path. The bytes are written
// to a temp file in the same directory and fsynced before any rename, the
// existing snapshot (if any) is rotated to path.prev, and the directory is
// synced last — so a crash anywhere in the sequence leaves either the old
// snapshot, the new one, or both, never a half-written file at path.
func WriteFile(path string, s *Snapshot) error {
	return WriteFileOn(chaos.OS{}, path, s)
}

// WriteFileOn is WriteFile on an explicit disk, the seam the chaos harness
// injects filesystem faults through.
func WriteFileOn(disk chaos.Disk, path string, s *Snapshot) error {
	data := Encode(s)
	dir := filepath.Dir(path)
	tmp, err := disk.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		disk.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		disk.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := disk.Stat(path); err == nil {
		if err := disk.Rename(path, path+prevSuffix); err != nil {
			disk.Remove(tmpName)
			return fmt.Errorf("snapshot: rotate: %w", err)
		}
	}
	if err := disk.Rename(tmpName, path); err != nil {
		disk.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	disk.SyncDir(dir) // best-effort: some filesystems refuse directory fsync
	return nil
}

// ReadLatest loads the newest decodable snapshot for path, trying path
// first and falling back to path.prev when path is missing, torn, or
// corrupt. os.ErrNotExist is returned (wrapped) only when neither file
// exists; a decodable-nowhere state reports the primary's corruption.
func ReadLatest(path string) (*Snapshot, error) {
	return ReadLatestOn(chaos.OS{}, path)
}

// ReadLatestOn is ReadLatest on an explicit disk.
func ReadLatestOn(disk chaos.Disk, path string) (*Snapshot, error) {
	s, errMain := readOne(disk, path)
	if errMain == nil {
		return s, nil
	}
	s, errPrev := readOne(disk, path+prevSuffix)
	if errPrev == nil {
		return s, nil
	}
	if errors.Is(errMain, os.ErrNotExist) && errors.Is(errPrev, os.ErrNotExist) {
		return nil, fmt.Errorf("snapshot: none at %s: %w", path, os.ErrNotExist)
	}
	if errors.Is(errMain, os.ErrNotExist) {
		return nil, errPrev
	}
	return nil, errMain
}

func readOne(disk chaos.Disk, path string) (*Snapshot, error) {
	data, err := disk.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return Decode(data)
}

// Remove deletes a snapshot and its rotated predecessor; missing files are
// fine (a finished run cleans up whatever is there).
func Remove(path string) {
	RemoveOn(chaos.OS{}, path)
}

// RemoveOn is Remove on an explicit disk.
func RemoveOn(disk chaos.Disk, path string) {
	disk.Remove(path)
	disk.Remove(path + prevSuffix)
}

// RunFingerprint pins a snapshot to everything that determines a run's
// trajectory: the image (program + timing configuration, via
// loader.Image.Fingerprint), both input streams, and the branch hints. Two
// runs with equal fingerprints replay identically, so a snapshot from one
// resumes the other.
func RunFingerprint(img *loader.Image, in0, in1 []byte, hints map[ir.BlockID]bool) uint64 {
	h := fnv64(fnvOffset)
	h.u64(img.Fingerprint())
	h.blob(in0)
	h.blob(in1)
	h.u64(uint64(len(hints)))
	keys := make([]int, 0, len(hints))
	for k := range hints {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		h.u64(uint64(int64(k)))
		if hints[ir.BlockID(k)] {
			h.byte(1)
		} else {
			h.byte(0)
		}
	}
	return uint64(h)
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

type fnv64 uint64

func (h *fnv64) byte(b byte) { *h = (*h ^ fnv64(b)) * fnvPrime }

func (h *fnv64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnv64) blob(b []byte) {
	h.u64(uint64(len(b)))
	for _, c := range b {
		h.byte(c)
	}
}

// Saver returns a core.Limits.Checkpoint hook that persists every
// checkpoint to path under the given fingerprint, capturing the injector's
// stream position alongside when inj is non-nil.
func Saver(path string, fingerprint uint64, inj *faultinject.Injector) func(*core.EngineState) error {
	return SaverOn(chaos.OS{}, path, fingerprint, inj)
}

// SaverOn is Saver on an explicit disk.
func SaverOn(disk chaos.Disk, path string, fingerprint uint64, inj *faultinject.Injector) func(*core.EngineState) error {
	return func(st *core.EngineState) error {
		s := &Snapshot{Fingerprint: fingerprint, Engine: st}
		if inj != nil {
			s.Injector = inj.State()
		}
		return WriteFileOn(disk, path, s)
	}
}
