package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fgpsim/internal/chaos"
)

// corruptFile flips one byte in the middle of path's payload region (past
// the 8-byte frame header so length framing survives and the CRC catches it).
func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrubFileHealthy: a decodable primary scrubs to ScrubOK and a corrupt
// .prev lingering behind it is removed so the read ladder can never fall
// back onto bad bytes.
func TestScrubFileHealthy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cell.snap")
	cur, _ := writePair(t, path)
	corruptFile(t, path+".prev")

	got, err := ScrubFileOn(chaos.OS{}, path)
	if got != ScrubOK || err != nil {
		t.Fatalf("ScrubFileOn = %v, %v; want ScrubOK, nil", got, err)
	}
	if _, err := os.Stat(path + ".prev"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt .prev still present after scrub: %v", err)
	}
	s, err := ReadLatest(path)
	if err != nil || s.Fingerprint != cur {
		t.Fatalf("primary damaged by scrub: %v (fp %x, want %x)", err, s.Fingerprint, cur)
	}
}

// TestScrubFileRepairsFromPrev: a corrupt primary with a decodable .prev is
// atomically replaced by the .prev's bytes — a resume hint one checkpoint
// older, but decodable — and the verdict is ScrubRepaired.
func TestScrubFileRepairsFromPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cell.snap")
	_, prevFp := writePair(t, path)
	corruptFile(t, path)

	got, err := ScrubFileOn(chaos.OS{}, path)
	if got != ScrubRepaired || err != nil {
		t.Fatalf("ScrubFileOn = %v, %v; want ScrubRepaired, nil", got, err)
	}
	s, err := ReadLatest(path)
	if err != nil {
		t.Fatalf("repaired primary does not decode: %v", err)
	}
	if s.Fingerprint != prevFp {
		t.Errorf("repaired fingerprint %x, want the .prev's %x", s.Fingerprint, prevFp)
	}
}

// TestScrubFileQuarantines: with both copies corrupt there is nothing to
// repair from; the scrubber renames both out of the read ladder and returns
// the typed *QuarantinedFileError so callers can count it.
func TestScrubFileQuarantines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cell.snap")
	writePair(t, path)
	corruptFile(t, path)
	corruptFile(t, path+".prev")

	got, err := ScrubFileOn(chaos.OS{}, path)
	if got != ScrubQuarantined {
		t.Fatalf("ScrubFileOn = %v, want ScrubQuarantined", got)
	}
	var qerr *QuarantinedFileError
	if !errors.As(err, &qerr) || qerr.Path != path {
		t.Fatalf("error %v is not a *QuarantinedFileError for %s", err, path)
	}
	for _, p := range []string{path, path + ".prev"} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s still in the read ladder after quarantine", p)
		}
		if _, err := os.Stat(p + ".quarantined"); err != nil {
			t.Errorf("%s.quarantined missing: %v", p, err)
		}
	}
	if _, err := ReadLatest(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("ReadLatest after quarantine = %v, want ErrNotExist (fresh start)", err)
	}
}

// TestScrubFileMissing: no primary is not an error — the cell simply has
// no checkpoint yet.
func TestScrubFileMissing(t *testing.T) {
	got, err := ScrubFileOn(chaos.OS{}, filepath.Join(t.TempDir(), "absent.snap"))
	if got != ScrubMissing || err != nil {
		t.Fatalf("ScrubFileOn = %v, %v; want ScrubMissing, nil", got, err)
	}
}
