package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestShipRoundtrip: load the latest on-disk snapshot as wire bytes, store
// them on a second machine's path, and check the stored file decodes to
// the same snapshot.
func TestShipRoundtrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "cell.snap")
	dst := filepath.Join(dir, "shipped.snap")
	s := sampleSnapshot()
	if err := WriteFile(src, s); err != nil {
		t.Fatal(err)
	}
	data, fp, err := LoadShippable(src)
	if err != nil {
		t.Fatal(err)
	}
	if fp != s.Fingerprint {
		t.Fatalf("shipped fingerprint %x, want %x", fp, s.Fingerprint)
	}
	storedFp, err := Store(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	if storedFp != s.Fingerprint {
		t.Fatalf("stored fingerprint %x, want %x", storedFp, s.Fingerprint)
	}
	got, err := ReadLatest(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(got), Encode(s)) {
		t.Fatal("shipped snapshot decodes differently from the original")
	}
}

// TestStoreRejectsCorruptWireBytes: bytes damaged in transit must never
// reach the receiver's snapshot directory.
func TestStoreRejectsCorruptWireBytes(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "shipped.snap")
	data := Encode(sampleSnapshot())

	truncated := data[:len(data)/2]
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40

	for name, bad := range map[string][]byte{
		"truncated": truncated,
		"bit-flip":  flipped,
		"garbage":   []byte("not a snapshot at all"),
		"empty":     nil,
	} {
		if _, err := Store(dst, bad); err == nil {
			t.Errorf("%s wire bytes stored without error", name)
		}
		if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s wire bytes left a file behind", name)
		}
	}
}

// TestLoadShippableFallsBackToPrev: when the primary file is torn, the
// rotated predecessor ships instead — a worker whose latest checkpoint
// write was interrupted still ships its previous good state.
func TestLoadShippableFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.snap")
	s := sampleSnapshot()
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	s2 := sampleSnapshot()
	s2.Engine.Cycle = 999999
	if err := WriteFile(path, s2); err != nil { // rotates s to .prev
		t.Fatal(err)
	}
	// Tear the primary mid-file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	shipped, _, err := LoadShippable(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Receive(shipped)
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine.Cycle != s.Engine.Cycle {
		t.Fatalf("shipped cycle %d, want the rotated predecessor's %d", got.Engine.Cycle, s.Engine.Cycle)
	}
}

// TestExists covers the cheap pre-check both before and after rotation.
func TestExists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.snap")
	if Exists(path) {
		t.Fatal("Exists on nothing")
	}
	if err := WriteFile(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if !Exists(path) {
		t.Fatal("Exists misses the primary")
	}
	// Leave only the rotated file behind.
	if err := WriteFile(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if !Exists(path) {
		t.Fatal("Exists misses the rotated predecessor")
	}
}
