package snapshot

import (
	"fmt"

	"fgpsim/internal/chaos"
)

// This file is the shipping layer: moving snapshots between machines as
// opaque byte blobs. The encoded format is already self-validating (magic,
// version, CRC32C-framed sections — snapshot.go), so the wire adds nothing:
// a sender loads the latest decodable bytes, a receiver re-validates them
// before letting them near its snapshot directory. A blob corrupted in
// transit — truncated body, bit flips, a proxy that mangled it — is
// rejected exactly the way a torn on-disk snapshot is, and the receiver's
// store stays clean.

// LoadShippable returns the encoded bytes of the newest decodable snapshot
// at path (trying path, then path.prev, like ReadLatest) together with its
// fingerprint. The bytes are re-encoded from the decoded form rather than
// read raw, so what ships is exactly what validated — a file with trailing
// garbage or a decodable-prefix tear never ships the damage onward.
func LoadShippable(path string) ([]byte, uint64, error) {
	return LoadShippableOn(chaos.OS{}, path)
}

// LoadShippableOn is LoadShippable on an explicit disk.
func LoadShippableOn(disk chaos.Disk, path string) ([]byte, uint64, error) {
	s, err := ReadLatestOn(disk, path)
	if err != nil {
		return nil, 0, err
	}
	return Encode(s), s.Fingerprint, nil
}

// Receive validates wire bytes as a complete snapshot, returning a typed
// *CorruptError for anything damaged in transit.
func Receive(data []byte) (*Snapshot, error) {
	return Decode(data)
}

// Store validates wire bytes and, only if they decode cleanly, persists
// them atomically at path (WriteFile's temp+fsync+rename+rotate dance).
// It returns the validated snapshot's fingerprint so the caller can index
// the stored file without decoding twice.
func Store(path string, data []byte) (uint64, error) {
	return StoreOn(chaos.OS{}, path, data)
}

// StoreOn is Store on an explicit disk.
func StoreOn(disk chaos.Disk, path string, data []byte) (uint64, error) {
	s, err := Decode(data)
	if err != nil {
		return 0, fmt.Errorf("snapshot: refusing to store wire bytes: %w", err)
	}
	if err := WriteFileOn(disk, path, s); err != nil {
		return 0, err
	}
	return s.Fingerprint, nil
}

// Exists reports whether any snapshot file (current or rotated) is present
// at path — a cheap pre-check before paying for LoadShippable.
func Exists(path string) bool {
	return ExistsOn(chaos.OS{}, path)
}

// ExistsOn is Exists on an explicit disk.
func ExistsOn(disk chaos.Disk, path string) bool {
	if _, err := disk.Stat(path); err == nil {
		return true
	}
	if _, err := disk.Stat(path + prevSuffix); err == nil {
		return true
	}
	return false
}
