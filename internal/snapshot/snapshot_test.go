package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/ir"
	"fgpsim/internal/mem"
	"fgpsim/internal/stats"
)

// sampleSnapshot exercises every encoder branch: both optional tables
// present, a non-empty return stack, and a populated block-size histogram.
func sampleSnapshot() *Snapshot {
	st := &core.EngineState{
		Cycle:             123456,
		Mem:               []byte{1, 2, 3, 4, 5, 6, 7, 8},
		InPos:             [2]int64{3, 0},
		Out:               []byte("hello"),
		RetStack:          []ir.BlockID{2, 7, 11},
		NextBlock:         42,
		Cursor:            99,
		MemEpoch:          41,
		LastLoadRetry:     17,
		BlockedLoadGhosts: 2,
		Stats:             stats.New(),
		Cache: &mem.CacheState{
			Sets: 2, Tags: []uint32{10, 20, 30, 40}, LRU: []byte{0, 1},
			Hits: 100, Misses: 7,
		},
		Pred: &branch.State{
			Kind: branch.StateTwoBit,
			Tags: []int32{-1, 5, -1, 9}, Ctr: []byte{0, 3, 1, 2},
			Hits: 55, Seen: []ir.BlockID{5, 9}, Lookups: 60,
		},
	}
	for i := range st.Regs {
		st.Regs[i] = int32(i * 3)
	}
	for i := range st.RegReady {
		st.RegReady[i] = int64(i * 7)
	}
	st.Stats.Cycles = 123456
	st.Stats.RetiredNodes = 4000
	st.Stats.BlockSizes[3] = 10
	st.Stats.BlockSizes[17] = 2
	st.Stats.Work = 4100

	return &Snapshot{
		Fingerprint: 0xdeadbeefcafef00d,
		Engine:      st,
		Injector:    &faultinject.State{RNG: 987654321, Tried: 12, Events: 4},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	s := sampleSnapshot()
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("roundtrip mismatch:\nwant %+v\ngot  %+v", s, got)
	}
	// Determinism: encoding the decoded value reproduces the bytes.
	if !bytes.Equal(data, Encode(got)) {
		t.Fatal("re-encoding the decoded snapshot produced different bytes")
	}
}

func TestDecodeNoInjectorFrame(t *testing.T) {
	s := sampleSnapshot()
	s.Injector = nil
	s.Engine.Cache = nil
	s.Engine.Pred = nil
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("roundtrip mismatch without optional parts")
	}
}

// TestDecodeRejectsBitFlips flips each byte of a valid encoding and
// requires Decode to fail: every region is covered by magic, length, or
// CRC checks, so no single corruption can decode silently.
func TestDecodeRejectsBitFlips(t *testing.T) {
	data := Encode(sampleSnapshot())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("byte %d: corrupted snapshot decoded without error", i)
		}
	}
}

// TestDecodeRejectsTruncation cuts the encoding at every length and
// requires a typed failure (a torn write never decodes).
func TestDecodeRejectsTruncation(t *testing.T) {
	data := Encode(sampleSnapshot())
	for n := 0; n < len(data); n++ {
		_, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation to %d bytes: error %v is not a CorruptError", n, err)
		}
	}
}

func TestWriteFileRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.snap")

	s1 := sampleSnapshot()
	s1.Engine.Cycle = 100
	if err := WriteFile(path, s1); err != nil {
		t.Fatal(err)
	}
	s2 := sampleSnapshot()
	s2.Engine.Cycle = 200
	if err := WriteFile(path, s2); err != nil {
		t.Fatal(err)
	}

	got, err := ReadLatest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine.Cycle != 200 {
		t.Fatalf("ReadLatest cycle = %d, want newest (200)", got.Engine.Cycle)
	}

	// Tear the newest file: the ladder must fall back to the rotated one.
	if err := os.WriteFile(path, []byte("FGPSNAP\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadLatest(path)
	if err != nil {
		t.Fatalf("fallback read: %v", err)
	}
	if got.Engine.Cycle != 100 {
		t.Fatalf("fallback cycle = %d, want previous (100)", got.Engine.Cycle)
	}

	Remove(path)
	if _, err := ReadLatest(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after Remove, err = %v, want ErrNotExist", err)
	}
}

func TestReadLatestMissing(t *testing.T) {
	if _, err := ReadLatest(filepath.Join(t.TempDir(), "nope.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func FuzzDecode(f *testing.F) {
	f.Add(Encode(sampleSnapshot()))
	plain := sampleSnapshot()
	plain.Injector = nil
	plain.Engine.Cache = nil
	plain.Engine.Pred = nil
	f.Add(Encode(plain))
	f.Add([]byte("FGPSNAP\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Decode error %v is not a CorruptError", err)
			}
			return
		}
		// Anything that decodes must re-encode canonically and roundtrip.
		re := Encode(s)
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatal("re-encoded snapshot decoded differently")
		}
	})
}
