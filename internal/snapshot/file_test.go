package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fgpsim/internal/chaos"
)

// writePair lays down a current snapshot at path and a distinct previous
// one at path.prev, returning both fingerprints.
func writePair(t *testing.T, path string) (cur, prev uint64) {
	t.Helper()
	sPrev := sampleSnapshot()
	sPrev.Fingerprint = 0x1111111111111111
	if err := WriteFile(path, sPrev); err != nil {
		t.Fatal(err)
	}
	sCur := sampleSnapshot()
	sCur.Fingerprint = 0x2222222222222222
	if err := WriteFile(path, sCur); err != nil {
		t.Fatal(err)
	}
	// WriteFile rotated the first snapshot to path.prev.
	return sCur.Fingerprint, sPrev.Fingerprint
}

// TestReadLatestTruncationLadder truncates the CURRENT snapshot at every
// byte boundary and asserts the fallback ladder never fails: a complete
// current file reads as current, and every proper prefix — from zero bytes
// through len-1 — falls back to the previous snapshot instead of erroring
// or, worse, decoding a damaged state.
func TestReadLatestTruncationLadder(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.snap")
	curFp, prevFp := writePair(t, golden)
	full, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	prevBytes, err := os.ReadFile(golden + ".prev")
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cell-%d.snap", cut))
		if err := os.WriteFile(path+".prev", prevBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := ReadLatest(path)
		if err != nil {
			t.Fatalf("cut=%d/%d: ReadLatest failed: %v", cut, len(full), err)
		}
		want := prevFp
		if cut == len(full) {
			want = curFp
		}
		if s.Fingerprint != want {
			t.Fatalf("cut=%d/%d: fingerprint %016x, want %016x", cut, len(full), s.Fingerprint, want)
		}
		os.Remove(path)
		os.Remove(path + ".prev")
	}
}

// TestReadLatestTruncationBothFiles truncates BOTH rungs of the ladder:
// with no decodable snapshot anywhere, ReadLatest must return the
// primary's corruption error, and a typed *CorruptError at that.
func TestReadLatestTruncationBothFiles(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.snap")
	writePair(t, golden)
	full, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "cell.snap")
	for _, cut := range []int{0, 1, len(full) / 2, len(full) - 1} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+".prev", full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, rerr := ReadLatest(path)
		var corrupt *CorruptError
		if !errors.As(rerr, &corrupt) {
			t.Fatalf("cut=%d: ReadLatest = %v; want *CorruptError", cut, rerr)
		}
	}
}

// TestReadLatestBitrotFallsBack reads through a chaos.FS that flips one
// bit of the current snapshot on the read path: the CRC frames must
// reject it and the ladder must fall back to the previous snapshot. Every
// bit position of the file is a potential target; sweep a seeded sample
// across the whole span.
func TestReadLatestBitrotFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.snap")
	curFp, prevFp := writePair(t, path)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	bits := uint64(info.Size() * 8)

	for i := uint64(0); i < 64; i++ {
		bit := (bits * i) / 64 // spread targets across the file
		disk := chaos.NewFS(chaos.OS{}, &chaos.Schedule{Seed: 1, Faults: []chaos.Fault{
			{Component: "d", Kind: chaos.BitrotRead, Class: "read", N: 1, Arg: bit},
		}}, "d")
		s, err := ReadLatestOn(disk, path)
		if err != nil {
			t.Fatalf("bit=%d: ReadLatest failed outright: %v", bit, err)
		}
		if s.Fingerprint != prevFp {
			t.Fatalf("bit=%d: fingerprint %016x, want fallback to prev %016x", bit, s.Fingerprint, prevFp)
		}
	}

	// Control: the same disk with its fault drained reads the current file.
	s, err := ReadLatest(path)
	if err != nil || s.Fingerprint != curFp {
		t.Fatalf("clean read = %v, %v", s, err)
	}
}
