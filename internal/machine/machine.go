// Package machine defines the abstract processor model's configuration
// space, exactly as parameterized in section 3.1 of the paper: scheduling
// discipline (static, or dynamic with a window of 1/4/256 basic blocks),
// the eight issue models, the seven memory configurations, and the
// branch-handling modes (single basic blocks, enlarged basic blocks,
// perfect prediction — plus this reproduction's run-time fill unit).
// Extension knobs beyond the paper (predictor kind, window override,
// conservative memory) keep their zero values for the paper's grid.
package machine

import "fmt"

// Discipline is the scheduling discipline.
type Discipline uint8

const (
	// Static: the translating loader packs nodes into multinodewords; the
	// engine issues one word per cycle in order with hardware interlocks.
	Static Discipline = iota
	// Dyn1, Dyn4, Dyn256: dynamic (restricted-dataflow) scheduling with an
	// instruction window of 1, 4, or 256 active basic blocks.
	Dyn1
	Dyn4
	Dyn256
)

// Window returns the instruction window size in basic blocks (0 for static
// scheduling).
func (d Discipline) Window() int {
	switch d {
	case Dyn1:
		return 1
	case Dyn4:
		return 4
	case Dyn256:
		return 256
	}
	return 0
}

// Dynamic reports whether the discipline is dynamically scheduled.
func (d Discipline) Dynamic() bool { return d != Static }

func (d Discipline) String() string {
	switch d {
	case Static:
		return "static"
	case Dyn1:
		return "dyn-w1"
	case Dyn4:
		return "dyn-w4"
	case Dyn256:
		return "dyn-w256"
	}
	return "disc?"
}

// Disciplines lists all four scheduling disciplines in the paper's order.
var Disciplines = []Discipline{Static, Dyn1, Dyn4, Dyn256}

// IssueModel describes the multinodeword format: how many memory nodes and
// ALU nodes may be issued (and begin execution) per cycle. The Sequential
// model issues one node of either class per cycle.
type IssueModel struct {
	ID         int // paper's issue model number, 1..8
	Mem        int // memory slots per word
	ALU        int // ALU slots per word
	Sequential bool
}

// Total returns the maximum nodes issued per cycle.
func (m IssueModel) Total() int {
	if m.Sequential {
		return 1
	}
	return m.Mem + m.ALU
}

func (m IssueModel) String() string {
	if m.Sequential {
		return "seq"
	}
	return fmt.Sprintf("%dM%dA", m.Mem, m.ALU)
}

// IssueModels lists the paper's eight issue models.
var IssueModels = []IssueModel{
	{ID: 1, Mem: 1, ALU: 1, Sequential: true},
	{ID: 2, Mem: 1, ALU: 1},
	{ID: 3, Mem: 1, ALU: 2},
	{ID: 4, Mem: 1, ALU: 3},
	{ID: 5, Mem: 2, ALU: 4},
	{ID: 6, Mem: 2, ALU: 6},
	{ID: 7, Mem: 4, ALU: 8},
	{ID: 8, Mem: 4, ALU: 12},
}

// MemConfig describes the memory system. All memory is fully pipelined: a
// new access may begin on each port every cycle. A zero CacheSize means
// perfect memory with a fixed HitLatency.
type MemConfig struct {
	ID          byte // paper's letter, 'A'..'G'
	HitLatency  int  // cycles for a hit (or every access when no cache)
	MissLatency int  // cycles for a miss
	CacheSize   int  // bytes; 0 = perfect memory
}

// HasCache reports whether a cache is modeled.
func (m MemConfig) HasCache() bool { return m.CacheSize > 0 }

func (m MemConfig) String() string {
	if !m.HasCache() {
		return fmt.Sprintf("%c(%dcyc)", m.ID, m.HitLatency)
	}
	return fmt.Sprintf("%c(%d/%d,%dK)", m.ID, m.HitLatency, m.MissLatency, m.CacheSize/1024)
}

// MemConfigs lists the paper's seven memory configurations.
var MemConfigs = []MemConfig{
	{ID: 'A', HitLatency: 1},
	{ID: 'B', HitLatency: 2},
	{ID: 'C', HitLatency: 3},
	{ID: 'D', HitLatency: 1, MissLatency: 10, CacheSize: 1 << 10},
	{ID: 'E', HitLatency: 1, MissLatency: 10, CacheSize: 16 << 10},
	{ID: 'F', HitLatency: 2, MissLatency: 10, CacheSize: 1 << 10},
	{ID: 'G', HitLatency: 2, MissLatency: 10, CacheSize: 16 << 10},
}

// MemConfigByID returns the memory configuration with the given letter.
func MemConfigByID(id byte) (MemConfig, bool) {
	for _, m := range MemConfigs {
		if m.ID == id {
			return m, true
		}
	}
	return MemConfig{}, false
}

// IssueModelByID returns the issue model with the given number.
func IssueModelByID(id int) (IssueModel, bool) {
	for _, m := range IssueModels {
		if m.ID == id {
			return m, true
		}
	}
	return IssueModel{}, false
}

// FigureOrderMem is the horizontal-axis order of memory configurations in
// the paper's Figure 4: single-cycle configurations first (perfect, then
// 1K and 16K caches), then two-cycle, then three-cycle.
var FigureOrderMem = []byte{'A', 'D', 'E', 'B', 'F', 'G', 'C'}

// BranchMode is the branch-handling mode.
type BranchMode uint8

const (
	// SingleBB: original basic blocks, 2-bit counter prediction seeded with
	// static hints.
	SingleBB BranchMode = iota
	// EnlargedBB: profile-driven enlarged basic blocks, same predictor.
	EnlargedBB
	// Perfect: the paper's upper-limit study — enlarged basic blocks with
	// trace-driven (always correct) terminator prediction. Assert faults
	// inside enlarged blocks still occur: the hardware always executes the
	// enlarged block it enters. Run only for Dyn4/Dyn256.
	Perfect

	// FillUnit is this reproduction's implementation of the hardware
	// alternative the paper references ([MeSP88], "Hardware Support for
	// Large Atomic Units in Dynamically Scheduled Machines"): a fill unit
	// that enlarges basic blocks at run time from observed retirement
	// behavior — no profiling run or enlargement file needed. Dynamic
	// disciplines only; not part of the paper's 560-point grid.
	FillUnit
)

func (b BranchMode) String() string {
	switch b {
	case SingleBB:
		return "single"
	case EnlargedBB:
		return "enlarged"
	case Perfect:
		return "perfect"
	case FillUnit:
		return "fillunit"
	}
	return "branch?"
}

// SchedKind selects the static scheduler the translating loader packs
// multinodewords with. It only matters on the static discipline; dynamic
// machines schedule at run time.
type SchedKind uint8

const (
	// ListSched is the greedy critical-path list scheduler (the default,
	// and the paper's loader).
	ListSched SchedKind = iota
	// ExactSched packs each block with the branch-and-bound optimal
	// scheduler (internal/sched/exact) under its default deterministic
	// budget, falling back to the list schedule for blocks too large to
	// search. Opt-in: it exists to measure the list scheduler's
	// optimality gap end-to-end through the static engine.
	ExactSched
)

func (k SchedKind) String() string {
	if k == ExactSched {
		return "exact"
	}
	return "list"
}

// Config is one complete machine configuration (one data point).
type Config struct {
	Disc   Discipline
	Issue  IssueModel
	Mem    MemConfig
	Branch BranchMode

	// Sched selects the static scheduler (static discipline only).
	Sched SchedKind

	// BTBEntries sizes the branch target buffer (2-bit counters plus
	// static-hint seeding live there). Zero selects DefaultBTBEntries.
	BTBEntries int

	// ConservativeMem is an ablation switch: when set, a dynamic engine's
	// loads wait until every older store has executed (as a compiler must
	// assume at compile time) instead of executing as soon as all older
	// store addresses are known and provably disjoint. It isolates the
	// value of run-time memory disambiguation.
	ConservativeMem bool

	// Predictor selects the branch direction predictor. The paper uses the
	// 2-bit counter BTB; GShare is the future-work extension its
	// conclusions point at ("more sophisticated techniques could yield
	// better prediction").
	Predictor PredictorKind

	// GShareBits sizes the gshare counter table (2^bits entries); zero
	// selects DefaultGShareBits.
	GShareBits int

	// WindowOverride, when nonzero on a dynamic discipline, replaces the
	// discipline's window size (in active basic blocks), enabling window
	// sweeps beyond the paper's 1/4/256 points.
	WindowOverride int
}

// PredictorKind selects the branch direction predictor.
type PredictorKind uint8

const (
	// TwoBit is the paper's 2-bit saturating counter in a BTB.
	TwoBit PredictorKind = iota
	// GSharePredictor is the two-level adaptive extension.
	GSharePredictor
)

// DefaultGShareBits sizes the gshare table at 2^12 counters.
const DefaultGShareBits = 12

// EffectiveWindow returns the instruction window in basic blocks for this
// configuration (honoring WindowOverride).
func (c Config) EffectiveWindow() int {
	if c.Disc.Dynamic() && c.WindowOverride > 0 {
		return c.WindowOverride
	}
	return c.Disc.Window()
}

// DefaultBTBEntries is the branch target buffer size used throughout.
const DefaultBTBEntries = 512

func (c Config) String() string {
	s := fmt.Sprintf("%s/%s/%s/%s", c.Disc, c.Issue, c.Mem, c.Branch)
	if c.Sched != ListSched {
		s += "/" + c.Sched.String()
	}
	return s
}

// Grid returns the paper's full 560-point configuration grid: the four
// scheduling disciplines crossed with all issue models and memory
// configurations for single and enlarged basic blocks (448 points), plus
// perfect prediction for the dynamic window sizes 4 and 256 (112 points).
func Grid() []Config {
	var grid []Config
	for _, d := range Disciplines {
		for _, im := range IssueModels {
			for _, mc := range MemConfigs {
				grid = append(grid,
					Config{Disc: d, Issue: im, Mem: mc, Branch: SingleBB},
					Config{Disc: d, Issue: im, Mem: mc, Branch: EnlargedBB})
			}
		}
	}
	for _, d := range []Discipline{Dyn4, Dyn256} {
		for _, im := range IssueModels {
			for _, mc := range MemConfigs {
				grid = append(grid, Config{Disc: d, Issue: im, Mem: mc, Branch: Perfect})
			}
		}
	}
	return grid
}

// Figure5Configs are the 14 composite configurations of Figure 5, slicing
// diagonally through the 8x7 issue-model x memory-configuration matrix.
var Figure5Configs = []struct {
	Issue int
	Mem   byte
}{
	{1, 'A'}, {2, 'A'}, {2, 'B'}, {3, 'B'}, {3, 'D'}, {4, 'D'}, {4, 'E'},
	{5, 'B'}, {5, 'D'}, {5, 'E'}, {6, 'E'}, {7, 'F'}, {7, 'G'}, {8, 'G'},
}
