package machine

import (
	"fmt"
	"strings"
)

// ParseDiscipline parses a discipline name: static, dyn1, dyn4, dyn256.
func ParseDiscipline(s string) (Discipline, error) {
	switch strings.ToLower(s) {
	case "static":
		return Static, nil
	case "dyn1", "dyn-w1", "w1":
		return Dyn1, nil
	case "dyn4", "dyn-w4", "w4":
		return Dyn4, nil
	case "dyn256", "dyn-w256", "w256":
		return Dyn256, nil
	}
	return Static, fmt.Errorf("machine: unknown discipline %q (static, dyn1, dyn4, dyn256)", s)
}

// ParseBranchMode parses a branch handling mode: single, enlarged, perfect.
func ParseBranchMode(s string) (BranchMode, error) {
	switch strings.ToLower(s) {
	case "single":
		return SingleBB, nil
	case "enlarged":
		return EnlargedBB, nil
	case "perfect":
		return Perfect, nil
	}
	return SingleBB, fmt.Errorf("machine: unknown branch mode %q (single, enlarged, perfect)", s)
}

// ParseSchedKind parses a static scheduler name: list, exact.
func ParseSchedKind(s string) (SchedKind, error) {
	switch strings.ToLower(s) {
	case "", "list":
		return ListSched, nil
	case "exact":
		return ExactSched, nil
	}
	return ListSched, fmt.Errorf("machine: unknown scheduler %q (list, exact)", s)
}

// ParseConfig assembles a configuration from command-line style fields:
// discipline name, issue model number 1..8, memory configuration letter
// A..G, and branch mode name.
func ParseConfig(disc string, issue int, memID string, branchMode string) (Config, error) {
	var cfg Config
	d, err := ParseDiscipline(disc)
	if err != nil {
		return cfg, err
	}
	im, ok := IssueModelByID(issue)
	if !ok {
		return cfg, fmt.Errorf("machine: issue model %d out of range 1..8", issue)
	}
	if len(memID) != 1 {
		return cfg, fmt.Errorf("machine: memory config must be a letter A..G, got %q", memID)
	}
	mc, ok := MemConfigByID(strings.ToUpper(memID)[0])
	if !ok {
		return cfg, fmt.Errorf("machine: unknown memory config %q (A..G)", memID)
	}
	bm, err := ParseBranchMode(branchMode)
	if err != nil {
		return cfg, err
	}
	return Config{Disc: d, Issue: im, Mem: mc, Branch: bm}, nil
}
