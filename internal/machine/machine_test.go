package machine

import (
	"testing"
	"testing/quick"
)

func TestGridCount(t *testing.T) {
	// 4 disciplines x 8 issue x 7 memory x 2 branch modes = 448, plus
	// perfect prediction on Dyn4/Dyn256 x 8 x 7 = 112: the paper's 560
	// data points per benchmark.
	g := Grid()
	if len(g) != 560 {
		t.Fatalf("grid has %d points, want 560", len(g))
	}
	seen := make(map[string]bool, len(g))
	perfect := 0
	for _, c := range g {
		if seen[c.String()] {
			t.Errorf("duplicate grid point %s", c)
		}
		seen[c.String()] = true
		if c.Branch == Perfect {
			perfect++
			if c.Disc != Dyn4 && c.Disc != Dyn256 {
				t.Errorf("perfect prediction on %s", c.Disc)
			}
		}
	}
	if perfect != 112 {
		t.Errorf("%d perfect points, want 112", perfect)
	}
}

func TestIssueModels(t *testing.T) {
	if len(IssueModels) != 8 {
		t.Fatalf("%d issue models, want 8", len(IssueModels))
	}
	wantMem := []int{1, 1, 1, 1, 2, 2, 4, 4}
	wantALU := []int{1, 1, 2, 3, 4, 6, 8, 12}
	for i, im := range IssueModels {
		if im.ID != i+1 {
			t.Errorf("issue model %d has ID %d", i, im.ID)
		}
		if im.Mem != wantMem[i] || im.ALU != wantALU[i] {
			t.Errorf("issue model %d = %dM%dA, want %dM%dA", im.ID, im.Mem, im.ALU, wantMem[i], wantALU[i])
		}
	}
	if !IssueModels[0].Sequential {
		t.Error("model 1 should be sequential")
	}
	if IssueModels[0].Total() != 1 {
		t.Errorf("sequential Total() = %d, want 1", IssueModels[0].Total())
	}
	if IssueModels[7].Total() != 16 {
		t.Errorf("model 8 Total() = %d, want 16", IssueModels[7].Total())
	}
}

func TestMemConfigs(t *testing.T) {
	if len(MemConfigs) != 7 {
		t.Fatalf("%d memory configs, want 7", len(MemConfigs))
	}
	for _, mc := range MemConfigs {
		got, ok := MemConfigByID(mc.ID)
		if !ok || got.ID != mc.ID {
			t.Errorf("MemConfigByID(%c) failed", mc.ID)
		}
	}
	if _, ok := MemConfigByID('Z'); ok {
		t.Error("MemConfigByID(Z) should fail")
	}
	a, _ := MemConfigByID('A')
	if a.HasCache() || a.HitLatency != 1 {
		t.Errorf("config A = %+v", a)
	}
	d, _ := MemConfigByID('D')
	if !d.HasCache() || d.CacheSize != 1024 || d.MissLatency != 10 || d.HitLatency != 1 {
		t.Errorf("config D = %+v", d)
	}
	g, _ := MemConfigByID('G')
	if g.CacheSize != 16384 || g.HitLatency != 2 {
		t.Errorf("config G = %+v", g)
	}
}

func TestDisciplineWindow(t *testing.T) {
	cases := map[Discipline]int{Static: 0, Dyn1: 1, Dyn4: 4, Dyn256: 256}
	for d, w := range cases {
		if d.Window() != w {
			t.Errorf("%s.Window() = %d, want %d", d, d.Window(), w)
		}
		if d.Dynamic() != (w > 0) {
			t.Errorf("%s.Dynamic() = %v", d, d.Dynamic())
		}
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("dyn4", 8, "a", "enlarged")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Disc != Dyn4 || cfg.Issue.ID != 8 || cfg.Mem.ID != 'A' || cfg.Branch != EnlargedBB {
		t.Errorf("ParseConfig = %+v", cfg)
	}
	bad := []struct {
		d  string
		i  int
		m  string
		bm string
	}{
		{"nope", 8, "A", "single"},
		{"dyn4", 0, "A", "single"},
		{"dyn4", 9, "A", "single"},
		{"dyn4", 8, "Z", "single"},
		{"dyn4", 8, "AB", "single"},
		{"dyn4", 8, "A", "wrong"},
	}
	for _, c := range bad {
		if _, err := ParseConfig(c.d, c.i, c.m, c.bm); err == nil {
			t.Errorf("ParseConfig(%q,%d,%q,%q) should fail", c.d, c.i, c.m, c.bm)
		}
	}
	for _, name := range []string{"static", "dyn1", "dyn4", "dyn256", "w1", "w4", "w256"} {
		if _, err := ParseDiscipline(name); err != nil {
			t.Errorf("ParseDiscipline(%q): %v", name, err)
		}
	}
}

func TestFigure5ConfigsValid(t *testing.T) {
	if len(Figure5Configs) != 14 {
		t.Fatalf("%d composite configs, want 14", len(Figure5Configs))
	}
	for _, fc := range Figure5Configs {
		if _, ok := IssueModelByID(fc.Issue); !ok {
			t.Errorf("bad issue model %d", fc.Issue)
		}
		if _, ok := MemConfigByID(fc.Mem); !ok {
			t.Errorf("bad memory config %c", fc.Mem)
		}
	}
}

func TestStringsAreStable(t *testing.T) {
	f := func(d uint8, bmRaw uint8) bool {
		// Strings never return empty even for invalid values.
		return Discipline(d).String() != "" && BranchMode(bmRaw).String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveWindow(t *testing.T) {
	im, _ := IssueModelByID(8)
	mc, _ := MemConfigByID('A')
	cfg := Config{Disc: Dyn4, Issue: im, Mem: mc}
	if cfg.EffectiveWindow() != 4 {
		t.Errorf("default window = %d, want 4", cfg.EffectiveWindow())
	}
	cfg.WindowOverride = 17
	if cfg.EffectiveWindow() != 17 {
		t.Errorf("override window = %d, want 17", cfg.EffectiveWindow())
	}
	cfg.Disc = Static
	if cfg.EffectiveWindow() != 0 {
		t.Errorf("static window = %d, want 0 (override ignored)", cfg.EffectiveWindow())
	}
}

func TestBranchModeStrings(t *testing.T) {
	want := map[BranchMode]string{
		SingleBB: "single", EnlargedBB: "enlarged",
		Perfect: "perfect", FillUnit: "fillunit",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}
