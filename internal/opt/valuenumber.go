package opt

import "fgpsim/internal/ir"

// Local value numbering over a straight-line node sequence. Performs, in one
// pass: constant folding, copy propagation, common-subexpression
// elimination of pure nodes, store-to-load forwarding, redundant-load
// elimination, and branch folding when the condition is a known constant.
//
// The sequence semantics are preserved exactly; nodes are rewritten in place
// (a CSE hit becomes a Mov from the canonical home register, which a later
// dead-code pass removes if the copy is unused).

type exprKey struct {
	op    ir.Op
	a, b  int32 // value numbers
	imm   int64
	isMem bool
	width int8
}

type vnState struct {
	nextVN int32
	regVN  map[ir.Reg]int32
	// home maps a value number to a register currently holding it, plus a
	// generation check (homeVN) so stale homes are ignored.
	home   map[int32]ir.Reg
	consts map[int32]int32 // value number -> constant value
	constV map[int32]int32 // constant value -> value number
	exprs  map[exprKey]int32
	mems   map[exprKey]int32
}

func newVNState() *vnState {
	return &vnState{
		nextVN: 1,
		regVN:  make(map[ir.Reg]int32),
		home:   make(map[int32]ir.Reg),
		consts: make(map[int32]int32),
		constV: make(map[int32]int32),
		exprs:  make(map[exprKey]int32),
		mems:   make(map[exprKey]int32),
	}
}

func (s *vnState) fresh() int32 {
	v := s.nextVN
	s.nextVN++
	return v
}

// vnOf returns the value number currently held by register r.
func (s *vnState) vnOf(r ir.Reg) int32 {
	if v, ok := s.regVN[r]; ok {
		return v
	}
	v := s.fresh()
	s.regVN[r] = v
	s.home[v] = r
	return v
}

// setReg records that r now holds value number v and makes r the home of v
// if v has no valid home.
func (s *vnState) setReg(r ir.Reg, v int32) {
	s.regVN[r] = v
	if h, ok := s.home[v]; !ok || s.regVN[h] != v {
		s.home[v] = r
	}
}

// canonical returns a register that currently holds value number v, if any.
func (s *vnState) canonical(v int32) (ir.Reg, bool) {
	h, ok := s.home[v]
	if ok && s.regVN[h] == v {
		return h, true
	}
	return 0, false
}

// constOf returns the constant value of value number v, if known.
func (s *vnState) constOf(v int32) (int32, bool) {
	c, ok := s.consts[v]
	return c, ok
}

// vnConst returns the value number of a constant.
func (s *vnState) vnConst(c int32) int32 {
	if v, ok := s.constV[c]; ok {
		return v
	}
	v := s.fresh()
	s.constV[c] = v
	s.consts[v] = c
	return v
}

// ValueNumberBlock optimizes one block in place and reports whether
// anything changed.
func ValueNumberBlock(b *ir.Block) bool {
	return ValueNumberSeq(b.Body, &b.Term, b)
}

// ValueNumberSeq optimizes a node sequence plus its terminator in place.
// blk, when non-nil, allows branch folding to rewrite the terminator (a Br
// on a constant condition becomes a Jmp and the Fall edge is updated).
func ValueNumberSeq(body []ir.Node, term *ir.Node, blk *ir.Block) bool {
	s := newVNState()
	changed := false

	rewriteSrc := func(r *ir.Reg) {
		if *r == ir.NoReg {
			return
		}
		v := s.vnOf(*r)
		if h, ok := s.canonical(v); ok && h != *r {
			*r = h
			changed = true
		}
	}

	for i := range body {
		n := &body[i]
		switch {
		case n.Op == ir.Const:
			v := s.vnConst(int32(n.Imm))
			if h, ok := s.canonical(v); ok {
				// The constant is already in a register: make this a copy.
				*n = ir.Node{Op: ir.Mov, Dst: n.Dst, A: h, B: ir.NoReg}
				changed = true
			}
			s.setReg(n.Dst, v)

		case n.Op == ir.Mov:
			rewriteSrc(&n.A)
			v := s.vnOf(n.A)
			s.setReg(n.Dst, v)

		case n.Op.IsPure():
			rewriteSrc(&n.A)
			rewriteSrc(&n.B)
			va := s.vnOf(n.A)
			vb := int32(0)
			if n.B != ir.NoReg {
				vb = s.vnOf(n.B)
			}
			// Constant folding.
			ca, okA := s.constOf(va)
			cb, okB := int32(0), n.B == ir.NoReg
			if n.B != ir.NoReg {
				cb, okB = s.constOf(vb)
			}
			if okA && okB {
				if val, aerr := ir.EvalALU(n.Op, ca, cb, n.Imm); aerr == nil {
					*n = ir.Node{Op: ir.Const, Dst: n.Dst, A: ir.NoReg, B: ir.NoReg, Imm: int64(val)}
					changed = true
					s.setReg(n.Dst, s.vnConst(val))
					continue
				}
			}
			// CSE.
			if n.Op.Commutes() && vb < va {
				va, vb = vb, va
			}
			key := exprKey{op: n.Op, a: va, b: vb, imm: n.Imm}
			if v, ok := s.exprs[key]; ok {
				if h, hok := s.canonical(v); hok {
					*n = ir.Node{Op: ir.Mov, Dst: n.Dst, A: h, B: ir.NoReg}
					changed = true
					s.setReg(n.Dst, v)
					continue
				}
			}
			v := s.fresh()
			s.exprs[key] = v
			s.setReg(n.Dst, v)

		case n.Op.IsLoad():
			rewriteSrc(&n.A)
			va := s.vnOf(n.A)
			w := int8(4)
			if n.Op == ir.LdB {
				w = 1
			}
			key := exprKey{a: va, imm: n.Imm, isMem: true, width: w}
			if v, ok := s.mems[key]; ok {
				if h, hok := s.canonical(v); hok {
					*n = ir.Node{Op: ir.Mov, Dst: n.Dst, A: h, B: ir.NoReg}
					changed = true
					s.setReg(n.Dst, v)
					continue
				}
			}
			v := s.fresh()
			s.mems[key] = v
			s.setReg(n.Dst, v)

		case n.Op.IsStore():
			rewriteSrc(&n.A)
			rewriteSrc(&n.B)
			// Any store may alias any tracked location: drop them all, then
			// remember the stored value for store-to-load forwarding.
			s.mems = make(map[exprKey]int32)
			w := int8(4)
			if n.Op == ir.StB {
				w = 1
			}
			if w == 4 {
				// A byte reloaded after a word store would need masking;
				// only word stores forward to word loads here.
				key := exprKey{a: s.vnOf(n.A), imm: n.Imm, isMem: true, width: w}
				s.mems[key] = s.vnOf(n.B)
			}

		case n.Op == ir.Sys:
			rewriteSrc(&n.A)
			rewriteSrc(&n.B)
			s.mems = make(map[exprKey]int32) // conservatively clobbers memory
			if n.Dst != ir.NoReg {
				s.setReg(n.Dst, s.fresh())
			}

		case n.Op == ir.Assert:
			rewriteSrc(&n.A)

		default:
			// Unknown node kind: invalidate everything reachable.
			s = newVNState()
		}
	}

	// Terminator: propagate copies into the condition, and fold constant
	// branches when we are allowed to edit the block.
	if term != nil {
		switch term.Op {
		case ir.Br:
			rewriteSrc(&term.A)
			if blk != nil {
				if c, ok := s.constOf(s.vnOf(term.A)); ok {
					target := term.Target
					if c == 0 {
						target = blk.Fall
					}
					*term = ir.Node{Op: ir.Jmp, Target: target}
					blk.Fall = ir.NoBlock
					changed = true
				}
			}
		}
	}
	return changed
}
