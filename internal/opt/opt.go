// Package opt implements the block-local optimizer the translating loader
// applies to generated code: constant folding, copy propagation, local
// common-subexpression elimination (value numbering), redundant-load
// elimination, dead code elimination, branch folding, and control-flow
// simplification (jump threading, block merging, unreachable-block removal).
//
// The same passes serve two masters: the MiniC compiler runs them on
// virtual-register code before allocation, and the basic block enlarger
// re-runs them over merged node sequences — the paper's "combined across a
// branch into a single piece and then re-optimized as a unit".
package opt

import (
	"fgpsim/internal/ir"
)

// Bits is a fixed-size bitset over a register space.
type Bits []uint64

// NewBits returns a bitset able to hold n bits.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set sets bit i.
func (b Bits) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Get reports bit i.
func (b Bits) Get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Or merges other into b and reports whether b changed.
func (b Bits) Or(other Bits) bool {
	changed := false
	for i := range b {
		n := b[i] | other[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Copy copies other into b.
func (b Bits) Copy(other Bits) { copy(b, other) }

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// Func runs the full optimization pipeline on one function until it stops
// improving. numRegs is the size of the register space in use (ir.NumRegs
// for allocated code, or the virtual-register high-water mark before
// allocation).
func Func(p *ir.Program, fn *ir.Func, numRegs int) {
	for round := 0; round < 8; round++ {
		changed := simplifyCFG(p, fn)
		for _, id := range fn.Blocks {
			b := p.Blocks[id]
			if ValueNumberBlock(b) {
				changed = true
			}
		}
		live := Liveness(p, fn, numRegs)
		for _, id := range fn.Blocks {
			b := p.Blocks[id]
			out := live.Out[id]
			body := DeadCode(b.Body, &b.Term, out, numRegs)
			if len(body) != len(b.Body) {
				b.Body = body
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// LiveInfo holds per-block liveness over a register space.
type LiveInfo struct {
	In, Out map[ir.BlockID]Bits
}

// callClobberLo/Hi bound the registers a Call is treated as defining: the
// callee may freely overwrite r1..r62 (everything except r0 and the stack
// pointer). This kill is sound because the calling convention is fully
// caller-saved: allocated code never reads a register whose definition is on
// the other side of a call.
const (
	callClobberLo = 1
	callClobberHi = 62
)

// Liveness computes live-in/live-out register sets for every block of fn.
// Terminator semantics: Br uses its condition; Ret uses the return-value
// register and the stack pointer; Call uses the stack pointer and clobbers
// r1..r62; Halt uses nothing; the stack pointer is pinned live at every
// exit.
func Liveness(p *ir.Program, fn *ir.Func, numRegs int) *LiveInfo {
	li := &LiveInfo{
		In:  make(map[ir.BlockID]Bits, len(fn.Blocks)),
		Out: make(map[ir.BlockID]Bits, len(fn.Blocks)),
	}
	for _, id := range fn.Blocks {
		li.In[id] = NewBits(numRegs)
		li.Out[id] = NewBits(numRegs)
	}
	tmp := NewBits(numRegs)
	for changed := true; changed; {
		changed = false
		for i := len(fn.Blocks) - 1; i >= 0; i-- {
			id := fn.Blocks[i]
			b := p.Blocks[id]
			for w := range tmp {
				tmp[w] = 0
			}
			for _, s := range b.Succs() {
				if in, ok := li.In[s]; ok {
					tmp.Or(in)
				}
			}
			// Assert fault edges: the fault target re-executes from the
			// checkpoint, but conservatively keep its live-in alive here.
			for k := range b.Body {
				if n := &b.Body[k]; n.Op == ir.Assert {
					if in, ok := li.In[n.Target]; ok {
						tmp.Or(in)
					}
				}
			}
			if li.Out[id].Or(tmp) {
				changed = true
			}
			tmp.Copy(li.Out[id])
			transferBlock(b, tmp, numRegs)
			if li.In[id].Or(tmp) {
				changed = true
			}
		}
	}
	return li
}

// transferBlock applies the backward liveness transfer of one whole block to
// the set in place (set enters holding live-out, leaves holding live-in).
func transferBlock(b *ir.Block, live Bits, numRegs int) {
	transferTerm(&b.Term, live)
	for k := len(b.Body) - 1; k >= 0; k-- {
		transferNode(&b.Body[k], live, numRegs)
	}
}

func transferTerm(t *ir.Node, live Bits) {
	switch t.Op {
	case ir.Br:
		live.Set(int(t.A))
	case ir.Ret:
		live.Set(int(ir.RegRet))
		live.Set(int(ir.RegSP))
	case ir.Call:
		for r := callClobberLo; r <= callClobberHi; r++ {
			live.Clear(r)
		}
		live.Set(int(ir.RegSP))
	case ir.Halt:
		// nothing
	case ir.Jmp:
		// nothing
	}
	live.Set(int(ir.RegSP)) // the stack pointer is always observable
}

func transferNode(n *ir.Node, live Bits, numRegs int) {
	if n.Op.HasDst() && int(n.Dst) < numRegs {
		live.Clear(int(n.Dst))
	}
	if n.A != ir.NoReg {
		live.Set(int(n.A))
	}
	if n.B != ir.NoReg {
		live.Set(int(n.B))
	}
}

// DeadCode removes pure nodes and loads whose destinations are provably
// dead, given the live-out set of the sequence. It returns the new body.
// The terminator is consulted for its uses but never removed.
func DeadCode(body []ir.Node, term *ir.Node, liveOut Bits, numRegs int) []ir.Node {
	live := liveOut.Clone()
	live.Set(int(ir.RegSP))
	transferTerm(term, live)
	keep := make([]bool, len(body))
	for k := len(body) - 1; k >= 0; k-- {
		n := &body[k]
		removable := n.Op.IsPure() || n.Op.IsLoad()
		if removable && int(n.Dst) < numRegs && !live.Get(int(n.Dst)) {
			continue // dead
		}
		keep[k] = true
		transferNode(n, live, numRegs)
	}
	out := body[:0]
	for k := range body {
		if keep[k] {
			out = append(out, body[k])
		}
	}
	return out
}
