package opt

import (
	"testing"

	"fgpsim/internal/ir"
)

// seq builds a block from nodes plus a terminator.
func seq(term ir.Node, nodes ...ir.Node) *ir.Block {
	return &ir.Block{Body: nodes, Term: term, Fall: ir.NoBlock}
}

func halt() ir.Node { return ir.Node{Op: ir.Halt} }

func TestConstantFolding(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Const, Dst: 5, Imm: 6},
		ir.Node{Op: ir.Const, Dst: 6, Imm: 7},
		ir.Node{Op: ir.Mul, Dst: 7, A: 5, B: 6},
	)
	if !ValueNumberBlock(b) {
		t.Fatal("expected a change")
	}
	n := b.Body[2]
	if n.Op != ir.Const || n.Imm != 42 {
		t.Errorf("mul of constants folded to %s, want const 42", &n)
	}
}

func TestCopyPropagation(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Ld, Dst: 5, A: 9}, // opaque value (not foldable)
		ir.Node{Op: ir.Mov, Dst: 6, A: 5},
		ir.Node{Op: ir.Add, Dst: 7, A: 6, B: 6},
	)
	ValueNumberBlock(b)
	if b.Body[2].A != 5 || b.Body[2].B != 5 {
		t.Errorf("uses of the copy should read the original: %s", &b.Body[2])
	}
}

func TestCSE(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Add, Dst: 7, A: 5, B: 6},
		ir.Node{Op: ir.Add, Dst: 8, A: 5, B: 6},
	)
	ValueNumberBlock(b)
	if b.Body[1].Op != ir.Mov || b.Body[1].A != 7 {
		t.Errorf("repeated expression should become a copy: %s", &b.Body[1])
	}
}

func TestCSECommutative(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Add, Dst: 7, A: 5, B: 6},
		ir.Node{Op: ir.Add, Dst: 8, A: 6, B: 5},
	)
	ValueNumberBlock(b)
	if b.Body[1].Op != ir.Mov {
		t.Errorf("commuted expression should CSE: %s", &b.Body[1])
	}
}

func TestCSERespectsClobber(t *testing.T) {
	// The first result is overwritten before the reuse: no CSE home.
	b := seq(halt(),
		ir.Node{Op: ir.Add, Dst: 7, A: 5, B: 6},
		ir.Node{Op: ir.Const, Dst: 7, Imm: 0},
		ir.Node{Op: ir.Add, Dst: 8, A: 5, B: 6},
	)
	ValueNumberBlock(b)
	if b.Body[2].Op != ir.Add {
		t.Errorf("clobbered CSE home must not be reused: %s", &b.Body[2])
	}
}

func TestRedundantLoadElimination(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Ld, Dst: 6, A: 5, Imm: 8},
		ir.Node{Op: ir.Ld, Dst: 7, A: 5, Imm: 8},
	)
	ValueNumberBlock(b)
	if b.Body[1].Op != ir.Mov || b.Body[1].A != 6 {
		t.Errorf("second load of same address should be a copy: %s", &b.Body[1])
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.St, A: 5, B: 6, Imm: 4},
		ir.Node{Op: ir.Ld, Dst: 7, A: 5, Imm: 4},
	)
	ValueNumberBlock(b)
	if b.Body[1].Op != ir.Mov || b.Body[1].A != 6 {
		t.Errorf("load after store should forward the stored value: %s", &b.Body[1])
	}
}

func TestStoreInvalidatesLoads(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Ld, Dst: 6, A: 5, Imm: 0},
		ir.Node{Op: ir.St, A: 9, B: 8, Imm: 0}, // may alias
		ir.Node{Op: ir.Ld, Dst: 7, A: 5, Imm: 0},
	)
	ValueNumberBlock(b)
	if b.Body[2].Op != ir.Ld {
		t.Errorf("load after an aliasing store must stay a load: %s", &b.Body[2])
	}
}

func TestByteStoreDoesNotForwardToWordLoad(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.StB, A: 5, B: 6, Imm: 0},
		ir.Node{Op: ir.Ld, Dst: 7, A: 5, Imm: 0},
	)
	ValueNumberBlock(b)
	if b.Body[1].Op != ir.Ld {
		t.Errorf("word load after byte store must stay a load: %s", &b.Body[1])
	}
}

func TestBranchFolding(t *testing.T) {
	b := &ir.Block{
		Body: []ir.Node{{Op: ir.Const, Dst: 5, Imm: 1}},
		Term: ir.Node{Op: ir.Br, A: 5, Target: 3},
		Fall: 4,
	}
	ValueNumberBlock(b)
	if b.Term.Op != ir.Jmp || b.Term.Target != 3 {
		t.Errorf("constant-true branch should fold to jmp taken: %s", &b.Term)
	}
	b2 := &ir.Block{
		Body: []ir.Node{{Op: ir.Const, Dst: 5, Imm: 0}},
		Term: ir.Node{Op: ir.Br, A: 5, Target: 3},
		Fall: 4,
	}
	ValueNumberBlock(b2)
	if b2.Term.Op != ir.Jmp || b2.Term.Target != 4 {
		t.Errorf("constant-false branch should fold to jmp fallthrough: %s", &b2.Term)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	liveOut := NewBits(ir.NumRegs)
	liveOut.Set(7)
	body := []ir.Node{
		{Op: ir.Const, Dst: 5, Imm: 1}, // feeds r7: live
		{Op: ir.Const, Dst: 6, Imm: 2}, // dead
		{Op: ir.AddI, Dst: 7, A: 5, Imm: 1},
		{Op: ir.Ld, Dst: 8, A: 5},                 // dead load: removable
		{Op: ir.St, A: 5, B: 7},                   // store: never removable
		{Op: ir.Sys, Dst: 9, A: 5, B: -1, Imm: 2}, // side effect: kept
	}
	term := ir.Node{Op: ir.Halt}
	out := DeadCode(body, &term, liveOut, ir.NumRegs)
	if len(out) != 4 {
		t.Fatalf("DCE kept %d nodes, want 4: %v", len(out), out)
	}
	for _, n := range out {
		if n.Op == ir.Const && n.Imm == 2 {
			t.Error("dead const survived")
		}
		if n.Op == ir.Ld {
			t.Error("dead load survived")
		}
	}
}

func TestDCEKeepsBranchCondition(t *testing.T) {
	liveOut := NewBits(ir.NumRegs)
	body := []ir.Node{{Op: ir.Lt, Dst: 5, A: 6, B: 7}}
	term := ir.Node{Op: ir.Br, A: 5, Target: 0}
	out := DeadCode(body, &term, liveOut, ir.NumRegs)
	if len(out) != 1 {
		t.Error("the branch condition producer must survive")
	}
}

func TestDCECallClobber(t *testing.T) {
	// A value in an allocatable register is dead across a call (the
	// convention is fully caller-saved), so its producer is removable when
	// its only consumer is after the call.
	liveOut := NewBits(ir.NumRegs)
	liveOut.Set(10)
	body := []ir.Node{{Op: ir.Const, Dst: 10, Imm: 5}}
	term := ir.Node{Op: ir.Call, Callee: 0}
	out := DeadCode(body, &term, liveOut, ir.NumRegs)
	if len(out) != 0 {
		t.Error("value clobbered by the call should be dead before it")
	}
}

func TestLivenessThroughBranch(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "f"}
	p.Funcs = append(p.Funcs, f)
	// b0: r5 = const; br r5 -> b1 else b2
	// b1: r6 = r5 + r5; jmp b2       (r5 live into b1)
	// b2: halt                        (nothing live in)
	b0 := &ir.Block{
		Body: []ir.Node{{Op: ir.Const, Dst: 5, Imm: 1}},
		Term: ir.Node{Op: ir.Br, A: 5, Target: 1},
	}
	p.AddBlock(0, b0)
	b1 := &ir.Block{
		Body: []ir.Node{{Op: ir.Add, Dst: 6, A: 5, B: 5}},
		Term: ir.Node{Op: ir.Jmp, Target: 2},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b1)
	b2 := &ir.Block{Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b2)
	b0.Fall = 2
	f.Entry = 0

	li := Liveness(p, f, ir.NumRegs)
	if !li.In[1].Get(5) {
		t.Error("r5 should be live into b1")
	}
	if li.In[2].Get(6) {
		t.Error("r6 should not be live into b2")
	}
	if !li.Out[0].Get(5) {
		t.Error("r5 should be live out of b0")
	}
}

func TestSimplifyCFGThreadsAndMerges(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "f"}
	p.Funcs = append(p.Funcs, f)
	// b0 jumps to empty b1, which jumps to b2 (single pred after
	// threading): expect b0 merged with b2 and b1 pruned.
	// Stores keep the nodes alive through dead-code elimination.
	b0 := &ir.Block{
		Body: []ir.Node{{Op: ir.Const, Dst: 5, Imm: 64}, {Op: ir.St, A: 5, B: 5}},
		Term: ir.Node{Op: ir.Jmp, Target: 1},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b0)
	b1 := &ir.Block{Term: ir.Node{Op: ir.Jmp, Target: 2}, Fall: ir.NoBlock}
	p.AddBlock(0, b1)
	b2 := &ir.Block{
		Body: []ir.Node{{Op: ir.St, A: 5, B: 5, Imm: 4}},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b2)
	f.Entry = 0

	Func(p, f, ir.NumRegs)
	if len(f.Blocks) != 1 {
		t.Fatalf("expected 1 block after simplification, got %d", len(f.Blocks))
	}
	if got := p.Blocks[f.Entry]; got.Term.Op != ir.Halt || len(got.Body) != 3 {
		t.Errorf("merged block wrong: %d nodes, term %s", len(got.Body), got.Term.Op)
	}
}

func TestSimplifyIdenticalBranchArms(t *testing.T) {
	p := &ir.Program{}
	f := &ir.Func{Name: "f"}
	p.Funcs = append(p.Funcs, f)
	b0 := &ir.Block{
		Body: []ir.Node{{Op: ir.Const, Dst: 5, Imm: 1}},
		Term: ir.Node{Op: ir.Br, A: 5, Target: 1},
		Fall: 1,
	}
	p.AddBlock(0, b0)
	b1 := &ir.Block{Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b1)
	f.Entry = 0
	Func(p, f, ir.NumRegs)
	if p.Blocks[0].Term.Op == ir.Br {
		t.Error("branch with identical arms should become a jump (and then merge)")
	}
}

func TestBitsOps(t *testing.T) {
	b := NewBits(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("bit 64 should be clear")
	}
	c := b.Clone()
	c.Set(5)
	if b.Get(5) {
		t.Error("clone should be independent")
	}
	d := NewBits(130)
	if d.Or(b) != true {
		t.Error("Or should report a change")
	}
	if d.Or(b) != false {
		t.Error("second Or should be a no-op")
	}
}
