package opt

import "fgpsim/internal/ir"

// simplifyCFG performs jump threading, straight-line block merging, and
// unreachable-block removal on one function. It reports whether anything
// changed. Orphaned blocks stay in the program arena (block IDs are stable)
// but are emptied and dropped from the function's block list.
func simplifyCFG(p *ir.Program, fn *ir.Func) bool {
	changed := false
	if threadJumps(p, fn) {
		changed = true
	}
	if mergeBlocks(p, fn) {
		changed = true
	}
	if pruneUnreachable(p, fn) {
		changed = true
	}
	return changed
}

// threadTarget follows chains of empty jump-only blocks to their final
// destination (with a cycle guard).
func threadTarget(p *ir.Program, id ir.BlockID) ir.BlockID {
	seen := 0
	for {
		b := p.Blocks[id]
		if len(b.Body) != 0 || b.Term.Op != ir.Jmp || b.Term.Target == id {
			return id
		}
		id = b.Term.Target
		if seen++; seen > 64 {
			return id // pathological cycle of empty jumps
		}
	}
}

func threadJumps(p *ir.Program, fn *ir.Func) bool {
	changed := false
	redirect := func(id *ir.BlockID) {
		if *id == ir.NoBlock {
			return
		}
		if t := threadTarget(p, *id); t != *id {
			*id = t
			changed = true
		}
	}
	for _, id := range fn.Blocks {
		b := p.Blocks[id]
		for k := range b.Body {
			if b.Body[k].Op == ir.Assert {
				redirect(&b.Body[k].Target)
			}
		}
		switch b.Term.Op {
		case ir.Br:
			redirect(&b.Term.Target)
			redirect(&b.Fall)
			if b.Term.Target == b.Fall {
				// Both arms land in the same place: the branch is a jump.
				b.Term = ir.Node{Op: ir.Jmp, Target: b.Fall}
				b.Fall = ir.NoBlock
				changed = true
			}
		case ir.Jmp:
			redirect(&b.Term.Target)
		case ir.Call:
			redirect(&b.Fall)
		}
	}
	return changed
}

// predCounts counts in-function control predecessors of each block.
// Function entries get an extra count (they are call targets from anywhere)
// so they are never merged away.
func predCounts(p *ir.Program, fn *ir.Func) map[ir.BlockID]int {
	preds := make(map[ir.BlockID]int, len(fn.Blocks))
	preds[fn.Entry]++
	for _, id := range fn.Blocks {
		b := p.Blocks[id]
		for _, s := range b.Succs() {
			preds[s]++
		}
		for k := range b.Body {
			if b.Body[k].Op == ir.Assert {
				preds[b.Body[k].Target]++
			}
		}
	}
	return preds
}

// mergeBlocks absorbs single-predecessor jump successors: b: ... jmp c, with
// c having no other predecessor, becomes one block.
func mergeBlocks(p *ir.Program, fn *ir.Func) bool {
	preds := predCounts(p, fn)
	changed := false
	for _, id := range fn.Blocks {
		b := p.Blocks[id]
		for b.Term.Op == ir.Jmp {
			cid := b.Term.Target
			if cid == id || preds[cid] != 1 || cid == fn.Entry {
				break
			}
			c := p.Blocks[cid]
			if c.Fn != b.Fn {
				break
			}
			b.Body = append(b.Body, c.Body...)
			b.Term = c.Term
			b.Fall = c.Fall
			// Orphan the carcass.
			c.Body = nil
			c.Term = ir.Node{Op: ir.Halt}
			c.Fall = ir.NoBlock
			preds[cid] = 0
			changed = true
		}
	}
	return changed
}

// pruneUnreachable drops blocks unreachable from the function entry from
// the function's block list (keeping arena IDs valid) and empties them.
func pruneUnreachable(p *ir.Program, fn *ir.Func) bool {
	reach := make(map[ir.BlockID]bool, len(fn.Blocks))
	var stack []ir.BlockID
	push := func(id ir.BlockID) {
		if id != ir.NoBlock && !reach[id] {
			reach[id] = true
			stack = append(stack, id)
		}
	}
	push(fn.Entry)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := p.Blocks[id]
		for _, s := range b.Succs() {
			push(s)
		}
		for k := range b.Body {
			if b.Body[k].Op == ir.Assert {
				push(b.Body[k].Target)
			}
		}
	}
	kept := fn.Blocks[:0]
	changed := false
	for _, id := range fn.Blocks {
		if reach[id] {
			kept = append(kept, id)
			continue
		}
		b := p.Blocks[id]
		b.Body = nil
		b.Term = ir.Node{Op: ir.Halt}
		b.Fall = ir.NoBlock
		changed = true
	}
	fn.Blocks = kept
	return changed
}
