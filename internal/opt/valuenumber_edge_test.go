package opt

import (
	"testing"

	"fgpsim/internal/ir"
)

// TestVNConstReuse: a repeated constant becomes a copy of the register
// already holding it.
func TestVNConstReuse(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Const, Dst: 5, Imm: 9},
		ir.Node{Op: ir.Const, Dst: 6, Imm: 9},
	)
	ValueNumberBlock(b)
	if b.Body[1].Op != ir.Mov || b.Body[1].A != 5 {
		t.Errorf("repeated const should copy: %s", &b.Body[1])
	}
}

// TestVNConstReuseInvalidatedByClobber: when the holding register is
// overwritten, the constant must be re-materialized, not copied.
func TestVNConstReuseInvalidatedByClobber(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Const, Dst: 5, Imm: 9},
		ir.Node{Op: ir.Const, Dst: 5, Imm: 1}, // clobber
		ir.Node{Op: ir.Const, Dst: 6, Imm: 9},
	)
	ValueNumberBlock(b)
	if b.Body[2].Op != ir.Const {
		t.Errorf("clobbered const home must not be copied: %s", &b.Body[2])
	}
}

// TestVNFoldsThroughCopies: constants propagate through moves into folds.
func TestVNFoldsThroughCopies(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Const, Dst: 5, Imm: 6},
		ir.Node{Op: ir.Mov, Dst: 6, A: 5},
		ir.Node{Op: ir.Mov, Dst: 7, A: 6},
		ir.Node{Op: ir.Add, Dst: 8, A: 7, B: 5},
	)
	ValueNumberBlock(b)
	if b.Body[3].Op != ir.Const || b.Body[3].Imm != 12 {
		t.Errorf("add of copied constants should fold to 12: %s", &b.Body[3])
	}
}

// TestVNUnaryFolding covers AddI/Neg/Not folding paths (B == NoReg).
func TestVNUnaryFolding(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Const, Dst: 5, Imm: 10},
		ir.Node{Op: ir.AddI, Dst: 6, A: 5, B: ir.NoReg, Imm: -3},
		ir.Node{Op: ir.Neg, Dst: 7, A: 6, B: ir.NoReg},
		ir.Node{Op: ir.Not, Dst: 8, A: 7, B: ir.NoReg},
	)
	ValueNumberBlock(b)
	if b.Body[1].Op != ir.Const || b.Body[1].Imm != 7 {
		t.Errorf("addi fold: %s", &b.Body[1])
	}
	if b.Body[2].Op != ir.Const || b.Body[2].Imm != -7 {
		t.Errorf("neg fold: %s", &b.Body[2])
	}
	if b.Body[3].Op != ir.Const || b.Body[3].Imm != 6 {
		t.Errorf("not fold: %s", &b.Body[3])
	}
}

// TestVNSysClobbersMemoryValues: a system call invalidates remembered
// memory values but not register values.
func TestVNSysClobbersMemoryValues(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Ld, Dst: 6, A: 5, B: ir.NoReg},
		ir.Node{Op: ir.Sys, Dst: 7, A: 6, B: ir.NoReg, Imm: 2},
		ir.Node{Op: ir.Ld, Dst: 8, A: 5, B: ir.NoReg},
	)
	ValueNumberBlock(b)
	if b.Body[2].Op != ir.Ld {
		t.Errorf("load after sys must stay a load: %s", &b.Body[2])
	}
}

// TestVNAssertKeepsState: asserts read their condition but do not
// invalidate value numbering (the whole block rolls back on fault).
func TestVNAssertKeepsState(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.Ld, Dst: 6, A: 5, B: ir.NoReg, Imm: 4},
		ir.Node{Op: ir.Assert, A: 6, B: ir.NoReg, Expect: true, Target: 0},
		ir.Node{Op: ir.Ld, Dst: 7, A: 5, B: ir.NoReg, Imm: 4},
	)
	ValueNumberBlock(b)
	if b.Body[2].Op != ir.Mov || b.Body[2].A != 6 {
		t.Errorf("load across assert should CSE: %s", &b.Body[2])
	}
}

// TestVNStoreForwardOnlyExactWord: offsets must match exactly.
func TestVNStoreForwardOnlyExactWord(t *testing.T) {
	b := seq(halt(),
		ir.Node{Op: ir.St, A: 5, B: 6, Imm: 0},
		ir.Node{Op: ir.Ld, Dst: 7, A: 5, B: ir.NoReg, Imm: 4},
	)
	ValueNumberBlock(b)
	if b.Body[1].Op != ir.Ld {
		t.Errorf("different offset must not forward: %s", &b.Body[1])
	}
}

// TestVNTermCondPropagation: the branch condition is rewritten to the
// canonical home like any other use.
func TestVNTermCondPropagation(t *testing.T) {
	b := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Ld, Dst: 5, A: 9, B: ir.NoReg},
			{Op: ir.Mov, Dst: 6, A: 5, B: ir.NoReg},
		},
		Term: ir.Node{Op: ir.Br, A: 6, Target: 1},
		Fall: 2,
	}
	ValueNumberBlock(b)
	if b.Term.A != 5 {
		t.Errorf("branch condition not canonicalized: %s", &b.Term)
	}
}
