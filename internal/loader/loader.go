// Package loader is the translating loader (the paper's tld): it takes a
// node-IR program plus a machine configuration and produces the executable
// image the run-time simulator executes. For enlarged-block configurations
// it materializes the chains planned by the enlargement file — internal
// conditional branches become assert/fault nodes, fault-recovery prefix
// blocks are generated, and every enlarged block is re-optimized as a unit.
// For statically scheduled machines it additionally packs every block into
// multinodewords with the list scheduler.
package loader

import (
	"errors"
	"fmt"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
	"fgpsim/internal/opt"
	"fgpsim/internal/sched"
	"fgpsim/internal/sched/exact"
)

// BadEnlargementError reports a structurally invalid enlargement chain —
// a corrupt or stale enlargement file. Callers that can run without
// enlargement should degrade to single-basic-block simulation on it.
type BadEnlargementError struct {
	Chain  int // index within the file; -1 for run-time (fill-unit) chains
	Reason string
}

func (e *BadEnlargementError) Error() string {
	if e.Chain >= 0 {
		return fmt.Sprintf("loader: bad enlargement chain %d: %s", e.Chain, e.Reason)
	}
	return "loader: bad enlargement chain: " + e.Reason
}

// Image is a loaded executable: the (possibly enlarged) program plus the
// per-block metadata the engines need.
type Image struct {
	Prog *ir.Program
	Cfg  machine.Config

	// Words holds the static multinodeword schedule per block (static
	// discipline only).
	Words map[ir.BlockID]sched.Schedule

	// Chains maps each materialized enlarged block (primary or fault
	// prefix) to the sequence of original blocks it covers. Original
	// blocks are absent (their coverage is themselves).
	Chains map[ir.BlockID][]ir.BlockID

	// TermOrig maps a block to the original block whose terminator it
	// ends with (identity for original blocks); static branch hints are
	// keyed by original blocks and looked up through it.
	TermOrig map[ir.BlockID]ir.BlockID

	// EntryMap maps an original entry block to the enlarged block that
	// replaced it. For the compiler modes (EnlargedBB, Perfect) control
	// transfers have already been redirected and the map is diagnostic;
	// for the FillUnit mode the engine consults it at fetch time, since
	// the program's own targets keep pointing at original blocks.
	EntryMap map[ir.BlockID]ir.BlockID

	// Degraded records that the enlargement file supplied at load time was
	// structurally corrupt and the image fell back to its single-basic-block
	// equivalent (LoadDegrading). It travels with the serialized image so
	// cmd/sim can surface the degradation in the run's statistics.
	Degraded bool

	// liveness caches per-function liveness of the original program, used
	// by run-time (fill unit) materialization. Lazily built.
	liveness map[ir.FuncID]*opt.LiveInfo
}

// ChainOf returns the original blocks covered by a block.
func (im *Image) ChainOf(id ir.BlockID) []ir.BlockID {
	if c, ok := im.Chains[id]; ok {
		return c
	}
	return []ir.BlockID{id}
}

// TermOrigOf returns the original block owning a block's terminator.
func (im *Image) TermOrigOf(id ir.BlockID) ir.BlockID {
	if o, ok := im.TermOrig[id]; ok {
		return o
	}
	return id
}

// Load builds the executable image for one machine configuration. ef is
// required for (and only used by) the enlarged and perfect branch modes.
func Load(base *ir.Program, cfg machine.Config, ef *enlarge.File) (*Image, error) {
	img := &Image{
		Prog:     Clone(base),
		Cfg:      cfg,
		Chains:   make(map[ir.BlockID][]ir.BlockID),
		TermOrig: make(map[ir.BlockID]ir.BlockID),
		EntryMap: make(map[ir.BlockID]ir.BlockID),
	}
	switch cfg.Branch {
	case machine.EnlargedBB, machine.Perfect:
		if ef == nil {
			return nil, fmt.Errorf("loader: %s branch mode requires an enlargement file", cfg.Branch)
		}
		if err := img.materialize(ef); err != nil {
			return nil, err
		}
	case machine.FillUnit:
		if cfg.Disc == machine.Static {
			return nil, fmt.Errorf("loader: the fill unit requires a dynamically scheduled machine")
		}
	}
	if cfg.Disc == machine.Static {
		img.Words = make(map[ir.BlockID]sched.Schedule, len(img.Prog.Blocks))
		for _, b := range img.Prog.Blocks {
			if cfg.Sched == machine.ExactSched {
				// Opt-in exact mode: branch-and-bound optimal packing for
				// small blocks under the default deterministic budget (so
				// the image is reproducible), list schedule beyond it. The
				// result is legal under the same rules either way.
				img.Words[b.ID] = exact.Schedule(b, cfg.Issue, cfg.Mem.HitLatency, exact.DefaultOptions()).Schedule
			} else {
				img.Words[b.ID] = sched.Block(b, cfg.Issue, cfg.Mem.HitLatency)
			}
		}
	}
	if err := img.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("loader: invalid image: %w", err)
	}
	return img, nil
}

// LoadDegrading is Load with the corrupt-enlargement degrade policy: a
// *BadEnlargementError does not fail the load, it falls back to the
// configuration's single-basic-block equivalent — EnlargedBB becomes
// SingleBB; Perfect keeps its oracle predictor but drops the enlargement
// (an empty file) — and marks the image Degraded. The program still runs
// and produces identical output; only the timing loses the enlargement
// benefit. Any other load error is returned as-is.
func LoadDegrading(base *ir.Program, cfg machine.Config, ef *enlarge.File) (*Image, error) {
	img, err := Load(base, cfg, ef)
	if err == nil {
		return img, nil
	}
	var be *BadEnlargementError
	if !errors.As(err, &be) {
		return nil, err
	}
	if cfg.Branch == machine.EnlargedBB {
		fallback := cfg
		fallback.Branch = machine.SingleBB
		img, err = Load(base, fallback, nil)
	} else {
		img, err = Load(base, cfg, &enlarge.File{})
	}
	if err != nil {
		return nil, err
	}
	img.Degraded = true
	return img, nil
}

// Clone deep-copies a program so that per-configuration rewrites never
// touch the shared base.
func Clone(p *ir.Program) *ir.Program {
	np := &ir.Program{
		Entry:    p.Entry,
		Data:     p.Data, // read-only after compile
		DataBase: p.DataBase,
		MemSize:  p.MemSize,
	}
	np.Funcs = make([]*ir.Func, len(p.Funcs))
	for i, f := range p.Funcs {
		nf := *f
		nf.Blocks = append([]ir.BlockID(nil), f.Blocks...)
		np.Funcs[i] = &nf
	}
	np.Blocks = make([]*ir.Block, len(p.Blocks))
	for i, b := range p.Blocks {
		nb := *b
		nb.Body = append([]ir.Node(nil), b.Body...)
		np.Blocks[i] = &nb
	}
	return np
}

// ensureLiveness computes and caches per-function liveness of the original
// program; live-ins are keyed by original block IDs, which is what
// terminators reference at merged-block optimization time.
func (img *Image) ensureLiveness() {
	if img.liveness != nil {
		return
	}
	p := img.Prog
	img.liveness = make(map[ir.FuncID]*opt.LiveInfo, len(p.Funcs))
	for _, f := range p.Funcs {
		img.liveness[f.ID] = opt.Liveness(p, f, ir.NumRegs)
	}
}

// AddChain materializes one enlargement chain at run time (the fill-unit
// path) and returns the enlarged entry block. The program's control
// transfers are NOT redirected: the caller maps fetches of c.Entry through
// EntryMap. Liveness is computed against the original blocks, which stay
// immutable, so adding chains mid-simulation is safe.
func (img *Image) AddChain(c enlarge.Chain) (ir.BlockID, error) {
	img.ensureLiveness()
	if _, dup := img.EntryMap[c.Entry]; dup {
		return 0, fmt.Errorf("loader: entry %d already enlarged", c.Entry)
	}
	if err := img.materializeChain(c, img.liveness); err != nil {
		return 0, err
	}
	return img.EntryMap[c.Entry], nil
}

// materialize realizes every chain of the enlargement file as enlarged
// blocks inside img.Prog and redirects control transfers to them.
func (img *Image) materialize(ef *enlarge.File) error {
	p := img.Prog
	img.ensureLiveness()
	for ci, chain := range ef.Chains {
		if err := img.materializeChain(chain, img.liveness); err != nil {
			var be *BadEnlargementError
			if errors.As(err, &be) {
				be.Chain = ci
			}
			return err
		}
	}

	// Redirect every control transfer aimed at an enlarged entry.
	redirect := func(id *ir.BlockID) {
		if n, ok := img.EntryMap[*id]; ok {
			*id = n
		}
	}
	for _, b := range p.Blocks {
		switch b.Term.Op {
		case ir.Br:
			redirect(&b.Term.Target)
			redirect(&b.Fall)
		case ir.Jmp:
			redirect(&b.Term.Target)
		case ir.Call:
			redirect(&b.Fall)
		}
		// Assert fault targets point at prefix blocks, never entries, so
		// they are deliberately not redirected.
	}
	for _, f := range p.Funcs {
		redirect(&f.Entry)
	}
	return nil
}

// onChain and offChain return the followed and abandoned successors of a
// conditional chain step.
func onChainTarget(b *ir.Block, takenToNext bool) ir.BlockID {
	if takenToNext {
		return b.Term.Target
	}
	return b.Fall
}

func offChainTarget(b *ir.Block, takenToNext bool) ir.BlockID {
	if takenToNext {
		return b.Fall
	}
	return b.Term.Target
}

// validBlock reports whether id names a block of the program.
func validBlock(p *ir.Program, id ir.BlockID) bool {
	return id >= 0 && int(id) < len(p.Blocks) && p.Blocks[id] != nil
}

func (img *Image) materializeChain(c enlarge.Chain, liveness map[ir.FuncID]*opt.LiveInfo) error {
	p := img.Prog
	if len(c.Steps) < 2 {
		return nil
	}
	// Sanity-check the chain against the program. An enlargement file
	// arrives from disk, so nothing about it can be trusted: every block ID
	// is bounds-checked before use and every step must follow an arc of its
	// predecessor. Violations are *BadEnlargementError so callers can
	// degrade to single-block simulation instead of crashing.
	if !validBlock(p, c.Entry) {
		return &BadEnlargementError{Chain: -1, Reason: fmt.Sprintf("entry block %d does not exist", c.Entry)}
	}
	if c.Steps[0].Block != c.Entry {
		return &BadEnlargementError{Chain: -1, Reason: fmt.Sprintf("entry %d disagrees with first step %d", c.Entry, c.Steps[0].Block)}
	}
	entryBlk := p.Block(c.Entry)
	fn := entryBlk.Fn
	m := len(c.Steps)

	for i, s := range c.Steps {
		if !validBlock(p, s.Block) {
			return &BadEnlargementError{Chain: -1, Reason: fmt.Sprintf("step %d names nonexistent block %d", i, s.Block)}
		}
		b := p.Block(s.Block)
		if b.Fn != fn {
			return &BadEnlargementError{Chain: -1, Reason: fmt.Sprintf("chain crosses functions at step %d", i)}
		}
		if i == m-1 {
			break
		}
		switch b.Term.Op {
		case ir.Br, ir.Jmp:
			if onChainTarget(b, s.TakenToNext) != c.Steps[i+1].Block && b.Term.Op == ir.Br {
				return &BadEnlargementError{Chain: -1, Reason: fmt.Sprintf("step %d does not follow an arc of block %d", i, s.Block)}
			}
			if b.Term.Op == ir.Jmp && b.Term.Target != c.Steps[i+1].Block {
				return &BadEnlargementError{Chain: -1, Reason: fmt.Sprintf("step %d does not follow the jump of block %d", i, s.Block)}
			}
		default:
			return &BadEnlargementError{Chain: -1, Reason: fmt.Sprintf("step %d of block %d ends with %s", i, s.Block, b.Term.Op)}
		}
	}

	// Fault-recovery prefix blocks, one per conditional non-final step:
	// the prefix re-executes steps 0..k and jumps off-chain. Under
	// oldest-first fault processing the re-executed conditionals are
	// guaranteed to follow the chain, so their asserts are eliminated
	// (the paper's "no need to make the test that is guaranteed to
	// succeed").
	faultTo := make(map[int]ir.BlockID) // step index -> prefix block
	liv := liveness[fn]
	for k := 0; k < m-1; k++ {
		stepBlk := p.Block(c.Steps[k].Block)
		if stepBlk.Term.Op != ir.Br {
			continue
		}
		off := offChainTarget(stepBlk, c.Steps[k].TakenToNext)
		var body []ir.Node
		for i := 0; i <= k; i++ {
			body = append(body, p.Block(c.Steps[i].Block).Body...)
		}
		fb := &ir.Block{
			Body: body,
			Term: ir.Node{Op: ir.Jmp, Target: off},
			Fall: ir.NoBlock,
		}
		p.AddBlock(fn, fb)
		fb.Orig = c.Entry
		reoptimize(fb, liv.In[off])
		img.Chains[fb.ID] = chainIDs(c, k+1)
		img.TermOrig[fb.ID] = c.Steps[k].Block
		faultTo[k] = fb.ID
	}

	// The primary enlarged block: all step bodies with internal branches
	// converted to assert/fault nodes.
	var body []ir.Node
	for i := 0; i < m; i++ {
		stepBlk := p.Block(c.Steps[i].Block)
		body = append(body, stepBlk.Body...)
		if i == m-1 {
			break
		}
		if stepBlk.Term.Op == ir.Br {
			body = append(body, ir.Node{
				Op:     ir.Assert,
				A:      stepBlk.Term.A,
				B:      ir.NoReg,
				Expect: c.Steps[i].TakenToNext,
				Target: faultTo[i],
			})
		}
		// Jmp terminators vanish: merging removes the control transfer.
	}
	last := p.Block(c.Steps[m-1].Block)
	pb := &ir.Block{
		Body: body,
		Term: last.Term,
		Fall: last.Fall,
	}
	p.AddBlock(fn, pb)
	pb.Orig = c.Entry

	reoptimize(pb, mergedLiveOut(p, last, liv))
	img.Chains[pb.ID] = chainIDs(c, m)
	img.TermOrig[pb.ID] = c.Steps[m-1].Block
	img.EntryMap[c.Entry] = pb.ID
	return nil
}

func chainIDs(c enlarge.Chain, n int) []ir.BlockID {
	ids := make([]ir.BlockID, n)
	for i := 0; i < n; i++ {
		ids[i] = c.Steps[i].Block
	}
	return ids
}

// mergedLiveOut computes the live-out set of the final chain step from the
// original program's liveness.
func mergedLiveOut(p *ir.Program, last *ir.Block, liv *opt.LiveInfo) opt.Bits {
	if out, ok := liv.Out[last.ID]; ok {
		return out
	}
	// The final step's block was not in the liveness map (should not
	// happen); fall back to "everything live".
	all := opt.NewBits(ir.NumRegs)
	for r := 0; r < ir.NumRegs; r++ {
		all.Set(r)
	}
	return all
}

// reoptimize runs the optimizer over a merged node sequence: value
// numbering (constant folding, copy propagation, CSE, load forwarding)
// followed by dead code elimination against the sequence's live-out set —
// the paper's "re-optimized as a unit".
func reoptimize(b *ir.Block, liveOut opt.Bits) {
	if liveOut == nil {
		liveOut = allLive()
	}
	opt.ValueNumberSeq(b.Body, &b.Term, nil)
	b.Body = opt.DeadCode(b.Body, &b.Term, liveOut, ir.NumRegs)
}

func allLive() opt.Bits {
	all := opt.NewBits(ir.NumRegs)
	for r := 0; r < ir.NumRegs; r++ {
		all.Set(r)
	}
	return all
}
