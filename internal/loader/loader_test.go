package loader_test

import (
	"bytes"
	"testing"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

const src = `
int acc = 0;
int step(int x) {
	if (x % 3 == 0) return x * 2;
	return x + 1;
}
int main() {
	int i;
	int c = getc(0);
	while (c >= 0) {
		for (i = 0; i < 10; i++) acc = acc + step(i + c);
		putc('a' + acc % 26);
		c = getc(0);
	}
	return 0;
}
`

func compile(t *testing.T) *ir.Program {
	t.Helper()
	p, err := minic.Compile("t.mc", src, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func cfg(d machine.Discipline, bm machine.BranchMode) machine.Config {
	im, _ := machine.IssueModelByID(8)
	mc, _ := machine.MemConfigByID('A')
	return machine.Config{Disc: d, Issue: im, Mem: mc, Branch: bm}
}

func profileAndEnlarge(t *testing.T, p *ir.Program, in []byte) *enlarge.File {
	t.Helper()
	prof := interp.NewProfile()
	if _, err := interp.Run(p, in, nil, interp.Options{Profile: prof, MaxNodes: 1 << 24}); err != nil {
		t.Fatal(err)
	}
	ef := enlarge.Build(p, prof, enlarge.Options{MinArcWeight: 4, MinRatio: 0.6, MaxChainLen: 6, MaxInstances: 16})
	if len(ef.Chains) == 0 {
		t.Fatal("no chains")
	}
	return ef
}

func TestCloneIsDeep(t *testing.T) {
	p := compile(t)
	c := loader.Clone(p)
	c.Blocks[0].Body = append(c.Blocks[0].Body, ir.Node{Op: ir.Const, Dst: 5})
	origLen := len(p.Blocks[0].Body)
	if len(c.Blocks[0].Body) == origLen {
		t.Fatal("clone body not independent")
	}
	c.Funcs[0].Blocks = append(c.Funcs[0].Blocks, 0)
	if len(p.Funcs[0].Blocks) == len(c.Funcs[0].Blocks) {
		t.Fatal("clone func block list not independent")
	}
}

func TestLoadSingleBBNeedsNoFile(t *testing.T) {
	p := compile(t)
	img, err := loader.Load(p, cfg(machine.Dyn4, machine.SingleBB), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Chains) != 0 || len(img.EntryMap) != 0 {
		t.Error("single-BB image should have no enlargement metadata")
	}
}

func TestLoadEnlargedRequiresFile(t *testing.T) {
	p := compile(t)
	if _, err := loader.Load(p, cfg(machine.Dyn4, machine.EnlargedBB), nil); err == nil {
		t.Fatal("enlarged mode without a file should fail")
	}
}

func TestEnlargedImageStructure(t *testing.T) {
	p := compile(t)
	ef := profileAndEnlarge(t, p, []byte("hello world"))
	img, err := loader.Load(p, cfg(machine.Dyn4, machine.EnlargedBB), ef)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.EntryMap) != len(ef.Chains) {
		t.Errorf("entry map has %d entries for %d chains", len(img.EntryMap), len(ef.Chains))
	}
	// Base program untouched.
	if len(img.Prog.Blocks) <= len(p.Blocks) {
		t.Error("no blocks were materialized")
	}
	for orig, enl := range img.EntryMap {
		eb := img.Prog.Block(enl)
		chain := img.ChainOf(enl)
		if chain[0] != orig {
			t.Errorf("chain of %d starts at %d, want %d", enl, chain[0], orig)
		}
		if eb.Orig != orig {
			t.Errorf("enlarged block Orig = %d, want %d", eb.Orig, orig)
		}
		// Primary blocks for multi-step chains with conditional steps
		// contain asserts pointing at prefix blocks that themselves have
		// no asserts.
		for i := range eb.Body {
			if eb.Body[i].Op == ir.Assert {
				fb := img.Prog.Block(eb.Body[i].Target)
				for k := range fb.Body {
					if fb.Body[k].Op == ir.Assert {
						t.Error("fault-recovery prefix block contains an assert")
					}
				}
				if fb.Term.Op != ir.Jmp {
					t.Errorf("prefix block ends with %s, want jmp", fb.Term.Op)
				}
			}
		}
	}
	if err := img.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnlargedProgramSemanticsPreserved(t *testing.T) {
	p := compile(t)
	ef := profileAndEnlarge(t, p, []byte("profiling input text"))
	input := []byte("different measurement text!")
	ref, err := interp.Run(p, input, nil, interp.Options{MaxNodes: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn4} {
		img, err := loader.Load(p, cfg(d, machine.EnlargedBB), ef)
		if err != nil {
			t.Fatal(err)
		}
		got, err := interp.Run(img.Prog, input, nil, interp.Options{MaxNodes: 1 << 24})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Output, ref.Output) {
			t.Fatalf("%s: enlarged program output %q, want %q", d, got.Output, ref.Output)
		}
		// Re-optimization should reduce the retired node count.
		if got.RetiredNodes >= ref.RetiredNodes {
			t.Errorf("%s: enlarged program retired %d nodes, original %d (expected fewer)",
				d, got.RetiredNodes, ref.RetiredNodes)
		}
	}
}

func TestStaticImageHasSchedules(t *testing.T) {
	p := compile(t)
	img, err := loader.Load(p, cfg(machine.Static, machine.SingleBB), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range img.Prog.Blocks {
		s, ok := img.Words[b.ID]
		if !ok {
			t.Fatalf("block %d has no schedule", b.ID)
		}
		n := 0
		for _, w := range s {
			n += len(w)
		}
		if n != len(b.Body)+1 {
			t.Fatalf("block %d schedule covers %d of %d nodes", b.ID, n, len(b.Body)+1)
		}
	}
}

func TestDynamicImageHasNoSchedules(t *testing.T) {
	p := compile(t)
	img, err := loader.Load(p, cfg(machine.Dyn256, machine.SingleBB), nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.Words != nil {
		t.Error("dynamic image should not carry word schedules")
	}
}

func TestImageSerializationRoundTrip(t *testing.T) {
	p := compile(t)
	ef := profileAndEnlarge(t, p, []byte("roundtrip input"))
	img, err := loader.Load(p, cfg(machine.Static, machine.EnlargedBB), ef)
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := loader.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cfg.String() != img.Cfg.String() {
		t.Errorf("config %s != %s", back.Cfg, img.Cfg)
	}
	if len(back.Prog.Blocks) != len(img.Prog.Blocks) {
		t.Error("block count changed")
	}
	if len(back.Words) != len(img.Words) {
		t.Error("schedules lost")
	}
	in := []byte("check execution")
	a, err := interp.Run(img.Prog, in, nil, interp.Options{MaxNodes: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Run(back.Prog, in, nil, interp.Options{MaxNodes: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Output, b.Output) {
		t.Error("deserialized image computes differently")
	}
}

func TestTermOrigMapping(t *testing.T) {
	p := compile(t)
	ef := profileAndEnlarge(t, p, []byte("abcdefg"))
	img, err := loader.Load(p, cfg(machine.Dyn4, machine.EnlargedBB), ef)
	if err != nil {
		t.Fatal(err)
	}
	for _, enl := range img.EntryMap {
		chain := img.ChainOf(enl)
		if got := img.TermOrigOf(enl); got != chain[len(chain)-1] {
			t.Errorf("TermOrig of %d = %d, want final chain step %d", enl, got, chain[len(chain)-1])
		}
	}
	// Identity for original blocks.
	if img.TermOrigOf(0) != 0 {
		t.Error("TermOrig of an original block should be itself")
	}
}
