package loader

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
)

// Marshal serializes a loaded image (the interchange format between the
// cmd/tld and cmd/sim executables, mirroring the paper's translated-code
// files).
func (im *Image) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(im); err != nil {
		return nil, fmt.Errorf("loader: encode image: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a serialized image.
func Unmarshal(data []byte) (*Image, error) {
	var im Image
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&im); err != nil {
		return nil, fmt.Errorf("loader: decode image: %w", err)
	}
	if err := im.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("loader: decoded image: %w", err)
	}
	return &im, nil
}

// WriteFile serializes an image to a file.
func (im *Image) WriteFile(path string) error {
	data, err := im.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a serialized image from a file.
func ReadFile(path string) (*Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}
