package loader

import (
	"fgpsim/internal/ir"
)

// This file computes canonical identity hashes for programs and images.
// Snapshots and journals are only valid against the exact image they were
// taken from — resuming a checkpoint into a different program or machine
// configuration would silently produce garbage — so both carry a
// fingerprint and the restoring side verifies it. The hash is FNV-1a over
// a fixed, explicit walk of every semantically meaningful field; the gob
// encoding in serialize.go is unsuitable for identity (it is not
// canonical across versions).

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

type fnv64 uint64

func (h *fnv64) byte(b byte) {
	*h = (*h ^ fnv64(b)) * fnvPrime
}

func (h *fnv64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnv64) i64(v int64) { h.u64(uint64(v)) }

func (h *fnv64) bytes(b []byte) {
	h.u64(uint64(len(b)))
	for _, c := range b {
		h.byte(c)
	}
}

func (h *fnv64) str(s string) { h.bytes([]byte(s)) }

func (h *fnv64) bool(b bool) {
	if b {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

func (h *fnv64) node(n *ir.Node) {
	h.byte(byte(n.Op))
	h.i64(int64(n.Dst))
	h.i64(int64(n.A))
	h.i64(int64(n.B))
	h.i64(n.Imm)
	h.i64(int64(n.Target))
	h.bool(n.Expect)
	h.i64(int64(n.Callee))
}

// ProgramFingerprint returns a canonical 64-bit identity hash of a
// program: every function, block, node, and data byte, walked in ID order
// with length prefixes so no two distinct programs collide by
// concatenation.
func ProgramFingerprint(p *ir.Program) uint64 {
	h := fnv64(fnvOffset)
	h.i64(int64(p.Entry))
	h.i64(p.DataBase)
	h.i64(p.MemSize)
	h.bytes(p.Data)

	h.u64(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		h.i64(int64(f.ID))
		h.str(f.Name)
		h.i64(int64(f.Entry))
		h.i64(int64(f.FrameSize))
		h.i64(int64(f.NumArgs))
		h.u64(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			h.i64(int64(b))
		}
	}
	h.u64(uint64(len(p.Blocks)))
	for _, b := range p.Blocks {
		if b == nil {
			h.byte(0)
			continue
		}
		h.byte(1)
		h.i64(int64(b.ID))
		h.i64(int64(b.Fn))
		h.i64(int64(b.Fall))
		h.i64(int64(b.Orig))
		h.u64(uint64(len(b.Body)))
		for i := range b.Body {
			h.node(&b.Body[i])
		}
		h.node(&b.Term)
	}
	return uint64(h)
}

// Fingerprint returns the image's identity hash: the materialized program
// plus every configuration field that changes timed execution — including
// the extension fields (predictor kind, table geometries, window override,
// conservative disambiguation) that machine.Config.String() omits — and
// the degraded flag. Two images agree iff a snapshot from one replays
// bit-identically on the other.
func (im *Image) Fingerprint() uint64 {
	h := fnv64(ProgramFingerprint(im.Prog))
	cfg := im.Cfg
	h.str(cfg.String())
	h.i64(int64(cfg.BTBEntries))
	h.i64(int64(cfg.GShareBits))
	h.i64(int64(cfg.WindowOverride))
	h.byte(byte(cfg.Predictor))
	h.byte(byte(cfg.Sched))
	h.bool(cfg.ConservativeMem)
	h.bool(im.Degraded)
	return uint64(h)
}
