package loader_test

import (
	"testing"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// TestCrossBranchCSE reproduces the paper's section 2.3 example: a value
// computed before a branch is recomputed after it; merging the two blocks
// across the branch and re-optimizing as a unit eliminates the second
// computation ("the artificial flow dependency through R0 can be
// eliminated").
func TestCrossBranchCSE(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)

	// b0:  r5 = ld [r9]          (opaque value)
	//      r6 = r5 < r7          (the compare)
	//      br r6 -> b1 else b2
	b0 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Ld, Dst: 5, A: 9},
			{Op: ir.Lt, Dst: 6, A: 5, B: 7},
		},
		Term: ir.Node{Op: ir.Br, A: 6, Target: 1},
		Fall: 2,
	}
	p.AddBlock(0, b0)
	// b1:  r8 = r5 < r7          (recomputed!)
	//      st [r9+4] = r8
	//      halt
	b1 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Lt, Dst: 8, A: 5, B: 7},
			{Op: ir.St, A: 9, B: 8, Imm: 4},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b1)
	b2 := &ir.Block{Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b2)
	f.Entry = 0
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	ef := &enlarge.File{
		Chains: []enlarge.Chain{{
			Entry: 0,
			Steps: []enlarge.Step{{Block: 0, TakenToNext: true}, {Block: 1}},
		}},
		Options: enlarge.DefaultOptions(),
	}
	im8, _ := machine.IssueModelByID(8)
	mcA, _ := machine.MemConfigByID('A')
	cfg := machine.Config{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: machine.EnlargedBB}
	img, err := loader.Load(p, cfg, ef)
	if err != nil {
		t.Fatal(err)
	}
	enl, ok := img.EntryMap[0]
	if !ok {
		t.Fatal("chain not materialized")
	}
	eb := img.Prog.Block(enl)

	// The merged block originally holds: ld, lt, assert, lt, st.
	// Re-optimization must CSE the second compare away (it may survive as
	// nothing at all: the store can use the first result directly).
	compares := 0
	for i := range eb.Body {
		if eb.Body[i].Op == ir.Lt {
			compares++
		}
	}
	if compares != 1 {
		t.Errorf("merged block has %d compares, want 1 (cross-branch CSE failed):\n%s",
			compares, img.Prog.DumpFunc(img.Prog.Funcs[0]))
	}
	// And the assert must still guard the merged work.
	asserts := 0
	for i := range eb.Body {
		if eb.Body[i].Op == ir.Assert {
			asserts++
		}
	}
	if asserts != 1 {
		t.Errorf("merged block has %d asserts, want 1", asserts)
	}
}
