package loader_test

import (
	"testing"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// badFile wraps chains into an enlargement file.
func badFile(chains ...enlarge.Chain) *enlarge.File {
	return &enlarge.File{Chains: chains, Options: enlarge.DefaultOptions()}
}

// TestLoaderRejectsMalformedChains: chains that do not follow real arcs of
// the program must be refused, not silently miscompiled.
func TestLoaderRejectsMalformedChains(t *testing.T) {
	p := compile(t)
	cfg := cfg(machine.Dyn4, machine.EnlargedBB)

	// Find a block ending in a conditional branch and one ending in a call.
	var brBlock, callBlock *ir.Block
	for _, b := range p.Blocks {
		switch b.Term.Op {
		case ir.Br:
			if brBlock == nil {
				brBlock = b
			}
		case ir.Call:
			if callBlock == nil {
				callBlock = b
			}
		}
	}
	if brBlock == nil || callBlock == nil {
		t.Fatal("test program lacks needed block shapes")
	}

	// A chain step that follows neither arm of the branch.
	notASucc := brBlock.ID // a block is never its own... unless a self loop
	if brBlock.Term.Target == notASucc || brBlock.Fall == notASucc {
		notASucc = callBlock.ID
	}
	wrongArc := badFile(enlarge.Chain{
		Entry: brBlock.ID,
		Steps: []enlarge.Step{
			{Block: brBlock.ID, TakenToNext: true},
			{Block: notASucc},
		},
	})
	if brBlock.Term.Target != notASucc {
		if _, err := loader.Load(p, cfg, wrongArc); err == nil {
			t.Error("chain through a non-arc was accepted")
		}
	}

	// A chain extending through a call terminator.
	throughCall := badFile(enlarge.Chain{
		Entry: callBlock.ID,
		Steps: []enlarge.Step{
			{Block: callBlock.ID, TakenToNext: true},
			{Block: callBlock.Fall},
		},
	})
	if _, err := loader.Load(p, cfg, throughCall); err == nil {
		t.Error("chain through a call terminator was accepted")
	}
}

// TestLoaderIgnoresTrivialChains: single-step chains perform no enlargement.
func TestLoaderIgnoresTrivialChains(t *testing.T) {
	p := compile(t)
	f := badFile(enlarge.Chain{Entry: 0, Steps: []enlarge.Step{{Block: 0}}})
	img, err := loader.Load(p, cfg(machine.Dyn4, machine.EnlargedBB), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.EntryMap) != 0 {
		t.Error("trivial chain materialized something")
	}
}

// TestStaticEnlargedBlocksAreScheduled: materialized blocks must get word
// schedules on static machines.
func TestStaticEnlargedBlocksAreScheduled(t *testing.T) {
	p := compile(t)
	ef := profileAndEnlarge(t, p, []byte("schedule me please"))
	img, err := loader.Load(p, cfg(machine.Static, machine.EnlargedBB), ef)
	if err != nil {
		t.Fatal(err)
	}
	for _, enl := range img.EntryMap {
		if _, ok := img.Words[enl]; !ok {
			t.Errorf("materialized block %d has no schedule", enl)
		}
		b := img.Prog.Block(enl)
		n := 0
		for _, w := range img.Words[enl] {
			n += len(w)
		}
		if n != len(b.Body)+1 {
			t.Errorf("block %d schedule covers %d of %d nodes", enl, n, len(b.Body)+1)
		}
	}
}
