// Package mem models the memory system of the abstract processor: a two-way
// set-associative cache with 16-byte blocks (1K or 16K bytes), fully
// pipelined access ports, a fixed 10-cycle miss penalty, and perfect-memory
// configurations with 1/2/3-cycle latency. Values live elsewhere (the
// engines keep the actual byte array); this package answers only the timing
// question "how many cycles does the access at this address take?" and
// keeps hit/miss statistics.
package mem

import "fgpsim/internal/machine"

// BlockSize is the cache block size in bytes (paper: 16-byte blocks).
const BlockSize = 16

// Ways is the cache associativity (paper: two-way set associative).
const Ways = 2

// Cache is a tag-only cache model with LRU replacement within each set.
type Cache struct {
	sets   int
	tags   []uint32 // sets*Ways entries; 0 means invalid
	lru    []uint8  // index of the least-recently-used way per set
	Hits   int64
	Misses int64
}

// NewCache builds a cache of the given total size in bytes.
func NewCache(size int) *Cache {
	sets := size / (BlockSize * Ways)
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		sets: sets,
		tags: make([]uint32, sets*Ways),
		lru:  make([]uint8, sets),
	}
}

// Access probes the cache for the block containing addr, allocating it on a
// miss, and reports whether it hit. The stored tag is offset by one so that
// tag 0 always means "invalid".
func (c *Cache) Access(addr int64) bool {
	blk := uint32(addr) / BlockSize
	set := int(blk) % c.sets
	tag := blk + 1
	base := set * Ways
	for w := 0; w < Ways; w++ {
		if c.tags[base+w] == tag {
			c.Hits++
			c.lru[set] = uint8(1 - w)
			return true
		}
	}
	c.Misses++
	victim := int(c.lru[set])
	c.tags[base+victim] = tag
	c.lru[set] = uint8(1 - victim)
	return false
}

// HitRatio returns hits/(hits+misses), or 1 when the cache is unused.
func (c *Cache) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 1
	}
	return float64(c.Hits) / float64(total)
}

// System is the timing model for one memory configuration.
type System struct {
	Cfg   machine.MemConfig
	Cache *Cache // nil for perfect-memory configurations
}

// New builds the memory system for a configuration.
func New(cfg machine.MemConfig) *System {
	s := &System{Cfg: cfg}
	if cfg.HasCache() {
		s.Cache = NewCache(cfg.CacheSize)
	}
	return s
}

// LoadLatency returns the latency in cycles of a load from addr, updating
// cache state. The memory system is fully pipelined: a new access can start
// on every port every cycle regardless of outstanding misses.
func (s *System) LoadLatency(addr int64) int {
	if s.Cache == nil {
		return s.Cfg.HitLatency
	}
	if s.Cache.Access(addr) {
		return s.Cfg.HitLatency
	}
	return s.Cfg.MissLatency
}

// StoreTouch updates cache state for a store to addr (write-allocate).
// Stores drain from the write buffer in the background and never stall the
// pipeline, so there is no latency to report.
func (s *System) StoreTouch(addr int64) {
	if s.Cache != nil {
		s.Cache.Access(addr)
	}
}

// ForwardLatency is the latency of a load satisfied by the write buffer,
// which sits in front of the cache as a small fully-associative store.
const ForwardLatency = 1
