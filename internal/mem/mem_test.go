package mem

import (
	"testing"
	"testing/quick"

	"fgpsim/internal/machine"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(1 << 10) // 32 sets x 2 ways x 16 bytes
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) {
		t.Error("repeat access should hit")
	}
	if !c.Access(12) {
		t.Error("same-block access should hit")
	}
	if c.Access(16) {
		t.Error("next block should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestCacheTwoWayAssociativity(t *testing.T) {
	c := NewCache(1 << 10)
	sets := 1 << 10 / (BlockSize * Ways) // 32
	stride := int64(sets * BlockSize)    // same set, different tags
	a, b, d := int64(0), stride, 2*stride
	c.Access(a)
	c.Access(b)
	if !c.Access(a) || !c.Access(b) {
		t.Fatal("two blocks should coexist in a 2-way set")
	}
	// Access order a, b makes a the LRU; inserting d must evict a, not b.
	c.Access(d)
	if !c.Access(b) {
		t.Error("b (recently used) should have survived the insertion of d")
	}
	if c.Access(a) {
		t.Error("a (least recently used) should have been evicted")
	}
}

func TestCacheHitRatio(t *testing.T) {
	c := NewCache(1 << 10)
	if c.HitRatio() != 1 {
		t.Error("unused cache should report ratio 1")
	}
	c.Access(0)
	c.Access(0)
	c.Access(0)
	c.Access(0)
	if r := c.HitRatio(); r != 0.75 {
		t.Errorf("HitRatio = %v, want 0.75", r)
	}
}

func TestSystemLatencies(t *testing.T) {
	for _, mc := range machine.MemConfigs {
		s := New(mc)
		first := s.LoadLatency(0x1000)
		second := s.LoadLatency(0x1000)
		if !mc.HasCache() {
			if first != mc.HitLatency || second != mc.HitLatency {
				t.Errorf("%s: perfect memory latencies %d/%d, want %d", mc, first, second, mc.HitLatency)
			}
			continue
		}
		if first != mc.MissLatency {
			t.Errorf("%s: cold load latency %d, want miss %d", mc, first, mc.MissLatency)
		}
		if second != mc.HitLatency {
			t.Errorf("%s: warm load latency %d, want hit %d", mc, second, mc.HitLatency)
		}
	}
}

func TestStoreTouchAllocates(t *testing.T) {
	mc, _ := machine.MemConfigByID('D')
	s := New(mc)
	s.StoreTouch(0x2000)
	if lat := s.LoadLatency(0x2000); lat != mc.HitLatency {
		t.Errorf("load after store-allocate took %d cycles, want hit %d", lat, mc.HitLatency)
	}
}

// Property: a second access to any address always hits (temporal locality
// is never lost immediately).
func TestRepeatAccessAlwaysHits(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewCache(16 << 10)
		for _, a := range addrs {
			c.Access(int64(a))
			if !c.Access(int64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hit+miss counts equal accesses.
func TestAccessAccounting(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewCache(1 << 10)
		for _, a := range addrs {
			c.Access(int64(a))
		}
		return c.Hits+c.Misses == int64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTinyCache(t *testing.T) {
	c := NewCache(8) // smaller than one set: clamps to 1 set
	c.Access(0)
	if !c.Access(0) {
		t.Error("tiny cache should still function")
	}
}
