package mem

import "fmt"

// CacheState is the serializable state of a Cache: the tag array, the LRU
// bits, and the hit/miss counters. It is what checkpoints carry so a
// restored run sees the same hit/miss sequence as one that never stopped.
type CacheState struct {
	Sets   int32
	Tags   []uint32
	LRU    []uint8
	Hits   int64
	Misses int64
}

// State snapshots the cache.
func (c *Cache) State() *CacheState {
	return &CacheState{
		Sets:   int32(c.sets),
		Tags:   append([]uint32(nil), c.tags...),
		LRU:    append([]uint8(nil), c.lru...),
		Hits:   c.Hits,
		Misses: c.Misses,
	}
}

// SetState restores a snapshot taken by State. The cache must have the
// same geometry as the one snapshotted.
func (c *Cache) SetState(s *CacheState) error {
	if int(s.Sets) != c.sets || len(s.Tags) != len(c.tags) || len(s.LRU) != len(c.lru) {
		return fmt.Errorf("mem: cache geometry mismatch: snapshot has %d sets / %d tags, cache has %d / %d",
			s.Sets, len(s.Tags), c.sets, len(c.tags))
	}
	copy(c.tags, s.Tags)
	copy(c.lru, s.LRU)
	c.Hits = s.Hits
	c.Misses = s.Misses
	return nil
}

// State snapshots the system's cache, or returns nil for perfect-memory
// configurations (which have no timing state to carry).
func (s *System) State() *CacheState {
	if s.Cache == nil {
		return nil
	}
	return s.Cache.State()
}

// SetState restores the system's cache state. A nil state is only valid
// for perfect-memory systems, and a non-nil state requires a cache.
func (s *System) SetState(cs *CacheState) error {
	if cs == nil {
		if s.Cache != nil {
			return fmt.Errorf("mem: snapshot has no cache state but the configuration has a cache")
		}
		return nil
	}
	if s.Cache == nil {
		return fmt.Errorf("mem: snapshot has cache state but the configuration is perfect-memory")
	}
	return s.Cache.SetState(cs)
}
