package sched

import (
	"math/rand"
	"testing"

	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
)

// randomBlock builds a random well-formed block mixing ALU ops, loads,
// stores, asserts, and system calls.
func randomBlock(rng *rand.Rand, n int) *ir.Block {
	regs := []ir.Reg{5, 6, 7, 8, 9, 10}
	pick := func() ir.Reg { return regs[rng.Intn(len(regs))] }
	var body []ir.Node
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0, 1:
			body = append(body, ir.Node{Op: ir.Ld, Dst: pick(), A: pick(), Imm: int64(rng.Intn(64) * 4)})
		case 2:
			body = append(body, ir.Node{Op: ir.St, A: pick(), B: pick(), Imm: int64(rng.Intn(64) * 4)})
		case 3:
			body = append(body, ir.Node{Op: ir.Sys, Dst: pick(), A: pick(), B: ir.NoReg, Imm: ir.SysPutc})
		case 4:
			body = append(body, ir.Node{Op: ir.Assert, A: pick(), Expect: true, Target: 0})
		case 5:
			body = append(body, ir.Node{Op: ir.Const, Dst: pick(), Imm: int64(rng.Intn(100))})
		default:
			ops := []ir.Op{ir.Add, ir.Sub, ir.Xor, ir.Mul, ir.Lt}
			body = append(body, ir.Node{Op: ops[rng.Intn(len(ops))], Dst: pick(), A: pick(), B: pick()})
		}
	}
	return &ir.Block{Body: body, Term: ir.Node{Op: ir.Br, A: pick(), Target: 0}, Fall: 0}
}

// verifySchedule checks every structural constraint a schedule must obey.
func verifySchedule(t *testing.T, b *ir.Block, s Schedule, im machine.IssueModel, hitLat int) {
	t.Helper()
	n := len(b.Body) + 1
	nodeAt := func(i int) *ir.Node {
		if i == len(b.Body) {
			return &b.Term
		}
		return &b.Body[i]
	}
	word := make([]int, n)
	pos := make([]int, n) // position within the word
	for i := range word {
		word[i] = -1
	}
	for w, ws := range s {
		mem, alu := 0, 0
		for k, i := range ws {
			if word[i] != -1 {
				t.Fatalf("node %d scheduled twice", i)
			}
			word[i] = w
			pos[i] = k
			if nodeAt(i).Op.IsMem() {
				mem++
			} else {
				alu++
			}
			if k > 0 && ws[k-1] > i {
				t.Fatalf("word %d not in index order: %v", w, ws)
			}
		}
		if im.Sequential {
			if mem+alu > 1 {
				t.Fatalf("sequential word %d has %d nodes", w, mem+alu)
			}
		} else if mem > im.Mem || alu > im.ALU {
			t.Fatalf("word %d exceeds slots: %dM%dA > %dM%dA", w, mem, alu, im.Mem, im.ALU)
		}
	}
	for i := 0; i < n; i++ {
		if word[i] == -1 {
			t.Fatalf("node %d unscheduled", i)
		}
	}
	if word[n-1] != len(s)-1 {
		t.Fatal("terminator not in last word")
	}

	// before(a, b) = a executes before b in the engine's order.
	before := func(a, c int) bool {
		return word[a] < word[c] || (word[a] == word[c] && a < c)
	}
	lastDef := map[ir.Reg]int{}
	lastStore := -1
	lastSys := -1
	lastAssert := -1
	for i := 0; i < n; i++ {
		nd := nodeAt(i)
		// RAW: the consumer must sit in a strictly later word. (Schedules
		// are compressed — empty words are dropped — so word distance is
		// not cycle distance; the engine's interlock supplies the latency.
		// Compression never merges words, so the planned gap of >= 1 word
		// guarantees strict ordering survives.)
		for _, u := range []ir.Reg{nd.A, nd.B} {
			if u == ir.NoReg {
				continue
			}
			if d, ok := lastDef[u]; ok && word[i] <= word[d] {
				t.Fatalf("RAW violated: node %d (word %d) uses node %d (word %d)",
					i, word[i], d, word[d])
			}
		}
		if nd.Op.HasDst() {
			lastDef[nd.Dst] = i
		}
		switch {
		case nd.Op.IsLoad():
			if lastStore >= 0 && word[i] <= word[lastStore] {
				t.Fatalf("load %d not strictly after store %d", i, lastStore)
			}
		case nd.Op.IsStore():
			if lastStore >= 0 && !before(lastStore, i) {
				t.Fatalf("stores %d and %d reordered", lastStore, i)
			}
			lastStore = i
		case nd.Op == ir.Sys:
			if lastSys >= 0 && !before(lastSys, i) {
				t.Fatalf("syscalls %d and %d reordered", lastSys, i)
			}
			if lastAssert >= 0 && !before(lastAssert, i) {
				t.Fatalf("syscall %d moved above assert %d", i, lastAssert)
			}
			lastSys = i
		case nd.Op == ir.Assert:
			if lastAssert >= 0 && !before(lastAssert, i) {
				t.Fatalf("asserts %d and %d reordered", lastAssert, i)
			}
			lastAssert = i
		}
	}
}

// TestRandomSchedulesRespectAllConstraints is the scheduler's property
// test: 200 random blocks across all issue models and hit latencies.
func TestRandomSchedulesRespectAllConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 200; trial++ {
		b := randomBlock(rng, 1+rng.Intn(40))
		im := machine.IssueModels[rng.Intn(len(machine.IssueModels))]
		hitLat := 1 + rng.Intn(3)
		s := Block(b, im, hitLat)
		verifySchedule(t, b, s, im, hitLat)
	}
}

// TestWAWNeverReordersAcrossWords: later writes to the same register never
// land in earlier words.
func TestWAWNeverReordersAcrossWords(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		b := randomBlock(rng, 20)
		s := Block(b, machine.IssueModels[7], 1)
		word := map[int]int{}
		for w, ws := range s {
			for _, i := range ws {
				word[i] = w
			}
		}
		lastDef := map[ir.Reg]int{}
		for i := 0; i <= len(b.Body); i++ {
			nd := &b.Term
			if i < len(b.Body) {
				nd = &b.Body[i]
			}
			if nd.Op.HasDst() {
				if d, ok := lastDef[nd.Dst]; ok && word[i] < word[d] {
					t.Fatalf("WAW reordered: node %d before node %d", i, d)
				}
				lastDef[nd.Dst] = i
			}
		}
	}
}
