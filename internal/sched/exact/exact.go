// Package exact is a branch-and-bound optimal scheduler for single basic
// blocks: it finds a legal multinodeword packing of minimum planned length
// (sched.PlannedCycles — issue cycles under the compile-time interlock
// model), or proves the greedy list schedule already optimal. It exists as
// an oracle: the list scheduler's quality is measured as the gap between
// its planned length and the exact optimum, and difftest asserts the list
// schedule is never shorter than the proven optimum.
//
// The search enumerates schedules cycle by cycle. At each cycle it branches
// over the maximal legal subsets of ready nodes that fit the issue model's
// slots, bounding partial schedules by the dependence critical path and by
// slot-count resource bounds, and pruning revisited states through a
// dominance memo keyed on the scheduled-node set and the readiness profile
// of the rest. Search effort is bounded by a deterministic expansion budget
// (plus an optional wall-clock budget); when the budget expires the result
// is typed BoundOnly — a legal schedule plus a proven lower bound, without
// an optimality claim — so callers can distinguish "optimal" from "best
// found". Legality is exactly sched.Validate's contract: both schedulers
// plan against the same sched.BuildDAG.
package exact

import (
	"time"

	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
	"fgpsim/internal/sched"
)

// Status classifies how much a Result proves.
type Status uint8

const (
	// Proved: Result.Schedule has minimum planned length among all legal
	// schedules of the block; Length == LowerBound.
	Proved Status = iota
	// BoundOnly: the search budget expired. Schedule is legal and Length
	// is the best planned length found (never worse than the list
	// schedule), but only LowerBound <= optimum <= Length is known.
	BoundOnly
	// TooLarge: the block exceeds Options.MaxNodes, so no search ran.
	// Schedule is the list schedule; LowerBound is the root bound.
	TooLarge
)

func (s Status) String() string {
	switch s {
	case Proved:
		return "proved"
	case BoundOnly:
		return "bound-only"
	case TooLarge:
		return "too-large"
	default:
		return "unknown"
	}
}

// Options bounds the search.
type Options struct {
	// MaxNodes is the largest block (body plus terminator) the search
	// attempts; larger blocks return TooLarge immediately. Defaults to 30;
	// capped at 62 (states are node bitmasks in a uint64).
	MaxNodes int

	// MaxExpanded is the deterministic search budget: the maximum number
	// of word-boundary states expanded before the search gives up with
	// BoundOnly. Determinism matters — fuzzing, image fingerprints, and
	// snapshot resume all rely on the same block producing the same
	// schedule on every run — so this, not wall time, is the primary
	// budget. Defaults to 200000.
	MaxExpanded int64

	// WallBudget optionally also stops the search after a wall-clock
	// duration. Zero disables it (the default): a wall budget makes
	// results timing-dependent, so only opt in where reproducibility of
	// the schedule does not matter (e.g. one-off reports).
	WallBudget time.Duration
}

// DefaultOptions returns the budget the corpus sweep and the loader use.
func DefaultOptions() Options {
	return Options{MaxNodes: 30, MaxExpanded: 200000}
}

func (o Options) normalized() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 30
	}
	if o.MaxNodes > 62 {
		o.MaxNodes = 62
	}
	if o.MaxExpanded <= 0 {
		o.MaxExpanded = 200000
	}
	return o
}

// Result is the outcome of one exact-scheduling run.
type Result struct {
	// Schedule is a legal schedule of the block: the optimum when Status
	// is Proved, otherwise the best schedule found (at worst the list
	// schedule — Length never exceeds the list schedule's planned length).
	Schedule sched.Schedule
	// Length is Schedule's planned length in issue cycles
	// (sched.PlannedCycles).
	Length int
	// LowerBound is a proven lower bound on the planned length of every
	// legal schedule. Equal to Length when Status is Proved.
	LowerBound int
	// Status reports whether Length is the proven optimum.
	Status Status
	// Expanded counts word-boundary states the search expanded.
	Expanded int64
}

// Optimal reports whether the result carries an optimality proof.
func (r *Result) Optimal() bool { return r.Status == Proved }

// Schedule finds a minimum-planned-length legal schedule of the block for
// the issue model and compile-time hit latency, within the options' budget.
// It never fails: every Result carries a legal schedule no longer (in
// planned cycles) than the greedy list schedule.
func Schedule(b *ir.Block, im machine.IssueModel, hitLatency int, o Options) *Result {
	o = o.normalized()
	d := sched.BuildDAG(b, hitLatency)
	n := d.N

	// Seed the incumbent with the list schedule: the search then only has
	// to find strict improvements, and the result can never be worse.
	seed := sched.Block(b, im, hitLatency)
	seedLen := sched.PlannedCycles(b, im, hitLatency, seed)

	s := &searcher{
		b:      b,
		im:     im,
		hitLat: hitLatency,
		d:      d,
		n:      n,
		opts:   o,
	}
	s.prepare()
	rootLB := s.rootBound()

	r := &Result{Schedule: seed, Length: seedLen, LowerBound: rootLB}
	if seedLen <= rootLB {
		// The list schedule meets the lower bound: optimal without search
		// (this needs no size limit, so even huge blocks can be proved).
		r.Status = Proved
		r.LowerBound = seedLen
		return r
	}
	if n > o.MaxNodes {
		r.Status = TooLarge
		return r
	}

	s.bestLen = seedLen
	if o.WallBudget > 0 {
		s.deadline = time.Now().Add(o.WallBudget)
	}
	var est [64]int32
	s.dfs(0, 0, &est)

	r.Expanded = s.expanded
	if s.best != nil {
		r.Schedule = s.best
		r.Length = s.bestLen
	}
	if !s.exhausted || r.Length == rootLB {
		r.Status = Proved
		r.LowerBound = r.Length
	} else {
		r.Status = BoundOnly
	}
	return r
}

// pedge is an in-edge: word(node) >= word(from) + gap.
type pedge struct {
	from int32
	gap  int32
}

type memoKey struct {
	mask uint64
	sig  uint64
}

type searcher struct {
	b      *ir.Block
	im     machine.IssueModel
	hitLat int
	d      *sched.DAG
	n      int
	opts   Options

	full    uint64 // all nodes scheduled
	isMem   []bool
	preds   [][]pedge
	hend    []int // gap-path height to block end (bound-safe, see prepare)
	memCap  int   // per-word slot capacities
	aluCap  int
	totCap  int
	maxGap  int  // largest edge gap (memo signatures hold deltas <= 3)
	canMemo bool // n small enough and gaps small enough to memo safely

	cur       []sched.Word // words of the partial schedule under construction
	best      sched.Schedule
	bestLen   int
	memo      map[memoKey]int32
	expanded  int64
	exhausted bool
	deadline  time.Time
}

func (s *searcher) prepare() {
	s.full = (uint64(1) << uint(s.n)) - 1
	s.isMem = make([]bool, s.n)
	for i := 0; i < s.n; i++ {
		s.isMem[i] = sched.NodeAt(s.b, i).Op.IsMem()
	}
	s.preds = make([][]pedge, s.n)
	for from := 0; from < s.n; from++ {
		for _, e := range s.d.Succs[from] {
			s.preds[e.To] = append(s.preds[e.To], pedge{int32(from), int32(e.MinGap)})
			if e.MinGap > s.maxGap {
				s.maxGap = e.MinGap
			}
		}
	}
	// Bound height: makespan = last issue cycle + 1, and the terminator
	// sits in the final word, so every node i gives makespan >= issue(i) +
	// hend(i) with hend(i) = 1 + the longest gap path out of i. This
	// differs from d.Height, whose base case is the node's own latency: a
	// dangling load's latency never extends the block (nothing waits on
	// it), so using d.Height here would over-prune.
	s.hend = make([]int, s.n)
	for i := s.n - 1; i >= 0; i-- {
		h := 1
		for _, e := range s.d.Succs[i] {
			if v := e.MinGap + s.hend[e.To]; v > h {
				h = v
			}
		}
		s.hend[i] = h
	}
	if s.im.Sequential {
		s.memCap, s.aluCap, s.totCap = 1, 1, 1
	} else {
		s.memCap, s.aluCap, s.totCap = s.im.Mem, s.im.ALU, s.im.Total()
	}
	// The dominance memo packs per-node readiness deltas into 2 bits each:
	// only safe when every delta fits (gaps <= 3) and 32 nodes fit the
	// signature word. Otherwise the search runs un-memoized (still exact,
	// just slower).
	s.canMemo = s.n <= 32 && s.maxGap <= 3
	if s.canMemo {
		s.memo = make(map[memoKey]int32, 1024)
	}
}

// rootBound is the lower bound at the empty schedule: the dependence
// critical path (the tallest node height) and the slot-count resource
// bounds, whichever is larger.
func (s *searcher) rootBound() int {
	lb := 0
	for i := 0; i < s.n; i++ {
		if s.hend[i] > lb {
			lb = s.hend[i]
		}
	}
	if rb := s.resourceWords(0); rb > lb {
		lb = rb
	}
	return lb
}

// resourceWords is the minimum number of words the nodes outside mask need
// under the per-word slot caps.
func (s *searcher) resourceWords(mask uint64) int {
	mem, alu := 0, 0
	for i := 0; i < s.n; i++ {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		if s.isMem[i] {
			mem++
		} else {
			alu++
		}
	}
	w := (mem + s.memCap - 1) / s.memCap
	if v := (alu + s.aluCap - 1) / s.aluCap; v > w {
		w = v
	}
	if v := (mem + alu + s.totCap - 1) / s.totCap; v > w {
		w = v
	}
	return w
}

// dfs expands the word-boundary state (cycle t, scheduled set mask,
// readiness profile est): it advances t past idle cycles, prunes by bound
// and dominance, then branches over the words that can issue at t.
// est[i] is the earliest cycle node i may issue, accumulated from its
// already-scheduled predecessors.
func (s *searcher) dfs(t int, mask uint64, est *[64]int32) {
	if s.exhausted {
		return
	}
	s.expanded++
	if s.expanded > s.opts.MaxExpanded {
		s.exhausted = true
		return
	}
	if !s.deadline.IsZero() && s.expanded%2048 == 0 && time.Now().After(s.deadline) {
		s.exhausted = true
		return
	}

	// Advance t to the first cycle where some ready node may issue: a
	// cycle where nothing can issue contributes nothing (any node moved
	// into it could equally issue later), so idle cycles are skipped, and
	// schedules are compressed anyway.
	next := -1
	anyNow := false
	for i := 0; i < s.n; i++ {
		bit := uint64(1) << uint(i)
		if mask&bit != 0 {
			continue
		}
		ready := true
		for _, p := range s.preds[i] {
			if mask&(uint64(1)<<uint(p.from)) == 0 {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		e := int(est[i])
		if e <= t {
			anyNow = true
			break
		}
		if next < 0 || e < next {
			next = e
		}
	}
	if !anyNow {
		if next < 0 {
			return // no ready node: impossible in a DAG unless mask is full
		}
		t = next
	}

	// Bound: every unscheduled node still needs est (clamped to t) plus
	// its critical-path height; the rest need at least resourceWords more
	// words starting at t.
	lb := t + s.resourceWords(mask)
	for i := 0; i < s.n; i++ {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		e := int(est[i])
		if e < t {
			e = t
		}
		if v := e + s.hend[i]; v > lb {
			lb = v
		}
	}
	if lb >= s.bestLen {
		return
	}

	// Dominance: a previously expanded state with the same scheduled set
	// and the same readiness deltas at an earlier-or-equal cycle can reach
	// every schedule this state can, shifted no later.
	if s.canMemo {
		var sig uint64
		ok := true
		for i := 0; i < s.n && ok; i++ {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			delta := int(est[i]) - t
			if delta < 0 {
				delta = 0
			}
			if delta > 3 {
				ok = false // unrepresentable: skip the memo for this state
				break
			}
			sig |= uint64(delta) << (2 * uint(i))
		}
		if ok {
			k := memoKey{mask, sig}
			if prev, seen := s.memo[k]; seen && int(prev) <= t {
				return
			}
			if len(s.memo) < 1<<21 {
				s.memo[k] = int32(t)
			}
		}
	}

	s.buildWord(t, mask, est, 0, 0, 0, s.memCap, s.aluCap, s.totCap, nil)
}

// buildWord branches over the contents of the word issuing at cycle t,
// considering unscheduled nodes in index order from ci. wordMask and word
// hold the nodes chosen so far (index order, so words come out sorted);
// excluded holds nodes that were eligible and fit but were branched out —
// if any of them still fits when the word closes, the word is not maximal
// and the branch is dominated (moving such a node into the free slot never
// lengthens a schedule).
func (s *searcher) buildWord(t int, mask uint64, est *[64]int32, ci int, wordMask, excluded uint64, memSlots, aluSlots, totSlots int, word []int) {
	if s.exhausted {
		return
	}
	for ; ci < s.n; ci++ {
		bit := uint64(1) << uint(ci)
		if mask&bit != 0 {
			continue
		}
		// Eligibility: every predecessor scheduled in an earlier word (its
		// gap folded into est) or already in this word with gap 0; and the
		// readiness profile allows issue at t.
		elig := int(est[ci]) <= t
		if elig {
			for _, p := range s.preds[ci] {
				pb := uint64(1) << uint(p.from)
				if mask&pb != 0 {
					continue
				}
				if wordMask&pb != 0 && p.gap == 0 {
					continue
				}
				elig = false
				break
			}
		}
		// The terminator must land in the final word: only eligible once
		// every body node is scheduled or beside it in this word.
		if elig && ci == s.n-1 && mask|wordMask|bit != s.full {
			elig = false
		}
		fits := totSlots > 0
		if fits {
			if s.isMem[ci] {
				fits = memSlots > 0
			} else {
				fits = aluSlots > 0
			}
		}
		if !elig || !fits {
			continue
		}
		// Branch: include ci, then exclude it. Include updates successor
		// readiness; exclude marks the word possibly non-maximal.
		var nest [64]int32
		nest = *est
		for _, e := range s.d.Succs[ci] {
			if v := int32(t + e.MinGap); v > nest[e.To] {
				nest[e.To] = v
			}
		}
		nm, na, nt := memSlots, aluSlots, totSlots-1
		if s.isMem[ci] {
			nm--
		} else {
			na--
		}
		s.buildWord(t, mask, &nest, ci+1, wordMask|bit, excluded, nm, na, nt, append(word[:len(word):len(word)], ci))
		if s.exhausted {
			return
		}
		excluded |= bit
	}

	// Word complete. Maximality dominance: if an excluded node still fits
	// a free slot, this word is a strict subset of a no-worse one.
	if excluded != 0 && totSlots > 0 {
		for i := 0; i < s.n; i++ {
			if excluded&(1<<uint(i)) == 0 {
				continue
			}
			if s.isMem[i] {
				if memSlots > 0 {
					return
				}
			} else if aluSlots > 0 {
				return
			}
		}
	}
	if wordMask == 0 {
		return // empty word: dominated (or nothing was eligible)
	}

	if mask|wordMask == s.full {
		// Complete schedule. Its planned length may compress below t+1
		// (the interlock re-times the packed words), so measure it the way
		// the gap is measured.
		cand := make(sched.Schedule, 0, len(s.cur)+1)
		for _, w := range s.cur {
			cand = append(cand, append(sched.Word(nil), w...))
		}
		cand = append(cand, append(sched.Word(nil), word...))
		if planned := sched.PlannedCycles(s.b, s.im, s.hitLat, cand); planned < s.bestLen {
			s.bestLen = planned
			s.best = cand
		}
		return
	}

	s.cur = append(s.cur, word)
	s.dfs(t+1, mask|wordMask, est)
	s.cur = s.cur[:len(s.cur)-1]
}
