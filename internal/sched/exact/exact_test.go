package exact

import (
	"math/rand"
	"testing"

	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
	"fgpsim/internal/sched"
)

// genBlock builds a random well-formed block (mirrors the sched package's
// property-test generator: ALU ops, loads, stores, asserts, syscalls).
func genBlock(rng *rand.Rand, n int) *ir.Block {
	regs := []ir.Reg{5, 6, 7, 8, 9, 10}
	pick := func() ir.Reg { return regs[rng.Intn(len(regs))] }
	var body []ir.Node
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0, 1:
			body = append(body, ir.Node{Op: ir.Ld, Dst: pick(), A: pick(), Imm: int64(rng.Intn(64) * 4)})
		case 2:
			body = append(body, ir.Node{Op: ir.St, A: pick(), B: pick(), Imm: int64(rng.Intn(64) * 4)})
		case 3:
			body = append(body, ir.Node{Op: ir.Sys, Dst: pick(), A: pick(), B: ir.NoReg, Imm: ir.SysPutc})
		case 4:
			body = append(body, ir.Node{Op: ir.Assert, A: pick(), Expect: true, Target: 0})
		case 5:
			body = append(body, ir.Node{Op: ir.Const, Dst: pick(), Imm: int64(rng.Intn(100))})
		default:
			ops := []ir.Op{ir.Add, ir.Sub, ir.Xor, ir.Mul, ir.Lt}
			body = append(body, ir.Node{Op: ops[rng.Intn(len(ops))], Dst: pick(), A: pick(), B: pick()})
		}
	}
	return &ir.Block{Body: body, Term: ir.Node{Op: ir.Br, A: pick(), Target: 0}, Fall: 0}
}

// bruteMin exhaustively enumerates every legal compressed schedule of a
// tiny block — all partitions of the nodes into an ordered word sequence
// that Validate accepts — and returns the minimum planned length. It is an
// oracle fully independent of the branch-and-bound search: no bounds, no
// dominance, no timing model beyond PlannedCycles itself. Practical only
// for a handful of nodes.
func bruteMin(t *testing.T, b *ir.Block, im machine.IssueModel, hitLat int) int {
	t.Helper()
	n := len(b.Body) + 1
	if n > 8 {
		t.Fatalf("bruteMin: block too large (%d nodes)", n)
	}
	best := 1 << 30
	var words sched.Schedule
	var rec func(remaining []int)
	rec = func(remaining []int) {
		if len(remaining) == 0 {
			s := make(sched.Schedule, len(words))
			copy(s, words)
			if sched.Validate(b, im, hitLat, s) == nil {
				if p := sched.PlannedCycles(b, im, hitLat, s); p < best {
					best = p
				}
			}
			return
		}
		// Choose any non-empty subset of the remaining nodes as the next
		// word; legality (slots, ordering, terminator) is left entirely to
		// Validate at the leaf.
		for sub := 1; sub < 1<<uint(len(remaining)); sub++ {
			var w sched.Word
			var rest []int
			for k, node := range remaining {
				if sub&(1<<uint(k)) != 0 {
					w = append(w, node)
				} else {
					rest = append(rest, node)
				}
			}
			words = append(words, w)
			rec(rest)
			words = words[:len(words)-1]
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	rec(all)
	if best == 1<<30 {
		t.Fatal("bruteMin: no legal schedule found")
	}
	return best
}

// TestExactMatchesBruteForce: on exhaustively enumerable blocks, the
// branch-and-bound optimum equals the true optimum. This is the search's
// ground-truth check — any unsound prune (bound, dominance, maximality)
// shows up here as exact > brute.
func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1804))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		b := genBlock(rng, 1+rng.Intn(6))
		im := machine.IssueModels[rng.Intn(len(machine.IssueModels))]
		hitLat := 1 + rng.Intn(3)
		r := Schedule(b, im, hitLat, DefaultOptions())
		if r.Status != Proved {
			t.Fatalf("trial %d: tiny block not proved (status %v, expanded %d)", trial, r.Status, r.Expanded)
		}
		if err := sched.Validate(b, im, hitLat, r.Schedule); err != nil {
			t.Fatalf("trial %d: exact schedule illegal: %v", trial, err)
		}
		want := bruteMin(t, b, im, hitLat)
		if r.Length != want {
			t.Fatalf("trial %d (%s, hitLat %d): exact=%d brute=%d\nschedule: %v",
				trial, im, hitLat, r.Length, want, r.Schedule)
		}
	}
}

// TestExactNeverWorseThanList: across a broad seeded sweep, the exact
// result is legal, no longer than the list schedule, and its claimed
// Length matches its schedule's measured planned cycles.
func TestExactNeverWorseThanList(t *testing.T) {
	rng := rand.New(rand.NewSource(9241))
	trials := 400
	if testing.Short() {
		trials = 80
	}
	improved := 0
	for trial := 0; trial < trials; trial++ {
		b := genBlock(rng, 1+rng.Intn(22))
		im := machine.IssueModels[rng.Intn(len(machine.IssueModels))]
		hitLat := 1 + rng.Intn(3)
		list := sched.Block(b, im, hitLat)
		listLen := sched.PlannedCycles(b, im, hitLat, list)
		r := Schedule(b, im, hitLat, DefaultOptions())
		if err := sched.Validate(b, im, hitLat, r.Schedule); err != nil {
			t.Fatalf("trial %d: exact schedule illegal: %v", trial, err)
		}
		if got := sched.PlannedCycles(b, im, hitLat, r.Schedule); got != r.Length {
			t.Fatalf("trial %d: Length %d but schedule measures %d", trial, r.Length, got)
		}
		if r.Length > listLen {
			t.Fatalf("trial %d: exact %d > list %d", trial, r.Length, listLen)
		}
		if r.LowerBound > r.Length {
			t.Fatalf("trial %d: lower bound %d above length %d", trial, r.LowerBound, r.Length)
		}
		if r.Status == Proved && r.LowerBound != r.Length {
			t.Fatalf("trial %d: proved but bound %d != length %d", trial, r.LowerBound, r.Length)
		}
		if r.Length < listLen {
			improved++
		}
	}
	// The oracle is only interesting if the list scheduler is measurably
	// suboptimal somewhere; this sweep is seeded, so the count is stable.
	if !testing.Short() && improved == 0 {
		t.Fatal("exact never beat the list scheduler — oracle has no teeth (or search is broken)")
	}
}

// TestExactDeterministic: the same block scheduled twice yields the same
// words and counters — required for reproducible images and snapshots.
func TestExactDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 60; trial++ {
		b := genBlock(rng, 1+rng.Intn(24))
		im := machine.IssueModels[rng.Intn(len(machine.IssueModels))]
		r1 := Schedule(b, im, 2, DefaultOptions())
		r2 := Schedule(b, im, 2, DefaultOptions())
		if r1.Length != r2.Length || r1.Status != r2.Status || r1.Expanded != r2.Expanded {
			t.Fatalf("trial %d: nondeterministic result: (%d,%v,%d) vs (%d,%v,%d)",
				trial, r1.Length, r1.Status, r1.Expanded, r2.Length, r2.Status, r2.Expanded)
		}
		if len(r1.Schedule) != len(r2.Schedule) {
			t.Fatalf("trial %d: schedules differ in length", trial)
		}
		for w := range r1.Schedule {
			if len(r1.Schedule[w]) != len(r2.Schedule[w]) {
				t.Fatalf("trial %d: word %d differs", trial, w)
			}
			for k := range r1.Schedule[w] {
				if r1.Schedule[w][k] != r2.Schedule[w][k] {
					t.Fatalf("trial %d: word %d differs: %v vs %v", trial, w, r1.Schedule[w], r2.Schedule[w])
				}
			}
		}
	}
}

// TestBudgetExpiryIsBoundOnly: a starved expansion budget must downgrade
// the claim to BoundOnly (or prove via the root bound), never return an
// illegal or worse-than-list schedule, and never falsely claim Proved.
func TestBudgetExpiryIsBoundOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	sawBoundOnly := false
	for trial := 0; trial < 200; trial++ {
		b := genBlock(rng, 16+rng.Intn(10))
		im := machine.IssueModels[rng.Intn(len(machine.IssueModels))]
		o := Options{MaxNodes: 30, MaxExpanded: 3}
		r := Schedule(b, im, 2, o)
		if err := sched.Validate(b, im, 2, r.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		list := sched.PlannedCycles(b, im, 2, sched.Block(b, im, 2))
		if r.Length > list {
			t.Fatalf("trial %d: budgeted exact %d worse than list %d", trial, r.Length, list)
		}
		switch r.Status {
		case BoundOnly:
			sawBoundOnly = true
			if r.LowerBound >= r.Length {
				t.Fatalf("trial %d: bound-only but bound %d >= length %d (should have proved)",
					trial, r.LowerBound, r.Length)
			}
		case Proved:
			if r.LowerBound != r.Length {
				t.Fatalf("trial %d: proved with gap", trial)
			}
		}
	}
	if !sawBoundOnly {
		t.Fatal("no trial exhausted a 3-expansion budget — test has lost its subject")
	}
}

// TestTooLargeFallsBackToList: past MaxNodes the result is the list
// schedule with an honest status.
func TestTooLargeFallsBackToList(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		b := genBlock(rng, 40)
		im := machine.IssueModels[7]
		r := Schedule(b, im, 2, Options{MaxNodes: 10, MaxExpanded: 1000})
		if r.Status == BoundOnly {
			t.Fatalf("trial %d: oversize block entered search", trial)
		}
		if r.Status == TooLarge {
			list := sched.Block(b, im, 2)
			if len(r.Schedule) != len(list) {
				t.Fatalf("trial %d: TooLarge result is not the list schedule", trial)
			}
		}
	}
}

// TestKnownImprovement pins one concrete block where greedy list
// scheduling is provably suboptimal, so the gap machinery demonstrably
// measures something real. On a 1M1A model with hit latency 3, greedy
// height order issues the two loads back to back and the dependent adds
// serialize behind them; the optimum interleaves differently.
func TestKnownImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(60601))
	im2, _ := machine.IssueModelByID(2)
	for trial := 0; trial < 4000; trial++ {
		b := genBlock(rng, 6+rng.Intn(8))
		list := sched.PlannedCycles(b, im2, 3, sched.Block(b, im2, 3))
		r := Schedule(b, im2, 3, DefaultOptions())
		if r.Status == Proved && r.Length < list {
			return // found a pinned, proven improvement
		}
	}
	t.Fatal("no block in 4000 seeded trials where exact beats list on 1M1A/hitLat=3")
}
