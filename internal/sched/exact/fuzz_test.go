package exact

import (
	"fmt"
	"testing"

	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
	"fgpsim/internal/sched"
)

// blockFromBytes deterministically decodes a fuzz payload into a small
// well-formed block plus an issue model and hit latency. Byte 0 picks the
// issue model, byte 1 the hit latency; every following byte decodes one
// body node (op from the low bits, registers from the high bits), up to 18
// nodes so the search always terminates quickly even at full budget.
func blockFromBytes(data []byte) (*ir.Block, machine.IssueModel, int) {
	if len(data) < 2 {
		return nil, machine.IssueModel{}, 0
	}
	im := machine.IssueModels[int(data[0])%len(machine.IssueModels)]
	hitLat := 1 + int(data[1])%3
	regs := []ir.Reg{5, 6, 7, 8, 9, 10}
	reg := func(b byte, shift uint) ir.Reg { return regs[int(b>>shift)%len(regs)] }
	var body []ir.Node
	for _, c := range data[2:] {
		if len(body) >= 18 {
			break
		}
		switch c % 8 {
		case 0:
			body = append(body, ir.Node{Op: ir.Ld, Dst: reg(c, 3), A: reg(c, 5), Imm: int64(c) * 4})
		case 1:
			body = append(body, ir.Node{Op: ir.St, A: reg(c, 3), B: reg(c, 5), Imm: int64(c) * 4})
		case 2:
			body = append(body, ir.Node{Op: ir.Const, Dst: reg(c, 3), Imm: int64(c)})
		case 3:
			body = append(body, ir.Node{Op: ir.Sys, Dst: reg(c, 3), A: reg(c, 5), B: ir.NoReg, Imm: ir.SysPutc})
		case 4:
			body = append(body, ir.Node{Op: ir.Assert, A: reg(c, 3), Expect: true, Target: 0})
		default:
			ops := []ir.Op{ir.Add, ir.Sub, ir.Xor, ir.Mul, ir.Lt}
			body = append(body, ir.Node{Op: ops[int(c>>3)%len(ops)], Dst: reg(c, 3), A: reg(c, 5), B: reg(c, 6)})
		}
	}
	return &ir.Block{Body: body, Term: ir.Node{Op: ir.Br, A: 5, Target: 0}, Fall: 0}, im, hitLat
}

// FuzzExactSchedule fuzzes the exact scheduler against the list scheduler
// and the legality validator: for every decoded block, both schedules must
// be legal, the exact planned length must never exceed the list planned
// length, the proven lower bound must hold, and a second run must
// reproduce the first bit for bit (the scheduler feeds image fingerprints
// and snapshots, so nondeterminism is a correctness bug, not a nuisance).
func FuzzExactSchedule(f *testing.F) {
	f.Add([]byte("\x07\x01\x00\x08\x10\x18\x20\x28\x05\x0d"))
	f.Add([]byte("\x01\x02\x00\x00\x00\x01\x01\x02\x03\x04\x05\x06\x07"))
	f.Add([]byte("\x04\x03LdStConstSysAssert-mix"))
	f.Add([]byte("\x02\x02\x00\x02\x05\x0a\x12\x1a\x22\x00\x01\x09\x11\x19"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, im, hitLat := blockFromBytes(data)
		if b == nil {
			return
		}
		list := sched.Block(b, im, hitLat)
		if err := sched.Validate(b, im, hitLat, list); err != nil {
			t.Fatalf("list schedule illegal: %v", err)
		}
		listLen := sched.PlannedCycles(b, im, hitLat, list)

		r1 := Schedule(b, im, hitLat, DefaultOptions())
		if err := sched.Validate(b, im, hitLat, r1.Schedule); err != nil {
			t.Fatalf("exact schedule illegal: %v", err)
		}
		if r1.Length != sched.PlannedCycles(b, im, hitLat, r1.Schedule) {
			t.Fatalf("Length %d does not measure its own schedule", r1.Length)
		}
		if r1.Length > listLen {
			t.Fatalf("exact %d > list %d", r1.Length, listLen)
		}
		if r1.LowerBound > r1.Length {
			t.Fatalf("lower bound %d above length %d", r1.LowerBound, r1.Length)
		}
		if r1.Status == Proved && r1.LowerBound != r1.Length {
			t.Fatalf("proved with bound gap: %d != %d", r1.LowerBound, r1.Length)
		}

		r2 := Schedule(b, im, hitLat, DefaultOptions())
		if fmt.Sprint(r1.Schedule) != fmt.Sprint(r2.Schedule) ||
			r1.Length != r2.Length || r1.Status != r2.Status || r1.Expanded != r2.Expanded {
			t.Fatalf("nondeterministic: run1=(%v,%d,%v,%d) run2=(%v,%d,%v,%d)",
				r1.Schedule, r1.Length, r1.Status, r1.Expanded,
				r2.Schedule, r2.Length, r2.Status, r2.Expanded)
		}
	})
}
