package sched

import (
	"fgpsim/internal/ir"
)

// Edge is one scheduling constraint of a block's dependence DAG:
// word(To) >= word(from) + MinGap, where "word" counts planned issue
// cycles. A MinGap of zero permits the same word (index order inside a
// word supplies the remaining ordering).
type Edge struct {
	To     int
	MinGap int
}

// DAG is the dependence graph of one basic block under the compile-time
// legality rules (package comment). It is shared by the greedy list
// scheduler, the exact branch-and-bound scheduler, and the legality
// validator, so all three agree on what "legal" means by construction.
type DAG struct {
	// N is the node count: len(b.Body) body nodes plus the terminator,
	// which is node N-1.
	N int
	// Succs holds the out-edges of every node, in insertion order.
	Succs [][]Edge
	// NPreds counts incoming edges per node.
	NPreds []int
	// Latency is each node's result latency under the compile-time
	// assumption: hitLatency for loads, 1 for everything else.
	Latency []int
	// Height is the critical-path height of each node: the minimum number
	// of planned cycles from the node's own issue to the end of the block,
	// following the longest gap-weighted path. Height[N-1] is the
	// terminator's own latency.
	Height []int
}

// NodeAt returns node i of the block, where index len(b.Body) is the
// terminator — the numbering every Schedule uses.
func NodeAt(b *ir.Block, i int) *ir.Node {
	if i == len(b.Body) {
		return &b.Term
	}
	return &b.Body[i]
}

// BuildDAG constructs the dependence DAG of a block for the given
// compile-time hit latency:
//
//   - RAW edges carry the producer's assumed latency;
//   - WAW and WAR edges carry gap 0 (later word, or same word where index
//     order decides);
//   - a load may not issue before or beside an earlier store (gap 1);
//     stores keep program order among themselves (gap 0); loads reorder
//     freely among loads;
//   - system calls stay ordered among themselves and never move above an
//     assert; asserts keep program order.
func BuildDAG(b *ir.Block, hitLatency int) *DAG {
	n := len(b.Body) + 1 // +1: terminator
	d := &DAG{
		N:       n,
		Succs:   make([][]Edge, n),
		NPreds:  make([]int, n),
		Latency: make([]int, n),
	}
	addEdge := func(from, to, gap int) {
		d.Succs[from] = append(d.Succs[from], Edge{to, gap})
		d.NPreds[to]++
	}
	for i := 0; i < n; i++ {
		if NodeAt(b, i).Op.IsLoad() {
			d.Latency[i] = hitLatency
		} else {
			d.Latency[i] = 1
		}
	}

	// Register dependences.
	lastDef := make(map[ir.Reg]int)
	lastUses := make(map[ir.Reg][]int)
	// Memory and ordering state.
	lastStore := -1
	var loadsSinceStore []int
	lastSys := -1
	var asserts []int

	for i := 0; i < n; i++ {
		nd := NodeAt(b, i)
		for _, u := range []ir.Reg{nd.A, nd.B} {
			if u == ir.NoReg {
				continue
			}
			if def, ok := lastDef[u]; ok {
				addEdge(def, i, d.Latency[def]) // RAW
			}
			lastUses[u] = append(lastUses[u], i)
		}
		if nd.Op.HasDst() {
			if def, ok := lastDef[nd.Dst]; ok {
				addEdge(def, i, 0) // WAW: later word or same word, order wins
			}
			for _, u := range lastUses[nd.Dst] {
				if u != i {
					addEdge(u, i, 0) // WAR
				}
			}
			lastDef[nd.Dst] = i
			lastUses[nd.Dst] = nil
		}
		switch {
		case nd.Op.IsLoad():
			if lastStore >= 0 {
				addEdge(lastStore, i, 1) // possible match: strictly after
			}
			loadsSinceStore = append(loadsSinceStore, i)
		case nd.Op.IsStore():
			if lastStore >= 0 {
				addEdge(lastStore, i, 0)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i, 0) // memory WAR
			}
			loadsSinceStore = nil
			lastStore = i
		case nd.Op == ir.Sys:
			if lastSys >= 0 {
				addEdge(lastSys, i, 0)
			}
			for _, a := range asserts {
				addEdge(a, i, 0)
			}
			lastSys = i
		case nd.Op == ir.Assert:
			asserts = append(asserts, i)
			if len(asserts) > 1 {
				addEdge(asserts[len(asserts)-2], i, 0)
			}
		}
	}

	// Critical-path heights.
	d.Height = make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := d.Latency[i]
		for _, e := range d.Succs[i] {
			if v := e.MinGap + d.Height[e.To]; v > h {
				h = v
			}
		}
		d.Height[i] = h
	}
	return d
}
