package sched

import (
	"fmt"

	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
)

// InvalidScheduleError reports the first legality violation found in a
// schedule. Word and Node are -1 when the violation is not tied to one.
type InvalidScheduleError struct {
	Word   int // word index, or -1
	Node   int // node index (len(Body) = terminator), or -1
	Reason string
}

func (e *InvalidScheduleError) Error() string {
	switch {
	case e.Word >= 0 && e.Node >= 0:
		return fmt.Sprintf("sched: invalid schedule: word %d, node %d: %s", e.Word, e.Node, e.Reason)
	case e.Node >= 0:
		return fmt.Sprintf("sched: invalid schedule: node %d: %s", e.Node, e.Reason)
	default:
		return fmt.Sprintf("sched: invalid schedule: %s", e.Reason)
	}
}

// Validate checks a schedule against the complete legality contract the
// static engine and the paper's compile-time rules impose. It is the single
// definition of "legal" shared by the list scheduler's tests, the exact
// scheduler, and the difftest schedule oracle. A nil return means s is a
// legal packing of b for the issue model.
//
// The rules, in check order:
//
//   - every node (body plus terminator) appears exactly once, in range;
//   - nodes within a word are in increasing index (program) order — the
//     engine executes them that way;
//   - no word exceeds the issue model's memory/ALU slots (one node total on
//     the sequential model);
//   - the terminator sits in the final word (index order puts it last);
//   - RAW: a consumer sits in a strictly later word than its producer.
//     Schedules are compressed — empty words are dropped — so word distance
//     is not cycle distance; the engine's interlock supplies the latency,
//     and hitLatency therefore does not change what is legal. It is part of
//     the signature because it selects the DAG the checks walk, keeping
//     Validate in lockstep with Block and the exact scheduler;
//   - WAW/WAR: a later writer never sits in an earlier word than the
//     overwritten def or its outstanding reads (same word is legal: index
//     order wins);
//   - a load sits strictly after every earlier store; stores keep program
//     order among themselves; system calls keep program order and never
//     move above an assert; asserts keep program order.
func Validate(b *ir.Block, im machine.IssueModel, hitLatency int, s Schedule) error {
	n := len(b.Body) + 1
	word := make([]int, n)
	for i := range word {
		word[i] = -1
	}
	for w, ws := range s {
		mem, alu := 0, 0
		prev := -1
		for _, i := range ws {
			if i < 0 || i >= n {
				return &InvalidScheduleError{Word: w, Node: i, Reason: "node index out of range"}
			}
			if word[i] != -1 {
				return &InvalidScheduleError{Word: w, Node: i, Reason: "node scheduled twice"}
			}
			if i < prev {
				return &InvalidScheduleError{Word: w, Node: i, Reason: "word not in program (index) order"}
			}
			prev = i
			word[i] = w
			if NodeAt(b, i).Op.IsMem() {
				mem++
			} else {
				alu++
			}
		}
		if im.Sequential {
			if mem+alu > 1 {
				return &InvalidScheduleError{Word: w, Node: -1,
					Reason: fmt.Sprintf("%d nodes in one word on the sequential model", mem+alu)}
			}
		} else if mem > im.Mem || alu > im.ALU {
			return &InvalidScheduleError{Word: w, Node: -1,
				Reason: fmt.Sprintf("word has %dM%dA, limit %dM%dA", mem, alu, im.Mem, im.ALU)}
		}
	}
	for i := 0; i < n; i++ {
		if word[i] == -1 {
			return &InvalidScheduleError{Word: -1, Node: i, Reason: "node not scheduled"}
		}
	}
	if word[n-1] != len(s)-1 {
		return &InvalidScheduleError{Word: word[n-1], Node: n - 1, Reason: "terminator not in the final word"}
	}

	// Dependence checks walk the same DAG the schedulers plan against.
	d := BuildDAG(b, hitLatency)
	for from := 0; from < n; from++ {
		for _, e := range d.Succs[from] {
			if e.MinGap > 0 {
				// RAW and store->load edges demand a strictly later word.
				if word[e.To] <= word[from] {
					return &InvalidScheduleError{Word: word[e.To], Node: e.To,
						Reason: fmt.Sprintf("node must sit in a later word than node %d (word %d)", from, word[from])}
				}
			} else if word[e.To] < word[from] {
				// Order edges allow the same word: index order decides there.
				return &InvalidScheduleError{Word: word[e.To], Node: e.To,
					Reason: fmt.Sprintf("node reordered before node %d (word %d)", from, word[from])}
			}
		}
	}
	return nil
}

// PlannedCycles is the planned length of a schedule in issue cycles under
// the compile-time timing model: words issue in order, one per cycle at
// best, each stalling until every operand is ready; ALU results are ready
// the next cycle and loads after hitLatency cycles (the all-hits
// assumption the loader schedules for). This mirrors the static engine's
// interlock exactly, so for a block whose loads all hit and whose inputs
// are ready at entry, PlannedCycles is the cycle count the engine charges.
//
// PlannedCycles is the metric the optimality gap is measured in: empty
// words are dropped from schedules, so len(s) undercounts interlock
// stalls, while PlannedCycles ranks two legal schedules the way the
// machine would.
func PlannedCycles(b *ir.Block, im machine.IssueModel, hitLatency int, s Schedule) int {
	var readyAt [ir.NumRegs]int
	issue := -1
	for _, w := range s {
		ready := issue + 1
		for _, i := range w {
			nd := NodeAt(b, i)
			for _, r := range []ir.Reg{nd.A, nd.B} {
				if r != ir.NoReg && readyAt[r] > ready {
					ready = readyAt[r]
				}
			}
		}
		issue = ready
		for _, i := range w {
			nd := NodeAt(b, i)
			if !nd.Op.HasDst() {
				continue
			}
			lat := 1
			if nd.Op.IsLoad() {
				lat = hitLatency
			}
			if t := issue + lat; t > readyAt[nd.Dst] {
				readyAt[nd.Dst] = t
			}
		}
	}
	return issue + 1
}
