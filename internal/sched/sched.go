// Package sched is the translating loader's static scheduler: it packs the
// nodes of one basic block into multinodewords for a given issue model,
// assuming cache-hit memory latencies and making the worst-case (compile
// time) assumption about memory address matches, exactly as the paper
// describes for statically scheduled machines:
//
//   - a load may not be scheduled before or beside an earlier store (the
//     compiler cannot prove the addresses differ), but loads reorder freely
//     among loads;
//   - stores stay in program order relative to each other (same word is
//     allowed; words execute their nodes in program order);
//   - register flow (RAW) edges carry the producer's assumed latency;
//     anti/output (WAR/WAW) edges only constrain word order;
//   - system calls stay ordered among themselves and never move above an
//     assert (a discarded block must not have performed I/O);
//   - the terminator goes in the final word.
//
// The run-time engine issues one word per cycle, stalling whenever a word's
// operands are not ready (the hardware interlock), so a schedule is a plan,
// not a timing promise.
package sched

import (
	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
)

// Word is one multinodeword: indices into the block's node list, where
// index len(Body) denotes the terminator. Nodes within a word execute in
// program (index) order.
type Word []int

// Schedule is the word packing of one block.
type Schedule []Word

// Block schedules a basic block for the given issue model and hit latency.
// The dependence DAG (BuildDAG) defines legality; the greedy list policy
// picks, each word, the ready nodes of greatest critical-path height.
func Block(b *ir.Block, im machine.IssueModel, hitLatency int) Schedule {
	d := BuildDAG(b, hitLatency)
	n := d.N
	nodeAt := func(i int) *ir.Node { return NodeAt(b, i) }
	succs, height := d.Succs, d.Height

	// List scheduling.
	earliest := make([]int, n)
	scheduled := make([]bool, n)
	pending := make([]int, n)
	copy(pending, d.NPreds)
	term := n - 1
	remaining := n - 1 // body nodes left (terminator placed last)

	var words Schedule
	word := 0
	for remaining > 0 {
		memSlots, aluSlots, totalSlots := im.Mem, im.ALU, im.Total()
		var w Word
		for {
			best := -1
			for i := 0; i < term; i++ {
				if scheduled[i] || pending[i] != 0 || earliest[i] > word {
					continue
				}
				nd := nodeAt(i)
				if nd.Op.IsMem() {
					if memSlots == 0 {
						continue
					}
				} else if aluSlots == 0 {
					continue
				}
				if best < 0 || height[i] > height[best] || (height[i] == height[best] && i < best) {
					best = i
				}
			}
			if best < 0 || totalSlots == 0 {
				break
			}
			nd := nodeAt(best)
			if nd.Op.IsMem() {
				memSlots--
			} else {
				aluSlots--
			}
			totalSlots--
			w = append(w, best)
			scheduled[best] = true
			remaining--
			for _, e := range succs[best] {
				pending[e.To]--
				if v := word + e.MinGap; v > earliest[e.To] {
					earliest[e.To] = v
				}
			}
		}
		if len(w) > 0 {
			sortWord(w)
			words = append(words, w)
		}
		word++
	}

	// Place the terminator in the final word when an ALU slot remains;
	// otherwise open a new word. The engine's interlock enforces operand
	// readiness at issue, so packing is a plan, not a timing guarantee.
	lastWord := len(words) - 1
	if lastWord >= 0 && earliest[term] <= lastWord && wordHasALUSlot(words[lastWord], b, im) {
		words[lastWord] = append(words[lastWord], term)
	} else {
		words = append(words, Word{term})
	}
	return words
}

// sortWord orders a word's nodes by original index so the engine executes
// them in program order.
func sortWord(w Word) {
	for i := 1; i < len(w); i++ {
		for j := i; j > 0 && w[j] < w[j-1]; j-- {
			w[j], w[j-1] = w[j-1], w[j]
		}
	}
}

func wordHasALUSlot(w Word, b *ir.Block, im machine.IssueModel) bool {
	if im.Sequential {
		return len(w) == 0
	}
	alu := 0
	for _, i := range w {
		if i < len(b.Body) && b.Body[i].Op.IsMem() {
			continue
		}
		alu++
	}
	return alu < im.ALU
}

// Length returns the schedule length in words.
func (s Schedule) Length() int { return len(s) }
