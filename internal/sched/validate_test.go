package sched

import (
	"math/rand"
	"testing"

	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
)

// cloneSchedule deep-copies a schedule so mutations never alias the
// original words.
func cloneSchedule(s Schedule) Schedule {
	c := make(Schedule, len(s))
	for i, w := range s {
		c[i] = append(Word(nil), w...)
	}
	return c
}

// TestValidateAcceptsListSchedules is the accept half of the validator's
// property test: every schedule the list scheduler emits, over seeded
// random DAG blocks crossed with all issue models and hit latencies, must
// validate cleanly — Block and Validate share one DAG, so a rejection here
// means the legality contract itself split.
func TestValidateAcceptsListSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	for trial := 0; trial < 300; trial++ {
		b := randomBlock(rng, 1+rng.Intn(40))
		im := machine.IssueModels[rng.Intn(len(machine.IssueModels))]
		hitLat := 1 + rng.Intn(3)
		s := Block(b, im, hitLat)
		if err := Validate(b, im, hitLat, s); err != nil {
			t.Fatalf("trial %d (%s, hitLat %d): list schedule rejected: %v\nschedule: %v",
				trial, im, hitLat, err, s)
		}
		if got := PlannedCycles(b, im, hitLat, s); got < len(s) {
			t.Fatalf("trial %d: planned cycles %d < %d words", trial, got, len(s))
		}
	}
}

// mutation is one seeded schedule corruption; apply returns false when the
// schedule is too small for this mutation to produce a different schedule.
type mutation struct {
	name  string
	apply func(rng *rand.Rand, b *ir.Block, s Schedule) (Schedule, bool)
}

func mutations() []mutation {
	return []mutation{
		{"swap-words", func(rng *rand.Rand, b *ir.Block, s Schedule) (Schedule, bool) {
			// Swap two words joined by a strict dependence (a RAW or
			// store->load edge crossing words): the consumer's word moves
			// before the producer's, which no legal schedule allows. Words
			// without such an edge may swap legally, so those trials pass.
			if len(s) < 2 {
				return nil, false
			}
			d := BuildDAG(b, 1)
			wordIdx := make([]int, d.N)
			for w, ws := range s {
				for _, i := range ws {
					wordIdx[i] = w
				}
			}
			var pairs [][2]int
			for from := 0; from < d.N; from++ {
				for _, e := range d.Succs[from] {
					if e.MinGap > 0 && wordIdx[from] != wordIdx[e.To] {
						pairs = append(pairs, [2]int{wordIdx[from], wordIdx[e.To]})
					}
				}
			}
			if len(pairs) == 0 {
				return nil, false
			}
			p := pairs[rng.Intn(len(pairs))]
			m := cloneSchedule(s)
			m[p[0]], m[p[1]] = m[p[1]], m[p[0]]
			return m, true
		}},
		{"drop-node", func(rng *rand.Rand, b *ir.Block, s Schedule) (Schedule, bool) {
			m := cloneSchedule(s)
			w := rng.Intn(len(m))
			if len(m[w]) == 0 {
				return nil, false
			}
			k := rng.Intn(len(m[w]))
			m[w] = append(m[w][:k], m[w][k+1:]...)
			return m, true
		}},
		{"duplicate-node", func(rng *rand.Rand, b *ir.Block, s Schedule) (Schedule, bool) {
			m := cloneSchedule(s)
			w := rng.Intn(len(m))
			if len(m[w]) == 0 {
				return nil, false
			}
			m[w] = append(m[w], m[w][rng.Intn(len(m[w]))])
			sortWordTest(m[w])
			return m, true
		}},
		{"reorder-stores", func(rng *rand.Rand, b *ir.Block, s Schedule) (Schedule, bool) {
			// Move the second store of the block into the first store's word
			// position's predecessor — stores must keep program order.
			var stores []int
			for i := 0; i <= len(b.Body); i++ {
				if NodeAt(b, i).Op.IsStore() {
					stores = append(stores, i)
				}
			}
			if len(stores) < 2 {
				return nil, false
			}
			first, second := stores[0], stores[1]
			m := cloneSchedule(s)
			wf, ws := wordIndexOf(m, first), wordIndexOf(m, second)
			if wf == ws {
				return nil, false
			}
			// Swap the two stores between their words, reversing their order.
			replace(m[wf], first, second)
			replace(m[ws], second, first)
			sortWordTest(m[wf])
			sortWordTest(m[ws])
			return m, true
		}},
		{"terminator-not-last", func(rng *rand.Rand, b *ir.Block, s Schedule) (Schedule, bool) {
			// Hoist the terminator out of the final word into the first word.
			if len(s) < 2 {
				return nil, false
			}
			term := len(b.Body)
			m := cloneSchedule(s)
			last := len(m) - 1
			m[last] = dropVal(m[last], term)
			m[0] = append(m[0], term)
			if len(m[last]) == 0 {
				m = m[:last]
			}
			return m, true
		}},
	}
}

func wordIndexOf(s Schedule, node int) int {
	for w, ws := range s {
		for _, i := range ws {
			if i == node {
				return w
			}
		}
	}
	return -1
}

func replace(w Word, from, to int) {
	for k, i := range w {
		if i == from {
			w[k] = to
			return
		}
	}
}

func dropVal(w Word, v int) Word {
	out := w[:0]
	for _, i := range w {
		if i != v {
			out = append(out, i)
		}
	}
	return out
}

func sortWordTest(w Word) { sortWord(w) }

// TestValidateRejectsMutatedSchedules is the reject half: seeded random
// mutations of legal schedules — swapped words, dropped or duplicated
// nodes, reordered stores, the terminator hoisted off the final word —
// must all fail validation.
func TestValidateRejectsMutatedSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	muts := mutations()
	applied := make(map[string]int)
	for trial := 0; trial < 400; trial++ {
		b := randomBlock(rng, 4+rng.Intn(24))
		im := machine.IssueModels[rng.Intn(len(machine.IssueModels))]
		hitLat := 1 + rng.Intn(3)
		s := Block(b, im, hitLat)
		mu := muts[trial%len(muts)]
		m, ok := mu.apply(rng, b, s)
		if !ok {
			continue
		}
		applied[mu.name]++
		if err := Validate(b, im, hitLat, m); err == nil {
			t.Fatalf("trial %d: mutation %q produced a schedule Validate accepts\noriginal: %v\nmutated:  %v",
				trial, mu.name, s, m)
		}
	}
	for _, mu := range muts {
		if applied[mu.name] == 0 {
			t.Errorf("mutation %q never applied — generator mix too narrow", mu.name)
		}
	}
}

// TestValidateRejectsSlotOverflow: hand-built words over the slot limits
// are rejected even when all dependences hold.
func TestValidateRejectsSlotOverflow(t *testing.T) {
	var body []ir.Node
	for i := 0; i < 4; i++ {
		body = append(body, ir.Node{Op: ir.Const, Dst: ir.Reg(5 + i), Imm: int64(i)})
	}
	b := &ir.Block{Body: body, Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	im2, _ := machine.IssueModelByID(2) // 1M1A
	s := Schedule{Word{0, 1, 2, 3}, Word{4}}
	if err := Validate(b, im2, 1, s); err == nil {
		t.Fatal("4 ALU nodes in a 1M1A word accepted")
	}
	seq, _ := machine.IssueModelByID(1)
	if err := Validate(b, seq, 1, Schedule{Word{0, 1}, Word{2}, Word{3}, Word{4}}); err == nil {
		t.Fatal("2 nodes in a sequential word accepted")
	}
}

// TestPlannedCyclesMatchesInterlock pins the planned-cycle model on a
// block with a known critical path: load (latency 2) -> add -> branch.
func TestPlannedCyclesMatchesInterlock(t *testing.T) {
	b := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Ld, Dst: 5, A: 1},
			{Op: ir.Add, Dst: 6, A: 5, B: 5},
		},
		Term: ir.Node{Op: ir.Br, A: 6, Target: 0},
		Fall: 0,
	}
	im8, _ := machine.IssueModelByID(8)
	s := Block(b, im8, 2)
	if err := Validate(b, im8, 2, s); err != nil {
		t.Fatal(err)
	}
	// Cycle 0: load issues (result at 2). Cycle 2: add (result at 3).
	// Cycle 3: branch. Total 4 issue cycles.
	if got := PlannedCycles(b, im8, 2, s); got != 4 {
		t.Fatalf("PlannedCycles = %d, want 4 (schedule %v)", got, s)
	}
}
