package sched

import (
	"testing"

	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
)

func im(id int) machine.IssueModel {
	m, ok := machine.IssueModelByID(id)
	if !ok {
		panic("bad issue model")
	}
	return m
}

// wordOf returns the word index containing node idx, or -1.
func wordOf(s Schedule, idx int) int {
	for w, word := range s {
		for _, i := range word {
			if i == idx {
				return w
			}
		}
	}
	return -1
}

func checkComplete(t *testing.T, s Schedule, b *ir.Block) {
	t.Helper()
	seen := make(map[int]bool)
	for _, w := range s {
		for _, i := range w {
			if seen[i] {
				t.Fatalf("node %d scheduled twice", i)
			}
			seen[i] = true
		}
	}
	for i := 0; i <= len(b.Body); i++ {
		if !seen[i] {
			t.Fatalf("node %d not scheduled", i)
		}
	}
	// Terminator in the final word.
	last := s[len(s)-1]
	hasTerm := false
	for _, i := range last {
		if i == len(b.Body) {
			hasTerm = true
		}
	}
	if !hasTerm {
		t.Fatal("terminator not in the final word")
	}
}

func checkSlots(t *testing.T, s Schedule, b *ir.Block, m machine.IssueModel) {
	t.Helper()
	for w, word := range s {
		mem, alu := 0, 0
		for _, i := range word {
			op := b.Term.Op
			if i < len(b.Body) {
				op = b.Body[i].Op
			}
			if op.IsMem() {
				mem++
			} else {
				alu++
			}
		}
		if m.Sequential {
			if mem+alu > 1 {
				t.Errorf("word %d has %d nodes on the sequential model", w, mem+alu)
			}
			continue
		}
		if mem > m.Mem || alu > m.ALU {
			t.Errorf("word %d has %dM%dA, limit %dM%dA", w, mem, alu, m.Mem, m.ALU)
		}
	}
}

func testBlock() *ir.Block {
	// r5 = ld [r1]; r6 = r5+r5; st [r1+4] = r6; r7 = ld [r1+8];
	// r8 = r7 - r5; br r8
	return &ir.Block{
		Body: []ir.Node{
			{Op: ir.Ld, Dst: 5, A: 1},
			{Op: ir.Add, Dst: 6, A: 5, B: 5},
			{Op: ir.St, A: 1, B: 6, Imm: 4},
			{Op: ir.Ld, Dst: 7, A: 1, Imm: 8},
			{Op: ir.Sub, Dst: 8, A: 7, B: 5},
		},
		Term: ir.Node{Op: ir.Br, A: 8, Target: 0},
		Fall: 0,
	}
}

func TestScheduleComplete(t *testing.T) {
	for _, id := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		b := testBlock()
		s := Block(b, im(id), 1)
		checkComplete(t, s, b)
		checkSlots(t, s, b, im(id))
	}
}

func TestRAWOrdering(t *testing.T) {
	b := testBlock()
	s := Block(b, im(8), 2)
	// r6 = r5+r5 must come at least 2 words (load latency) after the load.
	if wordOf(s, 1) < wordOf(s, 0)+1 {
		t.Errorf("consumer scheduled too early: load in word %d, add in word %d",
			wordOf(s, 0), wordOf(s, 1))
	}
	// The subtraction uses both loads.
	if wordOf(s, 4) <= wordOf(s, 0) || wordOf(s, 4) <= wordOf(s, 3) {
		t.Error("sub scheduled before its producers")
	}
}

func TestLoadAfterStoreStaysOrdered(t *testing.T) {
	b := testBlock()
	for _, id := range []int{2, 5, 8} {
		s := Block(b, im(id), 1)
		// Node 3 (load) comes after node 2 (store): compile-time worst-case
		// aliasing forbids reordering and even the same word.
		if wordOf(s, 3) <= wordOf(s, 2) {
			t.Errorf("issue model %d: load (word %d) not strictly after store (word %d)",
				id, wordOf(s, 3), wordOf(s, 2))
		}
	}
}

func TestLoadsMayReorderAmongLoads(t *testing.T) {
	// Two independent loads can share a word on a 2-port machine.
	b := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Ld, Dst: 5, A: 1},
			{Op: ir.Ld, Dst: 6, A: 2},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	s := Block(b, im(5), 1)
	if wordOf(s, 0) != wordOf(s, 1) {
		t.Errorf("independent loads should pack into one word on 2M4A")
	}
}

func TestSequentialModelOneNodePerWord(t *testing.T) {
	b := testBlock()
	s := Block(b, im(1), 1)
	if len(s) != len(b.Body)+1 {
		t.Errorf("sequential schedule has %d words for %d nodes", len(s), len(b.Body)+1)
	}
}

func TestWideWordPacksIndependentWork(t *testing.T) {
	// Eight independent constants pack into one 12-ALU word.
	var body []ir.Node
	for i := 0; i < 8; i++ {
		body = append(body, ir.Node{Op: ir.Const, Dst: ir.Reg(5 + i), Imm: int64(i)})
	}
	b := &ir.Block{Body: body, Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	s := Block(b, im(8), 1)
	if len(s) != 1 {
		t.Errorf("independent work should fill one wide word, got %d words", len(s))
	}
}

func TestSysKeepsOrderWithAsserts(t *testing.T) {
	b := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 1},
			{Op: ir.Assert, A: 5, Expect: true, Target: 0},
			{Op: ir.Sys, Dst: 6, A: 5, B: ir.NoReg, Imm: 2},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	s := Block(b, im(8), 1)
	if wordOf(s, 2) < wordOf(s, 1) {
		t.Error("system call scheduled before a prior assert")
	}
}

func TestAssertsStayInOrder(t *testing.T) {
	b := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 1},
			{Op: ir.Const, Dst: 6, Imm: 1},
			{Op: ir.Assert, A: 5, Expect: true, Target: 0},
			{Op: ir.Assert, A: 6, Expect: true, Target: 0},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	s := Block(b, im(8), 1)
	if wordOf(s, 3) < wordOf(s, 2) {
		t.Error("asserts reordered")
	}
}

func TestEmptyBlock(t *testing.T) {
	b := &ir.Block{Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	s := Block(b, im(8), 1)
	if len(s) != 1 || len(s[0]) != 1 || s[0][0] != 0 {
		t.Errorf("empty block schedule = %v", s)
	}
}

func TestWAWDifferentOrSameWordInIndexOrder(t *testing.T) {
	// Two writes to r5; the later one must not appear in an earlier word.
	b := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 1},
			{Op: ir.Const, Dst: 5, Imm: 2},
			{Op: ir.St, A: 1, B: 5},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	s := Block(b, im(8), 1)
	if wordOf(s, 1) < wordOf(s, 0) {
		t.Error("output-dependent writes reordered across words")
	}
	if wordOf(s, 1) == wordOf(s, 0) {
		// Same word is allowed; the engine executes in index order, so the
		// store must still observe the second value. Check index order.
		w := s[wordOf(s, 0)]
		pos := map[int]int{}
		for k, i := range w {
			pos[i] = k
		}
		if pos[1] < pos[0] {
			t.Error("same-word nodes not in index order")
		}
	}
}
