package core_test

import (
	"bytes"
	"testing"

	"fgpsim/internal/bench"
	"fgpsim/internal/core"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// TestFillUnitCorrectAndEffective runs the fill-unit mode (run-time
// hardware enlargement, no profile) on a real benchmark and checks that it
// (a) computes the right answer, (b) actually forms enlarged blocks, and
// (c) recovers a useful share of the compiler-enlargement speedup.
func TestFillUnitCorrectAndEffective(t *testing.T) {
	b := bench.ByName("grep")
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	in0, in1 := b.Inputs(2)
	ref, err := interp.Run(p, in0, in1, interp.Options{MaxNodes: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}

	run := func(bm machine.BranchMode) (*core.RunResult, *loader.Image) {
		cfg := mkCfg(machine.Dyn4, 8, 'A')
		cfg.Branch = bm
		img, err := loader.Load(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, in0, in1, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, ref.Output) {
			t.Fatalf("%s: wrong output", bm)
		}
		return res, img
	}

	single, _ := run(machine.SingleBB)
	fill, img := run(machine.FillUnit)

	if len(img.EntryMap) == 0 {
		t.Fatal("fill unit never materialized a chain")
	}
	t.Logf("fill unit: %d entries enlarged, %d cycles vs %d single (%.2fx), mean block %.2f vs %.2f",
		len(img.EntryMap), fill.Stats.Cycles, single.Stats.Cycles,
		float64(single.Stats.Cycles)/float64(fill.Stats.Cycles),
		fill.Stats.MeanBlockSize(), single.Stats.MeanBlockSize())

	if fill.Stats.Cycles >= single.Stats.Cycles {
		t.Errorf("fill unit (%d cycles) should beat single blocks (%d)",
			fill.Stats.Cycles, single.Stats.Cycles)
	}
	if fill.Stats.MeanBlockSize() <= single.Stats.MeanBlockSize() {
		t.Error("fill unit should raise the mean retired block size")
	}
}

// TestFillUnitRejectsStatic: the fill unit needs a dynamic machine.
func TestFillUnitRejectsStatic(t *testing.T) {
	b := bench.ByName("compress")
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	cfg := mkCfg(machine.Static, 8, 'A')
	cfg.Branch = machine.FillUnit
	if _, err := loader.Load(p, cfg, nil); err == nil {
		t.Fatal("static + fill unit should be rejected")
	}
}

// TestFillUnitOnAllBenchmarks cross-validates outputs on the whole suite.
func TestFillUnitOnAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, b := range bench.All() {
		p, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		in0, in1 := b.Inputs(2)
		ref, err := interp.Run(p, in0, in1, interp.Options{MaxNodes: 1 << 25})
		if err != nil {
			t.Fatal(err)
		}
		cfg := mkCfg(machine.Dyn4, 8, 'A')
		cfg.Branch = machine.FillUnit
		img, err := loader.Load(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, in0, in1, nil, nil, core.Limits{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !bytes.Equal(res.Output, ref.Output) {
			t.Errorf("%s: fill-unit output differs from reference", b.Name)
		}
	}
}
