package core

import "fmt"

// This file is the engines' error taxonomy. Every abnormal outcome of a
// simulation surfaces as one of these typed errors — never a panic — so
// sweep harnesses can classify failures, quarantine the offending cell, and
// keep going (see DESIGN.md, "Robustness & fault injection").

// CycleLimitError is returned when a simulation exceeds its cycle budget.
type CycleLimitError struct{ Cycles int64 }

func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("core: cycle limit exceeded (%d cycles)", e.Cycles)
}

// ErrCycleLimit is the taxonomy's original name for CycleLimitError, kept as
// an alias so existing type assertions continue to hold.
type ErrCycleLimit = CycleLimitError

// ImageError reports a malformed executable image discovered while running
// it — a schedule without a terminator, an unknown terminator opcode, a
// non-pure node in an ALU slot. These are loader-contract violations, not
// program bugs, so they name the block for diagnosis.
type ImageError struct {
	Block  int
	Reason string
}

func (e *ImageError) Error() string {
	return fmt.Sprintf("core: bad image at block %d: %s", e.Block, e.Reason)
}

// CanceledError is returned when the run's context is canceled or its
// deadline expires mid-simulation. Unwrap exposes the context's error so
// errors.Is(err, context.Canceled/DeadlineExceeded) works.
type CanceledError struct {
	Cycle int64
	Err   error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: run canceled at cycle %d: %v", e.Cycle, e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// PreemptedError is returned when a run armed with Limits.Preempt is asked
// to yield: the engine drained its instruction window to a quiescent commit
// boundary and stopped. State carries the architectural snapshot to resume
// from (nil when the configuration cannot be snapshotted — fill-unit images
// mutate at run time — in which case the caller re-runs from scratch).
type PreemptedError struct {
	Cycle int64
	State *EngineState
}

func (e *PreemptedError) Error() string {
	return fmt.Sprintf("core: run preempted at cycle %d", e.Cycle)
}

// CheckpointUnsupportedError is returned when checkpoint/restore is armed
// on a configuration that cannot support it.
type CheckpointUnsupportedError struct{ Reason string }

func (e *CheckpointUnsupportedError) Error() string {
	return "core: checkpointing unsupported: " + e.Reason
}

// ResumeError reports a snapshot that cannot be applied to this run — a
// geometry or discipline mismatch, or internally inconsistent state. It
// means the snapshot belongs to a different image or configuration (the
// snapshot package's fingerprint should have caught it first).
type ResumeError struct{ Reason string }

func (e *ResumeError) Error() string {
	return "core: cannot resume from snapshot: " + e.Reason
}

// UnrecoverableFaultError is the simulated machine check: an injected fault
// corrupted state that no checkpoint covers (committed architectural state,
// or a replay that would re-execute an already-performed system call). The
// run's output is not trustworthy and is withheld; the invariant is that
// such runs fail loudly with this type instead of returning wrong bytes.
type UnrecoverableFaultError struct {
	Kind   string // injection kind that caused it
	Cycle  int64
	Reason string
}

func (e *UnrecoverableFaultError) Error() string {
	return fmt.Sprintf("core: unrecoverable injected fault (%s) at cycle %d: %s", e.Kind, e.Cycle, e.Reason)
}
