package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// batchVariants is a matrix of engine-level variants of one base dynamic
// configuration: window sizes, window overrides, predictors, BTB sizes, and
// conservative memory. All share a translated image's program.
func batchVariants() []machine.Config {
	var v []machine.Config
	for _, d := range []machine.Discipline{machine.Dyn1, machine.Dyn4, machine.Dyn256} {
		v = append(v, mkCfg(d, 8, 'A'))
	}
	c := mkCfg(machine.Dyn256, 8, 'D')
	c.WindowOverride = 16
	v = append(v, c)
	c = mkCfg(machine.Dyn256, 8, 'A')
	c.Predictor = machine.GSharePredictor
	v = append(v, c)
	c = mkCfg(machine.Dyn4, 8, 'G')
	c.ConservativeMem = true
	v = append(v, c)
	c = mkCfg(machine.Dyn4, 2, 'B')
	c.BTBEntries = 16
	v = append(v, c)
	return v
}

// TestRunBatchBitIdenticalToScalar is the batch mode's core contract: every
// lane of a batched run finishes with exactly the output bytes and the
// statistics of the same configuration run alone through core.Run.
func TestRunBatchBitIdenticalToScalar(t *testing.T) {
	for _, seed := range []int64{7, 42, 99} {
		p := randomProgram(seed)
		cfgs := batchVariants()
		// One translated image serves every lane, the way the experiment
		// harness's image cache shares it: a shallow copy per configuration,
		// carrying the lane's engine-level knobs in Cfg.
		base, err := loader.Load(p, mkCfg(machine.Dyn256, 8, 'A'), nil)
		if err != nil {
			t.Fatal(err)
		}
		laneImage := func(cfg machine.Config) *loader.Image {
			im := *base
			im.Cfg = cfg
			return &im
		}
		lanes := make([]core.BatchLane, len(cfgs))
		type scalar struct {
			out   []byte
			stats interface{}
		}
		want := make([]scalar, len(cfgs))
		for i, cfg := range cfgs {
			res, err := core.Run(laneImage(cfg), nil, nil, nil, nil, core.Limits{})
			if err != nil {
				t.Fatalf("seed %d %s: scalar run: %v", seed, cfg, err)
			}
			want[i] = scalar{res.Output, res.Stats}
			lanes[i] = core.BatchLane{Img: laneImage(cfg)}
		}
		results, errs, err := core.RunBatch(lanes, nil, nil, nil, nil)
		if err != nil {
			t.Fatalf("seed %d: batch: %v", seed, err)
		}
		for i, res := range results {
			if errs[i] != nil {
				t.Fatalf("seed %d lane %d (%s): %v", seed, i, cfgs[i], errs[i])
			}
			if !bytes.Equal(res.Output, want[i].out) {
				t.Errorf("seed %d lane %d (%s): output differs from scalar run", seed, i, cfgs[i])
			}
			if !reflect.DeepEqual(res.Stats, want[i].stats) {
				t.Errorf("seed %d lane %d (%s): stats differ from scalar run:\nbatch:  %+v\nscalar: %+v",
					seed, i, cfgs[i], res.Stats, want[i].stats)
			}
		}
	}
}

// TestRunBatchCheckpointResume checkpoints lanes mid-batch and resumes them
// in a later batch: a lane restored from a snapshot taken inside a batched
// run must finish bit-identically to the scalar armed run that was never
// interrupted — the SnapshotOracle contract extended to batch mode.
func TestRunBatchCheckpointResume(t *testing.T) {
	p := randomProgram(42)
	const every = 16
	cfgs := []machine.Config{mkCfg(machine.Dyn4, 8, 'D'), mkCfg(machine.Dyn256, 8, 'A')}
	base, err := loader.Load(p, mkCfg(machine.Dyn256, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*loader.Image, len(cfgs))
	straight := make([]*core.RunResult, len(cfgs))
	snaps := make([][]*core.EngineState, len(cfgs))
	for i, cfg := range cfgs {
		im := *base
		im.Cfg = cfg
		imgs[i] = &im
		res, err := core.Run(imgs[i], nil, nil, nil, nil, core.Limits{CheckpointEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		straight[i] = res
	}

	// Take the snapshots inside a *batched* armed run.
	lanes := make([]core.BatchLane, len(cfgs))
	for i := range cfgs {
		i := i
		lanes[i] = core.BatchLane{Img: imgs[i], Lim: core.Limits{
			CheckpointEvery: every,
			Checkpoint: func(st *core.EngineState) error {
				snaps[i] = append(snaps[i], st)
				return nil
			},
		}}
	}
	results, errs, err := core.RunBatch(lanes, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i].Output, straight[i].Output) ||
			!reflect.DeepEqual(results[i].Stats, straight[i].Stats) {
			t.Fatalf("lane %d (%s): armed batched run differs from armed scalar run", i, cfgs[i])
		}
		if len(snaps[i]) == 0 {
			t.Fatalf("lane %d (%s): no checkpoints parked (run too short for cadence %d?)",
				i, cfgs[i], every)
		}
	}

	// Resume every lane from each of its mid-batch snapshots, batched with a
	// fresh lane of the other configuration for interleaving.
	for i := range cfgs {
		for si, snap := range snaps[i] {
			other := (i + 1) % len(cfgs)
			lanes := []core.BatchLane{
				{Img: imgs[i], Lim: core.Limits{CheckpointEvery: every, Resume: snap}},
				{Img: imgs[other]},
			}
			results, errs, err := core.RunBatch(lanes, nil, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if errs[0] != nil {
				t.Fatalf("lane %d snapshot %d: resume: %v", i, si, errs[0])
			}
			if !bytes.Equal(results[0].Output, straight[i].Output) ||
				!reflect.DeepEqual(results[0].Stats, straight[i].Stats) {
				t.Errorf("lane %d (%s) resumed from snapshot %d: differs from uninterrupted run",
					i, cfgs[i], si)
			}
		}
	}
}

// TestRunBatchRejects pins the batch-level misuse errors.
func TestRunBatchRejects(t *testing.T) {
	p := randomProgram(1)
	dyn, err := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	static, err := loader.Load(p, mkCfg(machine.Static, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	fucfg := mkCfg(machine.Dyn4, 8, 'A')
	fucfg.Branch = machine.FillUnit
	fu, err := loader.Load(p, fucfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := mkCfg(machine.Dyn4, 8, 'A')
	pcfg.Branch = machine.Perfect
	perf, err := loader.Load(p, pcfg, &enlarge.File{})
	if err != nil {
		t.Fatal(err)
	}
	p2 := randomProgram(2)
	dyn2, err := loader.Load(p2, mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name  string
		lanes []core.BatchLane
	}{
		{"empty", nil},
		{"static", []core.BatchLane{{Img: static}}},
		{"fillunit", []core.BatchLane{{Img: fu}}},
		{"perfect-no-trace", []core.BatchLane{{Img: perf}}},
		{"mixed-programs", []core.BatchLane{{Img: dyn}, {Img: dyn2}}},
	} {
		if _, _, err := core.RunBatch(tc.lanes, nil, nil, nil, nil); err == nil {
			t.Errorf("%s: want a batch-level error", tc.name)
		}
	}
}

// TestRunBatchLaneFailureIsIsolated caps one lane's cycles below its runtime:
// that lane must fail while the other lane still completes with scalar-
// identical results.
func TestRunBatchLaneFailureIsIsolated(t *testing.T) {
	p := randomProgram(42)
	img, err := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	lanes := []core.BatchLane{
		{Img: img, Lim: core.Limits{MaxCycles: 10}},
		{Img: img},
	}
	results, errs, err := core.RunBatch(lanes, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] == nil {
		t.Error("capped lane: want a cycle-limit error")
	}
	if errs[1] != nil {
		t.Fatalf("healthy lane: %v", errs[1])
	}
	if !bytes.Equal(results[1].Output, ref.Output) || !reflect.DeepEqual(results[1].Stats, ref.Stats) {
		t.Error("healthy lane's result disturbed by its neighbor's failure")
	}
}
