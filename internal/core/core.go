// Package core contains the run-time simulator engines (the paper's sim):
// a statically scheduled in-order engine with hardware interlocks, and a
// dynamically scheduled restricted-dataflow engine with an instruction
// window, checkpointed speculative execution, run-time memory
// disambiguation, and a write buffer. Both engines execute programs
// functionally while modeling timing cycle by cycle, and both must produce
// output byte-identical to the functional interpreter — that invariant is
// the test suite's backbone.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

// RunResult bundles a finished simulation.
type RunResult struct {
	Output []byte
	Stats  *stats.Run
}

// Limits guards simulations against runaway configurations and carries
// optional observability hooks.
type Limits struct {
	// MaxCycles aborts the run when exceeded (0 = default of 2^40).
	MaxCycles int64

	// Pipe, when non-nil, records pipeline events of the first cycles
	// (dynamic engines only).
	Pipe *PipeLog

	// Fault, when non-nil, is invoked once per cycle of a dynamic run at
	// the engine's consistent point (after retirement, before issue) with a
	// port into the live machine state; fault injectors perturb the run
	// through it (faultport.go). Ignored by the static engine, whose
	// in-order transactional execution has no speculative state to corrupt.
	Fault FaultHook

	// Heartbeat, when non-nil, is incremented every ctxCheckPeriod cycles
	// (next to the cancellation check) by both engines. External watchdogs
	// poll it to distinguish a run that is slow from one that is stuck: a
	// live simulation keeps beating no matter how long it takes, so a
	// counter that stops advancing while the run is still in flight means
	// the engine has wedged (see internal/server's watchdog).
	Heartbeat *atomic.Int64

	// CheckpointEvery, when positive, takes a checkpoint roughly every N
	// cycles: the dynamic engine drains its instruction window to a
	// quiescent commit boundary (which perturbs timing — a cadence-N run is
	// its own timing universe), the static engine captures at the next block
	// boundary (no perturbation). When zero the checkpoint path costs one
	// predictable branch per cycle and allocates nothing.
	CheckpointEvery int64

	// Checkpoint, when non-nil, receives the engine state captured at each
	// checkpoint boundary. The state is a deep copy, safe to retain or
	// serialize. A non-nil error aborts the run with that error.
	Checkpoint func(*EngineState) error

	// Preempt, when non-nil, is polled at the amortized check gate; once it
	// reads true the engine drains to the next commit boundary and returns a
	// *PreemptedError carrying the snapshot (nil State for fill-unit runs,
	// which cannot be snapshotted — the caller re-runs those from scratch).
	Preempt *atomic.Bool

	// Resume, when non-nil, restores this snapshot into the engine before
	// cycle zero; the run continues exactly where the snapshot left off.
	// The caller is responsible for resuming against the identical image
	// and inputs (internal/snapshot's fingerprint enforces this).
	Resume *EngineState
}

func (l Limits) maxCycles() int64 {
	if l.MaxCycles > 0 {
		return l.MaxCycles
	}
	return 1 << 40
}

// Run simulates a loaded image on the two input streams. trace supplies
// the dynamic basic-block trace for perfect-prediction configurations (and
// is ignored otherwise); hints supplies static branch prediction hints
// keyed by original block IDs, used to seed the 2-bit predictor.
func Run(img *loader.Image, in0, in1 []byte, trace []ir.BlockID, hints map[ir.BlockID]bool, lim Limits) (*RunResult, error) {
	return RunContext(context.Background(), img, in0, in1, trace, hints, lim)
}

// RunContext is Run with cancellation: the simulation aborts with a
// *CanceledError (wrapping ctx.Err()) soon after the context is canceled or
// its deadline passes. The check is amortized over cycles, so cancellation
// latency is a few thousand simulated cycles, not wall-clock immediate.
func RunContext(ctx context.Context, img *loader.Image, in0, in1 []byte, trace []ir.BlockID, hints map[ir.BlockID]bool, lim Limits) (*RunResult, error) {
	if img.Cfg.Branch == machine.Perfect && trace == nil {
		return nil, fmt.Errorf("core: perfect prediction requires a recorded trace")
	}
	if img.Cfg.Branch == machine.FillUnit && (lim.CheckpointEvery > 0 || lim.Resume != nil) {
		return nil, &CheckpointUnsupportedError{Reason: "fill-unit images mutate at run time"}
	}
	if img.Cfg.Disc == machine.Static {
		e := newStaticEngine(img, in0, in1, lim)
		e.ctx = ctx
		if lim.Resume != nil {
			if err := e.restore(lim.Resume); err != nil {
				return nil, err
			}
		}
		return e.run()
	}
	e := newDynamicEngine(img, in0, in1, trace, lim)
	e.ctx = ctx
	if hints != nil {
		e.SetHints(hints)
	}
	if lim.Resume != nil {
		if err := e.restore(lim.Resume); err != nil {
			return nil, err
		}
	}
	return e.run()
}

// ctxCheckPeriod is how many cycles pass between context-cancellation
// checks; a power of two so the test is a mask.
const ctxCheckPeriod = 4096

// env is the architectural state shared by both engines: flat memory, the
// input streams, and collected output. Its address clamping is identical to
// the functional interpreter's so that runs are bit-for-bit comparable.
type env struct {
	prog *ir.Program
	mem  []byte

	in    [2][]byte
	inPos [2]int
	out   []byte
}

func newEnv(p *ir.Program, in0, in1 []byte) *env {
	e := &env{prog: p, in: [2][]byte{in0, in1}}
	e.mem = make([]byte, p.MemSize)
	copy(e.mem[p.DataBase:], p.Data)
	return e
}

func (e *env) clampAddr(a int32, size int64) int64 {
	addr := int64(uint32(a))
	if addr+size > int64(len(e.mem)) {
		return 0
	}
	return addr
}

func (e *env) load(a int32, size int64) int32 {
	addr := e.clampAddr(a, size)
	if size == 1 {
		return int32(e.mem[addr])
	}
	return int32(uint32(e.mem[addr]) | uint32(e.mem[addr+1])<<8 |
		uint32(e.mem[addr+2])<<16 | uint32(e.mem[addr+3])<<24)
}

func (e *env) store(a int32, size int64, v int32) {
	addr := e.clampAddr(a, size)
	e.mem[addr] = byte(v)
	if size == 4 {
		e.mem[addr+1] = byte(v >> 8)
		e.mem[addr+2] = byte(v >> 16)
		e.mem[addr+3] = byte(v >> 24)
	}
}

func (e *env) syscall(no int64, a, b int32) int32 {
	switch no {
	case ir.SysGetc:
		s := int(a) & 1
		if e.inPos[s] >= len(e.in[s]) {
			return -1
		}
		c := e.in[s][e.inPos[s]]
		e.inPos[s]++
		return int32(c)
	case ir.SysPutc:
		e.out = append(e.out, byte(a))
		return 0
	}
	return -1
}

// sizeOf returns the access width of a memory node.
func sizeOf(op ir.Op) int64 {
	if op == ir.LdB || op == ir.StB {
		return 1
	}
	return 4
}
