package core

import (
	"fmt"

	"fgpsim/internal/branch"
	"fgpsim/internal/ir"
)

// FaultHook is invoked once per cycle of a dynamic run (Limits.Fault) with
// a port into the live engine. Injectors decide from the port's cycle and
// window occupancy whether to perturb anything this cycle.
type FaultHook func(FaultPort)

// FaultPort is the surface a fault injector perturbs a running dynamic
// engine through. Every method either leaves the machine in a state from
// which checkpoint recovery reproduces the uninjected architectural results
// (output and retired work byte-identical), or poisons the run with a typed
// *UnrecoverableFaultError — never a panic, never silently wrong output.
//
// Each method returns a human-readable description of what was done (empty
// when no injection site was available this cycle); the boolean reports
// whether anything was injected. The r argument is injector-supplied
// randomness used to pick among candidate sites deterministically.
type FaultPort interface {
	// Cycle is the current simulated cycle.
	Cycle() int64
	// ActiveBlocks is the number of blocks in the instruction window.
	ActiveBlocks() int
	// PerturbPredictor flips state inside the branch predictor (a BTB
	// counter/tag or gshare counter/history bit). Always repairable: a
	// wrong prediction is squashed by the normal mispredict machinery.
	PerturbPredictor(r uint64) string
	// InjectSquash models a detected transient fault in window position
	// pos: the block and everything younger are squashed and refetched
	// from its own checkpoint. The position is clamped and moved past any
	// block holding an executed system call (whose side effects make a
	// replay unsafe).
	InjectSquash(pos int) (string, bool)
	// CorruptValue flips one bit in a completed ALU result in window
	// position pos, then recovers the block from its checkpoint (the
	// model: ECC/parity detects the flip and recovery replays).
	CorruptValue(pos int, r uint64) (string, bool)
	// ForceMemViolation executes a load that is still blocked on memory
	// disambiguation, bypassing the older-store-address check. The load
	// may read a stale value; at retirement the engine re-derives the
	// architectural value and either verifies the access (benign), replays
	// the block from its checkpoint, or — if the block's side effects are
	// irreversible — poisons the run with *UnrecoverableFaultError.
	ForceMemViolation(r uint64) (string, bool)
	// CorruptArch flips a bit of committed architectural memory. This is
	// outside the speculation checkpoints' reach, so it always poisons the
	// run with a typed *UnrecoverableFaultError (a machine check).
	CorruptArch(r uint64) string
}

func (e *dynamicEngine) Cycle() int64      { return e.cycle }
func (e *dynamicEngine) ActiveBlocks() int { return e.active.len() }

func (e *dynamicEngine) PerturbPredictor(r uint64) string {
	p, ok := e.pred.(branch.Perturbable)
	if !ok {
		return "" // perfect prediction has no physical predictor state
	}
	desc := p.Perturb(r)
	if desc != "" {
		e.st.InjectedFaults++
		e.st.RepairedFaults++ // mispredict recovery absorbs any wrong prediction
	}
	return desc
}

func (e *dynamicEngine) InjectSquash(pos int) (string, bool) {
	pos = e.safeSquashPos(pos)
	if pos < 0 {
		return "", false
	}
	ab := e.active.at(pos)
	id := e.blocks.xb[ab].ID
	e.injectedSquash(pos, ab)
	e.st.InjectedFaults++
	e.st.RepairedFaults++
	return fmt.Sprintf("squash window[%d:] and refetch block %d", pos, id), true
}

func (e *dynamicEngine) CorruptValue(pos int, r uint64) (string, bool) {
	pos = e.safeSquashPos(pos)
	if pos < 0 {
		return "", false
	}
	ab := e.active.at(pos)
	ns := &e.nodes
	cands := 0
	for _, nd := range e.blocks.nodes[ab] {
		if ns.state(nd) == nsDone && ns.d[nd].op.IsPure() {
			cands++
		}
	}
	if cands == 0 {
		return "", false
	}
	pick := int(r % uint64(cands))
	target := nilRef
	for _, nd := range e.blocks.nodes[ab] {
		if ns.state(nd) == nsDone && ns.d[nd].op.IsPure() {
			if pick == 0 {
				target = nd
				break
			}
			pick--
		}
	}
	bit := uint((r >> 32) % 32)
	ns.d[target].val ^= 1 << bit
	id := e.blocks.xb[ab].ID
	seq := ns.d[target].seq
	e.injectedSquash(pos, ab)
	e.st.InjectedFaults++
	e.st.RepairedFaults++
	return fmt.Sprintf("flip bit %d of node %d result, recover block %d from checkpoint", bit, seq, id), true
}

func (e *dynamicEngine) ForceMemViolation(r uint64) (string, bool) {
	if len(e.blockedLoads) == 0 {
		return "", false
	}
	idx := int(r % uint64(len(e.blockedLoads)))
	nd := e.blockedLoads[idx]
	e.blockedLoads = append(e.blockedLoads[:idx], e.blockedLoads[idx+1:]...)
	e.nodes.d[nd].status |= nsInjected
	e.injLive++
	e.st.InjectedFaults++
	e.execute(nd)
	return fmt.Sprintf("execute blocked load %d past unknown older store addresses", e.nodes.d[nd].seq), true
}

func (e *dynamicEngine) CorruptArch(r uint64) string {
	if len(e.env.mem) == 0 {
		return ""
	}
	off := r % uint64(len(e.env.mem))
	bit := (r >> 40) % 8
	e.env.mem[off] ^= 1 << bit
	e.st.InjectedFaults++
	if e.runErr == nil {
		e.runErr = &UnrecoverableFaultError{
			Kind:   "arch-state",
			Cycle:  e.cycle,
			Reason: fmt.Sprintf("bit %d of committed memory byte 0x%x flipped outside checkpoint reach", bit, off),
		}
	}
	return fmt.Sprintf("flip bit %d of memory byte 0x%x (machine check)", bit, off)
}

// safeSquashPos clamps a window position to the active blocks and moves it
// past any block containing a system call that has started executing: a
// syscall's side effects (input consumed, output emitted) are outside the
// checkpoints, so a replay of its block would not be transparent. Returns
// -1 when no squashable position remains.
func (e *dynamicEngine) safeSquashPos(pos int) int {
	n := e.active.len()
	if n == 0 {
		return -1
	}
	if pos < 0 {
		pos = 0
	}
	if pos >= n {
		pos = n - 1
	}
	ns := &e.nodes
	for i := pos; i < n; i++ {
		for _, nd := range e.blocks.nodes[e.active.at(i)] {
			if st := ns.state(nd); ns.d[nd].op == ir.Sys && (st == nsExecuting || st == nsDone) {
				pos = i + 1
			}
		}
	}
	if pos >= n {
		return -1
	}
	return pos
}

// injectedSquash recovers the window back to block ab's entry checkpoint
// and refetches the block itself — processFault's recovery sequence, minus
// the architectural fault bookkeeping (no fault is charged, the fill unit
// does not observe a divergence, and fetch redirects to the block's own ID
// so the replay retires exactly what the uninjected run would have).
func (e *dynamicEngine) injectedSquash(pos int, ab bref) {
	refetch := e.blocks.xb[ab].ID
	e.restoreRename(&e.blocks.renSnap[ab])
	e.rs = e.blocks.rsSnap[ab]
	e.cursor = int(e.blocks.cursorSnap[ab])
	e.squashFrom(pos)
	if e.pred != nil {
		e.pred.Restore(e.blocks.predSnap[ab])
	}
	e.nextBlockID = refetch
	e.issueBlock = nilRef
	e.issueStall = false
}

// verifyInjected re-derives the architectural value of every injected load
// in the block about to retire (all older stores have committed or sit in
// the write buffer, so loadValue is exact now). A match means the forced
// early execution was benign. A mismatch means the load consumed a stale
// value: the block replays from its checkpoint — unless it contains an
// executed system call, whose side effects make the stale value
// unrecoverable (a machine check). Returns false when the block must not
// retire this cycle.
func (e *dynamicEngine) verifyInjected(ab bref) bool {
	ns := &e.nodes
	bad := int64(0)
	for _, nd := range e.blocks.nodes[ab] {
		if ns.d[nd].status&nsInjected == 0 {
			continue
		}
		ns.d[nd].status &^= nsInjected
		e.injLive--
		if want, _ := e.loadValue(nd); want == ns.d[nd].val {
			e.st.RepairedFaults++
		} else {
			bad++
		}
	}
	if bad == 0 {
		return true
	}
	for _, nd := range e.blocks.nodes[ab] {
		if ns.d[nd].op == ir.Sys {
			if e.runErr == nil {
				e.runErr = &UnrecoverableFaultError{
					Kind:   "mem-violation",
					Cycle:  e.cycle,
					Reason: fmt.Sprintf("load in block %d consumed a stale value and the block's syscall already executed", e.blocks.xb[ab].ID),
				}
			}
			return false
		}
	}
	e.injectedSquash(0, ab)
	e.st.RepairedFaults += bad
	return false
}
