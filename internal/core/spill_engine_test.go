package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// TestEnginesUnderRegisterPressure runs a program that forces spilling
// (more live values than registers) through both engines, optimized and
// unoptimized, verifying against the interpreter. Spill loads/stores are
// exactly the kind of memory traffic that exposes disambiguation and
// forwarding bugs.
func TestEnginesUnderRegisterPressure(t *testing.T) {
	var sb strings.Builder
	n := 70
	sb.WriteString("int mix(int a, int b) { return a * 31 + b; }\n")
	sb.WriteString("int main() {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "\tint v%d = %d;\n", i, i*7+1)
	}
	// Calls interleaved with uses keep values live across call sites.
	sb.WriteString("\tint acc = 0;\n")
	for i := 0; i < n; i += 2 {
		fmt.Fprintf(&sb, "\tacc = mix(acc, v%d - v%d);\n", i, i+1)
	}
	sb.WriteString("\tputc('A' + (acc % 26 + 26) % 26);\n\tputc('\\n');\n\treturn 0;\n}\n")

	for _, optimize := range []bool{false, true} {
		p, err := minic.Compile("spill.mc", sb.String(), minic.Options{Optimize: optimize})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := interp.Run(p, nil, nil, interp.Options{MaxNodes: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []machine.Config{
			mkCfg(machine.Static, 8, 'D'),
			mkCfg(machine.Dyn4, 8, 'D'),
			mkCfg(machine.Dyn256, 8, 'G'),
		} {
			img, err := loader.Load(p, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Output, ref.Output) {
				t.Errorf("optimize=%v %s: output %q, want %q", optimize, cfg, res.Output, ref.Output)
			}
		}
	}
}
