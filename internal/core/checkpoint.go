package core

import (
	"fmt"

	"fgpsim/internal/branch"
	"fgpsim/internal/ir"
	"fgpsim/internal/mem"
	"fgpsim/internal/stats"
)

// This file implements durable mid-run checkpoints: capturing the complete
// architectural state of an engine at a quiescent commit boundary and
// restoring it into a freshly built engine so the resumed run is
// bit-identical — same output bytes, same retired counts, same statistics,
// same fault-injection stream — to one that never stopped.
//
// The commit-boundary rule is what makes the dynamic engine's state finite:
// a checkpoint is only taken when the instruction window is empty (every
// issued block has retired or been squashed). At that point all speculation
// has resolved — the rename table holds plain values, the speculative
// return stack is the architectural call stack, the write buffer has
// drained, and the predictor's speculative history equals its committed
// history — so the snapshot is exactly the paper's architectural state plus
// the predictor/cache tables and statistics counters. Arming
// Limits.CheckpointEvery changes the run's timing (draining stalls issue),
// but a cadence-N run interrupted at any checkpoint and resumed is
// indistinguishable from the cadence-N run that kept going; that is the
// invariant difftest.SnapshotOracle enforces.

// EngineState is a complete engine snapshot at a quiescent commit boundary.
// It is self-contained plain data: byte slices are copies, not aliases into
// the live engine.
type EngineState struct {
	// Static discriminates the engine family the snapshot came from.
	Static bool

	// Cycle is the simulated cycle the snapshot was taken at; the resumed
	// run continues counting from it.
	Cycle int64

	// Architectural state shared by both engines.
	Mem   []byte
	InPos [2]int64
	Out   []byte
	Regs  [ir.NumRegs]int32

	// RetStack is the (architectural) return stack, oldest frame first.
	RetStack []ir.BlockID

	// NextBlock is where fetch resumes.
	NextBlock ir.BlockID

	// Cursor is the perfect-prediction trace position (dynamic only).
	Cursor int64

	// MemEpoch, LastLoadRetry, and BlockedLoadGhosts carry the dynamic
	// engine's memory-disambiguation retry gate. They are timing state, not
	// architectural state: a store can bump the epoch with no blocked load
	// around to consume it, and that pending delta makes the next blocked
	// load retry one pass earlier. Dropping them would leave resumed runs
	// architecturally identical but a few cycles adrift of the straight run,
	// breaking bit-identical statistics.
	MemEpoch          int64
	LastLoadRetry     int64
	BlockedLoadGhosts int64

	// RegReady carries the static engine's per-register ready cycles
	// (absolute), so interlock stalls replay identically across a resume.
	RegReady [ir.NumRegs]int64

	// Stats is a deep copy of the counters accumulated so far.
	Stats *stats.Run

	// Cache is the memory-system state; nil for perfect-memory configs.
	Cache *mem.CacheState

	// Pred is the branch predictor state; nil for perfect prediction.
	Pred *branch.State
}

// ---------- dynamic engine ----------

// checkpointArmed reports whether the per-cycle drain trigger needs to run.
func (l Limits) checkpointArmed() bool {
	return l.CheckpointEvery > 0 || l.Preempt != nil
}

// captureState snapshots the dynamic engine. Callers guarantee quiescence:
// the active window is empty and issue is not stalled.
func (e *dynamicEngine) captureState() *EngineState {
	st := &EngineState{
		Cycle:     e.cycle,
		Mem:       append([]byte(nil), e.env.mem...),
		InPos:     [2]int64{int64(e.env.inPos[0]), int64(e.env.inPos[1])},
		Out:       append([]byte(nil), e.env.out...),
		NextBlock: e.nextBlockID,
		Cursor:    int64(e.cursor),
		Stats:     e.st.Clone(),
		Cache:     e.ms.State(),

		MemEpoch:          e.memEpoch,
		LastLoadRetry:     e.lastLoadRetry,
		BlockedLoadGhosts: int64(e.blockedLoadGhosts),
	}
	for r := range e.rename {
		// At quiescence every producer has completed and been harvested;
		// the defensive read covers a producer reference that somehow
		// survived (it would already hold its final value).
		if en := e.rename[r]; en.prod != nilRef {
			st.Regs[r] = e.nodes.d[en.prod].val
		} else {
			st.Regs[r] = en.val
		}
	}
	depth := 0
	for rs := e.rs; rs != nil; rs = rs.parent {
		depth++
	}
	if depth > 0 { // nil when empty, for reflect-identical serialization
		st.RetStack = make([]ir.BlockID, depth)
		for rs := e.rs; rs != nil; rs = rs.parent {
			depth--
			st.RetStack[depth] = rs.target
		}
	}
	if e.pred != nil {
		st.Pred = branch.PredictorState(e.pred)
	}
	return st
}

// restore applies a snapshot to a freshly built dynamic engine (after
// SetHints, which rebuilds the predictor). Validation is defensive: the
// snapshot fingerprint should already have pinned image and configuration.
func (e *dynamicEngine) restore(st *EngineState) error {
	if st.Static {
		return &ResumeError{Reason: "snapshot is from the static engine"}
	}
	if len(st.Mem) != len(e.env.mem) {
		return &ResumeError{Reason: fmt.Sprintf("memory image is %d bytes, machine has %d", len(st.Mem), len(e.env.mem))}
	}
	if !validSnapBlock(e.img.Prog, st.NextBlock) {
		return &ResumeError{Reason: fmt.Sprintf("next block %d out of range", st.NextBlock)}
	}
	for _, t := range st.RetStack {
		if !validSnapBlock(e.img.Prog, t) {
			return &ResumeError{Reason: fmt.Sprintf("return-stack block %d out of range", t)}
		}
	}
	if st.Cursor < 0 || st.Cursor > int64(len(e.trace)) {
		return &ResumeError{Reason: fmt.Sprintf("trace cursor %d out of range [0,%d]", st.Cursor, len(e.trace))}
	}
	for s := 0; s < 2; s++ {
		if st.InPos[s] < 0 || st.InPos[s] > int64(len(e.env.in[s])) {
			return &ResumeError{Reason: fmt.Sprintf("input %d position %d out of range", s, st.InPos[s])}
		}
	}
	if (st.Pred == nil) != (e.pred == nil) {
		return &ResumeError{Reason: "predictor presence mismatch"}
	}
	if st.Stats == nil {
		return &ResumeError{Reason: "snapshot carries no statistics"}
	}
	if st.BlockedLoadGhosts < 0 || st.LastLoadRetry > st.MemEpoch {
		return &ResumeError{Reason: "memory retry gate state is inconsistent"}
	}
	if err := e.ms.SetState(st.Cache); err != nil {
		return &ResumeError{Reason: err.Error()}
	}
	if e.pred != nil {
		if err := branch.SetPredictorState(e.pred, st.Pred); err != nil {
			return &ResumeError{Reason: err.Error()}
		}
	}
	copy(e.env.mem, st.Mem)
	e.env.inPos = [2]int{int(st.InPos[0]), int(st.InPos[1])}
	e.env.out = append(e.env.out[:0], st.Out...)
	for r := range e.rename {
		e.rename[r] = renEntry{prod: nilRef, val: st.Regs[r]}
	}
	e.rs = nil
	for i, t := range st.RetStack {
		rs := e.rspool.get()
		rs.target = t
		rs.parent = e.rs
		rs.depth = i + 1
		e.rs = rs
	}
	e.nextBlockID = st.NextBlock
	e.cursor = int(st.Cursor)
	e.memEpoch = st.MemEpoch
	e.lastLoadRetry = st.LastLoadRetry
	e.blockedLoadGhosts = int(st.BlockedLoadGhosts)
	e.cycle = st.Cycle
	e.lastCkpt = st.Cycle
	*e.st = *st.Stats.Clone()
	return nil
}

// checkpointNow captures state at a quiescent boundary and dispatches it:
// on preemption it returns a *PreemptedError carrying the state; otherwise
// it hands the state to the Checkpoint hook (whose error aborts the run).
func (e *dynamicEngine) checkpointNow() error {
	e.draining = false
	e.lastCkpt = e.cycle
	preempting := e.preempting
	e.preempting = false
	if !preempting && e.lim.Checkpoint == nil {
		return nil
	}
	var st *EngineState
	if e.fill == nil {
		// Fill-unit images mutate their program at run time, so their
		// snapshots cannot be validated against a stable fingerprint; a
		// preempted fill-unit run re-runs from scratch (State == nil).
		st = e.captureState()
	}
	if preempting {
		return &PreemptedError{Cycle: e.cycle, State: st}
	}
	if st == nil {
		return nil
	}
	return e.lim.Checkpoint(st)
}

func validSnapBlock(p *ir.Program, id ir.BlockID) bool {
	return id >= 0 && int(id) < len(p.Blocks) && p.Blocks[id] != nil
}

// ---------- static engine ----------

// captureStatic snapshots the static engine at a block boundary: next is
// the block about to execute and nextCycle its first issue cycle.
func (e *staticEngine) captureStatic(next ir.BlockID, nextCycle int64) *EngineState {
	st := &EngineState{
		Static:    true,
		Cycle:     nextCycle,
		Mem:       append([]byte(nil), e.env.mem...),
		InPos:     [2]int64{int64(e.env.inPos[0]), int64(e.env.inPos[1])},
		Out:       append([]byte(nil), e.env.out...),
		Regs:      e.regs,
		RegReady:  e.regReadyAt,
		RetStack:  append([]ir.BlockID(nil), e.retStack...),
		NextBlock: next,
		Stats:     e.st.Clone(),
		Cache:     e.ms.State(),
	}
	return st
}

// restore applies a snapshot to a freshly built static engine; run() picks
// up the resume block and cycle.
func (e *staticEngine) restore(st *EngineState) error {
	if !st.Static {
		return &ResumeError{Reason: "snapshot is from the dynamic engine"}
	}
	if len(st.Mem) != len(e.env.mem) {
		return &ResumeError{Reason: fmt.Sprintf("memory image is %d bytes, machine has %d", len(st.Mem), len(e.env.mem))}
	}
	if !validSnapBlock(e.img.Prog, st.NextBlock) {
		return &ResumeError{Reason: fmt.Sprintf("next block %d out of range", st.NextBlock)}
	}
	for _, t := range st.RetStack {
		if !validSnapBlock(e.img.Prog, t) {
			return &ResumeError{Reason: fmt.Sprintf("return-stack block %d out of range", t)}
		}
	}
	for s := 0; s < 2; s++ {
		if st.InPos[s] < 0 || st.InPos[s] > int64(len(e.env.in[s])) {
			return &ResumeError{Reason: fmt.Sprintf("input %d position %d out of range", s, st.InPos[s])}
		}
	}
	if st.Stats == nil {
		return &ResumeError{Reason: "snapshot carries no statistics"}
	}
	if err := e.ms.SetState(st.Cache); err != nil {
		return &ResumeError{Reason: err.Error()}
	}
	copy(e.env.mem, st.Mem)
	e.env.inPos = [2]int{int(st.InPos[0]), int(st.InPos[1])}
	e.env.out = append(e.env.out[:0], st.Out...)
	e.regs = st.Regs
	e.regReadyAt = st.RegReady
	e.retStack = append(e.retStack[:0], st.RetStack...)
	*e.st = *st.Stats.Clone()
	e.resumed = true
	e.resumeBlock = st.NextBlock
	e.resumeCycle = st.Cycle
	e.lastCkpt = st.Cycle
	return nil
}
