package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

func mkCfg(d machine.Discipline, issueID int, memID byte) machine.Config {
	im, _ := machine.IssueModelByID(issueID)
	mc, _ := machine.MemConfigByID(memID)
	return machine.Config{Disc: d, Issue: im, Mem: mc, Branch: machine.SingleBB}
}

// randomProgram builds a random (but well-formed) program: a few blocks of
// random arithmetic and memory traffic over a small arena, a data-dependent
// loop, and a checksum printed at the end. Seeded, so failures reproduce.
func randomProgram(seed int64) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)

	const arena = 8192 // word-aligned scratch space
	regs := []ir.Reg{5, 6, 7, 8, 9, 10, 11, 12}
	pick := func() ir.Reg { return regs[rng.Intn(len(regs))] }

	randomBody := func(n int) []ir.Node {
		var body []ir.Node
		// Seed registers with constants.
		for i, r := range regs {
			body = append(body, ir.Node{Op: ir.Const, Dst: r, Imm: int64(seed + int64(i*17) + 1)})
		}
		ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Eq, ir.Lt}
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0, 1: // store word to a random arena slot
				slot := int64(arena + 4*rng.Intn(64))
				body = append(body,
					ir.Node{Op: ir.Const, Dst: 13, Imm: slot},
					ir.Node{Op: ir.St, A: 13, B: pick()})
			case 2, 3: // load word back
				slot := int64(arena + 4*rng.Intn(64))
				body = append(body,
					ir.Node{Op: ir.Const, Dst: 13, Imm: slot},
					ir.Node{Op: ir.Ld, Dst: pick(), A: 13})
			case 4: // byte store overlapping the words
				slot := int64(arena + rng.Intn(256))
				body = append(body,
					ir.Node{Op: ir.Const, Dst: 13, Imm: slot},
					ir.Node{Op: ir.StB, A: 13, B: pick()})
			case 5: // byte load
				slot := int64(arena + rng.Intn(256))
				body = append(body,
					ir.Node{Op: ir.Const, Dst: 13, Imm: slot},
					ir.Node{Op: ir.LdB, Dst: pick(), A: 13})
			default:
				op := ops[rng.Intn(len(ops))]
				body = append(body, ir.Node{Op: op, Dst: pick(), A: pick(), B: pick()})
			}
		}
		return body
	}

	// b0: random body, then init loop counter r14 and jump to loop.
	b0 := &ir.Block{
		Body: append(randomBody(30+rng.Intn(40)),
			ir.Node{Op: ir.Const, Dst: 14, Imm: int64(3 + rng.Intn(6))}),
		Term: ir.Node{Op: ir.Jmp, Target: 1},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b0)

	// b1 (loop): more random work, decrement r14, branch back while > 0.
	loopBody := randomBody(10 + rng.Intn(20))
	loopBody = append(loopBody,
		ir.Node{Op: ir.AddI, Dst: 14, A: 14, Imm: -1},
		ir.Node{Op: ir.Const, Dst: 15, Imm: 0},
		ir.Node{Op: ir.Gt, Dst: 16, A: 14, B: 15},
	)
	b1 := &ir.Block{
		Body: loopBody,
		Term: ir.Node{Op: ir.Br, A: 16, Target: 1},
		Fall: 2,
	}
	p.AddBlock(0, b1)

	// b2: checksum = xor of regs and a few arena words; print 4 bytes.
	var sum []ir.Node
	sum = append(sum, ir.Node{Op: ir.Mov, Dst: 20, A: regs[0]})
	for _, r := range regs[1:] {
		sum = append(sum, ir.Node{Op: ir.Xor, Dst: 20, A: 20, B: r})
	}
	for i := 0; i < 8; i++ {
		sum = append(sum,
			ir.Node{Op: ir.Const, Dst: 13, Imm: int64(arena + 4*i*7)},
			ir.Node{Op: ir.Ld, Dst: 21, A: 13},
			ir.Node{Op: ir.Xor, Dst: 20, A: 20, B: 21})
	}
	for shift := 0; shift < 32; shift += 8 {
		sum = append(sum,
			ir.Node{Op: ir.Const, Dst: 22, Imm: int64(shift)},
			ir.Node{Op: ir.Shr, Dst: 23, A: 20, B: 22},
			ir.Node{Op: ir.Sys, Dst: 24, A: 23, B: ir.NoReg, Imm: ir.SysPutc})
	}
	b2 := &ir.Block{Body: sum, Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b2)
	f.Entry = 0
	return p
}

// TestRandomProgramsDifferential cross-checks both engines against the
// interpreter on randomly generated programs (register dataflow, memory
// disambiguation with mixed widths, loops).
func TestRandomProgramsDifferential(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		p := randomProgram(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := interp.Run(p, nil, nil, interp.Options{MaxNodes: 1 << 22})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, cfg := range []machine.Config{
			mkCfg(machine.Static, 8, 'A'),
			mkCfg(machine.Static, 2, 'D'),
			mkCfg(machine.Dyn4, 8, 'A'),
			mkCfg(machine.Dyn256, 8, 'G'),
			mkCfg(machine.Dyn1, 1, 'C'),
		} {
			img, err := loader.Load(p, cfg, nil)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg, err)
			}
			res, err := core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: 1 << 24})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg, err)
			}
			if !bytes.Equal(res.Output, ref.Output) {
				t.Errorf("seed %d %s: checksum %v, want %v", seed, cfg, res.Output, ref.Output)
			}
			checkStatsConsistency(t, cfg, res)
		}
	}
}

// checkStatsConsistency asserts the accounting invariants every run obeys.
func checkStatsConsistency(t *testing.T, cfg machine.Config, res *core.RunResult) {
	t.Helper()
	s := res.Stats
	if s.ExecutedNodes < s.RetiredNodes {
		t.Errorf("%s: executed %d < retired %d", cfg, s.ExecutedNodes, s.RetiredNodes)
	}
	if s.ExecutedNodes < s.RetiredNodes+s.DiscardedNodes {
		t.Errorf("%s: executed %d < retired %d + discarded %d",
			cfg, s.ExecutedNodes, s.RetiredNodes, s.DiscardedNodes)
	}
	if s.BranchesCorrect > s.Branches {
		t.Errorf("%s: correct %d > branches %d", cfg, s.BranchesCorrect, s.Branches)
	}
	if acc := s.PredictionAccuracy(); acc < 0 || acc > 1 {
		t.Errorf("%s: accuracy %v out of range", cfg, acc)
	}
	if red := s.Redundancy(); red < 0 || red > 1 {
		t.Errorf("%s: redundancy %v out of range", cfg, red)
	}
	var blocks int64
	for _, c := range s.BlockSizes {
		blocks += c
	}
	if blocks != s.RetiredBlocks {
		t.Errorf("%s: histogram mass %d != retired blocks %d", cfg, blocks, s.RetiredBlocks)
	}
}

// TestConservativeMemMatchesAndIsSlower checks the disambiguation ablation:
// identical output, no faster than the run-time-disambiguated machine.
func TestConservativeMemMatchesAndIsSlower(t *testing.T) {
	p := randomProgram(7)
	ref, err := interp.Run(p, nil, nil, interp.Options{MaxNodes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	base := mkCfg(machine.Dyn4, 8, 'A')
	cons := base
	cons.ConservativeMem = true

	imgB, _ := loader.Load(p, base, nil)
	imgC, _ := loader.Load(p, cons, nil)
	rb, err := core.Run(imgB, nil, nil, nil, nil, core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := core.Run(imgC, nil, nil, nil, nil, core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb.Output, ref.Output) || !bytes.Equal(rc.Output, ref.Output) {
		t.Fatal("ablation changed program semantics")
	}
	if rc.Stats.Cycles < rb.Stats.Cycles {
		t.Errorf("conservative memory (%d cycles) beat run-time disambiguation (%d)",
			rc.Stats.Cycles, rb.Stats.Cycles)
	}
}

// TestSequentialModelNeverExceedsOneNPC: the sequential issue model retires
// at most one node per cycle by construction.
func TestSequentialModelNeverExceedsOneNPC(t *testing.T) {
	p := randomProgram(3)
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn4, machine.Dyn256} {
		img, _ := loader.Load(p, mkCfg(d, 1, 'A'), nil)
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.NPC() > 1.0001 {
			t.Errorf("%s sequential NPC = %.3f > 1", d, res.Stats.NPC())
		}
	}
}

// TestWindowOccupancyBounded: mean active blocks never exceeds the window.
func TestWindowOccupancyBounded(t *testing.T) {
	p := randomProgram(5)
	for _, d := range []machine.Discipline{machine.Dyn1, machine.Dyn4, machine.Dyn256} {
		img, _ := loader.Load(p, mkCfg(d, 8, 'A'), nil)
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Stats.MeanWindowBlocks(); got > float64(d.Window())+1e-9 {
			t.Errorf("%s: mean window %.2f exceeds %d blocks", d, got, d.Window())
		}
	}
}

// TestStoreForwardingWithinBlock: a load immediately after a store to the
// same address must see the stored value in every engine, even though the
// store has not committed.
func TestStoreForwardingWithinBlock(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	b := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 4096},
			{Op: ir.Const, Dst: 6, Imm: 77},
			{Op: ir.St, A: 5, B: 6},
			{Op: ir.Ld, Dst: 7, A: 5},
			{Op: ir.Sys, Dst: 8, A: 7, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b)
	f.Entry = 0
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn4} {
		img, _ := loader.Load(p, mkCfg(d, 8, 'A'), nil)
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) != 1 || res.Output[0] != 77 {
			t.Errorf("%s: forwarded load produced %v, want [77]", d, res.Output)
		}
	}
}

// TestPartialOverlapForwarding: a byte store overlapping a later word load
// composes correctly with memory contents in the dynamic engine.
func TestPartialOverlapForwarding(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	b := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 4096},
			{Op: ir.Const, Dst: 6, Imm: 0x11223344},
			{Op: ir.St, A: 5, B: 6},
			{Op: ir.Const, Dst: 7, Imm: 0xAB},
			{Op: ir.StB, A: 5, B: 7, Imm: 1}, // overwrite byte 1
			{Op: ir.Ld, Dst: 8, A: 5},        // expect 0x1122AB44
			{Op: ir.Const, Dst: 9, Imm: 16},
			{Op: ir.Shr, Dst: 10, A: 8, B: 9},
			{Op: ir.Sys, Dst: 11, A: 10, B: ir.NoReg, Imm: ir.SysPutc}, // 0x22
			{Op: ir.Const, Dst: 9, Imm: 8},
			{Op: ir.Shr, Dst: 10, A: 8, B: 9},
			{Op: ir.Sys, Dst: 11, A: 10, B: ir.NoReg, Imm: ir.SysPutc}, // 0xAB
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b)
	f.Entry = 0
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn4, machine.Dyn256} {
		img, _ := loader.Load(p, mkCfg(d, 8, 'A'), nil)
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) != 2 || res.Output[0] != 0x22 || res.Output[1] != 0xAB {
			t.Errorf("%s: composed load gave %x, want [22 ab]", d, res.Output)
		}
	}
}

// TestCycleLimit aborts runaway simulations.
func TestCycleLimit(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	b := &ir.Block{Term: ir.Node{Op: ir.Jmp, Target: 0}, Fall: ir.NoBlock}
	p.AddBlock(0, b) // infinite empty loop
	f.Entry = 0
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn4} {
		img, _ := loader.Load(p, mkCfg(d, 8, 'A'), nil)
		_, err := core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: 10_000})
		if _, ok := err.(*core.ErrCycleLimit); !ok {
			t.Errorf("%s: err = %v, want ErrCycleLimit", d, err)
		}
	}
}

// TestMispredictsAreCounted: an unpredictable branch pattern must show
// mispredicts and discarded work on a speculative machine.
func TestMispredictsAreCounted(t *testing.T) {
	p := randomProgram(11)
	img, _ := loader.Load(p, mkCfg(machine.Dyn256, 8, 'A'), nil)
	res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// The loop's final iteration always mispredicts under a 2-bit counter.
	if res.Stats.Mispredicts == 0 {
		t.Error("expected at least one mispredict")
	}
	if res.Stats.DiscardedNodes == 0 {
		t.Error("mispredicts should discard executed nodes")
	}
	if res.Stats.ExecutedNodes < res.Stats.RetiredNodes {
		t.Error("executed count must cover retired nodes")
	}
}
