package core

import (
	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
)

// This file holds the issue engine and the squash machinery of the dynamic
// engine: in-order issue of nodes along the predicted path into the
// instruction window, per-block checkpointing (rename table, speculative
// return stack, perfect-prediction trace cursor), and end-of-cycle
// processing of the oldest offender (mispredicted branch or assert fault).

func (e *dynamicEngine) issue() {
	if e.issueStall {
		return
	}
	memSlots, aluSlots, total := e.imem, e.ialu, e.itotal
	for total > 0 {
		if e.issueBlock == nilRef {
			if e.draining {
				// Checkpoint drain: finish the blocks in flight, open no new
				// ones; issue resumes once the window empties and the
				// snapshot is taken (checkpoint.go).
				return
			}
			if e.nextBlockID == ir.NoBlock {
				return
			}
			if e.active.len() >= e.window {
				return // window full: cannot activate another basic block
			}
			e.openBlock(e.nextBlockID)
		}
		ab := e.issueBlock
		b := e.blocks.xb[ab]
		isTerm := e.issueIdx == len(b.Body)
		var n *ir.Node
		if isTerm {
			n = &b.Term
		} else {
			n = &b.Body[e.issueIdx]
		}
		meta := e.issueMeta[e.issueIdx]
		// Strict in-order issue: when the next node's slot class is
		// exhausted, issue stops for this cycle.
		if meta&metaMem != 0 {
			if memSlots == 0 {
				return
			}
			memSlots--
		} else {
			if aluSlots == 0 {
				return
			}
			aluSlots--
		}
		total--
		e.issueNode(ab, n, meta, isTerm)
		e.issueIdx++
		if isTerm {
			e.blocks.flags[ab] |= abIssuedAll
			e.issueBlock = nilRef
			if e.blocks.flags[ab]&abWillFault != 0 {
				// Perfect mode: the chain diverges from the trace; the
				// assert fault will redirect, so fetch pauses here instead
				// of fabricating a wrong path.
				e.issueStall = true
				e.nextBlockID = ir.NoBlock
				return
			}
		}
	}
}

// openBlock activates a new basic block for issue, checkpointing the
// speculative state needed to squash back to its entry.
func (e *dynamicEngine) openBlock(id ir.BlockID) {
	if e.fill != nil {
		id = e.fillRedirect(id)
	}
	ab := e.blocks.alloc()
	bs := &e.blocks
	bs.xb[ab] = e.img.Prog.Block(id)
	bs.seq0[ab] = e.seq
	bs.rsSnap[ab] = e.rs
	bs.cursorSnap[ab] = int32(e.cursor)
	if e.pred != nil {
		bs.predSnap[ab] = e.pred.Checkpoint()
	}
	bs.renSnap[ab] = e.rename
	if e.img.Cfg.Branch == machine.Perfect {
		chain := e.img.ChainOf(id)
		match := 0
		for match < len(chain) && e.cursor+match < len(e.trace) &&
			chain[match] == e.trace[e.cursor+match] {
			match++
		}
		if match < len(chain) {
			bs.flags[ab] |= abWillFault
		}
		if match == 0 {
			match = 1 // desynced (transient wrong path): keep moving
		}
		e.cursor += match
	}
	e.active.pushBack(ab)
	e.issueBlock = ab
	e.issueIdx = 0
	e.issueMeta = e.dec.of(e.img.Prog, id)
}

// wireOperand resolves a source register against the rename table,
// returning either an immediate value or a producer link.
// wireOperand resolves operand register r for node nd (whose slot is sl —
// the arena is not grown here, so the pointer stays valid): a value if the
// producer is retired or done, else a consumer edge on the in-flight
// producer plus a pending count on nd.
func (e *dynamicEngine) wireOperand(nd nref, sl *nodeSlot, r ir.Reg) (src nref, val int32) {
	if r == ir.NoReg {
		return nilRef, 0
	}
	en := &e.rename[r]
	if en.prod == nilRef {
		return nilRef, en.val
	}
	ns := &e.nodes
	ps := &ns.d[en.prod]
	if ps.status&nsStateMask == nsDone {
		return nilRef, ps.val
	}
	ns.edges.add(&ps.consHead, nd)
	sl.pending++
	return en.prod, 0
}

func (e *dynamicEngine) issueNode(ab bref, n *ir.Node, meta uint8, isTerm bool) {
	nd := e.nodes.alloc(e.seqFloor(), e.cycle)
	sl := &e.nodes.d[nd]
	sl.n = n
	sl.op = n.Op
	sl.blk = ab
	sl.seq = e.seq
	// Recycled slots are not zeroed (nodeStore.alloc); clear the two fields
	// wireOperand and the scheduler read before this issue writes them.
	sl.status = 0
	sl.pending = 0
	e.seq++
	e.liveNodes++
	sl.srcA, sl.valA = e.wireOperand(nd, sl, n.A)
	sl.srcB, sl.valB = e.wireOperand(nd, sl, n.B)
	e.blocks.nodes[ab] = append(e.blocks.nodes[ab], nd)

	switch {
	case meta&metaStore != 0:
		e.unknownQ.pushBack(nd)
		e.blocks.stores[ab] = append(e.blocks.stores[ab], nd)
	case n.Op == ir.Assert:
		e.blocks.asserts[ab] = append(e.blocks.asserts[ab], nd)
	}
	if meta&metaHasDst != 0 {
		e.rename[n.Dst] = renEntry{prod: nd}
	}
	if isTerm {
		e.blocks.term[ab] = nd
		e.resolveTerminator(ab, nd)
	}
	if sl.pending == 0 {
		e.makeReady(nd)
	}
	e.logIssue(nd)
}

// resolveTerminator decides where issue continues after a terminator,
// predicting conditional branches (BTB or trace oracle) and tracking the
// speculative return stack.
func (e *dynamicEngine) resolveTerminator(ab bref, nd nref) {
	b := e.blocks.xb[ab]
	n := e.nodes.d[nd].n
	switch n.Op {
	case ir.Br:
		e.blocks.flags[ab] |= abTermIsBranch
		var predTaken bool
		if e.img.Cfg.Branch == machine.Perfect {
			predTaken = e.oraclePredict(b)
		} else {
			var token uint64
			predTaken, token = e.pred.Predict(b.ID)
			e.blocks.predToken[ab] = token
		}
		if predTaken {
			e.blocks.flags[ab] |= abTermPredTaken
			e.nextBlockID = n.Target
		} else {
			e.nextBlockID = b.Fall
		}
	case ir.Jmp:
		e.nextBlockID = n.Target
	case ir.Call:
		depth := 1
		if e.rs != nil {
			depth = e.rs.depth + 1
		}
		rs := e.rspool.get()
		rs.target = b.Fall
		rs.parent = e.rs
		rs.depth = depth
		e.rs = rs
		e.nextBlockID = e.img.Prog.Func(n.Callee).Entry
	case ir.Ret:
		if e.rs == nil {
			// Return with an empty speculative stack: only reachable on a
			// wrong path; pause fetch until the squash redirects.
			e.issueStall = true
			e.nextBlockID = ir.NoBlock
			return
		}
		e.nextBlockID = e.rs.target
		e.rs = e.rs.parent
	case ir.Halt:
		e.issueStall = true
		e.nextBlockID = ir.NoBlock
	}
}

// oraclePredict derives the true direction of a conditional branch from the
// recorded trace: the next original entry block to execute.
func (e *dynamicEngine) oraclePredict(b *ir.Block) bool {
	if e.cursor >= len(e.trace) {
		return false
	}
	next := e.trace[e.cursor]
	takenStart := e.img.ChainOf(b.Term.Target)[0]
	fallStart := e.img.ChainOf(b.Fall)[0]
	switch {
	case takenStart == next && fallStart != next:
		return true
	case fallStart == next && takenStart != next:
		return false
	default:
		return takenStart == next
	}
}

// ---------- squash ----------

// squashOldestOffender processes at most one control-flow violation per
// cycle: the oldest among resolved mispredicted branches and actionable
// assert faults. Oldest-first fault processing is what lets the loader
// omit asserts from fault-recovery prefix blocks.
func (e *dynamicEngine) squashOldestOffender() {
	ns := &e.nodes
	best := nilRef
	bestFault := false

	live := e.mispredicted[:0]
	for _, nd := range e.mispredicted {
		if ns.d[nd].status&(nsSquashed|nsHandled) != 0 {
			continue
		}
		live = append(live, nd)
		if best == nilRef || ns.d[nd].seq < ns.d[best].seq {
			best, bestFault = nd, false
		}
	}
	e.mispredicted = live

	liveF := e.pendingFaults[:0]
	for _, nd := range e.pendingFaults {
		if ns.d[nd].status&(nsSquashed|nsHandled) != 0 {
			continue
		}
		liveF = append(liveF, nd)
		if e.faultActionable(nd) && (best == nilRef || ns.d[nd].seq < ns.d[best].seq) {
			best, bestFault = nd, true
		}
	}
	e.pendingFaults = liveF

	if best == nilRef {
		return
	}
	ns.d[best].status |= nsHandled
	if bestFault {
		e.processFault(best)
	} else {
		// Drop the offender from the list now: its block may retire (and
		// the node be recycled) before the next cycle's sweep would have
		// removed the handled entry. (A fault offender needs no explicit
		// removal — processing squashes its own block, and squashFrom
		// already filters squashed entries out of both offender lists.)
		e.removeOffender(&e.mispredicted, best)
		e.processMispredict(best)
	}
}

func (e *dynamicEngine) removeOffender(list *[]nref, nd nref) {
	for i, o := range *list {
		if o == nd {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}

// faultActionable reports whether every older assert in the same block has
// executed (so this fault is the block's oldest divergence).
func (e *dynamicEngine) faultActionable(nd nref) bool {
	ns := &e.nodes
	seq := ns.d[nd].seq
	for _, a := range e.blocks.asserts[ns.d[nd].blk] {
		if ns.d[a].seq >= seq {
			break
		}
		if ns.state(a) != nsDone {
			return false
		}
	}
	return true
}

// restoreRename restores a checkpointed rename table, harvesting every
// completed producer it references: a snapshot may be older than the
// completion-time harvest, so without this the restored table could carry
// a done node's index past its recycling quarantine.
func (e *dynamicEngine) restoreRename(snap *[ir.NumRegs]renEntry) {
	e.rename = *snap
	ns := &e.nodes
	for r := range e.rename {
		if p := e.rename[r].prod; p != nilRef && ns.state(p) == nsDone {
			e.rename[r] = renEntry{prod: nilRef, val: ns.d[p].val}
		}
	}
}

func (e *dynamicEngine) processMispredict(nd nref) {
	ns := &e.nodes
	ab := ns.d[nd].blk
	// Find the offender's position among active blocks.
	pos := e.blockIndex(ab)
	if pos < 0 {
		return // block already gone (should not happen)
	}
	if pos+1 < e.active.len() {
		restore := e.active.at(pos + 1)
		e.restoreRename(&e.blocks.renSnap[restore])
		e.rs = e.blocks.rsSnap[restore]
		e.cursor = int(e.blocks.cursorSnap[restore])
		e.squashFrom(pos + 1)
	}
	if e.pred != nil {
		// Repair speculative history: rewind to the fetch-time state and
		// push the now-known direction.
		e.pred.Restore(e.blocks.predToken[ab])
		e.pred.Push(ns.d[nd].val != 0)
	}
	e.logOffender(PipeMispredict, nd)
	e.st.Mispredicts++
	if ns.d[nd].val != 0 {
		e.nextBlockID = ns.d[nd].n.Target
	} else {
		e.nextBlockID = e.blocks.xb[ab].Fall
	}
	e.issueBlock = nilRef
	e.issueStall = false
}

func (e *dynamicEngine) processFault(nd nref) {
	ns := &e.nodes
	ab := ns.d[nd].blk
	pos := e.blockIndex(ab)
	if pos < 0 {
		return
	}
	// A fault-injected early load in this block may have fed the assert a
	// stale value, making the divergence an artifact of the injection rather
	// than of the enlargement. Replay the block from its checkpoint instead
	// of taking the fault exit: a genuine divergence fires again on the
	// clean replay, so the retired block sequence stays identical to an
	// uninjected run's.
	if e.injLive > 0 {
		suspect, unsafe := false, false
		for _, x := range e.blocks.nodes[ab] {
			if ns.d[x].status&nsInjected != 0 {
				suspect = true
			}
			if st := ns.state(x); ns.d[x].op == ir.Sys && (st == nsExecuting || st == nsDone) {
				unsafe = true
			}
		}
		if suspect && !unsafe {
			e.injectedSquash(pos, ab)
			return
		}
	}
	e.restoreRename(&e.blocks.renSnap[ab])
	e.rs = e.blocks.rsSnap[ab]
	e.cursor = int(e.blocks.cursorSnap[ab])
	e.squashFrom(pos)
	if e.pred != nil {
		e.pred.Restore(e.blocks.predSnap[ab])
	}
	if e.fill != nil {
		e.observeFault(ab)
	}
	e.logOffender(PipeFault, nd)
	e.st.Faults++
	e.nextBlockID = ns.d[nd].n.Target
	e.issueBlock = nilRef
	e.issueStall = false
}

func (e *dynamicEngine) blockIndex(ab bref) int {
	for i := 0; i < e.active.len(); i++ {
		if e.active.at(i) == ab {
			return i
		}
	}
	return -1
}

// squashFrom discards active[from:]: their executed nodes become the
// redundant work Figure 6 measures, their write-buffer entries and
// disambiguation state vanish, and every engine-side reference to their
// nodes is unlinked eagerly (ready queues, blocked lists, offender lists,
// disambiguation queue) so the nodes can enter the recycling quarantine.
// Only the completion timeline may still reference them — its entries are
// skipped via the squashed flag, and the quarantine's cycle watermark keeps
// the nodes unreused until the wheel has provably passed them.
func (e *dynamicEngine) squashFrom(from int) {
	e.logSquash(e.active.len() - from)
	ns := &e.nodes
	firstSeq := e.blocks.seq0[e.active.at(from)]
	for i := from; i < e.active.len(); i++ {
		ab := e.active.at(i)
		e.liveNodes -= int64(len(e.blocks.nodes[ab]))
		for _, nd := range e.blocks.nodes[ab] {
			ns.d[nd].status |= nsSquashed
			if ns.d[nd].status&nsInjected != 0 {
				// An injected load squashed with its block needs no
				// retirement verification: the replay is the repair.
				ns.d[nd].status &^= nsInjected
				e.injLive--
				e.st.RepairedFaults++
			}
			st := ns.state(nd)
			if st == nsExecuting || st == nsDone {
				e.st.DiscardedNodes++
			}
			if ns.qpos[nd] != 0 {
				if ns.d[nd].op.IsMem() {
					e.readyMem.remove(ns.qpos, nd)
				} else {
					e.readyALU.remove(ns.qpos, nd)
				}
			}
			if ns.d[nd].op.IsStore() {
				e.memEpoch++ // a squashed store may have been blocking a load
				if st == nsExecuting || st == nsDone {
					e.removeWBEntries(nd)
				}
			}
		}
	}
	// Squashed stores are exactly the disambiguation queue's tail (issue
	// order); discard them.
	for e.unknownQ.len() > 0 && ns.d[e.unknownQ.back()].seq >= firstSeq {
		e.unknownQ.popBack()
	}
	e.blockedLoadGhosts += e.filterSquashed(&e.blockedLoads)
	e.filterSquashed(&e.mispredicted)
	e.filterSquashed(&e.pendingFaults)
	for i := from; i < e.active.len(); i++ {
		e.freeBlock(e.active.at(i))
	}
	e.active.truncate(from)
}

// filterSquashed drops squashed nodes from a list in place, preserving
// order, and returns how many were dropped.
func (e *dynamicEngine) filterSquashed(list *[]nref) int {
	d := e.nodes.d
	live := (*list)[:0]
	for _, nd := range *list {
		if d[nd].status&nsSquashed == 0 {
			live = append(live, nd)
		}
	}
	dropped := len(*list) - len(live)
	*list = live
	return dropped
}

func (e *dynamicEngine) removeWBEntries(snd nref) {
	ns := &e.nodes
	for _, g := range granulesOf(int64(ns.d[snd].addr), int64(ns.d[snd].msize)) {
		if g < 0 {
			continue
		}
		list := e.wb[g]
		for i, en := range list {
			if en == snd {
				e.wb[g] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}
