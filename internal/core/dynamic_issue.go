package core

import (
	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
)

// This file holds the issue engine and the squash machinery of the dynamic
// engine: in-order issue of nodes along the predicted path into the
// instruction window, per-block checkpointing (rename table, speculative
// return stack, perfect-prediction trace cursor), and end-of-cycle
// processing of the oldest offender (mispredicted branch or assert fault).

// willFault marks blocks whose chain is known (perfect mode only) to
// diverge from the recorded trace; their terminators never register
// mispredictions, since the coming fault discards the block anyway.
type issueFlags struct {
	willFault bool
}

func (e *dynamicEngine) issue() {
	if e.issueStall {
		return
	}
	memSlots, aluSlots, total := e.imem, e.ialu, e.itotal
	for total > 0 {
		if e.issueBlock == nil {
			if e.draining {
				// Checkpoint drain: finish the blocks in flight, open no new
				// ones; issue resumes once the window empties and the
				// snapshot is taken (checkpoint.go).
				return
			}
			if e.nextBlockID == ir.NoBlock {
				return
			}
			if e.active.len() >= e.window {
				return // window full: cannot activate another basic block
			}
			e.openBlock(e.nextBlockID)
		}
		ab := e.issueBlock
		b := ab.xb
		isTerm := e.issueIdx == len(b.Body)
		var n *ir.Node
		if isTerm {
			n = &b.Term
		} else {
			n = &b.Body[e.issueIdx]
		}
		// Strict in-order issue: when the next node's slot class is
		// exhausted, issue stops for this cycle.
		if n.Op.IsMem() {
			if memSlots == 0 {
				return
			}
			memSlots--
		} else {
			if aluSlots == 0 {
				return
			}
			aluSlots--
		}
		total--
		e.issueNode(ab, n, isTerm)
		e.issueIdx++
		if isTerm {
			ab.issuedAll = true
			e.issueBlock = nil
			if ab.flags.willFault {
				// Perfect mode: the chain diverges from the trace; the
				// assert fault will redirect, so fetch pauses here instead
				// of fabricating a wrong path.
				e.issueStall = true
				e.nextBlockID = ir.NoBlock
				return
			}
		}
	}
}

// openBlock activates a new basic block for issue, checkpointing the
// speculative state needed to squash back to its entry.
func (e *dynamicEngine) openBlock(id ir.BlockID) {
	if e.fill != nil {
		id = e.fillRedirect(id)
	}
	ab := e.bpool.get()
	ab.xb = e.img.Prog.Block(id)
	ab.seq0 = e.seq
	ab.rsSnap = e.rs
	ab.cursorSnap = e.cursor
	if e.pred != nil {
		ab.predSnap = e.pred.Checkpoint()
	}
	ab.renSnap = e.rename
	if e.img.Cfg.Branch == machine.Perfect {
		chain := e.img.ChainOf(id)
		match := 0
		for match < len(chain) && e.cursor+match < len(e.trace) &&
			chain[match] == e.trace[e.cursor+match] {
			match++
		}
		if match < len(chain) {
			ab.flags.willFault = true
		}
		if match == 0 {
			match = 1 // desynced (transient wrong path): keep moving
		}
		e.cursor += match
	}
	e.active.pushBack(ab)
	e.issueBlock = ab
	e.issueIdx = 0
}

// wireOperand resolves a source register against the rename table,
// returning either an immediate value or a producer link.
func (e *dynamicEngine) wireOperand(nd *dnode, r ir.Reg) (src *dnode, val int32) {
	if r == ir.NoReg {
		return nil, 0
	}
	en := &e.rename[r]
	if en.prod == nil {
		return nil, en.val
	}
	if en.prod.state == nsDone {
		return nil, en.prod.val
	}
	en.prod.consumers = append(en.prod.consumers, nd)
	nd.pendingOps++
	return en.prod, 0
}

func (e *dynamicEngine) issueNode(ab *ablock, n *ir.Node, isTerm bool) {
	nd := e.npool.get(e.seqFloor(), e.cycle)
	nd.n = n
	nd.blk = ab
	nd.seq = e.seq
	nd.idx = e.issueIdx
	e.seq++
	e.liveNodes++
	nd.srcA, nd.valA = e.wireOperand(nd, n.A)
	nd.srcB, nd.valB = e.wireOperand(nd, n.B)
	ab.nodes = append(ab.nodes, nd)

	switch {
	case n.Op.IsStore():
		e.unknownQ.pushBack(nd)
		ab.stores = append(ab.stores, nd)
	case n.Op == ir.Assert:
		ab.asserts = append(ab.asserts, nd)
	}
	if n.Op.HasDst() {
		e.rename[n.Dst] = renEntry{prod: nd}
	}
	if isTerm {
		ab.term = nd
		e.resolveTerminator(ab, nd)
	}
	if nd.pendingOps == 0 {
		e.makeReady(nd)
	}
	e.logIssue(nd)
}

// resolveTerminator decides where issue continues after a terminator,
// predicting conditional branches (BTB or trace oracle) and tracking the
// speculative return stack.
func (e *dynamicEngine) resolveTerminator(ab *ablock, nd *dnode) {
	b := ab.xb
	switch nd.n.Op {
	case ir.Br:
		nd.isBranch = true
		var predTaken bool
		if e.img.Cfg.Branch == machine.Perfect {
			predTaken = e.oraclePredict(b)
		} else {
			predTaken, nd.predToken = e.pred.Predict(b.ID)
		}
		nd.predictedTaken = predTaken
		if predTaken {
			e.nextBlockID = nd.n.Target
		} else {
			e.nextBlockID = b.Fall
		}
	case ir.Jmp:
		e.nextBlockID = nd.n.Target
	case ir.Call:
		depth := 1
		if e.rs != nil {
			depth = e.rs.depth + 1
		}
		rs := e.rspool.get()
		rs.target = b.Fall
		rs.parent = e.rs
		rs.depth = depth
		e.rs = rs
		e.nextBlockID = e.img.Prog.Func(nd.n.Callee).Entry
	case ir.Ret:
		if e.rs == nil {
			// Return with an empty speculative stack: only reachable on a
			// wrong path; pause fetch until the squash redirects.
			e.issueStall = true
			e.nextBlockID = ir.NoBlock
			return
		}
		e.nextBlockID = e.rs.target
		e.rs = e.rs.parent
	case ir.Halt:
		e.issueStall = true
		e.nextBlockID = ir.NoBlock
	}
}

// oraclePredict derives the true direction of a conditional branch from the
// recorded trace: the next original entry block to execute.
func (e *dynamicEngine) oraclePredict(b *ir.Block) bool {
	if e.cursor >= len(e.trace) {
		return false
	}
	next := e.trace[e.cursor]
	takenStart := e.img.ChainOf(b.Term.Target)[0]
	fallStart := e.img.ChainOf(b.Fall)[0]
	switch {
	case takenStart == next && fallStart != next:
		return true
	case fallStart == next && takenStart != next:
		return false
	default:
		return takenStart == next
	}
}

// ---------- squash ----------

// squashOldestOffender processes at most one control-flow violation per
// cycle: the oldest among resolved mispredicted branches and actionable
// assert faults. Oldest-first fault processing is what lets the loader
// omit asserts from fault-recovery prefix blocks.
func (e *dynamicEngine) squashOldestOffender() {
	var best *dnode
	bestFault := false

	live := e.mispredicted[:0]
	for _, nd := range e.mispredicted {
		if nd.squashed || nd.handled {
			continue
		}
		live = append(live, nd)
		if best == nil || nd.seq < best.seq {
			best, bestFault = nd, false
		}
	}
	e.mispredicted = live

	liveF := e.pendingFaults[:0]
	for _, nd := range e.pendingFaults {
		if nd.squashed || nd.handled {
			continue
		}
		liveF = append(liveF, nd)
		if e.faultActionable(nd) && (best == nil || nd.seq < best.seq) {
			best, bestFault = nd, true
		}
	}
	e.pendingFaults = liveF

	if best == nil {
		return
	}
	best.handled = true
	if bestFault {
		e.processFault(best)
	} else {
		// Drop the offender from the list now: its block may retire (and
		// the node be recycled) before the next cycle's sweep would have
		// removed the handled entry. (A fault offender needs no explicit
		// removal — processing squashes its own block, and squashFrom
		// already filters squashed entries out of both offender lists.)
		e.removeOffender(&e.mispredicted, best)
		e.processMispredict(best)
	}
}

func (e *dynamicEngine) removeOffender(list *[]*dnode, nd *dnode) {
	for i, o := range *list {
		if o == nd {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}

// faultActionable reports whether every older assert in the same block has
// executed (so this fault is the block's oldest divergence).
func (e *dynamicEngine) faultActionable(nd *dnode) bool {
	for _, a := range nd.blk.asserts {
		if a.seq >= nd.seq {
			break
		}
		if a.state != nsDone {
			return false
		}
	}
	return true
}

// restoreRename restores a checkpointed rename table, harvesting every
// completed producer it references: a snapshot may be older than the
// completion-time harvest, so without this the restored table could carry
// a done node's pointer past its recycling quarantine.
func (e *dynamicEngine) restoreRename(snap *[ir.NumRegs]renEntry) {
	e.rename = *snap
	for r := range e.rename {
		if p := e.rename[r].prod; p != nil && p.state == nsDone {
			e.rename[r] = renEntry{val: p.val}
		}
	}
}

func (e *dynamicEngine) processMispredict(nd *dnode) {
	ab := nd.blk
	// Find the offender's position among active blocks.
	pos := e.blockIndex(ab)
	if pos < 0 {
		return // block already gone (should not happen)
	}
	if pos+1 < e.active.len() {
		restore := e.active.at(pos + 1)
		e.restoreRename(&restore.renSnap)
		e.rs = restore.rsSnap
		e.cursor = restore.cursorSnap
		e.squashFrom(pos + 1)
	}
	if e.pred != nil {
		// Repair speculative history: rewind to the fetch-time state and
		// push the now-known direction.
		e.pred.Restore(nd.predToken)
		e.pred.Push(nd.val != 0)
	}
	e.logOffender(PipeMispredict, nd)
	e.st.Mispredicts++
	actual := nd.val != 0
	if actual {
		e.nextBlockID = nd.n.Target
	} else {
		e.nextBlockID = ab.xb.Fall
	}
	e.issueBlock = nil
	e.issueStall = false
}

func (e *dynamicEngine) processFault(nd *dnode) {
	ab := nd.blk
	pos := e.blockIndex(ab)
	if pos < 0 {
		return
	}
	// A fault-injected early load in this block may have fed the assert a
	// stale value, making the divergence an artifact of the injection rather
	// than of the enlargement. Replay the block from its checkpoint instead
	// of taking the fault exit: a genuine divergence fires again on the
	// clean replay, so the retired block sequence stays identical to an
	// uninjected run's.
	if e.injLive > 0 {
		suspect, unsafe := false, false
		for _, x := range ab.nodes {
			if x.injected {
				suspect = true
			}
			if x.n.Op == ir.Sys && (x.state == nsExecuting || x.state == nsDone) {
				unsafe = true
			}
		}
		if suspect && !unsafe {
			e.injectedSquash(pos, ab)
			return
		}
	}
	e.restoreRename(&ab.renSnap)
	e.rs = ab.rsSnap
	e.cursor = ab.cursorSnap
	e.squashFrom(pos)
	if e.pred != nil {
		e.pred.Restore(ab.predSnap)
	}
	if e.fill != nil {
		e.observeFault(ab)
	}
	e.logOffender(PipeFault, nd)
	e.st.Faults++
	e.nextBlockID = nd.n.Target
	e.issueBlock = nil
	e.issueStall = false
}

func (e *dynamicEngine) blockIndex(ab *ablock) int {
	for i := 0; i < e.active.len(); i++ {
		if e.active.at(i) == ab {
			return i
		}
	}
	return -1
}

// squashFrom discards active[from:]: their executed nodes become the
// redundant work Figure 6 measures, their write-buffer entries and
// disambiguation state vanish, and every engine-side reference to their
// dnodes is unlinked eagerly (ready queues, blocked lists, offender lists,
// disambiguation queue) so the nodes can enter the recycling quarantine.
// Only the completion timeline may still reference them — its entries are
// skipped via the squashed flag, and the quarantine's cycle watermark keeps
// the nodes unreused until the ring has wrapped.
func (e *dynamicEngine) squashFrom(from int) {
	e.logSquash(e.active.len() - from)
	firstSeq := e.active.at(from).seq0
	for i := from; i < e.active.len(); i++ {
		ab := e.active.at(i)
		e.liveNodes -= int64(len(ab.nodes))
		for _, nd := range ab.nodes {
			nd.squashed = true
			if nd.injected {
				// An injected load squashed with its block needs no
				// retirement verification: the replay is the repair.
				nd.injected = false
				e.injLive--
				e.st.RepairedFaults++
			}
			if nd.state == nsExecuting || nd.state == nsDone {
				e.st.DiscardedNodes++
			}
			if nd.qpos != 0 {
				if nd.n.Op.IsMem() {
					e.readyMem.remove(nd)
				} else {
					e.readyALU.remove(nd)
				}
			}
			if nd.n.Op.IsStore() {
				e.memEpoch++ // a squashed store may have been blocking a load
				if nd.state == nsExecuting || nd.state == nsDone {
					e.removeWBEntries(nd)
				}
			}
		}
	}
	// Squashed stores are exactly the disambiguation queue's tail (issue
	// order); discard them.
	for e.unknownQ.len() > 0 && e.unknownQ.back().seq >= firstSeq {
		e.unknownQ.popBack()
	}
	e.blockedLoadGhosts += filterSquashed(&e.blockedLoads)
	filterSquashed(&e.blockedSys)
	filterSquashed(&e.mispredicted)
	filterSquashed(&e.pendingFaults)
	for i := from; i < e.active.len(); i++ {
		e.freeBlock(e.active.at(i))
	}
	e.active.truncate(from)
}

// filterSquashed drops squashed nodes from a list in place, preserving
// order, and returns how many were dropped.
func filterSquashed(list *[]*dnode) int {
	live := (*list)[:0]
	for _, nd := range *list {
		if !nd.squashed {
			live = append(live, nd)
		}
	}
	dropped := len(*list) - len(live)
	*list = live
	return dropped
}

func (e *dynamicEngine) removeWBEntries(snd *dnode) {
	for _, g := range granulesOf(snd.addr, snd.memSize) {
		if g < 0 {
			continue
		}
		list := e.wb[g]
		for i, en := range list {
			if en == snd {
				e.wb[g] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}
