package core

import (
	"fmt"
	"strings"
)

// PipeLog records dynamic-engine pipeline events for the first cycles of a
// run — an observability aid for debugging machine configurations and for
// teaching what the window is doing (issue, execute, complete, retire,
// squash). Attach one through Limits.Pipe; rendering is bounded, so it is
// safe on long runs.
type PipeLog struct {
	// MaxCycles bounds recording (0 = 200 cycles).
	MaxCycles int64

	Events []PipeEvent
}

// PipeEvent is one pipeline occurrence.
type PipeEvent struct {
	Cycle int64
	Kind  PipeKind
	Seq   int64  // node sequence number (or block seq0 for block events)
	What  string // rendered node or block description
}

// PipeKind classifies pipeline events.
type PipeKind uint8

const (
	PipeIssue PipeKind = iota
	PipeExec
	PipeDone
	PipeRetire
	PipeMispredict
	PipeFault
	PipeSquash
)

func (k PipeKind) String() string {
	switch k {
	case PipeIssue:
		return "issue"
	case PipeExec:
		return "exec"
	case PipeDone:
		return "done"
	case PipeRetire:
		return "retire"
	case PipeMispredict:
		return "mispredict"
	case PipeFault:
		return "fault"
	case PipeSquash:
		return "squash"
	}
	return "?"
}

func (l *PipeLog) limit() int64 {
	if l.MaxCycles > 0 {
		return l.MaxCycles
	}
	return 200
}

func (l *PipeLog) add(cycle int64, kind PipeKind, seq int64, what string) {
	if cycle >= l.limit() {
		return
	}
	l.Events = append(l.Events, PipeEvent{Cycle: cycle, Kind: kind, Seq: seq, What: what})
}

// String renders the log grouped by cycle.
func (l *PipeLog) String() string {
	var sb strings.Builder
	last := int64(-1)
	for _, e := range l.Events {
		if e.Cycle != last {
			fmt.Fprintf(&sb, "cycle %d:\n", e.Cycle)
			last = e.Cycle
		}
		fmt.Fprintf(&sb, "  %-10s #%-5d %s\n", e.Kind, e.Seq, e.What)
	}
	return sb.String()
}

// Hooks called by the dynamic engine (no-ops when the log is nil).

func (e *dynamicEngine) logIssue(nd nref) {
	if e.pipe != nil {
		e.pipe.add(e.cycle, PipeIssue, e.nodes.d[nd].seq, e.nodes.d[nd].n.String())
	}
}

func (e *dynamicEngine) logExec(nd nref) {
	if e.pipe != nil {
		e.pipe.add(e.cycle, PipeExec, e.nodes.d[nd].seq, e.nodes.d[nd].n.String())
	}
}

func (e *dynamicEngine) logDone(nd nref) {
	if e.pipe != nil {
		e.pipe.add(e.cycle, PipeDone, e.nodes.d[nd].seq, e.nodes.d[nd].n.String())
	}
}

func (e *dynamicEngine) logRetire(ab bref) {
	if e.pipe != nil {
		e.pipe.add(e.cycle, PipeRetire, e.blocks.seq0[ab],
			fmt.Sprintf("block b%d (%d nodes)", e.blocks.xb[ab].ID, len(e.blocks.nodes[ab])))
	}
}

func (e *dynamicEngine) logOffender(kind PipeKind, nd nref) {
	if e.pipe != nil {
		e.pipe.add(e.cycle, kind, e.nodes.d[nd].seq, e.nodes.d[nd].n.String())
	}
}

func (e *dynamicEngine) logSquash(count int) {
	if e.pipe != nil && count > 0 {
		e.pipe.add(e.cycle, PipeSquash, -1, fmt.Sprintf("%d blocks discarded", count))
	}
}
