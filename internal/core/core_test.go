package core_test

import (
	"bytes"
	"testing"

	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// testProgram is a deliberately branchy, memory-heavy program: it reads
// bytes, maintains a frequency table, sorts it with insertion sort (data
// dependent branches), and emits a digest. It exercises calls, recursion,
// loops, arrays, byte and word memory traffic, and I/O.
const testSrc = `
int freq[256];
int order[256];

int weight(int c) {
	if (c >= 'a' && c <= 'z') return 2;
	if (c >= '0' && c <= '9') return 3;
	return 1;
}

int gcd(int a, int b) {
	if (b == 0) return a;
	return gcd(b, a % b);
}

void emit(int n) {
	if (n < 0) { putc('-'); n = -n; }
	if (n >= 10) emit(n / 10);
	putc('0' + n % 10);
}

int main() {
	int i;
	int c;
	int n = 0;
	int hash = 7;
	for (i = 0; i < 256; i++) { freq[i] = 0; order[i] = i; }
	c = getc(0);
	while (c >= 0) {
		freq[c & 255] += weight(c);
		hash = hash * 31 + c;
		hash = hash ^ (hash >> 7);
		n++;
		c = getc(0);
	}
	// Insertion sort of order[] by descending freq.
	for (i = 1; i < 256; i++) {
		int key = order[i];
		int j = i - 1;
		while (j >= 0 && freq[order[j]] < freq[key]) {
			order[j + 1] = order[j];
			j--;
		}
		order[j + 1] = key;
	}
	for (i = 0; i < 5; i++) {
		if (freq[order[i]] > 0) {
			putc(order[i]);
			putc(':');
			emit(freq[order[i]]);
			putc(' ');
		}
	}
	emit(n);
	putc(' ');
	emit(gcd(hash & 0x7fffffff, 360360));
	putc('\n');
	return 0;
}
`

func input(seed byte, n int) []byte {
	buf := make([]byte, n)
	x := uint32(seed) + 17
	for i := range buf {
		x = x*1664525 + 1013904223
		buf[i] = byte('a' + (x>>24)%30)
	}
	return buf
}

func TestEnginesMatchInterpreter(t *testing.T) {
	prog, err := minic.Compile("digest.mc", testSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	in1 := input(1, 1500) // profiling input
	in2 := input(9, 1500) // measurement input

	prof := interp.NewProfile()
	if _, err := interp.Run(prog, in1, nil, interp.Options{Profile: prof, MaxNodes: 100_000_000}); err != nil {
		t.Fatal(err)
	}
	ef := enlarge.Build(prog, prof, enlarge.DefaultOptions())
	if len(ef.Chains) == 0 {
		t.Fatal("enlargement produced no chains")
	}
	hints := branch.HintsFromProfile(prof.Taken, prof.NotTaken)

	ref, err := interp.Run(prog, in2, nil, interp.Options{RecordTrace: true, MaxNodes: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Output) == 0 {
		t.Fatal("reference run produced no output")
	}

	// Sanity: the enlarged program still computes the same function.
	for _, cfg := range []machine.Config{
		{Disc: machine.Dyn4, Issue: machine.IssueModels[7], Mem: machine.MemConfigs[0], Branch: machine.EnlargedBB},
	} {
		img, err := loader.Load(prog, cfg, ef)
		if err != nil {
			t.Fatal(err)
		}
		res, err := interp.Run(img.Prog, in2, nil, interp.Options{MaxNodes: 100_000_000})
		if err != nil {
			t.Fatalf("interp on enlarged program: %v", err)
		}
		if !bytes.Equal(res.Output, ref.Output) {
			t.Fatalf("enlarged program output differs:\n got %q\nwant %q", res.Output, ref.Output)
		}
	}

	var cfgs []machine.Config
	for _, d := range machine.Disciplines {
		for _, imID := range []int{1, 2, 5, 8} {
			im, _ := machine.IssueModelByID(imID)
			for _, mcID := range []byte{'A', 'C', 'D', 'G'} {
				mc, _ := machine.MemConfigByID(mcID)
				modes := []machine.BranchMode{machine.SingleBB, machine.EnlargedBB}
				if d == machine.Dyn4 || d == machine.Dyn256 {
					modes = append(modes, machine.Perfect)
				}
				for _, bm := range modes {
					cfgs = append(cfgs, machine.Config{Disc: d, Issue: im, Mem: mc, Branch: bm})
				}
			}
		}
	}

	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			img, err := loader.Load(prog, cfg, ef)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(img, in2, nil, ref.Trace, hints, core.Limits{MaxCycles: 20_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Output, ref.Output) {
				t.Fatalf("output mismatch:\n got %q\nwant %q", res.Output, ref.Output)
			}
			if res.Stats.Cycles <= 0 {
				t.Error("no cycles recorded")
			}
			if res.Stats.RetiredNodes <= 0 {
				t.Error("no nodes retired")
			}
			if res.Stats.NPC() > float64(cfg.Issue.Total()) {
				t.Errorf("NPC %.2f exceeds issue width %d", res.Stats.NPC(), cfg.Issue.Total())
			}
			if cfg.Branch == machine.Perfect && res.Stats.Mispredicts != 0 {
				t.Errorf("perfect prediction recorded %d mispredicts", res.Stats.Mispredicts)
			}
		})
	}
}

// TestPerformanceOrdering checks the qualitative relationships the paper
// reports on a wide machine: dyn-w4 >= dyn-w1 >= static (approximately),
// enlargement helps, and perfect prediction is an upper bound.
func TestPerformanceOrdering(t *testing.T) {
	prog, err := minic.Compile("digest.mc", testSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	in1 := input(3, 2000)
	in2 := input(7, 2000)
	prof := interp.NewProfile()
	if _, err := interp.Run(prog, in1, nil, interp.Options{Profile: prof, MaxNodes: 100_000_000}); err != nil {
		t.Fatal(err)
	}
	ef := enlarge.Build(prog, prof, enlarge.DefaultOptions())
	hints := branch.HintsFromProfile(prof.Taken, prof.NotTaken)
	ref, err := interp.Run(prog, in2, nil, interp.Options{RecordTrace: true, MaxNodes: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}

	im8, _ := machine.IssueModelByID(8)
	mcA, _ := machine.MemConfigByID('A')
	npc := func(d machine.Discipline, bm machine.BranchMode) float64 {
		img, err := loader.Load(prog, machine.Config{Disc: d, Issue: im8, Mem: mcA, Branch: bm}, ef)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, in2, nil, ref.Trace, hints, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.NPC()
	}

	static := npc(machine.Static, machine.SingleBB)
	w1 := npc(machine.Dyn1, machine.SingleBB)
	w4 := npc(machine.Dyn4, machine.SingleBB)
	w256 := npc(machine.Dyn256, machine.SingleBB)
	w4e := npc(machine.Dyn4, machine.EnlargedBB)
	w4p := npc(machine.Dyn4, machine.Perfect)

	t.Logf("NPC: static=%.2f w1=%.2f w4=%.2f w256=%.2f w4-enl=%.2f w4-perf=%.2f",
		static, w1, w4, w256, w4e, w4p)

	if w4 <= w1 {
		t.Errorf("window 4 (%.2f) should beat window 1 (%.2f)", w4, w1)
	}
	if w256 < w4*0.95 {
		t.Errorf("window 256 (%.2f) should not fall below window 4 (%.2f)", w256, w4)
	}
	if w4e <= w4*0.9 {
		t.Errorf("enlargement (%.2f) should help dyn-w4 (%.2f)", w4e, w4)
	}
	if w4p < w4e*0.95 {
		t.Errorf("perfect prediction (%.2f) should be an upper bound near enlarged (%.2f)", w4p, w4e)
	}
	if static > w1*1.25 {
		t.Errorf("static (%.2f) should not beat dyn-w1 (%.2f) by much", static, w1)
	}
}
