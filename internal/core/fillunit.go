package core

import (
	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
)

// The fill unit: run-time basic block enlargement, this reproduction's
// implementation of the hardware mechanism the paper references ([MeSP88]).
// Instead of a profiling run and a compiler pass, the engine itself counts
// branch arcs as blocks retire; when enough behavior has accumulated it
// plans chains with the same thresholds the software enlarger uses and asks
// the loader to materialize them into the (engine-private) program image.
// Future fetches of an enlarged entry are redirected through the image's
// entry map; blocks already in flight are unaffected, and the original
// blocks stay in place as fault-recovery and cold paths.

// fillUnit holds the engine's run-time enlargement state.
type fillUnit struct {
	prof    *interp.Profile
	pending int // retired blocks since the last chain-formation pass
	opts    enlarge.Options
	builds  int

	// Fault-directed adaptation (the paper's suggestion that "repeated
	// faults would cause branches to start with other basic blocks"):
	// entries whose enlarged blocks fault too often are torn down and
	// banned, so fetches fall back to the original code.
	entryRetires map[ir.BlockID]int64
	entryFaults  map[ir.BlockID]int64
	banned       map[ir.BlockID]bool
}

// fillRebuildPeriod is how many retired blocks accumulate between
// chain-formation passes.
const fillRebuildPeriod = 2048

// maxFillBuilds caps how many chain-formation passes run per simulation
// (behavior stabilizes quickly; this bounds the rebuild cost).
const maxFillBuilds = 32

// Fault-directed teardown thresholds: with at least fillMinSamples
// retire+fault events, an entry whose blocks fault more than
// fillMaxFaultRate of the time is de-enlarged.
const (
	fillMinSamples   = 24
	fillMaxFaultRate = 0.20
)

func newFillUnit() *fillUnit {
	return &fillUnit{
		prof:         interp.NewProfile(),
		opts:         enlarge.DefaultOptions(),
		entryRetires: make(map[ir.BlockID]int64),
		entryFaults:  make(map[ir.BlockID]int64),
		banned:       make(map[ir.BlockID]bool),
	}
}

// observeRetire feeds one retired block into the fill unit's statistics.
func (e *dynamicEngine) observeRetire(ab bref) {
	fu := e.fill
	xb := e.blocks.xb[ab]
	for _, orig := range e.img.ChainOf(xb.ID) {
		fu.prof.Blocks[orig]++
	}
	if xb.Orig != xb.ID {
		// A materialized block retired: credit its entry, and tear the
		// entry down if its fault rate proved too high.
		entry := xb.Orig
		fu.entryRetires[entry]++
		e.maybeTearDown(entry)
	}
	if term := e.blocks.term[ab]; term != nilRef && e.blocks.flags[ab]&abTermIsBranch != 0 {
		from := e.img.TermOrigOf(xb.ID)
		taken := e.nodes.d[term].val != 0
		var to ir.BlockID
		if taken {
			fu.prof.Taken[from]++
			to = e.nodes.d[term].n.Target
		} else {
			fu.prof.NotTaken[from]++
			to = xb.Fall
		}
		// In fill mode the program's targets still name original blocks.
		fu.prof.Arcs[interp.Arc{From: from, To: to}]++
	}
	fu.pending++
	if fu.pending >= fillRebuildPeriod && fu.builds < maxFillBuilds {
		fu.pending = 0
		fu.builds++
		e.formChains()
	}
}

// observeFault attributes an assert fault to its enlarged entry.
func (e *dynamicEngine) observeFault(ab bref) {
	xb := e.blocks.xb[ab]
	if e.fill == nil || xb.Orig == xb.ID {
		return
	}
	e.fill.entryFaults[xb.Orig]++
	e.maybeTearDown(xb.Orig)
}

// maybeTearDown removes an enlarged entry whose fault rate exceeds the
// threshold, banning it from re-formation.
func (e *dynamicEngine) maybeTearDown(entry ir.BlockID) {
	fu := e.fill
	if fu.banned[entry] {
		return
	}
	r, f := fu.entryRetires[entry], fu.entryFaults[entry]
	if r+f < fillMinSamples {
		return
	}
	if float64(f)/float64(r+f) > fillMaxFaultRate {
		fu.banned[entry] = true
		delete(e.img.EntryMap, entry)
	}
}

// formChains plans chains from the accumulated statistics and materializes
// the new ones.
func (e *dynamicEngine) formChains() {
	ef := enlarge.Build(e.img.Prog, e.fill.prof, e.fill.opts)
	for _, c := range ef.Chains {
		if _, done := e.img.EntryMap[c.Entry]; done {
			continue
		}
		if e.fill.banned[c.Entry] {
			continue
		}
		if len(c.Steps) < 2 {
			continue
		}
		// Materialization can only fail on malformed chains, which Build
		// does not produce; treat failure as "skip this entry".
		_, _ = e.img.AddChain(c)
	}
}

// fillRedirect maps a fetch target through the run-time entry map.
func (e *dynamicEngine) fillRedirect(id ir.BlockID) ir.BlockID {
	if enl, ok := e.img.EntryMap[id]; ok {
		return enl
	}
	return id
}
