package core

import (
	"context"

	"fgpsim/internal/branch"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/mem"
	"fgpsim/internal/stats"
)

// The dynamic engine implements HPS-style restricted dataflow: nodes are
// issued in predicted program order into an instruction window bounded by a
// number of active basic blocks, decoupled from each other through register
// renaming (producer links), and scheduled to function units the cycle
// their operands become ready. Memory addresses are disambiguated at run
// time: a load executes once every older store's address is known, reading
// memory overlaid with older write-buffer entries. Stores execute into the
// write buffer and drain to memory when their block retires. Speculation is
// checkpointed per basic block; branch mispredictions squash all younger
// blocks, and assert faults (enlarged blocks) additionally discard the
// faulting block itself and restart at its fault-to target.
//
// Every per-node and per-block structure is pool-allocated (pool.go), so a
// run allocates only during warm-up; the recycling safety argument lives
// with the pools.

type nstate uint8

const (
	nsWaiting nstate = iota
	nsReady          // in a ready queue or a blocked list
	nsExecuting
	nsDone
)

// dnode is one in-flight node.
type dnode struct {
	n     *ir.Node
	blk   *ablock
	seq   int64
	idx   int // index in block (len(body) = terminator)
	state nstate
	qpos  int32 // ready-queue heap position + 1 (0 = not queued)

	srcA, srcB *dnode // producers still relevant at issue (nil = immediate)
	valA, valB int32
	pendingOps int

	val    int32
	doneAt int64

	addr     int64 // memory effective address (valid once executing)
	memSize  int64
	squashed bool
	handled  bool // offender (mispredict/fault) already processed
	injected bool // executed early by an injected disambiguation violation

	// consumers to wake when this node's value becomes available.
	consumers []*dnode

	// Terminator bookkeeping.
	predictedTaken bool
	isBranch       bool
	predToken      uint64 // predictor state the prediction was made under
}

// renEntry is one rename-table entry: the in-flight producer of a
// register's current value, or the value itself.
type renEntry struct {
	prod *dnode
	val  int32
}

// rsNode is a persistent (immutable) speculative return stack.
type rsNode struct {
	target ir.BlockID
	parent *rsNode
	depth  int
}

// ablock is an active (issued, unretired) basic block.
type ablock struct {
	xb    *ir.Block
	seq0  int64
	nodes []*dnode
	// issuedAll is set once the terminator has been issued.
	issuedAll bool
	nDone     int

	// asserts in issue order, for oldest-first fault gating.
	asserts []*dnode
	stores  []*dnode

	// Checkpoints taken at block entry.
	renSnap    [ir.NumRegs]renEntry
	rsSnap     *rsNode
	cursorSnap int
	predSnap   uint64

	flags issueFlags
	term  *dnode
}

func (ab *ablock) complete() bool {
	return ab.issuedAll && ab.nDone == len(ab.nodes)
}

// timelineSlots sizes the completion ring; it must exceed the largest
// possible node latency (the 10-cycle cache miss).
const timelineSlots = 16

type dynamicEngine struct {
	img  *loader.Image
	env  *env
	ms   *mem.System
	pred branch.DirectionPredictor
	st   *stats.Run
	lim  Limits

	window int
	imem   int // memory ports
	ialu   int // ALU units
	itotal int // total issue/schedule cap (sequential model: 1)

	cycle int64
	seq   int64

	active abRing // active blocks, oldest first

	// Allocation pools (see pool.go).
	npool  nodePool
	bpool  blockPool
	rspool rsPool

	// Issue state.
	rename      [ir.NumRegs]renEntry
	rs          *rsNode
	issueBlock  *ablock    // block currently being issued into
	issueIdx    int        // next node index in issueBlock
	nextBlockID ir.BlockID // where issue continues once a new block opens
	issueStall  bool       // stop issuing (halt seen, empty return stack, oracle fault)

	// Perfect-prediction state.
	trace  []ir.BlockID
	cursor int

	// Ready queues by function-unit class: intrusive min-heaps on seq, so
	// the scheduler always picks the oldest ready node (pool.go).
	readyMem readyQ
	readyALU readyQ

	// Completion timeline: a ring of per-cycle completion lists — the
	// bucketed event wheel keyed by ready-cycle. Slot cycle%timelineSlots
	// holds the nodes completing at that cycle; the maximum latency (a
	// 10-cycle miss) is well below the ring size.
	timeline [timelineSlots][]*dnode

	// liveNodes counts issued, unretired nodes (window occupancy stats).
	liveNodes int64

	// Memory disambiguation state. unknownQ holds issued stores in seq
	// order; executed entries leave lazily from the front, squashed ones
	// eagerly from the back, so the head yields the minimum unknown-address
	// store seq in O(1) amortized.
	wb           map[int64][]*dnode // granule (addr>>2) -> executed stores, seq order
	unknownQ     ndRing
	blockedLoads []*dnode // loads waiting for disambiguation
	blockedSys   []*dnode // syscalls waiting to be non-speculative
	ovScratch    []*dnode // loadValue's overlap workspace

	// blockedLoadGhosts counts squashed entries removed eagerly from
	// blockedLoads at squash time. The retry gate below must still see
	// them: with lazy removal they kept the list non-empty, so a retry pass
	// would run and consume the current memEpoch even when every entry was
	// dead. Counting them preserves that retry cadence exactly (scheduling
	// order is part of the engine's contract with the figure tables).
	blockedLoadGhosts int

	// memEpoch increments whenever store state changes in a way that could
	// unblock a waiting load; blocked loads retry only then.
	memEpoch      int64
	lastLoadRetry int64

	// Offenders discovered this cycle / pending faults.
	mispredicted  []*dnode
	pendingFaults []*dnode

	// fill is the run-time enlargement state (FillUnit mode only).
	fill *fillUnit

	// pipe records pipeline events when attached via Limits.
	pipe *PipeLog

	// ctx, when non-nil, cancels the run (checked every ctxCheckPeriod
	// cycles). runErr poisons the run: the loop returns it instead of
	// continuing (bad image node, unrecoverable injected fault).
	ctx    context.Context
	runErr error

	// injLive counts in-flight injected loads (ForceMemViolation) so the
	// retire path only pays for verification when one is outstanding.
	injLive int

	// Checkpoint state (checkpoint.go). ckptArmed gates the per-cycle
	// cadence test so the checkpoint-off hot path pays one bool test;
	// draining stops issue from opening new blocks until the window empties
	// and a snapshot is taken; preempting turns that snapshot into a
	// *PreemptedError return.
	ckptArmed  bool
	ckptEvery  int64
	lastCkpt   int64
	draining   bool
	preempting bool

	finished bool
}

func newDynamicEngine(img *loader.Image, in0, in1 []byte, trace []ir.BlockID, lim Limits) *dynamicEngine {
	cfg := img.Cfg
	e := &dynamicEngine{
		img:    img,
		env:    newEnv(img.Prog, in0, in1),
		ms:     mem.New(cfg.Mem),
		st:     stats.New(),
		lim:    lim,
		window: cfg.EffectiveWindow(),
		imem:   cfg.Issue.Mem,
		ialu:   cfg.Issue.ALU,
		itotal: cfg.Issue.Total(),
		trace:  trace,
		wb:     make(map[int64][]*dnode),
	}
	if cfg.Branch != machine.Perfect {
		e.pred = e.newPredictor(nil)
	}
	if cfg.Branch == machine.FillUnit {
		e.fill = newFillUnit()
	}
	e.pipe = lim.Pipe
	e.ckptArmed = lim.checkpointArmed()
	e.ckptEvery = lim.CheckpointEvery
	for r := range e.rename {
		e.rename[r] = renEntry{val: 0}
	}
	e.rename[ir.RegSP] = renEntry{val: ir.InitialSP(img.Prog.MemSize)}
	e.nextBlockID = img.Prog.Func(img.Prog.Entry).Entry
	return e
}

// SetHints installs static branch prediction hints (keyed by original
// block IDs; the image's TermOrig mapping is applied internally).
func (e *dynamicEngine) SetHints(hints map[ir.BlockID]bool) {
	if e.pred == nil {
		return
	}
	mapped := make(map[ir.BlockID]bool, len(hints))
	for _, b := range e.img.Prog.Blocks {
		if b.Term.Op == ir.Br {
			if h, ok := hints[e.img.TermOrigOf(b.ID)]; ok {
				mapped[b.ID] = h
			}
		}
	}
	e.pred = e.newPredictor(mapped)
}

// newPredictor builds the configured direction predictor.
func (e *dynamicEngine) newPredictor(hints map[ir.BlockID]bool) branch.DirectionPredictor {
	cfg := e.img.Cfg
	if cfg.Predictor == machine.GSharePredictor {
		bits := cfg.GShareBits
		if bits == 0 {
			bits = machine.DefaultGShareBits
		}
		return branch.NewGShare(bits, hints)
	}
	entries := cfg.BTBEntries
	if entries == 0 {
		entries = machine.DefaultBTBEntries
	}
	return branch.TwoBitAdapter{BTB: branch.New(entries, hints)}
}

// seqFloor is the oldest active block's entry sequence — no reference to a
// node freed at or after it can still be held (pool.go's seq watermark).
func (e *dynamicEngine) seqFloor() int64 {
	if e.active.len() == 0 {
		return noSeqFloor
	}
	return e.active.front().seq0
}

func (e *dynamicEngine) run() (*RunResult, error) {
	maxCycles := e.lim.maxCycles()
	for !e.finished {
		if e.runErr != nil {
			return nil, e.runErr
		}
		if e.cycle > maxCycles {
			return nil, &CycleLimitError{e.cycle}
		}
		if e.cycle&(ctxCheckPeriod-1) == 0 {
			if e.lim.Heartbeat != nil {
				e.lim.Heartbeat.Add(1)
			}
			if e.ctx != nil {
				if cerr := e.ctx.Err(); cerr != nil {
					return nil, &CanceledError{Cycle: e.cycle, Err: cerr}
				}
			}
			if e.lim.Preempt != nil && e.lim.Preempt.Load() {
				// With a cadence armed, preemption waits for the next
				// cadence drain: the snapshot then lands on a boundary the
				// uninterrupted cadence run also visits, so the resumed run
				// stays bit-identical to it. Without a cadence there is no
				// such boundary to hit and the drain starts immediately.
				e.preempting = true
				if e.ckptEvery <= 0 {
					e.draining = true
				}
			}
		}
		if e.ckptArmed && e.ckptEvery > 0 && e.cycle-e.lastCkpt >= e.ckptEvery {
			// Exact cadence, checked every armed cycle: the drain point is
			// part of the run's timing identity, so it cannot ride the
			// amortized gate above (short runs would never checkpoint).
			e.draining = true
		}
		e.completions()
		e.retire()
		if e.runErr != nil {
			return nil, e.runErr
		}
		if e.finished {
			break
		}
		// A drain completes when the window is empty and issue is not
		// wedged on a wrong path: every issued block has committed, which
		// is the quiescent boundary checkpoints are defined at. This sits
		// before the fault hook so a resumed run re-enters the loop at the
		// same point the snapshot was taken and draws the identical
		// injection stream.
		if e.draining && e.active.len() == 0 && !e.issueStall {
			if err := e.checkpointNow(); err != nil {
				return nil, err
			}
		}
		// The fault hook fires at the engine's consistent point: retirement
		// is done, nothing has issued or executed yet this cycle.
		if e.lim.Fault != nil {
			e.lim.Fault(e)
			if e.runErr != nil {
				return nil, e.runErr
			}
		}
		// Issue before schedule: a node issued this cycle whose operands
		// are already available may be scheduled in the same cycle, so a
		// window-1 machine keeps pace with the statically scheduled one
		// (the paper's "does little better than static scheduling").
		e.issue()
		e.schedule()
		e.squashOldestOffender()
		e.st.WindowBlockSum += int64(e.active.len())
		e.st.WindowNodeSum += e.liveNodes
		e.cycle++
	}
	e.st.Cycles = e.cycle
	if e.ms.Cache != nil {
		e.st.CacheHits = e.ms.Cache.Hits
		e.st.CacheMisses = e.ms.Cache.Misses
	}
	return &RunResult{Output: e.env.out, Stats: e.st}, nil
}

// ---------- completion ----------

func (e *dynamicEngine) completions() {
	slot := int(e.cycle % timelineSlots)
	nodes := e.timeline[slot]
	if nodes == nil {
		return
	}
	e.timeline[slot] = nodes[:0]
	for _, nd := range nodes {
		if nd.squashed {
			continue
		}
		nd.state = nsDone
		nd.blk.nDone++
		e.logDone(nd)
		if nd.n.Op.IsStore() {
			e.memEpoch++ // conservative-mode loads wait for store completion
		}
		for _, c := range nd.consumers {
			if c.squashed {
				continue
			}
			c.pendingOps--
			if c.pendingOps == 0 && c.state == nsWaiting {
				e.makeReady(c)
			}
		}
		nd.consumers = nd.consumers[:0]
		// Harvest the rename entry: a completed producer's value is final,
		// so the table keeps the value instead of the node. This bounds how
		// long the table can reference the node — a requirement for
		// recycling it after retirement.
		if nd.n.Op.HasDst() {
			if en := &e.rename[nd.n.Dst]; en.prod == nd {
				en.prod = nil
				en.val = nd.val
			}
		}
	}
}

func (e *dynamicEngine) makeReady(nd *dnode) {
	nd.state = nsReady
	if nd.n.Op.IsMem() {
		e.readyMem.push(nd)
	} else {
		e.readyALU.push(nd)
	}
}

// ---------- retire ----------

func (e *dynamicEngine) retire() {
	for e.active.len() > 0 {
		ab := e.active.front()
		if !ab.complete() || e.hasPendingFault(ab) {
			return
		}
		if e.injLive > 0 && !e.verifyInjected(ab) {
			return // replayed from checkpoint, or the run is poisoned
		}
		// Drain the block's write-buffer entries to memory in order.
		for _, snd := range ab.stores {
			if snd.state != nsDone {
				continue
			}
			e.commitStore(snd)
		}
		size := len(ab.nodes)
		e.st.RetiredNodes += int64(size)
		e.liveNodes -= int64(size)
		e.st.RecordBlock(size)
		if ab.term != nil && ab.term.isBranch {
			actual := ab.term.val != 0
			e.st.Branches++
			if actual == ab.term.predictedTaken {
				e.st.BranchesCorrect++
			}
			if e.pred != nil {
				e.pred.Update(ab.xb.ID, actual, ab.term.predToken)
			}
		}
		if ab.term != nil && ab.term.n.Op == ir.Halt {
			e.finished = true
		}
		if e.fill != nil {
			e.observeRetire(ab)
		}
		e.logRetire(ab)
		e.active.popFront()
		// The retiring block's stores are all done, so they form the
		// disambiguation queue's front prefix; drop them now so no queue
		// entry outlives its node.
		for e.unknownQ.len() > 0 && e.unknownQ.front().state == nsDone {
			e.unknownQ.popFront()
		}
		e.freeBlock(ab)
		// Retirement may make blocked syscalls non-speculative.
		e.wakeBlockedSys()
	}
}

// freeBlock recycles a retired or squashed block and its nodes. The nodes
// enter quarantine under the current watermarks; the block itself is
// immediately reusable (pool.go).
func (e *dynamicEngine) freeBlock(ab *ablock) {
	seqWM := e.seq
	cycleWM := e.cycle + timelineSlots
	for _, nd := range ab.nodes {
		e.npool.put(nd, seqWM, cycleWM)
	}
	e.bpool.put(ab)
}

func (e *dynamicEngine) hasPendingFault(ab *ablock) bool {
	for _, a := range ab.asserts {
		if a.state == nsDone && a.faulted() {
			return true
		}
	}
	return false
}

func (nd *dnode) faulted() bool {
	return nd.n.Op == ir.Assert && (nd.val != 0) != nd.n.Expect
}

func (e *dynamicEngine) commitStore(snd *dnode) {
	for _, gr := range granulesOf(snd.addr, snd.memSize) {
		if gr < 0 {
			continue
		}
		list := e.wb[gr]
		for i, en := range list {
			if en == snd {
				e.wb[gr] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	e.env.store(int32(snd.addr), snd.memSize, snd.val)
	e.ms.StoreTouch(snd.addr)
}

// granulesOf returns the word-granules an access touches.
func granulesOf(addr, size int64) [2]int64 {
	g0 := addr >> 2
	g1 := (addr + size - 1) >> 2
	if g1 == g0 {
		g1 = -1
	}
	return [2]int64{g0, g1}
}

// ---------- scheduling / execution ----------

func (e *dynamicEngine) schedule() {
	memSlots, aluSlots, total := e.imem, e.ialu, e.itotal

	// Retry loads previously blocked on disambiguation, but only when some
	// store's state has changed since the last retry.
	if len(e.blockedLoads)+e.blockedLoadGhosts > 0 && e.memEpoch != e.lastLoadRetry {
		e.lastLoadRetry = e.memEpoch
		e.blockedLoadGhosts = 0
		retry := e.blockedLoads
		e.blockedLoads = e.blockedLoads[:0]
		for _, nd := range retry {
			if nd.squashed {
				continue
			}
			e.readyMem.push(nd)
		}
	}
	if len(e.blockedSys) > 0 {
		retry := e.blockedSys
		e.blockedSys = e.blockedSys[:0]
		for _, nd := range retry {
			if nd.squashed {
				continue
			}
			e.readyALU.push(nd)
		}
	}

	for total > 0 && memSlots > 0 && e.readyMem.len() > 0 {
		nd := e.readyMem.min()
		if nd.n.Op.IsLoad() && !e.loadCanExecute(nd) {
			e.readyMem.pop()
			e.blockedLoads = append(e.blockedLoads, nd)
			continue
		}
		e.readyMem.pop()
		e.execute(nd)
		memSlots--
		total--
	}
	for total > 0 && aluSlots > 0 && e.readyALU.len() > 0 {
		nd := e.readyALU.min()
		if nd.n.Op == ir.Sys && !e.sysCanExecute(nd) {
			e.readyALU.pop()
			e.blockedSys = append(e.blockedSys, nd)
			continue
		}
		e.readyALU.pop()
		e.execute(nd)
		aluSlots--
		total--
	}
}

// minUnknownStoreSeq returns the sequence number of the oldest issued store
// whose address is still unknown, popping finished entries off the queue.
// (Squashed entries never appear: squashFrom discards them eagerly.)
func (e *dynamicEngine) minUnknownStoreSeq() int64 {
	for e.unknownQ.len() > 0 {
		h := e.unknownQ.front()
		if h.state != nsWaiting && h.state != nsReady {
			e.unknownQ.popFront()
			continue
		}
		return h.seq
	}
	return 1 << 62
}

// loadCanExecute checks run-time memory disambiguation: every older store
// must have a known address. Under the ConservativeMem ablation the load
// additionally waits for every older in-flight store to have executed,
// modeling a machine without run-time disambiguation hardware.
func (e *dynamicEngine) loadCanExecute(nd *dnode) bool {
	if e.minUnknownStoreSeq() < nd.seq {
		return false
	}
	if e.img.Cfg.ConservativeMem {
		for i := 0; i < e.active.len(); i++ {
			ab := e.active.at(i)
			if ab.seq0 > nd.seq {
				break
			}
			for _, snd := range ab.stores {
				if snd.seq < nd.seq && snd.state != nsDone {
					return false
				}
			}
		}
	}
	return true
}

// sysCanExecute: system calls execute only when non-speculative — the block
// is the oldest active one and everything older inside it has executed.
func (e *dynamicEngine) sysCanExecute(nd *dnode) bool {
	if e.active.len() == 0 || e.active.front() != nd.blk {
		return false
	}
	for _, other := range nd.blk.nodes {
		if other.seq >= nd.seq {
			break
		}
		if other.state != nsDone {
			return false
		}
		if other.faulted() {
			return false // the fault will discard this block
		}
	}
	return true
}

func (e *dynamicEngine) operand(src *dnode, imm int32) int32 {
	if src == nil {
		return imm
	}
	return src.val
}

func (e *dynamicEngine) execute(nd *dnode) {
	nd.state = nsExecuting
	e.st.ExecutedNodes++
	e.logExec(nd)
	a := e.operand(nd.srcA, nd.valA)
	b := e.operand(nd.srcB, nd.valB)
	lat := int64(1)
	op := nd.n.Op

	switch {
	case op.IsPure():
		v, aerr := ir.EvalALU(op, a, b, nd.n.Imm)
		if aerr != nil && e.runErr == nil {
			e.runErr = aerr
		}
		nd.val = v

	case op.IsLoad():
		nd.memSize = sizeOf(op)
		nd.addr = e.env.clampAddr(a+int32(nd.n.Imm), nd.memSize)
		val, forwarded := e.loadValue(nd)
		nd.val = val
		if forwarded {
			lat = mem.ForwardLatency
		} else {
			lat = int64(e.ms.LoadLatency(nd.addr))
		}

	case op.IsStore():
		nd.memSize = sizeOf(op)
		nd.addr = e.env.clampAddr(a+int32(nd.n.Imm), nd.memSize)
		nd.val = b
		e.memEpoch++
		for _, g := range granulesOf(nd.addr, nd.memSize) {
			if g >= 0 {
				e.wb[g] = insertBySeq(e.wb[g], nd)
			}
		}
		// A newly known store address may unblock younger loads.
		// (They are rechecked at the top of the next schedule phase.)

	case op == ir.Sys:
		nd.val = e.env.syscall(nd.n.Imm, a, b)

	case op == ir.Assert:
		nd.val = a
		if (nd.val != 0) != nd.n.Expect {
			e.pendingFaults = append(e.pendingFaults, nd)
		}

	case op == ir.Br:
		nd.val = a
		actual := a != 0
		if actual != nd.predictedTaken && !nd.blk.flags.willFault {
			// A will-fault block's terminator never redirects fetch: the
			// assert fault discards the whole block anyway.
			e.mispredicted = append(e.mispredicted, nd)
		}

	default: // Jmp, Call, Ret, Halt: control already handled at issue
		nd.val = 0
	}

	nd.doneAt = e.cycle + lat
	slot := int(nd.doneAt % timelineSlots)
	e.timeline[slot] = append(e.timeline[slot], nd)
}

func insertBySeq(list []*dnode, snd *dnode) []*dnode {
	i := len(list)
	for i > 0 && list[i-1].seq > snd.seq {
		i--
	}
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = snd
	return list
}

// loadValue reads memory as of this load's position in program order:
// memory contents overlaid with all older write-buffer entries, oldest
// first. It reports whether any write-buffer entry contributed (store
// forwarding).
func (e *dynamicEngine) loadValue(nd *dnode) (int32, bool) {
	var bytes [4]byte
	size := nd.memSize
	base := e.env.load(int32(nd.addr), size)
	bytes[0] = byte(base)
	bytes[1] = byte(base >> 8)
	bytes[2] = byte(base >> 16)
	bytes[3] = byte(base >> 24)

	// Collect older overlapping stores. A store spanning both of the
	// load's granules appears in both granule lists; it is taken from the
	// list of its own first granule (gs[0], necessarily) and skipped in the
	// second, so each store contributes once.
	gs := granulesOf(nd.addr, size)
	overlaps := e.ovScratch[:0]
	for gi, g := range gs {
		if g < 0 {
			continue
		}
		for _, snd := range e.wb[g] {
			if snd.seq >= nd.seq || snd.squashed {
				continue
			}
			if gi == 1 && snd.addr>>2 == gs[0] {
				continue
			}
			overlaps = append(overlaps, snd)
		}
	}
	// Apply in seq order (wb lists are sorted; merging two granules needs
	// a stable order).
	for i := 1; i < len(overlaps); i++ {
		for j := i; j > 0 && overlaps[j].seq < overlaps[j-1].seq; j-- {
			overlaps[j], overlaps[j-1] = overlaps[j-1], overlaps[j]
		}
	}
	forwarded := false
	for _, snd := range overlaps {
		lo := snd.addr
		hi := snd.addr + snd.memSize
		for i := int64(0); i < size; i++ {
			p := nd.addr + i
			if p >= lo && p < hi {
				bytes[i] = byte(snd.val >> (8 * (p - lo)))
				forwarded = true
			}
		}
	}
	e.ovScratch = overlaps
	v := int32(bytes[0])
	if size == 4 {
		v |= int32(bytes[1])<<8 | int32(bytes[2])<<16 | int32(bytes[3])<<24
	}
	return v, forwarded
}

// wakeBlockedSys re-queues blocked system calls after retirement events.
func (e *dynamicEngine) wakeBlockedSys() {
	if len(e.blockedSys) == 0 {
		return
	}
	retry := e.blockedSys
	e.blockedSys = e.blockedSys[:0]
	for _, nd := range retry {
		if nd.squashed {
			continue
		}
		e.readyALU.push(nd)
	}
}
