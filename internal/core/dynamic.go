package core

import (
	"context"

	"fgpsim/internal/branch"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/mem"
	"fgpsim/internal/stats"
)

// The dynamic engine implements HPS-style restricted dataflow: nodes are
// issued in predicted program order into an instruction window bounded by a
// number of active basic blocks, decoupled from each other through register
// renaming (producer links), and scheduled to function units the cycle
// their operands become ready. Memory addresses are disambiguated at run
// time: a load executes once every older store's address is known, reading
// memory overlaid with older write-buffer entries. Stores execute into the
// write buffer and drain to memory when their block retires. Speculation is
// checkpointed per basic block; branch mispredictions squash all younger
// blocks, and assert faults (enlarged blocks) additionally discard the
// faulting block itself and restart at its fault-to target.
//
// In-flight state lives in structure-of-arrays stores (soa.go): a node is
// an int32 index whose fields are columns of parallel slices, so the
// per-cycle loops scan contiguous status and sequence arrays instead of
// chasing pointers, and a run allocates only while its working set grows.
// The recycling safety argument lives with the stores.

type dynamicEngine struct {
	img  *loader.Image
	env  *env
	ms   *mem.System
	pred branch.DirectionPredictor
	st   *stats.Run
	lim  Limits

	window int
	imem   int // memory ports
	ialu   int // ALU units
	itotal int // total issue/schedule cap (sequential model: 1)

	cycle int64
	seq   int64

	active abRing // active blocks, oldest first

	// Structure-of-arrays stores (soa.go) and the shared decode table.
	nodes  nodeStore
	blocks blockStore
	rspool rsPool
	dec    *decTable

	// Issue state.
	rename      [ir.NumRegs]renEntry
	rs          *rsNode
	issueBlock  bref       // block currently being issued into (nilRef = none)
	issueIdx    int        // next node index in issueBlock
	issueMeta   []uint8    // issueBlock's decoded metadata
	nextBlockID ir.BlockID // where issue continues once a new block opens
	issueStall  bool       // stop issuing (halt seen, empty return stack, oracle fault)

	// Perfect-prediction state.
	trace  []ir.BlockID
	cursor int

	// Ready queues by function-unit class: intrusive min-heaps on seq, so
	// the scheduler always picks the oldest ready node (soa.go).
	readyMem readyQ
	readyALU readyQ

	// Completion timeline: the bucketed event wheel keyed by ready-cycle,
	// with an overflow list guarding against latencies at or beyond the
	// ring's span (soa.go).
	wheel eventWheel

	// liveNodes counts issued, unretired nodes (window occupancy stats).
	liveNodes int64

	// Memory disambiguation state. unknownQ holds issued stores in seq
	// order; executed entries leave lazily from the front, squashed ones
	// eagerly from the back, so the head yields the minimum unknown-address
	// store seq in O(1) amortized.
	wb           map[int64][]nref // granule (addr>>2) -> executed stores, seq order
	unknownQ     ndRing
	blockedLoads []nref // loads waiting for disambiguation
	ovScratch    []nref // loadValue's overlap workspace

	// blockedLoadGhosts counts squashed entries removed eagerly from
	// blockedLoads at squash time. The retry gate below must still see
	// them: with lazy removal they kept the list non-empty, so a retry pass
	// would run and consume the current memEpoch even when every entry was
	// dead. Counting them preserves that retry cadence exactly (scheduling
	// order is part of the engine's contract with the figure tables).
	blockedLoadGhosts int

	// memEpoch increments whenever store state changes in a way that could
	// unblock a waiting load; blocked loads retry only then.
	memEpoch      int64
	lastLoadRetry int64

	// Offenders discovered this cycle / pending faults.
	mispredicted  []nref
	pendingFaults []nref

	// fill is the run-time enlargement state (FillUnit mode only).
	fill *fillUnit

	// pipe records pipeline events when attached via Limits.
	pipe *PipeLog

	// ctx, when non-nil, cancels the run (checked every ctxCheckPeriod
	// cycles). runErr poisons the run: the loop returns it instead of
	// continuing (bad image node, unrecoverable injected fault).
	ctx    context.Context
	runErr error

	// injLive counts in-flight injected loads (ForceMemViolation) so the
	// retire path only pays for verification when one is outstanding.
	injLive int

	// Checkpoint state (checkpoint.go). ckptArmed gates the per-cycle
	// cadence test so the checkpoint-off hot path pays one bool test;
	// draining stops issue from opening new blocks until the window empties
	// and a snapshot is taken; preempting turns that snapshot into a
	// *PreemptedError return.
	ckptArmed  bool
	ckptEvery  int64
	lastCkpt   int64
	draining   bool
	preempting bool

	finished bool
}

func newDynamicEngine(img *loader.Image, in0, in1 []byte, trace []ir.BlockID, lim Limits) *dynamicEngine {
	cfg := img.Cfg
	e := &dynamicEngine{
		img:        img,
		env:        newEnv(img.Prog, in0, in1),
		ms:         mem.New(cfg.Mem),
		st:         stats.New(),
		lim:        lim,
		window:     cfg.EffectiveWindow(),
		imem:       cfg.Issue.Mem,
		ialu:       cfg.Issue.ALU,
		itotal:     cfg.Issue.Total(),
		trace:      trace,
		wb:         make(map[int64][]nref),
		dec:        &decTable{},
		issueBlock: nilRef,
	}
	e.nodes.edges = newEdgeArena()
	if cfg.Branch != machine.Perfect {
		e.pred = e.newPredictor(nil)
	}
	if cfg.Branch == machine.FillUnit {
		e.fill = newFillUnit()
	}
	e.pipe = lim.Pipe
	e.ckptArmed = lim.checkpointArmed()
	e.ckptEvery = lim.CheckpointEvery
	for r := range e.rename {
		e.rename[r] = renEntry{prod: nilRef, val: 0}
	}
	e.rename[ir.RegSP] = renEntry{prod: nilRef, val: ir.InitialSP(img.Prog.MemSize)}
	e.nextBlockID = img.Prog.Func(img.Prog.Entry).Entry
	return e
}

// SetHints installs static branch prediction hints (keyed by original
// block IDs; the image's TermOrig mapping is applied internally).
func (e *dynamicEngine) SetHints(hints map[ir.BlockID]bool) {
	if e.pred == nil {
		return
	}
	e.SetMappedHints(mapHints(e.img, hints))
}

// mapHints translates hint keys from original block IDs to the image's
// block IDs. Batched runs compute this once per shared image (batch.go).
func mapHints(img *loader.Image, hints map[ir.BlockID]bool) map[ir.BlockID]bool {
	mapped := make(map[ir.BlockID]bool, len(hints))
	for _, b := range img.Prog.Blocks {
		if b.Term.Op == ir.Br {
			if h, ok := hints[img.TermOrigOf(b.ID)]; ok {
				mapped[b.ID] = h
			}
		}
	}
	return mapped
}

// SetMappedHints installs hints already keyed by image block IDs.
func (e *dynamicEngine) SetMappedHints(mapped map[ir.BlockID]bool) {
	if e.pred == nil {
		return
	}
	e.pred = e.newPredictor(mapped)
}

// newPredictor builds the configured direction predictor.
func (e *dynamicEngine) newPredictor(hints map[ir.BlockID]bool) branch.DirectionPredictor {
	cfg := e.img.Cfg
	if cfg.Predictor == machine.GSharePredictor {
		bits := cfg.GShareBits
		if bits == 0 {
			bits = machine.DefaultGShareBits
		}
		return branch.NewGShare(bits, hints)
	}
	entries := cfg.BTBEntries
	if entries == 0 {
		entries = machine.DefaultBTBEntries
	}
	return branch.TwoBitAdapter{BTB: branch.New(entries, hints)}
}

// seqFloor is the oldest active block's entry sequence — no reference to a
// node freed at or after it can still be held (soa.go's seq watermark).
func (e *dynamicEngine) seqFloor() int64 {
	if e.active.len() == 0 {
		return noSeqFloor
	}
	return e.blocks.seq0[e.active.front()]
}

// stepCycles advances the engine by at most budget cycles, returning
// whether the program finished. It is the per-cycle loop run() iterates
// and the granularity batched runs interleave lanes at (batch.go).
func (e *dynamicEngine) stepCycles(budget int64) (bool, error) {
	maxCycles := e.lim.maxCycles()
	for budget > 0 && !e.finished {
		budget--
		if e.runErr != nil {
			return false, e.runErr
		}
		if e.cycle > maxCycles {
			return false, &CycleLimitError{e.cycle}
		}
		if e.cycle&(ctxCheckPeriod-1) == 0 {
			if e.lim.Heartbeat != nil {
				e.lim.Heartbeat.Add(1)
			}
			if e.ctx != nil {
				if cerr := e.ctx.Err(); cerr != nil {
					return false, &CanceledError{Cycle: e.cycle, Err: cerr}
				}
			}
			if e.lim.Preempt != nil && e.lim.Preempt.Load() {
				// With a cadence armed, preemption waits for the next
				// cadence drain: the snapshot then lands on a boundary the
				// uninterrupted cadence run also visits, so the resumed run
				// stays bit-identical to it. Without a cadence there is no
				// such boundary to hit and the drain starts immediately.
				e.preempting = true
				if e.ckptEvery <= 0 {
					e.draining = true
				}
			}
		}
		if e.ckptArmed && e.ckptEvery > 0 && e.cycle-e.lastCkpt >= e.ckptEvery {
			// Exact cadence, checked every armed cycle: the drain point is
			// part of the run's timing identity, so it cannot ride the
			// amortized gate above (short runs would never checkpoint).
			e.draining = true
		}
		e.completions()
		e.retire()
		if e.runErr != nil {
			return false, e.runErr
		}
		if e.finished {
			break
		}
		// A drain completes when the window is empty and issue is not
		// wedged on a wrong path: every issued block has committed, which
		// is the quiescent boundary checkpoints are defined at. This sits
		// before the fault hook so a resumed run re-enters the loop at the
		// same point the snapshot was taken and draws the identical
		// injection stream.
		if e.draining && e.active.len() == 0 && !e.issueStall {
			if err := e.checkpointNow(); err != nil {
				return false, err
			}
		}
		// The fault hook fires at the engine's consistent point: retirement
		// is done, nothing has issued or executed yet this cycle.
		if e.lim.Fault != nil {
			e.lim.Fault(e)
			if e.runErr != nil {
				return false, e.runErr
			}
		}
		// Issue before schedule: a node issued this cycle whose operands
		// are already available may be scheduled in the same cycle, so a
		// window-1 machine keeps pace with the statically scheduled one
		// (the paper's "does little better than static scheduling").
		e.issue()
		e.schedule()
		e.squashOldestOffender()
		e.st.WindowBlockSum += int64(e.active.len())
		e.st.WindowNodeSum += e.liveNodes
		e.cycle++
	}
	return e.finished, nil
}

// result finalizes the statistics once the program has halted.
func (e *dynamicEngine) result() *RunResult {
	e.st.Cycles = e.cycle
	if e.ms.Cache != nil {
		e.st.CacheHits = e.ms.Cache.Hits
		e.st.CacheMisses = e.ms.Cache.Misses
	}
	return &RunResult{Output: e.env.out, Stats: e.st}
}

func (e *dynamicEngine) run() (*RunResult, error) {
	for {
		done, err := e.stepCycles(1 << 62)
		if err != nil {
			return nil, err
		}
		if done {
			return e.result(), nil
		}
	}
}

// ---------- completion ----------

func (e *dynamicEngine) completions() {
	nodes := e.wheel.take(e.cycle)
	if len(nodes) == 0 {
		return
	}
	ns := &e.nodes
	for _, nd := range nodes {
		if ns.d[nd].status&nsSquashed != 0 {
			continue
		}
		ns.setState(nd, nsDone)
		e.blocks.nDone[ns.d[nd].blk]++
		e.logDone(nd)
		op := ns.d[nd].op
		if op.IsStore() {
			e.memEpoch++ // conservative-mode loads wait for store completion
		}
		// Wake consumers, then release the edge list back to the arena.
		for i := ns.d[nd].consHead; i != nilRef; i = ns.edges.next[i] {
			c := ns.edges.to[i]
			if ns.d[c].status&nsSquashed != 0 {
				continue
			}
			ns.d[c].pending--
			if ns.d[c].pending == 0 && ns.state(c) == nsWaiting {
				e.makeReady(c)
			}
		}
		ns.edges.freeList(&ns.d[nd].consHead)
		// Harvest the rename entry: a completed producer's value is final,
		// so the table keeps the value instead of the node. This bounds how
		// long the table can reference the node — a requirement for
		// recycling it after retirement.
		if op.HasDst() {
			if en := &e.rename[ns.d[nd].n.Dst]; en.prod == nd {
				en.prod = nilRef
				en.val = ns.d[nd].val
			}
		}
	}
}

func (e *dynamicEngine) makeReady(nd nref) {
	ns := &e.nodes
	ns.setState(nd, nsReady)
	if ns.d[nd].op.IsMem() {
		e.readyMem.push(ns.qpos, ns.d[nd].seq, nd)
	} else {
		e.readyALU.push(ns.qpos, ns.d[nd].seq, nd)
	}
}

// ---------- retire ----------

func (e *dynamicEngine) retire() {
	ns := &e.nodes
	for e.active.len() > 0 {
		ab := e.active.front()
		if !e.blocks.complete(ab) || e.hasPendingFault(ab) {
			return
		}
		if e.injLive > 0 && !e.verifyInjected(ab) {
			return // replayed from checkpoint, or the run is poisoned
		}
		// Drain the block's write-buffer entries to memory in order.
		for _, snd := range e.blocks.stores[ab] {
			if ns.state(snd) != nsDone {
				continue
			}
			e.commitStore(snd)
		}
		size := len(e.blocks.nodes[ab])
		e.st.RetiredNodes += int64(size)
		e.liveNodes -= int64(size)
		e.st.RecordBlock(size)
		term := e.blocks.term[ab]
		flags := e.blocks.flags[ab]
		if term != nilRef && flags&abTermIsBranch != 0 {
			actual := ns.d[term].val != 0
			e.st.Branches++
			if actual == (flags&abTermPredTaken != 0) {
				e.st.BranchesCorrect++
			}
			if e.pred != nil {
				e.pred.Update(e.blocks.xb[ab].ID, actual, e.blocks.predToken[ab])
			}
		}
		if term != nilRef && ns.d[term].op == ir.Halt {
			e.finished = true
		}
		if e.fill != nil {
			e.observeRetire(ab)
		}
		e.logRetire(ab)
		e.active.popFront()
		// The retiring block's stores are all done, so they form the
		// disambiguation queue's front prefix; drop them now so no queue
		// entry outlives its node.
		for e.unknownQ.len() > 0 && ns.state(e.unknownQ.front()) == nsDone {
			e.unknownQ.popFront()
		}
		e.freeBlock(ab)
		// Retirement may make blocked syscalls non-speculative; the
		// scheduler's merged pop loop reconsiders them next cycle without
		// any re-queuing here.
	}
}

// freeBlock recycles a retired or squashed block and its nodes. The nodes
// enter quarantine under the current watermarks; the block itself is
// immediately reusable (soa.go).
func (e *dynamicEngine) freeBlock(ab bref) {
	seqWM := e.seq
	cycleWM := e.cycle + timelineSlots
	for _, nd := range e.blocks.nodes[ab] {
		wm := cycleWM
		if d := e.nodes.d[nd].doneAt + 1; d > wm {
			wm = d // overflow-wheel entries outlive the ring's span
		}
		e.nodes.put(nd, seqWM, wm)
	}
	e.blocks.put(ab)
}

func (e *dynamicEngine) hasPendingFault(ab bref) bool {
	ns := &e.nodes
	for _, a := range e.blocks.asserts[ab] {
		if ns.state(a) == nsDone && ns.faulted(a) {
			return true
		}
	}
	return false
}

func (e *dynamicEngine) commitStore(snd nref) {
	ns := &e.nodes
	for _, gr := range granulesOf(int64(ns.d[snd].addr), int64(ns.d[snd].msize)) {
		if gr < 0 {
			continue
		}
		list := e.wb[gr]
		for i, en := range list {
			if en == snd {
				e.wb[gr] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	e.env.store(int32(ns.d[snd].addr), int64(ns.d[snd].msize), ns.d[snd].val)
	e.ms.StoreTouch(int64(ns.d[snd].addr))
}

// granulesOf returns the word-granules an access touches.
func granulesOf(addr, size int64) [2]int64 {
	g0 := addr >> 2
	g1 := (addr + size - 1) >> 2
	if g1 == g0 {
		g1 = -1
	}
	return [2]int64{g0, g1}
}

// ---------- scheduling / execution ----------

func (e *dynamicEngine) schedule() {
	ns := &e.nodes
	memSlots, aluSlots, total := e.imem, e.ialu, e.itotal

	// Retry loads previously blocked on disambiguation, but only when some
	// store's state has changed since the last retry.
	if len(e.blockedLoads)+e.blockedLoadGhosts > 0 && e.memEpoch != e.lastLoadRetry {
		e.lastLoadRetry = e.memEpoch
		e.blockedLoadGhosts = 0
		retry := e.blockedLoads
		e.blockedLoads = e.blockedLoads[:0]
		for _, nd := range retry {
			if ns.d[nd].status&nsSquashed != 0 {
				continue
			}
			e.readyMem.push(ns.qpos, ns.d[nd].seq, nd)
		}
	}

	for total > 0 && memSlots > 0 && e.readyMem.len() > 0 {
		nd := e.readyMem.minRef()
		if ns.d[nd].op.IsLoad() && !e.loadCanExecute(nd) {
			e.readyMem.pop(ns.qpos)
			e.blockedLoads = append(e.blockedLoads, nd)
			continue
		}
		e.readyMem.pop(ns.qpos)
		e.execute(nd)
		memSlots--
		total--
	}

	// Syscalls can only execute from the front block with every older
	// in-block node done, so deferred ones park on their own block (the
	// blocks.sys list) rather than churning through the heap or a global
	// side list every cycle. Only the front block's parked syscalls can have
	// become eligible, so only those re-enter the heap; parked lists on
	// younger blocks wait until their block reaches the front, and lists on
	// squashed blocks die with the block slot. Eligibility cannot change
	// mid-schedule (it requires older nodes *done*, and completions run
	// before schedule), so the executed set and order match the
	// check-every-candidate scheme exactly.
	if e.active.len() > 0 {
		front := e.active.front()
		if parked := e.blocks.sys[front]; len(parked) > 0 {
			for _, nd := range parked {
				e.readyALU.push(ns.qpos, ns.d[nd].seq, nd)
			}
			e.blocks.sys[front] = parked[:0]
		}
	}
	for total > 0 && aluSlots > 0 && e.readyALU.len() > 0 {
		nd := e.readyALU.minRef()
		e.readyALU.pop(ns.qpos)
		if ns.d[nd].op == ir.Sys && !e.sysCanExecute(nd) {
			blk := ns.d[nd].blk
			e.blocks.sys[blk] = append(e.blocks.sys[blk], nd)
			continue
		}
		e.execute(nd)
		aluSlots--
		total--
	}
}

// minUnknownStoreSeq returns the sequence number of the oldest issued store
// whose address is still unknown, popping finished entries off the queue.
// (Squashed entries never appear: squashFrom discards them eagerly.)
func (e *dynamicEngine) minUnknownStoreSeq() int64 {
	ns := &e.nodes
	for e.unknownQ.len() > 0 {
		h := e.unknownQ.front()
		if st := ns.state(h); st != nsWaiting && st != nsReady {
			e.unknownQ.popFront()
			continue
		}
		return ns.d[h].seq
	}
	return 1 << 62
}

// loadCanExecute checks run-time memory disambiguation: every older store
// must have a known address. Under the ConservativeMem ablation the load
// additionally waits for every older in-flight store to have executed,
// modeling a machine without run-time disambiguation hardware.
func (e *dynamicEngine) loadCanExecute(nd nref) bool {
	ns := &e.nodes
	seq := ns.d[nd].seq
	if e.minUnknownStoreSeq() < seq {
		return false
	}
	if e.img.Cfg.ConservativeMem {
		for i := 0; i < e.active.len(); i++ {
			ab := e.active.at(i)
			if e.blocks.seq0[ab] > seq {
				break
			}
			for _, snd := range e.blocks.stores[ab] {
				if ns.d[snd].seq < seq && ns.state(snd) != nsDone {
					return false
				}
			}
		}
	}
	return true
}

// sysCanExecute: system calls execute only when non-speculative — the block
// is the oldest active one and everything older inside it has executed.
func (e *dynamicEngine) sysCanExecute(nd nref) bool {
	ns := &e.nodes
	blk := ns.d[nd].blk
	if e.active.len() == 0 || e.active.front() != blk {
		return false
	}
	seq := ns.d[nd].seq
	for _, other := range e.blocks.nodes[blk] {
		if ns.d[other].seq >= seq {
			break
		}
		if ns.state(other) != nsDone {
			return false
		}
		if ns.faulted(other) {
			return false // the fault will discard this block
		}
	}
	return true
}

func (e *dynamicEngine) operand(src nref, imm int32) int32 {
	if src == nilRef {
		return imm
	}
	return e.nodes.d[src].val
}

func (e *dynamicEngine) execute(nd nref) {
	ns := &e.nodes
	ns.setState(nd, nsExecuting)
	e.st.ExecutedNodes++
	e.logExec(nd)
	a := e.operand(ns.d[nd].srcA, ns.d[nd].valA)
	b := e.operand(ns.d[nd].srcB, ns.d[nd].valB)
	lat := int64(1)
	op := ns.d[nd].op
	n := ns.d[nd].n

	switch {
	case op.IsPure():
		v, aerr := ir.EvalALU(op, a, b, n.Imm)
		if aerr != nil && e.runErr == nil {
			e.runErr = aerr
		}
		ns.d[nd].val = v

	case op.IsLoad():
		size := sizeOf(op)
		ns.d[nd].msize = int8(size)
		ns.d[nd].addr = uint32(e.env.clampAddr(a+int32(n.Imm), size))
		val, forwarded := e.loadValue(nd)
		ns.d[nd].val = val
		if forwarded {
			lat = mem.ForwardLatency
		} else {
			lat = int64(e.ms.LoadLatency(int64(ns.d[nd].addr)))
		}

	case op.IsStore():
		size := sizeOf(op)
		ns.d[nd].msize = int8(size)
		ns.d[nd].addr = uint32(e.env.clampAddr(a+int32(n.Imm), size))
		ns.d[nd].val = b
		e.memEpoch++
		for _, g := range granulesOf(int64(ns.d[nd].addr), size) {
			if g >= 0 {
				e.wb[g] = e.insertBySeq(e.wb[g], nd)
			}
		}
		// A newly known store address may unblock younger loads.
		// (They are rechecked at the top of the next schedule phase.)

	case op == ir.Sys:
		ns.d[nd].val = e.env.syscall(n.Imm, a, b)

	case op == ir.Assert:
		ns.d[nd].val = a
		if (a != 0) != n.Expect {
			e.pendingFaults = append(e.pendingFaults, nd)
		}

	case op == ir.Br:
		ns.d[nd].val = a
		actual := a != 0
		flags := e.blocks.flags[ns.d[nd].blk]
		if actual != (flags&abTermPredTaken != 0) && flags&abWillFault == 0 {
			// A will-fault block's terminator never redirects fetch: the
			// assert fault discards the whole block anyway.
			e.mispredicted = append(e.mispredicted, nd)
		}

	default: // Jmp, Call, Ret, Halt: control already handled at issue
		ns.d[nd].val = 0
	}

	doneAt := e.cycle + lat
	ns.d[nd].doneAt = doneAt
	e.wheel.add(nd, doneAt, e.cycle)
}

func (e *dynamicEngine) insertBySeq(list []nref, snd nref) []nref {
	d := e.nodes.d
	seq := d[snd].seq
	i := len(list)
	for i > 0 && d[list[i-1]].seq > seq {
		i--
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = snd
	return list
}

// loadValue reads memory as of this load's position in program order:
// memory contents overlaid with all older write-buffer entries, oldest
// first. It reports whether any write-buffer entry contributed (store
// forwarding).
func (e *dynamicEngine) loadValue(nd nref) (int32, bool) {
	ns := &e.nodes
	var bytes [4]byte
	size := int64(ns.d[nd].msize)
	addr := int64(ns.d[nd].addr)
	seq := ns.d[nd].seq
	base := e.env.load(int32(addr), size)
	bytes[0] = byte(base)
	bytes[1] = byte(base >> 8)
	bytes[2] = byte(base >> 16)
	bytes[3] = byte(base >> 24)

	// Collect older overlapping stores. A store spanning both of the
	// load's granules appears in both granule lists; it is taken from the
	// list of its own first granule (gs[0], necessarily) and skipped in the
	// second, so each store contributes once.
	gs := granulesOf(addr, size)
	overlaps := e.ovScratch[:0]
	for gi, g := range gs {
		if g < 0 {
			continue
		}
		for _, snd := range e.wb[g] {
			if ns.d[snd].seq >= seq || ns.d[snd].status&nsSquashed != 0 {
				continue
			}
			if gi == 1 && int64(ns.d[snd].addr>>2) == gs[0] {
				continue
			}
			overlaps = append(overlaps, snd)
		}
	}
	// Apply in seq order (wb lists are sorted; merging two granules needs
	// a stable order).
	for i := 1; i < len(overlaps); i++ {
		for j := i; j > 0; j-- {
			a, b := overlaps[j], overlaps[j-1]
			if ns.d[a].seq >= ns.d[b].seq {
				break
			}
			overlaps[j], overlaps[j-1] = b, a
		}
	}
	forwarded := false
	for _, snd := range overlaps {
		lo := int64(ns.d[snd].addr)
		hi := lo + int64(ns.d[snd].msize)
		for i := int64(0); i < size; i++ {
			p := addr + i
			if p >= lo && p < hi {
				bytes[i] = byte(ns.d[snd].val >> (8 * (p - lo)))
				forwarded = true
			}
		}
	}
	e.ovScratch = overlaps
	v := int32(bytes[0])
	if size == 4 {
		v |= int32(bytes[1])<<8 | int32(bytes[2])<<16 | int32(bytes[3])<<24
	}
	return v, forwarded
}
