package core_test

import (
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// chainProgram builds a single block of n dependent AddI nodes (a pure
// serial chain) ending in Halt.
func chainProgram(n int) *ir.Program {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	body := []ir.Node{{Op: ir.Const, Dst: 5, Imm: 1}}
	for i := 0; i < n; i++ {
		body = append(body, ir.Node{Op: ir.AddI, Dst: 5, A: 5, Imm: 1})
	}
	b := &ir.Block{Body: body, Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b)
	f.Entry = 0
	return p
}

// independentProgram builds a single block of n independent Const nodes.
func independentProgram(n int) *ir.Program {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	var body []ir.Node
	for i := 0; i < n; i++ {
		body = append(body, ir.Node{Op: ir.Const, Dst: ir.Reg(5 + i%50), Imm: int64(i)})
	}
	b := &ir.Block{Body: body, Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b)
	f.Entry = 0
	return p
}

func cyclesOf(t *testing.T, p *ir.Program, cfg machine.Config) int64 {
	t.Helper()
	img, err := loader.Load(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats.Cycles
}

// TestSerialChainTakesOneCyclePerNode: a dependent chain cannot go faster
// than one node per cycle on any machine, and a wide machine should achieve
// almost exactly that (no overhead per link).
func TestSerialChainTakesOneCyclePerNode(t *testing.T) {
	const n = 200
	p := chainProgram(n)
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn4, machine.Dyn256} {
		c := cyclesOf(t, p, mkCfg(d, 8, 'A'))
		if c < n {
			t.Errorf("%s: %d cycles for a %d-node chain (impossible)", d, c, n)
		}
		if c > n+20 {
			t.Errorf("%s: %d cycles for a %d-node chain (too much overhead)", d, c, n)
		}
	}
}

// TestIndependentWorkScalesWithWidth: n independent nodes take about
// n/width cycles on wide machines.
func TestIndependentWorkScalesWithWidth(t *testing.T) {
	const n = 240
	p := independentProgram(n)
	c2 := cyclesOf(t, p, mkCfg(machine.Dyn4, 2, 'A')) // 2 ALU... model 2 = 1M1A -> 1 ALU
	c8 := cyclesOf(t, p, mkCfg(machine.Dyn4, 8, 'A')) // 12 ALU slots
	if c2 < n {
		t.Errorf("1 ALU slot: %d cycles for %d ALU nodes", c2, n)
	}
	// 12 ALU slots: at least n/12 cycles, and close to it.
	if c8 > int64(n/12)+20 {
		t.Errorf("12 ALU slots: %d cycles for %d independent nodes, want about %d", c8, n, n/12)
	}
	if c8*3 > c2 {
		t.Errorf("width barely helped: %d vs %d cycles", c8, c2)
	}
}

// TestMissLatencyVisible: a dependent load chain with a cold cache pays
// the 10-cycle miss; with perfect 1-cycle memory it pays 1 per load.
func TestMissLatencyVisible(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	// Pointer-chase style: each load's address depends on the previous
	// load's (zero) result, defeating overlap. Addresses stride by 64 so
	// every access is a fresh cache block.
	body := []ir.Node{{Op: ir.Const, Dst: 5, Imm: 0}}
	const loads = 20
	for i := 0; i < loads; i++ {
		body = append(body,
			ir.Node{Op: ir.AddI, Dst: 6, A: 5, Imm: int64(8192 + i*64)},
			ir.Node{Op: ir.Ld, Dst: 5, A: 6},
		)
	}
	b := &ir.Block{Body: body, Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b)
	f.Entry = 0

	fast := cyclesOf(t, p, mkCfg(machine.Dyn256, 8, 'A'))
	slow := cyclesOf(t, p, mkCfg(machine.Dyn256, 8, 'D')) // cold 1K cache: all misses
	// Serial chain: each load adds ~2 cycles (addi+ld) fast, ~11 slow.
	if slow < fast+int64(loads*8) {
		t.Errorf("misses not visible: fast %d, slow %d cycles", fast, slow)
	}
}

// TestPipelinedMemoryOverlapsMisses: independent loads to distinct blocks
// overlap their miss latencies (the paper's fully pipelined memory), so
// total time is far below loads*missLatency.
func TestPipelinedMemoryOverlapsMisses(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	var body []ir.Node
	const loads = 40
	body = append(body, ir.Node{Op: ir.Const, Dst: 5, Imm: 8192})
	for i := 0; i < loads; i++ {
		body = append(body, ir.Node{Op: ir.Ld, Dst: ir.Reg(6 + i%40), A: 5, Imm: int64(i * 64)})
	}
	b := &ir.Block{Body: body, Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b)
	f.Entry = 0

	c := cyclesOf(t, p, mkCfg(machine.Dyn256, 8, 'D'))
	serial := int64(loads * 10)
	if c > serial/3 {
		t.Errorf("independent misses did not pipeline: %d cycles (serial would be ~%d)", c, serial)
	}
}

// TestStaticInterlockStallsOnMiss: the static engine's consumer of a
// missing load stalls, but the stall does not change the answer.
func TestStaticInterlockStallsOnMiss(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	body := []ir.Node{
		{Op: ir.Const, Dst: 5, Imm: 8192},
		{Op: ir.Ld, Dst: 6, A: 5},           // miss: 10 cycles
		{Op: ir.AddI, Dst: 7, A: 6, Imm: 1}, // stalls on r6
		{Op: ir.Sys, Dst: 8, A: 7, B: ir.NoReg, Imm: ir.SysPutc},
	}
	b := &ir.Block{Body: body, Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b)
	f.Entry = 0

	cMiss := cyclesOf(t, p, mkCfg(machine.Static, 8, 'D'))
	cHit := cyclesOf(t, p, mkCfg(machine.Static, 8, 'A'))
	if cMiss < cHit+8 {
		t.Errorf("interlock stall invisible: hit %d vs miss %d cycles", cHit, cMiss)
	}
}
