package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/difftest"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// TestFuzzFullPipeline pushes random programs through the complete flow —
// compile, profile, enlarge, trace — and cross-validates a spread of
// machine configurations (all disciplines, all branch modes including the
// fill unit and gshare) against the interpreter. The random programs come
// from internal/difftest's generator; each trial derives its own seed, so a
// failure names the exact program to replay:
//
//	go run ./cmd/difftest -gen 1 -seed <seed>
//
// The heavyweight standing sweep (200 programs, the full matrix, the
// metamorphic invariants) lives in internal/difftest; this test keeps a
// fast engine-level slice of it next to the engines themselves.
func TestFuzzFullPipeline(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	const seed0 = 777_000
	for trial := 0; trial < trials; trial++ {
		seed := int64(seed0 + trial)
		src := difftest.Generate(seed, difftest.DefaultGenOptions())
		prog, err := minic.Compile("fuzz.mc", src, minic.Options{Optimize: true})
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		in1 := difftest.GenInput(seed*2, 300+int(seed%300))
		in2 := difftest.GenInput(seed*2+1, 300+int((seed+13)%300))

		prof := interp.NewProfile()
		if _, err := interp.Run(prog, in1, nil, interp.Options{Profile: prof, MaxNodes: 1 << 24}); err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		ef := enlarge.Build(prog, prof, enlarge.DefaultOptions())
		hints := branch.HintsFromProfile(prof.Taken, prof.NotTaken)
		ref, err := interp.Run(prog, in2, nil, interp.Options{RecordTrace: true, MaxNodes: 1 << 24})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		var variants []machine.Config
		add := func(d machine.Discipline, issue int, mem byte, bm machine.BranchMode, pk machine.PredictorKind, win int) {
			im, _ := machine.IssueModelByID(issue)
			mc, _ := machine.MemConfigByID(mem)
			variants = append(variants, machine.Config{
				Disc: d, Issue: im, Mem: mc, Branch: bm,
				Predictor: pk, WindowOverride: win,
			})
		}
		add(machine.Static, 4, 'A', machine.SingleBB, machine.TwoBit, 0)
		add(machine.Static, 8, 'D', machine.EnlargedBB, machine.TwoBit, 0)
		add(machine.Dyn1, 2, 'C', machine.EnlargedBB, machine.TwoBit, 0)
		add(machine.Dyn4, 8, 'A', machine.EnlargedBB, machine.TwoBit, 0)
		add(machine.Dyn4, 8, 'G', machine.Perfect, machine.TwoBit, 0)
		add(machine.Dyn256, 8, 'E', machine.SingleBB, machine.GSharePredictor, 0)
		add(machine.Dyn256, 8, 'A', machine.Perfect, machine.TwoBit, 0)
		add(machine.Dyn256, 8, 'D', machine.FillUnit, machine.TwoBit, 0)
		add(machine.Dyn256, 5, 'F', machine.EnlargedBB, machine.GSharePredictor, 17)

		for _, cfg := range variants {
			img, err := loader.Load(prog, cfg, ef)
			if err != nil {
				t.Fatalf("seed %d %s: load: %v", seed, cfg, err)
			}
			res, err := core.Run(img, in2, nil, ref.Trace, hints, core.Limits{MaxCycles: 1 << 26})
			if err != nil {
				t.Fatalf("seed %d %s: run: %v", seed, cfg, err)
			}
			if !bytes.Equal(res.Output, ref.Output) {
				t.Fatalf("seed %d %s: output %q, want %q\nprogram:\n%s",
					seed, cfg, res.Output, ref.Output, src)
			}
			checkStatsConsistency(t, cfg, res)
			for _, msg := range difftest.CheckStats(res.Stats) {
				t.Errorf("seed %d %s: %s", seed, cfg, msg)
			}
		}
		if t.Failed() {
			t.Fatal(fmt.Sprintf("seed %d failed; replay with: go run ./cmd/difftest -gen 1 -seed %d", seed, seed))
		}
	}
}
