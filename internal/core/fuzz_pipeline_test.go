package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// randomMiniC emits a random but terminating MiniC program: helper
// functions with loops, branches, arrays, byte/word traffic, and I/O. The
// control flow is data-dependent on the input bytes, so enlargement chains
// built from one input get exercised (and faulted) by another.
func randomMiniC(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("int arr[128];\nchar buf[256];\n")

	nHelpers := 1 + rng.Intn(3)
	for h := 0; h < nHelpers; h++ {
		fmt.Fprintf(&sb, "int h%d(int a, int b) {\n", h)
		switch rng.Intn(3) {
		case 0:
			sb.WriteString("\tint r = 0;\n\tint i;\n")
			fmt.Fprintf(&sb, "\tfor (i = 0; i < (a & 15); i++) r += arr[(b + i) & 127] ^ i;\n")
			sb.WriteString("\treturn r;\n")
		case 1:
			fmt.Fprintf(&sb, "\tif (a %% %d == 0) return b * 3 + 1;\n", 2+rng.Intn(4))
			sb.WriteString("\tif (a < b) return a - b;\n\treturn a + b;\n")
		default:
			fmt.Fprintf(&sb, "\tif (b == 0) return a;\n\treturn h%d(b, a %% b);\n", h)
		}
		sb.WriteString("}\n")
	}

	sb.WriteString("int main() {\n\tint c;\n\tint acc = 7;\n\tint n = 0;\n\tint i;\n")
	sb.WriteString("\tfor (i = 0; i < 128; i++) arr[i] = i * 13;\n")
	sb.WriteString("\tc = getc(0);\n\twhile (c >= 0) {\n")
	nOps := 2 + rng.Intn(5)
	for k := 0; k < nOps; k++ {
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "\t\tacc = h%d(acc & 255, c);\n", rng.Intn(nHelpers))
		case 1:
			fmt.Fprintf(&sb, "\t\tif (c %% %d == 0) acc += arr[c & 127]; else acc ^= c << %d;\n",
				2+rng.Intn(5), rng.Intn(5))
		case 2:
			sb.WriteString("\t\tbuf[n & 255] = c + acc;\n")
		case 3:
			fmt.Fprintf(&sb, "\t\tarr[(acc + n) & 127] = acc %% %d;\n", 3+rng.Intn(97))
		case 4:
			sb.WriteString("\t\tacc = acc * 31 + buf[(acc >> 3) & 255];\n")
		default:
			fmt.Fprintf(&sb, "\t\twhile (acc > %d) acc = acc / 2 - n;\n", 1000+rng.Intn(5000))
		}
	}
	sb.WriteString("\t\tn++;\n\t\tc = getc(0);\n\t}\n")
	sb.WriteString("\tputc('A' + (acc % 26 + 26) % 26);\n")
	sb.WriteString("\tputc('a' + (n % 26 + 26) % 26);\n")
	sb.WriteString("\tputc('\\n');\n\treturn 0;\n}\n")
	return sb.String()
}

func randomInput(rng *rand.Rand, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(32 + rng.Intn(90))
	}
	return buf
}

// TestFuzzFullPipeline pushes random programs through the complete flow —
// compile, profile, enlarge, trace — and cross-validates a spread of
// machine configurations (all disciplines, all branch modes including the
// fill unit and gshare) against the interpreter.
func TestFuzzFullPipeline(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < trials; trial++ {
		src := randomMiniC(rng)
		prog, err := minic.Compile("fuzz.mc", src, minic.Options{Optimize: true})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		in1 := randomInput(rng, 300+rng.Intn(300))
		in2 := randomInput(rng, 300+rng.Intn(300))

		prof := interp.NewProfile()
		if _, err := interp.Run(prog, in1, nil, interp.Options{Profile: prof, MaxNodes: 1 << 24}); err != nil {
			t.Fatalf("trial %d: profile: %v", trial, err)
		}
		ef := enlarge.Build(prog, prof, enlarge.DefaultOptions())
		hints := branch.HintsFromProfile(prof.Taken, prof.NotTaken)
		ref, err := interp.Run(prog, in2, nil, interp.Options{RecordTrace: true, MaxNodes: 1 << 24})
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}

		type variant struct {
			cfg machine.Config
		}
		var variants []variant
		add := func(d machine.Discipline, issue int, mem byte, bm machine.BranchMode, pk machine.PredictorKind, win int) {
			im, _ := machine.IssueModelByID(issue)
			mc, _ := machine.MemConfigByID(mem)
			variants = append(variants, variant{machine.Config{
				Disc: d, Issue: im, Mem: mc, Branch: bm,
				Predictor: pk, WindowOverride: win,
			}})
		}
		add(machine.Static, 4, 'A', machine.SingleBB, machine.TwoBit, 0)
		add(machine.Static, 8, 'D', machine.EnlargedBB, machine.TwoBit, 0)
		add(machine.Dyn1, 2, 'C', machine.EnlargedBB, machine.TwoBit, 0)
		add(machine.Dyn4, 8, 'A', machine.EnlargedBB, machine.TwoBit, 0)
		add(machine.Dyn4, 8, 'G', machine.Perfect, machine.TwoBit, 0)
		add(machine.Dyn256, 8, 'E', machine.SingleBB, machine.GSharePredictor, 0)
		add(machine.Dyn256, 8, 'A', machine.Perfect, machine.TwoBit, 0)
		add(machine.Dyn256, 8, 'D', machine.FillUnit, machine.TwoBit, 0)
		add(machine.Dyn256, 5, 'F', machine.EnlargedBB, machine.GSharePredictor, 17)

		for _, v := range variants {
			img, err := loader.Load(prog, v.cfg, ef)
			if err != nil {
				t.Fatalf("trial %d %s: load: %v", trial, v.cfg, err)
			}
			res, err := core.Run(img, in2, nil, ref.Trace, hints, core.Limits{MaxCycles: 1 << 26})
			if err != nil {
				t.Fatalf("trial %d %s: run: %v", trial, v.cfg, err)
			}
			if !bytes.Equal(res.Output, ref.Output) {
				t.Fatalf("trial %d %s: output %q, want %q\nprogram:\n%s",
					trial, v.cfg, res.Output, ref.Output, src)
			}
			checkStatsConsistency(t, v.cfg, res)
		}
	}
}
