package core

import "testing"

// The event wheel's ring has timelineSlots buckets keyed by doneAt modulo
// timelineSlots. An entry scheduled exactly timelineSlots cycles ahead maps
// to the *current* cycle's slot — without the overflow guard it would land
// in a bucket that take() is about to drain (or has just drained), firing
// timelineSlots cycles early or never. These tests pin the guard.

func TestWheelExactWraparoundNoCollision(t *testing.T) {
	var w eventWheel
	now := int64(100)
	// Node 1 completes this cycle; node 2 exactly one ring-span later.
	// Both map to slot 100 % 16 == (100+16) % 16.
	w.add(1, now, now)
	w.add(2, now+timelineSlots, now)

	got := w.take(now)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("take(%d) = %v, want [1]: the far entry collided with the near slot", now, got)
	}
	// The far entry must fire exactly at its cycle, not before.
	for c := now + 1; c < now+timelineSlots; c++ {
		if got := w.take(c); len(got) != 0 {
			t.Fatalf("take(%d) = %v, want empty", c, got)
		}
	}
	got = w.take(now + timelineSlots)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("take(%d) = %v, want [2]", now+timelineSlots, got)
	}
}

func TestWheelFarFutureEntries(t *testing.T) {
	var w eventWheel
	now := int64(0)
	// Entries far beyond the ring's span, plus a near one sharing their slot.
	w.add(7, now+3*timelineSlots, now) // slot 0, two wraps away
	w.add(8, now+2, now)
	for c := int64(0); c <= 3*timelineSlots; c++ {
		got := w.take(c)
		switch c {
		case 2:
			if len(got) != 1 || got[0] != 8 {
				t.Fatalf("take(%d) = %v, want [8]", c, got)
			}
		case 3 * timelineSlots:
			if len(got) != 1 || got[0] != 7 {
				t.Fatalf("take(%d) = %v, want [7]", c, got)
			}
		default:
			if len(got) != 0 {
				t.Fatalf("take(%d) = %v, want empty", c, got)
			}
		}
	}
}

func TestWheelOverflowPreservesSlotOrder(t *testing.T) {
	var w eventWheel
	now := int64(0)
	target := now + timelineSlots + 2
	// Two overflow entries for the same future cycle must both arrive.
	w.add(3, target, now)
	w.add(4, target, now)
	for c := now; c < target; c++ {
		if got := w.take(c); len(got) != 0 {
			t.Fatalf("take(%d) = %v, want empty", c, got)
		}
	}
	got := w.take(target)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("take(%d) = %v, want [3 4] in add order", target, got)
	}
}
