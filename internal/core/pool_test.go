package core

import (
	"reflect"
	"testing"
	"unsafe"
)

// These tests pin down the pool-reset contract (pool.go): a recycled dnode
// or ablock must be indistinguishable from a freshly allocated one, except
// that its slice fields may keep their (truncated) backing arrays. They are
// reflect-based so a field added to either struct later is covered
// automatically — a leaked squashed/handled flag or stale producer link on
// a reused node would silently corrupt a later run.

// settable makes a possibly-unexported struct field assignable.
func settable(f reflect.Value) reflect.Value {
	return reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
}

// fillNonZero sets v (addressable) to an arbitrary nonzero value,
// recursively for structs and arrays. Kinds the pooled structs do not use
// fail the test, so new field types must be handled here deliberately.
func fillNonZero(t *testing.T, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(1.5)
	case reflect.String:
		v.SetString("x")
	case reflect.Pointer:
		v.Set(reflect.New(v.Type().Elem()))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 1, 1)
		fillNonZero(t, s.Index(0))
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillNonZero(t, v.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillNonZero(t, settable(v.Field(i)))
		}
	default:
		t.Fatalf("fillNonZero: unhandled kind %v (%v) — teach the pool tests about it", v.Kind(), v.Type())
	}
}

// assertFresh checks that every field of the struct v equals its zero
// value; slice fields need only be empty (their backing arrays are
// deliberately retained across reuse).
func assertFresh(t *testing.T, v reflect.Value, what string) {
	t.Helper()
	tp := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := tp.Field(i).Name
		if f.Kind() == reflect.Slice {
			if f.Len() != 0 {
				t.Errorf("%s: slice field %s has length %d after reset, want 0", what, name, f.Len())
			}
			continue
		}
		if !f.IsZero() {
			t.Errorf("%s: field %s not zero after reset", what, name)
		}
	}
}

func TestDnodeResetIsFieldComplete(t *testing.T) {
	nd := new(dnode)
	fillNonZero(t, reflect.ValueOf(nd).Elem())
	nd.reset()
	assertFresh(t, reflect.ValueOf(nd).Elem(), "dnode")
	if cap(nd.consumers) == 0 {
		t.Error("dnode.reset dropped the consumers backing array")
	}
}

func TestAblockResetIsFieldComplete(t *testing.T) {
	ab := new(ablock)
	fillNonZero(t, reflect.ValueOf(ab).Elem())
	ab.reset()
	assertFresh(t, reflect.ValueOf(ab).Elem(), "ablock")
	for _, s := range []struct {
		name string
		c    int
	}{{"nodes", cap(ab.nodes)}, {"asserts", cap(ab.asserts)}, {"stores", cap(ab.stores)}} {
		if s.c == 0 {
			t.Errorf("ablock.reset dropped the %s backing array", s.name)
		}
	}
}

// TestNodePoolQuarantine checks the watermark gate: a freed node must not
// be reissued until both the sequence floor and the cycle counter have
// passed its watermarks, and when it is reissued it must come back fresh.
func TestNodePoolQuarantine(t *testing.T) {
	var p nodePool
	nd := p.get(noSeqFloor, 0)
	fillNonZero(t, reflect.ValueOf(nd).Elem())
	p.put(nd, 10, 5)

	if got := p.get(5, 100); got == nd {
		t.Fatal("node reissued while the oldest active block was older than its seq watermark")
	}
	if got := p.get(noSeqFloor, 4); got == nd {
		t.Fatal("node reissued before the timeline ring wrapped past its cycle watermark")
	}
	got := p.get(noSeqFloor, 5)
	if got != nd {
		t.Fatal("node not reissued once both watermarks were satisfied")
	}
	assertFresh(t, reflect.ValueOf(got).Elem(), "recycled dnode")
}

func TestBlockPoolReuseResets(t *testing.T) {
	var p blockPool
	ab := p.get()
	fillNonZero(t, reflect.ValueOf(ab).Elem())
	p.put(ab)
	got := p.get()
	if got != ab {
		t.Fatal("block pool did not reuse the freed block")
	}
	assertFresh(t, reflect.ValueOf(got).Elem(), "recycled ablock")
}
