package core

import "math"

// This file is the dynamic engine's allocation machinery: slab-backed
// free-list pools for dnodes and ablocks, a bump allocator for speculative
// return-stack nodes, an index-tracked ready heap, and the ring buffers
// behind the active-block window and the store disambiguation queue. At
// steady state a run recycles everything it issues, so the hot loop stops
// producing garbage entirely (see DESIGN.md, "Performance notes").
//
// Recycling a dnode is only safe once no stale reference to its previous
// incarnation can be dereferenced. Eager cleanup removes squashed nodes
// from the ready queues, the blocked lists, the offender lists, and the
// disambiguation queue at squash time, and retirement drains the
// disambiguation queue's done prefix; the remaining references (rename
// snapshots of still-active blocks, producer links, consumer lists, and
// the completion timeline) are bounded by two watermarks:
//
//   - seqWM: the engine's issue sequence at free time. Every block that
//     could hold a snapshot or producer/consumer reference to the freed
//     node was opened before this point, so the node stays quarantined
//     until the oldest active block is younger than seqWM.
//   - cycleWM: free cycle + timelineSlots. A squashed node's completion
//     timeline entry fires (and is skipped via its squashed flag) within
//     the timeline ring's span, so the node stays quarantined until the
//     ring has provably wrapped past it.
//
// Both watermarks are nondecreasing over a run, so a FIFO quarantine queue
// checked at allocation time implements them exactly.

// slabSize is how many dnodes (or rsNodes) one slab chunk holds.
const slabSize = 256

// pendingFree is one quarantined dnode awaiting its watermarks.
type pendingFree struct {
	nd      *dnode
	seqWM   int64 // reusable once the oldest active block's seq0 reaches this
	cycleWM int64 // ... and the cycle counter reaches this
}

// nodePool allocates dnodes from slabs and recycles them through a
// watermark-gated quarantine queue feeding a free list.
type nodePool struct {
	free       []*dnode
	quarantine pfQueue
	slab       []dnode
	used       int
}

// get returns a reset dnode. seqFloor is the oldest active block's seq0
// (math.MaxInt64 when the window is empty) and cycle the current cycle;
// together they decide which quarantined nodes are safe to promote.
func (p *nodePool) get(seqFloor, cycle int64) *dnode {
	if len(p.free) == 0 {
		for p.quarantine.n > 0 {
			h := p.quarantine.front()
			if h.seqWM > seqFloor || h.cycleWM > cycle {
				break
			}
			p.free = append(p.free, h.nd)
			p.quarantine.popFront()
		}
	}
	if n := len(p.free); n > 0 {
		nd := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		nd.reset()
		return nd
	}
	if p.used == len(p.slab) {
		p.slab = make([]dnode, slabSize)
		p.used = 0
	}
	nd := &p.slab[p.used]
	p.used++
	return nd
}

// put quarantines a freed dnode under the given watermarks.
func (p *nodePool) put(nd *dnode, seqWM, cycleWM int64) {
	p.quarantine.pushBack(pendingFree{nd: nd, seqWM: seqWM, cycleWM: cycleWM})
}

// reset returns a dnode to its freshly allocated state. The consumers
// slice keeps its backing array (truncated) so steady-state wakeup lists
// stop allocating; everything else must be indistinguishable from a zero
// value — pool_test.go enforces this with reflection, since a leaked
// squashed/handled flag or stale producer link would corrupt a later run.
func (nd *dnode) reset() {
	*nd = dnode{consumers: nd.consumers[:0]}
}

// noSeqFloor is the seq floor used when no block is active: every
// quarantined node's seq watermark is satisfied.
const noSeqFloor = int64(math.MaxInt64)

// blockPool recycles ablocks. Blocks need no quarantine: every dangling
// reference to a freed block lives in its own (simultaneously freed)
// dnodes, which the node watermarks already guard.
type blockPool struct {
	free []*ablock
}

func (p *blockPool) get() *ablock {
	if n := len(p.free); n > 0 {
		ab := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		ab.reset()
		return ab
	}
	return &ablock{}
}

func (p *blockPool) put(ab *ablock) {
	p.free = append(p.free, ab)
}

// reset returns an ablock to its freshly allocated state, keeping the
// backing arrays of its node/assert/store lists.
func (ab *ablock) reset() {
	*ab = ablock{
		nodes:   ab.nodes[:0],
		asserts: ab.asserts[:0],
		stores:  ab.stores[:0],
	}
}

// rsPool bump-allocates speculative return-stack nodes. rsNodes form a
// persistent (immutable) linked structure shared by block checkpoints, so
// individual nodes are never freed; slabs keep the persistent stack at one
// allocation per slabSize calls instead of one per call.
type rsPool struct {
	slab []rsNode
	used int
}

func (p *rsPool) get() *rsNode {
	if p.used == len(p.slab) {
		p.slab = make([]rsNode, slabSize)
		p.used = 0
	}
	n := &p.slab[p.used]
	p.used++
	return n
}

// ---------- ready queue ----------

// readyQ is a binary min-heap of dnodes keyed by issue sequence — the
// scheduler always picks the oldest ready node, exactly as the previous
// container/heap implementation did (sequence numbers are unique, so the
// pop order is fully determined and the figure tables are bit-identical).
// The heap is intrusive: each queued node carries its heap position plus
// one (dnode.qpos, 0 = not queued), so squashed nodes are removed in
// O(log n) instead of lingering as tombstones.
type readyQ struct {
	a []*dnode
}

func (q *readyQ) len() int { return len(q.a) }

// min returns the oldest ready node without removing it.
func (q *readyQ) min() *dnode { return q.a[0] }

func (q *readyQ) push(nd *dnode) {
	q.a = append(q.a, nd)
	q.up(len(q.a)-1, nd)
}

// pop removes and returns the oldest ready node.
func (q *readyQ) pop() *dnode {
	nd := q.a[0]
	q.removeAt(0)
	return nd
}

// remove unlinks a node from the heap if it is queued.
func (q *readyQ) remove(nd *dnode) {
	if nd.qpos != 0 {
		q.removeAt(int(nd.qpos) - 1)
	}
}

func (q *readyQ) removeAt(i int) {
	last := len(q.a) - 1
	q.a[i].qpos = 0
	moved := q.a[last]
	q.a[last] = nil
	q.a = q.a[:last]
	if i == last {
		return
	}
	// Re-seat the displaced element: sift down, then up.
	if !q.down(i, moved) {
		q.up(i, moved)
	}
}

// up sifts nd toward the root from position i and seats it.
func (q *readyQ) up(i int, nd *dnode) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.a[parent].seq <= nd.seq {
			break
		}
		q.a[i] = q.a[parent]
		q.a[i].qpos = int32(i + 1)
		i = parent
	}
	q.a[i] = nd
	nd.qpos = int32(i + 1)
}

// down sifts nd toward the leaves from position i and seats it, reporting
// whether it moved.
func (q *readyQ) down(i int, nd *dnode) bool {
	start := i
	n := len(q.a)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.a[r].seq < q.a[child].seq {
			child = r
		}
		if nd.seq <= q.a[child].seq {
			break
		}
		q.a[i] = q.a[child]
		q.a[i].qpos = int32(i + 1)
		i = child
	}
	q.a[i] = nd
	nd.qpos = int32(i + 1)
	return i > start
}

// ---------- ring buffers ----------

// abRing is the active-block window: a ring buffer of blocks in issue
// order (oldest first). Unlike the previous slice (re-sliced on retire,
// reallocated on append), it reuses one backing array for the whole run.
type abRing struct {
	buf  []*ablock
	head int
	n    int
}

func (r *abRing) len() int { return r.n }

func (r *abRing) at(i int) *ablock { return r.buf[(r.head+i)%len(r.buf)] }

func (r *abRing) front() *ablock { return r.buf[r.head] }

func (r *abRing) pushBack(ab *ablock) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = ab
	r.n++
}

func (r *abRing) popFront() {
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

// truncate drops blocks [from:] (the squashed suffix).
func (r *abRing) truncate(from int) {
	for i := from; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = nil
	}
	r.n = from
}

func (r *abRing) grow() {
	nb := make([]*ablock, max(2*len(r.buf), 8))
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}

// ndRing is a FIFO of dnodes with O(1) operations at both ends, used for
// the store disambiguation queue (pushBack at issue, popFront as heads
// resolve, popBack as squashes discard the youngest suffix).
type ndRing struct {
	buf  []*dnode
	head int
	n    int
}

func (r *ndRing) len() int { return r.n }

func (r *ndRing) front() *dnode { return r.buf[r.head] }

func (r *ndRing) back() *dnode { return r.buf[(r.head+r.n-1)%len(r.buf)] }

func (r *ndRing) pushBack(nd *dnode) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = nd
	r.n++
}

func (r *ndRing) popFront() {
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

func (r *ndRing) popBack() {
	r.buf[(r.head+r.n-1)%len(r.buf)] = nil
	r.n--
}

func (r *ndRing) grow() {
	nb := make([]*dnode, max(2*len(r.buf), 16))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

// pfQueue is the FIFO behind the node quarantine.
type pfQueue struct {
	buf  []pendingFree
	head int
	n    int
}

func (r *pfQueue) front() pendingFree { return r.buf[r.head] }

func (r *pfQueue) pushBack(pf pendingFree) {
	if r.n == len(r.buf) {
		nb := make([]pendingFree, max(2*len(r.buf), 16))
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = pf
	r.n++
}

func (r *pfQueue) popFront() {
	r.buf[r.head] = pendingFree{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}
