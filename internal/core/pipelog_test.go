package core_test

import (
	"strings"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

func TestPipeLogRecordsLifecycle(t *testing.T) {
	p := chainProgram(5)
	img, err := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &core.PipeLog{MaxCycles: 50}
	if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
		t.Fatal(err)
	}
	kinds := map[core.PipeKind]int{}
	for _, e := range pipe.Events {
		kinds[e.Kind]++
	}
	// 7 nodes (const + 5 addi + halt): each issues, executes, completes;
	// the single block retires.
	if kinds[core.PipeIssue] != 7 {
		t.Errorf("issue events = %d, want 7", kinds[core.PipeIssue])
	}
	if kinds[core.PipeExec] != 7 {
		t.Errorf("exec events = %d, want 7", kinds[core.PipeExec])
	}
	if kinds[core.PipeDone] != 7 {
		t.Errorf("done events = %d, want 7", kinds[core.PipeDone])
	}
	if kinds[core.PipeRetire] != 1 {
		t.Errorf("retire events = %d, want 1", kinds[core.PipeRetire])
	}
	s := pipe.String()
	for _, w := range []string{"cycle 0:", "issue", "exec", "retire", "addi"} {
		if !strings.Contains(s, w) {
			t.Errorf("rendered log missing %q:\n%s", w, s)
		}
	}
	// Events are cycle-ordered.
	last := int64(-1)
	for _, e := range pipe.Events {
		if e.Cycle < last {
			t.Fatal("events out of cycle order")
		}
		last = e.Cycle
	}
}

func TestPipeLogRecordsSquashes(t *testing.T) {
	p := randomProgram(11) // has a loop with a mispredicting exit
	img, err := loader.Load(p, mkCfg(machine.Dyn256, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &core.PipeLog{MaxCycles: 10_000}
	if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
		t.Fatal(err)
	}
	var saw struct{ mis, squash bool }
	for _, e := range pipe.Events {
		if e.Kind == core.PipeMispredict {
			saw.mis = true
		}
		if e.Kind == core.PipeSquash {
			saw.squash = true
		}
	}
	if !saw.mis || !saw.squash {
		t.Errorf("expected mispredict+squash events, got mis=%v squash=%v", saw.mis, saw.squash)
	}
}

func TestPipeLogBounded(t *testing.T) {
	p := chainProgram(500)
	img, _ := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	pipe := &core.PipeLog{MaxCycles: 10}
	if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
		t.Fatal(err)
	}
	for _, e := range pipe.Events {
		if e.Cycle >= 10 {
			t.Fatalf("event at cycle %d despite 10-cycle bound", e.Cycle)
		}
	}
}
