package core_test

import (
	"strings"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

func TestPipeLogRecordsLifecycle(t *testing.T) {
	p := chainProgram(5)
	img, err := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &core.PipeLog{MaxCycles: 50}
	if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
		t.Fatal(err)
	}
	kinds := map[core.PipeKind]int{}
	for _, e := range pipe.Events {
		kinds[e.Kind]++
	}
	// 7 nodes (const + 5 addi + halt): each issues, executes, completes;
	// the single block retires.
	if kinds[core.PipeIssue] != 7 {
		t.Errorf("issue events = %d, want 7", kinds[core.PipeIssue])
	}
	if kinds[core.PipeExec] != 7 {
		t.Errorf("exec events = %d, want 7", kinds[core.PipeExec])
	}
	if kinds[core.PipeDone] != 7 {
		t.Errorf("done events = %d, want 7", kinds[core.PipeDone])
	}
	if kinds[core.PipeRetire] != 1 {
		t.Errorf("retire events = %d, want 1", kinds[core.PipeRetire])
	}
	s := pipe.String()
	for _, w := range []string{"cycle 0:", "issue", "exec", "retire", "addi"} {
		if !strings.Contains(s, w) {
			t.Errorf("rendered log missing %q:\n%s", w, s)
		}
	}
	// Events are cycle-ordered.
	last := int64(-1)
	for _, e := range pipe.Events {
		if e.Cycle < last {
			t.Fatal("events out of cycle order")
		}
		last = e.Cycle
	}
}

func TestPipeLogRecordsSquashes(t *testing.T) {
	p := randomProgram(11) // has a loop with a mispredicting exit
	img, err := loader.Load(p, mkCfg(machine.Dyn256, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &core.PipeLog{MaxCycles: 10_000}
	if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
		t.Fatal(err)
	}
	var saw struct{ mis, squash bool }
	for _, e := range pipe.Events {
		if e.Kind == core.PipeMispredict {
			saw.mis = true
		}
		if e.Kind == core.PipeSquash {
			saw.squash = true
		}
	}
	if !saw.mis || !saw.squash {
		t.Errorf("expected mispredict+squash events, got mis=%v squash=%v", saw.mis, saw.squash)
	}
}

// TestPipeLogEmpty covers the no-events paths: a fresh log renders to the
// empty string, and a static-discipline run leaves an attached log untouched
// (only dynamic engines emit pipeline events).
func TestPipeLogEmpty(t *testing.T) {
	empty := &core.PipeLog{}
	if s := empty.String(); s != "" {
		t.Errorf("empty log renders %q, want \"\"", s)
	}

	p := chainProgram(5)
	img, err := loader.Load(p, mkCfg(machine.Static, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &core.PipeLog{MaxCycles: 1000}
	if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
		t.Fatal(err)
	}
	if len(pipe.Events) != 0 {
		t.Errorf("static run recorded %d events, want 0", len(pipe.Events))
	}
}

// TestPipeLogSingleCycle truncates to one cycle: everything recorded must be
// from cycle 0, and something must be recorded (issue happens on cycle 0).
func TestPipeLogSingleCycle(t *testing.T) {
	p := chainProgram(50)
	img, err := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &core.PipeLog{MaxCycles: 1}
	if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
		t.Fatal(err)
	}
	if len(pipe.Events) == 0 {
		t.Fatal("single-cycle log recorded nothing; issue events happen on cycle 0")
	}
	for _, e := range pipe.Events {
		if e.Cycle != 0 {
			t.Fatalf("event at cycle %d despite 1-cycle bound", e.Cycle)
		}
	}
}

// TestPipeLogSquashOnBoundaryCycle pins the truncation boundary semantics:
// an event at cycle == MaxCycles is dropped, at MaxCycles-1 it is kept. The
// probe event is the first squash of a deterministic mispredicting run —
// truncating exactly at its cycle must hide it, one cycle later must not.
func TestPipeLogSquashOnBoundaryCycle(t *testing.T) {
	p := randomProgram(11) // has a loop with a mispredicting exit
	img, err := loader.Load(p, mkCfg(machine.Dyn256, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(maxCycles int64) *core.PipeLog {
		pipe := &core.PipeLog{MaxCycles: maxCycles}
		if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
			t.Fatal(err)
		}
		return pipe
	}
	firstSquash := int64(-1)
	for _, e := range run(10_000).Events {
		if e.Kind == core.PipeSquash {
			firstSquash = e.Cycle
			break
		}
	}
	if firstSquash < 1 {
		t.Fatalf("probe run has no squash after cycle 0 (first at %d)", firstSquash)
	}
	countSquashes := func(l *core.PipeLog) int {
		n := 0
		for _, e := range l.Events {
			if e.Kind == core.PipeSquash {
				n++
			}
		}
		return n
	}
	// Limit == squash cycle: the squash is at cycle >= limit, so dropped.
	if n := countSquashes(run(firstSquash)); n != 0 {
		t.Errorf("limit %d: recorded %d squashes, want 0 (boundary event must be dropped)", firstSquash, n)
	}
	// Limit one past it: the squash is now inside the window.
	if n := countSquashes(run(firstSquash + 1)); n != 1 {
		t.Errorf("limit %d: recorded %d squashes, want exactly the boundary one", firstSquash+1, n)
	}
}

func TestPipeLogBounded(t *testing.T) {
	p := chainProgram(500)
	img, _ := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	pipe := &core.PipeLog{MaxCycles: 10}
	if _, err := core.Run(img, nil, nil, nil, nil, core.Limits{Pipe: pipe}); err != nil {
		t.Fatal(err)
	}
	for _, e := range pipe.Events {
		if e.Cycle >= 10 {
			t.Fatalf("event at cycle %d despite 10-cycle bound", e.Cycle)
		}
	}
}
