package core

import (
	"testing"

	"fgpsim/internal/ir"
)

// These tests pin down the structure-of-arrays recycling contract (soa.go).
// Recycled node slots are deliberately NOT zeroed — issueNode rewrites every
// field the engine reads before use — so the store's own obligations shrink
// to two: the consumer edge list must be released back to the arena at put
// (a dangling edge on a reused slot would wake an unrelated node), and the
// watermark quarantine must gate reuse (a slot recycled while the event
// wheel or an older block could still reference it would corrupt the run).

// dirtyNode sets every column of slot nd to a nonzero value and gives it a
// consumer edge, mimicking a node freed after a full life — except qpos,
// which the engine guarantees is zero whenever a node is freed (queued nodes
// are removed from the heaps at squash; done nodes are never queued).
func dirtyNode(s *nodeStore, nd nref) {
	s.d[nd] = nodeSlot{
		n:        &ir.Node{Op: ir.Add},
		op:       ir.Add,
		blk:      3,
		seq:      7,
		status:   nsDone | nsSquashed | nsHandled | nsInjected,
		srcA:     1,
		srcB:     2,
		valA:     11,
		valB:     12,
		pending:  2,
		val:      13,
		doneAt:   99,
		addr:     0x40,
		msize:    4,
		consHead: nilRef,
	}
	s.edges.add(&s.d[nd].consHead, nd)
}

// assertRecycledNode checks the invariants a recycled slot must carry: the
// consumer list released (and the arena cell actually reusable) and qpos
// still zero. Everything else is allowed to be stale.
func assertRecycledNode(t *testing.T, s *nodeStore, nd nref) {
	t.Helper()
	if s.d[nd].consHead != nilRef {
		t.Errorf("node %d: consumer list not released (head %d)", nd, s.d[nd].consHead)
	}
	if s.edges.free == nilRef {
		t.Errorf("node %d: freed consumer edges not returned to the arena", nd)
	}
	if s.qpos[nd] != 0 {
		t.Errorf("node %d: qpos %d on a recycled slot (freed while queued?)", nd, s.qpos[nd])
	}
}

func TestNodeStoreRecycleReleasesEdges(t *testing.T) {
	var s nodeStore
	s.edges = newEdgeArena()
	nd := s.alloc(noSeqFloor, 0)
	dirtyNode(&s, nd)
	s.put(nd, 10, 20)
	// Watermarks unmet: the slot must not be reused yet.
	if got := s.alloc(5, 15); got == nd {
		t.Fatalf("slot %d reused before its watermarks (seqWM=10, cycleWM=20)", nd)
	}
	got := s.alloc(10, 20)
	if got != nd {
		t.Fatalf("expected recycled slot %d once watermarks met, got %d", nd, got)
	}
	assertRecycledNode(t, &s, got)
}

func TestNodeStoreQuarantineGating(t *testing.T) {
	var s nodeStore
	s.edges = newEdgeArena()
	a := s.alloc(noSeqFloor, 0)
	b := s.alloc(noSeqFloor, 0)
	s.put(a, 1, 1)
	s.put(b, 2, 10)
	// The quarantine is FIFO: b (cycleWM=10) at the back blocks nothing,
	// but a promoted entry goes through the free list, so a alone is
	// reusable at cycle 1.
	if got := s.alloc(noSeqFloor, 1); got != a {
		t.Errorf("alloc at cycle 1 returned %d, want recycled %d", got, a)
	}
	// b's watermark is still unmet: the store must grow instead.
	if got := s.alloc(noSeqFloor, 1); got == b {
		t.Errorf("slot %d reused before its cycle watermark", b)
	}
	// Once met, b is recycled rather than growing again.
	if got := s.alloc(noSeqFloor, 10); got != b {
		t.Errorf("alloc at cycle 10 returned %d, want recycled %d", got, b)
	}
}

func TestBlockStoreRecycleIsFresh(t *testing.T) {
	var s blockStore
	ab := s.alloc()
	s.xb[ab] = &ir.Block{ID: 4}
	s.seq0[ab] = 9
	s.nodes[ab] = append(s.nodes[ab], 1, 2)
	s.asserts[ab] = append(s.asserts[ab], 1)
	s.stores[ab] = append(s.stores[ab], 2)
	s.sys[ab] = append(s.sys[ab], 1)
	s.nDone[ab] = 2
	s.flags[ab] = abIssuedAll | abWillFault | abTermIsBranch | abTermPredTaken
	s.term[ab] = 2
	s.rsSnap[ab] = &rsNode{depth: 1}
	s.cursorSnap[ab] = 3
	s.predSnap[ab] = 5
	s.predToken[ab] = 6
	s.put(ab)
	got := s.alloc()
	if got != ab {
		t.Fatalf("expected recycled block %d, got %d", ab, got)
	}
	if s.xb[got] != nil || s.seq0[got] != 0 || s.nDone[got] != 0 || s.flags[got] != 0 {
		t.Errorf("block %d: scalar fields not reset", got)
	}
	if len(s.nodes[got]) != 0 || len(s.asserts[got]) != 0 || len(s.stores[got]) != 0 ||
		len(s.sys[got]) != 0 {
		t.Errorf("block %d: node lists not truncated", got)
	}
	if s.term[got] != nilRef || s.rsSnap[got] != nil || s.cursorSnap[got] != 0 ||
		s.predSnap[got] != 0 || s.predToken[got] != 0 {
		t.Errorf("block %d: checkpoint fields not reset", got)
	}
}

func TestEdgeArenaReuse(t *testing.T) {
	a := newEdgeArena()
	var h1, h2 int32 = nilRef, nilRef
	a.add(&h1, 10)
	a.add(&h1, 11)
	a.add(&h1, 12)
	a.freeList(&h1)
	if h1 != nilRef {
		t.Fatalf("freeList left head %d", h1)
	}
	// The freed cells must be reused before the arena grows.
	before := len(a.to)
	a.add(&h2, 20)
	a.add(&h2, 21)
	a.add(&h2, 22)
	if len(a.to) != before {
		t.Errorf("arena grew to %d cells despite %d free", len(a.to), before)
	}
	var got []nref
	for i := h2; i != nilRef; i = a.next[i] {
		got = append(got, a.to[i])
	}
	if len(got) != 3 {
		t.Fatalf("rebuilt list has %d entries, want 3", len(got))
	}
}
