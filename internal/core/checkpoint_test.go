package core_test

import (
	"bytes"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// ckptVariants are the engine configurations the checkpoint tests sweep:
// both disciplines, perfect and cached memory, both predictor families.
func ckptVariants() []machine.Config {
	v := []machine.Config{
		mkCfg(machine.Static, 8, 'A'),
		mkCfg(machine.Static, 8, 'D'),
		mkCfg(machine.Dyn4, 8, 'D'),
		mkCfg(machine.Dyn256, 8, 'A'),
	}
	g := mkCfg(machine.Dyn256, 8, 'D')
	g.Predictor = machine.GSharePredictor
	v = append(v, g)
	return v
}

// TestCheckpointResumeBitIdentical is the core determinism contract: a run
// armed with CheckpointEvery=K, interrupted at ANY of its checkpoints and
// resumed into a fresh engine (still at cadence K), must finish with the
// same output bytes and the same statistics — cycle counts included — as
// the cadence-K run that was never interrupted.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	p := randomProgram(42)
	// Dynamic runs of this program take well under a hundred cycles, so the
	// cadence must be short for any checkpoint to land before the halt.
	const every = 16
	for _, cfg := range ckptVariants() {
		img, err := loader.Load(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var snaps []*core.EngineState
		lim := core.Limits{
			CheckpointEvery: every,
			Checkpoint: func(st *core.EngineState) error {
				snaps = append(snaps, st)
				return nil
			},
		}
		straight, err := core.Run(img, nil, nil, nil, nil, lim)
		if err != nil {
			t.Fatalf("%s: straight run: %v", cfg, err)
		}
		if len(snaps) == 0 {
			t.Fatalf("%s: cadence %d produced no checkpoints in %d cycles",
				cfg, every, straight.Stats.Cycles)
		}
		for i, snap := range snaps {
			res, err := core.Run(img, nil, nil, nil, nil,
				core.Limits{CheckpointEvery: every, Resume: snap})
			if err != nil {
				t.Fatalf("%s: resume from checkpoint %d: %v", cfg, i, err)
			}
			if !bytes.Equal(res.Output, straight.Output) {
				t.Fatalf("%s: checkpoint %d: resumed output differs", cfg, i)
			}
			if !reflect.DeepEqual(res.Stats, straight.Stats) {
				t.Fatalf("%s: checkpoint %d: resumed stats differ:\nwant %+v\ngot  %+v",
					cfg, i, straight.Stats, res.Stats)
			}
		}
	}
}

// TestCheckpointArchitecturalInvariance: draining perturbs timing but must
// never change the committed path — output, retired nodes, and retired
// blocks match the unarmed run exactly.
func TestCheckpointArchitecturalInvariance(t *testing.T) {
	p := randomProgram(7)
	for _, cfg := range ckptVariants() {
		img, err := loader.Load(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		armed, err := core.Run(img, nil, nil, nil, nil, core.Limits{CheckpointEvery: 32})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain.Output, armed.Output) {
			t.Fatalf("%s: arming checkpoints changed the output", cfg)
		}
		if plain.Stats.RetiredNodes != armed.Stats.RetiredNodes ||
			plain.Stats.RetiredBlocks != armed.Stats.RetiredBlocks {
			t.Fatalf("%s: arming checkpoints changed retired work: %d/%d vs %d/%d",
				cfg, plain.Stats.RetiredNodes, plain.Stats.RetiredBlocks,
				armed.Stats.RetiredNodes, armed.Stats.RetiredBlocks)
		}
	}
}

// bigLoop builds a program that runs long enough to cross several amortized
// check gates (ctxCheckPeriod blocks/cycles).
func bigLoop(iters int64) *ir.Program {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	p.AddBlock(0, &ir.Block{
		Body: []ir.Node{{Op: ir.Const, Dst: 5, Imm: iters}, {Op: ir.Const, Dst: 6, Imm: 1}},
		Term: ir.Node{Op: ir.Jmp, Target: 1}, Fall: ir.NoBlock,
	})
	p.AddBlock(0, &ir.Block{
		Body: []ir.Node{
			{Op: ir.Sub, Dst: 5, A: 5, B: 6},
			{Op: ir.Xor, Dst: 7, A: 7, B: 5},
			{Op: ir.Const, Dst: 8, Imm: 0},
			{Op: ir.Gt, Dst: 9, A: 5, B: 8},
		},
		Term: ir.Node{Op: ir.Br, A: 9, Target: 1}, Fall: 2,
	})
	p.AddBlock(0, &ir.Block{
		Body: []ir.Node{{Op: ir.Sys, Dst: 10, A: 7, B: ir.NoReg, Imm: ir.SysPutc}},
		Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock,
	})
	f.Entry = 0
	return p
}

// TestPreemptAndResume: a run whose Preempt flag is raised returns a typed
// *core.PreemptedError carrying a resumable snapshot, and the resumed run
// (flag lowered) completes with output identical to an unpreempted run.
func TestPreemptAndResume(t *testing.T) {
	p := bigLoop(20_000)
	for _, cfg := range []machine.Config{
		mkCfg(machine.Static, 8, 'A'),
		mkCfg(machine.Dyn4, 8, 'A'),
	} {
		img, err := loader.Load(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		straight, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		var flag atomic.Bool
		lim := core.Limits{Preempt: &flag}
		if cfg.Disc == machine.Static {
			// The static engine polls the flag at its amortized block gate;
			// raising it before the run lands the preemption at that gate.
			flag.Store(true)
		} else {
			// The dynamic engine polls at cycle 0 too; raise the flag
			// mid-run (via the per-cycle fault hook, which only observes)
			// so the preemption happens with real work in flight.
			lim.Fault = func(p core.FaultPort) {
				if p.Cycle() == 5000 {
					flag.Store(true)
				}
			}
		}
		_, err = core.Run(img, nil, nil, nil, nil, lim)
		var pe *core.PreemptedError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: err = %v, want *core.PreemptedError", cfg, err)
		}
		if pe.State == nil {
			t.Fatalf("%s: preemption carried no snapshot", cfg)
		}
		if pe.Cycle == 0 || pe.Cycle >= straight.Stats.Cycles {
			t.Fatalf("%s: preempted at cycle %d, straight run took %d",
				cfg, pe.Cycle, straight.Stats.Cycles)
		}
		flag.Store(false)
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{Resume: pe.State, Preempt: &flag})
		if err != nil {
			t.Fatalf("%s: resume after preemption: %v", cfg, err)
		}
		if !bytes.Equal(res.Output, straight.Output) {
			t.Fatalf("%s: resumed output differs from unpreempted run", cfg)
		}
		if res.Stats.RetiredBlocks != straight.Stats.RetiredBlocks {
			t.Fatalf("%s: resumed retired blocks %d, want %d",
				cfg, res.Stats.RetiredBlocks, straight.Stats.RetiredBlocks)
		}
	}
}

// TestPreemptHonorsCadence: with a cadence armed, preemption must land on a
// cadence boundary, so the resumed run is bit-identical — cycles and all —
// to the uninterrupted cadence run.
func TestPreemptHonorsCadence(t *testing.T) {
	p := bigLoop(20_000)
	const every = 1 << 13
	img, err := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	straight, err := core.Run(img, nil, nil, nil, nil, core.Limits{CheckpointEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	var flag atomic.Bool
	flag.Store(true)
	_, err = core.Run(img, nil, nil, nil, nil,
		core.Limits{CheckpointEvery: every, Preempt: &flag})
	var pe *core.PreemptedError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *core.PreemptedError", err)
	}
	flag.Store(false)
	res, err := core.Run(img, nil, nil, nil, nil,
		core.Limits{CheckpointEvery: every, Resume: pe.State, Preempt: &flag})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, straight.Output) {
		t.Fatal("resumed output differs from cadence run")
	}
	if !reflect.DeepEqual(res.Stats, straight.Stats) {
		t.Fatalf("resumed stats differ from cadence run:\nwant %+v\ngot  %+v",
			straight.Stats, res.Stats)
	}
}

// TestFillUnitCheckpointUnsupported: fill-unit images mutate their program
// at run time, so arming checkpoints or resuming is refused with a typed
// error, and preemption yields a snapshot-less PreemptedError.
func TestFillUnitCheckpointUnsupported(t *testing.T) {
	p := bigLoop(20_000)
	cfg := mkCfg(machine.Dyn256, 8, 'A')
	cfg.Branch = machine.FillUnit
	img, err := loader.Load(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cu *core.CheckpointUnsupportedError
	_, err = core.Run(img, nil, nil, nil, nil, core.Limits{CheckpointEvery: 64})
	if !errors.As(err, &cu) {
		t.Fatalf("CheckpointEvery on fill-unit: err = %v, want *core.CheckpointUnsupportedError", err)
	}
	_, err = core.Run(img, nil, nil, nil, nil, core.Limits{Resume: &core.EngineState{}})
	if !errors.As(err, &cu) {
		t.Fatalf("Resume on fill-unit: err = %v, want *core.CheckpointUnsupportedError", err)
	}
	var flag atomic.Bool
	flag.Store(true)
	_, err = core.Run(img, nil, nil, nil, nil, core.Limits{Preempt: &flag})
	var pe *core.PreemptedError
	if !errors.As(err, &pe) {
		t.Fatalf("Preempt on fill-unit: err = %v, want *core.PreemptedError", err)
	}
	if pe.State != nil {
		t.Fatal("fill-unit preemption returned a snapshot; it cannot be valid")
	}
}

// TestResumeRejectsMismatchedSnapshot: structurally wrong snapshots are
// refused with *core.ResumeError instead of corrupting the run.
func TestResumeRejectsMismatchedSnapshot(t *testing.T) {
	p := randomProgram(3)
	img, err := loader.Load(p, mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap *core.EngineState
	_, err = core.Run(img, nil, nil, nil, nil, core.Limits{
		CheckpointEvery: 16,
		Checkpoint: func(st *core.EngineState) error {
			if snap == nil {
				snap = st
			}
			return nil
		},
	})
	if err != nil || snap == nil {
		t.Fatalf("no checkpoint captured (err=%v)", err)
	}

	cases := map[string]func(*core.EngineState){
		"static-flag":   func(s *core.EngineState) { s.Static = true },
		"short-memory":  func(s *core.EngineState) { s.Mem = s.Mem[:1] },
		"wild-block":    func(s *core.EngineState) { s.NextBlock = 1 << 20 },
		"wild-retstack": func(s *core.EngineState) { s.RetStack = []ir.BlockID{1 << 20} },
		"bad-cursor":    func(s *core.EngineState) { s.Cursor = -1 },
		"bad-inpos":     func(s *core.EngineState) { s.InPos[0] = -5 },
		"nil-stats":     func(s *core.EngineState) { s.Stats = nil },
	}
	for name, mutate := range cases {
		bad := *snap
		bad.Mem = append([]byte(nil), snap.Mem...)
		bad.RetStack = append([]ir.BlockID(nil), snap.RetStack...)
		mutate(&bad)
		_, err := core.Run(img, nil, nil, nil, nil, core.Limits{Resume: &bad})
		var re *core.ResumeError
		if !errors.As(err, &re) {
			t.Errorf("%s: err = %v, want *core.ResumeError", name, err)
		}
	}
}
