package core_test

import (
	"bytes"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// alternating is a program whose hot branch follows a strict
// pattern correlated with loop position: a 2-bit counter does poorly, a
// history-based predictor learns it.
const alternatingSrc = `
int main() {
	int i;
	int x = 0;
	for (i = 0; i < 4000; i++) {
		if ((i & 3) == 3) x += 2;   // taken every 4th iteration
		else x -= 1;
		if (x < 0) x = -x;
	}
	putc('0' + x % 10);
	putc('\n');
	return 0;
}
`

func TestGSharePredictorBeatsTwoBitOnPatterns(t *testing.T) {
	p, err := minic.Compile("alt.mc", alternatingSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.Run(p, nil, nil, interp.Options{MaxNodes: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}

	run := func(kind machine.PredictorKind) *core.RunResult {
		cfg := mkCfg(machine.Dyn4, 8, 'A')
		cfg.Predictor = kind
		img, err := loader.Load(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, ref.Output) {
			t.Fatalf("%v: wrong output %q", kind, res.Output)
		}
		return res
	}

	twoBit := run(machine.TwoBit)
	gshare := run(machine.GSharePredictor)
	t.Logf("accuracy: 2-bit %.3f, gshare %.3f", twoBit.Stats.PredictionAccuracy(), gshare.Stats.PredictionAccuracy())
	if gshare.Stats.PredictionAccuracy() <= twoBit.Stats.PredictionAccuracy() {
		t.Errorf("gshare (%.3f) should beat the 2-bit counter (%.3f) on a periodic pattern",
			gshare.Stats.PredictionAccuracy(), twoBit.Stats.PredictionAccuracy())
	}
	if gshare.Stats.Cycles >= twoBit.Stats.Cycles {
		t.Errorf("better prediction should save cycles: gshare %d, 2-bit %d",
			gshare.Stats.Cycles, twoBit.Stats.Cycles)
	}
}

// TestWindowOverrideSweep checks that intermediate window sizes order
// sensibly between the paper's points and compute identically.
func TestWindowOverrideSweep(t *testing.T) {
	p := randomProgram(21)
	ref, err := interp.Run(p, nil, nil, interp.Options{MaxNodes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, w := range []int{1, 2, 8, 32, 128} {
		cfg := mkCfg(machine.Dyn256, 8, 'A')
		cfg.WindowOverride = w
		img, err := loader.Load(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, ref.Output) {
			t.Fatalf("window %d: wrong output", w)
		}
		if got := res.Stats.MeanWindowBlocks(); got > float64(w)+1e-9 {
			t.Errorf("window %d: occupancy %.2f exceeds bound", w, got)
		}
		npc := res.Stats.NPC()
		if npc < prev*0.85 {
			t.Errorf("window %d NPC %.2f fell well below window predecessor %.2f", w, npc, prev)
		}
		if npc > prev {
			prev = npc
		}
	}
}
