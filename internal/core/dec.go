package core

import "fgpsim/internal/ir"

// decTable is the dynamic engine's decoded-metadata table: one byte of
// issue-relevant classification per node of each basic block, computed the
// first time a block is fetched and memoized for the rest of the run. The
// issue stage reads these bytes instead of re-deriving opcode classes on
// every fetch of a hot block — and in batched multi-config runs
// (batch.go) all K lanes of one program image share a single table, so the
// fetch/decode classification pass is paid once per block for the whole
// batch rather than once per lane.
//
// The table is safe to share between engines that step in one goroutine
// (batch lanes are round-robin interleaved, never concurrent). Fill-unit
// images materialize new blocks at run time; of() grows the table lazily,
// which is also why fill-unit lanes never share one (their programs
// diverge).
type decTable struct {
	blocks [][]uint8 // indexed by BlockID; len(Body)+1 entries, terminator last
}

// Node metadata bits.
const (
	metaMem    uint8 = 1 << 0 // occupies a memory issue slot
	metaStore  uint8 = 1 << 1
	metaHasDst uint8 = 1 << 2
)

func decMeta(op ir.Op) uint8 {
	var m uint8
	if op.IsMem() {
		m |= metaMem
	}
	if op.IsStore() {
		m |= metaStore
	}
	if op.HasDst() {
		m |= metaHasDst
	}
	return m
}

// of returns the metadata bytes for a block, decoding it on first use.
func (d *decTable) of(p *ir.Program, id ir.BlockID) []uint8 {
	if int(id) >= len(d.blocks) {
		nb := make([][]uint8, len(p.Blocks))
		copy(nb, d.blocks)
		d.blocks = nb
	}
	if m := d.blocks[id]; m != nil {
		return m
	}
	b := p.Block(id)
	m := make([]uint8, len(b.Body)+1)
	for i := range b.Body {
		m[i] = decMeta(b.Body[i].Op)
	}
	m[len(b.Body)] = decMeta(b.Term.Op)
	d.blocks[id] = m
	return m
}
