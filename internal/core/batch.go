package core

import (
	"context"
	"fmt"

	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// Batched multi-config simulation: K configuration lanes — predictor,
// window, and memory-system variants of the *same* translated program image
// — run through one shared fetch/decode infrastructure. Every lane is a
// full dynamic engine with private architectural and speculative state, but
// the lanes share what is identical across a sweep row:
//
//   - the program image (blocks, chains, the loader's translation),
//   - the decoded per-block metadata table (dec.go) — the classification
//     pass of fetch/decode runs once per block for the whole batch,
//   - the recorded perfect-prediction trace and the mapped branch hints
//     (the hint mapping walks every block of the program; unbatched sweeps
//     pay it once per cell).
//
// Lanes step in lockstep quanta: the scheduler round-robins batchQuantum
// cycles per lane, so all K lanes walk the same code region together and
// the shared image and decode rows stay hot while every lane reads them.
// Once a lane's schedule diverges (it halts, faults differently, or simply
// runs longer), it keeps its own pace — divergence only shrinks the reuse
// window, never changes results. Each lane's output is bit-identical to
// the same configuration run through Run: the engines interleave on one
// goroutine and share no mutable state.
//
// Fill-unit lanes cannot batch: the fill unit enlarges its image at run
// time (AddChain mutates the program), which would leak one lane's
// run-time chains into the others. Static-discipline lanes have their own
// engine with no SoA stores to share; both are rejected up front.

// BatchLane is one lane of a batched run: an image (sharing its Prog with
// every other lane) and the lane's private limits.
type BatchLane struct {
	Img *loader.Image
	Lim Limits
}

// batchQuantum is how many cycles each lane advances per scheduling turn.
// Large enough that each lane's private working set (env memory, window
// stores) stays resident for a useful stretch between switches, small
// enough that lanes still sweep the same code region together and the
// shared image/decode rows stay cache-hot across the batch.
const batchQuantum = 16384

// RunBatch simulates K configuration lanes of one program image over the
// same inputs. It returns one result and one error slot per lane: a lane
// failing (cycle limit, cancellation, unrecoverable fault) does not stop
// the other lanes. The top-level error reports batch-level misuse only
// (mixed programs, a non-batchable lane).
func RunBatch(lanes []BatchLane, in0, in1 []byte, trace []ir.BlockID, hints map[ir.BlockID]bool) ([]*RunResult, []error, error) {
	return RunBatchContext(context.Background(), lanes, in0, in1, trace, hints)
}

// RunBatchContext is RunBatch with cancellation, checked per lane at the
// engines' amortized gates.
func RunBatchContext(ctx context.Context, lanes []BatchLane, in0, in1 []byte, trace []ir.BlockID, hints map[ir.BlockID]bool) ([]*RunResult, []error, error) {
	if len(lanes) == 0 {
		return nil, nil, fmt.Errorf("core: empty batch")
	}
	prog := lanes[0].Img.Prog
	for i, ln := range lanes {
		cfg := ln.Img.Cfg
		if cfg.Disc == machine.Static {
			return nil, nil, fmt.Errorf("core: batch lane %d is statically scheduled", i)
		}
		if cfg.Branch == machine.FillUnit {
			return nil, nil, fmt.Errorf("core: batch lane %d uses the fill unit (its image mutates at run time)", i)
		}
		if cfg.Branch == machine.Perfect && trace == nil {
			return nil, nil, fmt.Errorf("core: batch lane %d needs a recorded trace for perfect prediction", i)
		}
		if ln.Img.Prog != prog {
			return nil, nil, fmt.Errorf("core: batch lane %d runs a different program image", i)
		}
		if cfg.Branch == machine.FillUnit && (ln.Lim.CheckpointEvery > 0 || ln.Lim.Resume != nil) {
			return nil, nil, &CheckpointUnsupportedError{Reason: "fill-unit images mutate at run time"}
		}
	}

	// Shared batch state: one decode table, one hint mapping.
	dec := &decTable{}
	var mapped map[ir.BlockID]bool
	if hints != nil {
		mapped = mapHints(lanes[0].Img, hints)
	}

	results := make([]*RunResult, len(lanes))
	errs := make([]error, len(lanes))
	engines := make([]*dynamicEngine, len(lanes))
	for i, ln := range lanes {
		e := newDynamicEngine(ln.Img, in0, in1, trace, ln.Lim)
		e.ctx = ctx
		e.dec = dec
		if mapped != nil {
			e.SetMappedHints(mapped)
		}
		if ln.Lim.Resume != nil {
			if err := e.restore(ln.Lim.Resume); err != nil {
				errs[i] = err
				continue
			}
		}
		engines[i] = e
	}

	live := 0
	for i := range engines {
		if engines[i] != nil && errs[i] == nil {
			live++
		}
	}
	for live > 0 {
		for i, e := range engines {
			if e == nil || errs[i] != nil || results[i] != nil {
				continue
			}
			finished, err := e.stepCycles(batchQuantum)
			if err != nil {
				errs[i] = err
				live--
				continue
			}
			if finished {
				results[i] = e.result()
				live--
			}
		}
	}
	return results, errs, nil
}
