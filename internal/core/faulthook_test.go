package core_test

import (
	"bytes"
	"errors"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// faultFixture runs one random program clean on a dynamic configuration and
// returns the image plus the reference result.
func faultFixture(t *testing.T, seed int64) (*loader.Image, *core.RunResult) {
	t.Helper()
	p := randomProgram(seed)
	img, err := loader.Load(p, mkCfg(machine.Dyn256, 8, 'D'), nil)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	return img, clean
}

// checkInvisible runs the image with the given hook and asserts the repair
// contract: identical output and retired work, and every injection repaired.
func checkInvisible(t *testing.T, what string, img *loader.Image, clean *core.RunResult, hook core.FaultHook) {
	t.Helper()
	res, err := core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: 1 << 24, Fault: hook})
	if err != nil {
		t.Fatalf("%s: injected run failed: %v", what, err)
	}
	if !bytes.Equal(res.Output, clean.Output) {
		t.Errorf("%s: injected run output differs from clean run", what)
	}
	if res.Stats.RetiredNodes != clean.Stats.RetiredNodes {
		t.Errorf("%s: retired %d nodes, clean run retired %d", what, res.Stats.RetiredNodes, clean.Stats.RetiredNodes)
	}
	if res.Stats.RetiredBlocks != clean.Stats.RetiredBlocks {
		t.Errorf("%s: retired %d blocks, clean run retired %d", what, res.Stats.RetiredBlocks, clean.Stats.RetiredBlocks)
	}
	if res.Stats.InjectedFaults == 0 {
		t.Errorf("%s: hook never managed to inject", what)
	}
	if res.Stats.RepairedFaults != res.Stats.InjectedFaults {
		t.Errorf("%s: %d injected but %d repaired", what, res.Stats.InjectedFaults, res.Stats.RepairedFaults)
	}
}

// TestInjectSquashIsInvisible: squashing a window position and refetching
// from its checkpoint must not change the architectural results.
func TestInjectSquashIsInvisible(t *testing.T) {
	img, clean := faultFixture(t, 11)
	done := 0
	checkInvisible(t, "inject-squash", img, clean, func(p core.FaultPort) {
		if done >= 3 || p.Cycle() < 10 || p.ActiveBlocks() == 0 {
			return
		}
		if _, ok := p.InjectSquash(int(p.Cycle()) % p.ActiveBlocks()); ok {
			done++
		}
	})
}

// TestCorruptValueIsRepaired: flipping a completed result bit and recovering
// the block from its checkpoint must not change the architectural results.
func TestCorruptValueIsRepaired(t *testing.T) {
	img, clean := faultFixture(t, 12)
	done := 0
	checkInvisible(t, "corrupt-value", img, clean, func(p core.FaultPort) {
		if done >= 3 || p.Cycle() < 10 || p.ActiveBlocks() == 0 {
			return
		}
		if _, ok := p.CorruptValue(0, uint64(p.Cycle())*0x9e3779b97f4a7c15); ok {
			done++
		}
	})
}

// TestForcedMemViolationIsRepaired: forcing disambiguation-blocked loads to
// execute early must be caught at retirement — either verified benign or
// replayed — leaving the architectural results unchanged.
func TestForcedMemViolationIsRepaired(t *testing.T) {
	img, clean := faultFixture(t, 13)
	done := 0
	checkInvisible(t, "mem-violation", img, clean, func(p core.FaultPort) {
		if done >= 5 {
			return
		}
		if _, ok := p.ForceMemViolation(uint64(p.Cycle()) * 0x2545f4914f6cdd1d); ok {
			done++
		}
	})
}

// TestPredictorPerturbationIsInvisible: flipped predictor state only ever
// causes extra (repaired) mispredicts, never architectural divergence.
func TestPredictorPerturbationIsInvisible(t *testing.T) {
	img, clean := faultFixture(t, 14)
	done := 0
	checkInvisible(t, "predictor-bit", img, clean, func(p core.FaultPort) {
		if done >= 10 || p.Cycle()%37 != 0 {
			return
		}
		if p.PerturbPredictor(uint64(p.Cycle())*0x9e3779b97f4a7c15) != "" {
			done++
		}
	})
}

// TestCorruptArchMachineChecks: corrupting committed architectural state is
// beyond checkpoint repair and must poison the run with a typed
// *core.UnrecoverableFaultError — never a panic or silent corruption.
func TestCorruptArchMachineChecks(t *testing.T) {
	img, _ := faultFixture(t, 15)
	done := false
	_, err := core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: 1 << 24, Fault: func(p core.FaultPort) {
		if !done && p.Cycle() == 16 {
			done = p.CorruptArch(0xfeedface) != ""
		}
	}})
	if !done {
		t.Fatal("CorruptArch never injected")
	}
	var mc *core.UnrecoverableFaultError
	if !errors.As(err, &mc) {
		t.Fatalf("err = %v, want *core.UnrecoverableFaultError", err)
	}
	if mc.Kind != "arch-state" {
		t.Errorf("machine check kind = %q, want arch-state", mc.Kind)
	}
}

// TestStaticEngineIgnoresFaultHook: the static in-order engine has no
// speculative state to perturb; the hook must simply never fire.
func TestStaticEngineIgnoresFaultHook(t *testing.T) {
	p := randomProgram(16)
	img, err := loader.Load(p, mkCfg(machine.Static, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	res, err := core.Run(img, nil, nil, nil, nil, core.Limits{Fault: func(core.FaultPort) { called = true }})
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fault hook fired on the static engine")
	}
	if res.Stats.InjectedFaults != 0 {
		t.Error("static run counted injected faults")
	}
}
