package core

import (
	"context"

	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/mem"
	"fgpsim/internal/stats"
)

// staticEngine models the statically scheduled machine: the translating
// loader packed each block into multinodewords; the engine issues one word
// per cycle, in order, stalling whenever any operand of the word is not yet
// ready (the hardware interlock that covers cache misses). Basic blocks
// execute one at a time — there is no speculation across block boundaries,
// which is why dynamic scheduling with a window of one block performs
// similarly (the paper's observation). Enlarged blocks execute
// transactionally: stores are buffered semantically by an undo log, and an
// assert fault discards the whole block's work.
type staticEngine struct {
	img *loader.Image
	env *env
	ms  *mem.System
	st  *stats.Run
	lim Limits
	ctx context.Context

	regs       [ir.NumRegs]int32
	regReadyAt [ir.NumRegs]int64
	retStack   []ir.BlockID

	// Transaction state for enlarged blocks.
	regSnap       [ir.NumRegs]int32
	readySnap     [ir.NumRegs]int64
	memUndo       []memUndo
	transactional bool

	// Checkpoint state (checkpoint.go). Static checkpoints land at block
	// boundaries, so arming them perturbs no timing at all.
	ckptEvery   int64
	lastCkpt    int64
	resumed     bool
	resumeBlock ir.BlockID
	resumeCycle int64
}

type memUndo struct {
	addr int64
	size int8
	old  [4]byte
}

func newStaticEngine(img *loader.Image, in0, in1 []byte, lim Limits) *staticEngine {
	e := &staticEngine{
		img: img,
		env: newEnv(img.Prog, in0, in1),
		ms:  mem.New(img.Cfg.Mem),
		st:  stats.New(),
		lim: lim,
	}
	e.regs[ir.RegSP] = ir.InitialSP(img.Prog.MemSize)
	e.ckptEvery = lim.CheckpointEvery
	return e
}

func (e *staticEngine) run() (*RunResult, error) {
	p := e.img.Prog
	cur := p.Func(p.Entry).Entry
	cycle := int64(0) // first issue cycle of the current block
	if e.resumed {
		cur, cycle = e.resumeBlock, e.resumeCycle
	}
	maxCycles := e.lim.maxCycles()

	blocks := int64(0)
	for {
		next, nextCycle, halted, err := e.execBlock(cur, cycle)
		if err != nil {
			return nil, err
		}
		if halted {
			e.st.Cycles = nextCycle
			break
		}
		if nextCycle > maxCycles {
			return nil, &CycleLimitError{nextCycle}
		}
		if blocks++; blocks&(ctxCheckPeriod-1) == 0 {
			if e.lim.Heartbeat != nil {
				e.lim.Heartbeat.Add(1)
			}
			if e.ctx != nil {
				if cerr := e.ctx.Err(); cerr != nil {
					return nil, &CanceledError{Cycle: nextCycle, Err: cerr}
				}
			}
			if e.lim.Preempt != nil && e.lim.Preempt.Load() {
				return nil, &PreemptedError{Cycle: nextCycle, State: e.captureStatic(next, nextCycle)}
			}
		}
		if e.ckptEvery > 0 && nextCycle-e.lastCkpt >= e.ckptEvery {
			e.lastCkpt = nextCycle
			if e.lim.Checkpoint != nil {
				if cerr := e.lim.Checkpoint(e.captureStatic(next, nextCycle)); cerr != nil {
					return nil, cerr
				}
			}
		}
		cur, cycle = next, nextCycle
	}
	if e.ms.Cache != nil {
		e.st.CacheHits = e.ms.Cache.Hits
		e.st.CacheMisses = e.ms.Cache.Misses
	}
	return &RunResult{Output: e.env.out, Stats: e.st}, nil
}

func (e *staticEngine) beginTx() {
	e.regSnap = e.regs
	e.readySnap = e.regReadyAt
	e.memUndo = e.memUndo[:0]
	e.transactional = true
}

func (e *staticEngine) rollbackTx() {
	for i := len(e.memUndo) - 1; i >= 0; i-- {
		u := e.memUndo[i]
		copy(e.env.mem[u.addr:u.addr+int64(u.size)], u.old[:u.size])
	}
	e.regs = e.regSnap
	e.regReadyAt = e.readySnap
	e.memUndo = e.memUndo[:0]
}

func (e *staticEngine) storeTx(a int32, size int64, v int32) {
	if e.transactional {
		addr := e.env.clampAddr(a, size)
		u := memUndo{addr: addr, size: int8(size)}
		copy(u.old[:], e.env.mem[addr:addr+size])
		e.memUndo = append(e.memUndo, u)
	}
	e.env.store(a, size, v)
}

// execBlock runs one block starting at cycle t0 and returns the successor
// block and its first issue cycle.
func (e *staticEngine) execBlock(id ir.BlockID, t0 int64) (next ir.BlockID, nextCycle int64, halted bool, err error) {
	b := e.img.Prog.Block(id)
	words := e.img.Words[id]

	hasAssert := false
	for i := range b.Body {
		if b.Body[i].Op == ir.Assert {
			hasAssert = true
			break
		}
	}
	e.transactional = hasAssert
	if hasAssert {
		e.beginTx()
	}

	issue := t0 - 1
	executed := int64(0)
	for _, w := range words {
		// Interlock: the word issues when all its operands are ready.
		ready := issue + 1
		for _, idx := range w {
			n := e.nodeAt(b, idx)
			for _, r := range []ir.Reg{n.A, n.B} {
				if r != ir.NoReg && e.regReadyAt[r] > ready {
					ready = e.regReadyAt[r]
				}
			}
		}
		issue = ready

		// Execute the word's nodes in program (index) order.
		for _, idx := range w {
			n := e.nodeAt(b, idx)
			executed++
			e.st.ExecutedNodes++
			switch {
			case n.Op.IsPure():
				var a, bb int32
				if n.A != ir.NoReg {
					a = e.regs[n.A]
				}
				if n.B != ir.NoReg {
					bb = e.regs[n.B]
				}
				v, aerr := ir.EvalALU(n.Op, a, bb, n.Imm)
				if aerr != nil {
					return 0, 0, false, aerr
				}
				e.setReg(n.Dst, v, issue+1)

			case n.Op.IsLoad():
				addr := e.env.clampAddr(e.regs[n.A]+int32(n.Imm), sizeOf(n.Op))
				lat := int64(e.ms.LoadLatency(addr))
				e.setReg(n.Dst, e.env.load(e.regs[n.A]+int32(n.Imm), sizeOf(n.Op)), issue+lat)

			case n.Op.IsStore():
				addr := e.env.clampAddr(e.regs[n.A]+int32(n.Imm), sizeOf(n.Op))
				e.ms.StoreTouch(addr)
				e.storeTx(e.regs[n.A]+int32(n.Imm), sizeOf(n.Op), e.regs[n.B])

			case n.Op == ir.Sys:
				var a, bb int32
				if n.A != ir.NoReg {
					a = e.regs[n.A]
				}
				if n.B != ir.NoReg {
					bb = e.regs[n.B]
				}
				e.setReg(n.Dst, e.env.syscall(n.Imm, a, bb), issue+1)

			case n.Op == ir.Assert:
				taken := e.regs[n.A] != 0
				if taken != n.Expect {
					// Fault: discard the block's work, restart off-chain.
					e.rollbackTx()
					e.st.Faults++
					e.st.DiscardedNodes += executed
					return n.Target, issue + 2, false, nil
				}

			case n.Op.IsTerm():
				return e.terminate(b, n, issue, executed)
			}
		}
	}
	// A well-formed schedule ends with the terminator; reaching here means
	// the image's multinodewords are corrupt.
	return 0, 0, false, &ImageError{Block: int(id), Reason: "static schedule missing terminator"}
}

func (e *staticEngine) nodeAt(b *ir.Block, idx int) *ir.Node {
	if idx == len(b.Body) {
		return &b.Term
	}
	return &b.Body[idx]
}

// setReg writes a register value and tracks its ready time. The ready time
// only moves forward: an earlier long-latency write to the same register
// may still be outstanding, and the register stays busy until it lands.
func (e *staticEngine) setReg(r ir.Reg, v int32, readyAt int64) {
	e.regs[r] = v
	if readyAt > e.regReadyAt[r] {
		e.regReadyAt[r] = readyAt
	}
}

// terminate handles the block terminator and retirement bookkeeping.
func (e *staticEngine) terminate(b *ir.Block, n *ir.Node, issue int64, executed int64) (ir.BlockID, int64, bool, error) {
	size := len(b.Body) + 1
	e.st.RetiredNodes += executed
	e.st.RecordBlock(size)
	nextCycle := issue + 1

	switch n.Op {
	case ir.Br:
		taken := e.regs[n.A] != 0
		e.st.Branches++
		// No speculation: the machine simply waits for resolution, so
		// every branch is effectively "correct".
		e.st.BranchesCorrect++
		if taken {
			return n.Target, nextCycle, false, nil
		}
		return b.Fall, nextCycle, false, nil
	case ir.Jmp:
		return n.Target, nextCycle, false, nil
	case ir.Call:
		e.retStack = append(e.retStack, b.Fall)
		return e.img.Prog.Func(n.Callee).Entry, nextCycle, false, nil
	case ir.Ret:
		if len(e.retStack) == 0 {
			return 0, nextCycle, true, nil
		}
		next := e.retStack[len(e.retStack)-1]
		e.retStack = e.retStack[:len(e.retStack)-1]
		return next, nextCycle, false, nil
	case ir.Halt:
		return 0, nextCycle, true, nil
	}
	return 0, 0, false, &ImageError{Block: int(b.ID), Reason: "bad terminator " + n.Op.String()}
}
