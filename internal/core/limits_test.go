package core_test

import (
	"context"
	"errors"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// infiniteLoop builds a program that never halts: a single empty block
// jumping to itself.
func infiniteLoop() *ir.Program {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	p.AddBlock(0, &ir.Block{Term: ir.Node{Op: ir.Jmp, Target: 0}, Fall: ir.NoBlock})
	f.Entry = 0
	return p
}

// TestCycleLimitErrorReportsCycleCount: both engines return a typed
// *core.CycleLimitError whose cycle count sits just past the configured
// budget — callers can see how far the runaway run got.
func TestCycleLimitErrorReportsCycleCount(t *testing.T) {
	p := infiniteLoop()
	const budget = 10_000
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn4, machine.Dyn256} {
		img, err := loader.Load(p, mkCfg(d, 8, 'A'), nil)
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: budget})
		var cl *core.CycleLimitError
		if !errors.As(err, &cl) {
			t.Fatalf("%s: err = %v, want *core.CycleLimitError", d, err)
		}
		// The engines check the budget at block/cycle granularity, so the
		// reported count overshoots by at most one block's latency.
		if cl.Cycles <= budget || cl.Cycles > budget+64 {
			t.Errorf("%s: limit error reports %d cycles, want just past %d", d, cl.Cycles, budget)
		}
	}
}

// TestDefaultCycleCapIsGenerous: Limits{} (MaxCycles 0) must not abort a
// normal terminating run — the default cap exists only to stop runaways.
func TestDefaultCycleCapIsGenerous(t *testing.T) {
	p := randomProgram(7)
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn256} {
		img, err := loader.Load(p, mkCfg(d, 8, 'A'), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{})
		if err != nil {
			t.Fatalf("%s: default limits aborted a terminating run: %v", d, err)
		}
		if res.Stats.Cycles == 0 {
			t.Errorf("%s: run completed with zero cycles", d)
		}
	}
}

// TestPipeLogBoundIsIndependentOfCycleLimit: the pipeline log stops at its
// own MaxCycles regardless of how far the simulation runs, so a tight log
// window on a long (here: runaway) run stays small.
func TestPipeLogBoundIsIndependentOfCycleLimit(t *testing.T) {
	img, err := loader.Load(infiniteLoop(), mkCfg(machine.Dyn4, 8, 'A'), nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &core.PipeLog{MaxCycles: 50}
	_, err = core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: 10_000, Pipe: pipe})
	var cl *core.CycleLimitError
	if !errors.As(err, &cl) {
		t.Fatalf("err = %v, want *core.CycleLimitError", err)
	}
	if len(pipe.Events) == 0 {
		t.Fatal("pipe log recorded nothing")
	}
	for _, ev := range pipe.Events {
		if ev.Cycle >= 50 {
			t.Fatalf("pipe log recorded event at cycle %d, past its own bound of 50", ev.Cycle)
		}
	}
}

// TestRunContextCancellation: a canceled context aborts both engines with a
// typed *core.CanceledError wrapping the cause.
func TestRunContextCancellation(t *testing.T) {
	p := infiniteLoop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn256} {
		img, err := loader.Load(p, mkCfg(d, 8, 'A'), nil)
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.RunContext(ctx, img, nil, nil, nil, nil, core.Limits{})
		var ce *core.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: err = %v, want *core.CanceledError", d, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: CanceledError does not wrap context.Canceled: %v", d, err)
		}
	}
}
