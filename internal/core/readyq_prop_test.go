package core

import (
	"math/rand"
	"sort"
	"testing"
)

// Property test for the intrusive ready queue: under arbitrary interleavings
// of push, pop, and remove (the operations squashFrom performs mid-heap),
// the queue must always pop the oldest sequence number present, and the
// qpos column must stay a perfect inverse of the heap array. The scheduler's
// oldest-ready-first order is part of the engine's bit-identity contract, so
// a heap-invariant violation here would silently change figure tables.

// qModel mirrors the queue's intended contents.
type qModel struct {
	seqs map[nref]int64
}

func checkHeapInvariants(t *testing.T, q *readyQ, qpos []int32, m *qModel) {
	t.Helper()
	if len(q.a) != len(m.seqs) {
		t.Fatalf("heap has %d entries, model has %d", len(q.a), len(m.seqs))
	}
	for i, en := range q.a {
		if want, ok := m.seqs[en.ref]; !ok {
			t.Fatalf("heap holds node %d not in model", en.ref)
		} else if want != en.seq {
			t.Fatalf("node %d carries seq %d, model says %d", en.ref, en.seq, want)
		}
		if int(qpos[en.ref])-1 != i {
			t.Fatalf("qpos[%d] = %d, want heap position %d+1", en.ref, qpos[en.ref], i)
		}
		if parent := (i - 1) / 2; i > 0 && q.a[parent].seq > en.seq {
			t.Fatalf("heap order violated: a[%d].seq=%d > a[%d].seq=%d", parent, q.a[parent].seq, i, en.seq)
		}
	}
}

func TestReadyQPropertyInterleaved(t *testing.T) {
	const nodes = 128
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 50; trial++ {
		var q readyQ
		qpos := make([]int32, nodes)
		m := &qModel{seqs: make(map[nref]int64)}
		nextSeq := int64(trial * 1000)
		free := make([]nref, nodes)
		for i := range free {
			free[i] = nref(i)
		}
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 5 && len(free) > 0: // push a new node with a random-ish seq
				nd := free[len(free)-1]
				free = free[:len(free)-1]
				// Random order of arrival: seqs are unique but pushed shuffled.
				seq := nextSeq + int64(rng.Intn(64))*7
				for used := true; used; {
					used = false
					for _, s := range m.seqs {
						if s == seq {
							seq++
							used = true
						}
					}
				}
				nextSeq++
				q.push(qpos, seq, nd)
				m.seqs[nd] = seq
			case r < 8 && q.len() > 0: // pop must yield the model's minimum
				wantRef, wantSeq := nilRef, int64(0)
				for ref, s := range m.seqs {
					if wantRef == nilRef || s < wantSeq || (s == wantSeq && ref < wantRef) {
						wantRef, wantSeq = ref, s
					}
				}
				if got := q.minSeq(); got != wantSeq {
					t.Fatalf("trial %d op %d: minSeq = %d, model min %d", trial, op, got, wantSeq)
				}
				nd := q.pop(qpos)
				if m.seqs[nd] != wantSeq {
					t.Fatalf("trial %d op %d: popped node %d (seq %d), want oldest seq %d",
						trial, op, nd, m.seqs[nd], wantSeq)
				}
				delete(m.seqs, nd)
				free = append(free, nd)
				if qpos[nd] != 0 {
					t.Fatalf("popped node %d still has qpos %d", nd, qpos[nd])
				}
			case q.len() > 0: // remove a random queued node (squash repositioning)
				i := rng.Intn(q.len())
				nd := q.a[i].ref
				q.remove(qpos, nd)
				delete(m.seqs, nd)
				free = append(free, nd)
				if qpos[nd] != 0 {
					t.Fatalf("removed node %d still has qpos %d", nd, qpos[nd])
				}
			}
			checkHeapInvariants(t, &q, qpos, m)
		}
		// Drain: the remaining pops must come out in ascending seq order.
		var drained []int64
		for q.len() > 0 {
			drained = append(drained, q.minSeq())
			q.pop(qpos)
		}
		if !sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i] < drained[j] }) {
			t.Fatalf("trial %d: drain order not ascending: %v", trial, drained)
		}
	}
}

// TestReadyQRemoveIsNoopWhenAbsent pins remove's contract for nodes not in
// the queue (qpos 0): squashFrom calls it blindly for any node class.
func TestReadyQRemoveIsNoopWhenAbsent(t *testing.T) {
	var q readyQ
	qpos := make([]int32, 4)
	q.push(qpos, 10, 1)
	q.remove(qpos, 2) // never queued
	if q.len() != 1 || q.minRef() != 1 {
		t.Fatalf("remove of absent node disturbed the queue: len=%d", q.len())
	}
}
