package core_test

import (
	"bytes"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// TestOldestFirstFaultOrdering constructs an enlarged-style block where the
// YOUNGER assert's condition is ready immediately but the OLDER assert
// depends on a slow (cache-missing) load — and both would fault. A naive
// engine processes the younger fault first and resumes at the wrong
// recovery block; the correct engine waits and resumes at the older
// assert's fault target. The functional interpreter defines the truth.
func TestOldestFirstFaultOrdering(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)

	// Block 0 (the "enlarged" block):
	//   r5 = 8192; r6 = ld [r5]      (cold miss, value 0)
	//   assert r6 expects true  -> fault to block 1   (WILL fault, older)
	//   r7 = 0
	//   assert r7 expects true  -> fault to block 2   (would fault, younger)
	//   putc('P'); halt                                (never reached)
	b0 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 8192},
			{Op: ir.Ld, Dst: 6, A: 5},
			{Op: ir.Assert, A: 6, Expect: true, Target: 1},
			{Op: ir.Const, Dst: 7, Imm: 0},
			{Op: ir.Assert, A: 7, Expect: true, Target: 2},
			{Op: ir.Const, Dst: 8, Imm: 'P'},
			{Op: ir.Sys, Dst: 9, A: 8, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b0)
	// Block 1: the correct recovery — putc('A'); halt.
	b1 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 8, Imm: 'A'},
			{Op: ir.Sys, Dst: 9, A: 8, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b1)
	// Block 2: the wrong recovery — putc('B'); halt.
	b2 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 8, Imm: 'B'},
			{Op: ir.Sys, Dst: 9, A: 8, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b2)
	f.Entry = 0
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	ref, err := interp.Run(p, nil, nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(ref.Output) != "A" {
		t.Fatalf("interpreter output = %q, want A (fault at the older assert)", ref.Output)
	}

	// Memory config D: cold loads take 10 cycles, so the younger assert
	// resolves first in the dynamic engine.
	for _, d := range []machine.Discipline{machine.Static, machine.Dyn1, machine.Dyn4, machine.Dyn256} {
		img, err := loader.Load(p, mkCfg(d, 8, 'D'), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, ref.Output) {
			t.Errorf("%s: output %q, want %q (fault processed out of order?)", d, res.Output, ref.Output)
		}
		if res.Stats.Faults != 1 {
			t.Errorf("%s: faults = %d, want exactly 1", d, res.Stats.Faults)
		}
	}
}

// TestFaultDiscardsSpeculativeSyscall: a system call after an assert in the
// same block must not execute when the assert faults, in every engine.
func TestFaultDiscardsSpeculativeSyscall(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	b0 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 8192},
			{Op: ir.Ld, Dst: 6, A: 5}, // slow 0
			{Op: ir.Assert, A: 6, Expect: true, Target: 1},
			{Op: ir.Const, Dst: 8, Imm: 'X'},
			{Op: ir.Sys, Dst: 9, A: 8, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b0)
	b1 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 8, Imm: 'Y'},
			{Op: ir.Sys, Dst: 9, A: 8, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b1)
	f.Entry = 0

	for _, d := range []machine.Discipline{machine.Static, machine.Dyn4, machine.Dyn256} {
		img, err := loader.Load(p, mkCfg(d, 8, 'D'), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, nil, nil, nil, nil, core.Limits{MaxCycles: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Output) != "Y" {
			t.Errorf("%s: output %q, want Y (speculative syscall leaked?)", d, res.Output)
		}
	}
}
