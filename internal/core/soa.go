package core

import (
	"math"

	"fgpsim/internal/ir"
)

// This file is the dynamic engine's structure-of-arrays state machinery.
// In-flight nodes and active blocks are not heap objects but dense int32
// indices (nref/bref) into parallel slices owned by nodeStore/blockStore:
// one slice per field, so the scheduler's hot loops (status tests, sequence
// compares, wakeups) walk small contiguous arrays instead of chasing
// pointer-linked dnode graphs. Consumer edges live in a shared arena
// (edgeArena) as intrusive singly linked lists; the ready queues, the
// completion event wheel, the write buffer, and the disambiguation queue
// are all keyed by node index.
//
// Recycling a node index is only safe once no stale reference to its
// previous incarnation can be dereferenced. Eager cleanup removes squashed
// nodes from the ready queues, the blocked lists, the offender lists, and
// the disambiguation queue at squash time, and retirement drains the
// disambiguation queue's done prefix; the remaining references (rename
// snapshots of still-active blocks, producer/consumer edges, and the
// completion wheel) are bounded by two watermarks:
//
//   - seqWM: the engine's issue sequence at free time. Every block that
//     could hold a snapshot or producer/consumer reference to the freed
//     node was opened before this point, so the node stays quarantined
//     until the oldest active block is younger than seqWM.
//   - cycleWM: free cycle + timelineSlots (or the node's completion cycle,
//     whichever is later — overflow-wheel entries can outlive the ring). A
//     squashed node's wheel entry fires (and is skipped via its squashed
//     flag) before this point, so the node stays unreused until the wheel
//     has provably passed it.
//
// seqWM and the common-case cycleWM are nondecreasing over a run; a FIFO
// quarantine queue checked at allocation time implements the gate (an
// occasional larger per-node cycleWM only delays promotions behind it,
// which is conservative).

// nref indexes a node's slots in a nodeStore; bref indexes a block's slots
// in a blockStore. nilRef marks "none" in either space.
type (
	nref = int32
	bref = int32
)

const nilRef = int32(-1)

type nstate = uint8

// Node status words: the low two bits hold the lifecycle state, the high
// bits are flags. A status test is one byte load and a mask.
const (
	nsWaiting nstate = iota
	nsReady          // in a ready queue or a blocked list
	nsExecuting
	nsDone

	nsStateMask uint8 = 0b11
	nsSquashed  uint8 = 1 << 2
	nsHandled   uint8 = 1 << 3 // offender (mispredict/fault) already processed
	nsInjected  uint8 = 1 << 4 // executed early by an injected violation
)

// renEntry is one rename-table entry: the in-flight producer of a
// register's current value (prod != nilRef), or the value itself. At eight
// bytes, a full 64-register snapshot copy is 512 bytes.
type renEntry struct {
	prod nref
	val  int32
}

// rsNode is a persistent (immutable) speculative return stack.
type rsNode struct {
	target ir.BlockID
	parent *rsNode
	depth  int
}

// noSeqFloor is the seq floor used when no block is active: every
// quarantined node's seq watermark is satisfied.
const noSeqFloor = int64(math.MaxInt64)

// slabSize is the rsNode slab granularity.
const slabSize = 256

// ---------- node store ----------

// nodeSlot packs the per-node fields that issue, scheduling, execution, and
// completion touch together into one 64-byte record — exactly one cache
// line — so the common case (issue writes a whole node, completion reads
// one) costs a single line instead of a line per column. qpos stays a
// separate column: the
// ready-heap sifts update positions of many unrelated nodes, and sixteen
// positions per line beat one.
type nodeSlot struct {
	n      *ir.Node // source node (immediates, targets, rendering)
	seq    int64
	doneAt int64

	srcA, srcB nref // producers still relevant at issue (nilRef = value)
	valA, valB int32
	pending    int32
	val        int32

	// consHead heads the node's consumer edge list in the shared arena.
	consHead int32
	blk      bref
	addr     uint32 // memory effective address (valid once executing)
	op       ir.Op  // opcode copy: hot-path class tests without a deref
	status   nstate
	msize    int8 // access width (valid once executing)
}

// nodeStore holds every in-flight node, indexed by nref: the packed hot
// record plus the intrusive ready-queue position column. Slots are recycled
// through a watermark-gated quarantine feeding a free list, so the backing
// arrays stop growing once the window's working set has been seen.
type nodeStore struct {
	d    []nodeSlot
	qpos []int32 // ready-queue heap position + 1 (0 = not queued)

	edges edgeArena

	free       []nref
	quarantine pfQueue

	// gateSeq/gateCycle mirror the quarantine head's watermarks (MaxInt64
	// when it is empty) so the per-alloc promotion check is two compares
	// against the store itself instead of a ring-buffer load. The zero
	// value (0,0) is conservative: the first alloc walks the empty queue
	// once and parks the gates at MaxInt64.
	gateSeq   int64
	gateCycle int64
}

func (s *nodeStore) cap() int { return len(s.d) }

// alloc returns a reset node index. seqFloor is the oldest active block's
// seq0 (noSeqFloor when the window is empty) and cycle the current cycle;
// together they decide which quarantined slots are safe to promote.
func (s *nodeStore) alloc(seqFloor, cycle int64) nref {
	if len(s.free) == 0 && s.gateSeq <= seqFloor && s.gateCycle <= cycle {
		for s.quarantine.n > 0 {
			h := s.quarantine.front()
			if h.seqWM > seqFloor || h.cycleWM > cycle {
				break
			}
			s.free = append(s.free, h.ref)
			s.quarantine.popFront()
		}
		if s.quarantine.n > 0 {
			h := s.quarantine.front()
			s.gateSeq, s.gateCycle = h.seqWM, h.cycleWM
		} else {
			s.gateSeq, s.gateCycle = math.MaxInt64, math.MaxInt64
		}
	}
	if n := len(s.free); n > 0 {
		nd := s.free[n-1]
		s.free = s.free[:n-1]
		return nd
	}
	return s.grow()
}

// grow appends one fresh slot.
func (s *nodeStore) grow() nref {
	nd := nref(len(s.d))
	s.d = append(s.d, nodeSlot{srcA: nilRef, srcB: nilRef, blk: nilRef, consHead: nilRef})
	s.qpos = append(s.qpos, 0)
	return nd
}

// put quarantines a freed node under the given watermarks, releasing its
// consumer edges back to the arena (nothing walks them after free: a done
// producer's list was drained at completion, a squashed one's is never
// visited).
func (s *nodeStore) put(nd nref, seqWM, cycleWM int64) {
	s.edges.freeList(&s.d[nd].consHead)
	if s.quarantine.n == 0 {
		s.gateSeq, s.gateCycle = seqWM, cycleWM
	}
	s.quarantine.pushBack(pendingFree{ref: nd, seqWM: seqWM, cycleWM: cycleWM})
}

// Recycled slots are not zeroed on alloc: issueNode rewrites every field the
// engine reads before use (n/op/blk/seq at issue, status and pending before
// wiring, src/val at wiring), and the remaining columns carry their own
// invariants across a free/alloc cycle — qpos is 0 whenever a node is freed
// (queued nodes are removed by squash, done nodes are never queued),
// consHead is nilRef (put released the edge list), and a stale doneAt is
// below the current cycle by the quarantine's cycle watermark, so freeBlock's
// `max(cycle+timelineSlots, doneAt+1)` computes the same watermark a zeroed
// slot would. soa_test.go pins these invariants.

func (s *nodeStore) state(nd nref) nstate       { return s.d[nd].status & nsStateMask }
func (s *nodeStore) setState(nd nref, v nstate) { s.d[nd].status = s.d[nd].status&^nsStateMask | v }
func (s *nodeStore) squashed(nd nref) bool      { return s.d[nd].status&nsSquashed != 0 }

// faulted reports whether a done Assert's condition disagrees with its
// expectation.
func (s *nodeStore) faulted(nd nref) bool {
	sl := &s.d[nd]
	return sl.op == ir.Assert && (sl.val != 0) != sl.n.Expect
}

// ---------- consumer edge arena ----------

// edgeArena stores every node's consumer list as an intrusive singly linked
// list in two parallel slices, recycled through a free list. Wakeup order
// does not matter (readiness is re-ordered by the seq-keyed heaps), so
// lists are prepended in O(1).
type edgeArena struct {
	to   []nref
	next []int32
	free int32
}

func newEdgeArena() edgeArena { return edgeArena{free: nilRef} }

// add prepends an edge to `to` onto the list headed at *head.
func (a *edgeArena) add(head *int32, to nref) {
	var i int32
	if a.free != nilRef {
		i = a.free
		a.free = a.next[i]
		a.to[i] = to
		a.next[i] = *head
	} else {
		i = int32(len(a.to))
		a.to = append(a.to, to)
		a.next = append(a.next, *head)
	}
	*head = i
}

// freeList releases a whole list back to the arena and clears the head.
func (a *edgeArena) freeList(head *int32) {
	i := *head
	if i == nilRef {
		return
	}
	last := i
	for a.next[last] != nilRef {
		last = a.next[last]
	}
	a.next[last] = a.free
	a.free = i
	*head = nilRef
}

// ---------- quarantine ----------

// pendingFree is one quarantined node slot awaiting its watermarks.
type pendingFree struct {
	ref     nref
	seqWM   int64 // reusable once the oldest active block's seq0 reaches this
	cycleWM int64 // ... and the cycle counter reaches this
}

// pfQueue is the FIFO behind the node quarantine.
type pfQueue struct {
	buf  []pendingFree
	head int
	n    int
}

// The ring capacity is always a power of two (grown by doubling from 16),
// so wraparound is a mask, not a division — these run once per node
// alloc/free, squarely on the engine's hot path.

func (r *pfQueue) front() pendingFree { return r.buf[r.head] }

func (r *pfQueue) pushBack(pf pendingFree) {
	if r.n == len(r.buf) {
		nb := make([]pendingFree, max(2*len(r.buf), 16))
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = pf
	r.n++
}

func (r *pfQueue) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// ---------- block store ----------

// Block flag bits.
const (
	abIssuedAll     uint8 = 1 << 0 // terminator has been issued
	abWillFault     uint8 = 1 << 1 // perfect mode: chain diverges from trace
	abTermIsBranch  uint8 = 1 << 2
	abTermPredTaken uint8 = 1 << 3
)

// blockStore holds every active (issued, unretired) basic block's fields as
// parallel slices indexed by bref. Blocks need no quarantine: every
// dangling reference to a freed block lives in its own (simultaneously
// freed) nodes, which the node watermarks already guard.
type blockStore struct {
	xb      []*ir.Block
	seq0    []int64
	nodes   [][]nref
	asserts [][]nref // asserts in issue order, for oldest-first fault gating
	stores  [][]nref
	sys     [][]nref // ready Sys nodes parked until the block reaches the window front
	nDone   []int32
	flags   []uint8
	term    []nref

	// Checkpoints taken at block entry.
	renSnap    [][ir.NumRegs]renEntry
	rsSnap     []*rsNode
	cursorSnap []int32
	predSnap   []uint64

	// predToken is the predictor state the terminator's prediction was made
	// under (terminator bookkeeping lives with the block: only one node per
	// block is a branch).
	predToken []uint64

	free []bref
}

// alloc returns a reset block index.
func (s *blockStore) alloc() bref {
	if n := len(s.free); n > 0 {
		ab := s.free[n-1]
		s.free = s.free[:n-1]
		s.reset(ab)
		return ab
	}
	ab := bref(len(s.seq0))
	s.xb = append(s.xb, nil)
	s.seq0 = append(s.seq0, 0)
	s.nodes = append(s.nodes, nil)
	s.asserts = append(s.asserts, nil)
	s.stores = append(s.stores, nil)
	s.sys = append(s.sys, nil)
	s.nDone = append(s.nDone, 0)
	s.flags = append(s.flags, 0)
	s.term = append(s.term, nilRef)
	s.renSnap = append(s.renSnap, [ir.NumRegs]renEntry{})
	s.rsSnap = append(s.rsSnap, nil)
	s.cursorSnap = append(s.cursorSnap, 0)
	s.predSnap = append(s.predSnap, 0)
	s.predToken = append(s.predToken, 0)
	return ab
}

func (s *blockStore) put(ab bref) { s.free = append(s.free, ab) }

// reset returns a block slot to its freshly allocated state, keeping the
// backing arrays of its node/assert/store lists. The rename snapshot is not
// cleared: openBlock overwrites it wholesale.
func (s *blockStore) reset(ab bref) {
	s.xb[ab] = nil
	s.seq0[ab] = 0
	s.nodes[ab] = s.nodes[ab][:0]
	s.asserts[ab] = s.asserts[ab][:0]
	s.stores[ab] = s.stores[ab][:0]
	s.sys[ab] = s.sys[ab][:0]
	s.nDone[ab] = 0
	s.flags[ab] = 0
	s.term[ab] = nilRef
	s.rsSnap[ab] = nil
	s.cursorSnap[ab] = 0
	s.predSnap[ab] = 0
	s.predToken[ab] = 0
}

// complete reports whether every issued node of the block has executed.
func (s *blockStore) complete(ab bref) bool {
	return s.flags[ab]&abIssuedAll != 0 && int(s.nDone[ab]) == len(s.nodes[ab])
}

// ---------- return-stack pool ----------

// rsPool bump-allocates speculative return-stack nodes. rsNodes form a
// persistent (immutable) linked structure shared by block checkpoints, so
// individual nodes are never freed; slabs keep the persistent stack at one
// allocation per slabSize calls instead of one per call.
type rsPool struct {
	slab []rsNode
	used int
}

func (p *rsPool) get() *rsNode {
	if p.used == len(p.slab) {
		p.slab = make([]rsNode, slabSize)
		p.used = 0
	}
	n := &p.slab[p.used]
	p.used++
	return n
}

// ---------- ready queue ----------

// qent is one ready-queue entry: the node index plus its issue sequence,
// copied inline so heap sifts compare without touching the node arrays.
type qent struct {
	seq int64
	ref nref
}

// readyQ is a binary min-heap of ready nodes keyed by issue sequence — the
// scheduler always picks the oldest ready node (sequence numbers are
// unique, so the pop order is fully determined and the figure tables are
// bit-identical across engine rewrites). The heap is intrusive through the
// node store's qpos column (heap position plus one, 0 = not queued), so
// squashed nodes are removed in O(log n) instead of lingering as
// tombstones.
type readyQ struct {
	a []qent
}

func (q *readyQ) len() int { return len(q.a) }

// minSeq/minRef expose the oldest ready entry without removing it.
func (q *readyQ) minSeq() int64 { return q.a[0].seq }
func (q *readyQ) minRef() nref  { return q.a[0].ref }

func (q *readyQ) push(qpos []int32, seq int64, nd nref) {
	q.a = append(q.a, qent{})
	q.up(qpos, len(q.a)-1, qent{seq: seq, ref: nd})
}

// pop removes and returns the oldest ready node.
func (q *readyQ) pop(qpos []int32) nref {
	nd := q.a[0].ref
	q.removeAt(qpos, 0)
	return nd
}

// remove unlinks a node from the heap if it is queued.
func (q *readyQ) remove(qpos []int32, nd nref) {
	if qpos[nd] != 0 {
		q.removeAt(qpos, int(qpos[nd])-1)
	}
}

func (q *readyQ) removeAt(qpos []int32, i int) {
	last := len(q.a) - 1
	qpos[q.a[i].ref] = 0
	moved := q.a[last]
	q.a = q.a[:last]
	if i == last {
		return
	}
	// Re-seat the displaced element: sift down, then up.
	if !q.down(qpos, i, moved) {
		q.up(qpos, i, moved)
	}
}

// up sifts en toward the root from position i and seats it.
func (q *readyQ) up(qpos []int32, i int, en qent) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.a[parent].seq <= en.seq {
			break
		}
		q.a[i] = q.a[parent]
		qpos[q.a[i].ref] = int32(i + 1)
		i = parent
	}
	q.a[i] = en
	qpos[en.ref] = int32(i + 1)
}

// down sifts en toward the leaves from position i and seats it, reporting
// whether it moved.
func (q *readyQ) down(qpos []int32, i int, en qent) bool {
	start := i
	n := len(q.a)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.a[r].seq < q.a[child].seq {
			child = r
		}
		if en.seq <= q.a[child].seq {
			break
		}
		q.a[i] = q.a[child]
		qpos[q.a[i].ref] = int32(i + 1)
		i = child
	}
	q.a[i] = en
	qpos[en.ref] = int32(i + 1)
	return i > start
}

// ---------- completion event wheel ----------

// timelineSlots sizes the completion ring; the largest latency the engine
// produces (the 10-cycle cache miss) fits comfortably, and entries at or
// beyond the ring's span are parked in an overflow list instead of
// colliding with a nearer slot (the wraparound guard wheel_test.go pins).
const timelineSlots = 16

// wheelEnt is one overflow entry: a completion scheduled at or beyond the
// ring's span.
type wheelEnt struct {
	ref    nref
	doneAt int64
}

// eventWheel is the completion timeline: a ring of per-cycle completion
// lists keyed by ready-cycle. Slot doneAt%timelineSlots holds the nodes
// completing at that cycle; an add more than timelineSlots-1 cycles ahead
// would alias an earlier slot, so such entries wait in overflow and migrate
// into the ring as it advances. The overflow check costs one length test
// per cycle and the list stays empty for every latency the engine models.
type eventWheel struct {
	slot     [timelineSlots][]nref
	overflow []wheelEnt
}

// add schedules ref to complete at doneAt (now is the current cycle).
func (w *eventWheel) add(ref nref, doneAt, now int64) {
	if doneAt-now >= timelineSlots {
		w.overflow = append(w.overflow, wheelEnt{ref: ref, doneAt: doneAt})
		return
	}
	s := int(doneAt % timelineSlots)
	w.slot[s] = append(w.slot[s], ref)
}

// take returns the completion list for cycle, emptying its slot. The
// returned slice is valid until the slot next fills.
func (w *eventWheel) take(cycle int64) []nref {
	if len(w.overflow) > 0 {
		w.drain(cycle)
	}
	s := int(cycle % timelineSlots)
	nodes := w.slot[s]
	w.slot[s] = nodes[:0]
	return nodes
}

// drain migrates overflow entries now within the ring's span into their
// slots.
func (w *eventWheel) drain(cycle int64) {
	keep := w.overflow[:0]
	for _, en := range w.overflow {
		if en.doneAt-cycle < timelineSlots {
			s := int(en.doneAt % timelineSlots)
			w.slot[s] = append(w.slot[s], en.ref)
		} else {
			keep = append(keep, en)
		}
	}
	w.overflow = keep
}

// ---------- ring buffers ----------

// abRing is the active-block window: a ring buffer of block indices in
// issue order (oldest first), reusing one backing array for the whole run.
// Capacity is a power of two (grown by doubling from 8), so wraparound is a
// mask.
type abRing struct {
	buf  []bref
	head int
	n    int
}

func (r *abRing) len() int { return r.n }

func (r *abRing) at(i int) bref { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *abRing) front() bref { return r.buf[r.head] }

func (r *abRing) pushBack(ab bref) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = ab
	r.n++
}

func (r *abRing) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// truncate drops blocks [from:] (the squashed suffix).
func (r *abRing) truncate(from int) {
	r.n = from
}

func (r *abRing) grow() {
	nb := make([]bref, max(2*len(r.buf), 8))
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}

// ndRing is a FIFO of node indices with O(1) operations at both ends, used
// for the store disambiguation queue (pushBack at issue, popFront as heads
// resolve, popBack as squashes discard the youngest suffix). Capacity is a
// power of two (grown by doubling from 16), so wraparound is a mask.
type ndRing struct {
	buf  []nref
	head int
	n    int
}

func (r *ndRing) len() int { return r.n }

func (r *ndRing) front() nref { return r.buf[r.head] }

func (r *ndRing) back() nref { return r.buf[(r.head+r.n-1)&(len(r.buf)-1)] }

func (r *ndRing) pushBack(nd nref) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = nd
	r.n++
}

func (r *ndRing) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

func (r *ndRing) popBack() {
	r.n--
}

func (r *ndRing) grow() {
	nb := make([]nref, max(2*len(r.buf), 16))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}
