package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicRates(t *testing.T) {
	r := New()
	r.Cycles = 100
	r.RetiredNodes = 250
	r.ExecutedNodes = 300
	r.DiscardedNodes = 50
	if r.NPC() != 2.5 {
		t.Errorf("NPC = %v, want 2.5", r.NPC())
	}
	if got := r.Redundancy(); math.Abs(got-50.0/300.0) > 1e-12 {
		t.Errorf("Redundancy = %v", got)
	}
	if r.Speed() != 2.5 {
		t.Errorf("Speed without Work = %v, want NPC", r.Speed())
	}
	r.Work = 500
	if r.Speed() != 5 {
		t.Errorf("Speed with Work = %v, want 5", r.Speed())
	}
}

func TestZeroSafety(t *testing.T) {
	r := New()
	if r.NPC() != 0 || r.Speed() != 0 || r.Redundancy() != 0 {
		t.Error("zero-cycle run should report zero rates")
	}
	if r.PredictionAccuracy() != 1 {
		t.Error("no branches: accuracy 1")
	}
	if r.CacheHitRatio() != 1 {
		t.Error("no cache accesses: ratio 1")
	}
	if r.MeanBlockSize() != 0 || r.MeanWindowBlocks() != 0 {
		t.Error("zero means should be 0")
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	for i := 0; i < 6; i++ {
		r.RecordBlock(3) // bin 0
	}
	r.RecordBlock(7)   // bin 1
	r.RecordBlock(12)  // bin 2
	r.RecordBlock(500) // clamps to last bin
	h := r.Histogram(5, 20)
	if len(h) != 5 {
		t.Fatalf("bins = %d, want 5", len(h))
	}
	total := 0.0
	for _, v := range h {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("histogram sums to %v, want 1", total)
	}
	if h[0] != 6.0/9.0 {
		t.Errorf("bin 0 = %v", h[0])
	}
	if h[4] != 1.0/9.0 {
		t.Errorf("overflow bin = %v", h[4])
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := New()
	h := r.Histogram(5, 20)
	for _, v := range h {
		if v != 0 {
			t.Error("empty histogram should be all zeros")
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Cycles, b.Cycles = 10, 20
	a.RecordBlock(4)
	b.RecordBlock(4)
	b.RecordBlock(9)
	a.Branches, b.Branches = 1, 2
	a.Merge(b)
	if a.Cycles != 30 || a.RetiredBlocks != 3 || a.Branches != 3 {
		t.Errorf("merge wrong: %+v", a)
	}
	if a.BlockSizes[4] != 2 || a.BlockSizes[9] != 1 {
		t.Errorf("histogram merge wrong: %v", a.BlockSizes)
	}
}

func TestString(t *testing.T) {
	r := New()
	r.Cycles = 10
	r.RetiredNodes = 25
	s := r.String()
	for _, want := range []string{"cycles", "retired nodes", "2.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestSortedSizes(t *testing.T) {
	r := New()
	for _, s := range []int{9, 3, 7, 3} {
		r.RecordBlock(s)
	}
	got := r.SortedSizes()
	want := []int{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", got, want)
		}
	}
}

func TestHistogramBinBoundaries(t *testing.T) {
	// A size exactly on a bin-width multiple belongs to the *next* bin
	// (size/binWidth truncates), and size 0 belongs to bin 0.
	r := New()
	r.RecordBlock(0)
	r.RecordBlock(4)  // last size of bin 0 for width 5
	r.RecordBlock(5)  // first size of bin 1
	r.RecordBlock(20) // == maxSize: lands in the overflow bin
	h := r.Histogram(5, 20)
	if h[0] != 0.5 {
		t.Errorf("bin 0 = %v, want 0.5", h[0])
	}
	if h[1] != 0.25 {
		t.Errorf("bin 1 = %v, want 0.25", h[1])
	}
	if h[len(h)-1] != 0.25 {
		t.Errorf("overflow bin = %v, want 0.25", h[len(h)-1])
	}
}

func TestHistogramSingleBlock(t *testing.T) {
	r := New()
	r.RecordBlock(7)
	h := r.Histogram(5, 20)
	if h[1] != 1 {
		t.Errorf("single-block histogram = %v, want all mass in bin 1", h)
	}
}

func TestBlockSizePercentile(t *testing.T) {
	r := New()
	if r.BlockSizePercentile(0.5) != 0 {
		t.Error("empty run should report percentile 0")
	}
	// 10 blocks: sizes 1..10, one each.
	for s := 1; s <= 10; s++ {
		r.RecordBlock(s)
	}
	cases := []struct {
		p    float64
		want int
	}{
		{0, 1},    // clamped up to "at least one block"
		{0.1, 1},  // first block covers 10%
		{0.5, 5},  // median
		{0.55, 6}, // needs 6 blocks
		{1, 10},   // max
		{1.5, 10}, // clamped down
		{-1, 1},   // clamped up
	}
	for _, c := range cases {
		if got := r.BlockSizePercentile(c.p); got != c.want {
			t.Errorf("BlockSizePercentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestBlockSizePercentileSkewed(t *testing.T) {
	// 99 small blocks and 1 huge one: the p99 is still small, p100 is huge.
	r := New()
	for i := 0; i < 99; i++ {
		r.RecordBlock(2)
	}
	r.RecordBlock(400)
	if got := r.BlockSizePercentile(0.99); got != 2 {
		t.Errorf("p99 = %d, want 2", got)
	}
	if got := r.BlockSizePercentile(1); got != 400 {
		t.Errorf("p100 = %d, want 400", got)
	}
}

// Property: the percentile is monotone in p and always an observed size.
func TestBlockSizePercentileProperty(t *testing.T) {
	f := func(sizes []uint8, p1, p2 uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		r := New()
		observed := make(map[int]bool)
		for _, s := range sizes {
			r.RecordBlock(int(s))
			observed[int(s)] = true
		}
		q1, q2 := float64(p1)/255, float64(p2)/255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := r.BlockSizePercentile(q1), r.BlockSizePercentile(q2)
		return v1 <= v2 && observed[v1] && observed[v2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram fractions are in [0,1] and sum to ~1 for any inputs.
func TestHistogramProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		r := New()
		for _, s := range sizes {
			r.RecordBlock(int(s))
		}
		h := r.Histogram(5, 50)
		total := 0.0
		for _, v := range h {
			if v < 0 || v > 1 {
				return false
			}
			total += v
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge is additive on every counter it touches.
func TestMergeProperty(t *testing.T) {
	f := func(c1, c2 uint16, n1, n2 uint16) bool {
		a, b := New(), New()
		a.Cycles, b.Cycles = int64(c1), int64(c2)
		a.RetiredNodes, b.RetiredNodes = int64(n1), int64(n2)
		a.Merge(b)
		return a.Cycles == int64(c1)+int64(c2) && a.RetiredNodes == int64(n1)+int64(n2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
