package stats

import (
	"math/bits"
	"sync"
	"time"
)

// Hist is a concurrency-safe latency histogram with power-of-two buckets
// over microseconds. It is the service-side companion to Run.Histogram: the
// block-size histogram bins simulated work, Hist bins wall-clock run
// latencies so a long-lived daemon can report p50/p99 without retaining
// every sample. Sixty-four buckets cover sub-microsecond to centuries, so
// Observe never saturates in practice; quantiles are upper bucket bounds
// (at most 2x the true value), which is the usual trade for O(1) memory.
//
// The zero value is ready to use.
type Hist struct {
	mu     sync.Mutex
	counts [65]int64 // counts[i]: samples with bucket index i (see bucketOf)
	n      int64
	sum    time.Duration
}

// bucketOf maps a duration to its bucket: the bit length of the duration in
// whole microseconds (0 for sub-microsecond samples).
func bucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	return bits.Len64(uint64(d / time.Microsecond))
}

// bucketUpper is the inclusive upper bound of a bucket in microseconds.
func bucketUpper(b int) time.Duration {
	if b >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1)<<b) * time.Microsecond
}

// Observe records one sample.
func (h *Hist) Observe(d time.Duration) {
	b := bucketOf(d)
	h.mu.Lock()
	h.counts[b]++
	h.n++
	h.sum += d
	h.mu.Unlock()
}

// Count returns the number of observed samples.
func (h *Hist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the average observed latency (0 with no samples).
func (h *Hist) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Quantile returns an upper bound for the p-quantile (p in [0,1]) of the
// observed latencies: the upper bound of the smallest bucket whose
// cumulative count reaches p of the samples. Returns 0 with no samples.
func (h *Hist) Quantile(p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	need := int64(p * float64(h.n))
	if need < 1 {
		need = 1
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= need {
			return bucketUpper(b)
		}
	}
	return bucketUpper(len(h.counts) - 1)
}
