// Package stats collects the measurements the paper reports: retired nodes
// per cycle (the main datum of interest), operation redundancy (executed
// but discarded work, Figure 6), dynamic basic block size histograms
// (Figure 2), and supporting rates (cache hits, branch prediction accuracy,
// window occupancy).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Run holds the statistics of one simulation run.
type Run struct {
	Cycles int64

	// RetiredNodes counts nodes whose blocks committed; the paper's main
	// metric is RetiredNodes/Cycles.
	RetiredNodes int64

	// ExecutedNodes counts nodes scheduled to a function unit, including
	// those later discarded.
	ExecutedNodes int64

	// DiscardedNodes counts executed nodes thrown away by branch
	// misprediction squashes or assert faults.
	DiscardedNodes int64

	RetiredBlocks int64
	Mispredicts   int64
	Faults        int64

	// Branches and BranchesCorrect count retired conditional branches and
	// how many were predicted correctly.
	Branches        int64
	BranchesCorrect int64

	CacheHits   int64
	CacheMisses int64

	// WindowBlockSum accumulates the number of active basic blocks each
	// cycle (dynamic engines only); divide by Cycles for mean occupancy.
	WindowBlockSum int64
	// WindowNodeSum accumulates in-flight (issued, unretired) nodes.
	WindowNodeSum int64

	// BlockSizes histograms retired block sizes (nodes per block).
	BlockSizes map[int]int64

	// InjectedFaults counts perturbations a fault injector applied to the
	// run; RepairedFaults counts those absorbed by checkpoint recovery or
	// verified benign (the remainder surfaced as typed errors).
	InjectedFaults int64
	RepairedFaults int64

	// EFDegradations counts enlargement files found corrupt at load time,
	// causing a fallback to single-basic-block simulation.
	EFDegradations int64

	// Work is the run's work measured in reference nodes: the node count
	// of the original (single-basic-block) program on the same input.
	// Enlarged programs retire fewer nodes for the same computation (the
	// loader's re-optimization eliminates nodes), so cross-configuration
	// comparisons divide this machine-independent work by cycles. Zero
	// means "same as RetiredNodes".
	Work int64
}

// New returns an empty Run.
func New() *Run {
	return &Run{BlockSizes: make(map[int]int64)}
}

// NPC is the paper's headline metric: average retired nodes per cycle.
func (r *Run) NPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.RetiredNodes) / float64(r.Cycles)
}

// Speed is the work-normalized rate: reference nodes per cycle. For
// single-block programs it equals NPC; for enlarged programs it credits the
// nodes the re-optimizer eliminated, making configurations comparable.
func (r *Run) Speed() float64 {
	if r.Cycles == 0 {
		return 0
	}
	work := r.Work
	if work == 0 {
		work = r.RetiredNodes
	}
	return float64(work) / float64(r.Cycles)
}

// Redundancy is the fraction of executed nodes that were discarded
// (Figure 6).
func (r *Run) Redundancy() float64 {
	if r.ExecutedNodes == 0 {
		return 0
	}
	return float64(r.DiscardedNodes) / float64(r.ExecutedNodes)
}

// PredictionAccuracy is the fraction of retired conditional branches that
// were predicted correctly.
func (r *Run) PredictionAccuracy() float64 {
	if r.Branches == 0 {
		return 1
	}
	return float64(r.BranchesCorrect) / float64(r.Branches)
}

// CacheHitRatio is hits/(hits+misses), 1 when no cache was modeled.
func (r *Run) CacheHitRatio() float64 {
	t := r.CacheHits + r.CacheMisses
	if t == 0 {
		return 1
	}
	return float64(r.CacheHits) / float64(t)
}

// MeanBlockSize is the average retired block size in nodes.
func (r *Run) MeanBlockSize() float64 {
	if r.RetiredBlocks == 0 {
		return 0
	}
	return float64(r.RetiredNodes) / float64(r.RetiredBlocks)
}

// MeanWindowBlocks is the average number of active basic blocks per cycle.
func (r *Run) MeanWindowBlocks() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WindowBlockSum) / float64(r.Cycles)
}

// RecordBlock records a retired block of the given size.
func (r *Run) RecordBlock(size int) {
	r.RetiredBlocks++
	r.BlockSizes[size]++
}

// Histogram bins retired block sizes into fixed-width buckets and returns
// the fraction of retired blocks per bucket — the form of Figure 2.
func (r *Run) Histogram(binWidth, maxSize int) []float64 {
	nbins := maxSize/binWidth + 1
	bins := make([]float64, nbins)
	var total int64
	for size, count := range r.BlockSizes {
		b := size / binWidth
		if b >= nbins {
			b = nbins - 1
		}
		bins[b] += float64(count)
		total += count
	}
	if total > 0 {
		for i := range bins {
			bins[i] /= float64(total)
		}
	}
	return bins
}

// BlockSizePercentile returns the smallest retired block size S such that at
// least p (in [0,1]) of retired blocks have size <= S — e.g. p=0.5 is the
// median dynamic block size, the distributional companion to MeanBlockSize
// for Figure 2 style reporting. Returns 0 when no blocks were retired.
func (r *Run) BlockSizePercentile(p float64) int {
	if r.RetiredBlocks == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	need := int64(math.Ceil(p * float64(r.RetiredBlocks)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for _, s := range r.SortedSizes() {
		cum += r.BlockSizes[s]
		if cum >= need {
			return s
		}
	}
	// Unreachable: cum reaches RetiredBlocks >= need on the last size.
	sizes := r.SortedSizes()
	return sizes[len(sizes)-1]
}

// Clone returns a deep copy of r (the BlockSizes map is copied, not
// shared). Checkpoints carry cloned stats so a snapshot is immutable once
// taken even while the run keeps counting.
func (r *Run) Clone() *Run {
	c := *r
	c.BlockSizes = make(map[int]int64, len(r.BlockSizes))
	for s, n := range r.BlockSizes {
		c.BlockSizes[s] = n
	}
	return &c
}

// Merge adds other's counts into r (used to aggregate across benchmarks).
func (r *Run) Merge(other *Run) {
	r.Cycles += other.Cycles
	r.RetiredNodes += other.RetiredNodes
	r.ExecutedNodes += other.ExecutedNodes
	r.DiscardedNodes += other.DiscardedNodes
	r.RetiredBlocks += other.RetiredBlocks
	r.Mispredicts += other.Mispredicts
	r.Faults += other.Faults
	r.Branches += other.Branches
	r.BranchesCorrect += other.BranchesCorrect
	r.CacheHits += other.CacheHits
	r.CacheMisses += other.CacheMisses
	r.WindowBlockSum += other.WindowBlockSum
	r.WindowNodeSum += other.WindowNodeSum
	r.InjectedFaults += other.InjectedFaults
	r.RepairedFaults += other.RepairedFaults
	r.EFDegradations += other.EFDegradations
	for s, c := range other.BlockSizes {
		r.BlockSizes[s] += c
	}
}

// String renders a one-run report.
func (r *Run) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles            %12d\n", r.Cycles)
	fmt.Fprintf(&sb, "retired nodes     %12d   (%.3f nodes/cycle)\n", r.RetiredNodes, r.NPC())
	fmt.Fprintf(&sb, "executed nodes    %12d   (redundancy %.3f)\n", r.ExecutedNodes, r.Redundancy())
	fmt.Fprintf(&sb, "retired blocks    %12d   (mean size %.2f nodes)\n", r.RetiredBlocks, r.MeanBlockSize())
	fmt.Fprintf(&sb, "mispredicts       %12d   (accuracy %.3f)\n", r.Mispredicts, r.PredictionAccuracy())
	fmt.Fprintf(&sb, "assert faults     %12d\n", r.Faults)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&sb, "cache hit ratio   %12.3f\n", r.CacheHitRatio())
	}
	if r.WindowBlockSum > 0 {
		fmt.Fprintf(&sb, "mean window       %12.2f blocks\n", r.MeanWindowBlocks())
	}
	if r.InjectedFaults > 0 {
		fmt.Fprintf(&sb, "injected faults   %12d   (%d repaired)\n", r.InjectedFaults, r.RepairedFaults)
	}
	if r.EFDegradations > 0 {
		fmt.Fprintf(&sb, "ef degradations   %12d\n", r.EFDegradations)
	}
	return sb.String()
}

// SortedSizes returns the distinct retired block sizes in ascending order.
func (r *Run) SortedSizes() []int {
	sizes := make([]int, 0, len(r.BlockSizes))
	for s := range r.BlockSizes {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}
