package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("empty hist: count=%d p50=%v mean=%v", h.Count(), h.Quantile(0.5), h.Mean())
	}
}

func TestHistQuantileBounds(t *testing.T) {
	var h Hist
	// 90 fast samples and 10 slow ones: p50 must be near the fast cluster,
	// p99 near the slow one. Buckets are power-of-two, so bounds are loose
	// by at most 2x.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	p50 := h.Quantile(0.5)
	if p50 < 100*time.Microsecond || p50 > 200*time.Microsecond {
		t.Errorf("p50 = %v, want in [100us, 200us]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 80*time.Millisecond || p99 > 160*time.Millisecond {
		t.Errorf("p99 = %v, want in [80ms, 160ms]", p99)
	}
	if q0, q1 := h.Quantile(0), h.Quantile(1); q0 > q1 {
		t.Errorf("quantiles not monotone: q0=%v q1=%v", q0, q1)
	}
}

func TestHistNegativeAndClampedP(t *testing.T) {
	var h Hist
	h.Observe(-time.Second) // clamped to 0
	if got := h.Quantile(-1); got > time.Microsecond {
		t.Errorf("Quantile(-1) = %v, want <= 1us bucket", got)
	}
	if got := h.Quantile(2); got > time.Microsecond {
		t.Errorf("Quantile(2) = %v, want <= 1us bucket", got)
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if n := h.Count(); n != 8000 {
		t.Fatalf("count = %d, want 8000", n)
	}
}

// TestHistConcurrentReadersWriters interleaves Observe with every reader so
// the race detector sees the full surface under contention, and checks the
// readers only ever report internally consistent views (a quantile of a
// half-applied sample would violate the monotone bound).
func TestHistConcurrentReadersWriters(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(w+1) * 100 * time.Microsecond
			for i := 0; i < 2000; i++ {
				h.Observe(d)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := h.Count()
				p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
				mean := h.Mean()
				if n > 0 && (p50 == 0 || p99 < p50 || mean <= 0) {
					t.Errorf("inconsistent read: n=%d p50=%v p99=%v mean=%v", n, p50, p99, mean)
					return
				}
			}
		}()
	}
	// Let writers and readers interleave, then release everyone.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
	if n := h.Count(); n != 8000 {
		t.Fatalf("count = %d, want 8000", n)
	}
}
