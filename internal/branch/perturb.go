package branch

import "fmt"

// Perturbable is implemented by predictors whose physical state a fault
// injector can flip bits in. Perturbations only ever change predictions —
// never architectural results — so the mispredict recovery machinery
// repairs any damage; Perturb returns a description of what was flipped
// (empty if the predictor had no state to perturb).
type Perturbable interface {
	Perturb(r uint64) string
}

// Perturb flips predictor state chosen by r: either a counter bit of a
// direct-mapped entry or — when the entry is valid — its tag (an eviction).
func (b *BTB) Perturb(r uint64) string {
	s := int(r % uint64(b.size))
	if r&(1<<16) != 0 && b.tags[s] != 0 {
		b.tags[s] = 0
		return fmt.Sprintf("evict BTB entry %d", s)
	}
	bit := uint((r >> 17) & 1)
	b.ctr[s] ^= 1 << bit
	return fmt.Sprintf("flip counter bit %d of BTB entry %d", bit, s)
}

// Perturb flips either a global history bit or a counter bit chosen by r.
func (g *GShare) Perturb(r uint64) string {
	if r&(1<<16) != 0 {
		bit := uint32(r) % uint32(g.bits)
		g.history ^= 1 << bit
		return fmt.Sprintf("flip gshare history bit %d", bit)
	}
	i := uint32(r>>17) & g.mask
	bit := uint((r >> 50) & 1)
	g.ctr[i] ^= 1 << bit
	return fmt.Sprintf("flip counter bit %d of gshare entry %d", bit, i)
}

var (
	_ Perturbable = (*BTB)(nil)
	_ Perturbable = TwoBitAdapter{} // promoted through the embedded *BTB
	_ Perturbable = (*GShare)(nil)
)
