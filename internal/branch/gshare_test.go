package branch

import (
	"testing"

	"fgpsim/internal/ir"
)

func TestGShareLearnsPeriodicPattern(t *testing.T) {
	g := NewGShare(10, nil)
	blk := ir.BlockID(7)
	// Pattern with period 4: T N N N. Train sequentially (predict, then
	// update with the truth, as retirement would).
	correct, total := 0, 0
	for i := 0; i < 400; i++ {
		want := i%4 == 0
		got, tok := g.Predict(blk)
		if got != want {
			// Repair speculative history like a mispredict squash does.
			g.Restore(tok)
			g.Push(want)
		}
		g.Update(blk, want, tok)
		if i >= 100 { // after warmup
			total++
			if got == want {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("gshare accuracy on period-4 pattern = %.3f, want >= 0.95", acc)
	}
}

func TestGShareCheckpointRestore(t *testing.T) {
	g := NewGShare(8, nil)
	g.Push(true)
	g.Push(false)
	cp := g.Checkpoint()
	g.Push(true)
	g.Push(true)
	if g.Checkpoint() == cp {
		t.Fatal("pushes should change the history")
	}
	g.Restore(cp)
	if g.Checkpoint() != cp {
		t.Fatal("restore did not rewind the history")
	}
}

func TestGShareHintsOnFirstEncounter(t *testing.T) {
	g := NewGShare(8, map[ir.BlockID]bool{3: true})
	got, tok := g.Predict(3)
	if !got {
		t.Error("unseen branch should follow the taken hint")
	}
	g.Update(3, false, tok)
	g.Update(3, false, tok)
	if got, _ := g.Predict(3); got {
		t.Error("trained counter should override the hint")
	}
}

func TestGShareBitsClamped(t *testing.T) {
	small := NewGShare(0, nil)
	if len(small.ctr) != 4 {
		t.Errorf("bits clamp low: table %d, want 4", len(small.ctr))
	}
	big := NewGShare(40, nil)
	if len(big.ctr) != 1<<24 {
		t.Errorf("bits clamp high: table %d, want 2^24", len(big.ctr))
	}
}

func TestTwoBitAdapter(t *testing.T) {
	var p DirectionPredictor = TwoBitAdapter{BTB: New(16, nil)}
	got, tok := p.Predict(5)
	if got || tok != 0 {
		t.Errorf("cold adapter predict = (%v, %d), want (false, 0)", got, tok)
	}
	p.Update(5, true, 0)
	p.Update(5, true, 0)
	if got, _ := p.Predict(5); !got {
		t.Error("adapter should train the underlying BTB")
	}
	// No-ops must not panic.
	p.Restore(p.Checkpoint())
	p.Push(true)
}
