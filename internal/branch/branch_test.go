package branch

import (
	"testing"
	"testing/quick"

	"fgpsim/internal/ir"
)

func TestCounterSaturation(t *testing.T) {
	b := New(16, nil)
	blk := ir.BlockID(3)
	// Allocate with a taken outcome: counter starts at 2 (weakly taken).
	b.Update(blk, true)
	if !b.Predict(blk) {
		t.Error("after one taken, should predict taken")
	}
	// One not-taken drops to 1: predicts not-taken.
	b.Update(blk, false)
	if b.Predict(blk) {
		t.Error("counter should have dropped to weakly not-taken")
	}
	// Saturate taken: many updates never push past 3.
	for i := 0; i < 10; i++ {
		b.Update(blk, true)
	}
	if !b.Predict(blk) {
		t.Error("saturated taken should predict taken")
	}
	// A single not-taken must not flip a saturated counter.
	b.Update(blk, false)
	if !b.Predict(blk) {
		t.Error("2-bit hysteresis lost: one not-taken flipped a saturated counter")
	}
}

func TestHintsUsedOnMiss(t *testing.T) {
	hints := map[ir.BlockID]bool{7: true, 9: false}
	b := New(16, hints)
	if !b.Predict(7) {
		t.Error("BTB miss should fall back to the taken hint")
	}
	if b.Predict(9) {
		t.Error("BTB miss should fall back to the not-taken hint")
	}
	if b.Predict(11) {
		t.Error("no hint: default is not-taken")
	}
	// Once trained, the counter overrides the hint.
	b.Update(7, false)
	b.Update(7, false)
	if b.Predict(7) {
		t.Error("trained counter should override the static hint")
	}
}

func TestAliasingEviction(t *testing.T) {
	b := New(4, map[ir.BlockID]bool{1: true})
	b.Update(1, false)
	b.Update(1, false) // strongly not-taken
	if b.Predict(1) {
		t.Fatal("should predict not-taken")
	}
	// Block 5 aliases slot 1 in a 4-entry BTB; training it evicts block 1.
	b.Update(5, true)
	// Block 1 is gone: the hint applies again ("as long as the information
	// remains in the branch target buffer").
	if !b.Predict(1) {
		t.Error("evicted entry should fall back to the static hint")
	}
}

func TestHintsFromProfile(t *testing.T) {
	hints := HintsFromProfile(
		map[ir.BlockID]int64{1: 10, 2: 3},
		map[ir.BlockID]int64{1: 2, 2: 30, 4: 5},
	)
	if !hints[1] {
		t.Error("block 1 is mostly taken")
	}
	if hints[2] {
		t.Error("block 2 is mostly not-taken")
	}
	if hints[4] {
		t.Error("block 4 was never taken")
	}
	if _, ok := hints[9]; ok {
		t.Error("unprofiled block should have no hint")
	}
}

// Property: on a perfectly biased branch the predictor converges and then
// never mispredicts again.
func TestConvergenceOnBiasedBranch(t *testing.T) {
	f := func(dir bool, warmup uint8) bool {
		b := New(64, nil)
		blk := ir.BlockID(5)
		n := int(warmup%8) + 2
		for i := 0; i < n; i++ {
			b.Update(blk, dir)
		}
		return b.Predict(blk) == dir
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: accuracy on an alternating branch is poor but the predictor
// never crashes and counters stay in range (exercised via Predict/Update
// interleavings).
func TestAlternatingBranch(t *testing.T) {
	b := New(8, nil)
	blk := ir.BlockID(2)
	for i := 0; i < 100; i++ {
		b.Predict(blk)
		b.Update(blk, i%2 == 0)
	}
	if b.Lookups != 100 {
		t.Errorf("lookups = %d, want 100", b.Lookups)
	}
	if b.Hits == 0 {
		t.Error("entry should have been present after allocation")
	}
}

func TestZeroSizeBTB(t *testing.T) {
	b := New(0, nil) // clamps to 1 entry
	b.Update(1, true)
	if !b.Predict(1) {
		t.Error("1-entry BTB should still train")
	}
}
