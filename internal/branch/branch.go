// Package branch implements the run-time simulator's branch prediction: a
// branch target buffer of 2-bit saturating counters, optionally supplemented
// by static prediction hints that are consulted the first time a branch is
// encountered (and again whenever its entry has been evicted), exactly as
// described in section 3.1 of the paper. Perfect (trace-driven) prediction
// is implemented by the engines themselves, since it interacts with
// speculative issue state.
package branch

import "fgpsim/internal/ir"

// BTB is a direct-mapped branch target buffer of 2-bit counters, indexed
// and tagged by the branch's basic block ID (our stand-in for the branch
// PC, which is unique per block since blocks have one terminator).
type BTB struct {
	size  int
	tags  []int32 // blockID+1; 0 = invalid
	ctr   []uint8 // 0..3; >=2 predicts taken
	hints map[ir.BlockID]bool

	Lookups int64
	Hits    int64 // lookups that found a matching entry
}

// New builds a BTB with the given number of entries. hints maps branch
// blocks to their statically predicted direction; it may be nil.
func New(entries int, hints map[ir.BlockID]bool) *BTB {
	if entries < 1 {
		entries = 1
	}
	return &BTB{
		size:  entries,
		tags:  make([]int32, entries),
		ctr:   make([]uint8, entries),
		hints: hints,
	}
}

func (b *BTB) slot(blk ir.BlockID) int { return int(uint32(blk)) % b.size }

// Predict returns the predicted direction of the conditional branch ending
// block blk: the 2-bit counter when the entry is present, the static hint
// when not, and not-taken as the last resort.
func (b *BTB) Predict(blk ir.BlockID) bool {
	b.Lookups++
	s := b.slot(blk)
	if b.tags[s] == int32(blk)+1 {
		b.Hits++
		return b.ctr[s] >= 2
	}
	if h, ok := b.hints[blk]; ok {
		return h
	}
	return false
}

// Update trains the predictor with the resolved direction, allocating an
// entry (and evicting whatever aliased there) when absent.
func (b *BTB) Update(blk ir.BlockID, taken bool) {
	s := b.slot(blk)
	if b.tags[s] != int32(blk)+1 {
		b.tags[s] = int32(blk) + 1
		if taken {
			b.ctr[s] = 2
		} else {
			b.ctr[s] = 1
		}
		return
	}
	switch {
	case taken && b.ctr[s] < 3:
		b.ctr[s]++
	case !taken && b.ctr[s] > 0:
		b.ctr[s]--
	}
}

// HintsFromProfile derives static prediction hints from a profiling run:
// the majority direction of each conditional branch.
func HintsFromProfile(taken, notTaken map[ir.BlockID]int64) map[ir.BlockID]bool {
	hints := make(map[ir.BlockID]bool, len(taken)+len(notTaken))
	seen := make(map[ir.BlockID]bool, len(taken)+len(notTaken))
	for blk := range taken {
		seen[blk] = true
	}
	for blk := range notTaken {
		seen[blk] = true
	}
	for blk := range seen {
		hints[blk] = taken[blk] >= notTaken[blk]
	}
	return hints
}
