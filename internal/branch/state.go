package branch

import (
	"fmt"
	"sort"

	"fgpsim/internal/ir"
)

// Predictor state kinds, recorded in State.Kind so a snapshot taken under
// one predictor cannot be applied to another.
const (
	StateTwoBit uint8 = 1
	StateGShare uint8 = 2
)

// State is the serializable dynamic state of a direction predictor: the
// trained tables and speculative history, everything a checkpoint must
// carry to make a restored run predict identically. Static hints are NOT
// part of it — they are an input (derived from the profile) that the
// restoring side reconstructs the same way the original run did, which
// keeps snapshots free of redundant derived data.
type State struct {
	Kind uint8

	// BTB (two-bit) fields.
	Tags []int32
	Ctr  []uint8
	Hits int64

	// GShare fields (Ctr is shared).
	History uint32
	Seen    []ir.BlockID // sorted, for deterministic encoding

	Lookups int64
}

// State snapshots the BTB's trained table and hit counters.
func (b *BTB) State() *State {
	return &State{
		Kind:    StateTwoBit,
		Tags:    append([]int32(nil), b.tags...),
		Ctr:     append([]uint8(nil), b.ctr...),
		Lookups: b.Lookups,
		Hits:    b.Hits,
	}
}

// SetState restores a snapshot taken by State. The BTB must have been
// built with the same geometry (entry count) as the one snapshotted.
func (b *BTB) SetState(s *State) error {
	if s.Kind != StateTwoBit {
		return fmt.Errorf("branch: restoring kind-%d state into a 2-bit BTB", s.Kind)
	}
	if len(s.Tags) != len(b.tags) || len(s.Ctr) != len(b.ctr) {
		return fmt.Errorf("branch: BTB geometry mismatch: snapshot has %d tags / %d counters, predictor has %d / %d",
			len(s.Tags), len(s.Ctr), len(b.tags), len(b.ctr))
	}
	copy(b.tags, s.Tags)
	copy(b.ctr, s.Ctr)
	b.Lookups = s.Lookups
	b.Hits = s.Hits
	return nil
}

// State snapshots the gshare tables, speculative history, and first-seen
// set. The engine only checkpoints at quiescent points, where speculative
// history equals committed history, so History round-trips exactly.
func (g *GShare) State() *State {
	// nil when empty (not a zero-length slice) so the state survives a
	// serialization roundtrip reflect-identically.
	var seen []ir.BlockID
	for blk := range g.seen {
		seen = append(seen, blk)
	}
	sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
	return &State{
		Kind:    StateGShare,
		Ctr:     append([]uint8(nil), g.ctr...),
		History: g.history,
		Seen:    seen,
		Lookups: g.Lookups,
	}
}

// SetState restores a snapshot taken by State. The predictor must have
// been built with the same table size as the one snapshotted.
func (g *GShare) SetState(s *State) error {
	if s.Kind != StateGShare {
		return fmt.Errorf("branch: restoring kind-%d state into a gshare predictor", s.Kind)
	}
	if len(s.Ctr) != len(g.ctr) {
		return fmt.Errorf("branch: gshare geometry mismatch: snapshot has %d counters, predictor has %d",
			len(s.Ctr), len(g.ctr))
	}
	copy(g.ctr, s.Ctr)
	g.history = s.History & g.mask
	g.seen = make(map[ir.BlockID]bool, len(s.Seen))
	for _, blk := range s.Seen {
		g.seen[blk] = true
	}
	g.Lookups = s.Lookups
	return nil
}

// PredictorState extracts the serializable state from any predictor this
// package builds; it returns nil for predictors with no dynamic state.
func PredictorState(p DirectionPredictor) *State {
	switch p := p.(type) {
	case TwoBitAdapter:
		return p.BTB.State()
	case *GShare:
		return p.State()
	}
	return nil
}

// SetPredictorState applies a snapshot to a freshly built predictor of the
// matching kind.
func SetPredictorState(p DirectionPredictor, s *State) error {
	switch p := p.(type) {
	case TwoBitAdapter:
		return p.BTB.SetState(s)
	case *GShare:
		return p.SetState(s)
	}
	return fmt.Errorf("branch: predictor %T cannot restore state", p)
}
