package branch

import "fgpsim/internal/ir"

// DirectionPredictor is the engine-facing predictor interface. Because the
// dynamic engine predicts at issue time, many branches deep into
// speculation, history-based predictors need speculative state management:
//
//   - Predict returns the direction plus an opaque token capturing the
//     predictor state the prediction was made under (and may push the
//     predicted direction into speculative history);
//   - Update trains the predictor at retirement, keyed by the token;
//   - Checkpoint/Restore snapshot and repair speculative state around
//     block-level squashes;
//   - Push records a resolved direction into speculative history after a
//     misprediction repair.
//
// The 2-bit counter BTB is stateless across branches, so its tokens and
// checkpoints are zero.
type DirectionPredictor interface {
	Predict(blk ir.BlockID) (taken bool, token uint64)
	Update(blk ir.BlockID, taken bool, token uint64)
	Checkpoint() uint64
	Restore(token uint64)
	Push(taken bool)
}

// TwoBitAdapter lifts the BTB into the DirectionPredictor interface.
type TwoBitAdapter struct{ *BTB }

// Predict returns the BTB prediction; the token is unused.
func (a TwoBitAdapter) Predict(blk ir.BlockID) (bool, uint64) {
	return a.BTB.Predict(blk), 0
}

// Update trains the BTB.
func (a TwoBitAdapter) Update(blk ir.BlockID, taken bool, _ uint64) {
	a.BTB.Update(blk, taken)
}

// Checkpoint is a no-op for the history-free BTB.
func (TwoBitAdapter) Checkpoint() uint64 { return 0 }

// Restore is a no-op for the history-free BTB.
func (TwoBitAdapter) Restore(uint64) {}

// Push is a no-op for the history-free BTB.
func (TwoBitAdapter) Push(bool) {}

// GShare is a two-level adaptive predictor: a global branch history
// register XOR-ed with the branch identifier indexes a table of 2-bit
// counters. The paper's conclusions call the 2-bit counter "a fairly
// simple scheme" and suggest that "more sophisticated techniques could
// yield better prediction"; this is the canonical such technique
// (two-level adaptive prediction is Yeh & Patt's, published the same year;
// the XOR hashing is McFarling's gshare), provided as the reproduction's
// future-work extension.
//
// History is speculative: Predict pushes the predicted direction, squashes
// restore a checkpoint, and a misprediction repair pushes the corrected
// direction. Counters train at retirement using the fetch-time history
// carried in the token.
type GShare struct {
	bits    int
	mask    uint32
	history uint32
	ctr     []uint8
	seen    map[ir.BlockID]bool
	hints   map[ir.BlockID]bool

	Lookups int64
}

// NewGShare builds a gshare predictor with a 2^bits-entry counter table.
func NewGShare(bits int, hints map[ir.BlockID]bool) *GShare {
	if bits < 2 {
		bits = 2
	}
	if bits > 24 {
		bits = 24
	}
	return &GShare{
		bits:  bits,
		mask:  1<<bits - 1,
		ctr:   make([]uint8, 1<<bits),
		seen:  make(map[ir.BlockID]bool),
		hints: hints,
	}
}

func (g *GShare) index(blk ir.BlockID, hist uint32) uint32 {
	return (uint32(blk) ^ hist) & g.mask
}

// Predict returns the predicted direction under the current speculative
// history, then pushes the prediction into it. The token is the history the
// prediction used.
func (g *GShare) Predict(blk ir.BlockID) (bool, uint64) {
	g.Lookups++
	token := uint64(g.history)
	var taken bool
	if !g.seen[blk] {
		taken = g.hints[blk]
	} else {
		taken = g.ctr[g.index(blk, g.history)] >= 2
	}
	g.push(taken)
	return taken, token
}

func (g *GShare) push(taken bool) {
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
}

// Update trains the counter the prediction indexed (at retirement).
func (g *GShare) Update(blk ir.BlockID, taken bool, token uint64) {
	g.seen[blk] = true
	i := g.index(blk, uint32(token))
	switch {
	case taken && g.ctr[i] < 3:
		g.ctr[i]++
	case !taken && g.ctr[i] > 0:
		g.ctr[i]--
	}
}

// Checkpoint returns the speculative history.
func (g *GShare) Checkpoint() uint64 { return uint64(g.history) }

// Restore rewinds the speculative history to a checkpoint or token.
func (g *GShare) Restore(token uint64) { g.history = uint32(token) & g.mask }

// Push records a resolved direction (misprediction repair).
func (g *GShare) Push(taken bool) { g.push(taken) }

var (
	_ DirectionPredictor = TwoBitAdapter{}
	_ DirectionPredictor = (*GShare)(nil)
)
