package schedgap

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Marshal renders the report as the canonical JSON written to
// results/SCHEDGAP.json. Everything feeding the report is deterministic,
// so regenerating with the same Config reproduces the bytes exactly.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Unmarshal parses a checked-in report.
func Unmarshal(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("schedgap: bad report: %w", err)
	}
	return &r, nil
}

// Table renders the per-sweep-point gap distribution as a fixed-width
// table (the cmd/figures -schedgap output).
func (r *Report) Table() string {
	var sb strings.Builder
	for _, c := range r.Corpora {
		fmt.Fprintf(&sb, "schedule optimality gap — %s corpus (%d programs)\n", c.Name, c.Units)
		fmt.Fprintf(&sb, "%-6s %-4s %-6s | %7s %7s %7s %7s | %6s %6s | %8s %8s\n",
			"issue", "mem", "chain", "blocks", "optimal", "proved", "bound", "p50%", "p99%", "mean%", "max%")
		for _, row := range c.Rows {
			fmt.Fprintf(&sb, "%-6d %-4s %-6d | %7d %6.1f%% %6.1f%% %7d | %6.2f %6.2f | %8.3f %8.3f\n",
				row.Issue, row.Mem, row.Chain, row.Blocks,
				100*row.OptimalFrac(), 100*row.ProvedFrac(), row.BoundOnly,
				row.P50OverheadPct, row.P99OverheadPct, row.MeanOverheadPct, row.MaxOverheadPct)
		}
		t := c.Total
		fmt.Fprintf(&sb, "total: %d blocks, %.1f%% optimal, %.1f%% proved (small ≤%d nodes: %.1f%% proved), list/exact cycles %d/%d (+%.3f%%)\n\n",
			t.Blocks, 100*t.OptimalFrac(), 100*t.ProvedFrac(), r.Config.SmallNode,
			100*t.SmallProvedFrac(), t.CyclesList, t.CyclesExact, t.cycleOverheadPct())
	}
	return sb.String()
}

func (s Summary) cycleOverheadPct() float64 {
	if s.CyclesExact == 0 {
		return 0
	}
	return 100 * float64(s.CyclesList-s.CyclesExact) / float64(s.CyclesExact)
}

// CompareBaseline gates a fresh report against the checked-in baseline:
// the sweeps must use the same configuration (otherwise the fractions are
// not comparable and the gate errors out), and each corpus's
// provably-optimal fraction may regress at most tolPts percentage points.
// Returned messages are failures; nil means the gate passes.
func CompareBaseline(cur, base *Report, tolPts float64) []string {
	var msgs []string
	cb, _ := json.Marshal(cur.Config)
	bb, _ := json.Marshal(base.Config)
	if string(cb) != string(bb) {
		return []string{fmt.Sprintf("config mismatch: current %s vs baseline %s (regenerate the baseline)", cb, bb)}
	}
	for _, c := range cur.Corpora {
		b := base.Corpus(c.Name)
		if b == nil {
			msgs = append(msgs, fmt.Sprintf("corpus %q missing from baseline", c.Name))
			continue
		}
		if c.Total.Blocks != b.Total.Blocks {
			msgs = append(msgs, fmt.Sprintf("%s: block count drifted: %d vs baseline %d (corpus or loader changed; regenerate the baseline)",
				c.Name, c.Total.Blocks, b.Total.Blocks))
		}
		curFrac := 100 * c.Total.OptimalFrac()
		baseFrac := 100 * b.Total.OptimalFrac()
		if curFrac < baseFrac-tolPts {
			msgs = append(msgs, fmt.Sprintf("%s: optimal fraction regressed %.2f%% -> %.2f%% (tolerance %.1f points)",
				c.Name, baseFrac, curFrac, tolPts))
		}
	}
	return msgs
}
