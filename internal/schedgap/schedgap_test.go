package schedgap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// smallConfig keeps unit-test sweeps cheap: a couple of generated
// programs over a reduced point set.
func smallConfig() Config {
	return Config{
		Issues:    []int{2, 8},
		Mems:      []byte{'A'},
		Chains:    []int{0, 8},
		GenCount:  4,
		GenSeed:   5000,
		MaxNodes:  30,
		Budget:    200000,
		SmallNode: 20,
	}
}

// TestGeneratedSweepClean: the generated corpus sweeps without a single
// correctness violation, the accounting adds up, and the report is
// deterministic byte for byte (it is checked into results/ and diffed by
// CI, so nondeterminism would make the gate flap).
func TestGeneratedSweepClean(t *testing.T) {
	cfg := smallConfig()
	units, err := GeneratedCorpus(cfg.GenCount, cfg.GenSeed)
	if err != nil {
		t.Fatal(err)
	}
	rep1, vs, err := Sweep("generated", units, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("violation: %s", v)
	}
	if rep1.Total.Blocks == 0 {
		t.Fatal("sweep measured nothing")
	}
	for _, row := range rep1.Rows {
		if row.Proved+row.BoundOnly+row.TooLarge != row.Blocks {
			t.Fatalf("row %+v: status counts do not partition the blocks", row)
		}
		if row.Optimal > row.Proved {
			t.Fatalf("row %+v: more optimal than proved", row)
		}
		if row.CyclesList < row.CyclesExact {
			t.Fatalf("row %+v: list cycles below exact", row)
		}
	}
	rep2, _, err := Sweep("generated", units, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := (&Report{Config: cfg, Corpora: []CorpusReport{*rep1}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := (&Report{Config: cfg, Corpora: []CorpusReport{*rep2}}).Marshal()
	if !bytes.Equal(j1, j2) {
		t.Fatal("sweep is nondeterministic — report bytes differ between runs")
	}
	r, err := Unmarshal(j1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Corpus("generated") == nil || r.Corpus("generated").Total.Blocks != rep1.Total.Blocks {
		t.Fatal("report did not round-trip through JSON")
	}
}

// TestMiniCCorpusMeetsCriterion is the acceptance criterion as a standing
// test: on the five-benchmark MiniC corpus under the default budget, the
// exact scheduler proves optimality for at least 90% of blocks at or under
// 20 nodes, with zero correctness violations.
func TestMiniCCorpusMeetsCriterion(t *testing.T) {
	if testing.Short() {
		t.Skip("full MiniC sweep")
	}
	cfg := DefaultConfig()
	units, err := MiniCCorpus()
	if err != nil {
		t.Fatal(err)
	}
	rep, vs, err := Sweep("minic", units, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("violation: %s", v)
	}
	if frac := rep.Total.SmallProvedFrac(); frac < 0.90 {
		t.Fatalf("proved only %.1f%% of ≤%d-node blocks (need ≥90%%)", 100*frac, cfg.SmallNode)
	}
	if rep.Total.Small == 0 {
		t.Fatal("corpus has no small blocks — criterion is vacuous")
	}
}

// TestCompareBaseline pins the gate's behavior: identical reports pass, an
// optimal-fraction regression beyond the tolerance fails, a config drift
// refuses to compare, a block-count drift fails loudly.
func TestCompareBaseline(t *testing.T) {
	mk := func(blocks, optimal int) *Report {
		return &Report{
			Config: smallConfig(),
			Corpora: []CorpusReport{{
				Name:  "generated",
				Total: Summary{Blocks: blocks, Optimal: optimal, Proved: optimal},
			}},
		}
	}
	base := mk(1000, 950)
	if msgs := CompareBaseline(mk(1000, 950), base, 5); len(msgs) != 0 {
		t.Fatalf("identical reports failed the gate: %v", msgs)
	}
	if msgs := CompareBaseline(mk(1000, 920), base, 5); len(msgs) != 0 {
		t.Fatalf("3-point regression within 5-point tolerance failed: %v", msgs)
	}
	if msgs := CompareBaseline(mk(1000, 890), base, 5); len(msgs) == 0 {
		t.Fatal("6-point regression passed the gate")
	}
	if msgs := CompareBaseline(mk(900, 890), base, 5); len(msgs) == 0 {
		t.Fatal("block-count drift passed the gate")
	}
	drift := mk(1000, 950)
	drift.Config.Budget = 1
	if msgs := CompareBaseline(drift, base, 5); len(msgs) == 0 {
		t.Fatal("config drift passed the gate")
	}
}

// TestCheckedInBaselineFresh: the committed results/SCHEDGAP.json must be
// regenerable from the current tree — a scheduler or corpus change that
// alters the numbers has to update the baseline in the same commit. This
// is the full default sweep (about a second), skipped under -short.
func TestCheckedInBaselineFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("full default sweep")
	}
	path := filepath.Join("..", "..", "results", "SCHEDGAP.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing baseline (generate with: go run ./cmd/figures -schedgap): %v", err)
	}
	rep, vs, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("default sweep has %d violations, first: %s", len(vs), vs[0])
	}
	got, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("results/SCHEDGAP.json is stale — regenerate with: go run ./cmd/figures -schedgap")
	}
}
