// Package schedgap measures the list scheduler's optimality gap across a
// corpus: every block of every statically scheduled image is packed by the
// greedy list scheduler and by the exact branch-and-bound scheduler
// (internal/sched/exact), and the planned-cycle difference is aggregated
// per sweep point (issue model x memory configuration x enlargement
// level). The result is both a quality report (what fraction of blocks the
// list scheduler packs optimally, and how much it loses where it does not)
// and a correctness gate: a list schedule that is illegal or shorter than
// the proven optimum is a Violation, and CI fails on any.
//
// The corpus is the paper's five MiniC benchmarks plus a deterministic set
// of generated programs (the difftest generator), so the gap is measured
// on real control-flow shapes and on adversarial random ones. Everything —
// corpus, budgets, sweep points — is deterministic, so the checked-in
// results/SCHEDGAP.json regenerates bit-identically and regressions are a
// plain diff.
package schedgap

import (
	"fmt"
	"sort"

	"fgpsim/internal/bench"
	"fgpsim/internal/difftest"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/sched"
	"fgpsim/internal/sched/exact"
)

// Config fixes the sweep: which issue models and memory configurations,
// which enlargement levels (MaxChainLen; 0 means single basic blocks), how
// many generated programs, and the per-block exact-search budget. The
// checked-in baseline and the CI smoke must use the same Config for their
// numbers to be comparable, so the Config travels inside the Report.
type Config struct {
	Issues    []int  `json:"issues"`
	Mems      []byte `json:"mems"`
	Chains    []int  `json:"chains"` // enlargement levels (MaxChainLen; 0 = single)
	GenCount  int    `json:"gen_count"`
	GenSeed   int64  `json:"gen_seed"`
	MaxNodes  int    `json:"max_nodes"`
	Budget    int64  `json:"budget"`     // exact-search expansions per block
	SmallNode int    `json:"small_node"` // "small block" threshold for the proved-fraction criterion
}

// DefaultConfig is the configuration behind results/SCHEDGAP.json.
func DefaultConfig() Config {
	return Config{
		Issues:    []int{1, 2, 4, 8},
		Mems:      []byte{'A', 'D'},
		Chains:    []int{0, 8},
		GenCount:  24,
		GenSeed:   5000,
		MaxNodes:  30,
		Budget:    200000,
		SmallNode: 20,
	}
}

// Summary aggregates the gap over a set of measured blocks. Overheads are
// percent planned-cycle overhead of the list schedule relative to the best
// exact schedule (0 for an optimally packed block); for BoundOnly blocks
// the reference is the best schedule found, so the reported overhead is a
// lower estimate of the true gap there.
type Summary struct {
	Blocks    int `json:"blocks"`
	Proved    int `json:"proved"`     // exact search proved its optimum
	Optimal   int `json:"optimal"`    // proved and the list schedule matches it
	BoundOnly int `json:"bound_only"` // budget expired without a proof
	TooLarge  int `json:"too_large"`  // block above MaxNodes, not searched

	Small       int `json:"small"`        // blocks at or under SmallNode nodes
	SmallProved int `json:"small_proved"` // ... of which proved

	CyclesList  int64 `json:"cycles_list"`  // summed planned cycles, list
	CyclesExact int64 `json:"cycles_exact"` // summed planned cycles, exact

	P50OverheadPct  float64 `json:"p50_overhead_pct"`
	P99OverheadPct  float64 `json:"p99_overhead_pct"`
	MeanOverheadPct float64 `json:"mean_overhead_pct"`
	MaxOverheadPct  float64 `json:"max_overhead_pct"`
}

// OptimalFrac is the fraction of measured blocks the list scheduler packed
// provably optimally.
func (s Summary) OptimalFrac() float64 {
	if s.Blocks == 0 {
		return 1
	}
	return float64(s.Optimal) / float64(s.Blocks)
}

// ProvedFrac is the fraction of measured blocks with an optimality proof.
func (s Summary) ProvedFrac() float64 {
	if s.Blocks == 0 {
		return 1
	}
	return float64(s.Proved) / float64(s.Blocks)
}

// SmallProvedFrac is the proved fraction among small blocks — the
// acceptance criterion's metric.
func (s Summary) SmallProvedFrac() float64 {
	if s.Small == 0 {
		return 1
	}
	return float64(s.SmallProved) / float64(s.Small)
}

// Row is one sweep point.
type Row struct {
	Issue  int    `json:"issue"`
	Mem    string `json:"mem"`
	HitLat int    `json:"hit_lat"`
	Chain  int    `json:"chain"`
	Summary
}

// CorpusReport aggregates one corpus (minic or generated).
type CorpusReport struct {
	Name  string  `json:"name"`
	Units int     `json:"units"` // programs measured
	Rows  []Row   `json:"rows"`
	Total Summary `json:"total"`
}

// Report is the whole sweep — the schema of results/SCHEDGAP.json.
type Report struct {
	Config  Config         `json:"config"`
	Corpora []CorpusReport `json:"corpora"`
}

// Corpus finds a corpus report by name, or nil.
func (r *Report) Corpus(name string) *CorpusReport {
	for i := range r.Corpora {
		if r.Corpora[i].Name == name {
			return &r.Corpora[i]
		}
	}
	return nil
}

// Violation is a correctness failure found during the sweep: an illegal
// schedule or a list schedule beating the exact one. Any violation means a
// scheduler bug, never a measurement artifact.
type Violation struct {
	Unit  string
	Row   string
	Block ir.BlockID
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s] b%d: %s", v.Unit, v.Row, v.Block, v.Msg)
}

// Unit is one program of the corpus, with the profile that drives its
// enlargement levels.
type Unit struct {
	Name    string
	Prog    *ir.Program
	Profile *interp.Profile
}

const maxProfileNodes = 1 << 24

// MiniCCorpus prepares the five benchmark programs, profiled on input set
// 1 (the paper's methodology: enlargement is planned on the profiling
// input).
func MiniCCorpus() ([]*Unit, error) {
	var units []*Unit
	for _, b := range bench.All() {
		prog, err := b.Program()
		if err != nil {
			return nil, fmt.Errorf("schedgap: compile %s: %w", b.Name, err)
		}
		in0, in1 := b.Inputs(1)
		prof := interp.NewProfile()
		if _, err := interp.Run(prog, in0, in1, interp.Options{Profile: prof, MaxNodes: maxProfileNodes}); err != nil {
			return nil, fmt.Errorf("schedgap: profile %s: %w", b.Name, err)
		}
		units = append(units, &Unit{Name: b.Name, Prog: prog, Profile: prof})
	}
	return units, nil
}

// GeneratedCorpus compiles and profiles n deterministic generator
// programs, rotating the same feature profiles as the difftest sweep.
func GeneratedCorpus(n int, seed0 int64) ([]*Unit, error) {
	profiles := difftest.SweepProfiles()
	var units []*Unit
	for i := 0; i < n; i++ {
		seed := seed0 + int64(i)
		src := difftest.Generate(seed, profiles[i%len(profiles)])
		c, err := difftest.CompileCase(fmt.Sprintf("gen-%d.mc", seed), src,
			difftest.GenInput(seed*2, 180+int(seed%120)), difftest.GenInput(seed*2+1, 180+int((seed+7)%120)))
		if err != nil {
			return nil, fmt.Errorf("schedgap: generated seed %d: %w", seed, err)
		}
		units = append(units, &Unit{Name: c.Name, Prog: c.Prog, Profile: c.Profile})
	}
	return units, nil
}

// rowKey orders the sweep points.
type rowKey struct {
	issue int
	mem   byte
	chain int
}

type rowAcc struct {
	Summary
	overheads []float64
}

// Sweep measures one corpus across every sweep point of the configuration
// and returns its report plus any correctness violations.
func Sweep(name string, units []*Unit, cfg Config) (*CorpusReport, []Violation, error) {
	accs := make(map[rowKey]*rowAcc)
	var total rowAcc
	var violations []Violation

	opts := exact.Options{MaxNodes: cfg.MaxNodes, MaxExpanded: cfg.Budget}
	for _, u := range units {
		for _, chain := range cfg.Chains {
			var ef *enlarge.File
			branch := machine.SingleBB
			if chain > 0 {
				eo := enlarge.DefaultOptions()
				eo.MaxChainLen = chain
				ef = enlarge.Build(u.Prog, u.Profile, eo)
				branch = machine.EnlargedBB
			}
			for _, issue := range cfg.Issues {
				im, ok := machine.IssueModelByID(issue)
				if !ok {
					return nil, nil, fmt.Errorf("schedgap: bad issue model %d", issue)
				}
				for _, mem := range cfg.Mems {
					mc, ok := machine.MemConfigByID(mem)
					if !ok {
						return nil, nil, fmt.Errorf("schedgap: bad memory config %c", mem)
					}
					mcfg := machine.Config{Disc: machine.Static, Issue: im, Mem: mc, Branch: branch}
					img, err := loader.Load(u.Prog, mcfg, ef)
					if err != nil {
						return nil, nil, fmt.Errorf("schedgap: load %s %s: %w", u.Name, mcfg, err)
					}
					key := rowKey{issue, mem, chain}
					acc := accs[key]
					if acc == nil {
						acc = &rowAcc{}
						accs[key] = acc
					}
					rowName := fmt.Sprintf("issue%d/mem%c/chain%d", issue, mem, chain)
					for _, b := range img.Prog.Blocks {
						if b == nil {
							continue
						}
						v := measureBlock(b, img.Words[b.ID], im, mc.HitLatency, opts, cfg.SmallNode, acc, &total)
						for _, msg := range v {
							violations = append(violations, Violation{Unit: u.Name, Row: rowName, Block: b.ID, Msg: msg})
						}
					}
				}
			}
		}
	}

	keys := make([]rowKey, 0, len(accs))
	for k := range accs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.chain != b.chain {
			return a.chain < b.chain
		}
		if a.issue != b.issue {
			return a.issue < b.issue
		}
		return a.mem < b.mem
	})
	rep := &CorpusReport{Name: name, Units: len(units)}
	for _, k := range keys {
		acc := accs[k]
		acc.finish()
		mc, _ := machine.MemConfigByID(k.mem)
		rep.Rows = append(rep.Rows, Row{
			Issue: k.issue, Mem: string(k.mem), HitLat: mc.HitLatency, Chain: k.chain,
			Summary: acc.Summary,
		})
	}
	total.finish()
	rep.Total = total.Summary
	return rep, violations, nil
}

// measureBlock runs both schedulers on one block and folds the result into
// the row and total accumulators, returning any correctness violations.
func measureBlock(b *ir.Block, list sched.Schedule, im machine.IssueModel, hitLat int, opts exact.Options, smallNode int, accs ...*rowAcc) []string {
	var msgs []string
	if list == nil {
		return []string{"no list schedule in image"}
	}
	if err := sched.Validate(b, im, hitLat, list); err != nil {
		return []string{fmt.Sprintf("list schedule illegal: %v", err)}
	}
	listLen := sched.PlannedCycles(b, im, hitLat, list)
	r := exact.Schedule(b, im, hitLat, opts)
	if err := sched.Validate(b, im, hitLat, r.Schedule); err != nil {
		return []string{fmt.Sprintf("exact schedule illegal: %v", err)}
	}
	if r.Length > listLen {
		msgs = append(msgs, fmt.Sprintf("list length %d beats exact %d (%s)", listLen, r.Length, r.Status))
	}
	if r.LowerBound > r.Length {
		msgs = append(msgs, fmt.Sprintf("lower bound %d above length %d", r.LowerBound, r.Length))
	}
	if len(msgs) > 0 {
		return msgs
	}

	overhead := 100 * float64(listLen-r.Length) / float64(r.Length)
	small := b.NumNodes() <= smallNode
	for _, acc := range accs {
		acc.Blocks++
		switch r.Status {
		case exact.Proved:
			acc.Proved++
			if listLen == r.Length {
				acc.Optimal++
			}
		case exact.BoundOnly:
			acc.BoundOnly++
		case exact.TooLarge:
			acc.TooLarge++
		}
		if small {
			acc.Small++
			if r.Status == exact.Proved {
				acc.SmallProved++
			}
		}
		acc.CyclesList += int64(listLen)
		acc.CyclesExact += int64(r.Length)
		acc.overheads = append(acc.overheads, overhead)
	}
	return nil
}

// finish computes the percentile fields from the accumulated overheads.
func (a *rowAcc) finish() {
	if len(a.overheads) == 0 {
		return
	}
	sort.Float64s(a.overheads)
	pct := func(p int) float64 {
		idx := p * (len(a.overheads) - 1) / 100
		return a.overheads[idx]
	}
	a.P50OverheadPct = pct(50)
	a.P99OverheadPct = pct(99)
	sum := 0.0
	for _, o := range a.overheads {
		sum += o
	}
	a.MeanOverheadPct = sum / float64(len(a.overheads))
	a.MaxOverheadPct = a.overheads[len(a.overheads)-1]
}

// Run measures both corpora under one configuration.
func Run(cfg Config) (*Report, []Violation, error) {
	minic, err := MiniCCorpus()
	if err != nil {
		return nil, nil, err
	}
	gen, err := GeneratedCorpus(cfg.GenCount, cfg.GenSeed)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Config: cfg}
	var all []Violation
	for _, c := range []struct {
		name  string
		units []*Unit
	}{{"minic", minic}, {"generated", gen}} {
		cr, vs, err := Sweep(c.name, c.units, cfg)
		if err != nil {
			return nil, nil, err
		}
		rep.Corpora = append(rep.Corpora, *cr)
		all = append(all, vs...)
	}
	return rep, all, nil
}
